// Package hragents implements the YourJourney case-study agents (§II, §VI):
// the Agentic Employer application driver, the Intent Classifier, NL2Q,
// SQLExecutor and Query Summarizer chain of Fig. 10, the Summarizer of
// Fig. 9, and the Profiler/JobMatcher/Presenter pipeline of Fig. 6, plus a
// content moderator, an applicant Ranker and a career Advisor. Every agent
// is an ordinary registry entry with a processor built from the suite's
// shared enterprise substrate — exactly how the paper maps existing
// enterprise models and APIs onto agents.
package hragents

import (
	"fmt"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/dataplan"
	"blueprint/internal/graphstore"
	"blueprint/internal/llm"
	"blueprint/internal/registry"
	"blueprint/internal/relational"
	"blueprint/internal/workload"
)

// Agent names.
const (
	AgenticEmployer  = "AGENTIC_EMPLOYER"
	IntentClassifier = "INTENT_CLASSIFIER"
	NL2Q             = "NL2Q"
	SQLExecutor      = "SQLEXECUTOR"
	QuerySummarizer  = "QUERY_SUMMARIZER"
	Summarizer       = "SUMMARIZER"
	Profiler         = "PROFILER"
	JobMatcher       = "JOBMATCHER"
	Presenter        = "PRESENTER"
	Ranker           = "RANKER"
	Advisor          = "ADVISOR"
	Moderator        = "MODERATOR"
)

// Stream tags used by the decentralized flows of §VI.
const (
	TagNLQ     = "NLQ"
	TagSQL     = "SQL"
	TagRows    = "ROWS"
	TagIntent  = "intent"
	TagJobID   = "job_id"
	TagSummary = "summary"
)

// Suite holds the shared substrate behind the case-study agents.
type Suite struct {
	Ent     *workload.Enterprise
	Model   *llm.Model
	DataReg *registry.DataRegistry
	// DataPlanner drives JobMatcher's retrieval (§V-G: agents themselves
	// invoking the data planner to find and query data sources).
	DataPlanner *dataplan.Planner
	exec        *dataplan.Executor

	// Prepared statements for the suite's templated queries: each agent
	// turn reuses the same SQL shapes, so the parse is paid once here and
	// every invocation runs straight from the plan.
	stmtJobSummary *relational.Stmt // job header for the Summarizer
	stmtAppsByJob  *relational.Stmt // application status histogram
	stmtTopApps    *relational.Stmt // Ranker's score-ordered applicants
	stmtJobByID    *relational.Stmt // full job row
}

// NewSuite wires the suite over a generated enterprise. The data registry is
// populated with the enterprise's sources if empty.
func NewSuite(ent *workload.Enterprise, model *llm.Model, dataReg *registry.DataRegistry) (*Suite, error) {
	if dataReg == nil {
		dataReg = registry.NewDataRegistry()
	}
	if dataReg.Len() == 0 {
		if err := dataReg.ImportRelational("hr", "HR relational database with companies, job postings and applications", "hr-conn", ent.DB); err != nil {
			return nil, err
		}
		if err := dataReg.ImportDocstore("docs", "document store with job seeker profiles and resumes", "docs-conn", ent.Docs); err != nil {
			return nil, err
		}
		if err := dataReg.ImportGraph("taxonomy", "job title taxonomy graph with related roles and categories", "graph-conn", ent.Graph); err != nil {
			return nil, err
		}
		if err := dataReg.RegisterLLMSource("gpt-sim", "general knowledge language model: cities in regions, related job titles, skills", registry.QoSProfile{
			CostPerCall: 0.01, Latency: 50 * time.Millisecond, Accuracy: model.Config().Accuracy,
		}); err != nil {
			return nil, err
		}
	}
	s := &Suite{
		Ent:         ent,
		Model:       model,
		DataReg:     dataReg,
		DataPlanner: dataplan.NewPlanner(dataReg, ent.KB),
	}
	s.exec = dataplan.NewExecutor(dataplan.Sources{
		Relational: ent.DB,
		Docs:       ent.Docs,
		Graphs:     map[string]*graphstore.Graph{"taxonomy": ent.Graph},
		Model:      model,
	})
	if err := s.prepareStatements(); err != nil {
		return nil, err
	}
	return s, nil
}

// prepareStatements parses the suite's fixed query templates once.
func (s *Suite) prepareStatements() error {
	var err error
	prepare := func(sql string) *relational.Stmt {
		if err != nil {
			return nil
		}
		var st *relational.Stmt
		st, err = s.Ent.DB.Prepare(sql)
		return st
	}
	s.stmtJobSummary = prepare(`SELECT title, city, salary FROM jobs WHERE id = ?`)
	s.stmtAppsByJob = prepare(`SELECT status, COUNT(*) AS n FROM applications WHERE job_id = ? GROUP BY status ORDER BY status`)
	s.stmtTopApps = prepare(`SELECT profile_id, status, score, years FROM applications WHERE job_id = ? ORDER BY score DESC LIMIT 10`)
	s.stmtJobByID = prepare(`SELECT * FROM jobs WHERE id = ?`)
	if err != nil {
		return fmt.Errorf("hragents: preparing suite statements: %w", err)
	}
	return nil
}

// Specs returns every case-study agent spec.
func (s *Suite) Specs() []registry.AgentSpec {
	return []registry.AgentSpec{
		s.agenticEmployerSpec(),
		s.intentClassifierSpec(),
		s.nl2qSpec(),
		s.sqlExecutorSpec(),
		s.querySummarizerSpec(),
		s.summarizerSpec(),
		s.profilerSpec(),
		s.jobMatcherSpec(),
		s.presenterSpec(),
		s.rankerSpec(),
		s.advisorSpec(),
		s.moderatorSpec(),
	}
}

// RegisterAll registers every spec with the agent registry.
func (s *Suite) RegisterAll(reg *registry.AgentRegistry) error {
	for _, spec := range s.Specs() {
		if err := reg.Register(spec); err != nil {
			return err
		}
	}
	return nil
}

// InstallConstructors registers processor constructors for every agent with
// the factory.
func (s *Suite) InstallConstructors(f *agent.Factory) {
	f.RegisterConstructor(AgenticEmployer, func(registry.AgentSpec) agent.Processor { return s.agenticEmployerProc() })
	f.RegisterConstructor(IntentClassifier, func(registry.AgentSpec) agent.Processor { return s.intentClassifierProc() })
	f.RegisterConstructor(NL2Q, func(registry.AgentSpec) agent.Processor { return s.nl2qProc() })
	f.RegisterConstructor(SQLExecutor, func(registry.AgentSpec) agent.Processor { return s.sqlExecutorProc() })
	f.RegisterConstructor(QuerySummarizer, func(registry.AgentSpec) agent.Processor { return s.querySummarizerProc() })
	f.RegisterConstructor(Summarizer, func(registry.AgentSpec) agent.Processor { return s.summarizerProc() })
	f.RegisterConstructor(Profiler, func(registry.AgentSpec) agent.Processor { return s.profilerProc() })
	f.RegisterConstructor(JobMatcher, func(registry.AgentSpec) agent.Processor { return s.jobMatcherProc() })
	f.RegisterConstructor(Presenter, func(registry.AgentSpec) agent.Processor { return s.presenterProc() })
	f.RegisterConstructor(Ranker, func(registry.AgentSpec) agent.Processor { return s.rankerProc() })
	f.RegisterConstructor(Advisor, func(registry.AgentSpec) agent.Processor { return s.advisorProc() })
	f.RegisterConstructor(Moderator, func(registry.AgentSpec) agent.Processor { return s.moderatorProc() })
}
