// blueprintd serves a blueprint System over HTTP — the "deployed in a
// distributed system" face of the architecture, exposing sessions, the
// conversational surface, both registries and stream observability.
//
// Endpoints:
//
//	POST /sessions                         -> {"id": "session:1"}
//	POST /sessions/{id}/ask    {"text":..} -> {"answer": ...}
//	POST /sessions/{id}/click  {event}     -> {"answer": ...}
//	GET  /sessions/{id}/flow               -> per-message flow trace
//	GET  /agents                           -> agent registry contents
//	GET  /data                             -> data registry contents
//	GET  /stats                            -> stream store counters
//	GET  /memo                             -> step-result memoization stats
//
// Deploy-time tuning: -parallel bounds how many plan steps the coordinator
// executes concurrently per plan, -memo bounds the step-result memoization
// cache (entries; -memo 0 uses the default, -no-memo disables reuse).
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"blueprint"
)

type server struct {
	sys *blueprint.System
	mu  sessionMap
}

// sessionMap guards the live session handles against concurrent HTTP
// clients (POST /sessions racing asks and /stats reads).
type sessionMap struct {
	sync.RWMutex
	sessions map[string]*blueprint.Session
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 42, "deterministic seed")
	walPath := flag.String("wal", "", "optional stream WAL path for persistence")
	parallel := flag.Int("parallel", 0, "max concurrently executing steps per plan (0 = default)")
	memoCap := flag.Int("memo", 0, "step-result memoization cache capacity in entries (0 = default)")
	noMemo := flag.Bool("no-memo", false, "disable step-result memoization")
	flag.Parse()

	sys, err := blueprint.New(blueprint.Config{
		Seed: *seed, ModelAccuracy: 1.0, WALPath: *walPath,
		MaxParallel: *parallel, MemoCapacity: *memoCap, DisableMemo: *noMemo,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	s := &server{sys: sys, mu: sessionMap{sessions: map[string]*blueprint.Session{}}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.createSession)
	mux.HandleFunc("POST /sessions/{id}/ask", s.ask)
	mux.HandleFunc("POST /sessions/{id}/click", s.click)
	mux.HandleFunc("GET /sessions/{id}/flow", s.flow)
	mux.HandleFunc("GET /agents", s.agents)
	mux.HandleFunc("GET /data", s.data)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /memo", s.memo)

	log.Printf("blueprintd %s listening on %s (agents=%d, data assets=%d)",
		blueprint.Version, *addr, sys.AgentRegistry.Len(), sys.DataRegistry.Len())
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sys.StartSession("")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.mu.Lock()
	s.mu.sessions[sess.ID] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": sess.ID})
}

func (s *server) session(w http.ResponseWriter, r *http.Request) *blueprint.Session {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "session:") {
		id = "session:" + id
	}
	s.mu.RLock()
	sess, ok := s.mu.sessions[id]
	s.mu.RUnlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session " + id})
		return nil
	}
	return sess
}

func (s *server) ask(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var body struct {
		Text    string `json:"text"`
		Timeout int    `json:"timeout_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Text == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be {\"text\": ...}"})
		return
	}
	timeout := 15 * time.Second
	if body.Timeout > 0 {
		timeout = time.Duration(body.Timeout) * time.Millisecond
	}
	answer, err := sess.Ask(body.Text, timeout)
	if err != nil {
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"answer": answer})
}

func (s *server) click(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var event map[string]any
	if err := json.NewDecoder(r.Body).Decode(&event); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be a UI event object"})
		return
	}
	answer, err := sess.Click(event, 15*time.Second)
	if err != nil {
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"answer": answer})
}

func (s *server) flow(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	steps := sess.Flow()
	out := make([]map[string]any, len(steps))
	for i, st := range steps {
		out[i] = map[string]any{
			"ts": st.TS, "sender": st.Sender, "stream": st.Stream,
			"kind": st.Kind.String(), "op": st.Op, "tags": st.Tags, "payload": st.Payload,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) agents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.AgentRegistry.List())
}

func (s *server) data(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.DataRegistry.List("", ""))
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Store.StatsSnapshot()
	ms := s.sys.MemoStats()
	cs := s.sys.Enterprise.DB.CacheStats()
	s.mu.RLock()
	sessions := len(s.mu.sessions)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"streams": st.StreamsCreated, "messages": st.MessagesAppended,
		"data": st.DataMessages, "control": st.ControlMessages, "events": st.EventMessages,
		"subscriptions": st.Subscriptions, "deliveries": st.Deliveries,
		"version": blueprint.Version, "sessions": sessions,
		"memo_hits": ms.Hits, "memo_hit_rate": ms.HitRate(),
		"stmt_cache_hits": cs.Hits, "stmt_cache_hit_rate": cs.HitRate(),
		"plan_compiles": cs.Compiles,
	})
}

func (s *server) memo(w http.ResponseWriter, r *http.Request) {
	ms := s.sys.MemoStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":       s.sys.Memo != nil,
		"hits":          ms.Hits,
		"misses":        ms.Misses,
		"hit_rate":      ms.HitRate(),
		"coalesced":     ms.Coalesced,
		"evictions":     ms.Evictions,
		"invalidations": ms.Invalidations,
		"entries":       ms.Entries,
		"saved_cost":    ms.SavedCost,
		"saved_latency": ms.SavedLatency.String(),
	})
}
