// Benchmarks: one per paper figure (F1..F10) plus the ablations (A1..A3).
// These wrap the same code paths as internal/experiments (which prints the
// EXPERIMENTS.md tables); here they are exposed as standard testing.B
// targets so `go test -bench=. -benchmem` regenerates per-operation costs.
package blueprint_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"blueprint"
	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/cluster"
	"blueprint/internal/dataplan"
	"blueprint/internal/graphstore"
	"blueprint/internal/llm"
	"blueprint/internal/optimizer"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
	"blueprint/internal/workload"
)

func benchSystem(b *testing.B) (*blueprint.System, *blueprint.Session) {
	b.Helper()
	sys, err := blueprint.New(blueprint.Config{ModelAccuracy: 1.0})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	s, err := sys.StartSession("")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return sys, s
}

// BenchmarkFig1_EndToEnd measures one full Fig. 1 request: utterance ->
// intent -> NL2Q -> SQL -> summary -> display.
func BenchmarkFig1_EndToEnd(b *testing.B) {
	_, s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ask("How many jobs are in San Francisco?", 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_FailureRecovery measures kill + reconcile of one container
// (the Fig. 2 restart-on-failure loop).
func BenchmarkFig2_FailureRecovery(b *testing.B) {
	store := streams.NewStore()
	b.Cleanup(func() { store.Close() })
	reg := registry.NewAgentRegistry()
	spec := registry.AgentSpec{
		Name: "W", Description: "worker",
		Inputs: []registry.ParamSpec{{Name: "X"}}, Outputs: []registry.ParamSpec{{Name: "Y"}},
		Deployment: registry.Deployment{Resource: "cpu", Workers: 1},
	}
	if err := reg.Register(spec); err != nil {
		b.Fatal(err)
	}
	f := agent.NewFactory(reg)
	f.RegisterConstructor("W", func(registry.AgentSpec) agent.Processor {
		return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			return agent.Outputs{Values: map[string]any{"Y": 1}}, nil
		}
	})
	c := cluster.New(store, f, "session:b2")
	b.Cleanup(c.Shutdown)
	if err := c.AddNode("n1", "cpu", 4); err != nil {
		b.Fatal(err)
	}
	ctr, err := c.Deploy("W")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Kill(ctr.ID); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Reconcile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_AgentRoundTrip measures one EXECUTE -> processor -> DONE
// round trip over streams (the Fig. 3 agent model).
func BenchmarkFig3_AgentRoundTrip(b *testing.B) {
	store := streams.NewStore()
	b.Cleanup(func() { store.Close() })
	spec := registry.AgentSpec{
		Name: "W", Inputs: []registry.ParamSpec{{Name: "X"}}, Outputs: []registry.ParamSpec{{Name: "Y"}},
	}
	inst, err := agent.Attach(store, "session:b3", agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{Values: map[string]any{"Y": inv.Inputs["X"]}}, nil
	}), agent.Options{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(inst.Stop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("i%d", i)
		if err := agent.Execute(store, "session:b3", "W", map[string]any{"X": i}, "", id); err != nil {
			b.Fatal(err)
		}
		if d := agent.AwaitDone(store, "session:b3", id); d == nil {
			b.Fatal("no DONE")
		}
	}
}

// BenchmarkFig4_PetriTransition measures one two-place transition firing
// (Fig. 4): two tokens in, one processor invocation out.
func BenchmarkFig4_PetriTransition(b *testing.B) {
	store := streams.NewStore()
	b.Cleanup(func() { store.Close() })
	fired := make(chan struct{}, 1024)
	spec := registry.AgentSpec{
		Name:       "J",
		Inputs:     []registry.ParamSpec{{Name: "A"}, {Name: "B"}},
		Outputs:    []registry.ParamSpec{{Name: "OUT"}},
		Properties: map[string]any{"listen_all": true},
	}
	inst, err := agent.Attach(store, "session:b4", agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		fired <- struct{}{}
		return agent.Outputs{}, nil
	}), agent.Options{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(inst.Stop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range []string{"A", "B"} {
			if _, err := store.Publish(streams.Message{
				Stream: "session:b4:" + p, Session: "session:b4",
				Kind: streams.Data, Sender: "producer", Param: p, Payload: i,
			}); err != nil {
				b.Fatal(err)
			}
		}
		<-fired
	}
}

// BenchmarkFig5_RegistryDiscovery measures vector discovery over a
// 1000-asset data registry (Fig. 5).
func BenchmarkFig5_RegistryDiscovery(b *testing.B) {
	reg := registry.NewDataRegistry()
	for i := 0; i < 1000; i++ {
		if err := reg.Register(registry.DataAsset{
			Name: fmt.Sprintf("src%04d.t", i), Kind: registry.KindRelational, Level: registry.LevelTable,
			Description: fmt.Sprintf("table %d holding topic %d records", i, i%17),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := reg.Discover(fmt.Sprintf("topic %d records", i%17), 5); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkFig6_TaskPlanning measures producing the Fig. 6 plan for the
// running example.
func BenchmarkFig6_TaskPlanning(b *testing.B) {
	sys, _ := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TaskPlanner.Plan("I am looking for a data scientist position in SF bay area."); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_PlanExecution measures executing the Fig. 6 plan under the
// coordinator with budget accounting.
func BenchmarkFig6_PlanExecution(b *testing.B) {
	_, s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ExecuteUtterance("I am looking for a data scientist position in SF bay area."); err != nil {
			b.Fatal(err)
		}
	}
}

func fig7Fixture(b *testing.B) (*dataplan.Planner, *dataplan.Executor, dataplan.TableBinding) {
	b.Helper()
	ent, err := workload.Build(42, workload.SmallScale())
	if err != nil {
		b.Fatal(err)
	}
	reg := registry.NewDataRegistry()
	if err := reg.ImportRelational("hr", "HR database", "conn", ent.DB); err != nil {
		b.Fatal(err)
	}
	if err := reg.ImportGraph("taxonomy", "title taxonomy", "conn", ent.Graph); err != nil {
		b.Fatal(err)
	}
	if err := reg.RegisterLLMSource("gpt-sim", "general knowledge", registry.QoSProfile{CostPerCall: 0.01}); err != nil {
		b.Fatal(err)
	}
	model := llm.New(llm.Config{Name: "b7", CostPer1K: 0.01, Accuracy: 1.0, Seed: 42}, ent.KB)
	planner := dataplan.NewPlanner(reg, ent.KB)
	exec := dataplan.NewExecutor(dataplan.Sources{
		Relational: ent.DB,
		Graphs:     map[string]*graphstore.Graph{"taxonomy": ent.Graph},
		Model:      model,
	})
	tgt, err := dataplan.BuildTarget(ent.DB, "jobs")
	if err != nil {
		b.Fatal(err)
	}
	asset, err := reg.Get("hr.jobs")
	if err != nil {
		b.Fatal(err)
	}
	return planner, exec, dataplan.TableBinding{Asset: asset, Target: tgt}
}

// BenchmarkFig7_DirectPlan measures the direct NL2Q strategy.
func BenchmarkFig7_DirectPlan(b *testing.B) {
	planner, exec, bind := fig7Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := planner.PlanDirect("data scientist position in SF bay area", bind)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_DecomposedPlan measures the Fig. 7 decomposition
// (Q2NL -> LLM cities, taxonomy titles, select).
func BenchmarkFig7_DecomposedPlan(b *testing.B) {
	planner, exec, bind := fig7Fixture(b)
	needs := planner.Analyze("data scientist position in SF bay area", bind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := planner.PlanDecomposed("data scientist position in SF bay area", bind, needs, "taxonomy")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8_ConversationTurn measures one Agentic Employer
// conversational turn (Fig. 8).
func BenchmarkFig8_ConversationTurn(b *testing.B) {
	_, s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ask("Summarize the applicants for job 12", 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9_UIClick measures the UI-initiated flow (Fig. 9):
// U -> AE -> TC -> S.
func BenchmarkFig9_UIClick(b *testing.B) {
	_, s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Click(map[string]any{"action": "select_job", "job_id": 1 + i%100}, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10_OpenQuery measures the conversation-initiated flow
// (Fig. 10): U -> IC -> AE -> NL2Q -> QE -> QS.
func BenchmarkFig10_OpenQuery(b *testing.B) {
	_, s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ask("How many jobs are in San Francisco?", 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_MultiSessionAsk measures 4 sessions asking concurrently
// through the event-driven display pipeline (A5): with subscription-driven
// waits (no sleep polling) the wall-clock per round approaches the slowest
// single session, not the sum.
func BenchmarkAblation_MultiSessionAsk(b *testing.B) {
	sys, err := blueprint.New(blueprint.Config{ModelAccuracy: 1.0})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	const sessions = 4
	ss := make([]*blueprint.Session, sessions)
	for i := range ss {
		s, err := sys.StartSession("")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(s.Close)
		ss[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, s := range ss {
			wg.Add(1)
			go func(s *blueprint.Session) {
				defer wg.Done()
				if _, err := s.Ask("How many jobs are in San Francisco?", 30*time.Second); err != nil {
					b.Error(err)
				}
			}(s)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(sessions), "asks/op")
}

// BenchmarkAblation_MemoColdVsWarmAsk measures a repeated utterance's plan
// execution when every step is served from the step-result memoization
// cache (the A6 warm path): the first execution warms the cache, each
// iteration then re-plans and executes at the residual cost (the criteria
// transform) with all plan steps hitting memo.
func BenchmarkAblation_MemoColdVsWarmAsk(b *testing.B) {
	sys, s := benchSystem(b)
	const utterance = "find me a data scientist job in san francisco"
	if _, _, err := s.ExecuteUtterance(utterance); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := s.ExecuteUtterance(utterance)
		if err != nil {
			b.Fatal(err)
		}
		if res.Budget.MemoHits != len(res.Steps) {
			b.Fatalf("memo hits = %d of %d steps", res.Budget.MemoHits, len(res.Steps))
		}
	}
	b.StopTimer()
	b.ReportMetric(sys.MemoStats().HitRate()*100, "hit%")
}

// BenchmarkAblation_BudgetCharge measures one budget charge+check (§V-H).
func BenchmarkAblation_BudgetCharge(b *testing.B) {
	bud := budget.New(budget.Limits{MaxCost: 1e12})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bud.Charge("s", 0.001, time.Millisecond, 0.9)
	}
}

// BenchmarkAblation_OptimizerChoose measures one multi-objective selection
// over the model tiers (§IV).
func BenchmarkAblation_OptimizerChoose(b *testing.B) {
	configs := llm.Presets(1)
	obj := optimizer.DefaultObjectives()
	lim := budget.Limits{MinAccuracy: 0.85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.ChooseModelTier(configs, 500, obj, lim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_StreamsAppend measures raw stream appends (no WAL).
func BenchmarkAblation_StreamsAppend(b *testing.B) {
	store := streams.NewStore()
	b.Cleanup(func() { store.Close() })
	if _, err := store.CreateStream("s", streams.StreamInfo{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Append(streams.Message{Stream: "s", Payload: i}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_StreamsAppendWAL measures appends with write-ahead-log
// persistence enabled.
func BenchmarkAblation_StreamsAppendWAL(b *testing.B) {
	store, err := streams.Open(streams.Options{WALPath: filepath.Join(b.TempDir(), "bench.wal")})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	if _, err := store.CreateStream("s", streams.StreamInfo{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Append(streams.Message{Stream: "s", Payload: i}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_StreamsFanout8 measures one append delivered to 8
// subscribers.
func BenchmarkAblation_StreamsFanout8(b *testing.B) {
	store := streams.NewStore()
	b.Cleanup(func() { store.Close() })
	if _, err := store.CreateStream("s", streams.StreamInfo{}); err != nil {
		b.Fatal(err)
	}
	const subs = 8
	done := make(chan struct{}, subs)
	for i := 0; i < subs; i++ {
		sub := store.Subscribe(streams.Filter{Streams: []string{"s"}}, false)
		go func(sub *streams.Subscription) {
			for range sub.C() {
				done <- struct{}{}
			}
		}(sub)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Append(streams.Message{Stream: "s", Payload: i}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < subs; j++ {
			<-done
		}
	}
}

// BenchmarkRelationalIndexedQuery measures an indexed point query on the
// generated jobs table (substrate sanity: the SQL engine is not the
// bottleneck of the figures above).
func BenchmarkRelationalIndexedQuery(b *testing.B) {
	ent, err := workload.Build(42, workload.MediumScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ent.DB.Query(`SELECT id, title FROM jobs WHERE city = 'San Francisco' LIMIT 10`); err != nil {
			b.Fatal(err)
		}
	}
}
