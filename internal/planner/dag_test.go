package planner

import (
	"reflect"
	"testing"
)

// fanOutPlan: s1 feeds s2, s3, s4 (independent), which all feed s5.
func fanOutPlan() *Plan {
	dep := func(from string) map[string]Binding {
		return map[string]Binding{"IN": {FromStep: from, FromParam: "OUT"}}
	}
	return &Plan{
		ID: "fan", Utterance: "x",
		Steps: []Step{
			{ID: "s1", Agent: "A"},
			{ID: "s2", Agent: "B", Bindings: dep("s1")},
			{ID: "s3", Agent: "C", Bindings: dep("s1")},
			{ID: "s4", Agent: "D", Bindings: dep("s1")},
			{ID: "s5", Agent: "E", Bindings: map[string]Binding{
				"X": {FromStep: "s2", FromParam: "OUT"},
				"Y": {FromStep: "s3", FromParam: "OUT"},
				"Z": {FromStep: "s4", FromParam: "OUT"},
			}},
		},
	}
}

func TestDepsDerivation(t *testing.T) {
	p := fanOutPlan()
	deps := p.Deps()
	if _, ok := deps["s1"]; ok {
		t.Fatalf("s1 has no deps, got %v", deps["s1"])
	}
	for _, id := range []string{"s2", "s3", "s4"} {
		if !reflect.DeepEqual(deps[id], []string{"s1"}) {
			t.Fatalf("deps[%s] = %v", id, deps[id])
		}
	}
	if !reflect.DeepEqual(deps["s5"], []string{"s2", "s3", "s4"}) {
		t.Fatalf("deps[s5] = %v", deps["s5"])
	}
}

func TestWavesFanOut(t *testing.T) {
	p := fanOutPlan()
	waves, err := p.Waves()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"s1"}, {"s2", "s3", "s4"}, {"s5"}}
	if !reflect.DeepEqual(waves, want) {
		t.Fatalf("waves = %v, want %v", waves, want)
	}
}

func TestWavesIndependentSteps(t *testing.T) {
	p := &Plan{Steps: []Step{
		{ID: "a", Agent: "A"}, {ID: "b", Agent: "B"}, {ID: "c", Agent: "C"},
	}}
	waves, err := p.Waves()
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 1 || len(waves[0]) != 3 {
		t.Fatalf("independent steps must form one wave: %v", waves)
	}
}

// Forward references (a step listed before its producer) are valid DAGs now
// that the scheduler derives order from dependencies, not listing order.
func TestValidateAllowsForwardReferences(t *testing.T) {
	p := &Plan{Steps: []Step{
		{ID: "s2", Agent: "B", Bindings: map[string]Binding{"IN": {FromStep: "s1", FromParam: "OUT"}}},
		{ID: "s1", Agent: "A"},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("forward reference rejected: %v", err)
	}
	waves, err := p.Waves()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"s1"}, {"s2"}}
	if !reflect.DeepEqual(waves, want) {
		t.Fatalf("waves = %v, want %v", waves, want)
	}
}

func TestValidateRejectsCycles(t *testing.T) {
	cyclic := &Plan{Steps: []Step{
		{ID: "s1", Agent: "A", Bindings: map[string]Binding{"IN": {FromStep: "s2", FromParam: "OUT"}}},
		{ID: "s2", Agent: "B", Bindings: map[string]Binding{"IN": {FromStep: "s1", FromParam: "OUT"}}},
	}}
	if err := cyclic.Validate(); err == nil {
		t.Fatal("cycle validated")
	}
	self := &Plan{Steps: []Step{
		{ID: "s1", Agent: "A", Bindings: map[string]Binding{"IN": {FromStep: "s1", FromParam: "OUT"}}},
	}}
	if err := self.Validate(); err == nil {
		t.Fatal("self-dependency validated")
	}
}
