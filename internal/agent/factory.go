package agent

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

// Factory errors.
var (
	ErrNoConstructor = errors.New("agent: no constructor registered")
)

// Constructor builds a processor for an agent spec. Constructors receive the
// spec so one constructor can serve a family of derived agents.
type Constructor func(spec registry.AgentSpec) Processor

// Factory spawns agent instances from registry specs — the per-container
// "AgentFactory server" of §V-B. Containers in the cluster simulator each
// run one Factory.
type Factory struct {
	mu     sync.RWMutex
	reg    *registry.AgentRegistry
	ctors  map[string]Constructor
	spawns int
}

// NewFactory creates a factory over an agent registry.
func NewFactory(reg *registry.AgentRegistry) *Factory {
	return &Factory{reg: reg, ctors: make(map[string]Constructor)}
}

// RegisterConstructor associates agent name with a constructor.
func (f *Factory) RegisterConstructor(name string, c Constructor) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ctors[name] = c
}

// Constructors lists registered constructor names, sorted.
func (f *Factory) Constructors() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.ctors))
	for k := range f.ctors {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build creates an Agent value for the named registry spec.
func (f *Factory) Build(name string) (*Agent, error) {
	spec, err := f.reg.Get(name)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	ctor, ok := f.ctors[spec.Name]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoConstructor, name)
	}
	return New(spec, ctor(spec)), nil
}

// Spawn builds the named agent and attaches an instance to the session,
// honoring the spec's worker-count deployment hint.
func (f *Factory) Spawn(store *streams.Store, session, name string, opts Options) (*Instance, error) {
	a, err := f.Build(name)
	if err != nil {
		return nil, err
	}
	if opts.Workers == 0 && a.Spec.Deployment.Workers > 0 {
		opts.Workers = a.Spec.Deployment.Workers
	}
	inst, err := Attach(store, session, a, opts)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.spawns++
	f.mu.Unlock()
	return inst, nil
}

// SpawnCount reports how many instances this factory has spawned.
func (f *Factory) SpawnCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.spawns
}
