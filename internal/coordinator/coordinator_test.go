package coordinator

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/llm"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

const sess = "session:coord"

// env wires a store, registry and the three Fig. 6 agents (PROFILER,
// JOBMATCHER, PRESENTER) implemented as simple processors.
type env struct {
	store *streams.Store
	reg   *registry.AgentRegistry
	tp    *planner.TaskPlanner
	model *llm.Model
	insts []*agent.Instance
}

func newEnv(t testing.TB) *env {
	t.Helper()
	store := streams.NewStore()
	t.Cleanup(func() { store.Close() })
	reg := registry.NewAgentRegistry()
	model := llm.New(llm.Config{Name: "coord-llm", Accuracy: 1.0, CostPer1K: 0.001, Seed: 9}, nil)

	e := &env{store: store, reg: reg, model: model}
	t.Cleanup(func() {
		for _, in := range e.insts {
			in.Stop()
		}
	})

	add := func(spec registry.AgentSpec, proc agent.Processor) {
		if err := reg.Register(spec); err != nil {
			t.Fatal(err)
		}
		inst, err := agent.Attach(store, sess, agent.New(spec, proc), agent.Options{DisableListen: true})
		if err != nil {
			t.Fatal(err)
		}
		e.insts = append(e.insts, inst)
	}

	add(registry.AgentSpec{
		Name:        "PROFILER",
		Description: "collect job seeker profile information from the user via a profile form",
		Inputs:      []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
		Outputs:     []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.001, Latency: 5 * time.Millisecond, Accuracy: 0.95},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		criteria, _ := inv.Inputs["CRITERIA"].(string)
		return agent.Outputs{Values: map[string]any{
			"JOBSEEKER_DATA": map[string]any{"criteria": criteria, "skills": []any{"python", "sql"}},
		}}, nil
	})

	add(registry.AgentSpec{
		Name:        "JOBMATCHER",
		Description: "match the job seeker profile with available job listings ranking match quality",
		Inputs:      []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		Outputs:     []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.01, Latency: 20 * time.Millisecond, Accuracy: 0.9},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		profile, _ := inv.Inputs["JOBSEEKER_DATA"].(map[string]any)
		criteria, _ := profile["criteria"].(string)
		return agent.Outputs{Values: map[string]any{
			"MATCHES": []any{
				map[string]any{"job": "Data Scientist @ Acme", "criteria": criteria, "score": 0.92},
				map[string]any{"job": "ML Engineer @ DataWorks", "criteria": criteria, "score": 0.81},
			},
		}}, nil
	})

	add(registry.AgentSpec{
		Name:        "PRESENTER",
		Description: "present the matched jobs to the end user rendering results",
		Inputs:      []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
		Outputs:     []registry.ParamSpec{{Name: "RENDERED", Type: "text"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.0005, Latency: 2 * time.Millisecond, Accuracy: 1.0},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		matches, _ := inv.Inputs["MATCHES"].([]any)
		var b strings.Builder
		for i, m := range matches {
			mm, _ := m.(map[string]any)
			fmt.Fprintf(&b, "%d. %v\n", i+1, mm["job"])
		}
		return agent.Outputs{
			Values:  map[string]any{"RENDERED": b.String()},
			Display: b.String(),
		}, nil
	})

	e.tp = planner.New(reg, model, nil)
	return e
}

func TestExecuteFig6PlanEndToEnd(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan, err := e.tp.Plan("I am looking for a data scientist position in SF bay area.")
	if err != nil {
		t.Fatal(err)
	}
	b := budget.New(budget.Limits{MaxCost: 1.0})
	res, err := c.ExecutePlan(sess, plan, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 || res.Aborted {
		t.Fatalf("result = %+v", res)
	}
	rendered, _ := res.Final["RENDERED"].(string)
	if !strings.Contains(rendered, "Data Scientist @ Acme") {
		t.Fatalf("rendered = %q", rendered)
	}
	// The criteria transform stripped the conversational filler before it
	// reached the PROFILER (PROFILER.CRITERIA <- USER.TEXT).
	s1 := res.Steps[0]
	profile, _ := s1.Outputs["JOBSEEKER_DATA"].(map[string]any)
	if got := profile["criteria"]; got != "data scientist position in SF bay area" {
		t.Fatalf("criteria = %q", got)
	}
	// Budget charged per step (3 steps + 1 transform).
	if res.Budget.Charges != 4 {
		t.Fatalf("charges = %d", res.Budget.Charges)
	}
	if res.Budget.CostSpent <= 0 {
		t.Fatalf("cost = %v", res.Budget.CostSpent)
	}
}

func TestBudgetAbortsMidPlan(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan, err := e.tp.Plan("I am looking for a data scientist position.")
	if err != nil {
		t.Fatal(err)
	}
	// Enough for step 1 (+transform) but not step 2 actuals.
	b := budget.New(budget.Limits{MaxCost: 0.002})
	abortSub := e.store.Subscribe(streams.Filter{
		Streams: []string{agent.ControlStream(sess)},
		Kinds:   []streams.Kind{streams.Control},
	}, false)
	defer abortSub.Cancel()

	// Pre-projection would catch this; test mid-plan enforcement by using
	// Confirm policy that accepts the projection but rejects actuals.
	calls := 0
	c.opts.OnViolation = Confirm
	c.opts.ConfirmFunc = func(v []budget.Violation) bool {
		calls++
		return v == nil // accept projection warning, reject actual violations
	}
	res, err := c.ExecutePlan(sess, plan, b)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if !res.Aborted || res.AbortReason == "" {
		t.Fatalf("result = %+v", res)
	}
	if calls < 1 {
		t.Fatal("confirm not consulted")
	}
	// ABORT control message observable on the stream.
	select {
	case msg := <-abortSub.C():
		for msg.Directive == nil || msg.Directive.Op != streams.OpAbort {
			msg = <-abortSub.C()
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ABORT message")
	}
}

func TestProjectionAbortBeforeExecution(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan, _ := e.tp.Plan("I am looking for a data scientist position.")
	b := budget.New(budget.Limits{MaxCost: 0.0001}) // below projected total
	res, err := c.ExecutePlan(sess, plan, b)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Steps) != 0 {
		t.Fatalf("steps ran despite projection abort: %+v", res.Steps)
	}
}

func TestConfirmPolicyContinues(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{
		OnViolation: Confirm,
		ConfirmFunc: func(v []budget.Violation) bool { return true },
	})
	plan, _ := e.tp.Plan("I am looking for a data scientist position.")
	b := budget.New(budget.Limits{MaxCost: 0.0001})
	res, err := c.ExecutePlan(sess, plan, b)
	if err != nil {
		t.Fatalf("confirmed execution failed: %v", err)
	}
	if res.Aborted || len(res.Steps) != 3 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Budget.Violations) == 0 {
		t.Fatal("violations not recorded")
	}
}

func TestRetryOnErrorReplans(t *testing.T) {
	e := newEnv(t)
	// A failing matcher registered more prominently, plus the working one.
	spec := registry.AgentSpec{
		Name:        "FLAKY_MATCHER",
		Description: "match the job seeker profile with available job listings ranking match quality precisely",
		Inputs:      []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		Outputs:     []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
	}
	if err := e.reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	inst, err := agent.Attach(e.store, sess, agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{}, errors.New("model unavailable")
	}), agent.Options{DisableListen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	c := New(e.store, e.reg, e.tp, e.model, Options{RetryOnError: true})
	// Hand-build a plan whose matcher step uses the flaky agent.
	plan := &planner.Plan{
		ID: "manual-1", Utterance: "match me", Intent: "rank",
		Steps: []planner.Step{
			{ID: "s1", Agent: "PROFILER", Task: "collect job seeker profile information from the user",
				Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}}},
			{ID: "s2", Agent: "FLAKY_MATCHER", Task: "match the job seeker profile with available job listings",
				Bindings: map[string]planner.Binding{"JOBSEEKER_DATA": {FromStep: "s1", FromParam: "JOBSEEKER_DATA"}}},
		},
	}
	res, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("replan retry failed: %v (res=%+v)", err, res)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d", res.Replans)
	}
	if res.Steps[len(res.Steps)-1].Agent == "FLAKY_MATCHER" {
		t.Fatal("retry kept flaky agent")
	}
}

func TestStepFailureWithoutRetry(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan := &planner.Plan{
		ID: "manual-2", Utterance: "x", Intent: "rank",
		Steps: []planner.Step{{ID: "s1", Agent: "NO_SUCH_AGENT", Task: "anything"}},
	}
	c.opts.StepTimeout = 300 * time.Millisecond
	_, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	if !errors.Is(err, ErrStepFailed) && !errors.Is(err, ErrStepTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnresolvableBinding(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan := &planner.Plan{
		ID: "manual-3", Utterance: "x", Intent: "rank",
		Steps: []planner.Step{
			{ID: "s1", Agent: "PRESENTER", Task: "present",
				Bindings: map[string]planner.Binding{"MATCHES": {FromStep: "s0", FromParam: "MATCHES"}}},
		},
	}
	if err := plan.Validate(); err == nil {
		t.Fatal("plan with forward dep validated")
	}
	_, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	if err == nil {
		t.Fatal("executed invalid plan")
	}
}

func TestServiceExecutesEmittedPlans(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	svc := c.Serve(sess, budget.Limits{MaxCost: 1.0})
	defer svc.Stop()

	plan, err := e.tp.Plan("I am looking for a data scientist position in SF bay area.")
	if err != nil {
		t.Fatal(err)
	}
	if err := planner.EmitPlan(e.store, sess, plan); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rs := svc.Results(); len(rs) == 1 {
			if rs[0].Aborted {
				t.Fatalf("service result aborted: %+v", rs[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never executed the plan")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Final outputs surfaced on the display stream.
	msgs, err := e.store.ReadAll(agent.DisplayStream(sess))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range msgs {
		if m.Sender == "coordinator" && m.HasTag("result") {
			found = true
		}
	}
	if !found {
		t.Fatal("no coordinator result on display stream")
	}
}
