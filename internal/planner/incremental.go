package planner

import (
	"fmt"
	"strings"
)

// IncrementalPlan implements the paper's dynamic planning mode (§V-F: "the
// plan can also be dynamic and incremental, meaning it evolves step by step
// rather than being predetermined in its entirety"). Instead of fixing the
// whole DAG up front, each step's agent is re-selected from the registry at
// the moment the step is reached, so registry updates (new agents, usage-
// boosted embeddings) between steps influence the plan. Feedback can veto an
// agent for the remainder of the plan, modelling the paper's adaptive
// planner learning from per-plan feedback.
type IncrementalPlan struct {
	tp        *TaskPlanner
	utterance string
	intent    string
	subtasks  []SubTask
	pos       int
	steps     []Step
	vetoed    map[string]bool
}

// PlanIncremental starts a dynamic plan for the utterance: the intent and
// sub-task template are fixed, agent selection is deferred.
func (tp *TaskPlanner) PlanIncremental(utterance string) (*IncrementalPlan, error) {
	intent, _ := tp.model.Classify(utterance, intentLabels(tp))
	subtasks, ok := tp.templates[intent]
	if !ok || len(subtasks) == 0 {
		subtasks = tp.templates["open_query"]
		intent = "open_query"
	}
	if len(subtasks) == 0 {
		return nil, fmt.Errorf("planner: no template for intent %q", intent)
	}
	return &IncrementalPlan{
		tp:        tp,
		utterance: utterance,
		intent:    intent,
		subtasks:  subtasks,
		vetoed:    map[string]bool{},
	}, nil
}

func intentLabels(tp *TaskPlanner) []string {
	labels := make([]string, 0, len(tp.templates)+1)
	for k := range tp.templates {
		if k != "open_query" {
			labels = append(labels, k)
		}
	}
	// Deterministic order with the catch-all last.
	sortStrings(labels)
	return append(labels, "open_query")
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Intent returns the classified intent.
func (ip *IncrementalPlan) Intent() string { return ip.intent }

// Remaining reports how many steps have not been emitted yet.
func (ip *IncrementalPlan) Remaining() int { return len(ip.subtasks) - ip.pos }

// Done reports whether every step has been emitted.
func (ip *IncrementalPlan) Done() bool { return ip.pos >= len(ip.subtasks) }

// Veto excludes an agent from selection for the remaining steps (adaptive
// feedback, e.g. after a failure or a user thumbs-down).
func (ip *IncrementalPlan) Veto(agentName string) {
	ip.vetoed[strings.ToLower(agentName)] = true
}

// Next selects the agent for the upcoming sub-task *now* and returns the
// wired step. It returns false when the plan is complete.
func (ip *IncrementalPlan) Next() (Step, bool, error) {
	if ip.Done() {
		return Step{}, false, nil
	}
	st := ip.subtasks[ip.pos]
	hits := ip.tp.reg.FindForTask(st.Description, 5)
	var chosen *Step
	for _, h := range hits {
		if ip.vetoed[strings.ToLower(h.Spec.Name)] {
			continue
		}
		s := Step{
			ID:       fmt.Sprintf("s%d", ip.pos+1),
			Agent:    h.Spec.Name,
			Task:     st.Description,
			Score:    h.Score,
			Bindings: map[string]Binding{},
		}
		partial := &Plan{Utterance: ip.utterance, Intent: ip.intent, Steps: ip.steps}
		ip.tp.wire(&s, h.Spec, partial, st)
		chosen = &s
		break
	}
	if chosen == nil {
		return Step{}, false, fmt.Errorf("planner: no non-vetoed agent for sub-task %q", st.Description)
	}
	ip.pos++
	ip.steps = append(ip.steps, *chosen)
	_ = ip.tp.reg.RecordUsage(chosen.Agent, st.Description)
	return *chosen, true, nil
}

// Materialize returns the steps emitted so far as a static Plan (for the
// coordinator or for presenting to the user mid-flight).
func (ip *IncrementalPlan) Materialize() *Plan {
	return &Plan{
		ID:        fmt.Sprintf("plan-inc-%d", ip.tp.nextID.Add(1)),
		Utterance: ip.utterance,
		Intent:    ip.intent,
		Steps:     append([]Step(nil), ip.steps...),
		Explanation: []string{
			"incremental plan: agents selected step-by-step",
			fmt.Sprintf("emitted %d/%d steps", ip.pos, len(ip.subtasks)),
		},
	}
}
