package coordinator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/memo"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/resilience"
	"blueprint/internal/streams"
)

// registerProc registers spec and attaches an instance running proc.
func registerProc(t testing.TB, store *streams.Store, reg *registry.AgentRegistry, spec registry.AgentSpec, proc agent.Processor) {
	t.Helper()
	if err := reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	inst, err := agent.Attach(store, sess, agent.New(spec, proc), agent.Options{DisableListen: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Stop)
}

func singleStepPlan(id, agentName string) *planner.Plan {
	return &planner.Plan{
		ID: id, Utterance: "go", Intent: "rank",
		Steps: []planner.Step{{
			ID: "s1", Agent: agentName, Task: "do the work",
			Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}},
		}},
	}
}

func TestRetryPolicyRecoversTransientFailure(t *testing.T) {
	e := newEnv(t)
	var calls atomic.Int64
	registerProc(t, e.store, e.reg, registry.AgentSpec{
		Name:    "FLAPPY",
		Inputs:  []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
		Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
		QoS:     registry.QoSProfile{CostPerCall: 0.001, Accuracy: 1},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		if calls.Add(1) < 3 {
			return agent.Outputs{}, errors.New("transient glitch")
		}
		return agent.Outputs{Values: map[string]any{"OUT": "ok"}}, nil
	})

	c := New(e.store, e.reg, nil, e.model, Options{
		Retry: resilience.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Multiplier: 2},
	})
	res, err := c.ExecutePlan(sess, singleStepPlan("retry-1", "FLAPPY"), budget.New(budget.Limits{MaxLatency: time.Minute}))
	if err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if res.Retries != 2 {
		t.Fatalf("res.Retries = %d, want 2", res.Retries)
	}
	if res.Budget.Retries != 2 {
		t.Fatalf("budget.Retries = %d, want 2 (backoffs must be charged)", res.Budget.Retries)
	}
	if res.Final["OUT"] != "ok" {
		t.Fatalf("final = %v", res.Final)
	}
}

func TestRetryStopsWhenLatencyBudgetExhausted(t *testing.T) {
	e := newEnv(t)
	var calls atomic.Int64
	registerProc(t, e.store, e.reg, registry.AgentSpec{
		Name:    "DOOMED",
		Inputs:  []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
		Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		calls.Add(1)
		return agent.Outputs{}, errors.New("always down")
	})

	// The first backoff (50ms) exceeds the whole latency budget (10ms):
	// the policy must stop after one attempt rather than retry past the SLO.
	c := New(e.store, e.reg, nil, e.model, Options{
		Retry: resilience.RetryPolicy{MaxAttempts: 5, BaseBackoff: 50 * time.Millisecond},
	})
	res, err := c.ExecutePlan(sess, singleStepPlan("retry-2", "DOOMED"), budget.New(budget.Limits{MaxLatency: 10 * time.Millisecond}))
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no budget headroom for backoff)", got)
	}
	if res.Retries != 0 {
		t.Fatalf("res.Retries = %d, want 0", res.Retries)
	}
}

func TestBreakerOpensAndServesStaleDegraded(t *testing.T) {
	e := newEnv(t)
	var failing atomic.Bool
	registerProc(t, e.store, e.reg, registry.AgentSpec{
		Name:      "CACHED_FLAKE",
		Inputs:    []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
		Outputs:   []registry.ParamSpec{{Name: "OUT", Type: "text"}},
		Cacheable: true,
		QoS:       registry.QoSProfile{CostPerCall: 0.001, Accuracy: 1, Freshness: 50 * time.Millisecond},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		if failing.Load() {
			return agent.Outputs{}, errors.New("brownout")
		}
		return agent.Outputs{Values: map[string]any{"OUT": "primed"}}, nil
	})

	store := memo.New(64)
	breakers := resilience.NewSet(resilience.BreakerConfig{
		Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: time.Hour,
	})
	c := New(e.store, e.reg, nil, e.model, Options{
		Memo:     store,
		Breakers: breakers,
		Degrade:  resilience.DegradePolicy{StaleFactor: 1000},
	})

	// Prime the memo entry, then let its freshness lapse.
	if _, err := c.ExecutePlan(sess, singleStepPlan("deg-0", "CACHED_FLAKE"), budget.New(budget.Limits{})); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	failing.Store(true)

	// One failing run trips the breaker: with the priming success already in
	// the window, the failure makes 2 samples at 50% failure rate.
	if _, err := c.ExecutePlan(sess, singleStepPlan("deg-1", "CACHED_FLAKE"), budget.New(budget.Limits{})); err == nil {
		t.Fatal("failing run should have failed")
	}
	if got := breakers.For("CACHED_FLAKE").State(); got != resilience.Open {
		t.Fatalf("breaker state = %s, want open", got)
	}

	// With the breaker open, the step is answered from the stale entry.
	res, err := c.ExecutePlan(sess, singleStepPlan("deg-3", "CACHED_FLAKE"), budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("degraded serve failed: %v", err)
	}
	if !res.Degraded {
		t.Fatalf("result not marked degraded: %+v", res)
	}
	sr := res.Steps[0]
	if !sr.Degraded || !sr.Cached || sr.StaleFor < 50*time.Millisecond {
		t.Fatalf("step result = %+v", sr)
	}
	if res.Final["OUT"] != "primed" {
		t.Fatalf("final = %v", res.Final)
	}
	// The degraded plan paid nothing for the stale serve.
	if res.Budget.CostSpent != 0 {
		t.Fatalf("degraded serve charged cost: %v", res.Budget.CostSpent)
	}
}

func TestBreakerOpenWithoutStaleEntryFailsFast(t *testing.T) {
	e := newEnv(t)
	registerProc(t, e.store, e.reg, registry.AgentSpec{
		Name:    "UNCACHED_FLAKE",
		Inputs:  []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
		Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{}, errors.New("down")
	})

	breakers := resilience.NewSet(resilience.BreakerConfig{
		Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: time.Hour,
	})
	c := New(e.store, e.reg, nil, e.model, Options{Breakers: breakers})
	for i := 0; i < 2; i++ {
		_, _ = c.ExecutePlan(sess, singleStepPlan(fmt.Sprintf("brk-%d", i), "UNCACHED_FLAKE"), budget.New(budget.Limits{}))
	}
	start := time.Now()
	_, err := c.ExecutePlan(sess, singleStepPlan("brk-fast", "UNCACHED_FLAKE"), budget.New(budget.Limits{}))
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("err = %v, want breaker-open", err)
	}
	// The rejection must not have dispatched the agent at all.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("breaker rejection took %s", d)
	}
}

// Satellite: a step cancelled by a concurrent failure elsewhere in the plan
// must not be retried (context cancellation is not transient), and the
// in-flight agent work must actually stop via the targeted abort. Run with
// -race.
func TestConcurrentCancellationStopsRetriesAndInFlightWork(t *testing.T) {
	e := newEnv(t)
	registerProc(t, e.store, e.reg, registry.AgentSpec{
		Name:    "BOOM",
		Inputs:  []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
		Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{}, errors.New("boom")
	})
	hangReturned := make(chan struct{})
	registerProc(t, e.store, e.reg, registry.AgentSpec{
		Name:    "HANG",
		Inputs:  []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
		Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		defer close(hangReturned)
		<-ctx.Done()
		return agent.Outputs{}, ctx.Err()
	})

	c := New(e.store, e.reg, nil, e.model, Options{
		Retry: resilience.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
	})
	plan := &planner.Plan{
		ID: "cancel-1", Utterance: "go", Intent: "rank",
		Steps: []planner.Step{
			{ID: "a", Agent: "BOOM", Task: "fail",
				Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}}},
			{ID: "b", Agent: "HANG", Task: "hang",
				Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}}},
		},
	}
	res, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	// Only BOOM's two retries happened; the cancelled HANG step retried 0x.
	if res.Retries != 2 {
		t.Fatalf("res.Retries = %d, want 2", res.Retries)
	}
	// The targeted abort must have cancelled HANG's in-flight processor.
	select {
	case <-hangReturned:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight agent work not cancelled by plan failure")
	}
}

// Satellite: replan retries racing budget exhaustion across concurrent plans
// (shared Coordinator, per-plan budgets). Run with -race.
func TestConcurrentReplanRetryUnderBudgetExhaustion(t *testing.T) {
	e := newEnv(t)
	spec := registry.AgentSpec{
		Name:        "FLAKY_MATCHER",
		Description: "match the job seeker profile with available job listings ranking match quality precisely",
		Inputs:      []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		Outputs:     []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
	}
	registerProc(t, e.store, e.reg, spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{}, errors.New("model unavailable")
	})

	c := New(e.store, e.reg, e.tp, e.model, Options{
		RetryOnError: true,
		Retry:        resilience.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
	})
	makePlan := func(i int) *planner.Plan {
		return &planner.Plan{
			ID: fmt.Sprintf("race-%d", i), Utterance: "match me", Intent: "rank",
			Steps: []planner.Step{
				{ID: "s1", Agent: "PROFILER", Task: "collect job seeker profile information from the user",
					Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}}},
				{ID: "s2", Agent: "FLAKY_MATCHER", Task: "match the job seeker profile with available job listings",
					Bindings: map[string]planner.Binding{"JOBSEEKER_DATA": {FromStep: "s1", FromParam: "JOBSEEKER_DATA"}}},
			},
		}
	}
	var wg sync.WaitGroup
	errsC := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the budgets fit the replanned JOBMATCHER, half exhaust.
			limit := 1.0
			if i%2 == 1 {
				limit = 0.0015
			}
			_, err := c.ExecutePlan(sess, makePlan(i), budget.New(budget.Limits{MaxCost: limit}))
			errsC <- err
		}(i)
	}
	wg.Wait()
	close(errsC)
	ok, aborted := 0, 0
	for err := range errsC {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrAborted):
			aborted++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok == 0 || aborted == 0 {
		t.Fatalf("ok=%d aborted=%d: expected both replan successes and budget aborts", ok, aborted)
	}
}
