package dataplan

import (
	"strings"
	"testing"
	"time"

	"blueprint/internal/graphstore"
	"blueprint/internal/llm"
	"blueprint/internal/nlq"
	"blueprint/internal/registry"
	"blueprint/internal/relational"
)

// fixture builds the HR environment of Fig. 7: a jobs table whose city
// column holds literal cities (never "SF bay area"), a title taxonomy graph,
// a registered LLM source, and a perfect-accuracy model.
type fixture struct {
	db      *relational.DB
	graph   *graphstore.Graph
	reg     *registry.DataRegistry
	model   *llm.Model
	planner *Planner
	exec    *Executor
	bind    TableBinding
}

func newFixture(t testing.TB, accuracy float64) *fixture {
	t.Helper()
	db := relational.NewDB()
	stmts := []string{
		`CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary INT)`,
		`INSERT INTO jobs VALUES
			(1, 'Data Scientist', 'San Francisco', 180000),
			(2, 'Senior Data Scientist', 'Oakland', 210000),
			(3, 'Machine Learning Engineer', 'Berkeley', 195000),
			(4, 'Data Scientist', 'Seattle', 170000),
			(5, 'Applied Scientist', 'Palo Alto', 200000),
			(6, 'Data Analyst', 'San Jose', 130000),
			(7, 'Software Engineer', 'San Francisco', 175000),
			(8, 'Staff Data Scientist', 'Mountain View', 230000)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}

	g := graphstore.NewGraph()
	titles := map[string]string{
		"ds": "Data Scientist", "sds": "Senior Data Scientist", "stds": "Staff Data Scientist",
		"mle": "Machine Learning Engineer", "as": "Applied Scientist",
		"da": "Data Analyst", "swe": "Software Engineer",
	}
	for id, name := range titles {
		if err := g.AddNode(id, "title", map[string]any{"name": name}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"ds", "sds"}, {"ds", "stds"}, {"ds", "mle"}, {"ds", "as"}} {
		if err := g.AddEdge(e[0], e[1], "related", nil); err != nil {
			t.Fatal(err)
		}
	}

	reg := registry.NewDataRegistry()
	if err := reg.ImportRelational("hr", "HR database", "conn", db); err != nil {
		t.Fatal(err)
	}
	if err := reg.ImportGraph("taxonomy", "job title taxonomy", "conn", g); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterLLMSource("gpt-sim", "general knowledge", registry.QoSProfile{CostPerCall: 0.01, Latency: 50 * time.Millisecond, Accuracy: 0.9}); err != nil {
		t.Fatal(err)
	}

	model := llm.New(llm.Config{Name: "sim", Tier: llm.TierLarge, CostPer1K: 0.01, BaseLatency: time.Millisecond, Accuracy: accuracy, Seed: 11}, nil)
	tgt, err := BuildTarget(db, "jobs")
	if err != nil {
		t.Fatal(err)
	}
	asset, err := reg.Get("hr.jobs")
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		db: db, graph: g, reg: reg, model: model,
		planner: NewPlanner(reg, nil),
		exec: NewExecutor(Sources{
			Relational: db,
			Graphs:     map[string]*graphstore.Graph{"taxonomy": g},
			Model:      model,
		}),
		bind: TableBinding{Asset: asset, Target: tgt},
	}
}

const runningExample = "I am looking for a data scientist position in SF bay area."

func TestBuildTarget(t *testing.T) {
	f := newFixture(t, 1.0)
	if f.bind.Target.Table != "jobs" {
		t.Fatalf("table = %s", f.bind.Target.Table)
	}
	if len(f.bind.Target.NumericColumns) != 2 {
		t.Fatalf("numeric = %v", f.bind.Target.NumericColumns)
	}
	cities := f.bind.Target.ValueHints["city"]
	if len(cities) != 7 { // 8 rows, San Francisco twice
		t.Fatalf("city hints = %v", cities)
	}
	if _, err := BuildTarget(f.db, "missing"); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestAnalyzeDetectsRegion(t *testing.T) {
	f := newFixture(t, 1.0)
	needs := f.planner.Analyze(runningExample, f.bind)
	if needs.Region != "sf bay area" {
		t.Fatalf("region = %q", needs.Region)
	}
	if needs.Title != "data scientist" {
		t.Fatalf("title = %q", needs.Title)
	}
	// A literal city grounds directly: no region need.
	needs = f.planner.Analyze("data scientist jobs in Seattle", f.bind)
	if needs.Region != "" {
		t.Fatalf("literal city flagged as region: %q", needs.Region)
	}
}

func TestPlanDirectMissesRegion(t *testing.T) {
	f := newFixture(t, 1.0)
	plan, err := f.planner.PlanDirect(runningExample, f.bind)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != "direct" {
		t.Fatalf("strategy = %s", plan.Strategy)
	}
	res, err := f.exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Direct grounding: title matches "Data Scientist" but no city filter
	// fires for "SF bay area", so the result misses region scoping; the
	// Fig. 7 point is that direct is *wrong*, returning Seattle rows too.
	foundSeattle := false
	for _, r := range res.Rows {
		if r["city"] == "Seattle" {
			foundSeattle = true
		}
	}
	if !foundSeattle {
		t.Fatalf("expected direct plan to lack region filtering; rows = %v", res.Rows)
	}
}

func TestPlanDecomposedFig7(t *testing.T) {
	f := newFixture(t, 1.0)
	needs := f.planner.Analyze(runningExample, f.bind)
	plan, err := f.planner.PlanDecomposed(runningExample, f.bind, needs, "taxonomy")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != "decomposed" || len(plan.Nodes) != 3 {
		t.Fatalf("plan = %s", plan)
	}
	// Q2NL injection visible in the LLM node prompt.
	cityNode, ok := plan.Node("cities")
	if !ok || !strings.Contains(cityNode.Args["prompt"].(string), "cities in the sf bay area") {
		t.Fatalf("cities node = %+v", cityNode)
	}
	res, err := f.exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: DS-related titles in bay-area cities = ids 1,2,3,5,8.
	want := map[int64]bool{1: true, 2: true, 3: true, 5: true, 8: true}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		id := r["id"].(int64)
		if !want[id] {
			t.Fatalf("unexpected row id %d (city=%v title=%v)", id, r["city"], r["title"])
		}
	}
	if res.Usage.Cost <= 0 {
		t.Fatalf("usage = %+v", res.Usage)
	}
	if len(res.Trace) != 3 {
		t.Fatalf("trace = %v", res.Trace)
	}
}

func TestPlanDecomposedWithLLMTitles(t *testing.T) {
	f := newFixture(t, 1.0)
	needs := f.planner.Analyze(runningExample, f.bind)
	plan, err := f.planner.PlanDecomposed(runningExample, f.bind, needs, "")
	if err != nil {
		t.Fatal(err)
	}
	titlesNode, ok := plan.Node("titles")
	if !ok || titlesNode.Kind != OpLLM {
		t.Fatalf("titles node = %+v", titlesNode)
	}
	res, err := f.exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// LLM expansion includes Applied Scientist and MLE; all bay-area rows
	// with those titles qualify.
	if len(res.Rows) < 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestPlanAutoChoosesStrategy(t *testing.T) {
	f := newFixture(t, 1.0)
	p1, err := f.planner.Plan(runningExample, f.bind, "taxonomy")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Strategy != "decomposed" {
		t.Fatalf("strategy = %s", p1.Strategy)
	}
	p2, err := f.planner.Plan("data scientist jobs in Seattle", f.bind, "taxonomy")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Strategy != "direct" {
		t.Fatalf("strategy = %s", p2.Strategy)
	}
	res, err := f.exec.Execute(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["id"].(int64) != 4 {
		t.Fatalf("direct rows = %v", res.Rows)
	}
}

func TestEstimates(t *testing.T) {
	f := newFixture(t, 1.0)
	needs := f.planner.Analyze(runningExample, f.bind)
	dec, _ := f.planner.PlanDecomposed(runningExample, f.bind, needs, "taxonomy")
	dir, _ := f.planner.PlanDirect(runningExample, f.bind)
	if dec.Est.Cost <= dir.Est.Cost {
		t.Fatalf("decomposed should cost more: %v vs %v", dec.Est.Cost, dir.Est.Cost)
	}
	if dec.Est.Latency <= dir.Est.Latency {
		t.Fatalf("decomposed should be slower: %v vs %v", dec.Est.Latency, dir.Est.Latency)
	}
	if dec.Est.Accuracy <= 0 || dec.Est.Accuracy > 1 {
		t.Fatalf("accuracy = %v", dec.Est.Accuracy)
	}
}

func TestDegradedLLMReducesRecallNotCrash(t *testing.T) {
	f := newFixture(t, 0.0) // always degraded
	needs := f.planner.Analyze(runningExample, f.bind)
	plan, err := f.planner.PlanDecomposed(runningExample, f.bind, needs, "taxonomy")
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage.Accuracy >= 1.0 {
		t.Fatalf("degraded accuracy = %v", res.Usage.Accuracy)
	}
	// Perfect model finds 5; degraded should find <= 5 (dropped city).
	if len(res.Rows) > 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestPlanValidate(t *testing.T) {
	p := &Plan{Output: "x", Nodes: []Node{{ID: "x", Kind: OpConst}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Plan{
		{Nodes: []Node{{ID: "a", Kind: OpConst}}},                                    // no output
		{Output: "a", Nodes: []Node{{ID: "a"}, {ID: "a"}}},                           // dup
		{Output: "b", Nodes: []Node{{ID: "b", DependsOn: []string{"zzz"}}}},          // missing dep
		{Output: "b", Nodes: []Node{{ID: "b", DependsOn: []string{"c"}}, {ID: "c"}}}, // forward dep
		{Output: "missing", Nodes: []Node{{ID: "a"}}},                                // bad output
		{Output: "a", Nodes: []Node{{ID: ""}, {ID: "a"}}},                            // empty id
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
}

func TestPlanString(t *testing.T) {
	f := newFixture(t, 1.0)
	plan, _ := f.planner.Plan(runningExample, f.bind, "taxonomy")
	s := plan.String()
	if !strings.Contains(s, "decomposed") || !strings.Contains(s, "select") {
		t.Fatalf("render = %s", s)
	}
}

func TestExecutorOperators(t *testing.T) {
	f := newFixture(t, 1.0)
	// Union + const + summarize pipeline.
	plan := &Plan{
		Query:    "misc",
		Strategy: "manual",
		Nodes: []Node{
			{ID: "a", Kind: OpLLM, Args: map[string]any{"prompt": nlq.Q2NL("cities_in_region", "seattle area")}},
			{ID: "b", Kind: OpLLM, Args: map[string]any{"prompt": nlq.Q2NL("cities_in_region", "socal")}},
			{ID: "u", Kind: OpUnion, DependsOn: []string{"a", "b"}},
			{ID: "s", Kind: OpSummarize, DependsOn: []string{"u"}, Args: map[string]any{"max_words": 20}},
		},
		Output: "s",
	}
	res, err := f.exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Text, "Summary:") || !strings.Contains(res.Text, "Seattle") {
		t.Fatalf("text = %q", res.Text)
	}
	// Extract operator with text_from chaining.
	plan2 := &Plan{
		Query: "x", Strategy: "manual",
		Nodes: []Node{
			{ID: "c", Kind: OpConst, Args: map[string]any{"value": "I am looking for a data scientist position in SF bay area."}},
			{ID: "e", Kind: OpExtract, DependsOn: []string{"c"}, Args: map[string]any{"instruction": "criteria", "text_from": "c"}},
		},
		Output: "e",
	}
	res2, err := f.exec.Execute(plan2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Text != "data scientist position in SF bay area" {
		t.Fatalf("extract = %q", res2.Text)
	}
}

func TestExecutorMissingSources(t *testing.T) {
	e := NewExecutor(Sources{})
	plans := []*Plan{
		{Output: "q", Nodes: []Node{{ID: "q", Kind: OpSQL, Args: map[string]any{"sql": "SELECT 1"}}}},
		{Output: "l", Nodes: []Node{{ID: "l", Kind: OpLLM, Args: map[string]any{"prompt": "x"}}}},
		{Output: "g", Nodes: []Node{{ID: "g", Kind: OpGraphExpand, Args: map[string]any{"asset": "t", "entity": "x"}}}},
		{Output: "d", Nodes: []Node{{ID: "d", Kind: OpDocFind, Args: map[string]any{"collection": "c"}}}},
		{Output: "x", Nodes: []Node{{ID: "x", Kind: OpKind("bogus")}}},
	}
	for i, p := range plans {
		if _, err := e.Execute(p); err == nil {
			t.Fatalf("case %d executed without sources", i)
		}
	}
}

func TestEmptyExpansionMatchesNothing(t *testing.T) {
	f := newFixture(t, 1.0)
	plan := &Plan{
		Query: "x", Strategy: "manual",
		Nodes: []Node{
			{ID: "cities", Kind: OpLLM, Args: map[string]any{"prompt": "list the cities in the atlantis"}},
			{ID: "select", Kind: OpSelectIn, DependsOn: []string{"cities"},
				Args: map[string]any{"table": "jobs", "city_col": "city", "city_from": "cities"}},
		},
		Output: "select",
	}
	res, err := f.exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("unknown region must match nothing, got %v", res.Rows)
	}
}

func TestDocFindOperator(t *testing.T) {
	f := newFixture(t, 1.0)
	ds := newDocs(t)
	f.exec = NewExecutor(Sources{Docs: ds})
	plan := &Plan{
		Query: "profiles", Strategy: "manual",
		Nodes:  []Node{{ID: "d", Kind: OpDocFind, Args: map[string]any{"collection": "profiles", "field": "title", "value": "Data Scientist"}}},
		Output: "d",
	}
	res, err := f.exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["name"] != "Ada" {
		t.Fatalf("doc rows = %v", res.Rows)
	}
}
