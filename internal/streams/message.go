// Package streams implements the blueprint architecture's central
// orchestration substrate: streams of data and control messages that
// components produce, distribute, monitor and consume (paper §V-A).
//
// A stream is an ordered, append-only sequence of messages. Messages carry
// either data (payloads flowing between agents) or control (instructions such
// as "execute the SQL agent"). Components subscribe to streams — optionally
// filtered by tags, kinds, sessions or senders — and receive notifications
// for every matching message. Streams are first-class data resources: they
// can be listed, read from any offset, closed, persisted to a write-ahead log
// and recovered, giving the observability and controllability the paper
// calls for.
package streams

import (
	"encoding/json"
	"fmt"
)

// Kind distinguishes the two message classes of §V-A plus UI events (§VI).
type Kind int

const (
	// Data messages carry payloads between components.
	Data Kind = iota
	// Control messages carry instructions (e.g. invoke SQL agent).
	Control
	// Event messages carry UI events (clicks, form submissions), which the
	// case study (§VI, Fig. 9) processes "just like any other input".
	Event
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Control:
		return "control"
	case Event:
		return "event"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Well-known control operations exchanged between blueprint components.
const (
	OpExecuteAgent = "EXECUTE_AGENT" // coordinator -> agent: run with given inputs
	OpAddAgent     = "ADD_AGENT"     // session: include an agent in the session
	OpRemoveAgent  = "REMOVE_AGENT"  // session: remove an agent
	OpEnterSession = "ENTER_SESSION" // agent signals entry into a session
	OpExitSession  = "EXIT_SESSION"  // agent signals exit from a session
	OpCreateStream = "CREATE_STREAM" // request creation of an output stream
	OpPlan         = "PLAN"          // task planner -> coordinator: plan DAG
	OpAbort        = "ABORT"         // coordinator: abort execution (budget)
	OpReplan       = "REPLAN"        // coordinator -> planner: request replan
	OpEOS          = "EOS"           // end of stream sentinel
)

// Directive is the structured body of a control message.
type Directive struct {
	// Op is one of the Op* constants (or an application-defined operation).
	Op string `json:"op"`
	// Agent names the target agent, when the operation addresses one.
	Agent string `json:"agent,omitempty"`
	// Args carries operation parameters (e.g. agent input bindings).
	Args map[string]any `json:"args,omitempty"`
}

// Message is a single entry in a stream.
type Message struct {
	// ID uniquely identifies the message across all streams ("m<global seq>").
	ID string `json:"id"`
	// Stream is the id of the stream this message belongs to.
	Stream string `json:"stream"`
	// Seq is the zero-based offset of the message within its stream.
	Seq int64 `json:"seq"`
	// TS is a store-global logical timestamp establishing a total order
	// across streams (used to reconstruct flows such as Figs. 9 and 10).
	TS int64 `json:"ts"`
	// Kind is the message class.
	Kind Kind `json:"kind"`
	// Tags enable selective consumption ("a message tagged SQL can trigger
	// the SQLExecutor agent", §V-B).
	Tags []string `json:"tags,omitempty"`
	// Sender names the producing component.
	Sender string `json:"sender,omitempty"`
	// Session scopes the message to a collaborative context (§V-E).
	Session string `json:"session,omitempty"`
	// Param optionally names the agent output parameter that produced the
	// payload (used by the coordinator to wire DAG edges).
	Param string `json:"param,omitempty"`
	// Payload is the data body. It must be JSON-serializable when WAL
	// persistence is enabled.
	Payload any `json:"payload,omitempty"`
	// Directive is the control body; non-nil iff Kind == Control.
	Directive *Directive `json:"directive,omitempty"`
}

// HasTag reports whether the message carries the given tag.
func (m Message) HasTag(tag string) bool {
	for _, t := range m.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// IsEOS reports whether the message is the end-of-stream sentinel.
func (m Message) IsEOS() bool {
	return m.Kind == Control && m.Directive != nil && m.Directive.Op == OpEOS
}

// Clone returns a shallow copy of the message with its own tag slice, so
// consumers may not mutate shared state.
func (m Message) Clone() Message {
	cp := m
	if m.Tags != nil {
		cp.Tags = append([]string(nil), m.Tags...)
	}
	if m.Directive != nil {
		d := *m.Directive
		cp.Directive = &d
	}
	return cp
}

// PayloadString returns the payload rendered as a string: strings verbatim,
// everything else via JSON encoding. It is the "straightforward renderer"
// for simple data types mentioned in §V-B.
func (m Message) PayloadString() string {
	switch p := m.Payload.(type) {
	case nil:
		return ""
	case string:
		return p
	default:
		b, err := json.Marshal(p)
		if err != nil {
			return fmt.Sprintf("%v", p)
		}
		return string(b)
	}
}
