package dataplan

import (
	"testing"

	"blueprint/internal/docstore"
)

// newDocs builds a small profiles collection for OpDocFind tests.
func newDocs(t testing.TB) *docstore.Store {
	t.Helper()
	ds := docstore.NewStore()
	ds.EnsureCollection("profiles")
	if err := ds.Insert("profiles", "p1", docstore.Doc{"name": "Ada", "title": "Data Scientist"}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Insert("profiles", "p2", docstore.Doc{"name": "Alan", "title": "Analyst"}); err != nil {
		t.Fatal(err)
	}
	return ds
}
