package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Structured event log. Spans answer "how long", metrics answer "how
// often"; events answer "what did the system decide and why" — the
// governor shedding a tenant, a breaker tripping, a retry charging its
// backoff to the budget, a degraded serve, a WAL group commit. Each event
// is one leveled, timestamped record with a component, a kind, optional
// session/trace correlation ids and key/value attributes, held in a
// bounded ring (GET /events and bpctl events read it; the flight recorder
// copies the matching slice into slow-ask exemplars).
//
// Design constraints mirror the rest of the plane: a disabled log (or an
// event below the minimum level) must cost exactly one atomic load at the
// emission site, and hot sites with expensive attributes guard with
// Events.On(level) before building them. High-frequency sites (per-admit,
// per-group-commit) additionally gate through a Sampler so steady-state
// traffic cannot wash the interesting transitions out of the ring.

// Level orders event severities.
type Level int32

// Event levels, ascending severity. LevelOff disables the log entirely.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String renders the conventional lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel parses a level name as rendered by String.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown level %q", s)
}

// MarshalJSON renders levels as strings ("warn", not 2).
func (l Level) MarshalJSON() ([]byte, error) {
	return []byte(`"` + l.String() + `"`), nil
}

// UnmarshalJSON accepts the String form.
func (l *Level) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' {
		b = b[1 : len(b)-1]
	}
	lv, err := ParseLevel(string(b))
	if err != nil {
		return err
	}
	*l = lv
	return nil
}

// Event is one recorded decision or state transition.
type Event struct {
	// Seq is the process-wide emission sequence number (monotonic; the
	// /events since-cursor and the recorder's window boundary).
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Level Level     `json:"level"`
	// Component names the emitting layer: "governor", "breaker",
	// "scheduler", "session", "durability".
	Component string `json:"component"`
	// Kind names the decision: "shed", "open", "retry", "replan",
	// "degraded-serve", "group-commit", ...
	Kind string `json:"kind"`
	// Session and Trace correlate the event with a session ring and an
	// ask's X-Trace-Id (either may be empty for process-global events).
	Session string `json:"session,omitempty"`
	Trace   string `json:"trace,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// DefaultEventCapacity bounds the global event ring.
const DefaultEventCapacity = 4096

// Events is the process-global event log, the events counterpart of
// Default and Spans.
var Events = NewEventLog(DefaultEventCapacity)

// EventLog is a leveled, bounded event ring. Emission below the minimum
// level costs one atomic load; recorded events take the mutex (cold by
// construction — events mark decisions, not per-row work).
type EventLog struct {
	min atomic.Int32
	seq atomic.Uint64

	mu   sync.Mutex
	ring []Event
	next int
	full bool
}

// NewEventLog creates a log recording LevelInfo and above.
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &EventLog{ring: make([]Event, 0, capacity)}
	l.min.Store(int32(LevelInfo))
	return l
}

// On reports whether an event at lv would be recorded — the one-atomic-load
// fast path every emission site checks (implicitly via Emit, explicitly
// when building attributes is itself a cost).
func (l *EventLog) On(lv Level) bool {
	return l != nil && lv >= Level(l.min.Load()) && lv < LevelOff
}

// SetLevel sets the minimum recorded level (LevelOff disables).
func (l *EventLog) SetLevel(lv Level) { l.min.Store(int32(lv)) }

// Level returns the minimum recorded level.
func (l *EventLog) Level() Level { return Level(l.min.Load()) }

// Emit records an event with no session/trace correlation.
func (l *EventLog) Emit(lv Level, component, kind string, attrs ...Attr) {
	if !l.On(lv) {
		return
	}
	l.Append(Event{Level: lv, Component: component, Kind: kind, Attrs: attrs})
}

// Append records a fully formed event (Seq and Time are stamped here),
// applying the level gate. The seam for sites that carry session/trace ids.
func (l *EventLog) Append(e Event) {
	if !l.On(e.Level) {
		return
	}
	e.Seq = l.seq.Add(1)
	e.Time = time.Now()
	l.mu.Lock()
	if cap(l.ring) > len(l.ring) && !l.full {
		l.ring = append(l.ring, e)
		if len(l.ring) == cap(l.ring) {
			l.full = true
		}
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % len(l.ring)
	}
	l.mu.Unlock()
}

// Seq returns the last assigned sequence number (the /events cursor for
// "everything from now on").
func (l *EventLog) Seq() uint64 { return l.seq.Load() }

// Since returns the retained events with Seq > after, oldest first. An
// after of 0 returns the whole ring.
func (l *EventLog) Since(after uint64) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var ordered []Event
	if !l.full {
		ordered = l.ring
	} else {
		ordered = make([]Event, 0, len(l.ring))
		ordered = append(ordered, l.ring[l.next:]...)
		ordered = append(ordered, l.ring[:l.next]...)
	}
	// The ring is ordered by Seq, so binary-search-free scan from the first
	// qualifying index keeps this one allocation.
	i := 0
	for i < len(ordered) && ordered[i].Seq <= after {
		i++
	}
	out := make([]Event, len(ordered)-i)
	copy(out, ordered[i:])
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Cap returns the ring capacity.
func (l *EventLog) Cap() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return cap(l.ring)
}

// SetCapacity re-bounds the ring, dropping retained events (experiment and
// daemon-boot hook, not a steady-state operation).
func (l *EventLog) SetCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	l.mu.Lock()
	l.ring = make([]Event, 0, capacity)
	l.next = 0
	l.full = false
	l.mu.Unlock()
}

// Reset drops retained events, keeping capacity and level (test hook).
func (l *EventLog) Reset() {
	l.mu.Lock()
	l.ring = l.ring[:0]
	l.next = 0
	l.full = false
	l.mu.Unlock()
}

// Sampler admits 1 in every N calls — the per-site sampling gate for
// high-frequency event sources (per-admit, per-group-commit) so they
// cannot wash rare transitions out of the ring. A nil sampler admits
// everything.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler creates a sampler admitting 1 in every `every` calls
// (every <= 1 admits all).
func NewSampler(every int) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{every: uint64(every)}
}

// Allow reports whether this call is the sampled one of its stride.
func (s *Sampler) Allow() bool {
	if s == nil || s.every == 1 {
		return true
	}
	return s.n.Add(1)%s.every == 1
}

// ---- trace-id correlation ----

// Trace ids correlate an HTTP response (X-Trace-Id), the governor's shed
// events, the session's span tree and the flight-recorder exemplar of one
// ask. They ride context.Context: blueprintd mints one per ask request and
// GovernedAsk/AskCtx mint one when the caller didn't.

type traceIDKey struct{}

var traceSeq atomic.Uint64

// NewTraceID mints a process-unique trace id with a readable prefix
// (typically the session id).
func NewTraceID(prefix string) string {
	n := traceSeq.Add(1)
	if prefix == "" {
		prefix = "trace"
	}
	return prefix + "-" + strconv.FormatUint(n, 36)
}

// WithTraceID returns ctx carrying the trace id (ctx unchanged for "").
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the trace id carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
