// blueprintd serves a blueprint System over HTTP — the "deployed in a
// distributed system" face of the architecture, exposing sessions, the
// conversational surface, both registries and stream observability.
//
// Endpoints:
//
//	POST /sessions                         -> {"id": "session:1"}
//	POST /sessions/{id}/ask    {"text":..} -> {"answer": ...}
//	POST /sessions/{id}/click  {event}     -> {"answer": ...}
//	GET  /sessions/{id}/flow               -> per-message flow trace
//	GET  /agents                           -> agent registry contents
//	GET  /data                             -> data registry contents
//	GET  /stats                            -> flat registry snapshot (all counters + quantiles)
//	GET  /memo                             -> step-result memoization stats
//	GET  /metrics                          -> Prometheus text exposition (0.0.4)
//	GET  /trace/{id}                       -> span tree for a session's recent asks
//	POST /snapshot                         -> take a durability snapshot now
//
// With -pprof, net/http/pprof's profiling handlers are additionally served
// under /debug/pprof/ (off by default: profiling endpoints are a debugging
// surface, not a production one).
//
// Deploy-time tuning: -parallel bounds how many plan steps the coordinator
// executes concurrently per plan, -memo bounds the step-result memoization
// cache (entries; -memo 0 uses the default, -no-memo disables reuse), and
// -data-dir points the shared durability engine at its WAL + snapshot
// directory — a restarted daemon then recovers tables, registries, warm
// memo entries and stream history instead of coming back cold. SIGINT and
// SIGTERM shut down gracefully: in-flight requests drain, a final snapshot
// is flushed and the log closes cleanly.
//
// Overload control: -max-concurrent bounds in-flight asks globally (0 =
// ungoverned); beyond it asks queue (bounded by -max-queue, waiting at most
// -queue-timeout) and then shed with HTTP 429 + Retry-After. Tenants are
// identified by the X-Tenant header ("default" when absent) and capped to a
// -tenant-share fraction of the slots under contention. A shed repeat ask
// within the staleness budget is answered from the memoized previous answer,
// marked "degraded": true. -read-timeout, -write-timeout and -idle-timeout
// bound the HTTP connection itself (slowloris defense).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"blueprint"
	"blueprint/internal/obs"
	"blueprint/internal/resilience"
)

type server struct {
	sys *blueprint.System
	mu  sessionMap
}

// sessionMap guards the live session handles against concurrent HTTP
// clients (POST /sessions racing asks and /stats reads).
type sessionMap struct {
	sync.RWMutex
	sessions map[string]*blueprint.Session
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 42, "deterministic seed")
	walPath := flag.String("wal", "", "optional stand-alone stream WAL path (superseded by -data-dir)")
	dataDir := flag.String("data-dir", "", "durability directory: shared WAL + snapshots for warm restarts")
	snapEvery := flag.Duration("snapshot-every", time.Minute, "background snapshot interval when -data-dir is set (0 = only on shutdown)")
	parallel := flag.Int("parallel", 0, "max concurrently executing steps per plan (0 = default)")
	memoCap := flag.Int("memo", 0, "step-result memoization cache capacity in entries (0 = default)")
	noMemo := flag.Bool("no-memo", false, "disable step-result memoization")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof handlers under /debug/pprof/")
	maxConc := flag.Int("max-concurrent", 0, "max in-flight asks before queueing/shedding (0 = ungoverned)")
	maxQueue := flag.Int("max-queue", 0, "max asks waiting for a slot before immediate shed (0 = 2x max-concurrent)")
	queueTO := flag.Duration("queue-timeout", time.Second, "max time a queued ask waits before it is shed")
	tenantShare := flag.Float64("tenant-share", 0.5, "fraction of slots one tenant may hold under contention")
	readTO := flag.Duration("read-timeout", 30*time.Second, "max time to read a request, headers included (slowloris bound)")
	writeTO := flag.Duration("write-timeout", 60*time.Second, "max time to write a response")
	idleTO := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
	flag.Parse()

	sys, err := blueprint.New(blueprint.Config{
		Seed: *seed, ModelAccuracy: 1.0, WALPath: *walPath,
		DataDir: *dataDir, SnapshotEvery: *snapEvery,
		MaxParallel: *parallel, MemoCapacity: *memoCap, DisableMemo: *noMemo,
		Governor: resilience.GovernorConfig{
			MaxConcurrent: *maxConc, MaxQueue: *maxQueue,
			QueueTimeout: *queueTO, TenantShare: *tenantShare,
			RetryAfter: *queueTO,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	s := &server{sys: sys, mu: sessionMap{sessions: map[string]*blueprint.Session{}}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.createSession)
	mux.HandleFunc("POST /sessions/{id}/ask", s.ask)
	mux.HandleFunc("POST /sessions/{id}/click", s.click)
	mux.HandleFunc("GET /sessions/{id}/flow", s.flow)
	mux.HandleFunc("GET /agents", s.agents)
	mux.HandleFunc("GET /data", s.data)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /memo", s.memo)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /trace/{id}", s.trace)
	mux.HandleFunc("POST /snapshot", s.snapshot)
	if *pprofOn {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		log.Printf("pprof on at /debug/pprof/")
	}

	if *dataDir != "" {
		rec := sys.DurabilityStats().Recovery
		log.Printf("durability on at %s: snapshot_restored=%v replayed_records=%d torn_tail=%v recovery=%s",
			*dataDir, rec.SnapshotRestored, rec.ReplayedRecords, rec.TornTailTruncated, rec.Duration)
	}
	log.Printf("blueprintd %s listening on %s (agents=%d, data assets=%d)",
		blueprint.Version, *addr, sys.AgentRegistry.Len(), sys.DataRegistry.Len())

	if *maxConc > 0 {
		log.Printf("overload governor on: max_concurrent=%d max_queue=%d queue_timeout=%s tenant_share=%.2f",
			*maxConc, *maxQueue, *queueTO, *tenantShare)
	}
	// Connection-level timeouts: a client trickling bytes (slowloris) is cut
	// off instead of pinning a goroutine and an admission slot forever.
	srv := &http.Server{
		Addr: *addr, Handler: mux,
		ReadTimeout:       *readTO,
		ReadHeaderTimeout: *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		sys.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful shutdown: drain in-flight requests, then flush a final
	// snapshot and close the log cleanly (System.Close).
	log.Printf("shutting down: draining requests, flushing final snapshot")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	sys.Close()
	if *dataDir != "" {
		st := sys.DurabilityStats()
		log.Printf("durability closed: snapshots=%d appends=%d log_bytes=%d", st.Snapshots, st.Appends, st.LogBytes)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sys.StartSession("")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.mu.Lock()
	s.mu.sessions[sess.ID] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": sess.ID})
}

func (s *server) session(w http.ResponseWriter, r *http.Request) *blueprint.Session {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "session:") {
		id = "session:" + id
	}
	s.mu.RLock()
	sess, ok := s.mu.sessions[id]
	s.mu.RUnlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session " + id})
		return nil
	}
	return sess
}

func (s *server) ask(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var body struct {
		Text    string `json:"text"`
		Timeout int    `json:"timeout_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Text == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be {\"text\": ...}"})
		return
	}
	timeout := 15 * time.Second
	if body.Timeout > 0 {
		timeout = time.Duration(body.Timeout) * time.Millisecond
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	ans, err := sess.GovernedAsk(r.Context(), tenant, body.Text, timeout)
	if err != nil {
		var ov *resilience.OverloadError
		if errors.As(err, &ov) {
			// Shed: 429 with the governor's advisory backoff. Retry-After
			// is whole seconds (RFC 9110), rounded up so "1s" never
			// becomes "0".
			secs := int(math.Ceil(ov.RetryAfter.Seconds()))
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error": err.Error(), "retry_after_ms": ov.RetryAfter.Milliseconds(),
			})
			return
		}
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	}
	out := map[string]any{"answer": ans.Text}
	if ans.Degraded {
		out["degraded"] = true
		out["stale_for_ms"] = ans.StaleFor.Milliseconds()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) click(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var event map[string]any
	if err := json.NewDecoder(r.Body).Decode(&event); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be a UI event object"})
		return
	}
	answer, err := sess.Click(event, 15*time.Second)
	if err != nil {
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"answer": answer})
}

func (s *server) flow(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	steps := sess.Flow()
	out := make([]map[string]any, len(steps))
	for i, st := range steps {
		out[i] = map[string]any{
			"ts": st.TS, "sender": st.Sender, "stream": st.Stream,
			"kind": st.Kind.String(), "op": st.Op, "tags": st.Tags, "payload": st.Payload,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) agents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.AgentRegistry.List())
}

func (s *server) data(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.DataRegistry.List("", ""))
}

// stats serves a thin view over the metrics registry: every registered
// instrument flattened to name->value (histograms as _count/_sum/_p50/_p95/
// _p99), plus the few non-numeric or derived fields a registry cannot carry
// (version string, hit-rate ratios, recovery summary).
func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	ms := s.sys.MemoStats()
	cs := s.sys.Enterprise.DB.CacheStats()
	s.mu.RLock()
	sessions := len(s.mu.sessions)
	s.mu.RUnlock()
	ds := s.sys.DurabilityStats()
	breakers := map[string]string{}
	for name, st := range s.sys.BreakerStates() {
		breakers[name] = st.String()
	}
	out := map[string]any{
		"version": blueprint.Version, "sessions": sessions,
		"memo_hit_rate":                 ms.HitRate(),
		"stmt_cache_hit_rate":           cs.HitRate(),
		"governor_enabled":              s.sys.Governor != nil,
		"breakers":                      breakers,
		"durability_enabled":            s.sys.Durability != nil,
		"durability_segments":           ds.Segments,
		"durability_last_recovery":      ds.Recovery.Duration.String(),
		"durability_snapshot_restored":  ds.Recovery.SnapshotRestored,
		"durability_replayed_records":   ds.Recovery.ReplayedRecords,
		"durability_torn_tail_repaired": ds.Recovery.TornTailTruncated,
	}
	for name, v := range obs.Default.Snapshot() {
		out[name] = v
	}
	writeJSON(w, http.StatusOK, out)
}

// metrics serves the registry in Prometheus text exposition format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}

// trace serves a session's recorded span tree: the raw spans plus a
// rendered tree (what bpctl trace prints).
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "session:") {
		id = "session:" + id
	}
	spans := obs.Spans.Session(id)
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no trace recorded for " + id})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session": id,
		"spans":   spans,
		"tree":    obs.RenderTree(spans),
	})
}

// snapshot triggers a durability snapshot on demand (POST /snapshot).
func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	if err := s.sys.Snapshot(); err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	st := s.sys.DurabilityStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshots":      st.Snapshots,
		"snapshot_bytes": st.SnapshotBytes,
		"log_bytes":      st.LogBytes,
		"segments":       st.Segments,
	})
}

func (s *server) memo(w http.ResponseWriter, r *http.Request) {
	ms := s.sys.MemoStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":       s.sys.Memo != nil,
		"hits":          ms.Hits,
		"misses":        ms.Misses,
		"hit_rate":      ms.HitRate(),
		"coalesced":     ms.Coalesced,
		"evictions":     ms.Evictions,
		"invalidations": ms.Invalidations,
		"entries":       ms.Entries,
		"saved_cost":    ms.SavedCost,
		"saved_latency": ms.SavedLatency.String(),
	})
}
