package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestAllExperimentsRun regenerates every figure and checks structural
// invariants of the results — the repo-level guarantee that EXPERIMENTS.md
// can always be reproduced.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale; skipped with -short")
	}
	tables, err := All(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 22 {
		t.Fatalf("tables = %d, want 22", len(tables))
	}
	byID := map[string]*Table{}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s has no rows", tb.ID)
		}
		if tb.String() == "" {
			t.Errorf("%s renders empty", tb.ID)
		}
		byID[tb.ID] = tb
	}

	// F9/F10: the paper's exact flows must verify.
	for _, id := range []string{"F9", "F10"} {
		verified := false
		for _, r := range byID[id].Rows {
			for _, m := range r.Metrics {
				if m.Name == "sequence_verified" && m.Value == "true" {
					verified = true
				}
			}
		}
		if !verified {
			t.Errorf("%s flow sequence not verified:\n%s", id, byID[id])
		}
	}

	// F7: the direct strategy must lose to decomposition on recall.
	var directRecall, decomposedRecall string
	for _, r := range byID["F7"].Rows {
		for _, m := range r.Metrics {
			if m.Name == "recall" {
				if r.Series == "direct" {
					directRecall = m.Value
				}
				if r.Series == "decomposed acc=1.0" {
					decomposedRecall = m.Value
				}
			}
		}
	}
	if decomposedRecall != "100.0%" {
		t.Errorf("decomposed recall = %s, want 100.0%%", decomposedRecall)
	}
	if directRecall == "100.0%" || directRecall == "" {
		t.Errorf("direct recall = %s, want < 100%%", directRecall)
	}

	// A1: generous budget completes; tight budget aborts.
	outcomes := map[string]string{}
	for _, r := range byID["A1"].Rows {
		for _, m := range r.Metrics {
			if m.Name == "outcome" {
				outcomes[r.Series] = m.Value
			}
		}
	}
	if outcomes["budget=$1.00000"] != "completed" {
		t.Errorf("generous budget outcome = %s", outcomes["budget=$1.00000"])
	}
	if outcomes["budget=$0.00010"] != "aborted" {
		t.Errorf("tight budget outcome = %s", outcomes["budget=$0.00010"])
	}

	// A2: objective-driven crossover.
	chosen := map[string]string{}
	for _, r := range byID["A2"].Rows {
		for _, m := range r.Metrics {
			if m.Name == "chosen" {
				chosen[r.Series] = m.Value
			}
		}
	}
	if chosen["tier cheapest"] != "small" || chosen["tier accuracy-first"] != "large" {
		t.Errorf("tier choices = %v", chosen)
	}
	if chosen["plan cheapest"] != "direct" || chosen["plan accuracy-first"] != "decomposed" {
		t.Errorf("plan choices = %v", chosen)
	}

	// A4: both phases ran the full mix and the cached phase observed a
	// near-perfect statement-cache hit rate (4 texts, 2000 queries).
	a4 := map[string]map[string]string{}
	for _, r := range byID["A4"].Rows {
		a4[r.Series] = map[string]string{}
		for _, m := range r.Metrics {
			a4[r.Series][m.Name] = m.Value
		}
	}
	if a4["uncached"]["queries"] != "2000" || a4["cached"]["queries"] != "2000" {
		t.Errorf("A4 query counts = %v", a4)
	}
	if a4["cached"]["hits"] != "1996" || a4["cached"]["misses"] != "4" {
		t.Errorf("A4 cache counters = %v", a4["cached"])
	}

	// A5: the concurrent scheduler must finish the fan-out plan in two
	// waves, well under the sequential baseline. The threshold here is
	// deliberately looser than the ~5x the scheduler delivers (and the
	// >= 2x the bench harness demonstrates): full serialization measures
	// ~1.0x, so 1.5x catches the regression without making a CI-gating
	// test flaky on loaded runners.
	a5 := map[string]map[string]string{}
	for _, r := range byID["A5"].Rows {
		a5[r.Series] = map[string]string{}
		for _, m := range r.Metrics {
			a5[r.Series][m.Name] = m.Value
		}
	}
	if a5["parallel"]["waves"] != "2" {
		t.Errorf("A5 waves = %v", a5["parallel"])
	}
	var speedup float64
	if _, err := fmt.Sscanf(a5["parallel"]["speedup"], "%fx", &speedup); err != nil {
		t.Errorf("A5 speedup unparsable: %v (%v)", err, a5["parallel"])
	} else if speedup < 1.5 {
		t.Errorf("A5 fan-out speedup = %.2fx, want >= 1.5x (serialization regression)", speedup)
	}

	// A6: the memoization invariants (full warm hit, dedup to one
	// execution per step, selective invalidation) are enforced inside the
	// experiment itself — it errors out on hit-rate collapse or dedup
	// loss, failing All above. Here, spot-check the reported counters.
	a6 := map[string]map[string]string{}
	for _, r := range byID["A6"].Rows {
		a6[r.Series] = map[string]string{}
		for _, m := range r.Metrics {
			a6[r.Series][m.Name] = m.Value
		}
	}
	var memoSpeedup float64
	if _, err := fmt.Sscanf(a6["repeated-ask warm"]["speedup"], "%fx", &memoSpeedup); err != nil {
		t.Errorf("A6 speedup unparsable: %v (%v)", err, a6["repeated-ask warm"])
	} else if memoSpeedup < 5 {
		t.Errorf("A6 warm repeated-ask speedup = %.1fx, want >= 5x", memoSpeedup)
	}
	if a6["concurrent identical sessions"]["executions"] != "3" {
		t.Errorf("A6 dedup executions = %v", a6["concurrent identical sessions"])
	}
	if a6["concurrent identical sessions"]["dedup_coalesced"] == "0" {
		t.Errorf("A6 no coalesced requests: %v", a6["concurrent identical sessions"])
	}
	if a6["after source invalidation"]["reexecuted"] != "1/3" {
		t.Errorf("A6 invalidation row = %v", a6["after source invalidation"])
	}

	// A7: the compiled-vs-interpreted floors (>= 2x and an allocs/op drop
	// on the filtered-scan and GROUP BY paths) are enforced inside the
	// experiment itself in full mode — a regression fails All above. Here,
	// spot-check the reported rows: every workload must have run and the
	// compiled plan cache must have compiled at least the three statements.
	a7 := map[string]map[string]string{}
	for _, r := range byID["A7"].Rows {
		a7[r.Series] = map[string]string{}
		for _, m := range r.Metrics {
			a7[r.Series][m.Name] = m.Value
		}
	}
	for _, series := range []string{"filtered scan (wide)", "3-way join", "group by (2 keys, 4 aggs)"} {
		if a7[series]["speedup"] == "" {
			t.Errorf("A7 missing speedup for %s: %v", series, a7[series])
		}
	}
	if a7["plan cache"]["compiles"] == "" || a7["plan cache"]["compiles"] == "0" {
		t.Errorf("A7 plan cache row = %v", a7["plan cache"])
	}

	// A10: the <= 5% telemetry overhead ceiling and the >= 4 span-component
	// floor are enforced inside the experiment itself (full mode) — a
	// regression fails All above. Spot-check the reported tree breadth.
	a10 := map[string]map[string]string{}
	for _, r := range byID["A10"].Rows {
		a10[r.Series] = map[string]string{}
		for _, m := range r.Metrics {
			a10[r.Series][m.Name] = m.Value
		}
	}
	var spanComponents int
	if _, err := fmt.Sscanf(a10["instrumented"]["span_components"], "%d", &spanComponents); err != nil {
		t.Errorf("A10 span_components unparsable: %v (%v)", err, a10["instrumented"])
	} else if spanComponents < 4 {
		t.Errorf("A10 span components = %d, want >= 4", spanComponents)
	}
	if a10["instrumented"]["overhead"] == "" {
		t.Errorf("A10 missing overhead metric: %v", a10["instrumented"])
	}

	// A11: the admission floors (baseline shed ceiling, overload
	// engagement, degraded freshness validity, goroutine-leak bound) are
	// enforced inside the experiment — a regression fails All above.
	// Spot-check that the overload phase both shed and served degraded.
	a11 := map[string]map[string]string{}
	for _, r := range byID["A11"].Rows {
		a11[r.Series] = map[string]string{}
		for _, m := range r.Metrics {
			a11[r.Series][m.Name] = m.Value
		}
	}
	over := a11["2x capacity (bursty)"]
	if over["shed"] == "" || over["shed"] == "0" {
		t.Errorf("A11 overload phase shed nothing: %v", over)
	}
	if over["degraded"] == "" || over["degraded"] == "0" {
		t.Errorf("A11 overload phase served no degraded answers: %v", over)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID: "X", Title: "demo",
		Rows:  []Row{{Series: "a", Metrics: []Metric{{"m", "1"}}}},
		Notes: []string{"a note"},
	}
	out := tb.String()
	for _, want := range []string{"== X: demo ==", "m=1", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.50ms" {
		t.Fatal(ms(1500 * time.Microsecond))
	}
	if us(1500*time.Nanosecond) != "1.5µs" {
		t.Fatal(us(1500 * time.Nanosecond))
	}
	if dollars(0.5) != "$0.50000" {
		t.Fatal(dollars(0.5))
	}
	if pct(0.876) != "87.6%" {
		t.Fatal(pct(0.876))
	}
	if got := sortedKeys(map[string]int{"b": 1, "a": 2}); got[0] != "a" {
		t.Fatal(got)
	}
}
