package agent

import (
	"context"
	"strings"
	"testing"
	"time"

	"blueprint/internal/registry"
	"blueprint/internal/resilience"
	"blueprint/internal/streams"
)

// blockingAgent runs until its context is cancelled, reporting the ctx error.
func blockingAgent(name string, started chan<- struct{}) *Agent {
	return New(registry.AgentSpec{
		Name:    name,
		Inputs:  []registry.ParamSpec{{Name: "IN", Type: "text"}},
		Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) {
		if started != nil {
			started <- struct{}{}
		}
		<-ctx.Done()
		return Outputs{}, ctx.Err()
	})
}

func awaitError(t *testing.T, store *streams.Store, invID string) string {
	t.Helper()
	done := make(chan *streams.Directive, 1)
	go func() { done <- AwaitDone(store, testSession, invID) }()
	select {
	case d := <-done:
		if d == nil || d.Op != OpAgentError {
			t.Fatalf("report = %+v, want AGENT_ERROR", d)
		}
		msg, _ := d.Args["error"].(string)
		return msg
	case <-time.After(5 * time.Second):
		t.Fatal("no error report")
	}
	return ""
}

func TestCallerDeadlineBoundsProcessor(t *testing.T) {
	store := newStore(t)
	// Instance timeout is long; the caller's deadline must win.
	inst, err := Attach(store, testSession, blockingAgent("SLOW", nil), Options{Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	start := time.Now()
	deadline := start.Add(100 * time.Millisecond)
	if err := ExecuteDeadline(store, testSession, "SLOW", map[string]any{"IN": "x"}, "reply", "inv-dl", "", deadline); err != nil {
		t.Fatal(err)
	}
	msg := awaitError(t, store, "inv-dl")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not honored: ran %s", elapsed)
	}
	if msg != context.DeadlineExceeded.Error() {
		t.Fatalf("error = %q", msg)
	}
}

func TestExpiredDeadlineShortCircuits(t *testing.T) {
	store := newStore(t)
	started := make(chan struct{}, 1)
	inst, err := Attach(store, testSession, blockingAgent("SLOW", started), Options{Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	past := time.Now().Add(-time.Second)
	if err := ExecuteDeadline(store, testSession, "SLOW", map[string]any{"IN": "x"}, "reply", "inv-past", "", past); err != nil {
		t.Fatal(err)
	}
	awaitError(t, store, "inv-past")
	select {
	case <-started:
		t.Fatal("processor invoked despite expired deadline")
	default:
	}
}

func TestTargetedAbortCancelsInvocation(t *testing.T) {
	store := newStore(t)
	started := make(chan struct{}, 2)
	inst, err := Attach(store, testSession, blockingAgent("SLOW", started), Options{Timeout: time.Hour, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	if err := Execute(store, testSession, "SLOW", map[string]any{"IN": "a"}, "reply", "inv-a"); err != nil {
		t.Fatal(err)
	}
	if err := Execute(store, testSession, "SLOW", map[string]any{"IN": "b"}, "reply", "inv-b"); err != nil {
		t.Fatal(err)
	}
	<-started
	<-started

	// Abort only inv-a; inv-b must keep running.
	if _, err := store.Append(streams.Message{
		Stream: ControlStream(testSession), Kind: streams.Control, Sender: "coordinator",
		Directive: &streams.Directive{Op: streams.OpAbort, Args: map[string]any{"invocation_id": "inv-a"}},
	}); err != nil {
		t.Fatal(err)
	}
	if msg := awaitError(t, store, "inv-a"); msg != context.Canceled.Error() {
		t.Fatalf("abort error = %q", msg)
	}
	if st := inst.Stats(); st.Invocations != 1 {
		t.Fatalf("inv-b finished unexpectedly: %+v", st)
	}

	// A bare session abort cancels the rest.
	if _, err := store.Append(streams.Message{
		Stream: ControlStream(testSession), Kind: streams.Control, Sender: "coordinator",
		Directive: &streams.Directive{Op: streams.OpAbort},
	}); err != nil {
		t.Fatal(err)
	}
	awaitError(t, store, "inv-b")
}

func TestAgentFaultInjection(t *testing.T) {
	resilience.Activate(resilience.NewInjector(1, resilience.Rule{
		Site: resilience.SiteAgent, Kind: resilience.KindError, Probability: 1,
	}))
	defer resilience.Deactivate()

	store := newStore(t)
	inst, err := Attach(store, testSession, echoAgent(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	if err := Execute(store, testSession, "ECHO", map[string]any{"TEXT": "x"}, "reply", "inv-fault"); err != nil {
		t.Fatal(err)
	}
	msg := awaitError(t, store, "inv-fault")
	if !strings.Contains(msg, "injected") {
		t.Fatalf("error = %q", msg)
	}
	if st := inst.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
