// Package optimizer implements the blueprint's multi-objective optimizer
// (§IV: "performs multi-objective optimization over task and data plans").
//
// The optimizer scores candidates — model tiers, alternative data plans,
// alternative agents for a task-plan step — on three QoS axes (cost,
// latency, accuracy), normalizing cost and latency within the candidate set
// so weights are scale-free. Hard limits (the budget) filter infeasible
// candidates first; the weighted score ranks the rest. A Pareto helper
// exposes the non-dominated frontier for ablation benchmarks.
//
// Plan projection is cache-aware: EstimatePlanWithMemo prices steps whose
// results are resident in the coordinator's memoization store at zero
// cost/latency, chaining expected hits through the DAG, so warm repeated
// asks are admitted at their true residual cost.
package optimizer

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"blueprint/internal/budget"
	"blueprint/internal/dataplan"
	"blueprint/internal/llm"
	"blueprint/internal/memo"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
)

// ErrInfeasible is returned when no candidate satisfies the limits.
var ErrInfeasible = errors.New("optimizer: no feasible candidate")

// Objectives weight the three QoS axes. Higher accuracy is better; lower
// cost and latency are better. Weights need not sum to one.
type Objectives struct {
	CostWeight     float64
	LatencyWeight  float64
	AccuracyWeight float64
}

// DefaultObjectives balances the three axes equally.
func DefaultObjectives() Objectives {
	return Objectives{CostWeight: 1, LatencyWeight: 1, AccuracyWeight: 1}
}

// CheapestObjectives minimizes cost only (the FrugalGPT-style baseline).
func CheapestObjectives() Objectives { return Objectives{CostWeight: 1} }

// BestObjectives maximizes accuracy only.
func BestObjectives() Objectives { return Objectives{AccuracyWeight: 1} }

// Candidate is one option under consideration.
type Candidate struct {
	// ID names the candidate (model name, plan strategy, agent name).
	ID string
	// Cost in dollars, Latency, Accuracy in [0,1] are the projections.
	Cost     float64
	Latency  time.Duration
	Accuracy float64
	// Payload carries the underlying object.
	Payload any
}

// Choose filters candidates by the limits and returns the feasible one with
// the highest weighted score. Ties break by lower cost, then by ID for
// determinism.
func Choose(cands []Candidate, obj Objectives, limits budget.Limits) (Candidate, error) {
	feasible := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if limits.MaxCost > 0 && c.Cost > limits.MaxCost {
			continue
		}
		if limits.MaxLatency > 0 && c.Latency > limits.MaxLatency {
			continue
		}
		if limits.MinAccuracy > 0 && c.Accuracy > 0 && c.Accuracy < limits.MinAccuracy {
			continue
		}
		feasible = append(feasible, c)
	}
	if len(feasible) == 0 {
		return Candidate{}, fmt.Errorf("%w among %d candidates", ErrInfeasible, len(cands))
	}
	scores := Scores(feasible, obj)
	best := 0
	for i := 1; i < len(feasible); i++ {
		if scores[i] > scores[best] ||
			(scores[i] == scores[best] && feasible[i].Cost < feasible[best].Cost) ||
			(scores[i] == scores[best] && feasible[i].Cost == feasible[best].Cost && feasible[i].ID < feasible[best].ID) {
			best = i
		}
	}
	return feasible[best], nil
}

// Scores computes the weighted score of each candidate with cost and
// latency min-max normalized within the set.
func Scores(cands []Candidate, obj Objectives) []float64 {
	if len(cands) == 0 {
		return nil
	}
	minC, maxC := cands[0].Cost, cands[0].Cost
	minL, maxL := cands[0].Latency, cands[0].Latency
	for _, c := range cands[1:] {
		if c.Cost < minC {
			minC = c.Cost
		}
		if c.Cost > maxC {
			maxC = c.Cost
		}
		if c.Latency < minL {
			minL = c.Latency
		}
		if c.Latency > maxL {
			maxL = c.Latency
		}
	}
	normC := func(v float64) float64 {
		if maxC == minC {
			return 0
		}
		return (v - minC) / (maxC - minC)
	}
	normL := func(v time.Duration) float64 {
		if maxL == minL {
			return 0
		}
		return float64(v-minL) / float64(maxL-minL)
	}
	out := make([]float64, len(cands))
	for i, c := range cands {
		out[i] = obj.AccuracyWeight*c.Accuracy - obj.CostWeight*normC(c.Cost) - obj.LatencyWeight*normL(c.Latency)
	}
	return out
}

// Pareto returns the non-dominated candidates (lower cost, lower latency,
// higher accuracy), sorted by cost ascending.
func Pareto(cands []Candidate) []Candidate {
	var out []Candidate
	for i, c := range cands {
		dominated := false
		for j, d := range cands {
			if i == j {
				continue
			}
			if d.Cost <= c.Cost && d.Latency <= c.Latency && d.Accuracy >= c.Accuracy &&
				(d.Cost < c.Cost || d.Latency < c.Latency || d.Accuracy > c.Accuracy) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ChooseModelTier picks an LLM tier for a task of approximately taskTokens
// tokens: each config becomes a candidate with cost and latency scaled by
// the token count.
func ChooseModelTier(configs []llm.Config, taskTokens int, obj Objectives, limits budget.Limits) (llm.Config, error) {
	if taskTokens <= 0 {
		taskTokens = 100
	}
	cands := make([]Candidate, 0, len(configs))
	for _, cfg := range configs {
		cands = append(cands, Candidate{
			ID:       cfg.Name,
			Cost:     float64(taskTokens) / 1000 * cfg.CostPer1K,
			Latency:  cfg.BaseLatency + time.Duration(taskTokens)*cfg.PerToken,
			Accuracy: cfg.Accuracy,
			Payload:  cfg,
		})
	}
	chosen, err := Choose(cands, obj, limits)
	if err != nil {
		return llm.Config{}, err
	}
	return chosen.Payload.(llm.Config), nil
}

// ChooseDataPlan picks among alternative data plans using their estimates
// (§V-G: optimizing the overall plan under cost/performance/quality
// constraints).
func ChooseDataPlan(plans []*dataplan.Plan, obj Objectives, limits budget.Limits) (*dataplan.Plan, error) {
	cands := make([]Candidate, 0, len(plans))
	for _, p := range plans {
		cands = append(cands, Candidate{
			ID:       p.Strategy,
			Cost:     p.Est.Cost,
			Latency:  p.Est.Latency,
			Accuracy: p.Est.Accuracy,
			Payload:  p,
		})
	}
	chosen, err := Choose(cands, obj, limits)
	if err != nil {
		return nil, err
	}
	return chosen.Payload.(*dataplan.Plan), nil
}

// AssignAgents revisits every step of a task plan and, among the registry's
// top matches for the step's sub-task, picks the agent optimizing the
// objectives (the per-step greedy assignment of §IV's task-plan
// optimization). Steps keep their original agent when it remains the best
// choice. Returns the number of reassignments.
func AssignAgents(p *planner.Plan, reg *registry.AgentRegistry, obj Objectives, limits budget.Limits) (int, error) {
	changed := 0
	for i := range p.Steps {
		hits := reg.FindForTask(p.Steps[i].Task, 5)
		if len(hits) == 0 {
			continue
		}
		// Relevance gate: only consider candidates close to the best match,
		// so QoS never trades away capability.
		top := hits[0].Score
		cands := make([]Candidate, 0, len(hits))
		for _, h := range hits {
			if h.Score < top*0.8 {
				continue
			}
			cands = append(cands, Candidate{
				ID:       h.Spec.Name,
				Cost:     h.Spec.QoS.CostPerCall,
				Latency:  h.Spec.QoS.Latency,
				Accuracy: h.Spec.QoS.Accuracy,
				Payload:  h.Spec,
			})
		}
		chosen, err := Choose(cands, obj, limits)
		if err != nil {
			continue // keep original assignment when nothing feasible
		}
		if chosen.ID != p.Steps[i].Agent {
			p.Steps[i].Agent = chosen.ID
			changed++
			p.Explanation = append(p.Explanation,
				fmt.Sprintf("optimizer: step %s reassigned to %s", p.Steps[i].ID, chosen.ID))
		}
	}
	return changed, nil
}

// EstimatePlan projects a task plan's cost, latency and accuracy from the
// registered QoS profiles — the projection the coordinator hands to the
// budget before execution (§V-H "along with an initial budget and projected
// costs estimated by the optimizer").
//
// Cost sums over every step and accuracy multiplies through, but latency is
// the critical path over the plan's dependency DAG: steps in the same
// topological wave execute concurrently under the coordinator's scheduler,
// so a fan-out plan's projected latency is its longest dependency chain, not
// the sum of all steps. Without this, parallel plans would be falsely
// rejected as over a latency budget they comfortably meet. Malformed plans
// (cycles) fall back to the conservative sequential sum.
func EstimatePlan(p *planner.Plan, reg *registry.AgentRegistry) (cost float64, latency time.Duration, accuracy float64) {
	cost, latency, accuracy, _ = EstimatePlanWithMemo(p, reg, nil)
	return cost, latency, accuracy
}

// EstimatePlanWithMemo is EstimatePlan priced against a memoization
// snapshot: steps whose results are already cached contribute zero cost and
// zero critical-path latency, so a warm plan is projected at its true
// residual cost instead of the cold sum — cache-aware planning. A nil store
// degrades to the cold EstimatePlan projection.
//
// Hit projection chains through the DAG: a step's memo key needs its
// concrete inputs, so a step is projectable when every binding is static
// (literal values, the raw utterance) or fed by an upstream step that is
// itself an expected hit — in which case the cached outputs supply the
// downstream inputs. Model-dependent transforms and outputs of steps that
// must execute stay unpredictable and are conservatively priced as misses.
func EstimatePlanWithMemo(p *planner.Plan, reg *registry.AgentRegistry, m *memo.Store) (cost float64, latency time.Duration, accuracy float64, expectedHits int) {
	accuracy = 1.0
	stepLat := make(map[string]time.Duration, len(p.Steps))
	hitOutputs := make(map[string]map[string]any)

	// Walk in wave order so upstream expected-hit outputs are available
	// when downstream keys are computed (plan order for malformed DAGs,
	// where chaining is off anyway).
	order := make([]string, 0, len(p.Steps))
	if waves, err := p.Waves(); err == nil {
		for _, wave := range waves {
			order = append(order, wave...)
		}
	} else {
		for _, s := range p.Steps {
			order = append(order, s.ID)
		}
	}

	for _, id := range order {
		s, ok := p.Step(id)
		if !ok {
			continue
		}
		spec, err := reg.Get(s.Agent)
		if err != nil {
			continue
		}
		if spec.QoS.Accuracy > 0 {
			accuracy *= spec.QoS.Accuracy
		}
		if m != nil && spec.Cacheable {
			if inputs, ok := staticInputs(p, s, hitOutputs); ok {
				if key, err := memo.ComputeKey(spec.Name, spec.Version, inputs); err == nil {
					if e, ok := m.Peek(key); ok {
						expectedHits++
						stepLat[s.ID] = 0
						hitOutputs[s.ID] = e.Outputs
						continue
					}
				}
			}
		}
		cost += spec.QoS.CostPerCall
		stepLat[s.ID] = spec.QoS.Latency
	}
	latency = CriticalPath(p, stepLat)
	return cost, latency, accuracy, expectedHits
}

// staticInputs resolves a step's bindings without executing anything:
// literals, the untransformed utterance, and upstream outputs known from
// expected memo hits. Reports false when any binding needs execution (a
// model transform or an output of a step that will actually run).
func staticInputs(p *planner.Plan, s planner.Step, hitOutputs map[string]map[string]any) (map[string]any, bool) {
	inputs := make(map[string]any, len(s.Bindings))
	for param, b := range s.Bindings {
		switch {
		case b.FromStep != "":
			out, ok := hitOutputs[b.FromStep]
			if !ok {
				return nil, false
			}
			v, ok := out[b.FromParam]
			if !ok {
				return nil, false
			}
			inputs[param] = v
		case b.FromUserText:
			if b.Transform != "" {
				return nil, false
			}
			inputs[param] = p.Utterance
		case b.Value != nil:
			inputs[param] = b.Value
		}
	}
	return inputs, true
}

// CriticalPath computes the longest dependency chain through the plan,
// weighting each step by stepLat (steps absent from the map weigh zero).
// Falls back to the sum of all weights when the plan is not a valid DAG.
func CriticalPath(p *planner.Plan, stepLat map[string]time.Duration) time.Duration {
	waves, err := p.Waves()
	if err != nil {
		var sum time.Duration
		for _, d := range stepLat {
			sum += d
		}
		return sum
	}
	deps := p.Deps()
	finish := make(map[string]time.Duration, len(p.Steps))
	var longest time.Duration
	for _, wave := range waves {
		for _, id := range wave {
			var start time.Duration
			for _, d := range deps[id] {
				if finish[d] > start {
					start = finish[d]
				}
			}
			finish[id] = start + stepLat[id]
			if finish[id] > longest {
				longest = finish[id]
			}
		}
	}
	return longest
}
