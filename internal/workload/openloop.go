package workload

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Open-loop workload driver (§II "millions of users"): arrivals are
// scheduled by a seeded stochastic process, independent of completions — a
// slow system does not slow the offered load down, which is exactly the
// regime overload control exists for. Closed-loop drivers (issue N asks,
// wait, repeat) self-throttle under brownout and hide the queueing collapse
// this driver is built to expose.

// Arrival is one scheduled open-loop request.
type Arrival struct {
	// At is the arrival's offset from the start of the run.
	At time.Duration
	// Tenant is the issuing tenant (the governor's fair-share unit).
	Tenant string
	// Query is the utterance to ask.
	Query Query
}

// BurstConfig modulates a Poisson process into on/off bursts: during a
// burst of length On the instantaneous rate is Factor x the base rate, then
// the process idles at the base rate for Off. Zero value = unmodulated.
type BurstConfig struct {
	// Factor multiplies the base rate during bursts (> 1).
	Factor float64
	// On is the burst duration; Off the inter-burst gap at base rate.
	On, Off time.Duration
}

// OpenLoopConfig shapes a generated arrival schedule.
type OpenLoopConfig struct {
	// Rate is the mean offered load in asks/second (Poisson: exponential
	// inter-arrival times with mean 1/Rate).
	Rate float64
	// Duration bounds the schedule.
	Duration time.Duration
	// Tenants are drawn uniformly per arrival (default: one tenant "t0").
	Tenants []string
	// Burst, when Factor > 1, modulates the process into on/off bursts.
	Burst BurstConfig
}

// OpenLoop generates a deterministic open-loop arrival schedule: Poisson
// arrivals at cfg.Rate (optionally burst-modulated), each assigned a tenant
// and an utterance from the standard mixed query workload.
func OpenLoop(seed int64, cfg OpenLoopConfig) []Arrival {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []string{"t0"}
	}
	rng := rand.New(rand.NewSource(seed))
	// Pre-draw a generous utterance pool; arrivals cycle through it.
	pool := Queries(seed, 64)

	// rateAt is the instantaneous rate at offset t under burst modulation.
	period := cfg.Burst.On + cfg.Burst.Off
	rateAt := func(t time.Duration) float64 {
		if cfg.Burst.Factor <= 1 || period <= 0 {
			return cfg.Rate
		}
		if t%period < cfg.Burst.On {
			return cfg.Rate * cfg.Burst.Factor
		}
		return cfg.Rate
	}

	var out []Arrival
	at := time.Duration(0)
	for i := 0; ; i++ {
		// Exponential inter-arrival at the instantaneous rate. Drawing at
		// the rate in effect at the previous arrival is a standard
		// piecewise approximation — exact thinning is overkill for a
		// driver whose point is sustained pressure, not process purity.
		gap := time.Duration(rng.ExpFloat64() / rateAt(at) * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		at += gap
		if at >= cfg.Duration {
			return out
		}
		out = append(out, Arrival{
			At:     at,
			Tenant: tenants[rng.Intn(len(tenants))],
			Query:  pool[i%len(pool)],
		})
	}
}

// OfferedRate reports a schedule's realized offered load in asks/second.
func OfferedRate(arrivals []Arrival, duration time.Duration) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(len(arrivals)) / duration.Seconds()
}

// Replay fires fn for each arrival at its scheduled offset, open-loop: each
// invocation runs in its own goroutine and the schedule never waits for
// completions. Replay returns once every fired invocation has returned (or
// immediately after ctx cancels the remaining schedule; in-flight fns are
// still awaited). fn observes the arrival it serves.
func Replay(ctx context.Context, arrivals []Arrival, fn func(Arrival)) {
	start := time.Now()
	var wg sync.WaitGroup
	for _, a := range arrivals {
		wait := a.At - time.Since(start)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				wg.Wait()
				return
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			return
		}
		wg.Add(1)
		go func(a Arrival) {
			defer wg.Done()
			fn(a)
		}(a)
	}
	wg.Wait()
}

// Percentile returns the p-th percentile (0-100, nearest-rank) of the given
// latencies. Zero when empty.
func Percentile(latencies []time.Duration, p float64) time.Duration {
	if len(latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(latencies))
	copy(sorted, latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
