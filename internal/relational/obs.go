package relational

import (
	"context"
	"strconv"

	"blueprint/internal/obs"
	"blueprint/internal/resilience"
)

// Process-wide SQL instruments: every statement executed through the engine
// (Query/Exec/Prepare and the Run path alike — runLogged is the single
// funnel) counts and, while the telemetry plane is on, observes its latency.
var (
	mStatements = obs.Default.Counter("blueprint_sql_statements_total", "SQL statements executed through the relational engine")
	mSQLLatency = obs.Default.Histogram("blueprint_sql_latency_seconds", "relational statement execution latency", obs.LatencyBuckets)
)

// QueryContext is Query with span propagation: when ctx carries a trace
// (the agent runtime puts the invocation's span there), the statement
// records a "relational" child span with its truncated text.
func (db *DB) QueryContext(ctx context.Context, sql string, params ...any) (*Result, error) {
	_, sp := obs.StartSpan(ctx, "relational", "query")
	defer sp.End()
	sp.SetAttr("sql", obs.Truncate(sql, 80))
	if err := resilience.Check(ctx, resilience.SiteRelational); err != nil {
		return nil, err
	}
	res, err := db.Query(sql, params...)
	if err == nil && sp != nil {
		sp.SetAttr("rows", strconv.Itoa(len(res.Rows)))
	}
	return res, err
}

// ExecContext is Exec with span propagation (see QueryContext).
func (db *DB) ExecContext(ctx context.Context, sql string, params ...any) (int, error) {
	_, sp := obs.StartSpan(ctx, "relational", "exec")
	defer sp.End()
	sp.SetAttr("sql", obs.Truncate(sql, 80))
	if err := resilience.Check(ctx, resilience.SiteRelational); err != nil {
		return 0, err
	}
	return db.Exec(sql, params...)
}

// QueryContext executes the prepared statement under a "relational" span
// parented to the trace carried by ctx (see DB.QueryContext).
func (s *Stmt) QueryContext(ctx context.Context, params ...any) (*Result, error) {
	_, sp := obs.StartSpan(ctx, "relational", "stmt")
	defer sp.End()
	sp.SetAttr("sql", obs.Truncate(s.sql, 80))
	return s.Query(params...)
}

// ExecContext executes the prepared statement under a "relational" span
// parented to the trace carried by ctx.
func (s *Stmt) ExecContext(ctx context.Context, params ...any) (int, error) {
	_, sp := obs.StartSpan(ctx, "relational", "stmt")
	defer sp.End()
	sp.SetAttr("sql", obs.Truncate(s.sql, 80))
	return s.Exec(params...)
}
