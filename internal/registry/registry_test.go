package registry

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"blueprint/internal/docstore"
	"blueprint/internal/graphstore"
	"blueprint/internal/relational"
)

func sampleAgents() []AgentSpec {
	return []AgentSpec{
		{
			Name:        "PROFILER",
			Description: "presents a user profile UI form to collect information from the job seeker",
			Inputs:      []ParamSpec{{Name: "CRITERIA", Type: "text", Description: "search criteria from the user"}},
			Outputs:     []ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile", Description: "collected job seeker profile"}},
			QoS:         QoSProfile{CostPerCall: 0.001, Latency: 50 * time.Millisecond, Accuracy: 0.95},
		},
		{
			Name:        "JOBMATCHER",
			Description: "assess the match quality between a job seeker profile and specific jobs, ranking matches",
			Inputs: []ParamSpec{
				{Name: "JOBSEEKER_DATA", Type: "profile"},
				{Name: "JOBS", Type: "rows"},
				{Name: "CRITERIA", Type: "text", Optional: true},
			},
			Outputs: []ParamSpec{{Name: "MATCHES", Type: "rows", Description: "ranked job matches"}},
			QoS:     QoSProfile{CostPerCall: 0.01, Latency: 120 * time.Millisecond, Accuracy: 0.9},
		},
		{
			Name:        "PRESENTER",
			Description: "present matched jobs and results to the end user in the conversation",
			Inputs:      []ParamSpec{{Name: "MATCHES", Type: "rows"}},
			Outputs:     []ParamSpec{{Name: "RENDERED", Type: "text"}},
		},
		{
			Name:        "MODERATOR",
			Description: "content moderation guardrail filtering offensive or unsafe generated text",
			Inputs:      []ParamSpec{{Name: "TEXT", Type: "text"}},
			Outputs:     []ParamSpec{{Name: "VERDICT", Type: "text"}},
		},
	}
}

func newAgentReg(t testing.TB) *AgentRegistry {
	t.Helper()
	r := NewAgentRegistry()
	for _, s := range sampleAgents() {
		if err := r.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestAgentRegisterGet(t *testing.T) {
	r := newAgentReg(t)
	s, err := r.Get("jobmatcher") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "JOBMATCHER" || s.Version != 1 {
		t.Fatalf("spec = %+v", s)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	if err := r.Register(AgentSpec{Name: "PROFILER"}); !errors.Is(err, ErrAgentExists) {
		t.Fatalf("err = %v", err)
	}
	if err := r.Register(AgentSpec{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrAgentNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestAgentUpdateBumpsVersion(t *testing.T) {
	r := newAgentReg(t)
	s, _ := r.Get("PROFILER")
	s.Description = "updated description"
	if err := r.Update(s); err != nil {
		t.Fatal(err)
	}
	s2, _ := r.Get("PROFILER")
	if s2.Version != 2 || s2.Description != "updated description" {
		t.Fatalf("updated = %+v", s2)
	}
	if err := r.Update(AgentSpec{Name: "missing"}); !errors.Is(err, ErrAgentNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestAgentDerive(t *testing.T) {
	r := newAgentReg(t)
	d, err := r.Derive("JOBMATCHER", "JOBMATCHER_MED", "match quality for medical sector jobs", func(s *AgentSpec) {
		s.QoS.CostPerCall = 0.02
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "JOBMATCHER_MED" || d.QoS.CostPerCall != 0.02 || len(d.Inputs) != 3 {
		t.Fatalf("derived = %+v", d)
	}
	if r.Len() != 5 {
		t.Fatalf("len = %d", r.Len())
	}
	if _, err := r.Derive("missing", "X", "", nil); !errors.Is(err, ErrAgentNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.Derive("JOBMATCHER", "PROFILER", "", nil); !errors.Is(err, ErrAgentExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestAgentDeregister(t *testing.T) {
	r := newAgentReg(t)
	if err := r.Deregister("MODERATOR"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	if err := r.Deregister("MODERATOR"); !errors.Is(err, ErrAgentNotFound) {
		t.Fatalf("err = %v", err)
	}
	for _, h := range r.SearchVector("content moderation guardrail", 10) {
		if h.Spec.Name == "MODERATOR" {
			t.Fatal("deregistered agent still searchable")
		}
	}
}

func TestAgentKeywordSearch(t *testing.T) {
	r := newAgentReg(t)
	hits := r.SearchKeyword("match quality", 5)
	if len(hits) == 0 || hits[0].Spec.Name != "JOBMATCHER" {
		t.Fatalf("keyword hits = %+v", hits)
	}
	if got := r.SearchKeyword("nonexistent_token_xyz", 5); len(got) != 0 {
		t.Fatalf("unexpected hits = %+v", got)
	}
	if got := r.SearchKeyword("", 5); len(got) != 0 {
		t.Fatalf("empty query hits = %+v", got)
	}
}

func TestAgentVectorSearch(t *testing.T) {
	r := newAgentReg(t)
	hits := r.SearchVector("rank how well a candidate profile matches job postings", 2)
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	if hits[0].Spec.Name != "JOBMATCHER" {
		t.Fatalf("top hit = %s", hits[0].Spec.Name)
	}
}

func TestAgentUsageBoostsEmbedding(t *testing.T) {
	r := NewAgentRegistry()
	// Two agents with deliberately vague metadata.
	if err := r.Register(AgentSpec{Name: "A1", Description: "generic processing component alpha"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(AgentSpec{Name: "A2", Description: "generic processing component beta"}); err != nil {
		t.Fatal(err)
	}
	// Route salary-related tasks to A2 repeatedly.
	for i := 0; i < 10; i++ {
		if err := r.RecordUsage("A2", "compute average salary statistics for engineering jobs"); err != nil {
			t.Fatal(err)
		}
	}
	if r.UsageCount("A2") != 10 {
		t.Fatalf("usage count = %d", r.UsageCount("A2"))
	}
	hits := r.SearchVector("average salary statistics", 2)
	if len(hits) == 0 || hits[0].Spec.Name != "A2" {
		t.Fatalf("usage-boosted search = %+v", hits)
	}
	if err := r.RecordUsage("missing", "x"); !errors.Is(err, ErrAgentNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestFindForTaskFallback(t *testing.T) {
	r := newAgentReg(t)
	hits := r.FindForTask("present results to the user", 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	// Empty registry returns nothing.
	empty := NewAgentRegistry()
	if got := empty.FindForTask("anything", 3); len(got) != 0 {
		t.Fatalf("empty registry hits = %+v", got)
	}
}

func newDataReg(t testing.TB) (*DataRegistry, *relational.DB) {
	t.Helper()
	r := NewDataRegistry()
	db := relational.NewDB()
	for _, stmt := range []string{
		`CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary INT)`,
		`CREATE INDEX idx_city ON jobs (city)`,
		`INSERT INTO jobs VALUES (1, 'Data Scientist', 'San Francisco', 180000)`,
		`CREATE TABLE applications (id INT, job_id INT, profile_id TEXT, status TEXT)`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ImportRelational("hr", "HR relational database with job postings and applications", "hr-conn", db); err != nil {
		t.Fatal(err)
	}
	return r, db
}

func TestImportRelational(t *testing.T) {
	r, _ := newDataReg(t)
	if r.Len() != 3 { // hr + 2 tables
		t.Fatalf("len = %d", r.Len())
	}
	a, err := r.Get("hr.jobs")
	if err != nil {
		t.Fatal(err)
	}
	if a.Level != LevelTable || a.Parent != "hr" || a.Rows != 1 {
		t.Fatalf("asset = %+v", a)
	}
	if len(a.Columns) != 4 || a.Columns[1].Name != "title" {
		t.Fatalf("columns = %+v", a.Columns)
	}
	if len(a.Indexes) != 1 {
		t.Fatalf("indexes = %+v", a.Indexes)
	}
	kids := r.Children("hr")
	if len(kids) != 2 || kids[0].Name != "hr.applications" {
		t.Fatalf("children = %+v", kids)
	}
}

func TestImportDocstoreAndGraphAndLLM(t *testing.T) {
	r, _ := newDataReg(t)
	ds := docstore.NewStore()
	ds.EnsureCollection("profiles")
	if err := ds.Insert("profiles", "p1", docstore.Doc{"name": "Ada", "skills": []any{"go"}}); err != nil {
		t.Fatal(err)
	}
	if err := ds.CreateIndex("profiles", "name"); err != nil {
		t.Fatal(err)
	}
	if err := r.ImportDocstore("docs", "document store with job seeker profiles and resumes", "doc-conn", ds); err != nil {
		t.Fatal(err)
	}
	g := graphstore.NewGraph()
	if err := g.AddNode("ds", "title", map[string]any{"name": "Data Scientist"}); err != nil {
		t.Fatal(err)
	}
	if err := r.ImportGraph("taxonomy", "job title taxonomy graph with related roles", "graph-conn", g); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterLLMSource("gpt-sim", "general knowledge language model usable as a data source for cities and titles", QoSProfile{CostPerCall: 0.01, Latency: 100 * time.Millisecond, Accuracy: 0.9}); err != nil {
		t.Fatal(err)
	}
	if got := len(r.List("", "")); got != 7 {
		t.Fatalf("assets = %d", got)
	}
	if got := len(r.List(LevelCollection, "")); got != 1 {
		t.Fatalf("collections = %d", got)
	}
	if got := len(r.List("", KindLLM)); got != 1 {
		t.Fatalf("llm sources = %d", got)
	}
	coll, _ := r.Get("docs.profiles")
	if coll.Rows != 1 || len(coll.Indexes) != 1 {
		t.Fatalf("collection = %+v", coll)
	}
}

func TestDataDiscovery(t *testing.T) {
	r, _ := newDataReg(t)
	if err := r.RegisterLLMSource("gpt-sim", "general world knowledge: cities in regions, related job titles", QoSProfile{}); err != nil {
		t.Fatal(err)
	}
	hits := r.Discover("table with job postings titles and salaries", 3)
	if len(hits) == 0 {
		t.Fatal("no discovery hits")
	}
	found := false
	for _, h := range hits {
		if h.Asset.Name == "hr.jobs" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hr.jobs not discovered: %+v", hits)
	}
	hits = r.Discover("cities located in a geographic region general knowledge", 2)
	found = false
	for _, h := range hits {
		if h.Asset.Kind == KindLLM {
			found = true
		}
	}
	if !found {
		t.Fatalf("llm source not discovered: %+v", hits)
	}
}

func TestDataKeywordSearch(t *testing.T) {
	r, _ := newDataReg(t)
	hits := r.SearchKeyword("applications status", 5)
	if len(hits) != 1 || hits[0].Asset.Name != "hr.applications" {
		t.Fatalf("keyword = %+v", hits)
	}
	if got := r.SearchKeyword("", 5); got != nil {
		t.Fatalf("empty query = %+v", got)
	}
}

func TestDataRegistryErrors(t *testing.T) {
	r := NewDataRegistry()
	if err := r.Register(DataAsset{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Register(DataAsset{Name: "a", Kind: KindKV, Level: LevelDatabase}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(DataAsset{Name: "A"}); !errors.Is(err, ErrAssetExists) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrAssetNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := r.Update(DataAsset{Name: "missing"}); !errors.Is(err, ErrAssetNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDataUpdate(t *testing.T) {
	r, _ := newDataReg(t)
	a, _ := r.Get("hr.jobs")
	a.Rows = 5000
	if err := r.Update(a); err != nil {
		t.Fatal(err)
	}
	a2, _ := r.Get("hr.jobs")
	if a2.Rows != 5000 {
		t.Fatalf("rows = %d", a2.Rows)
	}
}

func TestRegistryScales(t *testing.T) {
	r := NewDataRegistry()
	for i := 0; i < 500; i++ {
		if err := r.Register(DataAsset{
			Name:        fmt.Sprintf("src%03d.table%d", i, i),
			Kind:        KindRelational,
			Level:       LevelTable,
			Description: fmt.Sprintf("table about domain %d topic %d", i%13, i%7),
		}); err != nil {
			t.Fatal(err)
		}
	}
	hits := r.Discover("domain 5 topic 3", 10)
	if len(hits) != 10 {
		t.Fatalf("hits = %d", len(hits))
	}
}

func TestAgentUpdateIdenticalSpecKeepsVersion(t *testing.T) {
	r := newAgentReg(t)
	s, _ := r.Get("PROFILER")
	var notified []string
	r.OnChange(func(name string) { notified = append(notified, name) })

	// Re-registering a deep-equal spec must not bump the version (memo keys
	// and derived-agent chains would be invalidated spuriously), even when
	// the caller passes a zero Version.
	same := s
	same.Version = 0
	if err := r.Update(same); err != nil {
		t.Fatal(err)
	}
	if s2, _ := r.Get("PROFILER"); s2.Version != s.Version {
		t.Fatalf("identical update bumped version %d -> %d", s.Version, s2.Version)
	}
	if len(notified) != 0 {
		t.Fatalf("identical update fired change hooks: %v", notified)
	}

	// A real change bumps and notifies.
	changed := s
	changed.Description = "different"
	if err := r.Update(changed); err != nil {
		t.Fatal(err)
	}
	if s2, _ := r.Get("PROFILER"); s2.Version != s.Version+1 {
		t.Fatalf("changed update version = %d", s2.Version)
	}
	if len(notified) != 1 || notified[0] != "PROFILER" {
		t.Fatalf("notified = %v", notified)
	}
}

func TestAgentChangeHooksOnDeriveAndDeregister(t *testing.T) {
	r := newAgentReg(t)
	var notified []string
	r.OnChange(func(name string) { notified = append(notified, name) })
	if _, err := r.Derive("PROFILER", "PROFILER_V2", "derived", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister("PROFILER_V2"); err != nil {
		t.Fatal(err)
	}
	if len(notified) != 2 || notified[0] != "PROFILER_V2" || notified[1] != "PROFILER_V2" {
		t.Fatalf("notified = %v", notified)
	}
}

func TestDataAssetVersioningAndTouch(t *testing.T) {
	r, _ := newDataReg(t)
	a, _ := r.Get("hr.jobs")
	if a.Version != 1 {
		t.Fatalf("initial version = %d", a.Version)
	}
	var notified []string
	r.OnChange(func(name string) { notified = append(notified, name) })

	a.Rows = 9999
	if err := r.Update(a); err != nil {
		t.Fatal(err)
	}
	if a2, _ := r.Get("hr.jobs"); a2.Version != 2 {
		t.Fatalf("post-update version = %d", a2.Version)
	}
	if err := r.Touch("hr.jobs"); err != nil {
		t.Fatal(err)
	}
	if a3, _ := r.Get("hr.jobs"); a3.Version != 3 {
		t.Fatalf("post-touch version = %d", a3.Version)
	}
	// Both the Update and the Touch propagate up the hierarchy: agents
	// declare Reads at database level ("hr"), so a table-level change must
	// notify the parent as well as the table.
	counts := map[string]int{}
	for _, n := range notified {
		counts[n]++
	}
	if counts["hr.jobs"] != 2 || counts["hr"] != 2 {
		t.Fatalf("notified = %v", notified)
	}
	if err := r.Touch("missing"); !errors.Is(err, ErrAssetNotFound) {
		t.Fatalf("touch missing = %v", err)
	}
}

func TestDataTouchPropagatesToDescendants(t *testing.T) {
	r, _ := newDataReg(t)
	var notified []string
	r.OnChange(func(name string) { notified = append(notified, name) })
	// A database-level touch conservatively means any contained table may
	// have changed: every child is notified too.
	if err := r.Touch("hr"); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, n := range notified {
		seen[n] = true
	}
	if !seen["hr"] || !seen["hr.jobs"] {
		t.Fatalf("notified = %v, want hr and its tables", notified)
	}
}
