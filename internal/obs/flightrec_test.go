package obs

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---- event log ----

func TestEventLogLevelGate(t *testing.T) {
	l := NewEventLog(16)
	if l.Level() != LevelInfo {
		t.Fatalf("default level = %v, want info", l.Level())
	}
	l.Emit(LevelDebug, "governor", "admit")
	l.Emit(LevelInfo, "governor", "queue")
	l.Emit(LevelWarn, "governor", "shed")
	if got := l.Len(); got != 2 {
		t.Fatalf("len = %d, want 2 (debug filtered at info)", got)
	}
	l.SetLevel(LevelDebug)
	if !l.On(LevelDebug) {
		t.Fatal("On(debug) false after SetLevel(debug)")
	}
	l.Emit(LevelDebug, "governor", "admit")
	if got := l.Len(); got != 3 {
		t.Fatalf("len = %d, want 3 after lowering the gate", got)
	}
	l.SetLevel(LevelOff)
	if l.On(LevelError) || l.On(LevelOff) {
		t.Fatal("On must be false for every level when off")
	}
	l.Emit(LevelError, "breaker", "open")
	if got := l.Len(); got != 3 {
		t.Fatalf("len = %d after off-level emit, want 3", got)
	}
	var nilLog *EventLog
	if nilLog.On(LevelError) {
		t.Fatal("nil log must report off")
	}
}

func TestEventLogRingWrapAndSince(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 20; i++ {
		l.Emit(LevelInfo, "c", fmt.Sprintf("k%d", i))
	}
	if l.Len() != 8 || l.Cap() != 8 {
		t.Fatalf("len/cap = %d/%d, want 8/8", l.Len(), l.Cap())
	}
	all := l.Since(0)
	if len(all) != 8 {
		t.Fatalf("Since(0) = %d events, want 8", len(all))
	}
	// Oldest-first, contiguous sequence ending at Seq().
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs: %d then %d", all[i-1].Seq, all[i].Seq)
		}
	}
	if head := l.Seq(); all[len(all)-1].Seq != head {
		t.Fatalf("newest retained seq %d != head %d", all[len(all)-1].Seq, head)
	}
	if all[0].Kind != "k12" {
		t.Fatalf("oldest retained = %s, want k12", all[0].Kind)
	}
	// A cursor mid-ring returns only newer events.
	mid := all[3].Seq
	tail := l.Since(mid)
	if len(tail) != 4 || tail[0].Seq != mid+1 {
		t.Fatalf("Since(%d) = %d events starting %d, want 4 starting %d",
			mid, len(tail), tail[0].Seq, mid+1)
	}
	// A cursor at the head returns nothing.
	if got := l.Since(l.Seq()); len(got) != 0 {
		t.Fatalf("Since(head) = %d events, want 0", len(got))
	}
}

func TestEventLogConcurrentAppend(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Emit(LevelInfo, "c", "k")
			}
		}()
	}
	wg.Wait()
	if got := l.Seq(); got != 4000 {
		t.Fatalf("seq = %d, want 4000", got)
	}
	if got := l.Len(); got != 64 {
		t.Fatalf("len = %d, want 64", got)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(8)
	admitted := 0
	for i := 0; i < 64; i++ {
		if s.Allow() {
			admitted++
		}
	}
	if admitted != 8 {
		t.Fatalf("1-in-8 sampler admitted %d of 64", admitted)
	}
	var nilS *Sampler
	if !nilS.Allow() || !NewSampler(0).Allow() {
		t.Fatal("nil and every<=1 samplers must admit everything")
	}
}

func TestTraceIDHelpers(t *testing.T) {
	a, b := NewTraceID("s1"), NewTraceID("s1")
	if a == b {
		t.Fatalf("trace ids not unique: %q", a)
	}
	if !strings.HasPrefix(a, "s1-") {
		t.Fatalf("trace id %q missing prefix", a)
	}
	ctx := WithTraceID(t.Context(), a)
	if got := TraceIDFrom(ctx); got != a {
		t.Fatalf("TraceIDFrom = %q, want %q", got, a)
	}
	if got := TraceIDFrom(t.Context()); got != "" {
		t.Fatalf("TraceIDFrom(bare ctx) = %q", got)
	}
	if WithTraceID(ctx, "") != ctx {
		t.Fatal("WithTraceID(\"\") must return ctx unchanged")
	}
}

// ---- flight recorder ----

func TestRecorderShouldCapture(t *testing.T) {
	r := NewRecorder(4)
	r.SetThreshold(100 * time.Millisecond)
	if r.ShouldCapture(50*time.Millisecond, "") {
		t.Fatal("fast success captured")
	}
	if !r.ShouldCapture(150*time.Millisecond, "") {
		t.Fatal("slow success not captured")
	}
	for _, o := range []string{OutcomeError, OutcomeDegraded, OutcomeShed} {
		if !r.ShouldCapture(0, o) {
			t.Fatalf("outcome %q not captured regardless of duration", o)
		}
	}
	r.SetThreshold(-1)
	if r.ShouldCapture(time.Hour, OutcomeError) {
		t.Fatal("negative threshold must disable capture entirely")
	}
}

func TestRecorderRingAndClamp(t *testing.T) {
	r := NewRecorder(4)
	bigSpans := make([]SpanData, MaxExemplarSpans+50)
	bigEvents := make([]Event, MaxExemplarEvents+50)
	for i := range bigEvents {
		bigEvents[i].Seq = uint64(i + 1)
	}
	id := r.Capture(Exemplar{Session: "s", Spans: bigSpans, Events: bigEvents})
	ex, ok := r.Get(id)
	if !ok {
		t.Fatal("captured exemplar not retrievable")
	}
	if ex.SpanCount != MaxExemplarSpans+50 || len(ex.Spans) != MaxExemplarSpans {
		t.Fatalf("spans %d/%d, want clamp to %d keeping true count", len(ex.Spans), ex.SpanCount, MaxExemplarSpans)
	}
	if len(ex.Events) != MaxExemplarEvents || ex.Events[0].Seq != 51 {
		t.Fatalf("events clamp must keep the tail: len %d first seq %d", len(ex.Events), ex.Events[0].Seq)
	}
	for i := 0; i < 10; i++ {
		r.Capture(Exemplar{Session: fmt.Sprintf("s%d", i)})
	}
	if r.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", r.Len())
	}
	if _, ok := r.Get(id); ok {
		t.Fatal("evicted exemplar still retrievable")
	}
	if got := r.Captures(); got != 11 {
		t.Fatalf("captures = %d, want 11 (monotonic across eviction)", got)
	}
	sums := r.Summaries()
	if len(sums) != 4 || sums[0].Session != "s9" || sums[3].Session != "s6" {
		t.Fatalf("summaries not most-recent-first: %+v", sums)
	}
	latest, ok := r.Latest()
	if !ok || latest.Session != "s9" {
		t.Fatal("Latest must return the newest exemplar")
	}
}

// ---- SLO burn rates ----

func TestSLOBurnMath(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		LatencyTarget: 100 * time.Millisecond,
		Objective:     0.9, // error budget 0.1 — burn = badFrac * 10
		FastWindow:    time.Minute,
		SlowWindow:    10 * time.Minute,
	})
	clock := time.Unix(1000, 0)
	tr.now = func() time.Time { return clock }

	// 100 observations spread over 100s: 20 bad (10 errors + 10 slow).
	for i := 0; i < 100; i++ {
		clock = clock.Add(time.Second)
		switch {
		case i%10 == 0:
			tr.Record(SLOTenant, "acme", 10*time.Millisecond, true)
		case i%10 == 5:
			tr.Record(SLOTenant, "acme", 200*time.Millisecond, false)
		default:
			tr.Record(SLOTenant, "acme", 10*time.Millisecond, false)
		}
	}
	sts := tr.Status()
	if len(sts) != 1 {
		t.Fatalf("series = %d, want 1", len(sts))
	}
	st := sts[0]
	if st.Total != 100 || st.Bad != 20 || st.Errors != 10 || st.Slow != 10 {
		t.Fatalf("counts = %+v", st)
	}
	if st.GoodFraction != 0.8 {
		t.Fatalf("good fraction = %f, want 0.8", st.GoodFraction)
	}
	// Slow window (10m) covers the whole life: burn = 0.2/0.1 = 2.
	if st.SlowBurn < 1.9 || st.SlowBurn > 2.1 {
		t.Fatalf("slow burn = %f, want ~2", st.SlowBurn)
	}
	// Fast window (1m) covers the last 60 observations: 12 bad → burn 2.
	if st.FastBurn < 1.8 || st.FastBurn > 2.2 {
		t.Fatalf("fast burn = %f, want ~2", st.FastBurn)
	}

	// A burst of pure errors moves the fast burn far above the slow burn.
	for i := 0; i < 30; i++ {
		clock = clock.Add(time.Second)
		tr.Record(SLOTenant, "acme", 10*time.Millisecond, true)
	}
	st = tr.Status()[0]
	if st.FastBurn <= st.SlowBurn {
		t.Fatalf("error burst: fast burn %f must exceed slow burn %f", st.FastBurn, st.SlowBurn)
	}
	if st.FastBurn < 5 {
		t.Fatalf("fast burn = %f, want >= 5 during a pure-error burst", st.FastBurn)
	}

	// Flush a checkpoint past the coalescing granularity so the burst's
	// tail is baselined, then 20 minutes of silence: both windows drain to
	// zero burn.
	clock = clock.Add(tr.gran)
	tr.Record(SLOTenant, "acme", 10*time.Millisecond, false)
	clock = clock.Add(20 * time.Minute)
	tr.Record(SLOTenant, "acme", 10*time.Millisecond, false)
	clock = clock.Add(time.Second)
	st = tr.Status()[0]
	if st.FastBurn != 0 || st.SlowBurn != 0 {
		t.Fatalf("after quiet period burns = %f/%f, want 0/0", st.FastBurn, st.SlowBurn)
	}
}

func TestSLONilAndSorting(t *testing.T) {
	var nilT *SLOTracker
	nilT.Record(SLOTenant, "x", time.Second, true) // must not panic
	if nilT.Status() != nil {
		t.Fatal("nil tracker Status must be nil")
	}
	if nilT.Config().Objective != 0.99 {
		t.Fatal("nil tracker Config must return defaults")
	}
	tr := NewSLOTracker(SLOConfig{})
	tr.Record(SLOTenant, "b", 0, false)
	tr.Record(SLOAgent, "z", 0, false)
	tr.Record(SLOTenant, "a", 0, false)
	sts := tr.Status()
	got := make([]string, len(sts))
	for i, st := range sts {
		got[i] = st.Kind + "/" + st.Name
	}
	want := []string{"agent/z", "tenant/a", "tenant/b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("status order = %v, want %v", got, want)
		}
	}
	tr.Record("", "", time.Second, true) // empty name ignored
	if len(tr.Status()) != 3 {
		t.Fatal("empty-name record must not create a series")
	}
}

func TestSLOExpositionLabels(t *testing.T) {
	r := NewRegistry()
	tr := NewSLOTracker(SLOConfig{})
	// Hostile tenant name: X-Tenant is client-controlled.
	tr.Record(SLOTenant, "evil\"}\n\\name", time.Second, true)
	r.SLOFunc("test_burn", "burn", tr)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `test_burn{kind="tenant",name="evil\"}\n\\name",window="fast"}`) {
		t.Fatalf("escaped labeled sample missing:\n%s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "evil") && strings.ContainsRune(line, '\n') {
			t.Fatalf("raw newline leaked into sample line: %q", line)
		}
	}
	// Re-point semantics: a second SLOFunc call swaps the tracker.
	tr2 := NewSLOTracker(SLOConfig{})
	tr2.Record(SLOAgent, "fresh", 0, false)
	r.SLOFunc("test_burn", "burn", tr2)
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `name="fresh"`) || strings.Contains(sb.String(), "evil") {
		t.Fatal("SLOFunc re-point did not swap trackers")
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"\\\"\n", `\\\"\n`},
		{"", ""},
	}
	for _, c := range cases {
		if got := EscapeLabel(c.in); got != c.want {
			t.Fatalf("EscapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestHistogramInfSeriesInExposition pins the exposition of observations
// beyond the last bound: they must appear only in the +Inf bucket series,
// and every finite bucket line must stay below it.
func TestHistogramInfSeriesInExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_over_seconds", "overflow", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(50)   // beyond the last bound
	h.Observe(5000) // far beyond
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	wantLines := map[string]string{
		`test_over_seconds_bucket{le="0.1"} 1`:  "le=0.1",
		`test_over_seconds_bucket{le="1"} 1`:    "le=1",
		`test_over_seconds_bucket{le="+Inf"} 3`: "le=+Inf",
		`test_over_seconds_count 3`:             "count",
	}
	for line, label := range wantLines {
		if !strings.Contains(text, line) {
			t.Fatalf("exposition missing %s line %q:\n%s", label, line, text)
		}
	}
}

// ---- tracer session bound (satellite: LRU eviction) ----

func TestTracerLRUEviction(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxSessions(3)
	for _, s := range []string{"a", "b", "c"} {
		tr.StartRoot(s, "t", "op").End()
	}
	// Touch "a" so "b" becomes least recently active.
	tr.StartRoot("a", "t", "op2").End()
	tr.StartRoot("d", "t", "op").End()
	if n := tr.SessionCount(); n != 3 {
		t.Fatalf("session count = %d, want 3", n)
	}
	if got := tr.Session("b"); got != nil {
		t.Fatal("least-recently-active session b not evicted")
	}
	for _, s := range []string{"a", "c", "d"} {
		if got := tr.Session(s); len(got) == 0 {
			t.Fatalf("session %s evicted, want retained", s)
		}
	}
	// Shrinking the bound evicts down immediately.
	tr.SetMaxSessions(1)
	if n := tr.SessionCount(); n != 1 {
		t.Fatalf("after shrink, session count = %d, want 1", n)
	}
	if got := tr.Session("d"); len(got) == 0 {
		t.Fatal("most recent session must survive the shrink")
	}
}

// TestTracerBoundedMemory drives a million short sessions through one
// tracer and asserts the retained state stays at the session bound — the
// regression test for the unbounded per-session ring map.
func TestTracerBoundedMemory(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	tr := NewTracer()
	tr.SetMaxSessions(DefaultMaxSessions)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		sp := tr.StartRoot(fmt.Sprintf("sess-%d", i), "session", "ask")
		tr.StartUnder(fmt.Sprintf("sess-%d", i), "agent", "step").End()
		sp.End()
	}
	if got := tr.SessionCount(); got != DefaultMaxSessions {
		t.Fatalf("session count = %d, want bound %d", got, DefaultMaxSessions)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	// 128 sessions x 2048-span rings is well under 64 MiB; an unbounded map
	// of a million sessions would hold hundreds of MiB.
	const bound = 64 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > bound {
		t.Fatalf("heap grew %d bytes across %d sessions, want <= %d", grew, n, bound)
	}
}

func TestTracerTree(t *testing.T) {
	tr := NewTracer()
	// Two interleaved asks in one session: Tree must isolate one root.
	r1 := tr.StartRoot("s", "session", "ask1")
	c1 := tr.newSpan("s", r1.ID(), "agent", "step1", nil)
	c1.End()
	r1.End()
	r2 := tr.StartRoot("s", "session", "ask2")
	c2 := tr.newSpan("s", r2.ID(), "agent", "step2", nil)
	c2.End()
	r2.End()
	tree := tr.Tree("s", r1.ID())
	if len(tree) != 2 {
		t.Fatalf("tree = %d spans, want 2", len(tree))
	}
	if tree[0].Name != "step1" || tree[1].Name != "ask1" {
		t.Fatalf("tree = %s then %s, want step1 then ask1 (chronological by end)", tree[0].Name, tree[1].Name)
	}
	if got := tr.Tree("s", 999999); len(got) != 0 {
		t.Fatal("unknown root must return no spans")
	}
	if got := tr.Tree("nope", r1.ID()); len(got) != 0 {
		t.Fatal("unknown session must return no spans")
	}

	// Laggard subtree: the ask returns — and its root ends — the moment the
	// answer displays, a hair before the posting agent's span and its
	// coordinator ancestors land. The whole chain is then recorded AFTER
	// the root, so membership must not depend on ring order.
	r3 := tr.StartRoot("s", "session", "ask3")
	p3 := tr.newSpan("s", r3.ID(), "coordinator", "plan", nil)
	c3 := tr.newSpan("s", p3.ID(), "agent", "late", nil)
	r3.End()
	c3.End()
	p3.End()
	tree = tr.Tree("s", r3.ID())
	if len(tree) != 3 {
		t.Fatalf("laggard tree = %d spans, want 3 (root + chain recorded after it)", len(tree))
	}
}
