package relational

import "sort"

// orderedIndex keeps (value, rowid) entries sorted by value then rowid,
// supporting equality and range scans. A sorted slice with binary search is
// the right structure at the scale of this engine (inserts are amortized by
// batch loading; the workload generator bulk-inserts before querying).
type orderedIndex struct {
	entries []orderedEntry
}

type orderedEntry struct {
	v  Value
	id int
}

func newOrderedIndex() *orderedIndex {
	return &orderedIndex{}
}

func (ix *orderedIndex) less(a, b orderedEntry) bool {
	c := Compare(a.v, b.v)
	if c != 0 {
		return c < 0
	}
	return a.id < b.id
}

func (ix *orderedIndex) add(v Value, id int) {
	e := orderedEntry{v: v, id: id}
	pos := sort.Search(len(ix.entries), func(i int) bool {
		return !ix.less(ix.entries[i], e)
	})
	ix.entries = append(ix.entries, orderedEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = e
}

func (ix *orderedIndex) remove(v Value, id int) {
	e := orderedEntry{v: v, id: id}
	pos := sort.Search(len(ix.entries), func(i int) bool {
		return !ix.less(ix.entries[i], e)
	})
	if pos < len(ix.entries) && ix.entries[pos].id == id && Compare(ix.entries[pos].v, v) == 0 {
		ix.entries = append(ix.entries[:pos], ix.entries[pos+1:]...)
	}
}

// lookupEq returns rowids whose value equals v. Both ends of the run are
// found by binary search and the ids are copied into one right-sized slice —
// no per-entry Compare calls or append growth along the way.
func (ix *orderedIndex) lookupEq(v Value) []int {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return Compare(ix.entries[i].v, v) >= 0
	})
	hi := sort.Search(len(ix.entries), func(i int) bool {
		return Compare(ix.entries[i].v, v) > 0
	})
	return ix.copyIDs(lo, hi)
}

// lookupRange returns rowids with lo <= value <= hi; either bound may be
// Null meaning unbounded, and loOpen/hiOpen make the bound exclusive. Both
// bounds are binary-searched, then the id range is copied in one pass.
func (ix *orderedIndex) lookupRange(lo, hi Value, loOpen, hiOpen bool) []int {
	start := 0
	if !lo.IsNull() {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := Compare(ix.entries[i].v, lo)
			if loOpen {
				return c > 0
			}
			return c >= 0
		})
	}
	end := len(ix.entries)
	if !hi.IsNull() {
		end = sort.Search(len(ix.entries), func(i int) bool {
			c := Compare(ix.entries[i].v, hi)
			if hiOpen {
				return c >= 0
			}
			return c > 0
		})
	}
	return ix.copyIDs(start, end)
}

// copyIDs extracts the ids of entries[start:end) into a right-sized slice,
// or nil for an empty range.
func (ix *orderedIndex) copyIDs(start, end int) []int {
	if start >= end {
		return nil
	}
	out := make([]int, end-start)
	for i := range out {
		out[i] = ix.entries[start+i].id
	}
	return out
}
