package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser for the engine's SQL dialect. It
// consumes the tokenizer stream directly (one token of lookahead buffered in
// peekTok), so parsing allocates only the AST — no intermediate token slice.
//
// In auto mode (parseNormalized) the parser mirrors the fingerprint pass:
// number and string literals outside inline regions become auto-extracted
// parameter slots instead of Literal nodes, so one parsed form serves every
// statement sharing the shape. inline > 0 marks the regions whose literals
// stay inline (SELECT items and ORDER BY keys; LIMIT/OFFSET read their
// numbers directly and are inline by construction) — these literals feed
// projection shape, ordering and top-k sizing, where literal identity changes
// plan semantics.
type parser struct {
	tz      tokenizer
	tok     token
	peekTok token
	hasPeek bool
	// lexErr is the first lexical error encountered; once set, the stream
	// yields synthetic EOF tokens and the error takes priority over any
	// later parse error.
	lexErr  error
	nparams int // explicit '?' count
	nslots  int // unified slots (explicit + auto) in auto mode
	auto    bool
	slots   []int // per unified slot: 0 = auto literal, else 1-based '?' ordinal
	inline  int
}

// Parse parses one SQL statement.
func Parse(sql string) (Statement, error) {
	st, _, err := parseSQL(sql, false)
	return st, err
}

// parseNormalized parses sql with literal auto-extraction enabled, returning
// the statement plus the unified slot layout (0 = auto-extracted literal,
// n>0 = explicit '?' ordinal n). The caller merges fingerprint-extracted
// literal values with caller-supplied params following that layout.
func parseNormalized(sql string) (Statement, []int, error) {
	return parseSQL(sql, true)
}

func parseSQL(sql string, auto bool) (Statement, []int, error) {
	p := &parser{tz: newTokenizer(sql), auto: auto}
	p.advance() // prime the current token
	st, err := p.statement()
	if err != nil {
		if p.lexErr != nil {
			return nil, nil, p.lexErr
		}
		return nil, nil, err
	}
	// allow trailing semicolon
	if p.cur().kind == tokOp && p.cur().text == ";" {
		p.advance()
	}
	if p.lexErr != nil {
		return nil, nil, p.lexErr
	}
	if p.cur().kind != tokEOF {
		return nil, nil, fmt.Errorf("relational: unexpected trailing input %q at %d", p.cur().text, p.cur().pos)
	}
	return st, p.slots, nil
}

// lex1 pulls one token from the tokenizer, degrading to synthetic EOF after
// a lexical error.
func (p *parser) lex1() token {
	if p.lexErr != nil {
		return token{kind: tokEOF, pos: p.tz.pos}
	}
	t, err := p.tz.next()
	if err != nil {
		p.lexErr = err
		return token{kind: tokEOF, pos: p.tz.pos}
	}
	return t
}

func (p *parser) advance() {
	if p.hasPeek {
		p.tok = p.peekTok
		p.hasPeek = false
		return
	}
	p.tok = p.lex1()
}

// peek returns the token after the current one without consuming it.
func (p *parser) peek() token {
	if !p.hasPeek {
		p.peekTok = p.lex1()
		p.hasPeek = true
	}
	return p.peekTok
}

func (p *parser) cur() token  { return p.tok }
func (p *parser) next() token { t := p.tok; p.advance(); return t }

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("relational: expected %s, got %q at %d", kw, p.cur().text, p.cur().pos)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if p.cur().kind == tokOp && p.cur().text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("relational: expected %q, got %q at %d", op, p.cur().text, p.cur().pos)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	// Permit non-reserved keyword-looking identifiers for column names like
	// "count" is reserved, so users must quote differently; keep strict.
	return "", fmt.Errorf("relational: expected identifier, got %q at %d", t.text, t.pos)
}

func (p *parser) statement() (Statement, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("relational: expected statement keyword, got %q at %d", t.text, t.pos)
	}
	switch t.text {
	case "EXPLAIN":
		p.advance()
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		sel, ok := st.(*SelectStmt)
		if !ok {
			return nil, fmt.Errorf("relational: EXPLAIN supports SELECT only")
		}
		sel.Explain = true
		return sel, nil
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	default:
		return nil, fmt.Errorf("relational: unsupported statement %q", t.text)
	}
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")

	p.inline++ // projection literals shape the result; keep them inline
	for {
		if p.acceptOp("*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				p.inline--
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				a, err := p.expectIdent()
				if err != nil {
					p.inline--
					return nil, err
				}
				item.Alias = a
			} else if p.cur().kind == tokIdent {
				item.Alias = p.next().text
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	p.inline--

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from

	for {
		left := false
		if p.acceptKeyword("LEFT") {
			left = true
			_ = p.acceptKeyword("INNER") // tolerate nothing; LEFT [JOIN]
		} else if p.acceptKeyword("INNER") {
			// inner join
		} else if p.cur().kind == tokKeyword && p.cur().text == "JOIN" {
			// bare JOIN
		} else {
			break
		}
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		l, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		r, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Left: left, Table: tr, LCol: l, RCol: r})
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		p.inline++ // ordering keys (incl. positional numbers) stay inline
		for {
			e, err := p.expr()
			if err != nil {
				p.inline--
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
		p.inline--
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

func (p *parser) expectInt() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("relational: expected number, got %q at %d", t.text, t.pos)
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("relational: invalid integer %q", t.text)
	}
	return n, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.cur().kind == tokIdent {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) columnRef() (ColumnRef, error) {
	a, err := p.expectIdent()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.acceptOp(".") {
		b, err := p.expectIdent()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: a, Column: b}, nil
	}
	return ColumnRef{Column: a}, nil
}

// expr parses OR-level expressions.
func (p *parser) expr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if !p.acceptKeyword("NULL") {
			return nil, fmt.Errorf("relational: expected NULL after IS at %d", p.cur().pos)
		}
		return &IsNullExpr{E: l, Not: not}, nil
	}
	// [NOT] IN / BETWEEN / LIKE
	notPrefix := false
	if p.cur().kind == tokKeyword && p.cur().text == "NOT" {
		nt := p.peek()
		if nt.kind == tokKeyword && (nt.text == "IN" || nt.text == "BETWEEN" || nt.text == "LIKE") {
			p.advance()
			notPrefix = true
		}
	}
	if p.acceptKeyword("IN") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Not: notPrefix}, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.primary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: notPrefix}, nil
	}
	if p.acceptKeyword("LIKE") {
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		e := Expr(&BinaryExpr{Op: "LIKE", L: l, R: r})
		if notPrefix {
			e = &UnaryExpr{Op: "NOT", E: e}
		}
		return e, nil
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.cur().kind == tokOp && p.cur().text == op {
			p.advance()
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

// numberValue converts a number token's text to a Value — the single place
// literal numbers become typed values, shared by the parser and the
// fingerprint pass so both accept exactly the same spellings.
func numberValue(text string) (Value, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Null, fmt.Errorf("relational: bad number %q", text)
		}
		return NewFloat(f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Null, fmt.Errorf("relational: bad number %q", text)
	}
	return NewInt(n), nil
}

// autoSlot records an auto-extracted literal and returns its parameter node.
func (p *parser) autoSlot() *Param {
	p.nslots++
	p.slots = append(p.slots, 0)
	return &Param{Ordinal: p.nslots, Auto: true}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		v, err := numberValue(t.text)
		if err != nil {
			return nil, err
		}
		if p.auto && p.inline == 0 {
			return p.autoSlot(), nil
		}
		return &Literal{Val: v}, nil
	case tokString:
		p.advance()
		if p.auto && p.inline == 0 {
			return p.autoSlot(), nil
		}
		return &Literal{Val: NewString(t.stringVal())}, nil
	case tokParam:
		p.advance()
		p.nparams++
		if p.auto {
			p.nslots++
			p.slots = append(p.slots, p.nparams)
			return &Param{Ordinal: p.nslots, Src: p.nparams}, nil
		}
		return &Param{Ordinal: p.nparams, Src: p.nparams}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Val: Null}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			agg := &AggExpr{Fn: t.text}
			if p.acceptOp("*") {
				if t.text != "COUNT" {
					return nil, fmt.Errorf("relational: %s(*) not supported", t.text)
				}
				agg.Star = true
			} else {
				agg.Distinct = p.acceptKeyword("DISTINCT")
				arg, err := p.primary()
				if err != nil {
					return nil, err
				}
				agg.Arg = arg
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return agg, nil
		case "NOT":
			p.advance()
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: "NOT", E: e}, nil
		}
		return nil, fmt.Errorf("relational: unexpected keyword %q at %d", t.text, t.pos)
	case tokIdent:
		c, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		return &c, nil
	case tokOp:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("relational: unexpected token %q at %d", t.text, t.pos)
}

func (p *parser) insertStmt() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if p.acceptOp("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) createStmt() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("TABLE") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		ct := &CreateTableStmt{Table: name}
		for {
			cn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			tt := p.cur()
			if tt.kind != tokKeyword {
				return nil, fmt.Errorf("relational: expected type for column %q at %d", cn, tt.pos)
			}
			var ty Type
			switch tt.text {
			case "INT":
				ty = TInt
			case "FLOAT":
				ty = TFloat
			case "TEXT":
				ty = TString
			case "BOOL":
				ty = TBool
			default:
				return nil, fmt.Errorf("relational: unknown type %q", tt.text)
			}
			p.advance()
			ct.Columns = append(ct.Columns, Column{Name: cn, Type: ty})
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return ct, nil
	}
	ordered := p.acceptKeyword("ORDERED")
	if p.acceptKeyword("INDEX") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		tbl, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name, Table: tbl, Column: col, Ordered: ordered}, nil
	}
	return nil, fmt.Errorf("relational: expected TABLE or INDEX after CREATE at %d", p.cur().pos)
}

func (p *parser) dropStmt() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name}, nil
}

func (p *parser) updateStmt() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	up := &UpdateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.primary()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, SetClause{Column: col, Value: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) deleteStmt() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}
