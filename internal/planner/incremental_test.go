package planner

import (
	"testing"

	"blueprint/internal/registry"
)

func TestIncrementalPlanStepByStep(t *testing.T) {
	tp := New(hrRegistry(t), perfectModel(), nil)
	ip, err := tp.PlanIncremental("I am looking for a data scientist position in SF bay area.")
	if err != nil {
		t.Fatal(err)
	}
	if ip.Intent() != "job_search" || ip.Remaining() != 3 || ip.Done() {
		t.Fatalf("plan = intent %s remaining %d", ip.Intent(), ip.Remaining())
	}
	want := []string{"PROFILER", "JOBMATCHER", "PRESENTER"}
	for i, w := range want {
		step, ok, err := ip.Next()
		if err != nil || !ok {
			t.Fatalf("step %d: %v ok=%v", i, err, ok)
		}
		if step.Agent != w {
			t.Fatalf("step %d agent = %s, want %s", i, step.Agent, w)
		}
	}
	if !ip.Done() {
		t.Fatal("plan not done after all steps")
	}
	if _, ok, err := ip.Next(); ok || err != nil {
		t.Fatalf("Next after done = ok=%v err=%v", ok, err)
	}
	p := ip.Materialize()
	if len(p.Steps) != 3 || p.Steps[1].Bindings["JOBSEEKER_DATA"].FromStep != "s1" {
		t.Fatalf("materialized = %s", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalPlanAdaptsToRegistryChanges(t *testing.T) {
	reg := hrRegistry(t)
	tp := New(reg, perfectModel(), nil)
	ip, err := tp.PlanIncremental("I am looking for a data scientist position.")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ip.Next(); err != nil { // s1: PROFILER
		t.Fatal(err)
	}
	// A better matcher registers *between* steps: boost it with usage logs
	// so it outranks JOBMATCHER for the matching sub-task.
	if err := reg.Register(registryAgentSpecForMatcher()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := reg.RecordUsage("TURBO_MATCHER", "match the job seeker profile with available job listings assessing match quality"); err != nil {
			t.Fatal(err)
		}
	}
	step, ok, err := ip.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if step.Agent != "TURBO_MATCHER" {
		t.Fatalf("incremental plan did not adapt: step agent = %s", step.Agent)
	}
}

func TestIncrementalVeto(t *testing.T) {
	tp := New(hrRegistry(t), perfectModel(), nil)
	ip, err := tp.PlanIncremental("I am looking for a data scientist position.")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ip.Next(); err != nil {
		t.Fatal(err)
	}
	// Feedback: JOBMATCHER misbehaved; veto it before the matching step.
	ip.Veto("JOBMATCHER")
	step, ok, err := ip.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if step.Agent == "JOBMATCHER" {
		t.Fatal("vetoed agent selected")
	}
	if step.Agent != "BACKUP_MATCHER" {
		t.Fatalf("alternative = %s", step.Agent)
	}
}

func TestIncrementalVetoAllFails(t *testing.T) {
	tp := New(hrRegistry(t), perfectModel(), nil)
	ip, err := tp.PlanIncremental("I am looking for a data scientist position.")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"PROFILER", "JOBMATCHER", "BACKUP_MATCHER", "PRESENTER", "NL2Q", "SQLEXECUTOR", "QUERYSUMMARIZER"} {
		ip.Veto(name)
	}
	if _, _, err := ip.Next(); err == nil {
		t.Fatal("fully vetoed plan produced a step")
	}
}

// registryAgentSpecForMatcher returns a matcher spec used by the adaptation
// test.
func registryAgentSpecForMatcher() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        "TURBO_MATCHER",
		Description: "match the job seeker profile with available job listings assessing match quality and ranking",
		Inputs:      []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		Outputs:     []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
	}
}
