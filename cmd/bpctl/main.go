// bpctl is the developer console for a blueprint System: it boots an
// in-process instance and inspects registries, compiles queries, plans
// utterances and replays conversations — the "web interface for developers"
// of §V-C, as a CLI.
//
// Usage:
//
//	bpctl agents                      # list the agent registry
//	bpctl data                        # list the data registry
//	bpctl search-agents <text>        # vector search over agents
//	bpctl discover <text>             # vector search over data assets
//	bpctl nl2q <question>             # compile NL -> SQL and run it
//	bpctl plan <utterance>            # show the task plan DAG
//	bpctl ask <utterance>             # full pipeline, print answer + flow
//	bpctl memo <utterance>            # run the plan twice: cold vs memo-warm + stats
//	bpctl sql <statement>             # raw SQL against the enterprise DB
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"blueprint"
	"blueprint/internal/dataplan"
	"blueprint/internal/nlq"
	"blueprint/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: bpctl <agents|data|search-agents|discover|nl2q|plan|ask|sql> [args]")
	}

	sys, err := blueprint.New(blueprint.Config{Seed: *seed, ModelAccuracy: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	cmd, rest := args[0], strings.Join(args[1:], " ")
	switch cmd {
	case "agents":
		for _, spec := range sys.AgentRegistry.List() {
			fmt.Printf("%-20s v%d  %s\n", spec.Name, spec.Version, spec.Description)
			for _, in := range spec.Inputs {
				fmt.Printf("    in:  %s (%s)\n", in.Name, in.Type)
			}
			for _, out := range spec.Outputs {
				fmt.Printf("    out: %s (%s)\n", out.Name, out.Type)
			}
		}
	case "data":
		for _, a := range sys.DataRegistry.List("", "") {
			fmt.Printf("%-20s %-10s %-10s rows=%-6d %s\n", a.Name, a.Kind, a.Level, a.Rows, a.Description)
			if len(a.Indexes) > 0 {
				fmt.Printf("    indexes: %s\n", strings.Join(a.Indexes, ", "))
			}
		}
	case "search-agents":
		for _, h := range sys.AgentRegistry.SearchVector(rest, 5) {
			fmt.Printf("%.3f  %-20s %s\n", h.Score, h.Spec.Name, h.Spec.Description)
		}
	case "discover":
		for _, h := range sys.DataRegistry.Discover(rest, 5) {
			fmt.Printf("%.3f  %-20s %s\n", h.Score, h.Asset.Name, h.Asset.Description)
		}
	case "nl2q":
		tgt, err := dataplan.BuildTarget(sys.Enterprise.DB, "jobs")
		if err != nil {
			log.Fatal(err)
		}
		c, err := nlq.Compile(rest, tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sql:        %s\nconfidence: %.2f\n", c.SQL, c.Confidence)
		for _, e := range c.Explanation {
			fmt.Printf("  %s\n", e)
		}
		res, err := sys.Enterprise.DB.Query(c.SQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	case "plan":
		p, err := sys.TaskPlanner.Plan(rest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(p)
		for _, e := range p.Explanation {
			fmt.Printf("  %s\n", e)
		}
	case "ask":
		s, err := sys.StartSession("")
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		answer, err := s.Ask(rest, 15*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("answer: %s\n\nflow:\n%s", answer, trace.Render(s.Flow()))
	case "memo":
		s, err := sys.StartSession("")
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		run := func(label string) {
			start := time.Now()
			res, _, err := s.ExecuteUtterance(rest)
			if err != nil {
				log.Fatal(err)
			}
			cached := 0
			for _, sr := range res.Steps {
				if sr.Cached {
					cached++
				}
			}
			fmt.Printf("%-5s wall=%-12s steps=%d cached=%d cost=$%.5f\n",
				label, time.Since(start).Round(time.Microsecond), len(res.Steps), cached, res.Budget.CostSpent)
		}
		run("cold")
		run("warm")
		st := sys.MemoStats()
		fmt.Printf("memo  hits=%d misses=%d hit_rate=%.0f%% coalesced=%d entries=%d saved=$%.5f/%s\n",
			st.Hits, st.Misses, st.HitRate()*100, st.Coalesced, st.Entries, st.SavedCost, st.SavedLatency)
	case "sql":
		res, err := sys.Enterprise.DB.Query(rest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
		fmt.Printf("plan: %s\n", res.Plan)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
