package streams

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// walRecord is one line of the write-ahead log.
type walRecord struct {
	// Type is "create" for stream creation or "append" for a message.
	Type   string      `json:"t"`
	Stream *StreamInfo `json:"stream,omitempty"`
	Msg    *Message    `json:"msg,omitempty"`
}

// walWriter appends JSON-line records to a file.
type walWriter struct {
	mu  sync.Mutex
	f   *os.File
	buf *bufio.Writer
	enc *json.Encoder
}

func newWALWriter(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("streams: open wal: %w", err)
	}
	buf := bufio.NewWriterSize(f, 1<<16)
	return &walWriter{f: f, buf: buf, enc: json.NewEncoder(buf)}, nil
}

func (w *walWriter) writeCreate(info StreamInfo) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(walRecord{Type: "create", Stream: &info})
}

func (w *walWriter) writeAppend(msg Message) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(walRecord{Type: "append", Msg: &msg})
}

// Close flushes buffered records and closes the file.
func (w *walWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Sync flushes buffered records to the OS.
func (w *walWriter) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.buf.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Sync flushes the store's WAL, if persistence is enabled.
func (s *Store) Sync() error {
	s.mu.RLock()
	w := s.wal
	s.mu.RUnlock()
	if w == nil {
		return nil
	}
	return w.Sync()
}

// recover replays a WAL file into the store. A missing file is not an error
// (fresh store). A torn trailing record — expected after a crash — stops
// the replay and is truncated off the file, so the writer subsequently
// appends at a valid record boundary: without the truncation, the next
// run's records would land after the garbage and be unreachable to every
// later recovery.
func (s *Store) recover(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("streams: open wal for recovery: %w", err)
	}

	dec := json.NewDecoder(bufio.NewReaderSize(f, 1<<16))
	var lastGood int64
	truncate := false
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			if !errors.Is(err, io.EOF) {
				truncate = true
				var syn *json.SyntaxError
				if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.As(err, &syn) {
					f.Close()
					return fmt.Errorf("streams: wal replay: %w", err)
				}
			}
			break
		}
		lastGood = dec.InputOffset()
		s.mu.Lock()
		s.applyRecordLocked(rec)
		s.mu.Unlock()
	}
	f.Close()
	if truncate {
		if err := os.Truncate(path, lastGood); err != nil {
			return fmt.Errorf("streams: truncate torn wal tail: %w", err)
		}
	}
	return nil
}
