package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Durable adapts the two registries to the durability engine's Loggable
// interface as one snapshot-only subsystem: agent specs and data assets
// change rarely (and deterministically at boot), so they are captured at
// snapshot time rather than logged per mutation. Restore upserts the
// snapshot's specs/assets over the boot-time registrations, preserving the
// recorded versions — which is exactly what the memo layer's restore
// validation checks warm entries against.
//
// Limitation, by design: registry changes made after the last snapshot are
// lost on crash (the next boot re-registers the base set). Memoized
// results are still safe — agent-version mismatches drop stale entries at
// restore, and memo invalidation records replay from the log.
type Durable struct {
	Agents *AgentRegistry
	Data   *DataRegistry
}

// durableImage is the snapshot payload.
type durableImage struct {
	Agents []AgentSpec `json:"agents"`
	Assets []DataAsset `json:"assets"`
}

// Apply rejects log records: the registries never append any, so one in
// the log means corruption or a framing bug.
func (d Durable) Apply([]byte) error {
	return errors.New("registry: unexpected WAL record (registries are snapshot-only)")
}

// Snapshot serializes both registries. It implements durability.Loggable.
func (d Durable) Snapshot(w io.Writer) error {
	img := durableImage{Agents: d.Agents.List(), Assets: d.Data.List("", "")}
	return json.NewEncoder(w).Encode(img)
}

// Restore upserts the snapshot's specs and assets, preserving versions and
// registration order for pre-existing names. No change hooks fire: the
// memo layer revalidates against the restored versions itself, and firing
// invalidations here would wrongly drop entries about to be restored.
func (d Durable) Restore(r io.Reader) error {
	var img durableImage
	if err := json.NewDecoder(r).Decode(&img); err != nil {
		return fmt.Errorf("registry: decode snapshot: %w", err)
	}
	d.Agents.restoreSpecs(img.Agents)
	d.Data.restoreAssets(img.Assets)
	return nil
}

// restoreSpecs replaces/installs specs exactly as snapshotted (versions
// included), without version bumps or change notifications.
func (r *AgentRegistry) restoreSpecs(specs []AgentSpec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, spec := range specs {
		key := strings.ToLower(spec.Name)
		if _, ok := r.specs[key]; !ok {
			r.order = append(r.order, key)
		}
		r.specs[key] = spec
		_ = r.reindexLocked(key)
	}
}

// restoreAssets mirrors restoreSpecs for the data registry.
func (r *DataRegistry) restoreAssets(assets []DataAsset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range assets {
		key := strings.ToLower(a.Name)
		if _, ok := r.assets[key]; !ok {
			r.order = append(r.order, key)
		}
		r.assets[key] = a
		_ = r.index.Upsert(key, r.embedder.Embed(a.searchText()))
	}
}
