package obs

import (
	"sort"
	"sync"
	"time"
)

// SLO accounting. The production question is never "what is p95" but "is
// tenant X burning its error budget, and how fast" (the Salesforce
// deployment study's framing). An SLOTracker keeps, per tenant and per
// agent, cumulative good/bad counts plus a coalesced checkpoint ring, and
// derives multi-window burn rates from the deltas: burn = (bad fraction
// over the window) / (1 - objective), so 1.0 means the error budget is
// being consumed exactly at the sustainable rate, and a fast-window burn
// far above the slow-window burn means the problem started just now.
// Served at GET /slo, exported as labeled gauges in /metrics, and rendered
// as burn lines by bpctl top.

// SLO series kinds.
const (
	SLOTenant = "tenant"
	SLOAgent  = "agent"
)

// SLOConfig sets the objectives and burn windows.
type SLOConfig struct {
	// LatencyTarget classifies an observation slower than it as bad
	// (default 1s).
	LatencyTarget time.Duration
	// Objective is the target good fraction, e.g. 0.99 (default 0.99).
	Objective float64
	// FastWindow and SlowWindow are the two burn-rate windows (defaults
	// 1m and 10m): fast answers "is it on fire now", slow "has it been
	// smoldering".
	FastWindow time.Duration
	SlowWindow time.Duration
}

// WithDefaults fills unset fields.
func (c SLOConfig) WithDefaults() SLOConfig {
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = time.Second
	}
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 10 * time.Minute
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	return c
}

// sloCheckpoint is one coalesced (time, cumulative counters) sample.
type sloCheckpoint struct {
	t          time.Time
	total, bad uint64
}

// sloSeries is one tenant's or agent's ledger.
type sloSeries struct {
	kind, name string
	total, bad uint64
	errs, slow uint64
	// cp is a ring of checkpoints spaced >= granularity apart, deep enough
	// to cover SlowWindow.
	cp   []sloCheckpoint
	next int
	full bool
}

// SLOStatus is one series' derived view (GET /slo).
type SLOStatus struct {
	Kind      string  `json:"kind"`
	Name      string  `json:"name"`
	Total     uint64  `json:"total"`
	Bad       uint64  `json:"bad"`
	Errors    uint64  `json:"errors"`
	Slow      uint64  `json:"slow"`
	Objective float64 `json:"objective"`
	// GoodFraction is lifetime; the burns are windowed.
	GoodFraction float64       `json:"good_fraction"`
	FastBurn     float64       `json:"fast_burn"`
	SlowBurn     float64       `json:"slow_burn"`
	FastWindow   time.Duration `json:"fast_window_ns"`
	SlowWindow   time.Duration `json:"slow_window_ns"`
	LatencyMS    float64       `json:"latency_target_ms"`
}

// SLOTracker derives burn rates for a set of tenant/agent series. Record
// is mutex-protected but cold relative to the data plane (one call per
// ask / per step), and Status is read-only over a snapshot.
type SLOTracker struct {
	cfg  SLOConfig
	gran time.Duration
	deep int
	now  func() time.Time

	mu     sync.Mutex
	series map[string]*sloSeries
}

// NewSLOTracker creates a tracker.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.WithDefaults()
	// Checkpoint granularity: fine enough that the fast window sees ~10
	// points, bounded below so a tiny experiment window cannot turn every
	// Record into a checkpoint append.
	gran := cfg.FastWindow / 10
	if gran < 10*time.Millisecond {
		gran = 10 * time.Millisecond
	}
	deep := int(cfg.SlowWindow/gran) + 2
	return &SLOTracker{cfg: cfg, gran: gran, deep: deep, now: time.Now, series: map[string]*sloSeries{}}
}

// Config returns the tracker's resolved configuration.
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}.WithDefaults()
	}
	return t.cfg
}

// Record folds one observation into the (kind, name) series: an error is
// always bad, and a success slower than LatencyTarget is bad too. Safe on
// nil (disabled tracker).
func (t *SLOTracker) Record(kind, name string, dur time.Duration, isErr bool) {
	if t == nil || name == "" {
		return
	}
	slow := dur > t.cfg.LatencyTarget
	bad := isErr || slow
	now := t.now()
	t.mu.Lock()
	key := kind + "\x00" + name
	s := t.series[key]
	if s == nil {
		s = &sloSeries{kind: kind, name: name, cp: make([]sloCheckpoint, 0, t.deep)}
		t.series[key] = s
	}
	s.total++
	if bad {
		s.bad++
	}
	if isErr {
		s.errs++
	}
	if slow {
		s.slow++
	}
	// Coalesce checkpoints to one per granularity interval.
	var last time.Time
	if n := s.len(); n > 0 {
		last = s.at(n - 1).t
	}
	if now.Sub(last) >= t.gran {
		s.push(sloCheckpoint{t: now, total: s.total, bad: s.bad}, t.deep)
	}
	t.mu.Unlock()
}

func (s *sloSeries) len() int { return len(s.cp) }

// at indexes checkpoints oldest-first.
func (s *sloSeries) at(i int) sloCheckpoint {
	if !s.full {
		return s.cp[i]
	}
	return s.cp[(s.next+i)%len(s.cp)]
}

func (s *sloSeries) push(cp sloCheckpoint, deep int) {
	if !s.full && len(s.cp) < deep {
		s.cp = append(s.cp, cp)
		if len(s.cp) == deep {
			s.full = true
		}
		return
	}
	s.cp[s.next] = cp
	s.next = (s.next + 1) % len(s.cp)
}

// burn computes the burn rate over the window ending at now: the bad
// fraction of observations recorded within the window, divided by the
// error budget (1 - objective). A window with no observations burns 0.
func (t *SLOTracker) burn(s *sloSeries, now time.Time, window time.Duration) float64 {
	cutoff := now.Add(-window)
	// Baseline = the newest checkpoint at or before the window start; if
	// the series is younger than the window, burn is over its whole life.
	var base sloCheckpoint
	for i := 0; i < s.len(); i++ {
		cp := s.at(i)
		if cp.t.After(cutoff) {
			break
		}
		base = cp
	}
	dTotal := s.total - base.total
	dBad := s.bad - base.bad
	if dTotal == 0 {
		return 0
	}
	return (float64(dBad) / float64(dTotal)) / (1 - t.cfg.Objective)
}

// Status derives every series' burn view, sorted by kind then name. Safe
// on nil (empty).
func (t *SLOTracker) Status() []SLOStatus {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOStatus, 0, len(t.series))
	for _, s := range t.series {
		st := SLOStatus{
			Kind: s.kind, Name: s.name,
			Total: s.total, Bad: s.bad, Errors: s.errs, Slow: s.slow,
			Objective:  t.cfg.Objective,
			FastBurn:   t.burn(s, now, t.cfg.FastWindow),
			SlowBurn:   t.burn(s, now, t.cfg.SlowWindow),
			FastWindow: t.cfg.FastWindow, SlowWindow: t.cfg.SlowWindow,
			LatencyMS: float64(t.cfg.LatencyTarget) / float64(time.Millisecond),
		}
		if s.total > 0 {
			st.GoodFraction = float64(s.total-s.bad) / float64(s.total)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ---- registry exposition ----

// sloMetric exports a tracker's burn rates as labeled gauge samples:
// blueprint_slo_burn_rate{kind="tenant",name="free",window="fast"}. It is
// the registry's first labeled instrument, which is why EscapeLabel exists.
type sloMetric struct {
	name string
	help string
	mu   sync.Mutex
	t    *SLOTracker
}

func (m *sloMetric) metricName() string { return m.name }
func (m *sloMetric) metricHelp() string { return m.help }
func (m *sloMetric) metricType() string { return "gauge" }
func (m *sloMetric) sample(emit func(string, float64)) {
	m.mu.Lock()
	t := m.t
	m.mu.Unlock()
	if t == nil {
		return
	}
	for _, st := range t.Status() {
		base := `{kind="` + EscapeLabel(st.Kind) + `",name="` + EscapeLabel(st.Name) + `",window="`
		emit(base+`fast"}`, st.FastBurn)
		emit(base+`slow"}`, st.SlowBurn)
	}
}

// SLOFunc registers (or re-points, like the func-backed bridges) the
// tracker behind a labeled burn-rate gauge.
func (r *Registry) SLOFunc(name, help string, t *SLOTracker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.items[name]; ok {
		if sm, ok := m.(*sloMetric); ok {
			sm.mu.Lock()
			sm.t = t
			sm.mu.Unlock()
		}
		return
	}
	r.items[name] = &sloMetric{name: name, help: help, t: t}
	r.order = append(r.order, name)
}
