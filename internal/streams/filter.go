package streams

// Filter selects messages for a subscription. The zero value matches every
// message. Filters implement the inclusion/exclusion rules the paper assigns
// to agents monitoring streams (§V-B: "defined by inclusion and exclusion
// rules").
type Filter struct {
	// Streams restricts matching to the named streams (empty = any stream).
	Streams []string
	// Session restricts matching to one session scope. A message matches if
	// its session equals Session or is a sub-scope of it ("session:1:profile"
	// matches filter "session:1", mirroring §V-E scoping).
	Session string
	// IncludeTags requires at least one of these tags (empty = any tags).
	IncludeTags []string
	// ExcludeTags rejects messages carrying any of these tags.
	ExcludeTags []string
	// Kinds restricts matching to the listed kinds (empty = any kind).
	Kinds []Kind
	// Senders restricts matching to the listed senders (empty = any sender).
	Senders []string
	// ExcludeSenders rejects messages from the listed senders; agents use it
	// to ignore their own output streams.
	ExcludeSenders []string
}

// Matches reports whether msg passes the filter.
func (f *Filter) Matches(msg *Message) bool {
	if len(f.Streams) > 0 && !containsString(f.Streams, msg.Stream) {
		return false
	}
	if f.Session != "" && !scopeContains(f.Session, msg.Session) {
		return false
	}
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if msg.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Senders) > 0 && !containsString(f.Senders, msg.Sender) {
		return false
	}
	if len(f.ExcludeSenders) > 0 && containsString(f.ExcludeSenders, msg.Sender) {
		return false
	}
	for _, t := range f.ExcludeTags {
		if msg.HasTag(t) {
			return false
		}
	}
	if len(f.IncludeTags) > 0 {
		ok := false
		for _, t := range f.IncludeTags {
			if msg.HasTag(t) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// scopeContains reports whether scope child equals parent or is nested under
// it using ":"-separated hierarchical scopes (e.g. "session:1:profile" is
// contained in "session:1").
func scopeContains(parent, child string) bool {
	if parent == child {
		return true
	}
	if len(child) > len(parent) && child[:len(parent)] == parent && child[len(parent)] == ':' {
		return true
	}
	return false
}
