package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/coordinator"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

// AblationScheduler (A5) measures the coordinator's concurrent DAG
// scheduler on a fan-out task plan: N independent equal-latency steps plus a
// join step consuming all their outputs. The sequential baseline
// (MaxParallel=1, the pre-scheduler behaviour) pays N*latency for the
// fan-out wave; the concurrent scheduler dispatches the whole wave at once
// and should pay ~1*latency. A second series executes one plan per session
// across several sessions concurrently — the multi-session throughput the
// event-driven pipeline unlocks.
func AblationScheduler(seed int64) (*Table, error) {
	fan, stepLat, sessions := 6, 20*time.Millisecond, 4
	if Short {
		fan, stepLat, sessions = 4, 10*time.Millisecond, 2
	}

	store := streams.NewStore()
	defer store.Close()
	reg := registry.NewAgentRegistry()
	for i := 1; i <= fan; i++ {
		if err := reg.Register(registry.AgentSpec{
			Name:        fmt.Sprintf("FAN_%d", i),
			Description: fmt.Sprintf("independent fan-out worker %d", i),
			Inputs:      []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
			Outputs:     []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:         registry.QoSProfile{CostPerCall: 0.001, Latency: stepLat, Accuracy: 1.0},
		}); err != nil {
			return nil, err
		}
	}
	join := registry.AgentSpec{
		Name:        "JOIN",
		Description: "joins the fan-out outputs",
		Outputs:     []registry.ParamSpec{{Name: "JOINED", Type: "text"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.001, Accuracy: 1.0},
	}
	for i := 1; i <= fan; i++ {
		join.Inputs = append(join.Inputs, registry.ParamSpec{Name: fmt.Sprintf("IN_%d", i), Type: "text"})
	}
	if err := reg.Register(join); err != nil {
		return nil, err
	}

	// attach starts the fan and join instances in one session.
	attach := func(session string) ([]*agent.Instance, error) {
		var insts []*agent.Instance
		for i := 1; i <= fan; i++ {
			spec, err := reg.Get(fmt.Sprintf("FAN_%d", i))
			if err != nil {
				return insts, err
			}
			inst, err := agent.Attach(store, session, agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
				select {
				case <-time.After(stepLat):
				case <-ctx.Done():
					return agent.Outputs{}, ctx.Err()
				}
				return agent.Outputs{Values: map[string]any{"OUT": "done"}}, nil
			}), agent.Options{DisableListen: true, Workers: fan})
			if err != nil {
				return insts, err
			}
			insts = append(insts, inst)
		}
		inst, err := agent.Attach(store, session, agent.New(join, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			return agent.Outputs{Values: map[string]any{"JOINED": fmt.Sprintf("%d inputs", len(inv.Inputs))}}, nil
		}), agent.Options{DisableListen: true})
		if err != nil {
			return insts, err
		}
		return append(insts, inst), nil
	}

	// Fan-out plan: s1..sN independent, join depends on all of them.
	plan := &planner.Plan{ID: "a5-fan", Utterance: "fan out", Intent: "rank"}
	joinBindings := map[string]planner.Binding{}
	for i := 1; i <= fan; i++ {
		id := fmt.Sprintf("s%d", i)
		plan.Steps = append(plan.Steps, planner.Step{
			ID: id, Agent: fmt.Sprintf("FAN_%d", i), Task: "fan out",
			Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}},
		})
		joinBindings[fmt.Sprintf("IN_%d", i)] = planner.Binding{FromStep: id, FromParam: "OUT"}
	}
	plan.Steps = append(plan.Steps, planner.Step{ID: "join", Agent: "JOIN", Task: "join", Bindings: joinBindings})
	waves, err := plan.Waves()
	if err != nil {
		return nil, err
	}

	runPlan := func(session string, maxParallel int) (time.Duration, error) {
		insts, err := attach(session)
		defer func() {
			for _, in := range insts {
				in.Stop()
			}
		}()
		if err != nil {
			return 0, err
		}
		c := coordinator.New(store, reg, nil, nil, coordinator.Options{MaxParallel: maxParallel})
		start := time.Now()
		res, err := c.ExecutePlan(session, plan, nil)
		if err != nil {
			return 0, err
		}
		if len(res.Steps) != fan+1 {
			return 0, fmt.Errorf("A5: %d/%d steps completed", len(res.Steps), fan+1)
		}
		return time.Since(start), nil
	}

	seq, err := runPlan("session:a5-seq", 1)
	if err != nil {
		return nil, err
	}
	par, err := runPlan("session:a5-par", 0)
	if err != nil {
		return nil, err
	}

	t := &Table{ID: "A5", Title: "Concurrent DAG scheduler: fan-out plan wall-clock and multi-session throughput"}
	t.Rows = append(t.Rows, Row{Series: "sequential", Metrics: []Metric{
		{Name: "steps", Value: fmt.Sprintf("%d+join", fan)},
		{Name: "step_latency", Value: ms(stepLat)},
		{Name: "wall", Value: ms(seq)},
	}})
	t.Rows = append(t.Rows, Row{Series: "parallel", Metrics: []Metric{
		{Name: "steps", Value: fmt.Sprintf("%d+join", fan)},
		{Name: "waves", Value: fmt.Sprint(len(waves))},
		{Name: "wall", Value: ms(par)},
		{Name: "speedup", Value: fmt.Sprintf("%.2fx", seq.Seconds()/par.Seconds())},
	}})

	// Multi-session throughput: one plan per session, serial vs concurrent.
	c := coordinator.New(store, reg, nil, nil, coordinator.Options{})
	var insts []*agent.Instance
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("session:a5-multi-%d", i)
		in, err := attach(ids[i])
		insts = append(insts, in...)
		if err != nil {
			for _, inst := range insts {
				inst.Stop()
			}
			return nil, err
		}
	}
	defer func() {
		for _, inst := range insts {
			inst.Stop()
		}
	}()

	start := time.Now()
	for _, id := range ids {
		if _, err := c.ExecutePlan(id, plan, nil); err != nil {
			return nil, err
		}
	}
	serial := time.Since(start)

	start = time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for _, id := range ids {
		wg.Add(1)
		go func(session string) {
			defer wg.Done()
			if _, err := c.ExecutePlan(session, plan, nil); err != nil {
				errs <- err
			}
		}(id)
	}
	wg.Wait()
	concurrent := time.Since(start)
	close(errs)
	for err := range errs {
		return nil, err
	}

	t.Rows = append(t.Rows, Row{Series: "multi-session serial", Metrics: []Metric{
		{Name: "sessions", Value: fmt.Sprint(sessions)},
		{Name: "wall", Value: ms(serial)},
		{Name: "plans/s", Value: fmt.Sprintf("%.1f", float64(sessions)/serial.Seconds())},
	}})
	t.Rows = append(t.Rows, Row{Series: "multi-session concurrent", Metrics: []Metric{
		{Name: "sessions", Value: fmt.Sprint(sessions)},
		{Name: "wall", Value: ms(concurrent)},
		{Name: "plans/s", Value: fmt.Sprintf("%.1f", float64(sessions)/concurrent.Seconds())},
		{Name: "speedup", Value: fmt.Sprintf("%.2fx", serial.Seconds()/concurrent.Seconds())},
	}})
	t.Notes = append(t.Notes,
		fmt.Sprintf("fan-out wave of %d dispatched concurrently: %d waves instead of %d sequential steps", fan, len(waves), fan+1),
		"sequential baseline is the same scheduler bounded to MaxParallel=1; Session.Ask waits are subscription-driven (no sleep polling)")
	return t, nil
}
