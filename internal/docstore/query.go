package docstore

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates filter operators.
type Op int

const (
	// Eq matches equal values (numbers unified across int/float).
	Eq Op = iota
	// Ne matches unequal values.
	Ne
	// Gt, Gte, Lt, Lte compare numerically or lexicographically.
	Gt
	Gte
	Lt
	Lte
	// Contains matches when a string field contains the operand substring
	// (case-insensitive), or when an array field contains the operand.
	Contains
	// Exists matches when the field is present (operand ignored).
	Exists
	// In matches when the field equals any element of the operand slice.
	In
)

// Filter is one field predicate.
type Filter struct {
	Field string
	Op    Op
	Value any
}

// Query describes a find operation. Zero value returns everything in
// insertion order.
type Query struct {
	Filters []Filter // ANDed together
	SortBy  string   // optional field path
	Desc    bool
	Limit   int // 0 = no limit
	Offset  int
	Fields  []string // projection; empty = whole document
}

// Hit pairs a document id with its content.
type Hit struct {
	ID  string
	Doc Doc
}

// Find runs the query against a collection. An equality filter over an
// indexed field is served by the index; remaining filters are applied by
// scanning the candidates.
func (s *Store) Find(coll string, q Query) ([]Hit, error) {
	c, err := s.coll(coll)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()

	// Candidate selection: first Eq/In filter over an indexed field.
	candidates := c.order
	usedIndex := -1
	for fi, f := range q.Filters {
		ix, ok := c.indexes[f.Field]
		if !ok {
			continue
		}
		switch f.Op {
		case Eq:
			candidates = append([]string(nil), ix[valueKey(f.Value)]...)
			usedIndex = fi
		case In:
			vals, ok := asSlice(f.Value)
			if !ok {
				continue
			}
			seen := map[string]bool{}
			var ids []string
			for _, v := range vals {
				for _, id := range ix[valueKey(v)] {
					if !seen[id] {
						seen[id] = true
						ids = append(ids, id)
					}
				}
			}
			candidates = ids
			usedIndex = fi
		}
		if usedIndex >= 0 {
			break
		}
	}

	var hits []Hit
	for _, id := range candidates {
		d, ok := c.docs[id]
		if !ok {
			continue
		}
		match := true
		for fi, f := range q.Filters {
			if fi == usedIndex {
				continue
			}
			if !matchFilter(d, f) {
				match = false
				break
			}
		}
		if match {
			hits = append(hits, Hit{ID: id, Doc: d})
		}
	}

	if q.SortBy != "" {
		sort.SliceStable(hits, func(i, j int) bool {
			a, _ := hits[i].Doc.Get(q.SortBy)
			b, _ := hits[j].Doc.Get(q.SortBy)
			cmp := compareAny(a, b)
			if q.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
	}
	if q.Offset > 0 {
		if q.Offset >= len(hits) {
			hits = nil
		} else {
			hits = hits[q.Offset:]
		}
	}
	if q.Limit > 0 && q.Limit < len(hits) {
		hits = hits[:q.Limit]
	}

	// Copy out (with projection).
	out := make([]Hit, len(hits))
	for i, h := range hits {
		if len(q.Fields) == 0 {
			out[i] = Hit{ID: h.ID, Doc: h.Doc.Clone()}
			continue
		}
		proj := Doc{}
		for _, f := range q.Fields {
			if v, ok := h.Doc.Get(f); ok {
				proj[f] = cloneValue(v)
			}
		}
		out[i] = Hit{ID: h.ID, Doc: proj}
	}
	return out, nil
}

// Count returns the number of documents matching the query's filters.
func (s *Store) Count(coll string, filters ...Filter) (int, error) {
	hits, err := s.Find(coll, Query{Filters: filters})
	if err != nil {
		return 0, err
	}
	return len(hits), nil
}

func matchFilter(d Doc, f Filter) bool {
	v, present := d.Get(f.Field)
	switch f.Op {
	case Exists:
		return present
	case Eq:
		return present && compareAny(v, f.Value) == 0
	case Ne:
		return present && compareAny(v, f.Value) != 0
	case Gt:
		return present && compareAny(v, f.Value) > 0
	case Gte:
		return present && compareAny(v, f.Value) >= 0
	case Lt:
		return present && compareAny(v, f.Value) < 0
	case Lte:
		return present && compareAny(v, f.Value) <= 0
	case Contains:
		if !present {
			return false
		}
		switch x := v.(type) {
		case string:
			return strings.Contains(strings.ToLower(x), strings.ToLower(fmt.Sprintf("%v", f.Value)))
		case []any:
			for _, item := range x {
				if compareAny(item, f.Value) == 0 {
					return true
				}
			}
			return false
		default:
			return false
		}
	case In:
		if !present {
			return false
		}
		vals, ok := asSlice(f.Value)
		if !ok {
			return false
		}
		for _, item := range vals {
			if compareAny(v, item) == 0 {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func asSlice(v any) ([]any, bool) {
	switch x := v.(type) {
	case []any:
		return x, true
	case []string:
		out := make([]any, len(x))
		for i, s := range x {
			out[i] = s
		}
		return out, true
	case []int:
		out := make([]any, len(x))
		for i, n := range x {
			out[i] = n
		}
		return out, true
	default:
		return nil, false
	}
}

// compareAny imposes a pragmatic total order over JSON-ish values: nils
// first, numbers (unified), then strings, bools, and everything else by
// string rendering.
func compareAny(a, b any) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	as, aok2 := a.(string)
	bs, bok2 := b.(string)
	if aok2 && bok2 {
		return strings.Compare(as, bs)
	}
	ab, aok3 := a.(bool)
	bb, bok3 := b.(bool)
	if aok3 && bok3 {
		switch {
		case !ab && bb:
			return -1
		case ab && !bb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(fmt.Sprintf("%v", a), fmt.Sprintf("%v", b))
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case float32:
		return float64(x), true
	default:
		return 0, false
	}
}
