package nlq

import (
	"strings"
	"testing"

	"blueprint/internal/relational"
)

// jobsTarget mirrors the hr.jobs table.
func jobsTarget() Target {
	return Target{
		Table:          "jobs",
		Columns:        []string{"id", "title", "city", "company_id", "salary", "remote"},
		NumericColumns: []string{"id", "salary", "company_id"},
		TextColumns:    []string{"title", "city"},
		ValueHints: map[string][]string{
			"city":  {"San Francisco", "Oakland", "San Jose", "Berkeley", "Palo Alto", "New York", "Seattle"},
			"title": {"Data Scientist", "Senior Data Scientist", "ML Engineer", "Data Analyst", "Software Engineer"},
		},
		DefaultTextColumn: "title",
	}
}

// execDB provides end-to-end validation: compiled SQL must actually run.
func execDB(t *testing.T) *relational.DB {
	t.Helper()
	db := relational.NewDB()
	stmts := []string{
		`CREATE TABLE jobs (id INT, title TEXT, city TEXT, company_id INT, salary INT, remote BOOL)`,
		`INSERT INTO jobs VALUES
			(1, 'Data Scientist', 'San Francisco', 1, 180000, FALSE),
			(2, 'Senior Data Scientist', 'Oakland', 1, 210000, TRUE),
			(3, 'ML Engineer', 'San Jose', 2, 190000, FALSE),
			(4, 'Data Analyst', 'New York', 3, 120000, FALSE),
			(5, 'Data Scientist', 'Palo Alto', 2, 185000, TRUE)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func compileAndRun(t *testing.T, query string) (*relational.Result, Compiled) {
	t.Helper()
	c, err := Compile(query, jobsTarget())
	if err != nil {
		t.Fatalf("Compile(%q): %v", query, err)
	}
	db := execDB(t)
	res, err := db.Query(c.SQL)
	if err != nil {
		t.Fatalf("generated SQL %q failed: %v", c.SQL, err)
	}
	return res, c
}

func TestCountQuery(t *testing.T) {
	res, c := compileAndRun(t, "How many jobs are in San Francisco?")
	if !strings.Contains(c.SQL, "COUNT(*)") || !strings.Contains(c.SQL, "city = 'San Francisco'") {
		t.Fatalf("sql = %q", c.SQL)
	}
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestAverageWithGroupBy(t *testing.T) {
	res, c := compileAndRun(t, "average salary per city")
	if !strings.Contains(c.SQL, "AVG(salary)") || !strings.Contains(c.SQL, "GROUP BY city") {
		t.Fatalf("sql = %q", c.SQL)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
}

func TestNumericComparison(t *testing.T) {
	res, c := compileAndRun(t, "jobs with salary over 185000")
	if !strings.Contains(c.SQL, "salary > 185000") {
		t.Fatalf("sql = %q", c.SQL)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestNumericComparisonKSuffix(t *testing.T) {
	_, c := compileAndRun(t, "positions with salary at least 190k")
	if !strings.Contains(c.SQL, "salary >= 190000") {
		t.Fatalf("sql = %q", c.SQL)
	}
}

func TestGroundedTitleAndCity(t *testing.T) {
	res, c := compileAndRun(t, "data scientist roles in Oakland")
	if !strings.Contains(c.SQL, "title = 'Data Scientist'") && !strings.Contains(c.SQL, "title = 'Senior Data Scientist'") {
		t.Fatalf("sql = %q", c.SQL)
	}
	if !strings.Contains(c.SQL, "city = 'Oakland'") {
		t.Fatalf("sql = %q", c.SQL)
	}
	_ = res
}

func TestLongestHintWins(t *testing.T) {
	_, c := compileAndRun(t, "senior data scientist openings")
	if !strings.Contains(c.SQL, "title = 'Senior Data Scientist'") {
		t.Fatalf("sql = %q (longest grounding should win)", c.SQL)
	}
}

func TestTopNOrdering(t *testing.T) {
	res, c := compileAndRun(t, "top 2 jobs by salary")
	if !strings.Contains(c.SQL, "ORDER BY salary DESC") || !strings.Contains(c.SQL, "LIMIT 2") {
		t.Fatalf("sql = %q", c.SQL)
	}
	if len(res.Rows) != 2 || res.Rows[0][4].I != 210000 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSortedBy(t *testing.T) {
	_, c := compileAndRun(t, "all jobs sorted by salary")
	if !strings.Contains(c.SQL, "ORDER BY salary") {
		t.Fatalf("sql = %q", c.SQL)
	}
}

func TestQuotedPhraseLike(t *testing.T) {
	res, c := compileAndRun(t, "find roles mentioning 'Engineer'")
	if !strings.Contains(c.SQL, "title LIKE '%Engineer%'") {
		t.Fatalf("sql = %q", c.SQL)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestConfidenceGrowsWithGrounding(t *testing.T) {
	low, err := Compile("blargh", jobsTarget())
	if err != nil {
		t.Fatal(err)
	}
	high, err := Compile("how many data scientist jobs in San Francisco with salary over 100000", jobsTarget())
	if err != nil {
		t.Fatal(err)
	}
	if high.Confidence <= low.Confidence {
		t.Fatalf("confidence: high=%v low=%v", high.Confidence, low.Confidence)
	}
	if len(high.Explanation) < 3 {
		t.Fatalf("explanation = %v", high.Explanation)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("anything", Target{}); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestEscapeInjection(t *testing.T) {
	tgt := jobsTarget()
	tgt.ValueHints["city"] = append(tgt.ValueHints["city"], "O'Brien Town")
	c, err := Compile("jobs in o'brien town", tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.SQL, "O''Brien Town") {
		t.Fatalf("sql = %q", c.SQL)
	}
	// Must still parse.
	db := execDB(t)
	if _, err := db.Query(c.SQL); err != nil {
		t.Fatalf("escaped SQL failed: %v", err)
	}
}

func TestQ2NL(t *testing.T) {
	cases := []struct{ op, arg, want string }{
		{"cities_in_region", "sf bay area", "list the cities in the sf bay area"},
		{"related_titles", "data scientist", "list the titles related to data scientist"},
		{"skills_for_title", "ml engineer", "list the skills for a ml engineer"},
		{"companies", "biotech", "list companies for biotech"},
	}
	for _, c := range cases {
		if got := Q2NL(c.op, c.arg); got != c.want {
			t.Errorf("Q2NL(%q,%q) = %q, want %q", c.op, c.arg, got, c.want)
		}
	}
}

func TestNumberParsingHelpers(t *testing.T) {
	if n, ok := firstNumberAfter(" the value 42 here"); !ok || n != "42" {
		t.Fatalf("firstNumberAfter = %v %v", n, ok)
	}
	if n, ok := firstNumberAfter("salary of $180,000 annually"); !ok || n != "180000" {
		t.Fatalf("comma number = %v %v", n, ok)
	}
	if _, ok := firstNumberAfter("no numbers here at all"); ok {
		t.Fatal("matched non-number")
	}
	if got := quotedPhrases("say 'a' and 'b c'"); len(got) != 2 || got[1] != "b c" {
		t.Fatalf("quoted = %v", got)
	}
}
