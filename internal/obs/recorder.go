package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Slow-ask flight recorder. Tail latency is only explainable while the
// evidence is still resident: by the time an operator queries /trace the
// span ring may have wrapped and the events scrolled away. The recorder
// fixes that by capturing, at ask completion, a self-contained exemplar —
// the ask's full span tree, the event slice that overlapped it, and the
// plan's cost breakdown — for every ask that exceeded the latency
// threshold, errored, or finished degraded/shed. Exemplars live in a
// bounded ring served by GET /slow and GET /slow/{n} (bpctl slow renders
// them), so "why was ask X slow" is one artifact instead of a join across
// three endpoints.

// Ask outcomes as classified by the capture site.
const (
	OutcomeSlow     = "slow"
	OutcomeError    = "error"
	OutcomeDegraded = "degraded"
	OutcomeShed     = "shed"
)

// CostBreakdown summarizes where an ask's budget went — filled from the
// coordinator result by the capture site (obs cannot import the budget
// package; it is the dependency floor of the telemetry plane).
type CostBreakdown struct {
	PlanID        string        `json:"plan_id,omitempty"`
	Cost          float64       `json:"cost"`
	Steps         int           `json:"steps"`
	CachedSteps   int           `json:"cached_steps"`
	DegradedSteps int           `json:"degraded_steps"`
	Retries       int           `json:"retries"`
	Replans       int           `json:"replans"`
	Elapsed       time.Duration `json:"elapsed_ns"`
}

// Exemplar is one captured ask: identity, outcome, and the full evidence.
type Exemplar struct {
	// ID is the capture sequence number (GET /slow/{n} addresses it).
	ID      uint64    `json:"id"`
	Trace   string    `json:"trace,omitempty"`
	Session string    `json:"session"`
	Tenant  string    `json:"tenant,omitempty"`
	Text    string    `json:"text"`
	Start   time.Time `json:"start"`
	// Dur is wall time from admission attempt to answer (queue wait
	// included for governed asks).
	Dur     time.Duration `json:"duration_ns"`
	Outcome string        `json:"outcome"`
	Err     string        `json:"error,omitempty"`
	// SpanCount/EventCount are pre-truncation totals; Spans/Events are
	// capped copies (MaxSpans/MaxEvents) so one pathological ask cannot
	// blow the recorder's memory bound.
	SpanCount  int            `json:"span_count"`
	EventCount int            `json:"event_count"`
	Spans      []SpanData     `json:"spans,omitempty"`
	Events     []Event        `json:"events,omitempty"`
	Breakdown  *CostBreakdown `json:"breakdown,omitempty"`
}

// ExemplarSummary is the list view (GET /slow, bpctl slow).
type ExemplarSummary struct {
	ID      uint64        `json:"id"`
	Trace   string        `json:"trace,omitempty"`
	Session string        `json:"session"`
	Tenant  string        `json:"tenant,omitempty"`
	Text    string        `json:"text"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"duration_ns"`
	Outcome string        `json:"outcome"`
	Spans   int           `json:"spans"`
	Events  int           `json:"events"`
}

// Recorder bounds.
const (
	DefaultRecorderCapacity = 64
	// DefaultSlowThreshold is the capture threshold when the embedder set
	// none; blueprintd and Config override it.
	DefaultSlowThreshold = 800 * time.Millisecond
	// MaxExemplarSpans / MaxExemplarEvents cap one exemplar's evidence.
	MaxExemplarSpans  = 256
	MaxExemplarEvents = 128
)

// SlowAsks is the process-global flight recorder.
var SlowAsks = NewRecorder(DefaultRecorderCapacity)

// Recorder is a bounded ring of ask exemplars. Capture is cold by
// construction (only slow/failed/degraded asks reach it); the threshold
// read on every ask is one atomic load.
type Recorder struct {
	threshold atomic.Int64 // ns; < 0 disables capture entirely
	seq       atomic.Uint64
	captures  atomic.Uint64

	mu   sync.Mutex
	ring []*Exemplar
	next int
	full bool
}

// NewRecorder creates a recorder with the default threshold.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	r := &Recorder{ring: make([]*Exemplar, 0, capacity)}
	r.threshold.Store(int64(DefaultSlowThreshold))
	return r
}

// SetThreshold sets the slow-ask latency threshold; a negative duration
// disables capture (the A12 overhead baseline uses it).
func (r *Recorder) SetThreshold(d time.Duration) { r.threshold.Store(int64(d)) }

// Threshold returns the capture threshold (< 0 when disabled).
func (r *Recorder) Threshold() time.Duration { return time.Duration(r.threshold.Load()) }

// ShouldCapture reports whether an ask with the given duration and outcome
// ("" for a plain success) belongs in the recorder.
func (r *Recorder) ShouldCapture(dur time.Duration, outcome string) bool {
	th := r.threshold.Load()
	if th < 0 {
		return false
	}
	return outcome != "" || dur >= time.Duration(th)
}

// Capture stores an exemplar, clamping its evidence to the per-exemplar
// caps, and returns its assigned ID.
func (r *Recorder) Capture(ex Exemplar) uint64 {
	ex.ID = r.seq.Add(1)
	ex.SpanCount = len(ex.Spans)
	ex.EventCount = len(ex.Events)
	if len(ex.Spans) > MaxExemplarSpans {
		ex.Spans = append([]SpanData(nil), ex.Spans[:MaxExemplarSpans]...)
	}
	if len(ex.Events) > MaxExemplarEvents {
		// Keep the tail: the events nearest the slow finish are the ones
		// that explain it.
		ex.Events = append([]Event(nil), ex.Events[len(ex.Events)-MaxExemplarEvents:]...)
	}
	r.captures.Add(1)
	r.mu.Lock()
	if cap(r.ring) > len(r.ring) && !r.full {
		r.ring = append(r.ring, &ex)
		if len(r.ring) == cap(r.ring) {
			r.full = true
		}
	} else {
		r.ring[r.next] = &ex
		r.next = (r.next + 1) % len(r.ring)
	}
	r.mu.Unlock()
	return ex.ID
}

// Captures returns the total number of captures since process start
// (monotonic even as the ring evicts).
func (r *Recorder) Captures() uint64 { return r.captures.Load() }

// Summaries lists the retained exemplars, most recent first.
func (r *Recorder) Summaries() []ExemplarSummary {
	exs := r.snapshot()
	out := make([]ExemplarSummary, len(exs))
	for i, ex := range exs {
		out[i] = ExemplarSummary{
			ID: ex.ID, Trace: ex.Trace, Session: ex.Session, Tenant: ex.Tenant,
			Text: ex.Text, Start: ex.Start, Dur: ex.Dur, Outcome: ex.Outcome,
			Spans: ex.SpanCount, Events: ex.EventCount,
		}
	}
	return out
}

// Get returns the exemplar with the given ID, if still retained.
func (r *Recorder) Get(id uint64) (*Exemplar, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ex := range r.ring {
		if ex != nil && ex.ID == id {
			return ex, true
		}
	}
	return nil, false
}

// Latest returns the most recent exemplar, if any.
func (r *Recorder) Latest() (*Exemplar, bool) {
	exs := r.snapshot()
	if len(exs) == 0 {
		return nil, false
	}
	return exs[0], true
}

// snapshot copies the retained exemplars, most recent first.
func (r *Recorder) snapshot() []*Exemplar {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Exemplar, 0, len(r.ring))
	if !r.full {
		for i := len(r.ring) - 1; i >= 0; i-- {
			out = append(out, r.ring[i])
		}
		return out
	}
	for i := 0; i < len(r.ring); i++ {
		idx := (r.next - 1 - i + 2*len(r.ring)) % len(r.ring)
		out = append(out, r.ring[idx])
	}
	return out
}

// Len returns the number of retained exemplars.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.ring)
}

// SetCapacity re-bounds the ring, dropping retained exemplars.
func (r *Recorder) SetCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	r.mu.Lock()
	r.ring = make([]*Exemplar, 0, capacity)
	r.next = 0
	r.full = false
	r.mu.Unlock()
}

// Reset drops retained exemplars, keeping capacity and threshold.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.ring = r.ring[:0]
	r.next = 0
	r.full = false
	r.mu.Unlock()
}
