//go:build race

package experiments

// raceEnabled reports that this build runs under the race detector, whose
// instrumentation skews wall-clock ratios; perf floors are not enforced.
const raceEnabled = true
