package vectors

import (
	"fmt"
	"sort"
	"sync"

	"blueprint/internal/topk"
)

// Hit is a single vector-search result.
type Hit struct {
	ID    string
	Score float64
}

// Index is a thread-safe vector index supporting exact (flat) k-NN search.
// Registry sizes in the blueprint (hundreds to low tens of thousands of
// agents/sources) are comfortably served by exact search; an inverted-file
// accelerated variant is provided by IVFIndex for larger registries.
type Index struct {
	mu   sync.RWMutex
	dim  int
	ids  []string
	vecs [][]float64
	pos  map[string]int
}

// NewIndex returns an empty index for vectors of the given dimension.
func NewIndex(dim int) *Index {
	if dim <= 0 {
		dim = DefaultDim
	}
	return &Index{dim: dim, pos: make(map[string]int)}
}

// Len reports the number of indexed vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.ids)
}

// Upsert adds or replaces the vector stored under id.
func (ix *Index) Upsert(id string, vec []float64) error {
	if len(vec) != ix.dim {
		return fmt.Errorf("vectors: dimension mismatch: got %d, want %d", len(vec), ix.dim)
	}
	cp := make([]float64, len(vec))
	copy(cp, vec)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if p, ok := ix.pos[id]; ok {
		ix.vecs[p] = cp
		return nil
	}
	ix.pos[id] = len(ix.ids)
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, cp)
	return nil
}

// Delete removes id from the index. Deleting an absent id is a no-op.
func (ix *Index) Delete(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	p, ok := ix.pos[id]
	if !ok {
		return
	}
	last := len(ix.ids) - 1
	ix.ids[p] = ix.ids[last]
	ix.vecs[p] = ix.vecs[last]
	ix.pos[ix.ids[p]] = p
	ix.ids = ix.ids[:last]
	ix.vecs = ix.vecs[:last]
	delete(ix.pos, id)
}

// hitBefore reports whether a ranks before b in result order: higher
// score first, ties broken by ascending id for determinism.
func hitBefore(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// Search returns the k nearest vectors to query by cosine similarity,
// sorted by descending score with ties broken by id for determinism.
//
// Selection is a bounded heap of size k (internal/topk) rather than
// scoring all N vectors into a fresh slice and sorting it: the scan keeps
// only the k best hits seen so far, so a search allocates O(k) instead of
// O(N) and the final sort is over k elements. For k >= N the heap
// degenerates into the full set and the behaviour is identical.
func (ix *Index) Search(query []float64, k int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if k <= 0 || len(ix.ids) == 0 {
		return nil
	}
	if k > len(ix.ids) {
		k = len(ix.ids)
	}
	heap := topk.New(k, hitBefore)
	for i, id := range ix.ids {
		heap.Offer(Hit{ID: id, Score: Cosine(query, ix.vecs[i])})
	}
	hits := heap.Items()
	sortHits(hits)
	return hits
}

func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
}

// IVFIndex is an inverted-file (coarse-quantized) index: vectors are assigned
// to the nearest of nlist centroids chosen by a deterministic k-means++ style
// seeding followed by Lloyd iterations; search probes the nprobe nearest
// lists. It trades a little recall for sublinear scan cost and is used by the
// Fig. 5 bench to contrast exact and approximate registry discovery.
type IVFIndex struct {
	mu        sync.RWMutex
	dim       int
	nlist     int
	nprobe    int
	centroids [][]float64
	lists     [][]int // centroid -> positions
	ids       []string
	vecs      [][]float64
	pos       map[string]int
	trained   bool
}

// NewIVFIndex creates an IVF index with nlist coarse cells probing nprobe
// cells at query time.
func NewIVFIndex(dim, nlist, nprobe int) *IVFIndex {
	if dim <= 0 {
		dim = DefaultDim
	}
	if nlist <= 0 {
		nlist = 16
	}
	if nprobe <= 0 {
		nprobe = 4
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	return &IVFIndex{dim: dim, nlist: nlist, nprobe: nprobe, pos: make(map[string]int)}
}

// Add inserts a vector; Train must be called after all adds (re-adding after
// training triggers list reassignment for the new vector only).
func (ix *IVFIndex) Add(id string, vec []float64) error {
	if len(vec) != ix.dim {
		return fmt.Errorf("vectors: dimension mismatch: got %d, want %d", len(vec), ix.dim)
	}
	cp := make([]float64, len(vec))
	copy(cp, vec)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.pos[id]; ok {
		return fmt.Errorf("vectors: duplicate id %q", id)
	}
	p := len(ix.ids)
	ix.pos[id] = p
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, cp)
	if ix.trained {
		c := ix.nearestCentroid(cp)
		ix.lists[c] = append(ix.lists[c], p)
	}
	return nil
}

// Len reports the number of indexed vectors.
func (ix *IVFIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.ids)
}

// Train builds the coarse quantizer over the currently added vectors.
func (ix *IVFIndex) Train() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := len(ix.vecs)
	if n == 0 {
		ix.trained = true
		ix.lists = make([][]int, ix.nlist)
		ix.centroids = make([][]float64, ix.nlist)
		for i := range ix.centroids {
			ix.centroids[i] = make([]float64, ix.dim)
		}
		return
	}
	k := ix.nlist
	if k > n {
		k = n
	}
	// Deterministic seeding: evenly spaced samples.
	ix.centroids = make([][]float64, 0, k)
	for i := 0; i < k; i++ {
		src := ix.vecs[(i*n)/k]
		c := make([]float64, ix.dim)
		copy(c, src)
		ix.centroids = append(ix.centroids, c)
	}
	assign := make([]int, n)
	for iter := 0; iter < 8; iter++ {
		changed := false
		for i, v := range ix.vecs {
			c := ix.nearestCentroid(v)
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		sums := make([][]float64, len(ix.centroids))
		counts := make([]int, len(ix.centroids))
		for i := range sums {
			sums[i] = make([]float64, ix.dim)
		}
		for i, v := range ix.vecs {
			c := assign[i]
			counts[c]++
			for j := range v {
				sums[c][j] += v[j]
			}
		}
		for c := range ix.centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range sums[c] {
				sums[c][j] /= float64(counts[c])
			}
			ix.centroids[c] = Normalize(sums[c])
		}
		if !changed && iter > 0 {
			break
		}
	}
	ix.lists = make([][]int, len(ix.centroids))
	for i := range ix.vecs {
		ix.lists[assign[i]] = append(ix.lists[assign[i]], i)
	}
	ix.trained = true
}

func (ix *IVFIndex) nearestCentroid(v []float64) int {
	best, bestScore := 0, -2.0
	for c, cent := range ix.centroids {
		s := Cosine(v, cent)
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Search probes the nprobe nearest lists and returns the top-k hits.
// Searching an untrained index returns nil.
func (ix *IVFIndex) Search(query []float64, k int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.trained || k <= 0 || len(ix.ids) == 0 {
		return nil
	}
	type cs struct {
		c     int
		score float64
	}
	order := make([]cs, 0, len(ix.centroids))
	for c, cent := range ix.centroids {
		order = append(order, cs{c, Cosine(query, cent)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].c < order[j].c
	})
	probes := ix.nprobe
	if probes > len(order) {
		probes = len(order)
	}
	var hits []Hit
	for _, o := range order[:probes] {
		for _, p := range ix.lists[o.c] {
			hits = append(hits, Hit{ID: ix.ids[p], Score: Cosine(query, ix.vecs[p])})
		}
	}
	sortHits(hits)
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}
