package relational

import (
	"fmt"
	"strings"
)

// execInsert evaluates row expressions (literals and parameters only) and
// appends them, honoring an optional explicit column list.
func (db *DB) execInsert(ins *InsertStmt, params []Value) (*Result, error) {
	t, err := db.table(ins.Table)
	if err != nil {
		return nil, err
	}
	n := 0
	e := &env{}
	for _, exprRow := range ins.Rows {
		row := make(Row, len(t.schema.Columns))
		for i := range row {
			row[i] = Null
		}
		if len(ins.Columns) > 0 {
			if len(exprRow) != len(ins.Columns) {
				return nil, fmt.Errorf("%w: %d values for %d columns", ErrArity, len(exprRow), len(ins.Columns))
			}
			for i, cn := range ins.Columns {
				ci := t.schema.ColIndex(cn)
				if ci < 0 {
					return nil, fmt.Errorf("%w: %s.%s", ErrColumnUnknown, ins.Table, cn)
				}
				v, err := eval(e, exprRow[i], params)
				if err != nil {
					return nil, err
				}
				row[ci] = v
			}
		} else {
			if len(exprRow) != len(t.schema.Columns) {
				return nil, fmt.Errorf("%w: %d values for %d columns", ErrArity, len(exprRow), len(t.schema.Columns))
			}
			for i, ex := range exprRow {
				v, err := eval(e, ex, params)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
		}
		if err := t.insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return affected(n), nil
}

// execUpdateInterp rewrites matching rows in place, maintaining indexes,
// evaluating the WHERE predicate and SET expressions through the interpreted
// evaluator. The compiled path (compile.go) mirrors this loop with
// offset-resolved closures; this version is its semantic oracle.
func (db *DB) execUpdateInterp(up *UpdateStmt, params []Value) (*Result, error) {
	t, err := db.table(up.Table)
	if err != nil {
		return nil, err
	}
	// Resolve SET targets first.
	type setTarget struct {
		col  int
		expr Expr
	}
	targets := make([]setTarget, 0, len(up.Set))
	for _, sc := range up.Set {
		ci := t.schema.ColIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrColumnUnknown, up.Table, sc.Column)
		}
		targets = append(targets, setTarget{col: ci, expr: sc.Value})
	}
	cols := make([]envCol, len(t.schema.Columns))
	baseName := strings.ToLower(up.Table)
	for i, c := range t.schema.Columns {
		cols[i] = envCol{table: baseName, name: strings.ToLower(c.Name)}
	}
	e := &env{cols: cols}

	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id := range t.rows {
		if !t.live[id] {
			continue
		}
		e.row = t.rows[id]
		if up.Where != nil {
			v, err := eval(e, up.Where, params)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		for _, tg := range targets {
			nv, err := eval(e, tg.expr, params)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(nv, t.schema.Columns[tg.col].Type)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", t.schema.Columns[tg.col].Name, err)
			}
			old := t.rows[id][tg.col]
			for _, ix := range t.indexes {
				if ix.col == tg.col {
					ix.remove(id, old)
					ix.add(id, cv)
				}
			}
			t.rows[id][tg.col] = cv
		}
		n++
	}
	return affected(n), nil
}

// execDeleteInterp tombstones matching rows and removes them from indexes,
// evaluating WHERE through the interpreted evaluator.
func (db *DB) execDeleteInterp(del *DeleteStmt, params []Value) (*Result, error) {
	t, err := db.table(del.Table)
	if err != nil {
		return nil, err
	}
	cols := make([]envCol, len(t.schema.Columns))
	baseName := strings.ToLower(del.Table)
	for i, c := range t.schema.Columns {
		cols[i] = envCol{table: baseName, name: strings.ToLower(c.Name)}
	}
	e := &env{cols: cols}

	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id := range t.rows {
		if !t.live[id] {
			continue
		}
		e.row = t.rows[id]
		if del.Where != nil {
			v, err := eval(e, del.Where, params)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		t.live[id] = false
		t.liveCnt--
		for _, ix := range t.indexes {
			ix.remove(id, t.rows[id][ix.col])
		}
		n++
	}
	return affected(n), nil
}
