package obs

import (
	"bufio"
	"context"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
	"unicode/utf8"
)

// ---- histogram ----

func TestHistogramBasics(t *testing.T) {
	h := newHistogram("h", "", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 1000) // uniform over [0, 1)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); s < 499 || s > 500 {
		t.Fatalf("sum = %f", s)
	}
	qs := h.Quantiles(0.5, 0.95, 0.99)
	// Uniform data: p50 ~0.5, p95 ~0.95 — the 2x ladder is coarse, so just
	// check each estimate lands in its bucket's range.
	if qs[0] < 0.1 || qs[0] > 1 {
		t.Fatalf("p50 = %f", qs[0])
	}
	if qs[1] < qs[0] || qs[2] < qs[1] {
		t.Fatalf("quantiles not monotone: %v", qs)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram("h", "", []float64{1, 2})
	h.Observe(1000) // +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %f, want clamp to top bound 2", got)
	}
}

// TestHistogramConcurrent hammers one histogram from N writers while a
// reader keeps taking quantiles, asserting (under -race) that the final
// count is exact and every single-call quantile set is monotone.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram("h", "", LatencyBuckets)
	const writers, perWriter = 8, 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: monotonicity must hold per call
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			qs := h.Quantiles(0.5, 0.95, 0.99)
			if qs[0] > qs[1] || qs[1] > qs[2] {
				t.Errorf("quantiles inverted under concurrency: %v", qs)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Float64() * 0.1)
			}
		}(int64(w))
	}
	for h.Count() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if h.Count() != writers*perWriter {
		t.Fatalf("count = %d, want %d", h.Count(), writers*perWriter)
	}
	qs := h.Quantiles(0.01, 0.5, 0.95, 0.99)
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("final quantiles not monotone: %v", qs)
		}
	}
}

// TestHistogramObserveZeroAllocs enforces the hot-path contract in plain
// `go test` runs, not just benchmarks: Observe allocates nothing.
func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := newHistogram("h", "", LatencyBuckets)
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.00042) }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram("bench", "", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := newHistogram("bench", "", LatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-6
		for pb.Next() {
			h.Observe(v)
			v *= 1.1
			if v > 1 {
				v = 1e-6
			}
		}
	})
}

// ---- registry + exposition ----

func TestExpositionFormatParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ops_total", "operations").Add(42)
	r.Gauge("test_workers", "busy workers").Set(3)
	r.GaugeFunc("test_entries", "entries", func() float64 { return 17 })
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.002)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	// Every line must be a comment or `name[{labels}] value` with a
	// parseable float value; histogram buckets must be cumulative and the
	// +Inf bucket must equal _count.
	var bucketPrev float64
	var infBucket, count float64
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line: %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("unparseable line: %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base = name[:i]
			if !strings.HasSuffix(name, "}") || !strings.Contains(name, `le="`) {
				t.Fatalf("bad label syntax: %q", line)
			}
		}
		for _, c := range base {
			if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
				t.Fatalf("bad metric name %q", base)
			}
		}
		seen[base] = true
		if strings.HasPrefix(name, "test_latency_seconds_bucket") {
			if v < bucketPrev {
				t.Fatalf("bucket series not cumulative: %q after %f", line, bucketPrev)
			}
			bucketPrev = v
			if strings.Contains(name, "+Inf") {
				infBucket = v
			}
		}
		if name == "test_latency_seconds_count" {
			count = v
		}
	}
	for _, want := range []string{"test_ops_total", "test_workers", "test_entries", "test_latency_seconds_bucket", "test_latency_seconds_sum", "test_latency_seconds_count"} {
		if !seen[want] {
			t.Fatalf("exposition missing %s:\n%s", want, text)
		}
	}
	if infBucket != count || count != 100 {
		t.Fatalf("+Inf bucket %f != count %f (want 100)", infBucket, count)
	}
}

func TestRegistryIdempotentAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "")
	c2 := r.Counter("x_total", "")
	if c1 != c2 {
		t.Fatal("re-registration returned a different counter")
	}
	c1.Inc()
	r.GaugeFunc("g", "", func() float64 { return 1 })
	r.GaugeFunc("g", "", func() float64 { return 2 }) // re-point wins
	snap := r.Snapshot()
	if snap["x_total"] != 1 || snap["g"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
}

// ---- spans ----

func TestSpanTreeAndContextPropagation(t *testing.T) {
	tr := NewTracer()
	root := tr.StartRoot("s1", "session", "ask")
	if root == nil {
		t.Fatal("root nil while enabled")
	}
	ctx := ContextWith(context.Background(), root)
	ctx, child := StartSpan(ctx, "coordinator", "plan")
	_, grand := StartSpan(ctx, "scheduler", "step:1")
	grand.SetAttr("agent", "NL2Q")
	grand.End()
	_, grand2 := StartSpan(ctx, "scheduler", "step:2")
	grand2.End()
	child.End()
	root.End()

	spans := tr.Session("s1")
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	byID := map[uint64]SpanData{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	g := byID[grand.ID()]
	if g.Parent != child.ID() || byID[child.ID()].Parent != root.ID() || byID[root.ID()].Parent != 0 {
		t.Fatalf("parent links wrong: %+v", spans)
	}
	if len(g.Attrs) != 1 || g.Attrs[0].Key != "agent" {
		t.Fatalf("attrs = %+v", g.Attrs)
	}
	out := RenderTree(spans)
	for _, want := range []string{"session/ask", "├─", "└─", `agent="NL2Q"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestStartUnderAnchorsToActiveRoot(t *testing.T) {
	tr := NewTracer()
	if sp := tr.StartUnder("s2", "agent", "x"); sp != nil {
		t.Fatal("StartUnder without a root must be a no-op")
	}
	root := tr.StartRoot("s2", "session", "ask")
	sp := tr.StartUnder("s2", "agent", "x")
	if sp == nil || sp.parent != root.ID() {
		t.Fatalf("StartUnder did not anchor to the active root")
	}
	sp.End()
	root.End()
	if sp2 := tr.StartUnder("s2", "agent", "y"); sp2 != nil {
		t.Fatal("root ended; StartUnder must be a no-op again")
	}
}

func TestResumeToken(t *testing.T) {
	tr := NewTracer()
	root := tr.StartRoot("s3", "session", "ask")
	tok := root.Token()
	sp := tr.Resume("s3", tok, "agent", "NL2Q")
	if sp == nil || sp.parent != root.ID() {
		t.Fatalf("Resume(%q) parent = %v, want %d", tok, sp, root.ID())
	}
	sp.End()
	root.End()
	// Malformed token falls back to StartUnder (root gone -> nil).
	if got := tr.Resume("s3", "!!!", "agent", "x"); got != nil {
		t.Fatalf("malformed token with no active root should no-op")
	}
}

func TestDisabledPlaneIsFree(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	tr := NewTracer()
	if tr.StartRoot("s", "session", "ask") != nil {
		t.Fatal("StartRoot while disabled")
	}
	h := newHistogram("h", "", LatencyBuckets)
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("Observe recorded while disabled")
	}
	// nil-safety of the whole span surface
	var sp *Span
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Token() != "" || sp.ID() != 0 {
		t.Fatal("nil span surface not inert")
	}
}

func TestRingBounded(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < ringCapacity+100; i++ {
		sp := tr.StartRoot("s", "session", "ask")
		sp.End()
	}
	spans := tr.Session("s")
	if len(spans) != ringCapacity {
		t.Fatalf("ring = %d, want %d", len(spans), ringCapacity)
	}
	// Oldest 100 must have been overwritten: first recorded span is gone.
	if spans[0].ID < 100 {
		t.Fatalf("oldest span id = %d, eviction failed", spans[0].ID)
	}
}

func TestTruncateRuneSafe(t *testing.T) {
	s := strings.Repeat("é", 40) // 2 bytes each
	got := Truncate(s, 61)       // byte 61 splits a rune
	if !utf8.ValidString(got) {
		t.Fatalf("truncated string invalid UTF-8: %q", got)
	}
	if !strings.HasSuffix(got, "...") || len(got) > 64 {
		t.Fatalf("truncate = %q", got)
	}
	if Truncate("short", 61) != "short" {
		t.Fatal("short strings must pass through")
	}
}
