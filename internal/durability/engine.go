// Package durability is the blueprint's shared write-ahead-log + snapshot
// engine: one segmented, CRC-framed, group-committed log and one snapshot
// file family per data directory, multiplexing every stateful subsystem
// (relational engine, memo store, registries, streams) through a small
// Loggable interface so a restarted process recovers warm instead of cold.
//
// See ARCHITECTURE.md in this directory for the record framing, segment
// rotation and snapshot/truncate protocol, and the Loggable contract.
package durability

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blueprint/internal/obs"
	"blueprint/internal/resilience"
)

// commitSampler thins the per-group-commit debug events (1 in 8 flush
// leaders record one).
var commitSampler = obs.NewSampler(8)

// Loggable is the contract a subsystem implements to plug into the engine.
//
//   - Apply replays one log record produced by the subsystem's own Append
//     calls. The byte slice is only valid for the duration of the call
//     (the replay loop reuses its buffer); implementations must copy what
//     they retain. Replay for subsystems that log outside Engine.Log must
//     be idempotent: a record whose effect is already present in the
//     restored snapshot may be replayed again.
//   - Snapshot serializes the subsystem's full state. It is called with
//     the engine's snapshot lock held, so mutations routed through
//     Engine.Log are quiescent; the subsystem takes its own locks for
//     everything else.
//   - Restore loads a Snapshot produced by the same subsystem, replacing
//     current state. It runs before log replay during recovery.
type Loggable interface {
	Apply(rec []byte) error
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

// Defaults.
const (
	// DefaultSegmentBytes rotates the log when a segment exceeds this size.
	DefaultSegmentBytes = 8 << 20
	// DefaultFlushEvery is the background flush+fsync cadence bounding the
	// durability window of asynchronous appends.
	DefaultFlushEvery = 25 * time.Millisecond
)

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("durability: engine closed")

// Options configure an Engine.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// FlushEvery is the background flush+fsync interval for asynchronous
	// appends (default DefaultFlushEvery; negative disables the loop —
	// flushes then happen only on rotation, snapshot, sync and close).
	FlushEvery time.Duration
	// DisableFsync skips fsync calls (tests and benchmarks on tmpfs).
	DisableFsync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FlushEvery == 0 {
		o.FlushEvery = DefaultFlushEvery
	}
	return o
}

// RecoveryStats describes what Recover did.
type RecoveryStats struct {
	// SnapshotRestored reports whether a snapshot file seeded the state.
	SnapshotRestored bool
	// SnapshotSeq is the restored snapshot's boundary segment sequence.
	SnapshotSeq uint64
	// ReplayedRecords and ReplayedBytes count the log frames applied.
	ReplayedRecords int
	ReplayedBytes   int64
	// SkippedRecords counts frames for unregistered subsystem ids (e.g. a
	// reopen with memoization disabled).
	SkippedRecords int
	// TornTailTruncated reports that a torn final record was cut off.
	TornTailTruncated bool
	// Duration is the wall-clock time of the whole recovery.
	Duration time.Duration
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Appends and AppendedBytes count framed records written this run.
	Appends       uint64
	AppendedBytes int64
	// Flushes and Fsyncs count buffer flushes and fsync calls; group
	// commit keeps Fsyncs well below Appends under concurrent load.
	Flushes uint64
	Fsyncs  uint64
	// Rotations counts segment rollovers.
	Rotations uint64
	// Snapshots counts snapshots taken this run; SnapshotBytes is the size
	// of the last one. TruncatedSegments counts log segments deleted after
	// snapshots.
	Snapshots         uint64
	SnapshotBytes     int64
	TruncatedSegments uint64
	// Segments and LogBytes describe the resident log files on disk.
	Segments int
	LogBytes int64
	// LastSnapshot is when the last snapshot completed (zero if none).
	LastSnapshot time.Time
	// Recovery describes the Recover call that opened this engine.
	Recovery RecoveryStats
}

type subsystem struct {
	id   uint8
	name string
	l    Loggable
	// barrier marks a subsystem whose replay is not idempotent: its
	// mutations route through Engine.Log, and Snapshot serializes it
	// while holding the snapshot write lock (WithSnapshotBarrier).
	barrier bool
}

// RegisterOption configures a subsystem registration.
type RegisterOption func(*subsystem)

// WithSnapshotBarrier declares that the subsystem's replay is NOT
// idempotent and its mutations go through Engine.Log. Snapshot then
// serializes it under the snapshot write lock, so no Log-routed mutation
// can land in both the snapshot and the post-boundary log. Subsystems
// using Engine.Log MUST register with this option.
func WithSnapshotBarrier() RegisterOption {
	return func(s *subsystem) { s.barrier = true }
}

// Engine is the shared WAL + snapshot engine. All methods are safe for
// concurrent use after Recover.
type Engine struct {
	dir  string
	opts Options

	// snapMu orders snapshots against mutate+append pairs routed through
	// Log: Log holds the read side across apply+append, Snapshot holds the
	// write side across rotate+serialize, so a non-idempotent subsystem's
	// state change can never land in a snapshot while its record lands in
	// the post-snapshot log. Subsystems with idempotent replay use Append
	// directly and skip the lock.
	snapMu sync.RWMutex
	// snapOnce serializes whole Snapshot calls (rotate through truncate).
	snapOnce sync.Mutex

	mu       sync.Mutex // log writer state
	f        *os.File
	w        *bufio.Writer
	scratch  []byte // reused frame-encode buffer
	segSeq   uint64 // current segment sequence
	segBytes int64  // bytes written to the current segment
	seq      uint64 // append ticket, for group commit
	synced   uint64 // highest ticket known flushed+fsynced
	closed   bool

	// Group commit: AppendSync callers wait until a flush+fsync covering
	// their ticket completes; one waiter leads the flush for the batch.
	cmu        sync.Mutex
	ccond      *sync.Cond
	flushedSeq uint64
	flushing   bool

	subs  map[uint8]subsystem
	order []uint8 // registered ids, ascending — snapshot section order

	recovered atomic.Bool

	appends       atomic.Uint64
	appendedBytes atomic.Int64
	flushes       atomic.Uint64
	fsyncs        atomic.Uint64
	rotations     atomic.Uint64
	snapshots     atomic.Uint64
	snapshotBytes atomic.Int64
	truncated     atomic.Uint64
	lastSnapshot  atomic.Int64 // unix nanos
	recStats      RecoveryStats

	loopStop chan struct{}
	loopDone chan struct{}
	autoStop chan struct{}
	autoDone chan struct{}
}

// Open creates the engine over a data directory (created if absent). Call
// Register for every subsystem, then Recover exactly once; appends before
// Recover are dropped (during replay the records already exist in the log).
func Open(dir string, opts Options) (*Engine, error) {
	if dir == "" {
		return nil, errors.New("durability: data directory required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durability: create dir: %w", err)
	}
	e := &Engine{
		dir:  dir,
		opts: opts.withDefaults(),
		subs: make(map[uint8]subsystem),
	}
	e.ccond = sync.NewCond(&e.cmu)
	return e, nil
}

// Register attaches a subsystem under a stable id (the first payload byte
// of its records). All registrations must happen before Recover.
func (e *Engine) Register(id uint8, name string, l Loggable, opts ...RegisterOption) error {
	if e.recovered.Load() {
		return errors.New("durability: register after recovery")
	}
	if l == nil {
		return errors.New("durability: nil Loggable")
	}
	if _, ok := e.subs[id]; ok {
		return fmt.Errorf("durability: subsystem id %d already registered", id)
	}
	sub := subsystem{id: id, name: name, l: l}
	for _, opt := range opts {
		opt(&sub)
	}
	e.subs[id] = sub
	e.order = append(e.order, id)
	sort.Slice(e.order, func(i, j int) bool { return e.order[i] < e.order[j] })
	return nil
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// syncDir fsyncs a directory so file creations/renames/unlinks inside it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// listSeqs scans dir for files matching the pattern prefix-%08d.suffix and
// returns the sequence numbers ascending.
func (e *Engine) listSeqs(prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(e.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, ent := range ents {
		name := ent.Name()
		var seq uint64
		if n, err := fmt.Sscanf(name, prefix+"-%d."+suffix, &seq); n == 1 && err == nil {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Recover restores the newest valid snapshot (if any), replays the log
// segments past it in order, truncates a torn final record, and opens the
// writer. It must be called exactly once, after all Register calls.
func (e *Engine) Recover() error {
	if e.recovered.Load() {
		return errors.New("durability: already recovered")
	}
	start := time.Now()
	// Clear leftovers of an interrupted snapshot write.
	if tmp, _ := filepath.Glob(filepath.Join(e.dir, "*.tmp")); tmp != nil {
		for _, p := range tmp {
			_ = os.Remove(p)
		}
	}

	boundary, restored, err := e.restoreSnapshot()
	if err != nil {
		return err
	}
	e.recStats.SnapshotRestored = restored
	e.recStats.SnapshotSeq = boundary

	segs, err := e.listSeqs("wal", "log")
	if err != nil {
		return fmt.Errorf("durability: list segments: %w", err)
	}
	for _, seq := range segs {
		if seq < boundary {
			continue // superseded by the snapshot; awaiting truncation
		}
		torn, err := e.replaySegment(seq)
		if err != nil {
			return err
		}
		if torn {
			// Everything after a torn frame is unreachable; drop any later
			// segments (they can only exist after mid-log corruption).
			e.recStats.TornTailTruncated = true
			for _, later := range segs {
				if later > seq {
					_ = os.Remove(filepath.Join(e.dir, segName(later)))
				}
			}
			break
		}
	}

	// Open the writer on the newest surviving segment, or a fresh one.
	cur := boundary
	if cur == 0 {
		cur = 1
	}
	if n := len(segs); n > 0 && segs[n-1] >= cur {
		cur = segs[n-1]
	}
	path := filepath.Join(e.dir, segName(cur))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durability: open segment: %w", err)
	}
	if !e.opts.DisableFsync {
		if err := syncDir(e.dir); err != nil {
			f.Close()
			return fmt.Errorf("durability: sync dir after open: %w", err)
		}
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	e.mu.Lock()
	e.f = f
	e.w = bufio.NewWriterSize(f, 1<<16)
	e.segSeq = cur
	e.segBytes = fi.Size()
	e.mu.Unlock()

	e.recStats.Duration = time.Since(start)
	e.recovered.Store(true)

	if e.opts.FlushEvery > 0 {
		e.loopStop = make(chan struct{})
		e.loopDone = make(chan struct{})
		go e.flushLoop()
	}
	return nil
}

// replaySegment applies every valid frame of one segment, truncating the
// file at the first torn frame. It reports whether a torn tail was cut.
func (e *Engine) replaySegment(seq uint64) (torn bool, err error) {
	path := filepath.Join(e.dir, segName(seq))
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("durability: open segment for replay: %w", err)
	}
	defer f.Close()
	fr := &frameReader{r: bufio.NewReaderSize(f, 1<<16)}
	for {
		id, payload, rerr := fr.next()
		if errors.Is(rerr, io.EOF) {
			return false, nil
		}
		if errors.Is(rerr, errTorn) {
			f.Close()
			if terr := os.Truncate(path, fr.good); terr != nil {
				return true, fmt.Errorf("durability: truncate torn tail: %w", terr)
			}
			return true, nil
		}
		if rerr != nil {
			return false, rerr
		}
		sub, ok := e.subs[id]
		if !ok {
			e.recStats.SkippedRecords++
			continue
		}
		if aerr := sub.l.Apply(payload); aerr != nil {
			return false, fmt.Errorf("durability: replay %s record: %w", sub.name, aerr)
		}
		e.recStats.ReplayedRecords++
		e.recStats.ReplayedBytes += int64(frameHeaderBytes + 1 + len(payload))
	}
}

// restoreSnapshot loads the newest fully valid snapshot, returning its
// boundary sequence (replay starts at that segment).
func (e *Engine) restoreSnapshot() (uint64, bool, error) {
	snaps, err := e.listSeqs("snap", "snap")
	if err != nil {
		return 0, false, fmt.Errorf("durability: list snapshots: %w", err)
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		seq := snaps[i]
		sections, ok := e.readSnapshot(filepath.Join(e.dir, snapName(seq)))
		if !ok {
			continue // corrupt or torn snapshot; fall back to an older one
		}
		for _, sec := range sections {
			sub, reg := e.subs[sec.id]
			if !reg {
				continue
			}
			if err := sub.l.Restore(bytes.NewReader(sec.body)); err != nil {
				return 0, false, fmt.Errorf("durability: restore %s snapshot: %w", sub.name, err)
			}
		}
		return seq, true, nil
	}
	return 0, false, nil
}

type snapSection struct {
	id   uint8
	body []byte
}

var snapMagic = []byte("BPSNAP1\n")

// readSnapshot parses and fully validates a snapshot file; every section's
// CRC must check out before any byte of it is restored.
func (e *Engine) readSnapshot(path string) ([]snapSection, bool) {
	data, err := os.ReadFile(path)
	if err != nil || !bytes.HasPrefix(data, snapMagic) {
		return nil, false
	}
	fr := &frameReader{r: bytes.NewReader(data[len(snapMagic):])}
	var out []snapSection
	for {
		id, payload, err := fr.next()
		if errors.Is(err, io.EOF) {
			return out, true
		}
		if err != nil {
			return nil, false
		}
		out = append(out, snapSection{id: id, body: append([]byte(nil), payload...)})
	}
}

// append frames and buffers one record, returning its group-commit ticket.
func (e *Engine) append(id uint8, payload []byte) (uint64, error) {
	if !e.recovered.Load() {
		// Replay-time echo (e.g. a replayed DML bumping a data asset and
		// re-triggering a memo invalidation): the record is already in the
		// log; re-appending would duplicate it.
		return 0, nil
	}
	// Chaos hook: an active injector may fail or stall the append here, as
	// a real disk would. There is no caller context on this path, so hangs
	// are bounded by the injector itself.
	if err := resilience.Check(context.Background(), resilience.SiteDurability); err != nil {
		return 0, fmt.Errorf("durability: append: %w", err)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	if e.segBytes >= e.opts.SegmentBytes {
		if err := e.rotateLocked(); err != nil {
			e.mu.Unlock()
			return 0, err
		}
	}
	e.scratch = appendFrame(e.scratch[:0], id, payload)
	if _, err := e.w.Write(e.scratch); err != nil {
		e.mu.Unlock()
		return 0, fmt.Errorf("durability: append: %w", err)
	}
	e.segBytes += int64(len(e.scratch))
	e.seq++
	seq := e.seq
	e.mu.Unlock()
	e.appends.Add(1)
	e.appendedBytes.Add(int64(len(payload)) + frameHeaderBytes + 1)
	return seq, nil
}

// Append logs one record asynchronously: it is buffered immediately and
// made durable by the next group commit, background flush, rotation,
// snapshot or close. Use AppendSync (or Sync) when the caller must not
// return before the record is on disk.
func (e *Engine) Append(id uint8, payload []byte) error {
	_, err := e.append(id, payload)
	return err
}

// AppendSync logs one record and waits for a flush+fsync covering it.
// Concurrent callers share fsyncs: one waiter flushes for the whole batch
// (group commit), the rest just observe the advanced flush horizon.
func (e *Engine) AppendSync(id uint8, payload []byte) error {
	seq, err := e.append(id, payload)
	if err != nil || seq == 0 {
		return err
	}
	return e.commit(seq)
}

// commit blocks until flushedSeq >= seq, electing one flush leader per
// batch.
func (e *Engine) commit(seq uint64) error {
	e.cmu.Lock()
	defer e.cmu.Unlock()
	for e.flushedSeq < seq {
		if e.flushing {
			e.ccond.Wait()
			continue
		}
		e.flushing = true
		prev := e.flushedSeq
		e.cmu.Unlock()
		flushed, err := e.flushAndSync()
		e.cmu.Lock()
		e.flushing = false
		if flushed > e.flushedSeq {
			e.flushedSeq = flushed
		}
		e.ccond.Broadcast()
		if err != nil {
			return err
		}
		// One debug event per elected flush leader, sampled: group commits
		// are the WAL's steady state, so only a thinned stream is recorded —
		// enough to see batch coverage without washing out the event ring.
		if flushed > prev && obs.Events.On(obs.LevelDebug) && commitSampler.Allow() {
			obs.Events.Emit(obs.LevelDebug, "durability", "group-commit",
				obs.Attr{Key: "batch", Value: strconv.FormatUint(flushed-prev, 10)},
				obs.Attr{Key: "flushed_seq", Value: strconv.FormatUint(flushed, 10)})
		}
	}
	return nil
}

// flushAndSync flushes the buffered log and fsyncs the segment, returning
// the append ticket the flush covers.
func (e *Engine) flushAndSync() (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.f == nil {
		return e.seq, ErrClosed
	}
	seq := e.seq
	if seq == e.synced {
		return seq, nil // nothing appended since the last sync: idle tick
	}
	if err := e.w.Flush(); err != nil {
		return 0, err
	}
	e.flushes.Add(1)
	if !e.opts.DisableFsync {
		if err := e.f.Sync(); err != nil {
			return 0, err
		}
		e.fsyncs.Add(1)
	}
	e.synced = seq
	return seq, nil
}

// Sync makes every record appended so far durable.
func (e *Engine) Sync() error {
	_, err := e.flushAndSync()
	return err
}

// rotateLocked seals the current segment and opens the next. Caller holds
// e.mu.
func (e *Engine) rotateLocked() error {
	if err := e.w.Flush(); err != nil {
		return err
	}
	if !e.opts.DisableFsync {
		if err := e.f.Sync(); err != nil {
			return err
		}
		e.fsyncs.Add(1)
	}
	if err := e.f.Close(); err != nil {
		return err
	}
	e.segSeq++
	f, err := os.OpenFile(filepath.Join(e.dir, segName(e.segSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durability: rotate: %w", err)
	}
	if !e.opts.DisableFsync {
		// Persist the new segment's dirent: records fsynced into it must
		// not vanish with the file after a power loss.
		if err := syncDir(e.dir); err != nil {
			f.Close()
			return fmt.Errorf("durability: sync dir after rotate: %w", err)
		}
	}
	e.f = f
	e.w.Reset(f)
	e.segBytes = 0
	e.synced = e.seq // everything so far is on the sealed, fsynced segment
	e.rotations.Add(1)
	return nil
}

// Log runs apply and appends the payload it returns as one atomic unit
// with respect to Snapshot: either both the state change and the record
// land before the snapshot boundary, or both after. Subsystems whose
// replay is not idempotent (the relational engine's logical DML records)
// must route every mutation through Log AND register with
// WithSnapshotBarrier (so Snapshot serializes them under this lock's
// write side); idempotent subsystems use Append. A nil payload (e.g.
// apply produced nothing) appends nothing.
func (e *Engine) Log(id uint8, apply func() ([]byte, error)) error {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	payload, err := apply()
	if err != nil || payload == nil {
		return err
	}
	return e.Append(id, payload)
}

// Snapshot serializes every registered subsystem into a new snapshot file,
// then deletes the log segments and older snapshots it supersedes. The
// write is atomic (temp file + rename); a crash mid-snapshot leaves the
// previous snapshot and the full log intact.
func (e *Engine) Snapshot() error {
	if !e.recovered.Load() {
		return errors.New("durability: snapshot before recovery")
	}
	e.snapOnce.Lock()
	defer e.snapOnce.Unlock()

	// Rotate so the snapshot boundary is the start of a fresh segment;
	// everything before it is superseded by the snapshot contents.
	e.snapMu.Lock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.snapMu.Unlock()
		return ErrClosed
	}
	if e.segBytes > 0 {
		if err := e.rotateLocked(); err != nil {
			e.mu.Unlock()
			e.snapMu.Unlock()
			return err
		}
	}
	boundary := e.segSeq
	e.mu.Unlock()

	// Phase 1 (under the snapshot write lock): serialize the barrier
	// subsystems — the ones whose mutations route through Log and whose
	// replay is not idempotent, so their state must be captured exactly
	// at the boundary. Phase 2 (lock released): serialize everyone else —
	// an idempotent subsystem's mutation landing in both the snapshot and
	// the post-boundary log replays harmlessly, so relational writes are
	// not stalled while e.g. the full stream history encodes.
	sections := make(map[uint8][]byte, len(e.order))
	serialize := func(id uint8) error {
		sub := e.subs[id]
		var section bytes.Buffer
		if err := sub.l.Snapshot(&section); err != nil {
			return fmt.Errorf("durability: snapshot %s: %w", sub.name, err)
		}
		sections[id] = section.Bytes()
		return nil
	}
	var serr error
	for _, id := range e.order {
		if e.subs[id].barrier {
			if serr = serialize(id); serr != nil {
				break
			}
		}
	}
	e.snapMu.Unlock()
	if serr != nil {
		return serr
	}
	for _, id := range e.order {
		if !e.subs[id].barrier {
			if err := serialize(id); err != nil {
				return err
			}
		}
	}

	var buf bytes.Buffer
	buf.Write(snapMagic)
	var scratch []byte
	for _, id := range e.order {
		scratch = appendFrame(scratch[:0], id, sections[id])
		buf.Write(scratch)
	}

	path := filepath.Join(e.dir, snapName(boundary))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("durability: write snapshot: %w", err)
	}
	if !e.opts.DisableFsync {
		if f, err := os.Open(tmp); err == nil {
			_ = f.Sync()
			f.Close()
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("durability: publish snapshot: %w", err)
	}
	// Make the rename durable before unlinking what it supersedes: without
	// the directory fsync, a power loss could persist the deletions below
	// while losing the new snapshot's dirent — leaving neither the
	// snapshot nor the covering log segments.
	if !e.opts.DisableFsync {
		if err := syncDir(e.dir); err != nil {
			return fmt.Errorf("durability: sync dir after snapshot publish: %w", err)
		}
	}

	// Truncate: segments and snapshots strictly before the boundary are
	// fully covered by the new snapshot.
	if segs, err := e.listSeqs("wal", "log"); err == nil {
		for _, seq := range segs {
			if seq < boundary {
				if os.Remove(filepath.Join(e.dir, segName(seq))) == nil {
					e.truncated.Add(1)
				}
			}
		}
	}
	if snaps, err := e.listSeqs("snap", "snap"); err == nil {
		for _, seq := range snaps {
			if seq < boundary {
				_ = os.Remove(filepath.Join(e.dir, snapName(seq)))
			}
		}
	}
	e.snapshots.Add(1)
	e.snapshotBytes.Store(int64(buf.Len()))
	e.lastSnapshot.Store(time.Now().UnixNano())
	return nil
}

// StartAutoSnapshot snapshots in the background every interval until the
// engine closes. Errors are reflected in Stats (a snapshot that fails
// leaves the log intact, so durability is unaffected).
func (e *Engine) StartAutoSnapshot(interval time.Duration) {
	if interval <= 0 || e.autoStop != nil {
		return
	}
	e.autoStop = make(chan struct{})
	e.autoDone = make(chan struct{})
	go func() {
		defer close(e.autoDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = e.Snapshot()
			case <-e.autoStop:
				return
			}
		}
	}()
}

func (e *Engine) flushLoop() {
	defer close(e.loopDone)
	t := time.NewTicker(e.opts.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_, _ = e.flushAndSync()
		case <-e.loopStop:
			return
		}
	}
}

// Close flushes and closes the log. It does not snapshot: callers wanting
// a warm-start boundary take one first (System.Close does).
func (e *Engine) Close() error {
	if e.autoStop != nil {
		close(e.autoStop)
		<-e.autoDone
		e.autoStop = nil
	}
	if e.loopStop != nil {
		close(e.loopStop)
		<-e.loopDone
		e.loopStop = nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	var err error
	if e.f != nil {
		if ferr := e.w.Flush(); ferr != nil {
			err = ferr
		}
		if !e.opts.DisableFsync {
			if ferr := e.f.Sync(); ferr != nil && err == nil {
				err = ferr
			}
		}
		if ferr := e.f.Close(); ferr != nil && err == nil {
			err = ferr
		}
	}
	seq := e.seq
	e.mu.Unlock()
	// Release any group-commit waiters: everything buffered is on disk.
	e.cmu.Lock()
	if seq > e.flushedSeq {
		e.flushedSeq = seq
	}
	e.ccond.Broadcast()
	e.cmu.Unlock()
	return err
}

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.dir }

// Stats returns a snapshot of the counters plus the on-disk footprint.
func (e *Engine) Stats() Stats {
	st := Stats{
		Appends:           e.appends.Load(),
		AppendedBytes:     e.appendedBytes.Load(),
		Flushes:           e.flushes.Load(),
		Fsyncs:            e.fsyncs.Load(),
		Rotations:         e.rotations.Load(),
		Snapshots:         e.snapshots.Load(),
		SnapshotBytes:     e.snapshotBytes.Load(),
		TruncatedSegments: e.truncated.Load(),
		Recovery:          e.recStats,
	}
	if ns := e.lastSnapshot.Load(); ns != 0 {
		st.LastSnapshot = time.Unix(0, ns)
	}
	if segs, err := e.listSeqs("wal", "log"); err == nil {
		st.Segments = len(segs)
		for _, seq := range segs {
			if fi, err := os.Stat(filepath.Join(e.dir, segName(seq))); err == nil {
				st.LogBytes += fi.Size()
			}
		}
	}
	return st
}

// SubLogger is a per-subsystem logging handle: the narrow surface a
// subsystem holds so it never needs to know its own id or the engine.
type SubLogger struct {
	e  *Engine
	id uint8
}

// Logger returns the logging handle for a subsystem id.
func (e *Engine) Logger(id uint8) *SubLogger { return &SubLogger{e: e, id: id} }

// Append logs one record asynchronously (see Engine.Append).
func (l *SubLogger) Append(payload []byte) error { return l.e.Append(l.id, payload) }

// AppendSync logs one record through group commit (see Engine.AppendSync).
func (l *SubLogger) AppendSync(payload []byte) error { return l.e.AppendSync(l.id, payload) }

// LogMutation atomically applies and logs a mutation (see Engine.Log).
func (l *SubLogger) LogMutation(apply func() ([]byte, error)) error { return l.e.Log(l.id, apply) }
