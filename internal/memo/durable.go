package memo

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Durability: cacheable step results survive restarts. Every successful
// put (Do leader or Put) and every invalidation is appended to the shared
// WAL as one JSON record, and Snapshot/Restore dump/load the resident
// entries, so a restarted coordinator answers repeated asks from memo
// instead of re-executing agents.
//
// Two properties keep the restored cache correct:
//
//   - Version checking: each logged entry carries the producing agent's
//     registry version at put time. Restore/replay drops entries whose
//     version no longer matches the restored registry (DurableConfig.
//     Validate), closing the gap where the registries recovered to an
//     older generation than the memo log.
//   - Replay idempotence: puts overwrite their key and invalidations are
//     monotone drops, so the engine may replay a record whose effect is
//     already in the restored snapshot. Invalidations are logged too:
//     relational replay re-fires data-asset bumps on its own, but
//     registry-driven agent invalidations exist only as memo records.
//
// Outputs round-trip through JSON: they are content-hashed through JSON
// at key time already, so anything cacheable is JSON-encodable, but
// restored values carry JSON's types (numbers become float64).
type DurableConfig struct {
	// Append logs one record to the shared WAL (asynchronous, group
	// committed). Nil disables logging.
	Append func(payload []byte) error
	// AgentVersion reports the producing agent's current registry version
	// at put time (nil = version 0 recorded).
	AgentVersion func(agent string) int
	// Validate accepts a restored entry: typically "the restored registry
	// still has this agent, cacheable, at this version" (nil = accept
	// everything).
	Validate func(agent string, version int) bool
}

// SetDurable wires the store to the durability engine. Attach before
// recovery and before serving traffic.
func (s *Store) SetDurable(cfg DurableConfig) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dur = cfg
}

// Record ops.
const (
	opPut              = "put"
	opInvalidateAgent  = "inv-agent"
	opInvalidateSource = "inv-source"
)

// durRecord is the WAL/snapshot record (one JSON object per record).
type durRecord struct {
	Op string `json:"op"`
	// Put fields.
	Key     Key            `json:"key,omitempty"`
	Agent   string         `json:"agent,omitempty"`
	Version int            `json:"version,omitempty"`
	Sources []string       `json:"sources,omitempty"`
	Expires int64          `json:"expires,omitempty"` // unix nanos; 0 = never
	Outputs map[string]any `json:"outputs,omitempty"`
	Cost    float64        `json:"cost,omitempty"`
	Latency int64          `json:"latency,omitempty"` // nanoseconds
	// Invalidation field.
	Name string `json:"name,omitempty"`
}

// logPutLocked appends a put record; caller holds s.mu.
func (s *Store) logPutLocked(key Key, agent string, sources []string, ttl time.Duration, val Entry) {
	if s.dur.Append == nil {
		return
	}
	rec := durRecord{
		Op: opPut, Key: key, Agent: agent, Sources: sources,
		Outputs: val.Outputs, Cost: val.Cost, Latency: int64(val.Latency),
	}
	if s.dur.AgentVersion != nil {
		rec.Version = s.dur.AgentVersion(agent)
	}
	if ttl > 0 {
		rec.Expires = s.now().Add(ttl).UnixNano()
	}
	if b, err := json.Marshal(rec); err == nil {
		_ = s.dur.Append(b)
	}
}

// logInvalidateLocked appends an invalidation record; caller holds s.mu.
func (s *Store) logInvalidateLocked(op, name string) {
	if s.dur.Append == nil {
		return
	}
	if b, err := json.Marshal(durRecord{Op: op, Name: name}); err == nil {
		_ = s.dur.Append(b)
	}
}

// applyRecord loads one record without re-logging; caller holds s.mu.
// It reports whether a put restored a NEW entry — a replayed put whose
// key the snapshot already covered overwrites in place and does not count
// again (memo puts ride the idempotent Append path, so snapshot + log can
// both carry one).
func (s *Store) applyRecord(rec durRecord) (restored bool, err error) {
	switch rec.Op {
	case opPut:
		if rec.Expires != 0 && !s.now().Before(time.Unix(0, rec.Expires)) {
			return false, nil // expired while the process was down
		}
		if s.dur.Validate != nil && !s.dur.Validate(rec.Agent, rec.Version) {
			return false, nil // stale against the restored registries
		}
		var ttl time.Duration
		if rec.Expires != 0 {
			ttl = time.Unix(0, rec.Expires).Sub(s.now())
		}
		_, existed := s.entries[rec.Key]
		s.putLocked(rec.Key, canonName(rec.Agent), canonNames(rec.Sources), ttl, Entry{
			Outputs: rec.Outputs, Cost: rec.Cost, Latency: time.Duration(rec.Latency),
		})
		return !existed, nil
	case opInvalidateAgent:
		s.invalidateAgentLocked(canonName(rec.Name))
		return false, nil
	case opInvalidateSource:
		s.invalidateSourceLocked(canonName(rec.Name))
		return false, nil
	default:
		return false, fmt.Errorf("memo: unknown durable record op %q", rec.Op)
	}
}

// Apply replays one WAL record. It implements durability.Loggable.
func (s *Store) Apply(recBytes []byte) error {
	var rec durRecord
	if err := json.Unmarshal(recBytes, &rec); err != nil {
		return fmt.Errorf("memo: decode durable record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	restored, err := s.applyRecord(rec)
	if restored {
		s.stats.Restored++
	}
	return err
}

// Snapshot dumps the resident entries, oldest first so a Restore rebuilds
// the same LRU recency order. It implements durability.Loggable.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(w)
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		rec := durRecord{
			Op: opPut, Key: e.key, Agent: e.agent, Sources: e.sources,
			Outputs: e.val.Outputs, Cost: e.val.Cost, Latency: int64(e.val.Latency),
		}
		if s.dur.AgentVersion != nil {
			rec.Version = s.dur.AgentVersion(e.agent)
		}
		if !e.expires.IsZero() {
			rec.Expires = e.expires.UnixNano()
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Restore loads a Snapshot, validating each entry against the restored
// registries. It implements durability.Loggable.
func (s *Store) Restore(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var rec durRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("memo: decode snapshot: %w", err)
		}
		restored, err := s.applyRecord(rec)
		if err != nil {
			return err
		}
		if restored {
			s.stats.Restored++
		}
	}
}
