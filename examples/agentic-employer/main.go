// Agentic Employer (Scenario II, §II-B and §VI): reproduces the Fig. 8
// conversation — an employer sifting through applicants with UI clicks and
// natural-language queries — and prints the Fig. 9 / Fig. 10 message flows
// reconstructed from the streams, demonstrating the architecture's
// observability.
package main

import (
	"fmt"
	"log"
	"time"

	"blueprint"
	"blueprint/internal/trace"
)

func main() {
	sys, err := blueprint.New(blueprint.Config{ModelAccuracy: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sess, err := sys.StartSession("")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	const timeout = 10 * time.Second

	// --- Fig. 9: flow initiated from the UI -----------------------------
	fmt.Println("== Fig. 9: employer clicks job 12 in the UI ==")
	out, err := sess.Click(map[string]any{"action": "select_job", "job_id": 12}, timeout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system> %s\n\n", out)

	// --- Fig. 10: flow initiated from the conversation ------------------
	turns := []string{
		"How many jobs are in San Francisco?",
		"average salary per city",
		"Rank the top candidates for job 12",
		"Summarize the applicants for job 7",
	}
	for _, turn := range turns {
		fmt.Printf("employer> %s\n", turn)
		out, err := sess.Ask(turn, timeout)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("system> %s\n\n", out)
	}

	// --- Observability: the reconstructed flow --------------------------
	flow := sess.Flow()
	fmt.Println("== reconstructed flow (first appearance order) ==")
	fmt.Println(trace.Senders(flow))
	fmt.Println("== message counts per component ==")
	for sender, n := range trace.CountBySender(flow) {
		fmt.Printf("  %-20s %d\n", sender, n)
	}
	fmt.Printf("total messages on streams: %d\n", len(flow))
}
