package agent

import (
	"sync"

	"blueprint/internal/streams"
)

// token is one value waiting in a place.
type token struct {
	value any
	msg   streams.Message
}

// petriNet implements the Fig. 4 triggering mechanism: one place per input
// parameter; a transition fires when every place holds at least one token,
// yielding the full input tuple for processor().
type petriNet struct {
	mu     sync.Mutex
	params []string
	places map[string][]token
	policy TriggerPolicy
}

func newPetriNet(params []string, policy TriggerPolicy) *petriNet {
	places := make(map[string][]token, len(params))
	for _, p := range params {
		places[p] = nil
	}
	return &petriNet{params: params, places: places, policy: policy}
}

// offer deposits a token into the named place and returns zero or more
// ready input tuples according to the pairing policy. Unknown places are
// ignored (the message wasn't addressed to this agent's inputs).
func (pn *petriNet) offer(place string, tok token) []map[string]token {
	pn.mu.Lock()
	defer pn.mu.Unlock()
	if _, ok := pn.places[place]; !ok {
		return nil
	}
	switch pn.policy {
	case PairLatest:
		pn.places[place] = []token{tok}
	default:
		pn.places[place] = append(pn.places[place], tok)
	}

	var fired []map[string]token
	for pn.readyLocked() {
		tuple := make(map[string]token, len(pn.params))
		for _, p := range pn.params {
			tuple[p] = pn.places[p][0]
			if pn.policy != PairLatest {
				pn.places[p] = pn.places[p][1:]
			}
		}
		fired = append(fired, tuple)
		if pn.policy == PairLatest {
			// Latest fires once per arrival; tokens stay for reuse.
			break
		}
	}
	return fired
}

func (pn *petriNet) readyLocked() bool {
	for _, p := range pn.params {
		if len(pn.places[p]) == 0 {
			return false
		}
	}
	return true
}

// pending reports the number of queued tokens per place (observability).
func (pn *petriNet) pending() map[string]int {
	pn.mu.Lock()
	defer pn.mu.Unlock()
	out := make(map[string]int, len(pn.params))
	for _, p := range pn.params {
		out[p] = len(pn.places[p])
	}
	return out
}
