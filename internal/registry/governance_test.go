package registry

import (
	"errors"
	"testing"
)

func newGovernedReg(t testing.TB) *DataRegistry {
	t.Helper()
	r := NewDataRegistry()
	assets := []DataAsset{
		{Name: "hr", Kind: KindRelational, Level: LevelDatabase, Description: "HR database"},
		{Name: "hr.jobs", Kind: KindRelational, Level: LevelTable, Parent: "hr", Description: "job postings table with titles and salaries"},
		{Name: "hr.salaries", Kind: KindRelational, Level: LevelTable, Parent: "hr", Description: "confidential salary records table"},
		{Name: "public.faq", Kind: KindDocument, Level: LevelCollection, Description: "public faq documents"},
	}
	for _, a := range assets {
		if err := r.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestUngovernedAssetsArePublic(t *testing.T) {
	r := newGovernedReg(t)
	if !r.Authorized("hr.jobs", "ANY_AGENT") {
		t.Fatal("ungoverned asset not public")
	}
	if err := r.CheckAccess("public.faq", "X"); err != nil {
		t.Fatal(err)
	}
}

func TestGrantRestricts(t *testing.T) {
	r := newGovernedReg(t)
	if err := r.Grant("hr.salaries", "PAYROLL_AGENT"); err != nil {
		t.Fatal(err)
	}
	if !r.Authorized("hr.salaries", "payroll_agent") { // case-insensitive
		t.Fatal("granted agent denied")
	}
	if r.Authorized("hr.salaries", "JOBMATCHER") {
		t.Fatal("ungranted agent allowed")
	}
	if err := r.CheckAccess("hr.salaries", "JOBMATCHER"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("err = %v", err)
	}
	// Other assets unaffected.
	if !r.Authorized("hr.jobs", "JOBMATCHER") {
		t.Fatal("sibling asset affected by grant")
	}
}

func TestGrantOnMissingAsset(t *testing.T) {
	r := newGovernedReg(t)
	if err := r.Grant("missing", "X"); !errors.Is(err, ErrAssetNotFound) {
		t.Fatalf("err = %v", err)
	}
	if r.Authorized("missing", "X") {
		t.Fatal("missing asset authorized")
	}
}

func TestHierarchicalGrants(t *testing.T) {
	r := newGovernedReg(t)
	// Governing the database covers its tables.
	if err := r.Grant("hr", "HR_SUITE"); err != nil {
		t.Fatal(err)
	}
	if !r.Authorized("hr.jobs", "HR_SUITE") {
		t.Fatal("parent grant did not cover child")
	}
	if r.Authorized("hr.jobs", "OUTSIDER") {
		t.Fatal("outsider allowed via governed parent")
	}
	// A child-level grant overrides the parent's for that child.
	if err := r.Grant("hr.jobs", "MATCHER_ONLY"); err != nil {
		t.Fatal(err)
	}
	if !r.Authorized("hr.jobs", "MATCHER_ONLY") {
		t.Fatal("child grant denied")
	}
	if r.Authorized("hr.jobs", "HR_SUITE") {
		t.Fatal("child governance should override parent grant")
	}
}

func TestRevokeAndClear(t *testing.T) {
	r := newGovernedReg(t)
	if err := r.Grant("hr.salaries", "A", "B"); err != nil {
		t.Fatal(err)
	}
	r.Revoke("hr.salaries", "A")
	if r.Authorized("hr.salaries", "A") {
		t.Fatal("revoked agent allowed")
	}
	if !r.Authorized("hr.salaries", "B") {
		t.Fatal("remaining grant lost")
	}
	// Revoking the last grant leaves the asset locked down.
	r.Revoke("hr.salaries", "B")
	if r.Authorized("hr.salaries", "B") || r.Authorized("hr.salaries", "anyone") {
		t.Fatal("empty grant set should deny everyone")
	}
	r.ClearGrants("hr.salaries")
	if !r.Authorized("hr.salaries", "anyone") {
		t.Fatal("cleared asset not public")
	}
	// Revoke on ungoverned asset is a no-op.
	r.Revoke("public.faq", "X")
	if !r.Authorized("public.faq", "X") {
		t.Fatal("no-op revoke changed state")
	}
}

func TestDiscoverForFiltersRestricted(t *testing.T) {
	r := newGovernedReg(t)
	if err := r.Grant("hr.salaries", "PAYROLL_AGENT"); err != nil {
		t.Fatal(err)
	}
	// The restricted table would otherwise rank for this query.
	open := r.Discover("salary records table", 4)
	foundRestricted := false
	for _, h := range open {
		if h.Asset.Name == "hr.salaries" {
			foundRestricted = true
		}
	}
	if !foundRestricted {
		t.Fatalf("fixture broken: hr.salaries not discoverable at all: %+v", open)
	}
	for _, h := range r.DiscoverFor("JOBMATCHER", "salary records table", 4) {
		if h.Asset.Name == "hr.salaries" {
			t.Fatal("restricted asset leaked to unauthorized agent")
		}
	}
	// The granted agent still sees it.
	found := false
	for _, h := range r.DiscoverFor("PAYROLL_AGENT", "salary records table", 4) {
		if h.Asset.Name == "hr.salaries" {
			found = true
		}
	}
	if !found {
		t.Fatal("granted agent lost access via DiscoverFor")
	}
}
