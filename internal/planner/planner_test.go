package planner

import (
	"strings"
	"testing"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/llm"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

func hrRegistry(t testing.TB) *registry.AgentRegistry {
	t.Helper()
	r := registry.NewAgentRegistry()
	specs := []registry.AgentSpec{
		{
			Name:        "PROFILER",
			Description: "presents a user profile UI form to collect job seeker profile information from the user",
			Inputs:      []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
			Outputs:     []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
			QoS:         registry.QoSProfile{CostPerCall: 0.001, Latency: 30 * time.Millisecond, Accuracy: 0.95},
		},
		{
			Name:        "JOBMATCHER",
			Description: "match the job seeker profile against available job listings, assessing match quality and ranking candidates",
			Inputs: []registry.ParamSpec{
				{Name: "JOBSEEKER_DATA", Type: "profile"},
				{Name: "JOBS", Type: "rows", Optional: true},
			},
			Outputs: []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
			QoS:     registry.QoSProfile{CostPerCall: 0.01, Latency: 100 * time.Millisecond, Accuracy: 0.9},
		},
		{
			Name:        "PRESENTER",
			Description: "present the matched jobs and results to the end user in a readable rendering",
			Inputs:      []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
			Outputs:     []registry.ParamSpec{{Name: "RENDERED", Type: "text"}},
		},
		{
			Name:        "NL2Q",
			Description: "translate a natural language question into a SQL database query",
			Inputs:      []registry.ParamSpec{{Name: "NLQ", Type: "text"}},
			Outputs:     []registry.ParamSpec{{Name: "SQL", Type: "text"}},
		},
		{
			Name:        "SQLEXECUTOR",
			Description: "execute a SQL database query against the enterprise relational databases",
			Inputs:      []registry.ParamSpec{{Name: "SQL", Type: "text"}},
			Outputs:     []registry.ParamSpec{{Name: "ROWS", Type: "rows"}},
		},
		{
			Name:        "QUERYSUMMARIZER",
			Description: "summarize and explain database query results for the user",
			Inputs:      []registry.ParamSpec{{Name: "ROWS", Type: "rows"}},
			Outputs:     []registry.ParamSpec{{Name: "SUMMARY", Type: "text"}},
		},
		{
			Name:        "BACKUP_MATCHER",
			Description: "alternative matcher assessing job seeker profile match quality with job listings",
			Inputs:      []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
			Outputs:     []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
		},
	}
	for _, s := range specs {
		if err := r.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func perfectModel() *llm.Model {
	return llm.New(llm.Config{Name: "planner-llm", Accuracy: 1.0, CostPer1K: 0.001, Seed: 5}, nil)
}

func TestFig6RunningExamplePlan(t *testing.T) {
	tp := New(hrRegistry(t), perfectModel(), nil)
	plan, err := tp.Plan("I am looking for a data scientist position in SF bay area.")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Intent != "job_search" {
		t.Fatalf("intent = %s", plan.Intent)
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("steps = %+v", plan.Steps)
	}
	wantAgents := []string{"PROFILER", "JOBMATCHER", "PRESENTER"}
	for i, want := range wantAgents {
		if plan.Steps[i].Agent != want {
			t.Fatalf("step %d agent = %s, want %s\nplan:\n%s", i, plan.Steps[i].Agent, want, plan)
		}
	}
	// Fig. 6 wiring: PROFILER.CRITERIA <- USER.TEXT (criteria transform);
	// JOBMATCHER.JOBSEEKER_DATA <- s1.JOBSEEKER_DATA;
	// PRESENTER.MATCHES <- s2.MATCHES.
	b := plan.Steps[0].Bindings["CRITERIA"]
	if !b.FromUserText || b.Transform != "criteria" {
		t.Fatalf("CRITERIA binding = %+v", b)
	}
	b = plan.Steps[1].Bindings["JOBSEEKER_DATA"]
	if b.FromStep != "s1" || b.FromParam != "JOBSEEKER_DATA" {
		t.Fatalf("JOBSEEKER_DATA binding = %+v", b)
	}
	b = plan.Steps[2].Bindings["MATCHES"]
	if b.FromStep != "s2" || b.FromParam != "MATCHES" {
		t.Fatalf("MATCHES binding = %+v", b)
	}
	// Optional JOBS input stays unbound.
	if _, bound := plan.Steps[1].Bindings["JOBS"]; bound {
		t.Fatalf("optional JOBS should stay unbound: %+v", plan.Steps[1].Bindings)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenQueryPlan(t *testing.T) {
	tp := New(hrRegistry(t), perfectModel(), nil)
	plan, err := tp.Plan("How many applicants have Python skills?")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Intent != "open_query" {
		t.Fatalf("intent = %s", plan.Intent)
	}
	want := []string{"NL2Q", "SQLEXECUTOR", "QUERYSUMMARIZER"}
	for i, w := range want {
		if plan.Steps[i].Agent != w {
			t.Fatalf("step %d = %s, want %s", i, plan.Steps[i].Agent, w)
		}
	}
	// Chain: SQL flows s1 -> s2, ROWS flow s2 -> s3.
	if b := plan.Steps[1].Bindings["SQL"]; b.FromStep != "s1" {
		t.Fatalf("SQL binding = %+v", b)
	}
	if b := plan.Steps[2].Bindings["ROWS"]; b.FromStep != "s2" {
		t.Fatalf("ROWS binding = %+v", b)
	}
}

func TestUnknownIntentFallsBack(t *testing.T) {
	tp := New(hrRegistry(t), perfectModel(), Templates{
		"job_search": DefaultTemplates()["job_search"],
		"open_query": DefaultTemplates()["open_query"],
	})
	plan, err := tp.Plan("zzz unintelligible gibberish")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Intent != "open_query" {
		t.Fatalf("fallback intent = %s", plan.Intent)
	}
}

func TestPlanRecordsUsage(t *testing.T) {
	reg := hrRegistry(t)
	tp := New(reg, perfectModel(), nil)
	if _, err := tp.Plan("I am looking for a data scientist position"); err != nil {
		t.Fatal(err)
	}
	if reg.UsageCount("PROFILER") != 1 {
		t.Fatalf("usage = %d", reg.UsageCount("PROFILER"))
	}
}

func TestEmptyRegistryFails(t *testing.T) {
	tp := New(registry.NewAgentRegistry(), perfectModel(), nil)
	if _, err := tp.Plan("find me a job"); err == nil {
		t.Fatal("planned against empty registry")
	}
}

func TestReplanPicksAlternative(t *testing.T) {
	tp := New(hrRegistry(t), perfectModel(), nil)
	plan, err := tp.Plan("I am looking for a data scientist position in SF bay area.")
	if err != nil {
		t.Fatal(err)
	}
	np, err := tp.Replan(plan, "s2")
	if err != nil {
		t.Fatal(err)
	}
	if np.Steps[1].Agent == "JOBMATCHER" {
		t.Fatalf("replan kept failed agent: %+v", np.Steps[1])
	}
	if np.Steps[1].Agent != "BACKUP_MATCHER" {
		t.Fatalf("replan chose %s", np.Steps[1].Agent)
	}
	if np.ID == plan.ID {
		t.Fatal("replan must produce a new plan id")
	}
	if _, err := tp.Replan(plan, "nope"); err == nil {
		t.Fatal("replanned unknown step")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	tp := New(hrRegistry(t), perfectModel(), nil)
	plan, err := tp.Plan("I am looking for a data scientist position.")
	if err != nil {
		t.Fatal(err)
	}
	m := plan.ToJSON()
	back, err := FromJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != plan.ID || len(back.Steps) != len(plan.Steps) {
		t.Fatalf("roundtrip = %+v", back)
	}
	if back.Steps[1].Bindings["JOBSEEKER_DATA"].FromStep != "s1" {
		t.Fatalf("bindings lost: %+v", back.Steps[1].Bindings)
	}
}

func TestPlanStringRendering(t *testing.T) {
	tp := New(hrRegistry(t), perfectModel(), nil)
	plan, _ := tp.Plan("I am looking for a data scientist position.")
	s := plan.String()
	for _, want := range []string{"PROFILER", "USER.TEXT via criteria", "s2.MATCHES"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestPlannerAsAgent(t *testing.T) {
	store := streams.NewStore()
	defer store.Close()
	tp := New(hrRegistry(t), perfectModel(), nil)
	inst, err := agent.Attach(store, "session:p", AsAgent(tp), agent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	out := store.Subscribe(streams.Filter{IncludeTags: []string{"plan"}}, false)
	defer out.Cancel()

	if _, err := store.Publish(streams.Message{
		Stream: "session:p:user", Session: "session:p", Kind: streams.Data,
		Sender: "user", Tags: []string{"user", "utterance"},
		Payload: "I am looking for a data scientist position in SF bay area.",
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-out.C():
		p, err := FromJSON(msg.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Steps) != 3 || p.Steps[0].Agent != "PROFILER" {
			t.Fatalf("plan = %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no plan emitted")
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	bad := []*Plan{
		{},
		{Steps: []Step{{ID: "", Agent: "A"}}},
		{Steps: []Step{{ID: "s1", Agent: ""}}},
		{Steps: []Step{{ID: "s1", Agent: "A"}, {ID: "s1", Agent: "B"}}},
		{Steps: []Step{{ID: "s1", Agent: "A", Bindings: map[string]Binding{"X": {FromStep: "s9"}}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
}

func TestEmitPlan(t *testing.T) {
	store := streams.NewStore()
	defer store.Close()
	if _, err := store.CreateStream(agent.ControlStream("s"), streams.StreamInfo{Session: "s"}); err != nil {
		t.Fatal(err)
	}
	p := &Plan{ID: "p1", Steps: []Step{{ID: "s1", Agent: "A"}}}
	if err := EmitPlan(store, "s", p); err != nil {
		t.Fatal(err)
	}
	msgs, _ := store.ReadAll(agent.ControlStream("s"))
	if len(msgs) != 1 || msgs[0].Directive.Op != streams.OpPlan {
		t.Fatalf("emitted = %+v", msgs)
	}
}
