package streams

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// walRecord is one line of the write-ahead log.
type walRecord struct {
	// Type is "create" for stream creation or "append" for a message.
	Type   string      `json:"t"`
	Stream *StreamInfo `json:"stream,omitempty"`
	Msg    *Message    `json:"msg,omitempty"`
}

// walWriter appends JSON-line records to a file.
type walWriter struct {
	mu  sync.Mutex
	f   *os.File
	buf *bufio.Writer
	enc *json.Encoder
}

func newWALWriter(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("streams: open wal: %w", err)
	}
	buf := bufio.NewWriterSize(f, 1<<16)
	return &walWriter{f: f, buf: buf, enc: json.NewEncoder(buf)}, nil
}

func (w *walWriter) writeCreate(info StreamInfo) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(walRecord{Type: "create", Stream: &info})
}

func (w *walWriter) writeAppend(msg Message) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(walRecord{Type: "append", Msg: &msg})
}

// Close flushes buffered records and closes the file.
func (w *walWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Sync flushes buffered records to the OS.
func (w *walWriter) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.buf.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Sync flushes the store's WAL, if persistence is enabled.
func (s *Store) Sync() error {
	s.mu.RLock()
	w := s.wal
	s.mu.RUnlock()
	if w == nil {
		return nil
	}
	return w.Sync()
}

// recover replays a WAL file into the store. A missing file is not an error
// (fresh store). Partially written trailing lines are tolerated, matching
// crash-recovery semantics.
func (s *Store) recover(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("streams: open wal for recovery: %w", err)
	}
	defer f.Close()

	dec := json.NewDecoder(bufio.NewReaderSize(f, 1<<16))
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			// A torn trailing record is expected after a crash; stop replay.
			var syn *json.SyntaxError
			if errors.As(err, &syn) {
				return nil
			}
			return fmt.Errorf("streams: wal replay: %w", err)
		}
		switch rec.Type {
		case "create":
			if rec.Stream == nil {
				continue
			}
			info := *rec.Stream
			st := &stream{info: info}
			st.info.Len = 0
			st.info.Closed = false
			if _, ok := s.streams[info.ID]; ok {
				continue
			}
			s.streams[info.ID] = st
			s.order = append(s.order, info.ID)
			s.stats.StreamsCreated++
			if info.CreatedTS > s.clock.Load() {
				s.clock.Store(info.CreatedTS)
			}
		case "append":
			if rec.Msg == nil {
				continue
			}
			m := *rec.Msg
			st, ok := s.streams[m.Stream]
			if !ok {
				continue
			}
			m.Seq = st.info.Len
			st.msgs = append(st.msgs, m)
			st.info.Len++
			if m.IsEOS() {
				st.info.Closed = true
			}
			s.stats.MessagesAppended++
			if m.TS > s.clock.Load() {
				s.clock.Store(m.TS)
			}
			var n int64
			if _, err := fmt.Sscanf(m.ID, "m%d", &n); err == nil && n > s.nextMsg.Load() {
				s.nextMsg.Store(n)
			}
		}
	}
}
