package experiments

import (
	"fmt"
	"time"

	"blueprint/internal/budget"
	"blueprint/internal/dataplan"
	"blueprint/internal/graphstore"
	"blueprint/internal/llm"
	"blueprint/internal/optimizer"
	"blueprint/internal/registry"
	"blueprint/internal/workload"
)

// Fig7DataPlan reproduces the paper's central data-planning result: the
// direct NL2Q strategy cannot scope "SF bay area" (regional recall
// collapses), while the decomposed plan — Q2NL -> LLM cities, taxonomy
// title expansion, select — recovers it, at higher cost. The sweep over LLM
// accuracies shows decomposed recall degrading gracefully with source
// quality.
func Fig7DataPlan(seed int64) (*Table, error) {
	ent, err := workload.Build(seed, workload.SmallScale())
	if err != nil {
		return nil, err
	}
	dataReg := registry.NewDataRegistry()
	if err := dataReg.ImportRelational("hr", "HR database", "conn", ent.DB); err != nil {
		return nil, err
	}
	if err := dataReg.ImportGraph("taxonomy", "title taxonomy", "conn", ent.Graph); err != nil {
		return nil, err
	}
	if err := dataReg.RegisterLLMSource("gpt-sim", "general knowledge", registry.QoSProfile{
		CostPerCall: 0.01, Latency: 50 * time.Millisecond, Accuracy: 0.9,
	}); err != nil {
		return nil, err
	}
	planner := dataplan.NewPlanner(dataReg, ent.KB)
	tgt, err := dataplan.BuildTarget(ent.DB, "jobs")
	if err != nil {
		return nil, err
	}
	asset, err := dataReg.Get("hr.jobs")
	if err != nil {
		return nil, err
	}
	bind := dataplan.TableBinding{Asset: asset, Target: tgt}
	const query = "data scientist position in SF bay area"

	recall := func(rows []map[string]any) float64 {
		if len(ent.BayAreaDSJobIDs) == 0 {
			return 0
		}
		hit := 0
		for _, r := range rows {
			if id, ok := r["id"].(int64); ok && ent.BayAreaDSJobIDs[id] {
				hit++
			}
		}
		return float64(hit) / float64(len(ent.BayAreaDSJobIDs))
	}
	precision := func(rows []map[string]any) float64 {
		if len(rows) == 0 {
			return 0
		}
		hit := 0
		for _, r := range rows {
			if id, ok := r["id"].(int64); ok && ent.BayAreaDSJobIDs[id] {
				hit++
			}
		}
		return float64(hit) / float64(len(rows))
	}

	t := &Table{ID: "F7", Title: "Data plan: direct NL2Q vs Fig. 7 decomposition"}
	// Average each configuration over several model seeds: SimLLM's
	// degradation is deterministic per (seed, prompt), so the sweep needs a
	// seed population to expose the average behaviour.
	const trials = 20
	for _, cfg := range []struct {
		label    string
		accuracy float64
		strategy string
	}{
		{"direct", 1.0, "direct"},
		{"decomposed acc=1.0", 1.0, "decomposed"},
		{"decomposed acc=0.9", 0.9, "decomposed"},
		{"decomposed acc=0.7", 0.7, "decomposed"},
	} {
		var sumRecall, sumPrecision, sumCost, sumRows float64
		var sumLatency time.Duration
		for trial := 0; trial < trials; trial++ {
			model := llm.New(llm.Config{
				Name: "f7-llm", Tier: llm.TierLarge, CostPer1K: 0.01,
				BaseLatency: time.Millisecond, Accuracy: cfg.accuracy, Seed: seed + int64(trial),
			}, ent.KB)
			exec := dataplan.NewExecutor(dataplan.Sources{
				Relational: ent.DB,
				Graphs:     map[string]*graphstore.Graph{"taxonomy": ent.Graph},
				Model:      model,
			})
			var plan *dataplan.Plan
			if cfg.strategy == "direct" {
				plan, err = planner.PlanDirect(query, bind)
			} else {
				needs := planner.Analyze(query, bind)
				plan, err = planner.PlanDecomposed(query, bind, needs, "taxonomy")
			}
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := exec.Execute(plan)
			if err != nil {
				return nil, err
			}
			sumLatency += time.Since(start)
			sumRecall += recall(res.Rows)
			sumPrecision += precision(res.Rows)
			sumCost += res.Usage.Cost
			sumRows += float64(len(res.Rows))
		}
		t.Rows = append(t.Rows, Row{Series: cfg.label, Metrics: []Metric{
			{"rows", fmt.Sprintf("%.1f", sumRows/trials)},
			{"recall", pct(sumRecall / trials)},
			{"precision", pct(sumPrecision / trials)},
			{"cost", dollars(sumCost / trials)},
			{"latency", ms(sumLatency / trials)},
		}})
	}
	t.Notes = append(t.Notes,
		"direct matches title only — regional recall collapses exactly as §V-G predicts",
		"decomposed recall degrades gracefully as the LLM source drops cities (simulated accuracy)")
	return t, nil
}

// AblationOptimizer (§IV) shows multi-objective model-tier selection and the
// strategy crossover on data plans.
func AblationOptimizer(seed int64) (*Table, error) {
	t := &Table{ID: "A2", Title: "Optimizer ablation (§IV): objectives drive tier and strategy choice"}

	// Model-tier selection across objectives and task sizes.
	configs := llm.Presets(seed)
	for _, mode := range []struct {
		label string
		obj   optimizer.Objectives
		lim   budget.Limits
	}{
		{"cheapest", optimizer.CheapestObjectives(), budget.Limits{}},
		{"accuracy-first", optimizer.BestObjectives(), budget.Limits{}},
		{"balanced", optimizer.DefaultObjectives(), budget.Limits{}},
		{"acc>=0.85,cost<=$0.005", optimizer.DefaultObjectives(), budget.Limits{MinAccuracy: 0.85, MaxCost: 0.005}},
	} {
		cfg, err := optimizer.ChooseModelTier(configs, 1000, mode.obj, mode.lim)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Series: "tier " + mode.label, Metrics: []Metric{
			{"chosen", string(cfg.Tier)},
			{"cost/1k", dollars(cfg.CostPer1K)},
			{"accuracy", fmt.Sprintf("%.2f", cfg.Accuracy)},
		}})
	}

	// Pareto frontier over the tiers at 1000 tokens.
	cands := make([]optimizer.Candidate, 0, len(configs))
	for _, cfg := range configs {
		cands = append(cands, optimizer.Candidate{
			ID: cfg.Name, Cost: cfg.CostPer1K, Latency: cfg.BaseLatency, Accuracy: cfg.Accuracy,
		})
	}
	front := optimizer.Pareto(cands)
	names := make([]string, len(front))
	for i, c := range front {
		names[i] = c.ID
	}
	t.Rows = append(t.Rows, Row{Series: "pareto frontier", Metrics: []Metric{
		{"size", fmt.Sprint(len(front))},
		{"members", fmt.Sprint(names)},
	}})

	// Data-plan strategy crossover (uses Fig. 7 estimates).
	direct := &dataplan.Plan{Strategy: "direct", Est: dataplan.Estimate{Cost: 0.0001, Latency: time.Millisecond, Accuracy: 0.3}}
	decomposed := &dataplan.Plan{Strategy: "decomposed", Est: dataplan.Estimate{Cost: 0.0102, Latency: 52 * time.Millisecond, Accuracy: 0.95}}
	for _, mode := range []struct {
		label string
		obj   optimizer.Objectives
	}{
		{"cheapest", optimizer.CheapestObjectives()},
		{"accuracy-first", optimizer.BestObjectives()},
	} {
		chosen, err := optimizer.ChooseDataPlan([]*dataplan.Plan{direct, decomposed}, mode.obj, budget.Limits{})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Series: "plan " + mode.label, Metrics: []Metric{
			{"chosen", chosen.Strategy},
		}})
	}
	return t, nil
}
