// Data Planner (Fig. 7): shows the paper's central data-planning example.
// The query "data scientist position in SF bay area" cannot be answered by
// direct NL2Q — "SF bay area" matches no city value — so the planner
// decomposes it: an injected Q2NL operator asks the LLM source for the
// region's cities, the taxonomy graph expands the title, and a select
// operator recombines them. This example runs both strategies, prints both
// plans, and reports recall against the generated ground truth, then lets
// the optimizer choose a strategy under different objectives.
package main

import (
	"fmt"
	"log"

	"blueprint"
	"blueprint/internal/budget"
	"blueprint/internal/dataplan"
	"blueprint/internal/graphstore"
	"blueprint/internal/optimizer"
)

func main() {
	sys, err := blueprint.New(blueprint.Config{ModelAccuracy: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const query = "data scientist position in SF bay area"
	ent := sys.Enterprise

	tgt, err := dataplan.BuildTarget(ent.DB, "jobs")
	if err != nil {
		log.Fatal(err)
	}
	asset, err := sys.DataRegistry.Get("hr.jobs")
	if err != nil {
		log.Fatal(err)
	}
	bind := dataplan.TableBinding{Asset: asset, Target: tgt}
	exec := dataplan.NewExecutor(dataplan.Sources{
		Relational: ent.DB,
		Graphs:     map[string]*graphstore.Graph{"taxonomy": ent.Graph},
		Model:      sys.Model,
	})

	recall := func(rows []map[string]any) float64 {
		hit := 0
		for _, r := range rows {
			if id, ok := r["id"].(int64); ok && ent.BayAreaDSJobIDs[id] {
				hit++
			}
		}
		if len(ent.BayAreaDSJobIDs) == 0 {
			return 0
		}
		return float64(hit) / float64(len(ent.BayAreaDSJobIDs))
	}

	// Strategy 1: direct NL2Q.
	direct, err := sys.DataPlanner.PlanDirect(query, bind)
	if err != nil {
		log.Fatal(err)
	}
	dRes, err := exec.Execute(direct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== direct plan ==")
	fmt.Println(direct)
	fmt.Printf("rows=%d recall=%.2f cost=$%.5f\n\n", len(dRes.Rows), recall(dRes.Rows), dRes.Usage.Cost)

	// Strategy 2: decomposed (Fig. 7).
	needs := sys.DataPlanner.Analyze(query, bind)
	decomposed, err := sys.DataPlanner.PlanDecomposed(query, bind, needs, "taxonomy")
	if err != nil {
		log.Fatal(err)
	}
	cRes, err := exec.Execute(decomposed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== decomposed plan (Fig. 7) ==")
	fmt.Println(decomposed)
	fmt.Printf("rows=%d recall=%.2f cost=$%.5f\n\n", len(cRes.Rows), recall(cRes.Rows), cRes.Usage.Cost)
	for _, line := range cRes.Trace {
		fmt.Println("  trace:", line)
	}

	// The optimizer chooses between the strategies under objectives.
	fmt.Println("\n== optimizer choices ==")
	for _, mode := range []struct {
		name string
		obj  optimizer.Objectives
	}{
		{"cheapest", optimizer.CheapestObjectives()},
		{"most accurate", optimizer.BestObjectives()},
		{"balanced", optimizer.DefaultObjectives()},
	} {
		chosen, err := optimizer.ChooseDataPlan([]*dataplan.Plan{direct, decomposed}, mode.obj, budget.Limits{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s -> %s (est cost $%.5f, accuracy %.2f)\n",
			mode.name, chosen.Strategy, chosen.Est.Cost, chosen.Est.Accuracy)
	}
}
