package nlq

// NL answer formatting: query results flow into user-facing summaries
// through fmt's %v by default, which renders float aggregates with full
// precision ("avg_salary:185333.33333333334"). These helpers render rows
// for prose: floats to two decimals, keys in stable sorted order. They only
// affect display strings — the underlying result values keep full precision.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FormatValue renders one value for an NL answer. Floats are rounded to two
// decimal places (dropping the decimals entirely when they round to .00);
// everything else renders as %v.
func FormatValue(v any) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	default:
		return fmt.Sprintf("%v", x)
	}
}

func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', 2, 64)
	return strings.TrimSuffix(s, ".00")
}

// FormatRow renders a column->value map as "col: val, col: val" with sorted
// keys, suitable for embedding query rows in summary prose.
func FormatRow(row map[string]any) string {
	keys := make([]string, 0, len(row))
	for k := range row {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString(": ")
		b.WriteString(FormatValue(row[k]))
	}
	return b.String()
}
