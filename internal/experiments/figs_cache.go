package experiments

import (
	"fmt"
	"time"

	"blueprint/internal/relational"
	"blueprint/internal/workload"
)

// AblationPlanCache measures the relational engine's prepared-statement /
// plan cache on the blueprint's repeated-query hot path: the templated
// point, histogram and ranking queries that the NLQ->SQL and agent flows
// fire on every conversational turn. It runs the same query mix with the
// statement cache disabled (re-parse baseline) and enabled, and reports
// throughput, per-query latency, the cache hit rate and the speedup.
func AblationPlanCache(seed int64) (*Table, error) {
	ent, err := workload.Build(seed, workload.SmallScale())
	if err != nil {
		return nil, err
	}
	db := ent.DB

	// The suite's templated texts, parameterized per turn — exactly the
	// shapes internal/hragents prepares.
	queries := []struct {
		sql string
		arg func(i int) any
	}{
		{`SELECT title, city, salary FROM jobs WHERE id = ?`, func(i int) any { return 1 + i%100 }},
		{`SELECT status, COUNT(*) AS n FROM applications WHERE job_id = ? GROUP BY status ORDER BY status`, func(i int) any { return 1 + i%100 }},
		{`SELECT profile_id, status, score, years FROM applications WHERE job_id = ? ORDER BY score DESC LIMIT 10`, func(i int) any { return 1 + i%100 }},
		{`SELECT id, title FROM jobs WHERE city = ? LIMIT 10`, func(i int) any { return "San Francisco" }},
	}
	const iters = 2000

	runMix := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			q := queries[i%len(queries)]
			if _, err := db.Query(q.sql, q.arg(i)); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	// Baseline: cache off, every call re-lexes and re-parses.
	db.SetStmtCacheCapacity(0)
	db.ResetCacheStats()
	uncached, err := runMix()
	if err != nil {
		return nil, err
	}

	// Cached: default capacity, same mix.
	db.SetStmtCacheCapacity(relational.DefaultStmtCacheCapacity)
	db.ResetCacheStats()
	cached, err := runMix()
	if err != nil {
		return nil, err
	}
	stats := db.CacheStats()

	qps := func(d time.Duration) string {
		return fmt.Sprintf("%.0f", float64(iters)/d.Seconds())
	}
	perQuery := func(d time.Duration) string {
		return us(d / iters)
	}

	t := &Table{ID: "A4", Title: "Plan cache: repeated-query throughput with and without the statement cache"}
	t.Rows = append(t.Rows, Row{Series: "uncached", Metrics: []Metric{
		{Name: "queries", Value: fmt.Sprint(iters)},
		{Name: "qps", Value: qps(uncached)},
		{Name: "per_query", Value: perQuery(uncached)},
	}})
	t.Rows = append(t.Rows, Row{Series: "cached", Metrics: []Metric{
		{Name: "queries", Value: fmt.Sprint(iters)},
		{Name: "qps", Value: qps(cached)},
		{Name: "per_query", Value: perQuery(cached)},
		{Name: "hits", Value: fmt.Sprint(stats.Hits)},
		{Name: "misses", Value: fmt.Sprint(stats.Misses)},
		{Name: "hit_rate", Value: pct(stats.HitRate())},
	}})
	t.Notes = append(t.Notes,
		fmt.Sprintf("speedup %.2fx on the agent-suite query mix (parse amortized by the LRU statement cache)",
			uncached.Seconds()/cached.Seconds()),
		"DDL (CREATE/DROP TABLE, CREATE INDEX) flushes the cache; counters via relational.DB.CacheStats()")
	return t, nil
}
