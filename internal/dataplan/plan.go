// Package dataplan implements the blueprint's data planner (§V-G, Fig. 7):
// given a natural-language data need, it produces a declarative plan — a DAG
// of data operators over multi-modal sources (relational tables, document
// collections, graphs, and LLMs-as-data-sources) — then executes it.
//
// The planner supports the paper's two strategies side by side: the *direct*
// strategy compiles the whole query with NL2Q against one discovered table,
// while the *decomposed* strategy breaks the query into sub-tasks (locate
// cities in "SF bay area" via an LLM source through an injected Q2NL
// operator; expand "data scientist" through the title taxonomy graph) and
// recombines them with select/join operators — exactly the Fig. 7 plan. The
// optimizer chooses between them under QoS constraints.
package dataplan

import (
	"fmt"
	"strings"
	"time"
)

// OpKind enumerates data-plan operators. The set deliberately extends the
// relational algebra with discovery, text and LLM operators (§V-G: "several
// new operators, beyond established relational operators, need to be
// introduced").
type OpKind string

// Operator kinds.
const (
	// OpConst yields a literal value.
	OpConst OpKind = "const"
	// OpNL2Q compiles natural language to SQL against a table.
	OpNL2Q OpKind = "nl2q"
	// OpSQL executes SQL (possibly templated with inputs) on the relational
	// engine.
	OpSQL OpKind = "sql"
	// OpLLM asks an LLM data source a list-valued knowledge question,
	// produced by an injected Q2NL operator.
	OpLLM OpKind = "llm"
	// OpGraphExpand expands an entity through a graph source (taxonomy).
	OpGraphExpand OpKind = "graph_expand"
	// OpExtract pulls a span from text per an instruction (LLM-backed).
	OpExtract OpKind = "extract"
	// OpDocFind queries a document collection.
	OpDocFind OpKind = "docfind"
	// OpSelectIn filters rows where a column's value is in a list produced
	// by upstream operators.
	OpSelectIn OpKind = "select_in"
	// OpUnion merges two string lists.
	OpUnion OpKind = "union"
	// OpSummarize condenses upstream rows/text (LLM-backed).
	OpSummarize OpKind = "summarize"
)

// Node is one operator instance in a plan DAG.
type Node struct {
	// ID names the node within the plan.
	ID string `json:"id"`
	// Kind selects the operator.
	Kind OpKind `json:"kind"`
	// Args configure the operator (operator-specific keys, documented on
	// the executor methods).
	Args map[string]any `json:"args,omitempty"`
	// DependsOn lists upstream node ids whose outputs this node consumes.
	DependsOn []string `json:"depends_on,omitempty"`
}

// Estimate is the optimizer's projection for a plan (§V-G optimization).
type Estimate struct {
	Cost     float64       `json:"cost"`
	Latency  time.Duration `json:"latency"`
	Accuracy float64       `json:"accuracy"`
}

// Plan is a declarative data plan: a DAG of operators with one output node.
type Plan struct {
	// Query is the originating natural-language request.
	Query string `json:"query"`
	// Strategy labels how the plan was produced ("direct", "decomposed").
	Strategy string `json:"strategy"`
	// Nodes are the operators, in insertion (topological) order.
	Nodes []Node `json:"nodes"`
	// Output is the id of the node whose result is the plan result.
	Output string `json:"output"`
	// Est is the pre-execution projection.
	Est Estimate `json:"est"`
	// Explanation narrates planning decisions for transparency.
	Explanation []string `json:"explanation,omitempty"`
}

// Node returns the node with the given id.
func (p *Plan) Node(id string) (Node, bool) {
	for _, n := range p.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Validate checks DAG well-formedness: unique ids, known dependencies, an
// output node, and acyclicity (insertion order must be topological).
func (p *Plan) Validate() error {
	if p.Output == "" {
		return fmt.Errorf("dataplan: plan has no output node")
	}
	seen := map[string]bool{}
	for _, n := range p.Nodes {
		if n.ID == "" {
			return fmt.Errorf("dataplan: node with empty id")
		}
		if seen[n.ID] {
			return fmt.Errorf("dataplan: duplicate node id %q", n.ID)
		}
		for _, dep := range n.DependsOn {
			if !seen[dep] {
				return fmt.Errorf("dataplan: node %q depends on %q which is not defined earlier (cycle or typo)", n.ID, dep)
			}
		}
		seen[n.ID] = true
	}
	if !seen[p.Output] {
		return fmt.Errorf("dataplan: output node %q not defined", p.Output)
	}
	return nil
}

// String renders the plan as an operator pipeline, for EXPLAIN-style output.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan[%s] %q\n", p.Strategy, p.Query)
	for _, n := range p.Nodes {
		fmt.Fprintf(&b, "  %s: %s", n.ID, n.Kind)
		if len(n.DependsOn) > 0 {
			fmt.Fprintf(&b, " <- %s", strings.Join(n.DependsOn, ", "))
		}
		if sql, ok := n.Args["sql"].(string); ok {
			fmt.Fprintf(&b, " {%s}", sql)
		}
		if prompt, ok := n.Args["prompt"].(string); ok {
			fmt.Fprintf(&b, " {%s}", prompt)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  output: %s (est cost=$%.5f latency=%s accuracy=%.2f)", p.Output, p.Est.Cost, p.Est.Latency, p.Est.Accuracy)
	return b.String()
}
