// Quickstart: boot a blueprint System, open a session, and run one
// conversational request end to end through the full architecture —
// intent classification, NL2Q, SQL execution and summarization, all
// orchestrated over streams. The second half demonstrates durability:
// reopening the system over the same data directory recovers everything
// warm, so the repeated question is answered from the memo store without
// executing a single agent.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"blueprint"
)

func main() {
	sys, err := blueprint.New(blueprint.Config{ModelAccuracy: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sess, err := sys.StartSession("")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	questions := []string{
		"How many jobs are in San Francisco?",
		"average salary per city",
		"Summarize the applicants for job 12",
	}
	for _, q := range questions {
		fmt.Printf("user> %s\n", q)
		answer, err := sess.Ask(q, 10*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("system> %s\n\n", answer)
	}

	// The entire orchestration is observable on the streams.
	fmt.Printf("session flow: %d messages across %d components\n",
		len(sess.Flow()), len(sys.AgentRegistry.List()))

	// Durability: the same system with Config.DataDir set persists every
	// stateful layer — tables, registries, memoized step results, stream
	// history — through one shared WAL + snapshot engine. Close() flushes
	// a final snapshot; reopening recovers warm.
	dir, err := os.MkdirTemp("", "blueprint-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	durable, err := blueprint.New(blueprint.Config{ModelAccuracy: 1.0, DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	dsess, err := durable.StartSession("")
	if err != nil {
		log.Fatal(err)
	}
	const question = "How many jobs are in San Francisco?"
	cold, _, err := dsess.ExecuteUtterance(question)
	if err != nil {
		log.Fatal(err)
	}
	durable.Close() // graceful: final snapshot + clean log close

	reopened, err := blueprint.New(blueprint.Config{ModelAccuracy: 1.0, DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	rsess, err := reopened.StartSession("")
	if err != nil {
		log.Fatal(err)
	}
	warm, _, err := rsess.ExecuteUtterance(question)
	if err != nil {
		log.Fatal(err)
	}
	cached := 0
	for _, sr := range warm.Steps {
		if sr.Cached {
			cached++
		}
	}
	rec := reopened.DurabilityStats().Recovery
	fmt.Printf("\nwarm restart: snapshot_restored=%v recovery=%s memo_restored=%d\n",
		rec.SnapshotRestored, rec.Duration, reopened.MemoStats().Restored)
	fmt.Printf("repeated ask after restart: %d/%d steps served from memo (cold run executed %d)\n",
		cached, len(warm.Steps), len(cold.Steps))
}
