// Package session implements the blueprint's sessions (§V-E): the context
// and scope in which agents collaborate. A session owns a family of streams
// (user input, control, session signals, display output), tracks the agents
// added to it — explicitly by the user, via configuration, or by the task
// planner — and supports hierarchical sub-scopes such as SESSION:ID:PROFILE,
// analogous to scoping in programming languages.
package session

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/streams"
)

// Common errors.
var (
	ErrSessionExists   = errors.New("session: session already exists")
	ErrSessionNotFound = errors.New("session: session not found")
	ErrAgentActive     = errors.New("session: agent already active")
	ErrAgentInactive   = errors.New("session: agent not active")
	// ErrNoDisplay is returned by AwaitDisplay when no matching display
	// output arrives before the deadline.
	ErrNoDisplay = errors.New("session: no display output before deadline")
)

// UserStream is the stream carrying user utterances for a session.
func UserStream(id string) string { return id + ":user" }

// EventStream carries UI events (§VI: "events from UI are processed just
// like any other input through streams").
func EventStream(id string) string { return id + ":events" }

// Manager creates and tracks sessions over one stream store.
type Manager struct {
	mu       sync.Mutex
	store    *streams.Store
	factory  *agent.Factory
	sessions map[string]*Session
	nextID   int
}

// NewManager creates a session manager. The factory may be nil if agents
// are attached directly rather than spawned by name.
func NewManager(store *streams.Store, factory *agent.Factory) *Manager {
	return &Manager{store: store, factory: factory, sessions: make(map[string]*Session)}
}

// Create opens a new session. An empty id allocates "session:<n>".
func (m *Manager) Create(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == "" {
		m.nextID++
		id = fmt.Sprintf("session:%d", m.nextID)
	}
	if _, ok := m.sessions[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionExists, id)
	}
	s := &Session{
		ID:      id,
		store:   m.store,
		factory: m.factory,
		mgr:     m,
		agents:  make(map[string]*agent.Instance),
	}
	for _, stream := range []string{
		UserStream(id), EventStream(id),
		agent.ControlStream(id), agent.SessionStream(id), agent.DisplayStream(id),
	} {
		if _, err := m.store.EnsureStream(stream, streams.StreamInfo{Session: id, Creator: "session-manager"}); err != nil {
			return nil, err
		}
	}
	m.sessions[id] = s
	return s, nil
}

// Get returns an open session.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionNotFound, id)
	}
	return s, nil
}

// List returns open session ids, sorted.
func (m *Manager) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (m *Manager) remove(id string) {
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
}

// Session is one collaborative context.
type Session struct {
	// ID is the session scope identifier.
	ID string

	store   *streams.Store
	factory *agent.Factory
	mgr     *Manager

	mu     sync.Mutex
	agents map[string]*agent.Instance
	subs   []*Session
	closed bool
}

// Store exposes the underlying stream store.
func (s *Session) Store() *streams.Store { return s.store }

// Extend opens a nested sub-scope session (e.g. profile collection grouped
// as SESSION:ID:PROFILE, §V-E). The child shares the store; closing the
// parent closes its children.
func (s *Session) Extend(name string) (*Session, error) {
	child, err := s.mgr.Create(s.ID + ":" + name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.subs = append(s.subs, child)
	s.mu.Unlock()
	return child, nil
}

// AddAgent attaches a pre-built agent to the session and announces
// ADD_AGENT on the session stream.
func (s *Session) AddAgent(a *agent.Agent, opts agent.Options) (*agent.Instance, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrSessionNotFound, s.ID)
	}
	if _, ok := s.agents[a.Spec.Name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAgentActive, a.Spec.Name)
	}
	s.mu.Unlock()

	inst, err := agent.Attach(s.store, s.ID, a, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.agents[a.Spec.Name] = inst
	s.mu.Unlock()
	_, _ = s.store.Append(streams.Message{
		Stream: agent.SessionStream(s.ID), Kind: streams.Control, Sender: "session-manager",
		Directive: &streams.Directive{Op: streams.OpAddAgent, Agent: a.Spec.Name},
	})
	return inst, nil
}

// SpawnAgent builds the named agent from the factory and adds it.
func (s *Session) SpawnAgent(name string, opts agent.Options) (*agent.Instance, error) {
	if s.factory == nil {
		return nil, errors.New("session: no factory configured")
	}
	a, err := s.factory.Build(name)
	if err != nil {
		return nil, err
	}
	return s.AddAgent(a, opts)
}

// RemoveAgent stops an active agent and announces REMOVE_AGENT.
func (s *Session) RemoveAgent(name string) error {
	s.mu.Lock()
	inst, ok := s.agents[name]
	if ok {
		delete(s.agents, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrAgentInactive, name)
	}
	inst.Stop()
	_, _ = s.store.Append(streams.Message{
		Stream: agent.SessionStream(s.ID), Kind: streams.Control, Sender: "session-manager",
		Directive: &streams.Directive{Op: streams.OpRemoveAgent, Agent: name},
	})
	return nil
}

// Agents returns the names of active agents, sorted.
func (s *Session) Agents() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.agents))
	for n := range s.agents {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Agent returns the active instance by name.
func (s *Session) Agent(name string) (*agent.Instance, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.agents[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrAgentInactive, name)
	}
	return inst, nil
}

// PostUserText publishes a user utterance to the session's user stream,
// tagged "user" and "utterance".
func (s *Session) PostUserText(text string) (streams.Message, error) {
	return s.store.Append(streams.Message{
		Stream: UserStream(s.ID), Session: s.ID, Kind: streams.Data,
		Sender: "user", Tags: []string{"user", "utterance"}, Payload: text,
	})
}

// PostUserEvent publishes a UI event (click, form submit) to the session's
// event stream (Fig. 9 step 1).
func (s *Session) PostUserEvent(event map[string]any) (streams.Message, error) {
	return s.store.Append(streams.Message{
		Stream: EventStream(s.ID), Session: s.ID, Kind: streams.Event,
		Sender: "user", Tags: []string{"ui", "event"}, Payload: event,
	})
}

// Display returns the user-facing outputs rendered so far (the display
// stream payloads, in order).
func (s *Session) Display() []string {
	msgs, err := s.store.ReadAll(agent.DisplayStream(s.ID))
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(msgs))
	for _, m := range msgs {
		out = append(out, m.PayloadString())
	}
	return out
}

// AwaitDisplay blocks until the display stream carries a message at index
// >= from whose payload contains substr (empty matches anything), returning
// its payload. The wait is event-driven: a streams subscription (with
// replay, so outputs that raced ahead are not missed) delivers display
// messages as they are appended — no polling, no sleeps — which is what
// keeps multi-session request/response throughput bound by the hardware
// rather than a poll interval. ErrNoDisplay is returned on timeout.
func (s *Session) AwaitDisplay(from int, substr string, timeout time.Duration) (string, error) {
	sub := s.store.Subscribe(streams.Filter{
		Streams: []string{agent.DisplayStream(s.ID)},
	}, true)
	defer sub.Cancel()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	idx := 0
	for {
		select {
		case msg, ok := <-sub.C():
			if !ok {
				return "", fmt.Errorf("%w: %s (stream closed)", ErrNoDisplay, s.ID)
			}
			i := idx
			idx++
			if i < from {
				continue
			}
			if text := msg.PayloadString(); substr == "" || strings.Contains(text, substr) {
				return text, nil
			}
		case <-timer.C:
			return "", fmt.Errorf("%w: %s after %s", ErrNoDisplay, s.ID, timeout)
		}
	}
}

// History returns every message in this session scope (including
// sub-scopes), in global order — the paper's observability story.
func (s *Session) History() []streams.Message {
	return s.store.History(s.ID)
}

// Members reconstructs agent membership from the session stream's
// ENTER/EXIT signals: the authoritative, replayable record (§V-E).
func (s *Session) Members() []string {
	msgs, err := s.store.ReadAll(agent.SessionStream(s.ID))
	if err != nil {
		return nil
	}
	active := map[string]bool{}
	for _, m := range msgs {
		if m.Directive == nil {
			continue
		}
		switch m.Directive.Op {
		case streams.OpEnterSession:
			active[m.Directive.Agent] = true
		case streams.OpExitSession:
			delete(active, m.Directive.Agent)
		}
	}
	out := make([]string, 0, len(active))
	for n := range active {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close stops all agents (children first) and removes the session from its
// manager. Closing twice is a no-op.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	subs := s.subs
	s.subs = nil
	agents := make([]*agent.Instance, 0, len(s.agents))
	for _, inst := range s.agents {
		agents = append(agents, inst)
	}
	s.agents = make(map[string]*agent.Instance)
	s.mu.Unlock()

	for _, c := range subs {
		c.Close()
	}
	for _, inst := range agents {
		inst.Stop()
	}
	s.mgr.remove(s.ID)
}
