// Package topk provides a bounded selection heap: keep the k best items of
// a stream without materializing or sorting the full input. It backs the
// relational executor's ORDER BY + LIMIT path and the vector index's k-NN
// selection, which need identical keep-the-best-k semantics over different
// element types and orderings.
package topk

// Heap retains the k items that rank earliest under less. The internal
// slice is a max-heap on "ranks latest", so the root is the worst kept item
// and an incoming item only displaces it when it ranks strictly earlier.
// less must be a strict weak ordering; for deterministic results it should
// break ties totally (e.g. by sequence number or id).
type Heap[T any] struct {
	items []T
	k     int
	less  func(a, b T) bool
}

// New returns a heap keeping the k smallest items under less. k <= 0 keeps
// nothing.
func New[T any](k int, less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{k: k, less: less}
}

// after reports whether a ranks after b.
func (h *Heap[T]) after(a, b T) bool { return h.less(b, a) }

// Offer considers one item for the kept set.
func (h *Heap[T]) Offer(x T) {
	if h.k <= 0 {
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, x)
		i := len(h.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !h.after(h.items[i], h.items[parent]) {
				break
			}
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
		}
		return
	}
	if !h.less(x, h.items[0]) {
		return // ranks at or after the current worst; cannot make the cut
	}
	h.items[0] = x
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		latest := i
		if l < len(h.items) && h.after(h.items[l], h.items[latest]) {
			latest = l
		}
		if r < len(h.items) && h.after(h.items[r], h.items[latest]) {
			latest = r
		}
		if latest == i {
			return
		}
		h.items[i], h.items[latest] = h.items[latest], h.items[i]
		i = latest
	}
}

// Items returns the kept items in heap order (not sorted); callers sort the
// at-most-k survivors themselves.
func (h *Heap[T]) Items() []T { return h.items }
