package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSetGetDelete(t *testing.T) {
	s := NewStore()
	s.Set("a", 1)
	v, ok := s.Get("a")
	if !ok || v != 1 {
		t.Fatalf("get = %v %v", v, ok)
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	s.Delete("a") // no-op
}

func TestGetString(t *testing.T) {
	s := NewStore()
	s.Set("s", "hello")
	s.Set("n", 42)
	if s.GetString("s") != "hello" {
		t.Fatal("string get")
	}
	if s.GetString("n") != "" || s.GetString("missing") != "" {
		t.Fatal("non-string / missing should be empty")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewStoreWithClock(func() time.Time { return now })
	s.SetTTL("x", "v", 10*time.Second)
	if _, ok := s.Get("x"); !ok {
		t.Fatal("fresh key missing")
	}
	now = now.Add(9 * time.Second)
	if _, ok := s.Get("x"); !ok {
		t.Fatal("key expired early")
	}
	now = now.Add(2 * time.Second)
	if _, ok := s.Get("x"); ok {
		t.Fatal("key not expired")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSetClearsTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewStoreWithClock(func() time.Time { return now })
	s.SetTTL("x", "v", time.Second)
	s.Set("x", "v2") // plain Set removes expiry
	now = now.Add(time.Hour)
	if v, ok := s.Get("x"); !ok || v != "v2" {
		t.Fatalf("get = %v %v", v, ok)
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := NewStore()
	if err := s.CompareAndSwap("k", nil, "v1"); err != nil {
		t.Fatal(err)
	}
	if err := s.CompareAndSwap("k", "v1", "v2"); err != nil {
		t.Fatal(err)
	}
	if err := s.CompareAndSwap("k", "stale", "v3"); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("err = %v", err)
	}
	if v, _ := s.Get("k"); v != "v2" {
		t.Fatalf("value = %v", v)
	}
}

func TestCASOnlyOneWinner(t *testing.T) {
	s := NewStore()
	s.Set("counter", 0)
	var wg sync.WaitGroup
	wins := make(chan int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.CompareAndSwap("counter", 0, i+1); err == nil {
				wins <- i
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("CAS winners = %d, want 1", n)
	}
}

func TestKeysPrefix(t *testing.T) {
	s := NewStore()
	s.Set("session:1:a", 1)
	s.Set("session:1:b", 2)
	s.Set("session:2:a", 3)
	s.Set("other", 4)
	keys := s.Keys("session:1:")
	if len(keys) != 2 || keys[0] != "session:1:a" || keys[1] != "session:1:b" {
		t.Fatalf("keys = %v", keys)
	}
	if len(s.Keys("")) != 4 {
		t.Fatalf("all keys = %v", s.Keys(""))
	}
}

func TestKeysSkipExpired(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewStoreWithClock(func() time.Time { return now })
	s.SetTTL("a", 1, time.Second)
	s.Set("b", 2)
	now = now.Add(2 * time.Second)
	keys := s.Keys("")
	if len(keys) != 1 || keys[0] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestConcurrentSharding(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w*200+i)%100)
				s.Set(k, i)
				s.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Fatalf("len = %d", s.Len())
	}
}
