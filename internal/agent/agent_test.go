package agent

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

const testSession = "session:test"

func newStore(t testing.TB) *streams.Store {
	t.Helper()
	s := streams.NewStore()
	t.Cleanup(func() { s.Close() })
	return s
}

// echoAgent returns TEXT -> ECHO uppercased.
func echoAgent() *Agent {
	return New(registry.AgentSpec{
		Name:        "ECHO",
		Description: "uppercases text",
		Inputs:      []registry.ParamSpec{{Name: "TEXT", Type: "text"}},
		Outputs:     []registry.ParamSpec{{Name: "ECHO", Type: "text"}},
		Listen:      registry.ListenRule{IncludeTags: []string{"user"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.001, Accuracy: 0.99},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) {
		text, _ := inv.Inputs["TEXT"].(string)
		return Outputs{Values: map[string]any{"ECHO": strings.ToUpper(text)}}, nil
	})
}

func awaitMessage(t *testing.T, sub *streams.Subscription) streams.Message {
	t.Helper()
	select {
	case m, ok := <-sub.C():
		if !ok {
			t.Fatal("subscription closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for message")
	}
	return streams.Message{}
}

func TestValidate(t *testing.T) {
	if err := (&Agent{}).Validate(); err == nil {
		t.Fatal("empty agent validated")
	}
	a := New(registry.AgentSpec{Name: "X"}, nil)
	if err := a.Validate(); err == nil {
		t.Fatal("nil processor validated")
	}
	dup := New(registry.AgentSpec{
		Name:   "X",
		Inputs: []registry.ParamSpec{{Name: "A"}, {Name: "A"}},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) { return Outputs{}, nil })
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate inputs validated")
	}
	unnamed := New(registry.AgentSpec{
		Name:   "X",
		Inputs: []registry.ParamSpec{{Name: ""}},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) { return Outputs{}, nil })
	if err := unnamed.Validate(); err == nil {
		t.Fatal("unnamed input validated")
	}
}

func TestCentralizedExecution(t *testing.T) {
	store := newStore(t)
	inst, err := Attach(store, testSession, echoAgent(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	out := store.Subscribe(streams.Filter{Streams: []string{"reply"}}, true)
	defer out.Cancel()

	if err := Execute(store, testSession, "ECHO", map[string]any{"TEXT": "hello"}, "reply", "inv1"); err != nil {
		t.Fatal(err)
	}
	m := awaitMessage(t, out)
	if m.Payload != "HELLO" || m.Param != "ECHO" || !m.HasTag("ECHO") {
		t.Fatalf("output = %+v", m)
	}
	d := AwaitDone(store, testSession, "inv1")
	if d == nil || d.Op != OpAgentDone {
		t.Fatalf("done = %+v", d)
	}
	if cost, _ := d.Args["cost"].(float64); cost != 0.001 {
		t.Fatalf("cost = %v", d.Args["cost"])
	}
	st := inst.Stats()
	if st.Invocations != 1 || st.Errors != 0 || st.CostTotal != 0.001 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDecentralizedTagTrigger(t *testing.T) {
	store := newStore(t)
	inst, err := Attach(store, testSession, echoAgent(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	out := store.Subscribe(streams.Filter{Streams: []string{OutputStream(testSession, "ECHO")}}, true)
	defer out.Cancel()

	// Message tagged "user" triggers ECHO (its include rule).
	if _, err := store.Publish(streams.Message{
		Stream: testSession + ":user", Session: testSession,
		Kind: streams.Data, Sender: "user", Tags: []string{"user"}, Payload: "stream trigger",
	}); err != nil {
		t.Fatal(err)
	}
	m := awaitMessage(t, out)
	if m.Payload != "STREAM TRIGGER" {
		t.Fatalf("output = %+v", m)
	}
}

func TestExcludeTagsRespected(t *testing.T) {
	store := newStore(t)
	a := echoAgent()
	a.Spec.Listen.ExcludeTags = []string{"draft"}
	inst, err := Attach(store, testSession, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	out := store.Subscribe(streams.Filter{Streams: []string{OutputStream(testSession, "ECHO")}}, true)
	defer out.Cancel()

	_, _ = store.Publish(streams.Message{Stream: testSession + ":user", Session: testSession, Kind: streams.Data, Sender: "user", Tags: []string{"user", "draft"}, Payload: "skip me"})
	_, _ = store.Publish(streams.Message{Stream: testSession + ":user", Session: testSession, Kind: streams.Data, Sender: "user", Tags: []string{"user"}, Payload: "take me"})

	m := awaitMessage(t, out)
	if m.Payload != "TAKE ME" {
		t.Fatalf("exclude rule ignored: %+v", m)
	}
}

func TestAgentIgnoresOwnOutput(t *testing.T) {
	store := newStore(t)
	// An agent that listens to everything (no include tags): its own outputs
	// must not re-trigger it.
	var count atomic.Int64
	a := New(registry.AgentSpec{
		Name:       "LOOPY",
		Inputs:     []registry.ParamSpec{{Name: "IN"}},
		Outputs:    []registry.ParamSpec{{Name: "OUT"}},
		Properties: map[string]any{"listen_all": true},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) {
		count.Add(1)
		return Outputs{Values: map[string]any{"OUT": "x"}}, nil
	})
	inst, err := Attach(store, testSession, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	_, _ = store.Publish(streams.Message{Stream: testSession + ":in", Session: testSession, Kind: streams.Data, Sender: "user", Payload: "go"})
	time.Sleep(100 * time.Millisecond)
	if got := count.Load(); got != 1 {
		t.Fatalf("invocations = %d, want 1 (self-trigger loop?)", got)
	}
}

func TestPetriZipPairing(t *testing.T) {
	store := newStore(t)
	var mu []string
	done := make(chan string, 8)
	a := New(registry.AgentSpec{
		Name: "JOIN",
		Inputs: []registry.ParamSpec{
			{Name: "A", Type: "text"},
			{Name: "B", Type: "text"},
		},
		Outputs:    []registry.ParamSpec{{Name: "AB", Type: "text"}},
		Properties: map[string]any{"listen_all": true},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) {
		pair := fmt.Sprintf("%v+%v", inv.Inputs["A"], inv.Inputs["B"])
		done <- pair
		return Outputs{Values: map[string]any{"AB": pair}}, nil
	})
	inst, err := Attach(store, testSession, a, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	pub := func(param, val string) {
		_, err := store.Publish(streams.Message{
			Stream: testSession + ":" + param, Session: testSession,
			Kind: streams.Data, Sender: "producer", Param: param, Payload: val,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	pub("A", "a1")
	pub("A", "a2")
	// No firing yet: B empty.
	select {
	case p := <-done:
		t.Fatalf("fired early: %s", p)
	case <-time.After(50 * time.Millisecond):
	}
	pub("B", "b1")
	pub("B", "b2")
	for _, want := range []string{"a1+b1", "a2+b2"} {
		select {
		case got := <-done:
			mu = append(mu, got)
			if got != want {
				t.Fatalf("pairing = %v, want %s", mu, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("missing pair %s (got %v)", want, mu)
		}
	}
}

func TestPetriLatestPairing(t *testing.T) {
	store := newStore(t)
	done := make(chan string, 8)
	a := New(registry.AgentSpec{
		Name: "STICKY",
		Inputs: []registry.ParamSpec{
			{Name: "CFG", Type: "text"},
			{Name: "REQ", Type: "text"},
		},
		Outputs:    []registry.ParamSpec{{Name: "OUT", Type: "text"}},
		Properties: map[string]any{"trigger_policy": "latest", "listen_all": true},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) {
		done <- fmt.Sprintf("%v|%v", inv.Inputs["CFG"], inv.Inputs["REQ"])
		return Outputs{}, nil
	})
	inst, err := Attach(store, testSession, a, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	pub := func(param, val string) {
		if _, err := store.Publish(streams.Message{
			Stream: testSession + ":" + param, Session: testSession,
			Kind: streams.Data, Sender: "producer", Param: param, Payload: val,
		}); err != nil {
			t.Fatal(err)
		}
	}
	pub("CFG", "v1")
	pub("REQ", "r1") // fires v1|r1
	if got := <-done; got != "v1|r1" {
		t.Fatalf("first = %s", got)
	}
	// CFG sticks: another request reuses v1.
	pub("REQ", "r2")
	if got := <-done; got != "v1|r2" {
		t.Fatalf("second = %s", got)
	}
	// Updating CFG fires immediately with the latest REQ.
	pub("CFG", "v2")
	if got := <-done; got != "v2|r2" {
		t.Fatalf("third = %s", got)
	}
}

func TestErrorReporting(t *testing.T) {
	store := newStore(t)
	a := New(registry.AgentSpec{
		Name:    "FAILER",
		Inputs:  []registry.ParamSpec{{Name: "X"}},
		Outputs: []registry.ParamSpec{{Name: "Y"}},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) {
		return Outputs{}, errors.New("boom")
	})
	inst, err := Attach(store, testSession, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	if err := Execute(store, testSession, "FAILER", map[string]any{"X": 1}, "", "inv-err"); err != nil {
		t.Fatal(err)
	}
	d := AwaitDone(store, testSession, "inv-err")
	if d == nil || d.Op != OpAgentError {
		t.Fatalf("directive = %+v", d)
	}
	if msg, _ := d.Args["error"].(string); msg != "boom" {
		t.Fatalf("error = %v", d.Args["error"])
	}
	if st := inst.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOptionalDefaults(t *testing.T) {
	store := newStore(t)
	got := make(chan any, 1)
	a := New(registry.AgentSpec{
		Name: "DEFAULTER",
		Inputs: []registry.ParamSpec{
			{Name: "REQ", Type: "text"},
			{Name: "LIMIT", Type: "int", Optional: true, Default: 10},
		},
		Outputs: []registry.ParamSpec{{Name: "OUT"}},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) {
		got <- inv.Inputs["LIMIT"]
		return Outputs{}, nil
	})
	inst, err := Attach(store, testSession, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	if err := Execute(store, testSession, "DEFAULTER", map[string]any{"REQ": "x"}, "", "i1"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 10 {
			t.Fatalf("default = %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestWorkerPoolConcurrency(t *testing.T) {
	store := newStore(t)
	var active, peak atomic.Int64
	block := make(chan struct{})
	a := New(registry.AgentSpec{
		Name:    "SLOW",
		Inputs:  []registry.ParamSpec{{Name: "X"}},
		Outputs: []registry.ParamSpec{{Name: "Y"}},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		<-block
		active.Add(-1)
		return Outputs{Values: map[string]any{"Y": 1}}, nil
	})
	inst, err := Attach(store, testSession, a, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := Execute(store, testSession, "SLOW", map[string]any{"X": i}, "", fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Give workers time to saturate.
	deadline := time.Now().Add(5 * time.Second)
	for active.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if active.Load() != 3 {
		t.Fatalf("active = %d, want exactly 3 (pool size)", active.Load())
	}
	close(block)
	inst.Stop()
	if peak.Load() != 3 {
		t.Fatalf("peak concurrency = %d, want 3", peak.Load())
	}
	if st := inst.Stats(); st.Invocations != 6 {
		t.Fatalf("invocations = %d", st.Invocations)
	}
}

func TestSessionEntryExitSignals(t *testing.T) {
	store := newStore(t)
	sub := store.Subscribe(streams.Filter{Streams: []string{SessionStream(testSession)}}, true)
	defer sub.Cancel()

	inst, err := Attach(store, testSession, echoAgent(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := awaitMessage(t, sub)
	if m.Directive == nil || m.Directive.Op != streams.OpEnterSession || m.Directive.Agent != "ECHO" {
		t.Fatalf("enter = %+v", m)
	}
	inst.Stop()
	m = awaitMessage(t, sub)
	if m.Directive == nil || m.Directive.Op != streams.OpExitSession {
		t.Fatalf("exit = %+v", m)
	}
}

func TestDisplayStreamOutput(t *testing.T) {
	store := newStore(t)
	a := New(registry.AgentSpec{
		Name:    "RENDERER",
		Inputs:  []registry.ParamSpec{{Name: "X"}},
		Outputs: []registry.ParamSpec{{Name: "Y"}},
	}, func(ctx context.Context, inv Invocation) (Outputs, error) {
		return Outputs{Values: map[string]any{"Y": 1}, Display: "rendered!"}, nil
	})
	inst, err := Attach(store, testSession, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	disp := store.Subscribe(streams.Filter{Streams: []string{DisplayStream(testSession)}}, true)
	defer disp.Cancel()

	if err := Execute(store, testSession, "RENDERER", nil, "", "d1"); err != nil {
		t.Fatal(err)
	}
	m := awaitMessage(t, disp)
	if m.Payload != "rendered!" || !m.HasTag("display") {
		t.Fatalf("display = %+v", m)
	}
}

func TestFactory(t *testing.T) {
	reg := registry.NewAgentRegistry()
	if err := reg.Register(registry.AgentSpec{
		Name:        "ECHO",
		Description: "echo agent",
		Inputs:      []registry.ParamSpec{{Name: "TEXT"}},
		Outputs:     []registry.ParamSpec{{Name: "ECHO"}},
		Deployment:  registry.Deployment{Workers: 2},
	}); err != nil {
		t.Fatal(err)
	}
	f := NewFactory(reg)
	if _, err := f.Build("ECHO"); !errors.Is(err, ErrNoConstructor) {
		t.Fatalf("err = %v", err)
	}
	f.RegisterConstructor("ECHO", func(spec registry.AgentSpec) Processor {
		return func(ctx context.Context, inv Invocation) (Outputs, error) {
			return Outputs{Values: map[string]any{"ECHO": inv.Inputs["TEXT"]}}, nil
		}
	})
	if got := f.Constructors(); len(got) != 1 || got[0] != "ECHO" {
		t.Fatalf("constructors = %v", got)
	}
	store := newStore(t)
	inst, err := f.Spawn(store, testSession, "ECHO", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	if f.SpawnCount() != 1 {
		t.Fatalf("spawn count = %d", f.SpawnCount())
	}
	if _, err := f.Spawn(store, testSession, "MISSING", Options{}); err == nil {
		t.Fatal("spawned unregistered agent")
	}

	out := store.Subscribe(streams.Filter{Streams: []string{"r"}}, true)
	defer out.Cancel()
	if err := Execute(store, testSession, "ECHO", map[string]any{"TEXT": "via factory"}, "r", "f1"); err != nil {
		t.Fatal(err)
	}
	if m := awaitMessage(t, out); m.Payload != "via factory" {
		t.Fatalf("payload = %v", m.Payload)
	}
}

func TestAwaitDoneSeesPastReports(t *testing.T) {
	store := newStore(t)
	inst, err := Attach(store, testSession, echoAgent(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	if err := Execute(store, testSession, "ECHO", map[string]any{"TEXT": "x"}, "", "past1"); err != nil {
		t.Fatal(err)
	}
	// Wait for completion first, then call AwaitDone: replay must find it.
	time.Sleep(100 * time.Millisecond)
	d := AwaitDone(store, testSession, "past1")
	if d == nil || d.Op != OpAgentDone {
		t.Fatalf("done = %+v", d)
	}
}

func TestPetriPendingObservability(t *testing.T) {
	pn := newPetriNet([]string{"A", "B"}, PairZip)
	pn.offer("A", token{value: 1})
	pn.offer("A", token{value: 2})
	p := pn.pending()
	if p["A"] != 2 || p["B"] != 0 {
		t.Fatalf("pending = %v", p)
	}
	if fired := pn.offer("C", token{value: 9}); fired != nil {
		t.Fatalf("unknown place fired: %v", fired)
	}
	fired := pn.offer("B", token{value: 3})
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	p = pn.pending()
	if p["A"] != 1 || p["B"] != 0 {
		t.Fatalf("pending after fire = %v", p)
	}
}
