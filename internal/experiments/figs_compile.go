package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"blueprint/internal/workload"
)

// AblationCompile (A7) measures the relational engine's prepare-time plan
// compiler (internal/relational/compile.go) against the interpreted
// evaluator on the three executor hot paths the blueprint's agents lean on:
//
//   - filtered scan: multi-predicate WHERE over a wide (16-column) fact
//     table — the shape of enterprise telemetry/feature tables, where the
//     interpreter's per-row per-reference column resolution is costliest.
//   - 3-way join: applications ⋈ jobs ⋈ companies with a residual filter,
//     exercising the binary hash-join keys and the join row arena.
//   - GROUP BY: two grouping keys and four aggregates, exercising binary
//     bucket keys and streaming aggregate accumulators.
//
// Both phases run the same SQL with a warm statement cache, so parse cost
// is amortized identically and the delta isolates compiled execution. In
// full mode the ≥2x wall-clock floor and the allocs/op reduction on the
// filtered-scan and GROUP BY paths are enforced as errors (CI smoke runs
// report only); the 3-way join is reported.
func AblationCompile(seed int64) (*Table, error) {
	scale := workload.MediumScale()
	wideRows, scanIters, joinIters, groupIters := 6000, 120, 25, 100
	if Short {
		scale = workload.SmallScale()
		wideRows, scanIters, joinIters, groupIters = 1200, 25, 6, 20
	}
	ent, err := workload.Build(seed, scale)
	if err != nil {
		return nil, err
	}
	db := ent.DB

	// The wide fact table: 14 numeric feature columns plus city/remote.
	cols := make([]string, 0, 16)
	for i := 0; i < 14; i++ {
		cols = append(cols, fmt.Sprintf("f%02d INT", i))
	}
	cols = append(cols, "city TEXT", "remote BOOL")
	if _, err := db.Exec(`CREATE TABLE facts (` + strings.Join(cols, ", ") + `)`); err != nil {
		return nil, err
	}
	cities := []string{"San Francisco", "Oakland", "Seattle", "New York", "Austin"}
	ins := `INSERT INTO facts VALUES (` + strings.TrimSuffix(strings.Repeat("?,", 16), ",") + `)`
	vals := make([]any, 16)
	for i := 0; i < wideRows; i++ {
		for j := 0; j < 14; j++ {
			vals[j] = (i*31 + j*7 + int(seed)) % 1000
		}
		vals[14] = cities[i%len(cities)]
		vals[15] = i%3 == 0
		if _, err := db.Exec(ins, vals...); err != nil {
			return nil, err
		}
	}

	type wl struct {
		name  string
		sql   string
		iters int
		args  func(i int) []any
	}
	workloads := []wl{
		{
			name:  "filtered scan (wide)",
			sql:   `SELECT f00, f07, f13, city FROM facts WHERE f13 >= ? AND f11 < ? AND remote = FALSE AND city != ?`,
			iters: scanIters,
			args:  func(i int) []any { return []any{100 + i%50, 900, "Austin"} },
		},
		{
			name:  "3-way join",
			sql:   `SELECT j.title, c.name, a.status FROM applications a JOIN jobs j ON a.job_id = j.id JOIN companies c ON j.company_id = c.id WHERE a.score >= ?`,
			iters: joinIters,
			args:  func(i int) []any { return []any{70.0 + float64(i%20)} },
		},
		{
			name:  "group by (2 keys, 4 aggs)",
			sql:   `SELECT city, remote, COUNT(*) AS n, AVG(f05) AS a, MIN(f09) AS lo, MAX(f13) AS hi FROM facts GROUP BY city, remote`,
			iters: groupIters,
			args:  func(int) []any { return nil },
		},
	}

	// measure runs one workload and reports wall clock plus heap
	// allocations per query (runtime.MemStats deltas). Best-of-two wall
	// clocks: the experiment shares its process with the rest of the
	// suite, and one GC or scheduler stall inside a single window can
	// erase a 2-3x ratio.
	measure := func(w wl) (time.Duration, uint64, error) {
		if _, err := db.Query(w.sql, w.args(0)...); err != nil {
			return 0, 0, err // warm parse/compile outside the window
		}
		best := time.Duration(-1)
		var allocs uint64
		for rep := 0; rep < 2; rep++ {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for i := 0; i < w.iters; i++ {
				if _, err := db.Query(w.sql, w.args(i)...); err != nil {
					return 0, 0, err
				}
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			if best < 0 || wall < best {
				best = wall
				allocs = (m1.Mallocs - m0.Mallocs) / uint64(w.iters)
			}
		}
		return best, allocs, nil
	}

	t := &Table{ID: "A7", Title: "Plan compiler: compiled vs interpreted execution on the data-engine hot paths"}
	type outcome struct {
		speedup    float64
		allocDrop  bool
		interpWall time.Duration
	}
	outcomes := map[string]outcome{}
	for _, w := range workloads {
		db.SetCompileEnabled(false)
		interpWall, interpAllocs, err := measure(w)
		if err != nil {
			return nil, fmt.Errorf("A7 %s (interpreted): %w", w.name, err)
		}
		db.SetCompileEnabled(true)
		compWall, compAllocs, err := measure(w)
		if err != nil {
			return nil, fmt.Errorf("A7 %s (compiled): %w", w.name, err)
		}
		speedup := interpWall.Seconds() / compWall.Seconds()
		outcomes[w.name] = outcome{
			speedup:    speedup,
			allocDrop:  compAllocs < interpAllocs,
			interpWall: interpWall,
		}
		t.Rows = append(t.Rows, Row{Series: w.name, Metrics: []Metric{
			{Name: "interp", Value: us(interpWall / time.Duration(w.iters))},
			{Name: "compiled", Value: us(compWall / time.Duration(w.iters))},
			{Name: "speedup", Value: fmt.Sprintf("%.1fx", speedup)},
			{Name: "interp_allocs", Value: fmt.Sprint(interpAllocs)},
			{Name: "compiled_allocs", Value: fmt.Sprint(compAllocs)},
		}})
	}

	if !Short {
		for _, name := range []string{"filtered scan (wide)", "group by (2 keys, 4 aggs)"} {
			o := outcomes[name]
			if o.speedup < 2 {
				return nil, fmt.Errorf("A7: %s compiled speedup %.2fx, want >= 2x", name, o.speedup)
			}
			if !o.allocDrop {
				return nil, fmt.Errorf("A7: %s shows no allocs/op reduction", name)
			}
		}
	}

	stats := db.CacheStats()
	t.Rows = append(t.Rows, Row{Series: "plan cache", Metrics: []Metric{
		{Name: "compiles", Value: fmt.Sprint(stats.Compiles)},
		{Name: "stmt_hit_rate", Value: pct(stats.HitRate())},
	}})
	t.Notes = append(t.Notes,
		"same SQL, warm statement cache in both phases: the delta is per-row column resolution, AST dispatch and stringly hash keys removed by prepare-time compilation",
		"compiled plans are cached on *Stmt and in the statement cache; CREATE/DROP TABLE bumps the table's schema version and forces recompilation (CREATE INDEX is picked up without one)",
		"floors (full mode): >= 2x and fewer allocs/op on the filtered-scan and GROUP BY paths; the interpreted evaluator stays as the differential-test oracle")
	return t, nil
}
