module blueprint

go 1.24.0
