package resilience

import "time"

// DegradePolicy decides when a stale memoized result may be served instead
// of executing — the graceful-degradation rule applied when an agent's
// breaker is open or the daemon is shedding. The freshness declared in the
// agent's QoS profile (registry.QoSProfile.Freshness) is the tolerance: a
// stale serve is freshness-valid while the entry's age is within
// StaleFactor times that declared tolerance. Agents that declared no
// freshness bound (0 = valid until invalidated) are always servable from a
// resident entry — invalidation already removed anything version-stale.
type DegradePolicy struct {
	// Disabled turns stale serving off; degraded paths then fail instead.
	Disabled bool
	// StaleFactor scales the declared freshness into the degraded-serve
	// bound (default 4: an entry memoized under a 30s freshness hint may be
	// served degraded until it is 2m old).
	StaleFactor float64
}

// DefaultStaleFactor is the degraded-serve staleness multiplier.
const DefaultStaleFactor = 4

// MaxStale returns the oldest entry age the policy will serve for an agent
// with the given declared freshness (0 = no bound: resident entries are
// servable at any age).
func (p DegradePolicy) MaxStale(freshness time.Duration) time.Duration {
	if freshness <= 0 {
		return 0
	}
	f := p.StaleFactor
	if f < 1 {
		f = DefaultStaleFactor
	}
	return time.Duration(float64(freshness) * f)
}

// Allows reports whether an entry of the given age may be served degraded
// under the agent's declared freshness tolerance.
func (p DegradePolicy) Allows(freshness, age time.Duration) bool {
	if p.Disabled {
		return false
	}
	max := p.MaxStale(freshness)
	return max == 0 || age <= max
}
