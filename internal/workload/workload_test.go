package workload

import (
	"testing"

	"blueprint/internal/docstore"
)

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(42, SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(42, SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.DB.Query(`SELECT id, title, city, salary FROM jobs ORDER BY id`)
	rb, _ := b.DB.Query(`SELECT id, title, city, salary FROM jobs ORDER BY id`)
	if len(ra.Rows) != len(rb.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(ra.Rows), len(rb.Rows))
	}
	for i := range ra.Rows {
		for j := range ra.Rows[i] {
			if ra.Rows[i][j].String() != rb.Rows[i][j].String() {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, ra.Rows[i][j], rb.Rows[i][j])
			}
		}
	}
	// Different seed differs somewhere.
	c, _ := Build(43, SmallScale())
	rc, _ := c.DB.Query(`SELECT id, title, city, salary FROM jobs ORDER BY id`)
	same := true
	for i := range ra.Rows {
		if ra.Rows[i][1].String() != rc.Rows[i][1].String() || ra.Rows[i][2].String() != rc.Rows[i][2].String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jobs")
	}
}

func TestBuildCounts(t *testing.T) {
	sc := SmallScale()
	e, err := Build(7, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, check := range []struct {
		table string
		want  int
	}{
		{"companies", sc.Companies},
		{"jobs", sc.Jobs},
		{"applications", sc.Applications},
	} {
		res, err := e.DB.Query("SELECT COUNT(*) FROM " + check.table)
		if err != nil {
			t.Fatal(err)
		}
		if int(res.Rows[0][0].I) != check.want {
			t.Fatalf("%s = %v, want %d", check.table, res.Rows[0][0], check.want)
		}
	}
	if n, _ := e.Docs.Count("profiles"); n != sc.Profiles {
		t.Fatalf("profiles = %d", n)
	}
	nodes, edges := e.Graph.Stats()
	if nodes < 15 || edges < 15 {
		t.Fatalf("taxonomy = %d nodes %d edges", nodes, edges)
	}
}

func TestIndexesRegistered(t *testing.T) {
	e, err := Build(7, SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	info, err := e.DB.Table("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Indexes) != 3 {
		t.Fatalf("jobs indexes = %+v", info.Indexes)
	}
}

func TestGroundTruthConsistent(t *testing.T) {
	e, err := Build(11, SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(e.BayAreaDSJobIDs) == 0 {
		t.Fatal("no ground-truth jobs generated; scale too small or bug")
	}
	// Re-derive the ground truth from SQL and compare.
	res, err := e.DB.Query(`SELECT id FROM jobs WHERE
		city IN ('San Francisco','Oakland','San Jose','Berkeley','Palo Alto','Mountain View','Sunnyvale','Fremont','Redwood City','Santa Clara')
		AND title IN ('Data Scientist','Senior Data Scientist','Staff Data Scientist','Machine Learning Engineer','Applied Scientist')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(e.BayAreaDSJobIDs) {
		t.Fatalf("ground truth mismatch: map=%d sql=%d", len(e.BayAreaDSJobIDs), len(res.Rows))
	}
	for _, r := range res.Rows {
		if !e.BayAreaDSJobIDs[r[0].I] {
			t.Fatalf("id %d missing from ground truth", r[0].I)
		}
	}
}

func TestProfilesShape(t *testing.T) {
	e, err := Build(3, SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	hits, err := e.Docs.Find("profiles", docstore.Query{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		for _, field := range []string{"name", "title", "city", "years", "skills"} {
			if _, ok := h.Doc[field]; !ok {
				t.Fatalf("profile %s missing %s: %v", h.ID, field, h.Doc)
			}
		}
		skills := h.Doc["skills"].([]any)
		if len(skills) < 2 {
			t.Fatalf("profile %s skills = %v", h.ID, skills)
		}
	}
}

func TestQueriesWorkload(t *testing.T) {
	qs := Queries(5, 40)
	if len(qs) != 40 {
		t.Fatalf("queries = %d", len(qs))
	}
	kinds := map[QueryKind]int{}
	for _, q := range qs {
		kinds[q.Kind]++
		if q.Text == "" {
			t.Fatal("empty query text")
		}
	}
	if kinds[KindJobSearch] != 10 || kinds[KindOpenQuery] != 20 || kinds[KindSummarize] != 10 {
		t.Fatalf("kind mix = %v", kinds)
	}
	// Determinism.
	qs2 := Queries(5, 40)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestTaxonomyRelatedEdges(t *testing.T) {
	e, err := Build(1, SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := e.Graph.Neighbors("t:data_scientist", "related", 0) // Out
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 4 {
		t.Fatalf("related = %v", rel)
	}
}
