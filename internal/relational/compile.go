package relational

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"blueprint/internal/topk"
)

// This file implements the prepare-time compiler for SELECT/UPDATE/DELETE.
//
// The interpreted executor (select.go, dml.go) re-resolves every column
// reference by a linear lowercase string scan per row per expression and
// re-dispatches on the AST node type for every evaluation. The compiler does
// that work exactly once per (statement, schema) pair: each ColumnRef is
// resolved to a positional offset and the expression tree is lowered into a
// closure of type compiledExpr, so per-row evaluation touches no strings and
// no type switches. Compiled plans are cached on *Stmt handles and in the
// statement cache (see planSlot in stmt.go) and invalidated per table by a
// schema version counter bumped on CREATE/DROP TABLE.
//
// Statement shapes whose interpreted semantics depend on runtime row counts
// (lazy resolution errors over empty inputs, the DISTINCT/ORDER BY row-count
// quirk, SELECT * with aggregates) are not compiled: compileStmt marks them
// fallback and execution uses the interpreted path, which stays the semantic
// oracle — the differential tests in differential_test.go assert both paths
// agree on the full property corpus.

// compiledExpr evaluates one scalar expression against a row with all column
// references pre-resolved to positional offsets.
type compiledExpr func(row Row, params []Value) (Value, error)

// compiledAggExpr evaluates an expression that may contain aggregates over
// the rows of one group.
type compiledAggExpr func(rows []Row, params []Value) (Value, error)

// errStalePlan signals that a compiled plan no longer matches the live
// schema (DDL raced the execution); the router recompiles and retries.
var errStalePlan = errors.New("relational: stale compiled plan")

// errUncompilable marks statement shapes the compiler deliberately refuses
// (they fall back to the interpreted oracle).
var errUncompilable = errors.New("relational: statement not compilable")

// tableDep records the schema version of one referenced table at compile
// time. Versions bump on CREATE/DROP TABLE, so a dependency mismatch means
// the table was dropped or recreated and every resolved offset is suspect.
type tableDep struct {
	table string // lowercased storage key
	ver   uint64
}

// compiledStmt is one compilation of a statement: either a runnable program
// or a fallback marker, plus the schema versions it was compiled against.
type compiledStmt struct {
	deps     []tableDep
	sel      *selectProgram
	upd      *updateProgram
	del      *deleteProgram
	fallback bool
}

// planSlot holds the current compilation of one statement. A slot is shared
// between a prepared *Stmt handle and the statement-cache entry for the same
// SQL text, so Query/Exec traffic and prepared handles reuse one compiled
// plan. Swaps are atomic: concurrent executors either see the old (still
// version-checked) plan or the new one.
type planSlot struct {
	p atomic.Pointer[compiledStmt]
}

// SetCompileEnabled toggles the compiled execution path. Disabling it forces
// every SELECT/UPDATE/DELETE through the interpreted evaluator — used by the
// A7 ablation and the differential tests; production leaves it on.
func (db *DB) SetCompileEnabled(enabled bool) { db.noCompile.Store(!enabled) }

// depsValid reports whether every table version recorded at compile time is
// still current.
func (db *DB) depsValid(deps []tableDep) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, d := range deps {
		if db.vers[d.table] != d.ver {
			return false
		}
	}
	return true
}

// captureDeps snapshots the schema versions of the given (lowercased) tables.
func (db *DB) captureDeps(tables []string) []tableDep {
	db.mu.RLock()
	defer db.mu.RUnlock()
	deps := make([]tableDep, len(tables))
	for i, t := range tables {
		deps[i] = tableDep{table: t, ver: db.vers[t]}
	}
	return deps
}

// tableVer returns the live table and its current schema version.
func (db *DB) tableVer(name string) (*table, uint64, error) {
	key := strings.ToLower(name)
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[key]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	return t, db.vers[key], nil
}

// planFor returns the slot's current compilation, recompiling if absent or
// stale. Racing recompiles are harmless: both results are valid and the
// last store wins.
func (db *DB) planFor(st Statement, slot *planSlot) *compiledStmt {
	cs := slot.p.Load()
	if cs == nil || !db.depsValid(cs.deps) {
		cs = db.compileStmt(st)
		slot.p.Store(cs)
	}
	return cs
}

// compileStmt compiles st against the current schema. Any compile error
// (unknown column, missing table, unsupported shape) produces a fallback
// marker rather than a statement error: the interpreted path owns error
// semantics, including the lazy cases where an unresolvable reference over
// zero rows is not an error at all.
func (db *DB) compileStmt(st Statement) *compiledStmt {
	db.compiles.Add(1)
	cs := &compiledStmt{deps: db.captureDeps(stmtTables(st))}
	var err error
	switch s := st.(type) {
	case *SelectStmt:
		cs.sel, err = db.buildSelectProgram(s)
	case *UpdateStmt:
		cs.upd, err = db.buildUpdateProgram(s)
	case *DeleteStmt:
		cs.del, err = db.buildDeleteProgram(s)
	default:
		err = errUncompilable
	}
	if err != nil {
		cs.sel, cs.upd, cs.del, cs.fallback = nil, nil, nil, true
	}
	return cs
}

// ---- statement routers ----

func (db *DB) execSelect(sel *SelectStmt, slot *planSlot, params []Value) (*Result, error) {
	if slot == nil || db.noCompile.Load() {
		return db.execSelectInterp(sel, params)
	}
	for attempt := 0; attempt < 2; attempt++ {
		cs := db.planFor(sel, slot)
		if cs.fallback || cs.sel == nil {
			return db.execSelectInterp(sel, params)
		}
		res, err := db.runSelectProgram(cs.sel, params)
		if err == errStalePlan {
			slot.p.Store(nil)
			continue
		}
		return res, err
	}
	// DDL churn kept invalidating the plan; the interpreted path always
	// sees a coherent schema.
	return db.execSelectInterp(sel, params)
}

func (db *DB) execUpdate(up *UpdateStmt, slot *planSlot, params []Value) (*Result, error) {
	if slot == nil || db.noCompile.Load() {
		return db.execUpdateInterp(up, params)
	}
	for attempt := 0; attempt < 2; attempt++ {
		cs := db.planFor(up, slot)
		if cs.fallback || cs.upd == nil {
			return db.execUpdateInterp(up, params)
		}
		res, err := db.runUpdateProgram(cs.upd, params)
		if err == errStalePlan {
			slot.p.Store(nil)
			continue
		}
		return res, err
	}
	return db.execUpdateInterp(up, params)
}

func (db *DB) execDelete(del *DeleteStmt, slot *planSlot, params []Value) (*Result, error) {
	if slot == nil || db.noCompile.Load() {
		return db.execDeleteInterp(del, params)
	}
	for attempt := 0; attempt < 2; attempt++ {
		cs := db.planFor(del, slot)
		if cs.fallback || cs.del == nil {
			return db.execDeleteInterp(del, params)
		}
		res, err := db.runDeleteProgram(cs.del, params)
		if err == errStalePlan {
			slot.p.Store(nil)
			continue
		}
		return res, err
	}
	return db.execDeleteInterp(del, params)
}

// ---- expression compilation ----

// resolveCol resolves a column reference against an ordered column layout —
// the single resolution routine shared by the interpreted evaluator (per
// row) and the compiler (once per statement).
func resolveCol(cols []envCol, c *ColumnRef) (int, error) {
	tbl := strings.ToLower(c.Table)
	col := strings.ToLower(c.Column)
	found := -1
	for i, ec := range cols {
		if ec.name != col {
			continue
		}
		if tbl != "" && ec.table != tbl {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("relational: ambiguous column %q", c.String())
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("%w: %s", ErrColumnUnknown, c.String())
	}
	return found, nil
}

// compileExpr lowers a scalar expression into a closure over the given
// column layout. Resolution errors surface at compile time (the caller falls
// back to the interpreted path to preserve lazy semantics); evaluation
// errors that the interpreter raises per row (missing parameters, aggregate
// misuse) are lowered into closures that raise them lazily, so a query over
// zero rows still succeeds exactly like the interpreter.
func compileExpr(cols []envCol, x Expr) (compiledExpr, error) {
	switch v := x.(type) {
	case *Literal:
		val := v.Val
		return func(Row, []Value) (Value, error) { return val, nil }, nil
	case *Param:
		ord := v.Ordinal
		disp := paramSrc(v)
		return func(_ Row, params []Value) (Value, error) {
			if ord-1 >= len(params) || params[ord-1].T == missingParamType {
				return Null, fmt.Errorf("relational: missing parameter %d", disp)
			}
			return params[ord-1], nil
		}, nil
	case *ColumnRef:
		i, err := resolveCol(cols, v)
		if err != nil {
			return nil, err
		}
		return func(row Row, _ []Value) (Value, error) { return row[i], nil }, nil
	case *BinaryExpr:
		return compileBinary(cols, v)
	case *UnaryExpr:
		inner, err := compileExpr(cols, v.E)
		if err != nil {
			return nil, err
		}
		return func(row Row, params []Value) (Value, error) {
			val, err := inner(row, params)
			if err != nil {
				return Null, err
			}
			return NewBool(!truthy(val)), nil
		}, nil
	case *InExpr:
		e, err := compileExpr(cols, v.E)
		if err != nil {
			return nil, err
		}
		items := make([]compiledExpr, len(v.List))
		for i, item := range v.List {
			f, err := compileExpr(cols, item)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		not := v.Not
		return func(row Row, params []Value) (Value, error) {
			val, err := e(row, params)
			if err != nil {
				return Null, err
			}
			hit := false
			for _, item := range items {
				iv, err := item(row, params)
				if err != nil {
					return Null, err
				}
				if Equal(val, iv) {
					hit = true
					break
				}
			}
			return NewBool(hit != not), nil
		}, nil
	case *BetweenExpr:
		e, err := compileExpr(cols, v.E)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(cols, v.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(cols, v.Hi)
		if err != nil {
			return nil, err
		}
		not := v.Not
		return func(row Row, params []Value) (Value, error) {
			val, err := e(row, params)
			if err != nil {
				return Null, err
			}
			loV, err := lo(row, params)
			if err != nil {
				return Null, err
			}
			hiV, err := hi(row, params)
			if err != nil {
				return Null, err
			}
			in := !val.IsNull() && !loV.IsNull() && !hiV.IsNull() &&
				Compare(val, loV) >= 0 && Compare(val, hiV) <= 0
			return NewBool(in != not), nil
		}, nil
	case *IsNullExpr:
		e, err := compileExpr(cols, v.E)
		if err != nil {
			return nil, err
		}
		not := v.Not
		return func(row Row, params []Value) (Value, error) {
			val, err := e(row, params)
			if err != nil {
				return Null, err
			}
			return NewBool(val.IsNull() != not), nil
		}, nil
	case *AggExpr:
		// Same lazy error as the interpreter: raised per evaluation, so it
		// never fires over zero rows.
		return func(Row, []Value) (Value, error) {
			return Null, errors.New("relational: aggregate outside aggregation context")
		}, nil
	default:
		return func(Row, []Value) (Value, error) {
			return Null, errors.New("relational: unsupported expression")
		}, nil
	}
}

// compileConjuncts compiles the conjunct list of a left-deep AND chain in
// source order.
func compileConjuncts(cols []envCol, v *BinaryExpr) ([]compiledExpr, error) {
	var out []compiledExpr
	if lb, ok := v.L.(*BinaryExpr); ok && lb.Op == "AND" {
		flat, err := compileConjuncts(cols, lb)
		if err != nil {
			return nil, err
		}
		out = flat
	} else {
		l, err := compileExpr(cols, v.L)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	r, err := compileExpr(cols, v.R)
	if err != nil {
		return nil, err
	}
	return append(out, r), nil
}

func compileBinary(cols []envCol, v *BinaryExpr) (compiledExpr, error) {
	l, err := compileExpr(cols, v.L)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(cols, v.R)
	if err != nil {
		return nil, err
	}
	switch v.Op {
	case "AND":
		// Conjunct chains (the normal WHERE form) flatten into one closure
		// that loops a list, instead of one nested frame per AND node.
		conjuncts := []compiledExpr{l, r}
		if lb, ok := v.L.(*BinaryExpr); ok && lb.Op == "AND" {
			flat, err := compileConjuncts(cols, lb)
			if err != nil {
				return nil, err
			}
			conjuncts = append(flat, r)
		}
		return func(row Row, params []Value) (Value, error) {
			for _, c := range conjuncts {
				v, err := c(row, params)
				if err != nil {
					return Null, err
				}
				if !truthy(v) {
					return NewBool(false), nil
				}
			}
			return NewBool(true), nil
		}, nil
	case "OR":
		return func(row Row, params []Value) (Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return Null, err
			}
			if truthy(lv) {
				return NewBool(true), nil
			}
			rv, err := r(row, params)
			if err != nil {
				return Null, err
			}
			return NewBool(truthy(rv)), nil
		}, nil
	}
	// Comparisons dispatch on the operator once at compile time instead of
	// re-switching on the op string for every row.
	switch v.Op {
	case "=":
		return func(row Row, params []Value) (Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return Null, err
			}
			rv, err := r(row, params)
			if err != nil {
				return Null, err
			}
			return NewBool(Equal(lv, rv)), nil
		}, nil
	case "!=":
		return func(row Row, params []Value) (Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return Null, err
			}
			rv, err := r(row, params)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return NewBool(false), nil
			}
			return NewBool(Compare(lv, rv) != 0), nil
		}, nil
	case "<", "<=", ">", ">=":
		var test func(c int) bool
		switch v.Op {
		case "<":
			test = func(c int) bool { return c < 0 }
		case "<=":
			test = func(c int) bool { return c <= 0 }
		case ">":
			test = func(c int) bool { return c > 0 }
		default:
			test = func(c int) bool { return c >= 0 }
		}
		return func(row Row, params []Value) (Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return Null, err
			}
			rv, err := r(row, params)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return NewBool(false), nil
			}
			return NewBool(test(Compare(lv, rv))), nil
		}, nil
	}
	op := v.Op
	return func(row Row, params []Value) (Value, error) {
		lv, err := l(row, params)
		if err != nil {
			return Null, err
		}
		rv, err := r(row, params)
		if err != nil {
			return Null, err
		}
		return compareValues(op, lv, rv)
	}, nil
}

// compareValues applies a non-logical binary operator to two evaluated
// values — the shared tail of the interpreted evalBinary and the compiled
// closures.
func compareValues(op string, l, r Value) (Value, error) {
	switch op {
	case "=":
		return NewBool(Equal(l, r)), nil
	case "!=":
		if l.IsNull() || r.IsNull() {
			return NewBool(false), nil
		}
		return NewBool(Compare(l, r) != 0), nil
	case "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return NewBool(false), nil
		}
		c := Compare(l, r)
		switch op {
		case "<":
			return NewBool(c < 0), nil
		case "<=":
			return NewBool(c <= 0), nil
		case ">":
			return NewBool(c > 0), nil
		default:
			return NewBool(c >= 0), nil
		}
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return NewBool(false), nil
		}
		return NewBool(likeMatch(l.String(), r.String())), nil
	default:
		return Null, fmt.Errorf("relational: unknown operator %q", op)
	}
}

// applyBinaryValues applies any binary operator to two already-evaluated
// values. Matches the interpreter's aggregate-context behaviour, where both
// sides are computed before combining (no short-circuit).
func applyBinaryValues(op string, l, r Value) (Value, error) {
	switch op {
	case "AND":
		if !truthy(l) {
			return NewBool(false), nil
		}
		return NewBool(truthy(r)), nil
	case "OR":
		if truthy(l) {
			return NewBool(true), nil
		}
		return NewBool(truthy(r)), nil
	}
	return compareValues(op, l, r)
}

// compileOnFirst lowers a non-aggregate expression for use in aggregation
// context: evaluated on the group's first row, Null over an empty group.
func compileOnFirst(cols []envCol, x Expr) (compiledAggExpr, error) {
	f, err := compileExpr(cols, x)
	if err != nil {
		return nil, err
	}
	return func(rows []Row, params []Value) (Value, error) {
		if len(rows) == 0 {
			return Null, nil
		}
		return f(rows[0], params)
	}, nil
}

// compileAggExpr lowers an expression that may contain aggregates, mirroring
// evalAgg: aggregate leaves stream over the group's rows, non-aggregate
// subtrees evaluate on the first row.
func compileAggExpr(cols []envCol, x Expr) (compiledAggExpr, error) {
	switch v := x.(type) {
	case *AggExpr:
		return compileAgg(cols, v)
	case *BinaryExpr:
		if !hasAggregate(v) {
			return compileOnFirst(cols, v)
		}
		l, err := compileAggExpr(cols, v.L)
		if err != nil {
			return nil, err
		}
		r, err := compileAggExpr(cols, v.R)
		if err != nil {
			return nil, err
		}
		op := v.Op
		return func(rows []Row, params []Value) (Value, error) {
			lv, err := l(rows, params)
			if err != nil {
				return Null, err
			}
			rv, err := r(rows, params)
			if err != nil {
				return Null, err
			}
			return applyBinaryValues(op, lv, rv)
		}, nil
	case *UnaryExpr:
		inner, err := compileAggExpr(cols, v.E)
		if err != nil {
			return nil, err
		}
		return func(rows []Row, params []Value) (Value, error) {
			val, err := inner(rows, params)
			if err != nil {
				return Null, err
			}
			return NewBool(!truthy(val)), nil
		}, nil
	default:
		return compileOnFirst(cols, x)
	}
}

// compileAgg lowers one aggregate call into a streaming accumulator: no
// per-group value slice is materialized, and DISTINCT deduplicates through
// the binary key encoder over a reused scratch buffer.
func compileAgg(cols []envCol, a *AggExpr) (compiledAggExpr, error) {
	if a.Star {
		return func(rows []Row, _ []Value) (Value, error) {
			return NewInt(int64(len(rows))), nil
		}, nil
	}
	arg, err := compileExpr(cols, a.Arg)
	if err != nil {
		return nil, err
	}
	distinct := a.Distinct
	switch a.Fn {
	case "COUNT":
		return func(rows []Row, params []Value) (Value, error) {
			var seen map[string]struct{}
			var scratch []byte
			if distinct {
				seen = make(map[string]struct{})
			}
			n := 0
			for _, r := range rows {
				v, err := arg(r, params)
				if err != nil {
					return Null, err
				}
				if v.IsNull() {
					continue
				}
				if distinct {
					scratch = appendValueKey(scratch[:0], v)
					if _, dup := seen[string(scratch)]; dup {
						continue
					}
					seen[string(scratch)] = struct{}{}
				}
				n++
			}
			return NewInt(int64(n)), nil
		}, nil
	case "SUM", "AVG":
		fn := a.Fn
		return func(rows []Row, params []Value) (Value, error) {
			var seen map[string]struct{}
			var scratch []byte
			if distinct {
				seen = make(map[string]struct{})
			}
			var sum float64
			allInt := true
			n := 0
			// The interpreter collects all values (surfacing evaluation
			// errors) before type-checking them, so a deferred pendingErr
			// keeps the error precedence identical while streaming.
			var pendingErr error
			for _, r := range rows {
				v, err := arg(r, params)
				if err != nil {
					return Null, err
				}
				if v.IsNull() {
					continue
				}
				if distinct {
					scratch = appendValueKey(scratch[:0], v)
					if _, dup := seen[string(scratch)]; dup {
						continue
					}
					seen[string(scratch)] = struct{}{}
				}
				if pendingErr != nil {
					continue
				}
				f, ok := v.numeric()
				if !ok {
					pendingErr = fmt.Errorf("relational: %s over non-numeric value", fn)
					continue
				}
				if v.T != TInt {
					allInt = false
				}
				sum += f
				n++
			}
			if pendingErr != nil {
				return Null, pendingErr
			}
			if n == 0 {
				return Null, nil
			}
			if fn == "AVG" {
				return NewFloat(sum / float64(n)), nil
			}
			if allInt {
				return NewInt(int64(sum)), nil
			}
			return NewFloat(sum), nil
		}, nil
	case "MIN", "MAX":
		min := a.Fn == "MIN"
		// DISTINCT cannot change a min or max; skip the dedup work.
		return func(rows []Row, params []Value) (Value, error) {
			best := Null
			have := false
			for _, r := range rows {
				v, err := arg(r, params)
				if err != nil {
					return Null, err
				}
				if v.IsNull() {
					continue
				}
				if !have {
					best, have = v, true
					continue
				}
				c := Compare(v, best)
				if (min && c < 0) || (!min && c > 0) {
					best = v
				}
			}
			if !have {
				return Null, nil
			}
			return best, nil
		}, nil
	default:
		fn := a.Fn
		return func([]Row, []Value) (Value, error) {
			return Null, fmt.Errorf("relational: unknown aggregate %q", fn)
		}, nil
	}
}

// ---- SELECT compilation ----

type selectProgram struct {
	sel       *SelectStmt
	baseTable string // lowercased storage key
	baseVer   uint64
	baseWidth int // base table column count (row width before joins)
	layout    []envCol
	joins     []joinProgram
	where     compiledExpr
	whereDesc string
	// whereAuto marks WHERE trees containing auto-extracted literal params:
	// their Filter(...) plan line depends on the bound values (rendered per
	// execution by filterDesc so shape-cached plans print exactly like
	// exact-keyed ones).
	whereAuto bool
	// access holds the precompiled sargable-predicate candidates extracted
	// from the WHERE conjuncts. Index existence and kind are resolved per
	// execution (planAccessCompiled), so a CREATE INDEX is picked up without
	// recompiling and a shape-shared plan chooses its access path from the
	// literals bound to this execution.
	access []accessCand

	columns  []string
	outWidth int

	aggregated bool
	items      []itemProgram // non-aggregated projection
	aggItems   []compiledAggExpr
	groupBy    []int
	having     compiledAggExpr
	aggDesc    string // "GroupBy(n keys)" or "Aggregate"

	orderBy  []orderProgram
	sortDesc string
}

type joinProgram struct {
	table string // lowercased storage key
	ver   uint64
	lIdx  int // offset in the accumulated left layout
	rIdx  int // offset within the joined table's rows
	width int // joined table column count
	left  bool
	desc  string
}

type itemProgram struct {
	star bool
	f    compiledExpr
}

type orderProgram struct {
	outIdx int          // >= 0: sort key is this output column
	f      compiledExpr // else: evaluated against the input row
	desc   bool
}

func outColumnIndex(columns []string, name string) int {
	for i, c := range columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

func (db *DB) buildSelectProgram(sel *SelectStmt) (*selectProgram, error) {
	base, baseVer, err := db.tableVer(sel.From.Table)
	if err != nil {
		return nil, err
	}
	p := &selectProgram{
		sel:       sel,
		baseTable: strings.ToLower(sel.From.Table),
		baseVer:   baseVer,
		baseWidth: len(base.schema.Columns),
	}
	baseName := strings.ToLower(sel.From.Name())
	cols := make([]envCol, 0, len(base.schema.Columns))
	for _, c := range base.schema.Columns {
		cols = append(cols, envCol{table: baseName, name: strings.ToLower(c.Name)})
	}
	pretty := append([]string(nil), base.schema.Names()...)

	for _, j := range sel.Joins {
		jt, jVer, err := db.tableVer(j.Table.Table)
		if err != nil {
			return nil, err
		}
		jName := strings.ToLower(j.Table.Name())
		jCols := make([]envCol, 0, len(jt.schema.Columns))
		for _, c := range jt.schema.Columns {
			jCols = append(jCols, envCol{table: jName, name: strings.ToLower(c.Name)})
		}
		// Determine which side of ON belongs to the joined table (same swap
		// logic as the interpreter).
		leftRef, rightRef := j.LCol, j.RCol
		if _, err := resolveCol(jCols, &rightRef); err != nil {
			leftRef, rightRef = rightRef, leftRef
			if _, err2 := resolveCol(jCols, &rightRef); err2 != nil {
				return nil, err2
			}
		}
		rIdx, err := resolveCol(jCols, &rightRef)
		if err != nil {
			return nil, err
		}
		lIdx, err := resolveCol(cols, &leftRef)
		if err != nil {
			return nil, err
		}
		kind := "HashJoin"
		if j.Left {
			kind = "LeftHashJoin"
		}
		p.joins = append(p.joins, joinProgram{
			table: strings.ToLower(j.Table.Table),
			ver:   jVer,
			lIdx:  lIdx,
			rIdx:  rIdx,
			width: len(jt.schema.Columns),
			left:  j.Left,
			desc:  fmt.Sprintf("%s(%s ON %s = %s)", kind, j.Table.Name(), j.LCol.String(), j.RCol.String()),
		})
		cols = append(cols, jCols...)
		pretty = append(pretty, jt.schema.Names()...)
	}
	p.layout = cols

	if sel.Where != nil {
		f, err := compileExpr(cols, sel.Where)
		if err != nil {
			return nil, err
		}
		p.where = f
		p.whereAuto = hasAutoParam(sel.Where)
		p.whereDesc = "Filter(" + exprString(sel.Where) + ")"
	}
	p.access = buildAccessCands(strings.ToLower(sel.From.Name()), sel.Where)

	p.aggregated = len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if !it.Star && hasAggregate(it.Expr) {
			p.aggregated = true
		}
	}

	if p.aggregated {
		for _, it := range sel.Items {
			if it.Star {
				// The interpreter rejects this at execution time; keep the
				// error on the interpreted path.
				return nil, errUncompilable
			}
			p.columns = append(p.columns, itemName(it))
			f, err := compileAggExpr(cols, it.Expr)
			if err != nil {
				return nil, err
			}
			p.aggItems = append(p.aggItems, f)
		}
		p.outWidth = len(p.aggItems)
		for _, gc := range sel.GroupBy {
			gcCopy := gc
			i, err := resolveCol(cols, &gcCopy)
			if err != nil {
				return nil, err
			}
			p.groupBy = append(p.groupBy, i)
		}
		if sel.Having != nil {
			f, err := compileAggExpr(cols, sel.Having)
			if err != nil {
				return nil, err
			}
			p.having = f
		}
		if len(sel.GroupBy) > 0 {
			p.aggDesc = fmt.Sprintf("GroupBy(%d keys)", len(sel.GroupBy))
		} else {
			p.aggDesc = "Aggregate"
		}
	} else {
		for _, it := range sel.Items {
			if it.Star {
				p.columns = append(p.columns, pretty...)
				p.items = append(p.items, itemProgram{star: true})
				p.outWidth += len(cols)
				continue
			}
			p.columns = append(p.columns, itemName(it))
			f, err := compileExpr(cols, it.Expr)
			if err != nil {
				return nil, err
			}
			p.items = append(p.items, itemProgram{f: f})
			p.outWidth++
		}
	}

	for _, ob := range sel.OrderBy {
		op := orderProgram{outIdx: -1, desc: ob.Desc}
		if cr, ok := ob.Expr.(*ColumnRef); ok && cr.Table == "" {
			op.outIdx = outColumnIndex(p.columns, cr.Column)
		}
		if op.outIdx < 0 {
			if p.aggregated {
				// Interpreted path raises "must be an output column".
				return nil, errUncompilable
			}
			if sel.Distinct {
				// Whether the interpreter errors here depends on how many
				// rows DISTINCT removes at runtime; leave the quirk to it.
				return nil, errUncompilable
			}
			f, err := compileExpr(cols, ob.Expr)
			if err != nil {
				return nil, err
			}
			op.f = f
		}
		p.orderBy = append(p.orderBy, op)
	}
	if len(sel.OrderBy) > 0 {
		p.sortDesc = fmt.Sprintf("Sort(%d keys)", len(sel.OrderBy))
	}
	return p, nil
}

// filterDesc returns the Filter(...) plan line for one execution: static
// when the WHERE tree has no auto-extracted literals, else rendered against
// the bound values.
func (p *selectProgram) filterDesc(params []Value) string {
	if !p.whereAuto {
		return p.whereDesc
	}
	var b strings.Builder
	// The static form approximates the rendered length ('?' slots become
	// bound values); one Grow keeps the builder from doubling through the
	// tree walk.
	b.Grow(len(p.whereDesc) + 48)
	b.WriteString("Filter(")
	writeExprDisplay(&b, p.sel.Where, params)
	b.WriteByte(')')
	return b.String()
}

// ---- compiled sargable-predicate extraction ----

// valueGetter resolves one comparison operand at execution time: a captured
// literal, or a parameter slot (explicit or auto-extracted). ok is false
// when the slot is unbound.
type valueGetter func(params []Value) (Value, bool)

type accessCandKind int

const (
	candBinary accessCandKind = iota
	candIn
	candBetween
)

// accessCand is one WHERE conjunct precompiled for access-path planning.
// For binary comparisons both orientations are recorded when syntactically
// eligible ("col op const" forward, "const op col" reversed with the
// operator pre-flipped); which one applies is decided per execution, after
// the index and the bound value are known — exactly the precedence of the
// interpreted planAccess.
type accessCand struct {
	kind accessCandKind

	fwdCol string // lowercased base-table column, "" if ineligible
	fwdOp  string
	fwdVal valueGetter
	revCol string
	revOp  string
	revVal valueGetter

	col   string        // IN / BETWEEN column
	items []valueGetter // IN list operands
	n     int           // len of the original IN list (for the plan line)
	lo    valueGetter   // BETWEEN bounds
	hi    valueGetter
}

// constGetter compiles a constant-valued operand (literal or parameter);
// nil if the expression is not a planning-time constant.
func constGetter(e Expr) valueGetter {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return func([]Value) (Value, bool) { return v, true }
	case *Param:
		ord := x.Ordinal
		return func(params []Value) (Value, bool) {
			if ord-1 < len(params) && params[ord-1].T != missingParamType {
				return params[ord-1], true
			}
			return Null, false
		}
	}
	return nil
}

// baseColumn returns the lowercased column name when e references a column
// of the base table (unqualified or qualified by its effective name), else
// "".
func baseColumn(e Expr, baseNameLower string) string {
	cr, ok := e.(*ColumnRef)
	if !ok {
		return ""
	}
	if cr.Table != "" && strings.ToLower(cr.Table) != baseNameLower {
		return ""
	}
	return strings.ToLower(cr.Column)
}

// buildAccessCands extracts the sargable candidates from the WHERE
// conjuncts at compile time. Conjunct order is preserved: the per-execution
// planner considers candidates in the same order as the interpreted one, so
// its strict tie-break picks the same winner.
func buildAccessCands(baseNameLower string, where Expr) []accessCand {
	if where == nil {
		return nil
	}
	var out []accessCand
	for _, cj := range splitAnd(where) {
		switch x := cj.(type) {
		case *BinaryExpr:
			if _, sarg := flippedOp[x.Op]; !sarg {
				continue
			}
			c := accessCand{kind: candBinary}
			if col := baseColumn(x.L, baseNameLower); col != "" {
				if g := constGetter(x.R); g != nil {
					c.fwdCol, c.fwdOp, c.fwdVal = col, x.Op, g
				}
			}
			if col := baseColumn(x.R, baseNameLower); col != "" {
				if g := constGetter(x.L); g != nil {
					c.revCol, c.revOp, c.revVal = col, flippedOp[x.Op], g
				}
			}
			if c.fwdCol != "" || c.revCol != "" {
				out = append(out, c)
			}
		case *InExpr:
			if x.Not {
				continue
			}
			col := baseColumn(x.E, baseNameLower)
			if col == "" {
				continue
			}
			c := accessCand{kind: candIn, col: col, n: len(x.List)}
			ok := true
			for _, item := range x.List {
				g := constGetter(item)
				if g == nil {
					ok = false
					break
				}
				c.items = append(c.items, g)
			}
			if ok {
				out = append(out, c)
			}
		case *BetweenExpr:
			if x.Not {
				continue
			}
			col := baseColumn(x.E, baseNameLower)
			if col == "" {
				continue
			}
			lo := constGetter(x.Lo)
			hi := constGetter(x.Hi)
			if lo == nil || hi == nil {
				continue
			}
			out = append(out, accessCand{kind: candBetween, col: col, lo: lo, hi: hi})
		}
	}
	return out
}

// planAccessCompiled is the compiled twin of (*table).planAccess: it walks
// the precompiled candidates against the live index set and this
// execution's bound values, producing the same access path (and plan line)
// the interpreted planner would choose for the equivalent literal text.
func (p *selectProgram) planAccessCompiled(t *table, params []Value) accessPath {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return planAccessLocked(t, p.access, params, p.sel.Explain)
}

// planAccessLocked picks the best access path for the precompiled candidates
// under this execution's bound values. The caller holds t.mu (read or write).
// The desc plan line is rendered only when wantDesc (EXPLAIN): ordinary
// queries never pay for it.
func planAccessLocked(t *table, access []accessCand, params []Value, wantDesc bool) accessPath {
	if len(access) == 0 || len(t.indexes) == 0 {
		if !wantDesc {
			return accessPath{all: true}
		}
		return accessPath{desc: "SeqScan(" + t.name + ")", all: true}
	}
	// candidate carries what the winner's plan line needs; the desc string is
	// rendered once, for the winning candidate only, at the end — losers must
	// not cost a formatted string per execution.
	type candidate struct {
		rank int
		ids  []int
		ix   *indexDef
		op   string // "=", "<", "<=", ">", ">=", "IN", "BETWEEN"
		v    Value
		hi   Value // BETWEEN upper bound
		n    int   // IN list length
	}
	var (
		best  candidate
		found bool
	)
	consider := func(c candidate) {
		if !found || c.rank < best.rank || (c.rank == best.rank && len(c.ids) < len(best.ids)) {
			best = c
			found = true
		}
	}
	// resolve maps a binary candidate onto the live index set for this
	// execution's bound values: the forward orientation wins when both sides
	// are indexed, matching the interpreted planner.
	resolve := func(ac *accessCand) (*indexDef, Value, string) {
		if ac.fwdCol != "" {
			if cand := t.indexes[ac.fwdCol]; cand != nil {
				if fv, ok := ac.fwdVal(params); ok && !fv.IsNull() {
					return cand, fv, ac.fwdOp
				}
			}
		}
		if ac.revCol != "" {
			if cand := t.indexes[ac.revCol]; cand != nil {
				if rv, ok := ac.revVal(params); ok && !rv.IsNull() {
					return cand, rv, ac.revOp
				}
			}
		}
		return nil, Null, ""
	}
	// Candidates are considered strictly by rank: equality (0), then IN (1),
	// then ranges (2). A lower rank always wins regardless of result size, so
	// once any candidate matched at one tier the cheaper tiers below it are
	// never materialized — a point lookup guarded by a broad sargable range
	// (`id = 7 AND salary < 999999`) must not pay for collecting the range's
	// ids just to discard them.
	for i := range access {
		ac := &access[i]
		if ac.kind != candBinary {
			continue
		}
		if ix, v, op := resolve(ac); ix != nil && op == "=" {
			consider(candidate{rank: 0, ids: ix.lookupEqLocked(v), ix: ix, op: "=", v: v})
		}
	}
	if !found {
		for i := range access {
			ac := &access[i]
			if ac.kind != candIn {
				continue
			}
			ix := t.indexes[ac.col]
			if ix == nil {
				continue
			}
			var ids []int
			ok := true
			for _, g := range ac.items {
				v, o := g(params)
				if !o {
					ok = false
					break
				}
				ids = append(ids, ix.lookupEqLocked(v)...)
			}
			if ok {
				consider(candidate{rank: 1, ids: dedupInts(ids), ix: ix, op: "IN", n: ac.n})
			}
		}
	}
	if !found {
		for i := range access {
			ac := &access[i]
			switch ac.kind {
			case candBinary:
				ix, v, op := resolve(ac)
				if ix == nil || ix.kind != OrderedIndex {
					continue
				}
				switch op {
				case "<", "<=":
					consider(candidate{rank: 2, ids: ix.order.lookupRange(Null, v, false, op == "<"), ix: ix, op: op, v: v})
				case ">", ">=":
					consider(candidate{rank: 2, ids: ix.order.lookupRange(v, Null, op == ">", false), ix: ix, op: op, v: v})
				}
			case candBetween:
				ix := t.indexes[ac.col]
				if ix == nil || ix.kind != OrderedIndex {
					continue
				}
				lo, ok1 := ac.lo(params)
				hi, ok2 := ac.hi(params)
				if !ok1 || !ok2 {
					continue
				}
				consider(candidate{rank: 2, ids: ix.order.lookupRange(lo, hi, false, false), ix: ix, op: "BETWEEN", v: lo, hi: hi})
			}
		}
	}
	if !found {
		if !wantDesc {
			return accessPath{all: true}
		}
		return accessPath{desc: "SeqScan(" + t.name + ")", all: true}
	}
	if !wantDesc {
		return accessPath{ids: best.ids}
	}
	var b strings.Builder
	b.Grow(64)
	switch best.op {
	case "=":
		b.WriteString("IndexScan(")
		b.WriteString(t.name)
		b.WriteByte('.')
		b.WriteString(best.ix.column)
		b.WriteString(" = ")
		writeValueDisplay(&b, best.v)
		b.WriteString(", ")
		b.WriteString(best.ix.kind.String())
		b.WriteByte(')')
	case "IN":
		fmt.Fprintf(&b, "IndexScan(%s.%s IN [%d values], %s)", t.name, best.ix.column, best.n, best.ix.kind)
	case "BETWEEN":
		b.WriteString("IndexRange(")
		b.WriteString(t.name)
		b.WriteByte('.')
		b.WriteString(best.ix.column)
		b.WriteString(" BETWEEN ")
		writeValueDisplay(&b, best.v)
		b.WriteString(" AND ")
		writeValueDisplay(&b, best.hi)
		b.WriteByte(')')
	default: // <, <=, >, >=
		b.WriteString("IndexRange(")
		b.WriteString(t.name)
		b.WriteByte('.')
		b.WriteString(best.ix.column)
		b.WriteByte(' ')
		b.WriteString(best.op)
		b.WriteByte(' ')
		writeValueDisplay(&b, best.v)
		b.WriteByte(')')
	}
	return accessPath{desc: b.String(), ids: best.ids}
}

// ---- SELECT execution ----

// rowArena block-allocates fixed-width output rows: one []Value chunk
// serves many rows, so the steady state of a projection or join loop does
// one allocation per chunk instead of one per row. Rows handed out are
// disjoint sub-slices capped at width, so appends never spill into a
// neighbour. release returns the most recently handed-out row (used when
// DISTINCT drops a duplicate).
type rowArena struct {
	buf   []Value
	off   int
	width int
	chunk int // rows per chunk, doubling up to rowArenaMaxChunk
}

const (
	rowArenaMinChunk = 16
	rowArenaMaxChunk = 1024
)

func newRowArena(width int) *rowArena {
	return &rowArena{width: width, chunk: rowArenaMinChunk}
}

func (a *rowArena) next() Row {
	if a.width == 0 {
		return Row{}
	}
	if a.off+a.width > len(a.buf) {
		a.buf = make([]Value, a.chunk*a.width)
		a.off = 0
		if a.chunk < rowArenaMaxChunk {
			a.chunk *= 2
		}
	}
	r := a.buf[a.off : a.off : a.off+a.width]
	a.off += a.width
	return r
}

func (a *rowArena) release() {
	if a.off >= a.width {
		a.off -= a.width
	}
}

// sortCand is one output row with its precomputed ORDER BY keys. seq
// preserves the input sequence for stable ties.
type sortCand struct {
	out  Row
	keys []Value
	seq  int
}

func (p *selectProgram) candLess(a, b *sortCand) bool {
	for ki := range p.orderBy {
		c := Compare(a.keys[ki], b.keys[ki])
		if c == 0 {
			continue
		}
		if p.orderBy[ki].desc {
			return c > 0
		}
		return c < 0
	}
	return a.seq < b.seq
}

// errStopScan is returned by pipeline visitors to terminate a scan early
// (OFFSET+LIMIT satisfied); it never escapes to callers.
var errStopScan = errors.New("relational: stop scan")

// rowIter drives rows through a visitor. The no-join scan iterates the base
// table under its read lock without materializing a snapshot slice — the
// fused scan→filter→project pipeline; joins iterate the materialized join
// output.
type rowIter func(visit func(Row) error) error

func (db *DB) runSelectProgram(p *selectProgram, params []Value) (*Result, error) {
	sel := p.sel
	base, ver, err := db.tableVer(sel.From.Table)
	if err != nil || ver != p.baseVer {
		return nil, errStalePlan
	}

	path := p.planAccessCompiled(base, params)
	var planLines []string
	if sel.Explain {
		planLines = append(make([]string, 0, 8), path.desc)
	}

	var iter rowIter
	if len(p.joins) == 0 {
		// Fused scan: rows stream straight from storage into the filter
		// and projection closures, under the table read lock — no snapshot
		// slice is materialized between scan and the rest of the pipeline.
		iter = func(visit func(Row) error) error {
			base.mu.RLock()
			defer base.mu.RUnlock()
			if path.all {
				for id, r := range base.rows {
					if !base.live[id] {
						continue
					}
					if err := visit(r); err != nil {
						return err
					}
				}
				return nil
			}
			for _, id := range path.ids {
				if id >= 0 && id < len(base.rows) && base.live[id] {
					if err := visit(base.rows[id]); err != nil {
						return err
					}
				}
			}
			return nil
		}
		return db.runSelectTail(p, iter, params, planLines)
	}

	var rows []Row
	if path.all {
		rows = base.snapshotRows()
	} else {
		base.mu.RLock()
		rows = make([]Row, 0, len(path.ids))
		for _, id := range path.ids {
			if id >= 0 && id < len(base.rows) && base.live[id] {
				rows = append(rows, base.rows[id])
			}
		}
		base.mu.RUnlock()
	}

	// Hash joins with binary keys: probes allocate nothing, build keys are
	// materialized once per distinct value, and joined rows come from a
	// block arena instead of one allocation each.
	var scratch []byte
	curWidth := p.baseWidth
	for _, jp := range p.joins {
		jt, jVer, err := db.tableVer(jp.table)
		if err != nil || jVer != jp.ver {
			return nil, errStalePlan
		}
		build := buildJoinHash(jt.snapshotRows(), jp.rIdx)
		joined := make([]Row, 0, len(rows))
		arena := newRowArena(curWidth + jp.width)
		var nullRight Row
		if jp.left {
			nullRight = make(Row, jp.width)
			for i := range nullRight {
				nullRight[i] = Null
			}
		}
		for _, lr := range rows {
			v := lr[jp.lIdx]
			var matches []Row
			if !v.IsNull() {
				scratch = appendValueKey(scratch[:0], v)
				if b := build[string(scratch)]; b != nil {
					matches = b.rows
				}
			}
			if len(matches) == 0 {
				if jp.left {
					nr := arena.next()
					nr = append(nr, lr...)
					nr = append(nr, nullRight...)
					joined = append(joined, nr)
				}
				continue
			}
			for _, rr := range matches {
				nr := arena.next()
				nr = append(nr, lr...)
				nr = append(nr, rr...)
				joined = append(joined, nr)
			}
		}
		rows = joined
		curWidth += jp.width
		if sel.Explain {
			planLines = append(planLines, jp.desc)
		}
	}

	iter = func(visit func(Row) error) error {
		for _, r := range rows {
			if err := visit(r); err != nil {
				return err
			}
		}
		return nil
	}
	return db.runSelectTail(p, iter, params, planLines)
}

// runSelectTail runs the post-scan pipeline (filter, aggregation or
// projection, DISTINCT, ordering, limits) and assembles the plan string.
func (db *DB) runSelectTail(p *selectProgram, iter rowIter, params []Value, planLines []string) (*Result, error) {
	var out *Result
	var err error
	if p.aggregated {
		out, err = db.runAggregate(p, iter, params, &planLines)
	} else {
		out, err = db.runProject(p, iter, params, &planLines)
	}
	if err != nil {
		return nil, err
	}
	if p.sel.Explain {
		out.Plan = strings.Join(planLines, " -> ")
		return &Result{Columns: []string{"plan"}, Rows: []Row{{NewString(out.Plan)}}, Plan: out.Plan}, nil
	}
	return out, nil
}

// runAggregate executes the grouped/aggregated tail of a compiled SELECT:
// fused filter+group with binary bucket keys, streaming accumulators per
// item, then HAVING, DISTINCT, ORDER BY (output columns only) and
// OFFSET/LIMIT with the interpreter's plan-line behaviour.
func (db *DB) runAggregate(p *selectProgram, iter rowIter, params []Value, planLines *[]string) (*Result, error) {
	sel := p.sel
	type aggGroup struct{ rows []Row }
	var groups []*aggGroup
	if len(p.groupBy) == 0 {
		g := &aggGroup{}
		err := iter(func(r Row) error {
			if p.where != nil {
				v, err := p.where(r, params)
				if err != nil {
					return err
				}
				if !truthy(v) {
					return nil
				}
			}
			g.rows = append(g.rows, r)
			return nil
		})
		if err != nil {
			return nil, err
		}
		groups = append(groups, g)
	} else {
		byKey := make(map[string]*aggGroup)
		var scratch []byte
		err := iter(func(r Row) error {
			if p.where != nil {
				v, err := p.where(r, params)
				if err != nil {
					return err
				}
				if !truthy(v) {
					return nil
				}
			}
			scratch = scratch[:0]
			for _, gi := range p.groupBy {
				scratch = appendValueKey(scratch, r[gi])
			}
			g := byKey[string(scratch)]
			if g == nil {
				g = &aggGroup{}
				byKey[string(scratch)] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, r)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if p.where != nil {
		if p.sel.Explain {
			*planLines = append(*planLines, p.filterDesc(params))
		}
	}

	out := &Result{Columns: p.columns}
	for _, g := range groups {
		if len(p.groupBy) == 0 && len(g.rows) == 0 {
			// Global aggregate over empty input yields one row; HAVING is
			// not consulted (interpreter behaviour).
			or := make(Row, 0, p.outWidth)
			for _, f := range p.aggItems {
				v, err := f(g.rows, params)
				if err != nil {
					return nil, err
				}
				or = append(or, v)
			}
			out.Rows = append(out.Rows, or)
			continue
		}
		if p.having != nil {
			hv, err := p.having(g.rows, params)
			if err != nil {
				return nil, err
			}
			if !truthy(hv) {
				continue
			}
		}
		or := make(Row, 0, p.outWidth)
		for _, f := range p.aggItems {
			v, err := f(g.rows, params)
			if err != nil {
				return nil, err
			}
			or = append(or, v)
		}
		out.Rows = append(out.Rows, or)
	}
	if p.sel.Explain {
		*planLines = append(*planLines, p.aggDesc)
	}

	if sel.Distinct {
		out.Rows = distinctRows(out.Rows)
		if p.sel.Explain {
			*planLines = append(*planLines, "Distinct")
		}
	}

	if len(p.orderBy) > 0 {
		// Aggregated ORDER BY keys are always output columns (anything else
		// is a fallback shape).
		idx := make([]int, len(out.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for _, op := range p.orderBy {
				c := Compare(out.Rows[idx[a]][op.outIdx], out.Rows[idx[b]][op.outIdx])
				if c == 0 {
					continue
				}
				if op.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := make([]Row, len(out.Rows))
		for i, pos := range idx {
			sorted[i] = out.Rows[pos]
		}
		out.Rows = sorted
		if p.sel.Explain {
			*planLines = append(*planLines, p.sortDesc)
		}
	}

	if sel.Offset > 0 {
		if sel.Offset >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[sel.Offset:]
		}
	}
	if sel.Limit >= 0 && sel.Limit < len(out.Rows) {
		out.Rows = out.Rows[:sel.Limit]
		if p.sel.Explain {
			*planLines = append(*planLines, fmt.Sprintf("Limit(%d)", sel.Limit))
		}
	}
	return out, nil
}

// runProject executes the non-aggregated tail: a fused scan→filter→project
// pipeline that streams rows straight into the result, deduplicates DISTINCT
// through binary keys, stops early once OFFSET+LIMIT rows are produced, and
// serves ORDER BY + LIMIT through a bounded top-k heap.
func (db *DB) runProject(p *selectProgram, iter rowIter, params []Value, planLines *[]string) (*Result, error) {
	sel := p.sel
	out := &Result{Columns: p.columns}

	arena := newRowArena(p.outWidth)
	project := func(r Row) (Row, error) {
		or := arena.next()
		for _, it := range p.items {
			if it.star {
				or = append(or, r...)
				continue
			}
			v, err := it.f(r, params)
			if err != nil {
				return nil, err
			}
			or = append(or, v)
		}
		return or, nil
	}

	var seen map[string]struct{}
	var scratch []byte
	if sel.Distinct {
		seen = make(map[string]struct{})
	}

	if len(p.orderBy) == 0 {
		need := -1
		if sel.Limit >= 0 {
			need = sel.Offset + sel.Limit
		}
		sawMore := false
		err := iter(func(r Row) error {
			if p.where != nil {
				v, err := p.where(r, params)
				if err != nil {
					return err
				}
				if !truthy(v) {
					return nil
				}
			}
			if seen == nil {
				if need >= 0 && len(out.Rows) == need {
					sawMore = true
					return errStopScan
				}
				or, err := project(r)
				if err != nil {
					return err
				}
				out.Rows = append(out.Rows, or)
				return nil
			}
			or, err := project(r)
			if err != nil {
				return err
			}
			scratch = appendRowKey(scratch[:0], or)
			if _, dup := seen[string(scratch)]; dup {
				arena.release()
				return nil
			}
			if need >= 0 && len(out.Rows) == need {
				sawMore = true
				return errStopScan
			}
			seen[string(scratch)] = struct{}{}
			out.Rows = append(out.Rows, or)
			return nil
		})
		if err != nil && err != errStopScan {
			return nil, err
		}
		if p.where != nil {
			if p.sel.Explain {
				*planLines = append(*planLines, p.filterDesc(params))
			}
		}
		if sel.Distinct {
			if p.sel.Explain {
				*planLines = append(*planLines, "Distinct")
			}
		}
		if sel.Offset > 0 {
			if sel.Offset >= len(out.Rows) {
				out.Rows = nil
			} else {
				out.Rows = out.Rows[sel.Offset:]
			}
		}
		if sel.Limit >= 0 {
			trimmed := sel.Limit < len(out.Rows)
			if trimmed {
				out.Rows = out.Rows[:sel.Limit]
			}
			if sawMore || trimmed {
				if p.sel.Explain {
					*planLines = append(*planLines, fmt.Sprintf("Limit(%d)", sel.Limit))
				}
			}
		}
		return out, nil
	}

	// ORDER BY: compute sort keys alongside projection in one pass. With a
	// LIMIT, a bounded top-k heap keeps only the OFFSET+LIMIT first rows in
	// sort order instead of materializing and sorting the full input.
	k := -1
	if sel.Limit >= 0 {
		k = sel.Offset + sel.Limit
	}
	var heap *topk.Heap[*sortCand]
	var cands []*sortCand
	if k >= 0 {
		heap = topk.New(k, p.candLess)
	}
	total := 0
	err := iter(func(r Row) error {
		if p.where != nil {
			v, err := p.where(r, params)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		or, err := project(r)
		if err != nil {
			return err
		}
		if seen != nil {
			scratch = appendRowKey(scratch[:0], or)
			if _, dup := seen[string(scratch)]; dup {
				arena.release()
				return nil
			}
			seen[string(scratch)] = struct{}{}
		}
		keys := make([]Value, len(p.orderBy))
		for ki, op := range p.orderBy {
			if op.outIdx >= 0 {
				keys[ki] = or[op.outIdx]
				continue
			}
			v, err := op.f(r, params)
			if err != nil {
				return err
			}
			keys[ki] = v
		}
		c := &sortCand{out: or, keys: keys, seq: total}
		total++
		if heap != nil {
			heap.Offer(c)
		} else {
			cands = append(cands, c)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if heap != nil {
		cands = heap.Items()
	}
	sort.Slice(cands, func(i, j int) bool { return p.candLess(cands[i], cands[j]) })

	if p.where != nil {
		if p.sel.Explain {
			*planLines = append(*planLines, p.filterDesc(params))
		}
	}
	if sel.Distinct {
		if p.sel.Explain {
			*planLines = append(*planLines, "Distinct")
		}
	}
	if p.sel.Explain {
		*planLines = append(*planLines, p.sortDesc)
	}

	start := sel.Offset
	if start > len(cands) {
		start = len(cands)
	}
	for _, c := range cands[start:] {
		out.Rows = append(out.Rows, c.out)
	}
	afterOffset := total - sel.Offset
	if afterOffset < 0 {
		afterOffset = 0
	}
	if sel.Limit >= 0 {
		if sel.Limit < len(out.Rows) {
			out.Rows = out.Rows[:sel.Limit]
		}
		if sel.Limit < afterOffset {
			if p.sel.Explain {
				*planLines = append(*planLines, fmt.Sprintf("Limit(%d)", sel.Limit))
			}
		}
	}
	return out, nil
}

// ---- UPDATE / DELETE compilation ----

type updateProgram struct {
	table   string
	ver     uint64
	where   compiledExpr
	access  []accessCand
	targets []updateTarget
}

type updateTarget struct {
	col  int
	name string
	typ  Type
	f    compiledExpr
}

type deleteProgram struct {
	table  string
	ver    uint64
	where  compiledExpr
	access []accessCand
}

func (db *DB) buildUpdateProgram(up *UpdateStmt) (*updateProgram, error) {
	t, ver, err := db.tableVer(up.Table)
	if err != nil {
		return nil, err
	}
	p := &updateProgram{table: strings.ToLower(up.Table), ver: ver}
	cols := tableLayout(t, up.Table)
	for _, sc := range up.Set {
		ci := t.schema.ColIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrColumnUnknown, up.Table, sc.Column)
		}
		f, err := compileExpr(cols, sc.Value)
		if err != nil {
			return nil, err
		}
		p.targets = append(p.targets, updateTarget{
			col:  ci,
			name: t.schema.Columns[ci].Name,
			typ:  t.schema.Columns[ci].Type,
			f:    f,
		})
	}
	if up.Where != nil {
		f, err := compileExpr(cols, up.Where)
		if err != nil {
			return nil, err
		}
		p.where = f
		p.access = buildAccessCands(p.table, up.Where)
	}
	return p, nil
}

func (db *DB) buildDeleteProgram(del *DeleteStmt) (*deleteProgram, error) {
	t, ver, err := db.tableVer(del.Table)
	if err != nil {
		return nil, err
	}
	p := &deleteProgram{table: strings.ToLower(del.Table), ver: ver}
	if del.Where != nil {
		f, err := compileExpr(tableLayout(t, del.Table), del.Where)
		if err != nil {
			return nil, err
		}
		p.where = f
		p.access = buildAccessCands(p.table, del.Where)
	}
	return p, nil
}

// tableLayout builds the single-table column layout used by DML predicates.
func tableLayout(t *table, name string) []envCol {
	baseName := strings.ToLower(name)
	cols := make([]envCol, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		cols[i] = envCol{table: baseName, name: strings.ToLower(c.Name)}
	}
	return cols
}

// dmlCandidates returns the row ids a compiled DML statement must visit,
// using the same staged access planner as compiled SELECTs. The returned
// slice is a private copy: the statement body mutates rows and index
// postings, and the planner's id slices may alias live index storage. A nil
// slice with all=true means no sargable candidate matched and the caller
// scans the whole table. The caller holds t.mu for writing.
func dmlCandidates(t *table, access []accessCand, params []Value) (ids []int, all bool) {
	path := planAccessLocked(t, access, params, false)
	if path.all {
		return nil, true
	}
	return append([]int(nil), path.ids...), false
}

func (db *DB) runUpdateProgram(p *updateProgram, params []Value) (*Result, error) {
	t, ver, err := db.tableVer(p.table)
	if err != nil || ver != p.ver {
		return nil, errStalePlan
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	apply := func(id int) error {
		if !t.live[id] {
			return nil
		}
		row := t.rows[id]
		if p.where != nil {
			v, err := p.where(row, params)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		for _, tg := range p.targets {
			nv, err := tg.f(row, params)
			if err != nil {
				return err
			}
			cv, err := coerce(nv, tg.typ)
			if err != nil {
				return fmt.Errorf("column %q: %w", tg.name, err)
			}
			old := row[tg.col]
			for _, ix := range t.indexes {
				if ix.col == tg.col {
					ix.remove(id, old)
					ix.add(id, cv)
				}
			}
			row[tg.col] = cv
		}
		n++
		return nil
	}
	if ids, all := dmlCandidates(t, p.access, params); !all {
		for _, id := range ids {
			if err := apply(id); err != nil {
				return nil, err
			}
		}
	} else {
		for id := range t.rows {
			if err := apply(id); err != nil {
				return nil, err
			}
		}
	}
	return affected(n), nil
}

func (db *DB) runDeleteProgram(p *deleteProgram, params []Value) (*Result, error) {
	t, ver, err := db.tableVer(p.table)
	if err != nil || ver != p.ver {
		return nil, errStalePlan
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	apply := func(id int) error {
		if !t.live[id] {
			return nil
		}
		if p.where != nil {
			v, err := p.where(t.rows[id], params)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		t.live[id] = false
		t.liveCnt--
		for _, ix := range t.indexes {
			ix.remove(id, t.rows[id][ix.col])
		}
		n++
		return nil
	}
	if ids, all := dmlCandidates(t, p.access, params); !all {
		for _, id := range ids {
			if err := apply(id); err != nil {
				return nil, err
			}
		}
	} else {
		for id := range t.rows {
			if err := apply(id); err != nil {
				return nil, err
			}
		}
	}
	return affected(n), nil
}
