package relational

import (
	"strconv"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []ColumnRef
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
	Offset   int
	Explain  bool
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// CreateTableStmt is CREATE TABLE t (col TYPE, ...).
type CreateTableStmt struct {
	Table   string
	Columns []Column
}

// CreateIndexStmt is CREATE [ORDERED] INDEX name ON t (col).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Column  string
	Ordered bool
}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct{ Table string }

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the effective name (alias if present).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is INNER/LEFT JOIN t ON a = b (equijoin only).
type JoinClause struct {
	Left  bool // LEFT OUTER join if true, else inner
	Table TableRef
	LCol  ColumnRef
	RCol  ColumnRef
}

// SelectItem is one projection: expression (possibly aggregate) with alias,
// or the star.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is any scalar or aggregate expression.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val Value }

// Param is a parameter slot (1-based ordinal assigned by parser). Ordinal
// indexes the unified per-execution value vector, which interleaves explicit
// '?' placeholders with literals auto-extracted by the fingerprint pass. For
// explicit placeholders Src is the user-visible 1-based '?' ordinal (used in
// error messages); for auto-extracted literals Auto is true and Src is 0.
type Param struct {
	Ordinal int
	Src     int
	Auto    bool
}

// ColumnRef references table.column or column.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference.
func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// BinaryExpr applies Op to L and R. Ops: = != < <= > >= AND OR LIKE.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies NOT.
type UnaryExpr struct {
	Op string // "NOT"
	E  Expr
}

// InExpr is "E IN (list)" or "E NOT IN (list)".
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// BetweenExpr is "E BETWEEN lo AND hi".
type BetweenExpr struct {
	E      Expr
	Lo, Hi Expr
	Not    bool
}

// IsNullExpr is "E IS [NOT] NULL".
type IsNullExpr struct {
	E   Expr
	Not bool
}

// AggExpr is an aggregate call: COUNT(*), COUNT(col), SUM/AVG/MIN/MAX(col).
type AggExpr struct {
	Fn       string // upper case
	Star     bool
	Arg      Expr
	Distinct bool
}

func (*Literal) expr()     {}
func (*Param) expr()       {}
func (*ColumnRef) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*IsNullExpr) expr()  {}
func (*AggExpr) expr()     {}

// exprString renders an expression for EXPLAIN output and error messages.
func exprString(e Expr) string { return exprDisplay(e, nil) }

// exprDisplay renders an expression with bound parameter values: an
// auto-extracted literal slot shows the value it was extracted from, so a
// shape-cached statement's EXPLAIN/plan strings match the exact-keyed form
// byte for byte. Explicit '?' placeholders always render as "?".
func exprDisplay(e Expr, params []Value) string {
	var b strings.Builder
	writeExprDisplay(&b, e, params)
	return b.String()
}

// writeValueDisplay appends a bound value's display form without the
// intermediate string Value.String would allocate for numbers.
func writeValueDisplay(b *strings.Builder, v Value) {
	switch v.T {
	case TInt:
		var buf [24]byte
		b.Write(strconv.AppendInt(buf[:0], v.I, 10))
	case TFloat:
		var buf [32]byte
		b.Write(strconv.AppendFloat(buf[:0], v.F, 'g', -1, 64))
	default:
		b.WriteString(v.String())
	}
}

// writeExprDisplay appends the display form in one pass over the tree so the
// per-execution Filter(...) plan line costs a single buffer instead of a
// string per node — this runs on every query, shape-cached or not.
func writeExprDisplay(b *strings.Builder, e Expr, params []Value) {
	switch x := e.(type) {
	case nil:
	case *Literal:
		if x.Val.T == TString {
			b.WriteByte('\'')
			b.WriteString(x.Val.S)
			b.WriteByte('\'')
			return
		}
		writeValueDisplay(b, x.Val)
	case *Param:
		if x.Auto && x.Ordinal-1 >= 0 && x.Ordinal-1 < len(params) {
			v := params[x.Ordinal-1]
			if v.T == TString {
				b.WriteByte('\'')
				b.WriteString(v.S)
				b.WriteByte('\'')
				return
			}
			writeValueDisplay(b, v)
			return
		}
		b.WriteByte('?')
	case *ColumnRef:
		b.WriteString(x.String())
	case *BinaryExpr:
		b.WriteByte('(')
		writeExprDisplay(b, x.L, params)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		writeExprDisplay(b, x.R, params)
		b.WriteByte(')')
	case *UnaryExpr:
		b.WriteString("(NOT ")
		writeExprDisplay(b, x.E, params)
		b.WriteByte(')')
	case *InExpr:
		writeExprDisplay(b, x.E, params)
		if x.Not {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		for i, it := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExprDisplay(b, it, params)
		}
		b.WriteByte(')')
	case *BetweenExpr:
		writeExprDisplay(b, x.E, params)
		if x.Not {
			b.WriteString(" NOT BETWEEN ")
		} else {
			b.WriteString(" BETWEEN ")
		}
		writeExprDisplay(b, x.Lo, params)
		b.WriteString(" AND ")
		writeExprDisplay(b, x.Hi, params)
	case *IsNullExpr:
		writeExprDisplay(b, x.E, params)
		if x.Not {
			b.WriteString(" IS NOT NULL")
		} else {
			b.WriteString(" IS NULL")
		}
	case *AggExpr:
		b.WriteString(x.Fn)
		if x.Star {
			b.WriteString("(*)")
			return
		}
		b.WriteByte('(')
		if x.Distinct {
			b.WriteString("DISTINCT ")
		}
		writeExprDisplay(b, x.Arg, params)
		b.WriteByte(')')
	default:
		b.WriteString("?expr?")
	}
}

// hasAutoParam reports whether the expression tree contains an
// auto-extracted literal parameter (its display depends on bound values).
func hasAutoParam(e Expr) bool {
	switch x := e.(type) {
	case *Param:
		return x.Auto
	case *BinaryExpr:
		return hasAutoParam(x.L) || hasAutoParam(x.R)
	case *UnaryExpr:
		return hasAutoParam(x.E)
	case *InExpr:
		if hasAutoParam(x.E) {
			return true
		}
		for _, it := range x.List {
			if hasAutoParam(it) {
				return true
			}
		}
	case *BetweenExpr:
		return hasAutoParam(x.E) || hasAutoParam(x.Lo) || hasAutoParam(x.Hi)
	case *IsNullExpr:
		return hasAutoParam(x.E)
	case *AggExpr:
		return !x.Star && hasAutoParam(x.Arg)
	}
	return false
}

// hasAggregate reports whether the expression tree contains an aggregate.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *UnaryExpr:
		return hasAggregate(x.E)
	case *InExpr:
		if hasAggregate(x.E) {
			return true
		}
		for _, it := range x.List {
			if hasAggregate(it) {
				return true
			}
		}
	case *BetweenExpr:
		return hasAggregate(x.E) || hasAggregate(x.Lo) || hasAggregate(x.Hi)
	case *IsNullExpr:
		return hasAggregate(x.E)
	}
	return false
}
