package relational

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // symbols: = != < <= > >= ( ) , * . ;
	tokParam // ? positional parameter
)

type token struct {
	kind tokKind
	text string
	pos  int
	// escaped marks string tokens whose raw text still contains '' escape
	// pairs; text is the undecoded slice of the source between the quotes.
	// Consumers that need the value call stringVal, so the common unescaped
	// case allocates nothing.
	escaped bool
}

// stringVal returns the decoded value of a string token: the raw inner text
// with ” collapsed to '. Allocation-free unless the string was escaped.
func (t token) stringVal() string {
	if !t.escaped {
		return t.text
	}
	return strings.ReplaceAll(t.text, "''", "'")
}

// keywords maps the ASCII-uppercased spelling of each reserved word to its
// canonical (interned) form, so keyword tokens never allocate: the tokenizer
// uppercases candidate words into a fixed scratch buffer and the map lookup
// with a string(buf) expression does not copy.
var keywords = map[string]string{
	"SELECT": "SELECT", "FROM": "FROM", "WHERE": "WHERE", "AND": "AND", "OR": "OR",
	"NOT": "NOT", "IN": "IN", "LIKE": "LIKE", "ORDER": "ORDER", "BY": "BY",
	"ASC": "ASC", "DESC": "DESC", "LIMIT": "LIMIT", "OFFSET": "OFFSET", "GROUP": "GROUP",
	"HAVING": "HAVING", "AS": "AS", "JOIN": "JOIN", "INNER": "INNER", "LEFT": "LEFT",
	"ON": "ON", "INSERT": "INSERT", "INTO": "INTO", "VALUES": "VALUES", "CREATE": "CREATE",
	"TABLE": "TABLE", "INDEX": "INDEX", "ORDERED": "ORDERED", "UNIQUE": "UNIQUE", "DROP": "DROP",
	"UPDATE": "UPDATE", "SET": "SET", "DELETE": "DELETE", "NULL": "NULL", "TRUE": "TRUE",
	"FALSE": "FALSE", "COUNT": "COUNT", "SUM": "SUM", "AVG": "AVG", "MIN": "MIN",
	"MAX": "MAX", "DISTINCT": "DISTINCT", "INT": "INT", "FLOAT": "FLOAT", "TEXT": "TEXT",
	"BOOL": "BOOL", "BETWEEN": "BETWEEN", "IS": "IS", "EXPLAIN": "EXPLAIN",
}

// maxKeywordLen is the longest reserved word ("DISTINCT"); longer words are
// identifiers without consulting the keyword table.
const maxKeywordLen = 8

// tokenizer yields tokens from a SQL text by cursor advance, one at a time.
// Token texts are substrings of the source (or interned keyword spellings),
// so a full sweep of a statement allocates nothing — the design is borrowed
// from incremental SQL tokenizers like sqlp: parsing is always slow, and is
// amortized by caching, so the tokenizer on the cache-key path must be free.
// Unlike the original slice-building lexer, it decodes UTF-8 properly:
// multi-byte letters form identifiers and non-ASCII whitespace (NBSP etc.)
// separates tokens.
type tokenizer struct {
	src string
	pos int
	kw  [maxKeywordLen]byte
}

func newTokenizer(src string) tokenizer { return tokenizer{src: src} }

func isASCIILetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isASCIIDigit(c byte) bool { return c >= '0' && c <= '9' }

// Byte-class tables drive the scan loops: one load per input byte instead of
// a chain of range compares. The fingerprint pass sweeps every statement on
// the cache-key path, so cycles per byte here are cycles per query.
const (
	clOther byte = iota // not a token byte: lexical error
	clSpace             // ASCII whitespace the old lexer skipped
	clWord              // ASCII letter or '_': starts an identifier/keyword
	clDigit             // ASCII digit: starts a number
	clQuote             // '\”: starts a string
	clOp                // operator/punct: = < > ! ( ) , * . ;
	clParam             // '?': positional parameter
	clDash              // '-': line comment when doubled, else an error
	clHigh              // >= 0x80: decode the rune and classify
)

var byteClass [256]byte

// wordCont marks bytes that continue an ASCII identifier run.
var wordCont [256]bool

func init() {
	for _, c := range []byte(" \t\n\r\v\f") {
		byteClass[c] = clSpace
	}
	for c := byte('a'); c <= 'z'; c++ {
		byteClass[c] = clWord
	}
	for c := byte('A'); c <= 'Z'; c++ {
		byteClass[c] = clWord
	}
	byteClass['_'] = clWord
	for c := byte('0'); c <= '9'; c++ {
		byteClass[c] = clDigit
	}
	byteClass['\''] = clQuote
	for _, c := range []byte("=<>!(),*.;") {
		byteClass[c] = clOp
	}
	byteClass['?'] = clParam
	byteClass['-'] = clDash
	for c := 0x80; c < 0x100; c++ {
		byteClass[c] = clHigh
	}
	for c := 0; c < 0x80; c++ {
		b := byte(c)
		wordCont[c] = isASCIILetter(b) || isASCIIDigit(b) || b == '_'
	}
}

// next scans and returns the next token. After the source is exhausted it
// returns tokEOF tokens forever. On a lexical error the tokenizer does not
// advance further and every later call returns the same error.
func (tz *tokenizer) next() (token, error) {
	src := tz.src
	n := len(src)
	i := tz.pos
	for i < n {
		c := src[i]
		switch byteClass[c] {
		case clSpace:
			i++
			continue
		case clWord:
			return tz.word(i), nil
		case clDigit:
			j := i
			seenDot := false
			for j < n && (isASCIIDigit(src[j]) || (src[j] == '.' && !seenDot)) {
				if src[j] == '.' {
					seenDot = true
				}
				j++
			}
			tz.pos = j
			return token{kind: tokNumber, text: src[i:j], pos: i}, nil
		case clQuote:
			start := i
			j := i + 1
			escaped := false
			for j < n {
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' { // escaped quote
						escaped = true
						j += 2
						continue
					}
					tz.pos = j + 1
					return token{kind: tokString, text: src[start+1 : j], pos: start, escaped: escaped}, nil
				}
				j++
			}
			tz.pos = start
			return token{}, fmt.Errorf("relational: unterminated string at %d", start)
		case clOp:
			if c == '.' && i+1 < n && isASCIIDigit(src[i+1]) {
				j := i + 1
				for j < n && isASCIIDigit(src[j]) {
					j++
				}
				tz.pos = j
				return token{kind: tokNumber, text: src[i:j], pos: i}, nil
			}
			// multi-char operators
			if (c == '<' || c == '>' || c == '!') && i+1 < n && src[i+1] == '=' {
				tz.pos = i + 2
				return token{kind: tokOp, text: src[i : i+2], pos: i}, nil
			}
			if c == '<' && i+1 < n && src[i+1] == '>' {
				tz.pos = i + 2
				return token{kind: tokOp, text: "!=", pos: i}, nil
			}
			tz.pos = i + 1
			return token{kind: tokOp, text: src[i : i+1], pos: i}, nil
		case clParam:
			tz.pos = i + 1
			return token{kind: tokParam, text: "?", pos: i}, nil
		case clDash:
			if i+1 < n && src[i+1] == '-' {
				// line comment
				for i < n && src[i] != '\n' {
					i++
				}
				continue
			}
			tz.pos = i
			return token{}, fmt.Errorf("relational: unexpected character %q at %d", rune(c), i)
		case clHigh:
			// Non-ASCII lead byte: decode and classify the rune.
			r, size := utf8.DecodeRuneInString(src[i:])
			if r == utf8.RuneError && size <= 1 {
				tz.pos = i
				return token{}, fmt.Errorf("relational: unexpected character %q at %d", r, i)
			}
			if unicode.IsSpace(r) {
				i += size
				continue
			}
			if !unicode.IsLetter(r) {
				tz.pos = i
				return token{}, fmt.Errorf("relational: unexpected character %q at %d", r, i)
			}
			return tz.word(i), nil
		default:
			tz.pos = i
			return token{}, fmt.Errorf("relational: unexpected character %q at %d", rune(c), i)
		}
	}
	tz.pos = n
	return token{kind: tokEOF, pos: n}, nil
}

// word scans an identifier or keyword starting at i (the caller verified the
// first rune is a letter or underscore).
func (tz *tokenizer) word(i int) token {
	src := tz.src
	n := len(src)
	j := i
	ascii := true
	for j < n {
		c := src[j]
		if wordCont[c] {
			j++
			continue
		}
		if c >= utf8.RuneSelf {
			r, size := utf8.DecodeRuneInString(src[j:])
			if (r != utf8.RuneError || size > 1) && (unicode.IsLetter(r) || unicode.IsDigit(r)) {
				ascii = false
				j += size
				continue
			}
		}
		break
	}
	tz.pos = j
	text := src[i:j]
	// Keywords are pure ASCII and short; anything else is an identifier.
	if ascii && len(text) <= maxKeywordLen {
		for k := 0; k < len(text); k++ {
			c := text[k]
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			tz.kw[k] = c
		}
		if canon, ok := keywords[string(tz.kw[:len(text)])]; ok {
			return token{kind: tokKeyword, text: canon, pos: i}
		}
	}
	return token{kind: tokIdent, text: text, pos: i}
}
