package hragents

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"blueprint/internal/agent"
	"blueprint/internal/dataplan"
	"blueprint/internal/nlq"
	"blueprint/internal/obs"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/relational"
)

// ---------------------------------------------------------------- Intent Classifier

func (s *Suite) intentClassifierSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        IntentClassifier,
		Description: "classifies user utterances into intents: job search, open-ended query, summarize, rank, profile, career advice",
		Inputs:      []registry.ParamSpec{{Name: "UTTERANCE", Type: "text"}},
		Outputs:     []registry.ParamSpec{{Name: "INTENT", Type: "json", Description: "intent label with the original utterance"}},
		Listen:      registry.ListenRule{IncludeTags: []string{"utterance"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.0005, Latency: 10e6, Accuracy: 0.92},
	}
}

// intentClassifierProc classifies and re-emits the utterance with its
// intent, tagged "intent", which the Agentic Employer listens for (Fig. 10
// step 2).
func (s *Suite) intentClassifierProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		utterance, _ := inv.Inputs["UTTERANCE"].(string)
		label, usage := s.Model.Classify(utterance, nlq.StandardIntents)
		return agent.Outputs{
			Values: map[string]any{"INTENT": map[string]any{"intent": label, "utterance": utterance}},
			Tags:   []string{TagIntent},
			Usage:  agent.Usage{Cost: usage.Cost, Latency: usage.Latency, Accuracy: s.Model.Config().Accuracy},
		}, nil
	}
}

// ---------------------------------------------------------------- Agentic Employer

func (s *Suite) agenticEmployerSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        AgenticEmployer,
		Description: "application driver for employers: first receiver of UI events and classified intents, routes work to other agents",
		Inputs:      []registry.ParamSpec{{Name: "SIGNAL", Type: "json", Description: "UI event or classified intent"}},
		Outputs: []registry.ParamSpec{
			{Name: "QUERY", Type: "text", Description: "open query forwarded to NL2Q, tagged NLQ"},
			{Name: "JOB_ID", Type: "int", Description: "selected job id"},
			{Name: "PLAN", Type: "plan", Description: "task plan for the coordinator"},
		},
		Listen: registry.ListenRule{IncludeTags: []string{"ui", TagIntent}},
		QoS:    registry.QoSProfile{CostPerCall: 0.0002, Accuracy: 0.98},
	}
}

// agenticEmployerProc is the main application logic of §VI: UI events
// become Summarizer plans (Fig. 9 step 2); open-query intents become
// NLQ-tagged messages for the NL2Q agent (Fig. 10 step 3); summarize
// intents extract the job id and plan the Summarizer; rank intents plan the
// Ranker.
func (s *Suite) agenticEmployerProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		signal, _ := inv.Inputs["SIGNAL"].(map[string]any)
		if signal == nil {
			return agent.Outputs{}, fmt.Errorf("agentic employer: no signal payload")
		}
		if action, ok := signal["action"].(string); ok {
			return s.handleUIEvent(action, signal)
		}
		if intent, ok := signal["intent"].(string); ok {
			utterance, _ := signal["utterance"].(string)
			return s.handleIntent(intent, utterance)
		}
		return agent.Outputs{}, fmt.Errorf("agentic employer: unrecognized signal %v", signal)
	}
}

func (s *Suite) handleUIEvent(action string, event map[string]any) (agent.Outputs, error) {
	switch action {
	case "select_job":
		id := asInt(event["job_id"])
		plan := summarizerPlan(id)
		return agent.Outputs{
			Values: map[string]any{
				"JOB_ID": id,
				"PLAN":   plan.ToJSON(),
			},
			Tags: []string{TagJobID, "plan"},
		}, nil
	default:
		return agent.Outputs{}, fmt.Errorf("agentic employer: unknown UI action %q", action)
	}
}

func (s *Suite) handleIntent(intent, utterance string) (agent.Outputs, error) {
	switch intent {
	case "summarize":
		id := extractJobID(utterance)
		plan := summarizerPlan(id)
		return agent.Outputs{
			Values: map[string]any{"JOB_ID": id, "PLAN": plan.ToJSON()},
			Tags:   []string{TagJobID, "plan"},
		}, nil
	case "rank":
		id := extractJobID(utterance)
		plan := &planner.Plan{
			ID: fmt.Sprintf("ae-rank-%d", id), Utterance: utterance, Intent: "rank",
			Steps: []planner.Step{{
				ID: "s1", Agent: Ranker, Task: "rank applicants for a job",
				Bindings: map[string]planner.Binding{"JOB_ID": {Value: id}},
			}},
		}
		return agent.Outputs{
			Values: map[string]any{"JOB_ID": id, "PLAN": plan.ToJSON()},
			Tags:   []string{TagJobID, "plan"},
		}, nil
	case "career_advice":
		plan := &planner.Plan{
			ID: "ae-advice", Utterance: utterance, Intent: "career_advice",
			Steps: []planner.Step{{
				ID: "s1", Agent: Advisor, Task: "provide career advice",
				Bindings: map[string]planner.Binding{"QUESTION": {Value: utterance}},
			}},
		}
		return agent.Outputs{
			Values: map[string]any{"PLAN": plan.ToJSON()},
			Tags:   []string{"plan"},
		}, nil
	default:
		// Open-ended query: tag it NLQ; the NL2Q agent picks it up
		// (Fig. 10 step 3).
		return agent.Outputs{
			Values: map[string]any{"QUERY": utterance},
			Tags:   []string{TagNLQ},
		}, nil
	}
}

// summarizerPlan builds the one-step plan AE emits for the coordinator
// (Fig. 9: "creates a plan to invoke a Summarizer agent").
func summarizerPlan(jobID int) *planner.Plan {
	return &planner.Plan{
		ID: fmt.Sprintf("ae-summarize-%d", jobID), Utterance: fmt.Sprintf("summarize job %d", jobID), Intent: "summarize",
		Steps: []planner.Step{{
			ID: "s1", Agent: Summarizer, Task: "summarize applicants for the selected job",
			Bindings: map[string]planner.Binding{"JOB_ID": {Value: jobID}},
		}},
	}
}

func extractJobID(utterance string) int {
	fields := strings.Fields(utterance)
	for _, f := range fields {
		f = strings.Trim(f, ".,?!")
		var n int
		if _, err := fmt.Sscanf(f, "%d", &n); err == nil {
			return n
		}
	}
	return 1
}

func asInt(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case int64:
		return int(x)
	case float64:
		return int(x)
	default:
		return 0
	}
}

// ---------------------------------------------------------------- NL2Q

func (s *Suite) nl2qSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        NL2Q,
		Description: "translate a natural language question into a SQL database query over discovered enterprise tables",
		Inputs:      []registry.ParamSpec{{Name: "NLQ", Type: "text"}},
		Outputs:     []registry.ParamSpec{{Name: "SQL", Type: "text"}},
		Listen:      registry.ListenRule{IncludeTags: []string{TagNLQ}},
		QoS:         registry.QoSProfile{CostPerCall: 0.002, Accuracy: 0.85},
		Cacheable:   true,
		Reads:       []string{"hr"},
	}
}

// nl2qProc discovers the best table for the question via the data registry,
// grounds the question against its live values, and emits SQL tagged "SQL"
// (Fig. 10 step 3).
func (s *Suite) nl2qProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		q, _ := inv.Inputs["NLQ"].(string)
		// The planning step is spanned in its own component: table discovery
		// plus NLQ->SQL compilation is where a mistranslated question goes
		// wrong, so slow-ask exemplars must be able to point at it.
		_, sp := obs.StartSpan(ctx, "planner", "nl2q")
		table := s.discoverTable(q)
		sp.SetAttr("table", table)
		tgt, err := dataplan.BuildTarget(s.Ent.DB, table)
		if err != nil {
			sp.End()
			return agent.Outputs{}, err
		}
		c, err := nlq.Compile(q, tgt)
		sp.End()
		if err != nil {
			return agent.Outputs{}, err
		}
		return agent.Outputs{
			Values: map[string]any{"SQL": c.SQL},
			Tags:   []string{TagSQL},
			Usage:  agent.Usage{Cost: 0.002, Accuracy: c.Confidence},
		}, nil
	}
}

// discoverTable picks the relational table whose registry metadata best
// matches the question, defaulting to jobs.
func (s *Suite) discoverTable(q string) string {
	hits := s.DataReg.Discover(q, 5)
	for _, h := range hits {
		if h.Asset.Level == registry.LevelTable && h.Asset.Kind == registry.KindRelational {
			parts := strings.Split(h.Asset.Name, ".")
			return parts[len(parts)-1]
		}
	}
	return "jobs"
}

// ---------------------------------------------------------------- SQLExecutor

func (s *Suite) sqlExecutorSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        SQLExecutor,
		Description: "execute a SQL database query against the enterprise relational databases and return rows",
		Inputs:      []registry.ParamSpec{{Name: "SQL", Type: "text"}},
		Outputs:     []registry.ParamSpec{{Name: "ROWS", Type: "rows"}},
		Listen:      registry.ListenRule{IncludeTags: []string{TagSQL}},
		QoS:         registry.QoSProfile{CostPerCall: 0.0001, Accuracy: 1.0},
		Cacheable:   true,
		Reads:       []string{"hr"},
	}
}

// sqlExecutorProc runs the tagged SQL (Fig. 10 step: "the SQL agent (QE)
// executes the query from NLQ output").
func (s *Suite) sqlExecutorProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		sql, _ := inv.Inputs["SQL"].(string)
		// NL2Q output is templated per session: Query serves the parse from
		// the statement cache on repeat questions.
		res, err := s.Ent.DB.QueryContext(ctx, sql)
		if err != nil {
			return agent.Outputs{}, err
		}
		return agent.Outputs{
			Values: map[string]any{"ROWS": map[string]any{
				"columns": res.Columns,
				"rows":    res.Maps(),
				"sql":     sql,
			}},
			Tags: []string{TagRows},
		}, nil
	}
}

// ---------------------------------------------------------------- Query Summarizer

func (s *Suite) querySummarizerSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        QuerySummarizer,
		Description: "summarize and explain database query results for the user utilizing LLMs",
		Inputs:      []registry.ParamSpec{{Name: "ROWS", Type: "rows"}},
		Outputs:     []registry.ParamSpec{{Name: "SUMMARY", Type: "text"}},
		Listen:      registry.ListenRule{IncludeTags: []string{TagRows}},
		QoS:         registry.QoSProfile{CostPerCall: 0.005, Accuracy: 0.9},
		Cacheable:   true,
		Reads:       []string{"gpt-sim"},
	}
}

func (s *Suite) querySummarizerProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		payload, _ := inv.Inputs["ROWS"].(map[string]any)
		rows, _ := payload["rows"].([]any)
		if rows == nil {
			if typed, ok := payload["rows"].([]map[string]any); ok {
				for _, r := range typed {
					rows = append(rows, r)
				}
			}
		}
		var b strings.Builder
		fmt.Fprintf(&b, "The query returned %d rows.", len(rows))
		for i, r := range rows {
			if i >= 5 {
				fmt.Fprintf(&b, " (and %d more)", len(rows)-5)
				break
			}
			if m, ok := r.(map[string]any); ok {
				fmt.Fprintf(&b, " %s.", nlq.FormatRow(m))
			} else {
				fmt.Fprintf(&b, " %s.", nlq.FormatValue(r))
			}
		}
		summary, usage := s.Model.Summarize(b.String(), 60)
		return agent.Outputs{
			Values:  map[string]any{"SUMMARY": summary},
			Tags:    []string{TagSummary},
			Display: summary,
			Usage:   agent.Usage{Cost: usage.Cost, Latency: usage.Latency, Accuracy: s.Model.Config().Accuracy},
		}, nil
	}
}

// ---------------------------------------------------------------- Summarizer (Fig. 9)

func (s *Suite) summarizerSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        Summarizer,
		Description: "summarize applicants and status for a selected job posting",
		Inputs:      []registry.ParamSpec{{Name: "JOB_ID", Type: "int"}},
		Outputs:     []registry.ParamSpec{{Name: "SUMMARY", Type: "text"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.005, Accuracy: 0.9},
		Cacheable:   true,
		Reads:       []string{"hr"},
	}
}

func (s *Suite) summarizerProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		id := asInt(inv.Inputs["JOB_ID"])
		job, err := s.stmtJobSummary.QueryContext(ctx, id)
		if err != nil {
			return agent.Outputs{}, err
		}
		if len(job.Rows) == 0 {
			return agent.Outputs{}, fmt.Errorf("summarizer: job %d not found", id)
		}
		apps, err := s.stmtAppsByJob.QueryContext(ctx, id)
		if err != nil {
			return agent.Outputs{}, err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "Job %d: %s in %s paying %s.", id, job.Rows[0][0].S, job.Rows[0][1].S, job.Rows[0][2])
		for _, r := range apps.Rows {
			fmt.Fprintf(&b, " %s applicants: %s.", r[0].S, r[1])
		}
		summary, usage := s.Model.Summarize(b.String(), 50)
		return agent.Outputs{
			Values:  map[string]any{"SUMMARY": summary},
			Tags:    []string{TagSummary},
			Display: summary,
			Usage:   agent.Usage{Cost: usage.Cost, Latency: usage.Latency, Accuracy: s.Model.Config().Accuracy},
		}, nil
	}
}

// ---------------------------------------------------------------- Profiler (Fig. 6)

func (s *Suite) profilerSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        Profiler,
		Description: "presents a user profile UI form to collect job seeker profile information from the user",
		Inputs:      []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
		Outputs:     []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.001, Accuracy: 0.95},
		// Deliberately NOT Cacheable: presenting the profile form
		// (Outputs.Display) is a UI side effect the runtime publishes on
		// every invocation; a memo hit would skip it and the form would
		// never reach the user on warm asks.
	}
}

// profilerProc builds a job-seeker profile from the criteria: title and
// location extracted via the model, skills suggested from the knowledge
// base. The declarative UI form it would render is published to the display
// stream (§V-B: "agents can also generate UI forms ... specified
// declaratively").
func (s *Suite) profilerProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		criteria, _ := inv.Inputs["CRITERIA"].(string)
		title, u1 := s.Model.Extract("title", criteria)
		location, u2 := s.Model.Extract("location", criteria)
		skills := s.Ent.KB.SkillsFor(title)
		profile := map[string]any{
			"criteria": criteria,
			"title":    title,
			"location": location,
			"skills":   skills,
		}
		form := fmt.Sprintf(`{"form":"profile","fields":[{"name":"title","value":%q},{"name":"location","value":%q}]}`, title, location)
		return agent.Outputs{
			Values:  map[string]any{"JOBSEEKER_DATA": profile},
			Display: form,
			Usage:   agent.Usage{Cost: u1.Cost + u2.Cost, Latency: u1.Latency + u2.Latency, Accuracy: s.Model.Config().Accuracy},
		}, nil
	}
}

// ---------------------------------------------------------------- JobMatcher (Fig. 6)

func (s *Suite) jobMatcherSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        JobMatcher,
		Description: "assess the match quality between a job seeker profile and specific jobs, ranking the matches",
		Inputs: []registry.ParamSpec{
			{Name: "JOBSEEKER_DATA", Type: "profile"},
			{Name: "LIMIT", Type: "int", Optional: true, Default: 10},
		},
		Outputs:   []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
		QoS:       registry.QoSProfile{CostPerCall: 0.02, Accuracy: 0.9},
		Cacheable: true,
		// The matcher plans over hr.jobs, expands titles through the
		// taxonomy graph and scores with the LLM source (Fig. 7).
		Reads: []string{"hr", "taxonomy", "gpt-sim"},
	}
}

// jobMatcherProc retrieves candidate jobs through the data planner (the
// Fig. 7 plan: region -> LLM cities, title -> taxonomy expansion, then
// select) and scores each against the profile with the model.
func (s *Suite) jobMatcherProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		profile, _ := inv.Inputs["JOBSEEKER_DATA"].(map[string]any)
		if profile == nil {
			return agent.Outputs{}, fmt.Errorf("jobmatcher: missing profile")
		}
		criteria, _ := profile["criteria"].(string)
		limit := asInt(inv.Inputs["LIMIT"])
		if limit <= 0 {
			limit = 10
		}
		tgt, err := dataplan.BuildTarget(s.Ent.DB, "jobs")
		if err != nil {
			return agent.Outputs{}, err
		}
		asset, err := s.DataReg.Get("hr.jobs")
		if err != nil {
			return agent.Outputs{}, err
		}
		bind := dataplan.TableBinding{Asset: asset, Target: tgt}
		// Plan as ourselves: data governance (asset grants) binds agents.
		plan, err := s.DataPlanner.PlanFor(JobMatcher, criteria, bind, "taxonomy")
		if err != nil {
			return agent.Outputs{}, err
		}
		res, err := s.exec.Execute(plan)
		if err != nil {
			return agent.Outputs{}, err
		}
		type scored struct {
			row   map[string]any
			score float64
		}
		var cands []scored
		totalCost := res.Usage.Cost
		for _, row := range res.Rows {
			desc := fmt.Sprintf("%v in %v", row["title"], row["city"])
			score, u := s.Model.Score(criteria, desc)
			totalCost += u.Cost
			cands = append(cands, scored{row: row, score: score})
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return fmt.Sprint(cands[i].row["id"]) < fmt.Sprint(cands[j].row["id"])
		})
		if len(cands) > limit {
			cands = cands[:limit]
		}
		matches := make([]any, 0, len(cands))
		for _, c := range cands {
			m := map[string]any{"score": c.score}
			for k, v := range c.row {
				m[k] = v
			}
			matches = append(matches, m)
		}
		return agent.Outputs{
			Values: map[string]any{"MATCHES": matches},
			Usage:  agent.Usage{Cost: totalCost, Latency: res.Usage.Latency, Accuracy: res.Usage.Accuracy},
		}, nil
	}
}

// ---------------------------------------------------------------- Presenter (Fig. 6)

func (s *Suite) presenterSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        Presenter,
		Description: "present the matched jobs and results to the end user as a readable rendering",
		Inputs:      []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
		Outputs:     []registry.ParamSpec{{Name: "RENDERED", Type: "text"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.0001, Accuracy: 1.0},
		Cacheable:   true,
	}
}

func (s *Suite) presenterProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		matches, _ := inv.Inputs["MATCHES"].([]any)
		var b strings.Builder
		if len(matches) == 0 {
			b.WriteString("No matching jobs found.")
		}
		for i, m := range matches {
			mm, _ := m.(map[string]any)
			fmt.Fprintf(&b, "%d. %v in %v — salary %v (match %.2f)\n",
				i+1, mm["title"], mm["city"], mm["salary"], toFloat(mm["score"]))
		}
		out := b.String()
		return agent.Outputs{
			Values:  map[string]any{"RENDERED": out},
			Display: out,
		}, nil
	}
}

func toFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	default:
		return 0
	}
}

// ---------------------------------------------------------------- Ranker

func (s *Suite) rankerSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        Ranker,
		Description: "rank and cluster applicants for a job posting using predictive model scores",
		Inputs:      []registry.ParamSpec{{Name: "JOB_ID", Type: "int"}},
		Outputs:     []registry.ParamSpec{{Name: "RANKED", Type: "rows"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.003, Accuracy: 0.93},
		Cacheable:   true,
		Reads:       []string{"hr"},
	}
}

func (s *Suite) rankerProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		id := asInt(inv.Inputs["JOB_ID"])
		res, err := s.stmtTopApps.QueryContext(ctx, id)
		if err != nil {
			return agent.Outputs{}, err
		}
		rows := res.Maps()
		var b strings.Builder
		fmt.Fprintf(&b, "Top applicants for job %d:\n", id)
		for i, r := range rows {
			fmt.Fprintf(&b, "%d. %v (status %v, score %.2f)\n", i+1, r["profile_id"], r["status"], toFloat(r["score"]))
		}
		return agent.Outputs{
			Values:  map[string]any{"RANKED": rows},
			Display: b.String(),
		}, nil
	}
}

// ---------------------------------------------------------------- Advisor

func (s *Suite) advisorSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        Advisor,
		Description: "provide career advice and skill recommendations for job seekers",
		Inputs:      []registry.ParamSpec{{Name: "QUESTION", Type: "text"}},
		Outputs:     []registry.ParamSpec{{Name: "ADVICE", Type: "text"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.008, Accuracy: 0.88},
		Cacheable:   true,
		Reads:       []string{"gpt-sim"},
	}
}

func (s *Suite) advisorProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		q, _ := inv.Inputs["QUESTION"].(string)
		advice, usage := s.Model.Generate("career advice: " + q)
		return agent.Outputs{
			Values:  map[string]any{"ADVICE": advice},
			Display: advice,
			Usage:   agent.Usage{Cost: usage.Cost, Latency: usage.Latency, Accuracy: s.Model.Config().Accuracy},
		}, nil
	}
}

// ---------------------------------------------------------------- Moderator

func (s *Suite) moderatorSpec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        Moderator,
		Description: "content moderation guardrail: blocks unsafe or offensive generated text before display",
		Inputs:      []registry.ParamSpec{{Name: "TEXT", Type: "text"}},
		Outputs:     []registry.ParamSpec{{Name: "VERDICT", Type: "json"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.0003, Accuracy: 0.97},
		Cacheable:   true,
	}
}

var blocklist = []string{"offensive", "slur", "ssn", "password", "credit card"}

func (s *Suite) moderatorProc() agent.Processor {
	return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		text, _ := inv.Inputs["TEXT"].(string)
		lower := strings.ToLower(text)
		for _, bad := range blocklist {
			if strings.Contains(lower, bad) {
				return agent.Outputs{
					Values: map[string]any{"VERDICT": map[string]any{"allowed": false, "reason": "matched blocklist term: " + bad}},
				}, nil
			}
		}
		return agent.Outputs{
			Values: map[string]any{"VERDICT": map[string]any{"allowed": true}},
		}, nil
	}
}

// queryJobByID is a shared helper for examples and tests.
func (s *Suite) queryJobByID(id int) (*relational.Result, error) {
	return s.stmtJobByID.Query(id)
}
