package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/cluster"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

// benchAgentEnv builds a store + factory with one synthetic worker agent.
func benchAgentEnv(workers int) (*streams.Store, *agent.Instance, error) {
	store := streams.NewStore()
	spec := registry.AgentSpec{
		Name:        "WORKER",
		Description: "synthetic worker",
		Inputs:      []registry.ParamSpec{{Name: "X"}},
		Outputs:     []registry.ParamSpec{{Name: "Y"}},
	}
	inst, err := agent.Attach(store, "session:bench", agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{Values: map[string]any{"Y": inv.Inputs["X"]}}, nil
	}), agent.Options{Workers: workers})
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return store, inst, nil
}

// Fig2Deployment measures the cluster simulator (Fig. 2): placement by
// resource class, restart-on-failure MTTR, and scale-out.
func Fig2Deployment(seed int64) (*Table, error) {
	store := streams.NewStore()
	defer store.Close()
	reg := registry.NewAgentRegistry()
	for _, spec := range []registry.AgentSpec{
		{Name: "CPUAGENT", Description: "cpu worker", Inputs: []registry.ParamSpec{{Name: "X"}},
			Outputs: []registry.ParamSpec{{Name: "Y"}}, Deployment: registry.Deployment{Resource: "cpu", Workers: 2}},
		{Name: "GPUMODEL", Description: "gpu model", Inputs: []registry.ParamSpec{{Name: "X"}},
			Outputs: []registry.ParamSpec{{Name: "Y"}}, Deployment: registry.Deployment{Resource: "gpu", Workers: 1}},
	} {
		if err := reg.Register(spec); err != nil {
			return nil, err
		}
	}
	f := agent.NewFactory(reg)
	proc := func(registry.AgentSpec) agent.Processor {
		return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			return agent.Outputs{Values: map[string]any{"Y": 1}}, nil
		}
	}
	f.RegisterConstructor("CPUAGENT", proc)
	f.RegisterConstructor("GPUMODEL", proc)

	c := cluster.New(store, f, "session:f2")
	defer c.Shutdown()
	for _, n := range []struct {
		name, res string
		capacity  int
	}{{"cpu-1", "cpu", 8}, {"cpu-2", "cpu", 8}, {"gpu-1", "gpu", 4}} {
		if err := c.AddNode(n.name, n.res, n.capacity); err != nil {
			return nil, err
		}
	}

	t := &Table{ID: "F2", Title: "Deployment in enterprise clusters (Fig. 2)"}

	// Placement: CPU agents spread; GPU agents pinned to the GPU node.
	if _, err := c.Scale("CPUAGENT", 6); err != nil {
		return nil, err
	}
	if _, err := c.Scale("GPUMODEL", 2); err != nil {
		return nil, err
	}
	placement := c.Placement()
	t.Rows = append(t.Rows, Row{Series: "placement", Metrics: []Metric{
		{"cpu-1", fmt.Sprint(placement["cpu-1"])},
		{"cpu-2", fmt.Sprint(placement["cpu-2"])},
		{"gpu-1", fmt.Sprint(placement["gpu-1"])},
	}})

	// Restart on failure: kill every CPU container, measure reconcile time.
	ctrs := c.Containers("CPUAGENT", cluster.Running)
	for _, ctr := range ctrs {
		if err := c.Kill(ctr.ID); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	restarted, err := c.Reconcile()
	if err != nil {
		return nil, err
	}
	mttr := time.Since(start)
	t.Rows = append(t.Rows, Row{Series: "failure", Metrics: []Metric{
		{"killed", fmt.Sprint(len(ctrs))},
		{"restarted", fmt.Sprint(restarted)},
		{"recovery", ms(mttr)},
		{"per_container", us(mttr / time.Duration(max(restarted, 1)))},
	}})

	// Scale-out latency.
	start = time.Now()
	if _, err := c.Scale("CPUAGENT", 12); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Series: "scale 6->12", Metrics: []Metric{
		{"latency", ms(time.Since(start))},
	}})
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig3AgentModel measures the Fig. 3 agent model: processor round trips
// through streams and worker-pool concurrency scaling.
func Fig3AgentModel(seed int64) (*Table, error) {
	t := &Table{ID: "F3", Title: "Agent model (Fig. 3): stream-triggered processing"}

	// Sequential round-trip latency.
	store, inst, err := benchAgentEnv(4)
	if err != nil {
		return nil, err
	}
	const n = 200
	start := time.Now()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("seq%d", i)
		if err := agent.Execute(store, "session:bench", "WORKER", map[string]any{"X": i}, "", id); err != nil {
			return nil, err
		}
		if d := agent.AwaitDone(store, "session:bench", id); d == nil {
			return nil, fmt.Errorf("no DONE for %s", id)
		}
	}
	seq := time.Since(start)
	inst.Stop()
	store.Close()
	t.Rows = append(t.Rows, Row{Series: "sequential", Metrics: []Metric{
		{"invocations", fmt.Sprint(n)},
		{"latency/inv", us(seq / n)},
		{"throughput", fmt.Sprintf("%.0f inv/s", float64(n)/seq.Seconds())},
	}})

	// Worker-pool scaling with a 2ms simulated processor.
	for _, workers := range []int{1, 4, 8} {
		store := streams.NewStore()
		spec := registry.AgentSpec{
			Name:   "SLOWWORKER",
			Inputs: []registry.ParamSpec{{Name: "X"}}, Outputs: []registry.ParamSpec{{Name: "Y"}},
		}
		inst, err := agent.Attach(store, "session:bench", agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			time.Sleep(2 * time.Millisecond)
			return agent.Outputs{Values: map[string]any{"Y": 1}}, nil
		}), agent.Options{Workers: workers})
		if err != nil {
			store.Close()
			return nil, err
		}
		const m = 64
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < m; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				id := fmt.Sprintf("w%d", i)
				_ = agent.Execute(store, "session:bench", "SLOWWORKER", map[string]any{"X": i}, "", id)
				agent.AwaitDone(store, "session:bench", id)
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		inst.Stop()
		store.Close()
		t.Rows = append(t.Rows, Row{Series: fmt.Sprintf("workers=%d", workers), Metrics: []Metric{
			{"tasks", fmt.Sprint(m)},
			{"wall", ms(elapsed)},
			{"speedup_vs_serial", fmt.Sprintf("%.1fx", (2*time.Millisecond*m).Seconds()/elapsed.Seconds())},
		}})
	}
	return t, nil
}

// Fig4PetriTriggering measures the PetriNet triggering mechanism (Fig. 4):
// multi-place transition firing throughput and pairing policies.
func Fig4PetriTriggering(seed int64) (*Table, error) {
	t := &Table{ID: "F4", Title: "PetriNet-inspired triggering (Fig. 4)"}
	for _, places := range []int{2, 4, 8} {
		params := make([]string, places)
		specInputs := make([]registry.ParamSpec, places)
		for i := range params {
			params[i] = fmt.Sprintf("P%d", i)
			specInputs[i] = registry.ParamSpec{Name: params[i]}
		}
		store := streams.NewStore()
		fired := make(chan struct{}, 4096)
		spec := registry.AgentSpec{
			Name: "JOINER", Inputs: specInputs,
			Outputs:    []registry.ParamSpec{{Name: "OUT"}},
			Properties: map[string]any{"listen_all": true},
		}
		inst, err := agent.Attach(store, "session:bench", agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			fired <- struct{}{}
			return agent.Outputs{}, nil
		}), agent.Options{Workers: 4})
		if err != nil {
			store.Close()
			return nil, err
		}
		const tuples = 100
		start := time.Now()
		for i := 0; i < tuples; i++ {
			for _, p := range params {
				if _, err := store.Publish(streams.Message{
					Stream: "session:bench:" + p, Session: "session:bench",
					Kind: streams.Data, Sender: "producer", Param: p, Payload: i,
				}); err != nil {
					return nil, err
				}
			}
		}
		for i := 0; i < tuples; i++ {
			select {
			case <-fired:
			case <-time.After(30 * time.Second):
				return nil, fmt.Errorf("petri fire timeout at places=%d", places)
			}
		}
		elapsed := time.Since(start)
		inst.Stop()
		store.Close()
		t.Rows = append(t.Rows, Row{Series: fmt.Sprintf("places=%d zip", places), Metrics: []Metric{
			{"transitions", fmt.Sprint(tuples)},
			{"rate", fmt.Sprintf("%.0f fires/s", float64(tuples)/elapsed.Seconds())},
			{"tokens", fmt.Sprint(tuples * places)},
		}})
	}
	t.Notes = append(t.Notes, "a transition fires only when every place holds a token; tokens pair FIFO under zip")
	return t, nil
}

// Fig5DataRegistry measures discovery over growing registries (Fig. 5):
// keyword vs vector search latency and recall@5.
func Fig5DataRegistry(seed int64) (*Table, error) {
	t := &Table{ID: "F5", Title: "Data registry discovery (Fig. 5)"}
	for _, size := range []int{100, 1000, 5000} {
		reg := registry.NewDataRegistry()
		topics := []string{"payroll", "benefits", "recruiting", "postings", "resumes", "skills", "interviews", "offers"}
		for i := 0; i < size; i++ {
			topic := topics[i%len(topics)]
			if err := reg.Register(registry.DataAsset{
				Name:        fmt.Sprintf("src%05d.t%d", i, i),
				Kind:        registry.KindRelational,
				Level:       registry.LevelTable,
				Description: fmt.Sprintf("table %d holding %s records for region %d", i, topic, i%29),
			}); err != nil {
				return nil, err
			}
		}
		const queries = 50
		hitsV, hitsK := 0, 0
		var vecTime, keyTime time.Duration
		for q := 0; q < queries; q++ {
			targetID := (q * 97) % size
			topic := topics[targetID%len(topics)]
			query := fmt.Sprintf("%s records region %d table %d", topic, targetID%29, targetID)
			want := fmt.Sprintf("src%05d.t%d", targetID, targetID)

			start := time.Now()
			vres := reg.SearchVector(query, 5)
			vecTime += time.Since(start)
			for _, h := range vres {
				if h.Asset.Name == want {
					hitsV++
					break
				}
			}
			start = time.Now()
			kres := reg.SearchKeyword(query, 5)
			keyTime += time.Since(start)
			for _, h := range kres {
				if h.Asset.Name == want {
					hitsK++
					break
				}
			}
		}
		t.Rows = append(t.Rows, Row{Series: fmt.Sprintf("assets=%d", size), Metrics: []Metric{
			{"vector_recall@5", pct(float64(hitsV) / queries)},
			{"vector_latency", us(vecTime / queries)},
			{"keyword_recall@5", pct(float64(hitsK) / queries)},
			{"keyword_latency", us(keyTime / queries)},
		}})
	}
	t.Notes = append(t.Notes, "vector search uses feature-hash embeddings of asset metadata (the 'learned representations' of §V-D)")
	return t, nil
}

// AblationStreams measures the streams substrate: append throughput with
// and without WAL persistence, and delivery fan-out cost.
func AblationStreams(seed int64) (*Table, error) {
	t := &Table{ID: "A3", Title: "Streams substrate ablation (§V-A)"}
	const n = 5000

	for _, wal := range []bool{false, true} {
		var opts streams.Options
		label := "wal=off"
		if wal {
			dir, err := os.MkdirTemp("", "blueprint-bench")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			opts.WALPath = filepath.Join(dir, "bench.wal")
			label = "wal=on"
		}
		store, err := streams.Open(opts)
		if err != nil {
			return nil, err
		}
		if _, err := store.CreateStream("s", streams.StreamInfo{}); err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := store.Append(streams.Message{Stream: "s", Payload: i}); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		store.Close()
		t.Rows = append(t.Rows, Row{Series: label, Metrics: []Metric{
			{"appends", fmt.Sprint(n)},
			{"rate", fmt.Sprintf("%.0f msg/s", float64(n)/elapsed.Seconds())},
			{"latency/msg", us(elapsed / n)},
		}})
	}

	// Fan-out: one append delivered to k subscribers.
	for _, subs := range []int{1, 8, 64} {
		store := streams.NewStore()
		if _, err := store.CreateStream("s", streams.StreamInfo{}); err != nil {
			return nil, err
		}
		var sl []*streams.Subscription
		for i := 0; i < subs; i++ {
			sl = append(sl, store.Subscribe(streams.Filter{Streams: []string{"s"}}, false))
		}
		const m = 500
		start := time.Now()
		var wg sync.WaitGroup
		for _, sub := range sl {
			wg.Add(1)
			go func(sub *streams.Subscription) {
				defer wg.Done()
				for i := 0; i < m; i++ {
					<-sub.C()
				}
			}(sub)
		}
		for i := 0; i < m; i++ {
			if _, err := store.Append(streams.Message{Stream: "s", Payload: i}); err != nil {
				return nil, err
			}
		}
		wg.Wait()
		elapsed := time.Since(start)
		store.Close()
		t.Rows = append(t.Rows, Row{Series: fmt.Sprintf("fanout=%d", subs), Metrics: []Metric{
			{"deliveries", fmt.Sprint(m * subs)},
			{"rate", fmt.Sprintf("%.0f dlv/s", float64(m*subs)/elapsed.Seconds())},
		}})
	}
	return t, nil
}
