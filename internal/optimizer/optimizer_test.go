package optimizer

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"blueprint/internal/budget"
	"blueprint/internal/dataplan"
	"blueprint/internal/llm"
	"blueprint/internal/memo"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
)

func tiers() []Candidate {
	return []Candidate{
		{ID: "small", Cost: 0.001, Latency: 20 * time.Millisecond, Accuracy: 0.75},
		{ID: "medium", Cost: 0.006, Latency: 60 * time.Millisecond, Accuracy: 0.90},
		{ID: "large", Cost: 0.030, Latency: 160 * time.Millisecond, Accuracy: 0.98},
	}
}

func TestChooseCheapest(t *testing.T) {
	c, err := Choose(tiers(), CheapestObjectives(), budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "small" {
		t.Fatalf("cheapest = %s", c.ID)
	}
}

func TestChooseMostAccurate(t *testing.T) {
	c, err := Choose(tiers(), BestObjectives(), budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "large" {
		t.Fatalf("best = %s", c.ID)
	}
}

func TestChooseBalancedUnderConstraints(t *testing.T) {
	// Accuracy floor forces out small; cost cap forces out large.
	c, err := Choose(tiers(), DefaultObjectives(), budget.Limits{MinAccuracy: 0.85, MaxCost: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "medium" {
		t.Fatalf("constrained = %s", c.ID)
	}
}

func TestChooseLatencyCap(t *testing.T) {
	c, err := Choose(tiers(), BestObjectives(), budget.Limits{MaxLatency: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "medium" {
		t.Fatalf("latency-capped best = %s", c.ID)
	}
}

func TestChooseInfeasible(t *testing.T) {
	_, err := Choose(tiers(), DefaultObjectives(), budget.Limits{MaxCost: 0.0001})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	_, err = Choose(nil, DefaultObjectives(), budget.Limits{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestScoresNormalization(t *testing.T) {
	s := Scores(tiers(), DefaultObjectives())
	if len(s) != 3 {
		t.Fatalf("scores = %v", s)
	}
	// Identical candidates score identically (no division by zero).
	same := []Candidate{{ID: "a", Cost: 1, Latency: time.Second, Accuracy: 0.5}, {ID: "b", Cost: 1, Latency: time.Second, Accuracy: 0.5}}
	ss := Scores(same, DefaultObjectives())
	if ss[0] != ss[1] {
		t.Fatalf("identical candidates diverge: %v", ss)
	}
	if Scores(nil, DefaultObjectives()) != nil {
		t.Fatal("nil scores")
	}
}

func TestPareto(t *testing.T) {
	cands := append(tiers(), Candidate{ID: "dominated", Cost: 0.031, Latency: 200 * time.Millisecond, Accuracy: 0.90})
	front := Pareto(cands)
	if len(front) != 3 {
		t.Fatalf("frontier = %+v", front)
	}
	for _, c := range front {
		if c.ID == "dominated" {
			t.Fatal("dominated candidate on frontier")
		}
	}
	// Sorted by cost.
	for i := 1; i < len(front); i++ {
		if front[i-1].Cost > front[i].Cost {
			t.Fatal("frontier not sorted")
		}
	}
}

func TestChooseModelTier(t *testing.T) {
	configs := llm.Presets(1)
	cfg, err := ChooseModelTier(configs, 500, BestObjectives(), budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tier != llm.TierLarge {
		t.Fatalf("best tier = %s", cfg.Tier)
	}
	cfg, err = ChooseModelTier(configs, 500, CheapestObjectives(), budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tier != llm.TierSmall {
		t.Fatalf("cheapest tier = %s", cfg.Tier)
	}
	// Accuracy floor with tight cost: medium wins.
	cfg, err = ChooseModelTier(configs, 1000, DefaultObjectives(), budget.Limits{MinAccuracy: 0.85, MaxCost: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tier != llm.TierMedium {
		t.Fatalf("constrained tier = %s", cfg.Tier)
	}
	// Zero tokens defaults sanely.
	if _, err := ChooseModelTier(configs, 0, DefaultObjectives(), budget.Limits{}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseDataPlan(t *testing.T) {
	direct := &dataplan.Plan{Strategy: "direct", Est: dataplan.Estimate{Cost: 0.0001, Latency: time.Millisecond, Accuracy: 0.5}}
	decomposed := &dataplan.Plan{Strategy: "decomposed", Est: dataplan.Estimate{Cost: 0.02, Latency: 100 * time.Millisecond, Accuracy: 0.95}}
	p, err := ChooseDataPlan([]*dataplan.Plan{direct, decomposed}, BestObjectives(), budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != "decomposed" {
		t.Fatalf("best plan = %s", p.Strategy)
	}
	p, err = ChooseDataPlan([]*dataplan.Plan{direct, decomposed}, CheapestObjectives(), budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != "direct" {
		t.Fatalf("cheapest plan = %s", p.Strategy)
	}
	// Accuracy floor forces decomposed even when minimizing cost.
	p, err = ChooseDataPlan([]*dataplan.Plan{direct, decomposed}, CheapestObjectives(), budget.Limits{MinAccuracy: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != "decomposed" {
		t.Fatalf("floored plan = %s", p.Strategy)
	}
}

func optimizerRegistry(t testing.TB) *registry.AgentRegistry {
	t.Helper()
	r := registry.NewAgentRegistry()
	specs := []registry.AgentSpec{
		{
			Name:        "MATCHER_PREMIUM",
			Description: "match job seeker profiles with job listings using a large accurate model",
			QoS:         registry.QoSProfile{CostPerCall: 0.05, Latency: 200 * time.Millisecond, Accuracy: 0.97},
		},
		{
			Name:        "MATCHER_BUDGET",
			Description: "match job seeker profiles with job listings using a small cheap model",
			QoS:         registry.QoSProfile{CostPerCall: 0.002, Latency: 20 * time.Millisecond, Accuracy: 0.8},
		},
	}
	for _, s := range specs {
		if err := r.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestAssignAgents(t *testing.T) {
	reg := optimizerRegistry(t)
	p := &planner.Plan{
		ID: "p", Utterance: "match me", Intent: "rank",
		Steps: []planner.Step{{ID: "s1", Agent: "MATCHER_PREMIUM", Task: "match job seeker profiles with job listings"}},
	}
	changed, err := AssignAgents(p, reg, CheapestObjectives(), budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 || p.Steps[0].Agent != "MATCHER_BUDGET" {
		t.Fatalf("assignment = %+v (changed=%d)", p.Steps[0], changed)
	}
	// Accuracy-first flips it back.
	changed, err = AssignAgents(p, reg, BestObjectives(), budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 || p.Steps[0].Agent != "MATCHER_PREMIUM" {
		t.Fatalf("assignment = %+v", p.Steps[0])
	}
	// No feasible candidate: keep original.
	changed, err = AssignAgents(p, reg, DefaultObjectives(), budget.Limits{MaxCost: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 || p.Steps[0].Agent != "MATCHER_PREMIUM" {
		t.Fatalf("infeasible must keep original: %+v", p.Steps[0])
	}
}

func TestEstimatePlanChain(t *testing.T) {
	reg := optimizerRegistry(t)
	// s1 -> s2 -> s3: a chain's critical path is the sum of its steps.
	p := &planner.Plan{
		Steps: []planner.Step{
			{ID: "s1", Agent: "MATCHER_PREMIUM"},
			{ID: "s2", Agent: "MATCHER_BUDGET",
				Bindings: map[string]planner.Binding{"IN": {FromStep: "s1", FromParam: "OUT"}}},
			{ID: "s3", Agent: "UNKNOWN",
				Bindings: map[string]planner.Binding{"IN": {FromStep: "s2", FromParam: "OUT"}}},
		},
	}
	cost, lat, acc := EstimatePlan(p, reg)
	if cost < 0.052-1e-9 || cost > 0.052+1e-9 {
		t.Fatalf("cost = %v", cost)
	}
	if lat != 220*time.Millisecond {
		t.Fatalf("latency = %v", lat)
	}
	want := 0.97 * 0.8
	if acc < want-1e-9 || acc > want+1e-9 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestEstimatePlanCriticalPathOverDAG(t *testing.T) {
	reg := optimizerRegistry(t)
	// s1 and s2 are independent (one wave): latency is the slower of the
	// two, not the sum — cost still sums over both.
	p := &planner.Plan{
		Steps: []planner.Step{
			{ID: "s1", Agent: "MATCHER_PREMIUM"},
			{ID: "s2", Agent: "MATCHER_BUDGET"},
		},
	}
	cost, lat, _ := EstimatePlan(p, reg)
	if lat != 200*time.Millisecond {
		t.Fatalf("fan-out latency = %v, want max(200ms, 20ms)", lat)
	}
	if cost < 0.052-1e-9 || cost > 0.052+1e-9 {
		t.Fatalf("cost = %v", cost)
	}

	// Diamond: s1 -> {s2, s3} -> s4. Critical path runs through the slowest
	// middle step.
	dep := func(from ...string) map[string]planner.Binding {
		b := map[string]planner.Binding{}
		for i, f := range from {
			b[fmt.Sprintf("IN%d", i)] = planner.Binding{FromStep: f, FromParam: "OUT"}
		}
		return b
	}
	diamond := &planner.Plan{
		Steps: []planner.Step{
			{ID: "s1", Agent: "MATCHER_BUDGET"},
			{ID: "s2", Agent: "MATCHER_PREMIUM", Bindings: dep("s1")},
			{ID: "s3", Agent: "MATCHER_BUDGET", Bindings: dep("s1")},
			{ID: "s4", Agent: "MATCHER_BUDGET", Bindings: dep("s2", "s3")},
		},
	}
	_, lat, _ = EstimatePlan(diamond, reg)
	if want := (20 + 200 + 20) * time.Millisecond; lat != want {
		t.Fatalf("diamond latency = %v, want %v", lat, want)
	}
}

func TestEstimatePlanWithMemoPricesResidualCost(t *testing.T) {
	reg := registry.NewAgentRegistry()
	for _, spec := range []registry.AgentSpec{
		{Name: "FETCH", Description: "fetch", Cacheable: true,
			Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:     registry.QoSProfile{CostPerCall: 0.01, Latency: 100 * time.Millisecond, Accuracy: 0.9}},
		{Name: "DERIVE", Description: "derive", Cacheable: true,
			Inputs:  []registry.ParamSpec{{Name: "IN", Type: "text"}},
			Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:     registry.QoSProfile{CostPerCall: 0.02, Latency: 50 * time.Millisecond, Accuracy: 0.9}},
	} {
		if err := reg.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	p := &planner.Plan{
		Utterance: "the ask",
		Steps: []planner.Step{
			{ID: "s1", Agent: "FETCH",
				Bindings: map[string]planner.Binding{"Q": {FromUserText: true}}},
			{ID: "s2", Agent: "DERIVE",
				Bindings: map[string]planner.Binding{"IN": {FromStep: "s1", FromParam: "OUT"}}},
		},
	}

	m := memo.New(16)
	// Cold store: identical to EstimatePlan.
	cost, lat, _, hits := EstimatePlanWithMemo(p, reg, m)
	if hits != 0 || cost != 0.03 || lat != 150*time.Millisecond {
		t.Fatalf("cold: cost=%v lat=%v hits=%d", cost, lat, hits)
	}

	// Warm s1: its projected contribution drops to zero, and its cached
	// outputs make s2's key computable — the chain projects fully warm.
	k1, err := memo.ComputeKey("FETCH", 1, map[string]any{"Q": "the ask"})
	if err != nil {
		t.Fatal(err)
	}
	m.Put(k1, "FETCH", nil, 0, memo.Entry{Outputs: map[string]any{"OUT": "fetched"}, Cost: 0.01})
	cost, lat, _, hits = EstimatePlanWithMemo(p, reg, m)
	if hits != 1 || cost != 0.02 || lat != 50*time.Millisecond {
		t.Fatalf("s1 warm: cost=%v lat=%v hits=%d", cost, lat, hits)
	}
	k2, err := memo.ComputeKey("DERIVE", 1, map[string]any{"IN": "fetched"})
	if err != nil {
		t.Fatal(err)
	}
	m.Put(k2, "DERIVE", nil, 0, memo.Entry{Outputs: map[string]any{"OUT": "derived"}, Cost: 0.02})
	cost, lat, _, hits = EstimatePlanWithMemo(p, reg, m)
	if hits != 2 || cost != 0 || lat != 0 {
		t.Fatalf("fully warm: cost=%v lat=%v hits=%d", cost, lat, hits)
	}

	// Nil store degrades to the cold projection.
	cost, _, _, hits = EstimatePlanWithMemo(p, reg, nil)
	if hits != 0 || cost != 0.03 {
		t.Fatalf("nil store: cost=%v hits=%d", cost, hits)
	}
}

func TestEstimatePlanWithMemoTransformsAreMisses(t *testing.T) {
	reg := registry.NewAgentRegistry()
	if err := reg.Register(registry.AgentSpec{
		Name: "FETCH", Description: "fetch", Cacheable: true,
		Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
		QoS:     registry.QoSProfile{CostPerCall: 0.01, Latency: 100 * time.Millisecond, Accuracy: 0.9},
	}); err != nil {
		t.Fatal(err)
	}
	p := &planner.Plan{
		Utterance: "the ask",
		Steps: []planner.Step{{ID: "s1", Agent: "FETCH",
			Bindings: map[string]planner.Binding{"Q": {FromUserText: true, Transform: "criteria"}}}},
	}
	m := memo.New(16)
	// Even a warm entry for the raw utterance cannot be projected: the
	// transform output is model-dependent, so the step prices as a miss.
	k, _ := memo.ComputeKey("FETCH", 1, map[string]any{"Q": "the ask"})
	m.Put(k, "FETCH", nil, 0, memo.Entry{})
	if cost, _, _, hits := EstimatePlanWithMemo(p, reg, m); hits != 0 || cost != 0.01 {
		t.Fatalf("transform step projected as hit: cost=%v hits=%d", cost, hits)
	}
}
