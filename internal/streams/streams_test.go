package streams

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mustCreate(t *testing.T, s *Store, id string, info StreamInfo) {
	t.Helper()
	if _, err := s.CreateStream(id, info); err != nil {
		t.Fatalf("CreateStream(%q): %v", id, err)
	}
}

func mustAppend(t *testing.T, s *Store, msg Message) Message {
	t.Helper()
	out, err := s.Append(msg)
	if err != nil {
		t.Fatalf("Append to %q: %v", msg.Stream, err)
	}
	return out
}

func recvTimeout(t *testing.T, ch <-chan Message) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("subscription channel closed unexpectedly")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	return Message{}
}

func TestCreateAppendRead(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "user", StreamInfo{Session: "session:1", Creator: "ui"})

	m1 := mustAppend(t, s, Message{Stream: "user", Kind: Data, Payload: "hello"})
	m2 := mustAppend(t, s, Message{Stream: "user", Kind: Data, Payload: "world"})

	if m1.Seq != 0 || m2.Seq != 1 {
		t.Fatalf("seqs = %d,%d want 0,1", m1.Seq, m2.Seq)
	}
	if m2.TS <= m1.TS {
		t.Fatalf("timestamps not increasing: %d then %d", m1.TS, m2.TS)
	}
	if m1.Session != "session:1" {
		t.Fatalf("session not inherited from stream: %q", m1.Session)
	}
	got, err := s.ReadAll("user")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].PayloadString() != "hello" || got[1].PayloadString() != "world" {
		t.Fatalf("ReadAll = %+v", got)
	}
}

func TestCreateDuplicate(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{})
	if _, err := s.CreateStream("a", StreamInfo{}); !errors.Is(err, ErrStreamExists) {
		t.Fatalf("err = %v, want ErrStreamExists", err)
	}
	if _, err := s.EnsureStream("a", StreamInfo{}); err != nil {
		t.Fatalf("EnsureStream on existing: %v", err)
	}
}

func TestAppendToMissingStream(t *testing.T) {
	s := NewStore()
	defer s.Close()
	if _, err := s.Append(Message{Stream: "nope"}); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("err = %v, want ErrStreamNotFound", err)
	}
}

func TestCloseStreamRejectsAppends(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{})
	if err := s.CloseStream("a", "tester"); err != nil {
		t.Fatal(err)
	}
	info, err := s.Info("a")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Closed {
		t.Fatal("stream not marked closed")
	}
	if _, err := s.Append(Message{Stream: "a"}); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("err = %v, want ErrStreamClosed", err)
	}
}

func TestReadOffsets(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{})
	for i := 0; i < 10; i++ {
		mustAppend(t, s, Message{Stream: "a", Payload: i})
	}
	got, err := s.Read("a", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Seq != 7 {
		t.Fatalf("Read(7) = %+v", got)
	}
	got, err = s.Read("a", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0].Seq != 2 || got[3].Seq != 5 {
		t.Fatalf("Read(2,4) = %+v", got)
	}
	got, err = s.Read("a", 100, 0)
	if err != nil || got != nil {
		t.Fatalf("Read past end = %v, %v", got, err)
	}
	got, err = s.Read("a", -5, 2)
	if err != nil || len(got) != 2 || got[0].Seq != 0 {
		t.Fatalf("Read negative offset = %v, %v", got, err)
	}
}

func TestSubscribeLive(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{})
	sub := s.Subscribe(Filter{Streams: []string{"a"}}, false)
	defer sub.Cancel()

	mustAppend(t, s, Message{Stream: "a", Payload: "x"})
	m := recvTimeout(t, sub.C())
	if m.PayloadString() != "x" {
		t.Fatalf("got %q", m.PayloadString())
	}
}

func TestSubscribeReplay(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{})
	mustCreate(t, s, "b", StreamInfo{})
	mustAppend(t, s, Message{Stream: "a", Payload: "1"})
	mustAppend(t, s, Message{Stream: "b", Payload: "2"})
	mustAppend(t, s, Message{Stream: "a", Payload: "3"})

	sub := s.Subscribe(Filter{}, true)
	defer sub.Cancel()
	var got []string
	for i := 0; i < 3; i++ {
		got = append(got, recvTimeout(t, sub.C()).PayloadString())
	}
	// Replay must be in global TS order across streams.
	want := []string{"1", "2", "3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay order = %v, want %v", got, want)
		}
	}
}

func TestSubscribeTagFilter(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "conv", StreamInfo{})
	sub := s.Subscribe(Filter{IncludeTags: []string{"SQL"}, ExcludeTags: []string{"DRAFT"}}, false)
	defer sub.Cancel()

	mustAppend(t, s, Message{Stream: "conv", Tags: []string{"NLQ"}, Payload: "skip"})
	mustAppend(t, s, Message{Stream: "conv", Tags: []string{"SQL", "DRAFT"}, Payload: "skip2"})
	mustAppend(t, s, Message{Stream: "conv", Tags: []string{"SQL"}, Payload: "take"})

	m := recvTimeout(t, sub.C())
	if m.PayloadString() != "take" {
		t.Fatalf("tag filter delivered %q", m.PayloadString())
	}
}

func TestSubscribeKindAndSenderFilter(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{})
	sub := s.Subscribe(Filter{Kinds: []Kind{Control}, ExcludeSenders: []string{"me"}}, false)
	defer sub.Cancel()

	mustAppend(t, s, Message{Stream: "a", Kind: Data, Payload: "nope"})
	mustAppend(t, s, Message{Stream: "a", Kind: Control, Sender: "me", Directive: &Directive{Op: "X"}})
	mustAppend(t, s, Message{Stream: "a", Kind: Control, Sender: "coordinator", Directive: &Directive{Op: OpExecuteAgent, Agent: "sql"}})

	m := recvTimeout(t, sub.C())
	if m.Directive == nil || m.Directive.Op != OpExecuteAgent {
		t.Fatalf("got %+v", m)
	}
}

func TestSessionScopeFilter(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "x", StreamInfo{Session: "session:1"})
	mustCreate(t, s, "y", StreamInfo{Session: "session:1:profile"})
	mustCreate(t, s, "z", StreamInfo{Session: "session:2"})

	sub := s.Subscribe(Filter{Session: "session:1"}, false)
	defer sub.Cancel()

	mustAppend(t, s, Message{Stream: "z", Payload: "other"})
	mustAppend(t, s, Message{Stream: "y", Payload: "nested"})
	mustAppend(t, s, Message{Stream: "x", Payload: "direct"})

	if got := recvTimeout(t, sub.C()).PayloadString(); got != "nested" {
		t.Fatalf("first = %q, want nested", got)
	}
	if got := recvTimeout(t, sub.C()).PayloadString(); got != "direct" {
		t.Fatalf("second = %q, want direct", got)
	}
}

func TestScopeContainsNoFalsePrefix(t *testing.T) {
	if scopeContains("session:1", "session:10") {
		t.Fatal("session:10 must not be contained in session:1")
	}
	if !scopeContains("session:1", "session:1:a:b") {
		t.Fatal("deep nesting must be contained")
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{})
	sub := s.Subscribe(Filter{}, false)
	sub.Cancel()
	mustAppend(t, s, Message{Stream: "a", Payload: "after"})
	// Channel must be closed.
	if _, ok := <-sub.C(); ok {
		t.Fatal("received on cancelled subscription")
	}
}

func TestStoreCloseCancelsSubscribers(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "a", StreamInfo{})
	sub := s.Subscribe(Filter{}, false)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.C():
		if ok {
			t.Fatal("expected closed channel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed after store Close")
	}
	if _, err := s.Append(Message{Stream: "a"}); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := s.CreateStream("b", StreamInfo{}); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("create after close: %v", err)
	}
	// Subscribing after close returns an already-closed subscription.
	sub2 := s.Subscribe(Filter{}, false)
	if _, ok := <-sub2.C(); ok {
		t.Fatal("subscription on closed store should be closed")
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestListBySession(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{Session: "session:1"})
	mustCreate(t, s, "b", StreamInfo{Session: "session:2"})
	mustCreate(t, s, "c", StreamInfo{Session: "session:1:x"})

	all := s.List("")
	if len(all) != 3 {
		t.Fatalf("List all = %d", len(all))
	}
	one := s.List("session:1")
	if len(one) != 2 || one[0].ID != "a" || one[1].ID != "c" {
		t.Fatalf("List session:1 = %+v", one)
	}
}

func TestHistoryOrdering(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{Session: "s:1"})
	mustCreate(t, s, "b", StreamInfo{Session: "s:1"})
	mustAppend(t, s, Message{Stream: "b", Payload: 1})
	mustAppend(t, s, Message{Stream: "a", Payload: 2})
	mustAppend(t, s, Message{Stream: "b", Payload: 3})

	h := s.History("s:1")
	if len(h) != 3 {
		t.Fatalf("history len = %d", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].TS <= h[i-1].TS {
			t.Fatal("history not TS-ordered")
		}
	}
	if s.History("s:2") != nil {
		t.Fatal("history of unknown session should be empty")
	}
}

func TestPublishCreatesStream(t *testing.T) {
	s := NewStore()
	defer s.Close()
	m, err := s.Publish(Message{Stream: "auto", Session: "s:1", Sender: "agent", Payload: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 0 {
		t.Fatalf("seq = %d", m.Seq)
	}
	info, err := s.Info("auto")
	if err != nil || info.Session != "s:1" || info.Creator != "agent" {
		t.Fatalf("info = %+v err=%v", info, err)
	}
}

func TestStats(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{})
	sub := s.Subscribe(Filter{}, false)
	defer sub.Cancel()
	mustAppend(t, s, Message{Stream: "a", Kind: Data})
	mustAppend(t, s, Message{Stream: "a", Kind: Control, Directive: &Directive{Op: "X"}})
	mustAppend(t, s, Message{Stream: "a", Kind: Event})
	for i := 0; i < 3; i++ {
		recvTimeout(t, sub.C())
	}
	st := s.StatsSnapshot()
	if st.StreamsCreated != 1 || st.MessagesAppended != 3 || st.DataMessages != 1 || st.ControlMessages != 1 || st.EventMessages != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Deliveries != 3 {
		t.Fatalf("deliveries = %d, want 3", st.Deliveries)
	}
	if st.Subscriptions != 1 {
		t.Fatalf("subscriptions = %d, want 1", st.Subscriptions)
	}
}

func TestConcurrentAppendAndSubscribe(t *testing.T) {
	s := NewStore()
	defer s.Close()
	mustCreate(t, s, "a", StreamInfo{})
	const producers, perProducer = 8, 100

	sub := s.Subscribe(Filter{Streams: []string{"a"}}, false)
	defer sub.Cancel()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := s.Append(Message{Stream: "a", Sender: fmt.Sprintf("p%d", p), Payload: i}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < producers*perProducer; i++ {
			<-sub.C()
		}
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("did not receive all messages")
	}
	info, _ := s.Info("a")
	if info.Len != producers*perProducer {
		t.Fatalf("stream len = %d, want %d", info.Len, producers*perProducer)
	}
	// Seqs must be dense 0..N-1.
	msgs, _ := s.ReadAll("a")
	for i, m := range msgs {
		if m.Seq != int64(i) {
			t.Fatalf("seq[%d] = %d", i, m.Seq)
		}
	}
}

func TestWALPersistRecover(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "streams.wal")

	s, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, "conv", StreamInfo{Session: "s:9", Creator: "ui", Tags: []string{"conversation"}})
	mustAppend(t, s, Message{Stream: "conv", Kind: Data, Sender: "user", Payload: "I am looking for a data scientist position"})
	mustAppend(t, s, Message{Stream: "conv", Kind: Control, Sender: "ic", Directive: &Directive{Op: OpExecuteAgent, Agent: "nl2q"}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info, err := s2.Info("conv")
	if err != nil {
		t.Fatal(err)
	}
	if info.Session != "s:9" || info.Len != 2 {
		t.Fatalf("recovered info = %+v", info)
	}
	msgs, err := s2.ReadAll("conv")
	if err != nil {
		t.Fatal(err)
	}
	if msgs[0].PayloadString() != "I am looking for a data scientist position" {
		t.Fatalf("recovered payload = %q", msgs[0].PayloadString())
	}
	if msgs[1].Directive == nil || msgs[1].Directive.Agent != "nl2q" {
		t.Fatalf("recovered directive = %+v", msgs[1].Directive)
	}
	// New appends continue the logical clock and message ids monotonically.
	m := mustAppend(t, s2, Message{Stream: "conv", Payload: "more"})
	if m.TS <= msgs[1].TS {
		t.Fatalf("clock did not resume: new TS %d <= old %d", m.TS, msgs[1].TS)
	}
	if m.Seq != 2 {
		t.Fatalf("seq after recovery = %d, want 2", m.Seq)
	}
}

func TestWALRecoverToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "streams.wal")
	s, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, "a", StreamInfo{})
	mustAppend(t, s, Message{Stream: "a", Payload: "ok"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append garbage partial JSON.
	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"append","msg":{"id":"m9","stream":"a"`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	defer s2.Close()
	msgs, _ := s2.ReadAll("a")
	if len(msgs) != 1 || msgs[0].PayloadString() != "ok" {
		t.Fatalf("recovered = %+v", msgs)
	}
}

func TestFilterMatchesProperty(t *testing.T) {
	// Property: a filter with only ExcludeTags never matches a message
	// carrying one of those tags, regardless of other fields.
	f := func(tag string, extra []string) bool {
		if tag == "" {
			return true
		}
		msg := Message{Stream: "s", Tags: append([]string{tag}, extra...)}
		flt := Filter{ExcludeTags: []string{tag}}
		return !flt.Matches(&msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Data.String() != "data" || Control.String() != "control" || Event.String() != "event" {
		t.Fatal("kind strings wrong")
	}
	if Kind(42).String() != "kind(42)" {
		t.Fatalf("unknown kind = %q", Kind(42).String())
	}
}

func TestMessageClone(t *testing.T) {
	m := Message{Tags: []string{"a"}, Directive: &Directive{Op: "X"}}
	c := m.Clone()
	c.Tags[0] = "b"
	c.Directive.Op = "Y"
	if m.Tags[0] != "a" || m.Directive.Op != "X" {
		t.Fatal("clone shares state with original")
	}
}

func TestPayloadString(t *testing.T) {
	cases := []struct {
		payload any
		want    string
	}{
		{nil, ""},
		{"plain", "plain"},
		{map[string]any{"k": 1}, `{"k":1}`},
		{[]int{1, 2}, `[1,2]`},
	}
	for _, c := range cases {
		m := Message{Payload: c.payload}
		if got := m.PayloadString(); got != c.want {
			t.Errorf("PayloadString(%v) = %q, want %q", c.payload, got, c.want)
		}
	}
}
