// Package experiments regenerates every figure of the paper as a measured
// table (the paper has no numeric tables; Figures 1-10 are its evaluation
// surface). Each Fig* function runs the corresponding system behaviour and
// returns the series recorded in EXPERIMENTS.md. cmd/benchharness prints
// them; bench_test.go wraps the same paths as testing.B benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Short reduces iteration counts, fan-out widths and simulated latencies so
// a smoke run (make bench-smoke, cmd/benchharness -short) finishes in
// seconds while still exercising every measured path.
var Short bool

// Metric is one measured value.
type Metric struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Row is one series point of an experiment.
type Row struct {
	Series  string   `json:"series"`
	Metrics []Metric `json:"metrics"`
}

// Table is one experiment's result. The JSON shape is what benchharness
// -json writes as BENCH_<ID>.json for CI artifacts.
type Table struct {
	ID    string   `json:"id"` // "F1".."F10", "A1".."A12"
	Title string   `json:"title"`
	Rows  []Row    `json:"rows"`
	Notes []string `json:"notes,omitempty"`
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	width := 10
	for _, r := range t.Rows {
		if len(r.Series) > width {
			width = len(r.Series)
		}
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-*s", width, r.Series)
		for _, m := range r.Metrics {
			fmt.Fprintf(&b, "  %s=%s", m.Name, m.Value)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment (deterministic seed) and returns the tables in
// id order.
func All(seed int64) ([]*Table, error) {
	type exp struct {
		id  string
		run func(int64) (*Table, error)
	}
	exps := []exp{
		{"F1", Fig1EndToEnd},
		{"F2", Fig2Deployment},
		{"F3", Fig3AgentModel},
		{"F4", Fig4PetriTriggering},
		{"F5", Fig5DataRegistry},
		{"F6", Fig6TaskPlan},
		{"F7", Fig7DataPlan},
		{"F8", Fig8Conversation},
		{"F9", Fig9UIFlow},
		{"F10", Fig10ConversationFlow},
		{"A1", AblationBudget},
		{"A2", AblationOptimizer},
		{"A3", AblationStreams},
		{"A4", AblationPlanCache},
		{"A5", AblationScheduler},
		{"A6", AblationMemo},
		{"A7", AblationCompile},
		{"A8", AblationDurability},
		{"A9", FrontendShapeCache},
		{"A10", AblationObservability},
		{"A11", AblationResilience},
		{"A12", FlightRecorder},
	}
	out := make([]*Table, 0, len(exps))
	for _, e := range exps {
		t, err := e.run(seed)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", e.id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// ---- shared formatting helpers ----

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
}

func dollars(v float64) string { return fmt.Sprintf("$%.5f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
