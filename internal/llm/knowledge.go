package llm

import (
	"math/rand"
	"sort"
	"strings"
)

// KnowledgeBase is the world knowledge backing SimLLM: regions and their
// cities, job-title relationships and per-title skills. It stands in for the
// "general knowledge of LLMs" the paper taps when, e.g., no database column
// matches "SF bay area" (§V-G).
type KnowledgeBase struct {
	regions map[string][]string // region name (lowercase) -> cities
	titles  map[string][]string // title (lowercase) -> related titles (incl. itself)
	skills  map[string][]string // title (lowercase) -> skills
	intents map[string][]string // intent label -> cue words
}

// DefaultKnowledgeBase returns the HR-domain knowledge base used throughout
// the case study.
func DefaultKnowledgeBase() *KnowledgeBase {
	return &KnowledgeBase{
		regions: map[string][]string{
			"sf bay area": {
				"San Francisco", "Oakland", "San Jose", "Berkeley", "Palo Alto",
				"Mountain View", "Sunnyvale", "Fremont", "Redwood City", "Santa Clara",
			},
			"bay area": {
				"San Francisco", "Oakland", "San Jose", "Berkeley", "Palo Alto",
				"Mountain View", "Sunnyvale", "Fremont", "Redwood City", "Santa Clara",
			},
			"seattle area":   {"Seattle", "Bellevue", "Redmond", "Kirkland"},
			"new york metro": {"New York", "Brooklyn", "Jersey City", "Hoboken"},
			"socal":          {"Los Angeles", "San Diego", "Irvine", "Santa Monica"},
		},
		titles: map[string][]string{
			"data scientist": {
				"Data Scientist", "Senior Data Scientist", "Staff Data Scientist",
				"Machine Learning Engineer", "Applied Scientist",
			},
			"ml engineer": {
				"ML Engineer", "Machine Learning Engineer", "Senior Machine Learning Engineer",
				"Data Scientist",
			},
			"software engineer": {
				"Software Engineer", "Senior Software Engineer", "Staff Software Engineer",
				"Backend Engineer",
			},
			"data analyst": {
				"Data Analyst", "Senior Data Analyst", "Business Intelligence Analyst",
			},
			"recruiter": {
				"Recruiter", "Technical Recruiter", "Senior Recruiter",
			},
		},
		skills: map[string][]string{
			"data scientist":    {"python", "sql", "statistics", "machine learning", "experimentation"},
			"ml engineer":       {"python", "go", "distributed systems", "mlops", "deep learning"},
			"software engineer": {"go", "java", "distributed systems", "apis", "testing"},
			"data analyst":      {"sql", "excel", "dashboards", "statistics"},
		},
		intents: map[string][]string{
			"job_search":    {"looking", "position", "job", "opening", "role", "hiring", "apply"},
			"open_query":    {"how many", "which", "what", "list", "show", "count", "average", "top"},
			"summarize":     {"summarize", "summary", "overview", "brief"},
			"rank":          {"rank", "best", "top candidates", "sort", "order"},
			"profile":       {"my profile", "about me", "my skills", "resume", "cv"},
			"smalltalk":     {"hello", "hi", "thanks", "thank you", "bye"},
			"career_advice": {"advice", "career", "should i", "skills do i need", "become"},
		},
	}
}

// Regions returns the known region names, sorted.
func (kb *KnowledgeBase) Regions() []string {
	out := make([]string, 0, len(kb.regions))
	for r := range kb.regions {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// CitiesIn returns the cities of a region (nil if unknown). Matching is
// case-insensitive and tolerant of surrounding words ("in the SF Bay Area").
func (kb *KnowledgeBase) CitiesIn(region string) []string {
	needle := strings.ToLower(region)
	// Longest matching region name wins ("sf bay area" over "bay area").
	best := ""
	for name := range kb.regions {
		if strings.Contains(needle, name) && len(name) > len(best) {
			best = name
		}
	}
	if best == "" {
		return nil
	}
	return append([]string(nil), kb.regions[best]...)
}

// RelatedTitles returns titles related to the given one (including
// canonical forms), or nil if unknown.
func (kb *KnowledgeBase) RelatedTitles(title string) []string {
	needle := strings.ToLower(title)
	best := ""
	for name := range kb.titles {
		if strings.Contains(needle, name) && len(name) > len(best) {
			best = name
		}
	}
	if best == "" {
		return nil
	}
	return append([]string(nil), kb.titles[best]...)
}

// SkillsFor returns the skills associated with a title, or nil.
func (kb *KnowledgeBase) SkillsFor(title string) []string {
	needle := strings.ToLower(title)
	best := ""
	for name := range kb.skills {
		if strings.Contains(needle, name) && len(name) > len(best) {
			best = name
		}
	}
	if best == "" {
		return nil
	}
	return append([]string(nil), kb.skills[best]...)
}

// List answers a list-shaped knowledge query.
func (kb *KnowledgeBase) List(query string) []string {
	q := strings.ToLower(query)
	switch {
	case strings.Contains(q, "cities"):
		return kb.CitiesIn(q)
	case strings.Contains(q, "titles"), strings.Contains(q, "roles"):
		return kb.RelatedTitles(q)
	case strings.Contains(q, "skills"):
		return kb.SkillsFor(q)
	default:
		if cities := kb.CitiesIn(q); cities != nil {
			return cities
		}
		return kb.RelatedTitles(q)
	}
}

// IsListQuery reports whether a prompt is a list-valued knowledge query and
// returns the normalized query.
func (kb *KnowledgeBase) IsListQuery(prompt string) (string, bool) {
	q := strings.ToLower(prompt)
	for _, cue := range []string{"list", "cities in", "titles related", "skills for", "enumerate"} {
		if strings.Contains(q, cue) {
			return q, true
		}
	}
	return "", false
}

// Hallucination fabricates a plausible-but-wrong list item for degraded
// calls.
func (kb *KnowledgeBase) Hallucination(query string, r *rand.Rand) string {
	q := strings.ToLower(query)
	if strings.Contains(q, "cit") {
		wrong := []string{"Sacramento", "Los Angeles", "Portland", "Springfield"}
		return wrong[r.Intn(len(wrong))]
	}
	wrong := []string{"Data Janitor", "Prompt Engineer III", "Chief Scientist"}
	return wrong[r.Intn(len(wrong))]
}

// BestLabel picks the label whose cue words best match the text; ties and
// unknown text fall back to the last label (callers order labels with the
// fallback last, mirroring "open-ended query" as the catch-all intent in the
// case study).
func (kb *KnowledgeBase) BestLabel(text string, labels []string) string {
	t := strings.ToLower(text)
	bestLabel := labels[len(labels)-1]
	bestScore := 0
	for _, label := range labels {
		cues := kb.intents[label]
		score := 0
		for _, cue := range cues {
			if strings.Contains(t, cue) {
				score += len(cue) // longer, more specific cues weigh more
			}
		}
		if score > bestScore {
			bestScore = score
			bestLabel = label
		}
	}
	return bestLabel
}

// Extract implements the instruction-directed span extraction used by the
// data planner's extract operator.
func (kb *KnowledgeBase) Extract(instruction, text string) string {
	inst := strings.ToLower(instruction)
	switch {
	case strings.Contains(inst, "criteria"):
		return stripFiller(text)
	case strings.Contains(inst, "title"), strings.Contains(inst, "role"):
		return kb.extractTitle(text)
	case strings.Contains(inst, "location"), strings.Contains(inst, "city"), strings.Contains(inst, "region"), strings.Contains(inst, "area"):
		return kb.extractLocation(text)
	default:
		return stripFiller(text)
	}
}

// fillerPrefixes are conversational lead-ins stripped by criteria
// extraction.
var fillerPrefixes = []string{
	"i am looking for", "i'm looking for", "i am searching for", "i want",
	"looking for", "find me", "show me", "please find", "i would like",
	"can you find", "help me find",
}

func stripFiller(text string) string {
	t := strings.TrimSpace(text)
	lower := strings.ToLower(t)
	for _, p := range fillerPrefixes {
		if strings.HasPrefix(lower, p) {
			t = strings.TrimSpace(t[len(p):])
			lower = strings.ToLower(t)
		}
	}
	t = strings.TrimSuffix(t, ".")
	t = strings.TrimPrefix(t, "a ")
	t = strings.TrimPrefix(t, "an ")
	return strings.TrimSpace(t)
}

func (kb *KnowledgeBase) extractTitle(text string) string {
	t := strings.ToLower(text)
	best := ""
	for name := range kb.titles {
		if strings.Contains(t, name) && len(name) > len(best) {
			best = name
		}
	}
	return best
}

func (kb *KnowledgeBase) extractLocation(text string) string {
	t := strings.ToLower(text)
	best := ""
	for name := range kb.regions {
		if strings.Contains(t, name) && len(name) > len(best) {
			best = name
		}
	}
	if best != "" {
		return best
	}
	// Fall back to a known city mention.
	for _, cities := range kb.regions {
		for _, c := range cities {
			if strings.Contains(t, strings.ToLower(c)) {
				return c
			}
		}
	}
	return ""
}

// TemplateAnswer produces a deterministic free-text answer.
func (kb *KnowledgeBase) TemplateAnswer(prompt string) string {
	p := strings.ToLower(prompt)
	switch {
	case strings.Contains(p, "advice"), strings.Contains(p, "career"):
		title := kb.extractTitle(p)
		if title != "" {
			skills := kb.SkillsFor(title)
			if len(skills) > 0 {
				return "To grow as a " + title + ", focus on: " + strings.Join(skills, ", ") + "."
			}
		}
		return "Focus on building a portfolio of projects and strengthening fundamentals."
	case strings.Contains(p, "explain"):
		return "This result was produced by querying the registered data sources and ranking by relevance."
	default:
		return "Here is a response based on the available enterprise data."
	}
}
