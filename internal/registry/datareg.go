package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"blueprint/internal/docstore"
	"blueprint/internal/graphstore"
	"blueprint/internal/relational"
	"blueprint/internal/vectors"
)

// SourceKind enumerates data modalities (§V-D: "documents, relational
// databases, graph databases, and key-value stores"; LLMs also act as data
// sources, §V-G).
type SourceKind string

// Data source kinds.
const (
	KindRelational SourceKind = "relational"
	KindDocument   SourceKind = "document"
	KindGraph      SourceKind = "graph"
	KindKV         SourceKind = "kv"
	KindLLM        SourceKind = "llm"
)

// Level situates an asset in the enterprise data hierarchy (§V-D:
// "lakehouse, lake, source system, database, and table").
type Level string

// Asset levels.
const (
	LevelLakehouse  Level = "lakehouse"
	LevelDatabase   Level = "database"
	LevelTable      Level = "table"
	LevelCollection Level = "collection"
	LevelGraph      Level = "graph"
	LevelModel      Level = "model"
)

// ColumnMeta describes one column/field of an asset.
type ColumnMeta struct {
	Name        string `json:"name"`
	Type        string `json:"type"`
	Description string `json:"description,omitempty"`
}

// DataAsset is a registry record at some hierarchy level.
type DataAsset struct {
	// Name uniquely identifies the asset ("hr.jobs").
	Name string `json:"name"`
	// Kind is the modality of the owning source.
	Kind SourceKind `json:"kind"`
	// Level situates the asset in the hierarchy.
	Level Level `json:"level"`
	// Parent names the containing asset (database for a table, etc.).
	Parent string `json:"parent,omitempty"`
	// Description documents the asset for discovery.
	Description string `json:"description"`
	// Connection is the logical connection string / handle name.
	Connection string `json:"connection,omitempty"`
	// Columns lists fields/columns for tables and collections.
	Columns []ColumnMeta `json:"columns,omitempty"`
	// Indexes lists available indexes ("available indices", §V-D).
	Indexes []string `json:"indexes,omitempty"`
	// Rows is the row/document/node count, for planner cost estimation.
	Rows int `json:"rows,omitempty"`
	// Version counts content/metadata generations of the asset: Register
	// starts it at 1 and every Update or Touch bumps it. Memoized results
	// of agents reading the asset are invalidated on each bump.
	Version int `json:"version,omitempty"`
	// QoS is the expected per-query quality of service of the source.
	QoS QoSProfile `json:"qos,omitempty"`
	// Tags are free-form labels.
	Tags []string `json:"tags,omitempty"`
}

func (a DataAsset) searchText() string {
	var b strings.Builder
	b.WriteString(a.Name)
	b.WriteByte(' ')
	b.WriteString(string(a.Kind))
	b.WriteByte(' ')
	b.WriteString(a.Description)
	for _, c := range a.Columns {
		fmt.Fprintf(&b, " %s %s %s", c.Name, c.Type, c.Description)
	}
	for _, t := range a.Tags {
		b.WriteByte(' ')
		b.WriteString(t)
	}
	return b.String()
}

// AssetHit is one discovery result.
type AssetHit struct {
	Asset DataAsset
	Score float64
}

// DataRegistry catalogs enterprise data assets and serves discovery.
type DataRegistry struct {
	mu       sync.RWMutex
	assets   map[string]DataAsset
	order    []string
	grants   map[string]map[string]bool // asset -> allowed agents (nil = public)
	embedder *vectors.Embedder
	index    *vectors.Index

	hookMu      sync.RWMutex
	changeHooks []func(assetName string)
	mutHook     func(AssetMutation)
}

// AssetMutation describes one durable data-registry mutation: an upserted
// asset (Register, Update). Touch is deliberately absent — data-version
// bumps are reproduced by relational DML replay, and logging them would
// double the WAL write rate for no recovery value.
type AssetMutation struct {
	Put *DataAsset `json:"put,omitempty"`
}

// SetMutationHook installs the hook invoked (outside the registry lock)
// after every successful Register/Update. At most one hook is held (last
// wins); the durability adapter uses it to log mutations to the shared WAL.
func (r *DataRegistry) SetMutationHook(fn func(AssetMutation)) {
	r.hookMu.Lock()
	r.mutHook = fn
	r.hookMu.Unlock()
}

func (r *DataRegistry) mutated(m AssetMutation) {
	mRegistryMutations.Inc()
	r.hookMu.RLock()
	fn := r.mutHook
	r.hookMu.RUnlock()
	if fn != nil {
		fn(m)
	}
}

// OnChange registers a hook invoked (outside the registry lock) whenever an
// asset's version bumps — Update or Touch. The memoization layer subscribes
// here to drop cached results of agents that read the asset.
func (r *DataRegistry) OnChange(fn func(assetName string)) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	r.changeHooks = append(r.changeHooks, fn)
}

func (r *DataRegistry) notifyChange(name string) {
	r.hookMu.RLock()
	hooks := make([]func(string), len(r.changeHooks))
	copy(hooks, r.changeHooks)
	r.hookMu.RUnlock()
	for _, fn := range hooks {
		fn(name)
	}
}

// NewDataRegistry creates an empty data registry.
func NewDataRegistry() *DataRegistry {
	e := vectors.NewEmbedder(vectors.DefaultDim)
	return &DataRegistry{
		assets:   make(map[string]DataAsset),
		embedder: e,
		index:    vectors.NewIndex(e.Dim()),
	}
}

// Register adds an asset.
func (r *DataRegistry) Register(a DataAsset) error {
	stored, err := r.register(a)
	if err == nil {
		r.mutated(AssetMutation{Put: &stored})
	}
	return err
}

func (r *DataRegistry) register(a DataAsset) (DataAsset, error) {
	if a.Name == "" {
		return DataAsset{}, fmt.Errorf("registry: asset name required")
	}
	key := strings.ToLower(a.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.assets[key]; ok {
		return DataAsset{}, fmt.Errorf("%w: %s", ErrAssetExists, a.Name)
	}
	if a.Version == 0 {
		a.Version = 1
	}
	r.assets[key] = a
	r.order = append(r.order, key)
	return a, r.index.Upsert(key, r.embedder.Embed(a.searchText()))
}

// Update replaces an asset's metadata (e.g. refreshed row counts), bumping
// its version and notifying OnChange subscribers for the asset and its
// whole hierarchy slice (see affectedLocked): agents typically declare
// their Reads at database level, so a table-level change must reach them.
func (r *DataRegistry) Update(a DataAsset) error {
	affected, stored, err := r.update(a)
	if err == nil {
		r.mutated(AssetMutation{Put: &stored})
	}
	for _, name := range affected {
		r.notifyChange(name)
	}
	return err
}

func (r *DataRegistry) update(a DataAsset) ([]string, DataAsset, error) {
	key := strings.ToLower(a.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.assets[key]
	if !ok {
		return nil, DataAsset{}, fmt.Errorf("%w: %s", ErrAssetNotFound, a.Name)
	}
	a.Version = old.Version + 1
	r.assets[key] = a
	return r.affectedLocked(a.Name), a, r.index.Upsert(key, r.embedder.Embed(a.searchText()))
}

// Touch bumps an asset's version without changing its metadata — the
// signal that the underlying data changed (rows inserted, documents
// rewritten) and memoized results reading it are stale. Subscribers are
// notified for the asset, its ancestors and its descendants.
func (r *DataRegistry) Touch(name string) error {
	key := strings.ToLower(name)
	r.mu.Lock()
	a, ok := r.assets[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrAssetNotFound, name)
	}
	a.Version++
	r.assets[key] = a
	affected := r.affectedLocked(a.Name)
	r.mu.Unlock()
	mRegistryTouches.Inc()
	for _, n := range affected {
		r.notifyChange(n)
	}
	return nil
}

// affectedLocked resolves a change of the named asset across the hierarchy
// (§V-D: lakehouse > database > table): the asset itself, its ancestor
// chain (a table change means the containing database changed too), and
// every descendant (a database-level touch conservatively means any
// contained table may have changed). Readers that declared any level are
// therefore invalidated regardless of which level was bumped.
func (r *DataRegistry) affectedLocked(name string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(n string) bool {
		k := strings.ToLower(n)
		if n == "" || seen[k] {
			return false
		}
		seen[k] = true
		out = append(out, n)
		return true
	}
	add(name)
	// Ancestors (Parent chain; seen guards against malformed cycles).
	cur := name
	for {
		a, ok := r.assets[strings.ToLower(cur)]
		if !ok || a.Parent == "" || !add(a.Parent) {
			break
		}
		cur = a.Parent
	}
	// Descendants, breadth-first over the Parent relation.
	queue := []string{name}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, k := range r.order {
			a := r.assets[k]
			if strings.EqualFold(a.Parent, p) && add(a.Name) {
				queue = append(queue, a.Name)
			}
		}
	}
	return out
}

// Get returns one asset.
func (r *DataRegistry) Get(name string) (DataAsset, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.assets[strings.ToLower(name)]
	if !ok {
		return DataAsset{}, fmt.Errorf("%w: %s", ErrAssetNotFound, name)
	}
	return a, nil
}

// List returns assets in registration order, optionally filtered by level
// and kind (empty = any).
func (r *DataRegistry) List(level Level, kind SourceKind) []DataAsset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []DataAsset
	for _, k := range r.order {
		a := r.assets[k]
		if level != "" && a.Level != level {
			continue
		}
		if kind != "" && a.Kind != kind {
			continue
		}
		out = append(out, a)
	}
	return out
}

// Children returns assets whose Parent is the given asset, sorted by name.
func (r *DataRegistry) Children(parent string) []DataAsset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []DataAsset
	for _, k := range r.order {
		a := r.assets[k]
		if strings.EqualFold(a.Parent, parent) {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of registered assets.
func (r *DataRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.assets)
}

// SearchKeyword ranks assets containing every query token.
func (r *DataRegistry) SearchKeyword(query string, k int) []AssetHit {
	toks := vectors.Tokenize(query)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var hits []AssetHit
	for _, key := range r.order {
		a := r.assets[key]
		text := strings.ToLower(a.searchText())
		score := 0.0
		ok := true
		for _, t := range toks {
			n := strings.Count(text, t)
			if n == 0 {
				ok = false
				break
			}
			score += float64(n)
		}
		if ok && len(toks) > 0 {
			hits = append(hits, AssetHit{Asset: a, Score: score})
		}
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].Score > hits[j].Score })
	if k > 0 && k < len(hits) {
		hits = hits[:k]
	}
	return hits
}

// SearchVector returns the k assets nearest to the query embedding.
func (r *DataRegistry) SearchVector(query string, k int) []AssetHit {
	vec := r.embedder.Embed(query)
	raw := r.index.Search(vec, k)
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]AssetHit, 0, len(raw))
	for _, h := range raw {
		if a, ok := r.assets[h.ID]; ok {
			out = append(out, AssetHit{Asset: a, Score: h.Score})
		}
	}
	return out
}

// Discover is the data planner's entry point: vector search with keyword
// fallback.
func (r *DataRegistry) Discover(query string, k int) []AssetHit {
	hits := r.SearchVector(query, k)
	if len(hits) > 0 {
		return hits
	}
	return r.SearchKeyword(query, k)
}

// ImportRelational registers a relational DB and each of its tables under
// the given database asset name, capturing schemas, row counts and index
// inventories from the engine catalog.
func (r *DataRegistry) ImportRelational(dbName, description, connection string, db *relational.DB) error {
	if err := r.Register(DataAsset{
		Name: dbName, Kind: KindRelational, Level: LevelDatabase,
		Description: description, Connection: connection,
	}); err != nil {
		return err
	}
	for _, t := range db.Tables() {
		cols := make([]ColumnMeta, 0, len(t.Schema.Columns))
		for _, c := range t.Schema.Columns {
			cols = append(cols, ColumnMeta{Name: c.Name, Type: c.Type.String()})
		}
		var idx []string
		for _, ix := range t.Indexes {
			idx = append(idx, fmt.Sprintf("%s(%s,%s)", ix.Name, ix.Column, ix.Kind))
		}
		if err := r.Register(DataAsset{
			Name: dbName + "." + t.Name, Kind: KindRelational, Level: LevelTable,
			Parent: dbName, Description: "table " + t.Name + " in " + dbName,
			Connection: connection, Columns: cols, Indexes: idx, Rows: t.Rows,
			QoS: QoSProfile{Latency: 2 * time.Millisecond, Accuracy: 1.0},
		}); err != nil {
			return err
		}
	}
	return nil
}

// ImportDocstore registers a document store's collections.
func (r *DataRegistry) ImportDocstore(storeName, description, connection string, s *docstore.Store) error {
	if err := r.Register(DataAsset{
		Name: storeName, Kind: KindDocument, Level: LevelDatabase,
		Description: description, Connection: connection,
	}); err != nil {
		return err
	}
	for _, c := range s.Collections() {
		cols := make([]ColumnMeta, 0, len(c.Fields))
		for _, f := range c.Fields {
			cols = append(cols, ColumnMeta{Name: f, Type: "json"})
		}
		if err := r.Register(DataAsset{
			Name: storeName + "." + c.Name, Kind: KindDocument, Level: LevelCollection,
			Parent: storeName, Description: "collection " + c.Name + " in " + storeName,
			Connection: connection, Columns: cols, Indexes: c.Indexed, Rows: c.Docs,
			QoS: QoSProfile{Latency: 3 * time.Millisecond, Accuracy: 1.0},
		}); err != nil {
			return err
		}
	}
	return nil
}

// ImportGraph registers a graph source.
func (r *DataRegistry) ImportGraph(name, description, connection string, g *graphstore.Graph) error {
	nodes, edges := g.Stats()
	return r.Register(DataAsset{
		Name: name, Kind: KindGraph, Level: LevelGraph,
		Description: description, Connection: connection,
		Rows: nodes, Tags: []string{fmt.Sprintf("edges:%d", edges)},
		QoS: QoSProfile{Latency: 2 * time.Millisecond, Accuracy: 1.0},
	})
}

// RegisterLLMSource registers a language model as a data source ("cities in
// the SF bay area might be obtained from an OpenAI model", §V-G).
func (r *DataRegistry) RegisterLLMSource(name, description string, qos QoSProfile) error {
	return r.Register(DataAsset{
		Name: name, Kind: KindLLM, Level: LevelModel,
		Description: description, QoS: qos,
		Tags: []string{"general-knowledge", "text"},
	})
}
