package vectors

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Data Scientist, SF Bay-Area!", []string{"data", "scientist", "sf", "bay", "area"}},
		{"", nil},
		{"   ", nil},
		{"abc123 DEF", []string{"abc123", "def"}},
		{"a.b.c", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestEmbedDeterministic(t *testing.T) {
	e := NewEmbedder(64)
	a := e.Embed("job matching for data scientists")
	b := e.Embed("job matching for data scientists")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("embedding not deterministic at dim %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	e := NewEmbedder(0)
	if e.Dim() != DefaultDim {
		t.Fatalf("default dim = %d, want %d", e.Dim(), DefaultDim)
	}
	v := e.Embed("profiles of engineering candidates")
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("embedding norm^2 = %v, want 1.0", sum)
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	e := NewEmbedder(32)
	v := e.Embed("!!! ,,,")
	for i, x := range v {
		if x != 0 {
			t.Fatalf("empty-token embedding non-zero at %d: %v", i, x)
		}
	}
}

func TestSimilarTextsScoreHigher(t *testing.T) {
	e := NewEmbedder(256)
	q := e.Embed("match job seekers to data scientist positions")
	rel := e.Embed("job matcher agent: assess match quality between a job seeker profile and data scientist jobs")
	unrel := e.Embed("content moderation guardrail filtering offensive language")
	if Cosine(q, rel) <= Cosine(q, unrel) {
		t.Fatalf("related score %v <= unrelated score %v", Cosine(q, rel), Cosine(q, unrel))
	}
}

func TestEmbedWeighted(t *testing.T) {
	e := NewEmbedder(64)
	v := e.EmbedWeighted([]string{"job matching", "query history about matching"}, []float64{0.8, 0.2})
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("weighted embedding norm^2 = %v, want 1", sum)
	}
	// Mismatched lengths yield zero vector.
	z := e.EmbedWeighted([]string{"a"}, []float64{1, 2})
	for _, x := range z {
		if x != 0 {
			t.Fatal("mismatched weights should produce zero vector")
		}
	}
}

func TestCosineEdgeCases(t *testing.T) {
	if got := Cosine(nil, nil); got != 0 {
		t.Fatalf("Cosine(nil,nil) = %v, want 0", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{1}); got != 0 {
		t.Fatalf("mismatched lengths = %v, want 0", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero vector = %v, want 0", got)
	}
	if got := Cosine([]float64{1, 2}, []float64{1, 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self similarity = %v, want 1", got)
	}
}

func TestCosineSymmetryProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for i := 0; i < n; i++ {
			// Skip magnitudes whose squares overflow float64.
			if math.Abs(a[i]) > 1e150 || math.Abs(b[i]) > 1e150 {
				return true
			}
		}
		x, y := Cosine(a, b), Cosine(b, a)
		return math.Abs(x-y) < 1e-9 && x >= -1.0000001 && x <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(v []float64) bool {
		// Filter out NaN/Inf inputs which quick can generate via extremes.
		var sum float64
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			sum += x * x
		}
		if math.IsInf(sum, 0) {
			return true
		}
		out := Normalize(append([]float64(nil), v...))
		var n float64
		for _, x := range out {
			n += x * x
		}
		if sum == 0 {
			return n == 0
		}
		return math.Abs(n-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexUpsertSearch(t *testing.T) {
	e := NewEmbedder(128)
	ix := NewIndex(128)
	docs := map[string]string{
		"jobmatcher": "assess match quality between job seeker profile and jobs",
		"profiler":   "collect job seeker profile information via a UI form",
		"moderator":  "content moderation of generated text",
		"sqlexec":    "execute sql queries against relational databases",
	}
	for id, text := range docs {
		if err := ix.Upsert(id, e.Embed(text)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	hits := ix.Search(e.Embed("assess match quality of job seeker profiles against jobs"), 2)
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if hits[0].ID != "jobmatcher" {
		t.Fatalf("top hit = %q, want jobmatcher (hits=%v)", hits[0].ID, hits)
	}
}

func TestIndexUpsertReplaces(t *testing.T) {
	e := NewEmbedder(64)
	ix := NewIndex(64)
	if err := ix.Upsert("a", e.Embed("first text")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Upsert("a", e.Embed("completely different replacement")); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len after replace = %d, want 1", ix.Len())
	}
	hits := ix.Search(e.Embed("completely different replacement"), 1)
	if hits[0].Score < 0.99 {
		t.Fatalf("replaced vector not searchable: %v", hits)
	}
}

func TestIndexDelete(t *testing.T) {
	e := NewEmbedder(64)
	ix := NewIndex(64)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("id%d", i)
		if err := ix.Upsert(id, e.Embed(id+" text body")); err != nil {
			t.Fatal(err)
		}
	}
	ix.Delete("id2")
	ix.Delete("missing") // no-op
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	for _, h := range ix.Search(e.Embed("id2 text body"), 10) {
		if h.ID == "id2" {
			t.Fatal("deleted id still in results")
		}
	}
}

func TestIndexDimensionMismatch(t *testing.T) {
	ix := NewIndex(8)
	if err := ix.Upsert("x", make([]float64, 9)); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestIndexSearchEmptyAndZeroK(t *testing.T) {
	ix := NewIndex(8)
	if hits := ix.Search(make([]float64, 8), 3); hits != nil {
		t.Fatalf("empty index search = %v, want nil", hits)
	}
	_ = ix.Upsert("a", make([]float64, 8))
	if hits := ix.Search(make([]float64, 8), 0); hits != nil {
		t.Fatalf("k=0 search = %v, want nil", hits)
	}
}

func TestIVFIndexRecall(t *testing.T) {
	e := NewEmbedder(128)
	flat := NewIndex(128)
	ivf := NewIVFIndex(128, 8, 8) // probing all lists -> recall must match flat top-1
	texts := make([]string, 200)
	for i := range texts {
		texts[i] = fmt.Sprintf("source %d holds records about topic %d and domain %d", i, i%17, i%5)
		id := fmt.Sprintf("s%03d", i)
		v := e.Embed(texts[i])
		if err := flat.Upsert(id, v); err != nil {
			t.Fatal(err)
		}
		if err := ivf.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	ivf.Train()
	if ivf.Len() != 200 {
		t.Fatalf("ivf Len = %d, want 200", ivf.Len())
	}
	match := 0
	for i := 0; i < 50; i++ {
		q := e.Embed(fmt.Sprintf("records about topic %d", i%17))
		f := flat.Search(q, 1)
		g := ivf.Search(q, 1)
		if len(f) == 1 && len(g) == 1 && f[0].ID == g[0].ID {
			match++
		}
	}
	if match < 50 {
		t.Fatalf("full-probe IVF recall@1 = %d/50, want 50", match)
	}
}

func TestIVFIndexPartialProbe(t *testing.T) {
	e := NewEmbedder(64)
	ivf := NewIVFIndex(64, 16, 2)
	for i := 0; i < 300; i++ {
		if err := ivf.Add(fmt.Sprintf("v%d", i), e.Embed(fmt.Sprintf("item %d group %d", i, i%20))); err != nil {
			t.Fatal(err)
		}
	}
	ivf.Train()
	hits := ivf.Search(e.Embed("item 5 group 5"), 5)
	if len(hits) == 0 {
		t.Fatal("partial probe returned no hits")
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
	}
}

func TestIVFDuplicateAdd(t *testing.T) {
	ivf := NewIVFIndex(8, 2, 1)
	if err := ivf.Add("a", make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ivf.Add("a", make([]float64, 8)); err == nil {
		t.Fatal("expected duplicate id error")
	}
	if err := ivf.Add("b", make([]float64, 4)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestIVFAddAfterTrain(t *testing.T) {
	e := NewEmbedder(32)
	ivf := NewIVFIndex(32, 4, 4)
	for i := 0; i < 20; i++ {
		if err := ivf.Add(fmt.Sprintf("pre%d", i), e.Embed(fmt.Sprintf("item %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ivf.Train()
	if err := ivf.Add("late", e.Embed("a very distinctive late addition")); err != nil {
		t.Fatal(err)
	}
	hits := ivf.Search(e.Embed("a very distinctive late addition"), 1)
	if len(hits) != 1 || hits[0].ID != "late" {
		t.Fatalf("late-added vector not found: %v", hits)
	}
}

func TestIVFUntrainedSearch(t *testing.T) {
	ivf := NewIVFIndex(8, 2, 1)
	_ = ivf.Add("a", make([]float64, 8))
	if hits := ivf.Search(make([]float64, 8), 1); hits != nil {
		t.Fatalf("untrained search = %v, want nil", hits)
	}
}

func TestIVFEmptyTrain(t *testing.T) {
	ivf := NewIVFIndex(8, 4, 2)
	ivf.Train()
	if hits := ivf.Search(make([]float64, 8), 1); hits != nil {
		t.Fatalf("empty trained search = %v, want nil", hits)
	}
}

// searchFullSort is the pre-top-k reference: score every vector into a
// fresh slice and sort all N. Kept in the test package as the oracle for
// TestSearchTopKMatchesFullSort and the baseline for BenchmarkSearchTopK.
func searchFullSort(ix *Index, query []float64, k int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if k <= 0 || len(ix.ids) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(ix.ids))
	for i, id := range ix.ids {
		hits = append(hits, Hit{ID: id, Score: Cosine(query, ix.vecs[i])})
	}
	sortHits(hits)
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

// TestSearchTopKMatchesFullSort: the bounded-heap selection must return
// exactly the full-sort prefix for every k, including ties and k > N.
func TestSearchTopKMatchesFullSort(t *testing.T) {
	const dim = 16
	ix := NewIndex(dim)
	rng := func(seed int) float64 { return float64((seed*2654435761)%1000) / 1000 }
	for i := 0; i < 200; i++ {
		vec := make([]float64, dim)
		for j := range vec {
			vec[j] = rng(i*dim + j)
		}
		// Duplicate every 10th vector under a different id to force score
		// ties that exercise the id tie-break inside the heap.
		if i%10 == 0 && i > 0 {
			copy(vec, ix.vecs[ix.pos[fmt.Sprintf("v%03d", i-1)]])
		}
		if err := ix.Upsert(fmt.Sprintf("v%03d", i), vec); err != nil {
			t.Fatal(err)
		}
	}
	query := make([]float64, dim)
	for j := range query {
		query[j] = rng(9999 + j)
	}
	for _, k := range []int{1, 2, 3, 7, 10, 50, 199, 200, 500} {
		got := ix.Search(query, k)
		want := searchFullSort(ix, query, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d hits, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d hit %d: got %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}
}

func benchIndex(b *testing.B, n, dim int) (*Index, []float64) {
	b.Helper()
	ix := NewIndex(dim)
	for i := 0; i < n; i++ {
		vec := make([]float64, dim)
		for j := range vec {
			vec[j] = float64((i*dim+j*31)%997) / 997
		}
		if err := ix.Upsert(fmt.Sprintf("v%05d", i), vec); err != nil {
			b.Fatal(err)
		}
	}
	query := make([]float64, dim)
	for j := range query {
		query[j] = float64((j*17)%97) / 97
	}
	return ix, query
}

// BenchmarkSearchTopK measures the bounded-heap selection (allocates O(k)).
func BenchmarkSearchTopK(b *testing.B) {
	ix, query := benchIndex(b, 5000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := ix.Search(query, 10); len(hits) != 10 {
			b.Fatalf("hits = %d", len(hits))
		}
	}
}

// BenchmarkSearchFullSort is the score-all-then-sort baseline the heap
// replaced (allocates O(N)); compare allocs/op against BenchmarkSearchTopK.
func BenchmarkSearchFullSort(b *testing.B) {
	ix, query := benchIndex(b, 5000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := searchFullSort(ix, query, 10); len(hits) != 10 {
			b.Fatalf("hits = %d", len(hits))
		}
	}
}
