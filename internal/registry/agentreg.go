// Package registry implements the blueprint's two metadata stores: the
// agent registry (§V-C), which maps enterprise models and APIs to agents and
// serves their metadata for search and planning, and the data registry
// (§V-D), which catalogs multi-modal enterprise data sources down to table
// and collection granularity together with schemas and index inventories.
//
// Both registries support keyword search and vector search over embeddings
// derived from metadata; the agent registry additionally blends historical
// usage logs into its embeddings ("historical usage data can also be
// leveraged to compute enhanced embeddings", §V-C).
package registry

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"blueprint/internal/obs"
	"blueprint/internal/vectors"
)

// Process-wide registry instruments: identity-changing mutations (Register,
// Update, Derive, Deregister — the set the durability adapter logs) and
// data-version touches (bumped on every relational write, counted apart so
// the mutation counter stays a deploy-rate signal rather than a DML echo).
var (
	mRegistryMutations = obs.Default.Counter("blueprint_registry_mutations_total", "agent and data registry mutations (register, update, derive, deregister)")
	mRegistryTouches   = obs.Default.Counter("blueprint_registry_touches_total", "data-asset version touches from data writes")
)

// Common registry errors.
var (
	ErrAgentExists   = errors.New("registry: agent already registered")
	ErrAgentNotFound = errors.New("registry: agent not found")
	ErrAssetExists   = errors.New("registry: data asset already registered")
	ErrAssetNotFound = errors.New("registry: data asset not found")
)

// ParamSpec describes one input or output parameter of an agent.
type ParamSpec struct {
	// Name is the parameter identifier (e.g. "JOBSEEKER_DATA").
	Name string `json:"name"`
	// Type is a logical type tag: "text", "json", "rows", "profile", ...
	Type string `json:"type"`
	// Description documents the parameter for search and planning.
	Description string `json:"description,omitempty"`
	// Optional parameters may be left unbound in plans.
	Optional bool `json:"optional,omitempty"`
	// Default is used when an optional parameter is unbound.
	Default any `json:"default,omitempty"`
}

// ListenRule is the stream inclusion/exclusion rule under which an agent
// self-triggers (§V-B: "monitoring designated tags within streams, defined
// by inclusion and exclusion rules").
type ListenRule struct {
	IncludeTags []string `json:"include_tags,omitempty"`
	ExcludeTags []string `json:"exclude_tags,omitempty"`
}

// Deployment captures containerization metadata (§V-C: docker images and
// deployment configurations) consumed by the cluster simulator.
type Deployment struct {
	// Image is the container image name.
	Image string `json:"image,omitempty"`
	// Resource is the compute class required: "cpu" or "gpu".
	Resource string `json:"resource,omitempty"`
	// Replicas is the desired instance count.
	Replicas int `json:"replicas,omitempty"`
	// Workers is the per-instance worker pool size.
	Workers int `json:"workers,omitempty"`
}

// QoSProfile summarizes an agent's expected quality of service, used by the
// optimizer for multi-objective planning (§IV).
type QoSProfile struct {
	// CostPerCall in dollars.
	CostPerCall float64 `json:"cost_per_call"`
	// Latency is the expected per-call latency.
	Latency time.Duration `json:"latency"`
	// Accuracy in [0,1].
	Accuracy float64 `json:"accuracy"`
	// Freshness is the QoS hint bounding how long a memoized result of a
	// Cacheable agent stays servable (0 = as long as the agent version and
	// the sources it Reads are unchanged). It becomes the memo-entry TTL.
	Freshness time.Duration `json:"freshness,omitempty"`
}

// AgentSpec is the registry record for one agent.
type AgentSpec struct {
	// Name is the unique agent identifier (e.g. "JOBMATCHER").
	Name string `json:"name"`
	// Description documents the agent's capability.
	Description string `json:"description"`
	// Version distinguishes derived/updated agents.
	Version int `json:"version"`
	// Inputs and Outputs declare the agent's parameters.
	Inputs  []ParamSpec `json:"inputs,omitempty"`
	Outputs []ParamSpec `json:"outputs,omitempty"`
	// Listen configures decentralized (tag-triggered) activation.
	Listen ListenRule `json:"listen,omitempty"`
	// Deployment carries containerization metadata.
	Deployment Deployment `json:"deployment,omitempty"`
	// QoS is the expected quality of service.
	QoS QoSProfile `json:"qos,omitempty"`
	// Cacheable declares that invocations are pure functions of their
	// inputs plus the data sources named in Reads, so the coordinator may
	// memoize step results keyed by (Name, Version, inputs) and reuse them
	// across plans and sessions until the version moves, a source in Reads
	// is invalidated, or the QoS Freshness hint expires.
	Cacheable bool `json:"cacheable,omitempty"`
	// Reads names the registered data assets the agent's results depend on;
	// a version bump of any of them invalidates the agent's memoized
	// results.
	Reads []string `json:"reads,omitempty"`
	// Properties holds free-form configuration (triggering policy etc.).
	Properties map[string]any `json:"properties,omitempty"`
}

// searchText builds the text embedded/searched for this agent.
func (s AgentSpec) searchText() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte(' ')
	b.WriteString(s.Description)
	for _, p := range s.Inputs {
		fmt.Fprintf(&b, " input %s %s %s", p.Name, p.Type, p.Description)
	}
	for _, p := range s.Outputs {
		fmt.Fprintf(&b, " output %s %s %s", p.Name, p.Type, p.Description)
	}
	return b.String()
}

// AgentHit is one agent search result.
type AgentHit struct {
	Spec  AgentSpec
	Score float64
}

// AgentRegistry stores agent metadata and serves search and planning.
type AgentRegistry struct {
	mu       sync.RWMutex
	specs    map[string]AgentSpec
	order    []string
	usage    map[string][]string // recent task texts routed to the agent
	usageCnt map[string]int
	embedder *vectors.Embedder
	index    *vectors.Index

	hookMu      sync.RWMutex
	changeHooks []func(agentName string)
	mutHook     func(AgentMutation)
}

// AgentMutation describes one durable agent-registry mutation: an upserted
// spec (Register, Update, Derive) or a removal (Deregister). It is the
// payload the durability adapter logs to the WAL.
type AgentMutation struct {
	Put    *AgentSpec `json:"put,omitempty"`
	Remove string     `json:"remove,omitempty"`
}

// SetMutationHook installs the hook invoked (outside the registry lock) after
// every successful mutation — registration, update, derivation, removal. The
// durability adapter uses it to log mutations to the shared WAL; at most one
// hook is held (last wins). Touch-style version bumps are not mutations in
// this sense: they are reproduced by relational DML replay.
func (r *AgentRegistry) SetMutationHook(fn func(AgentMutation)) {
	r.hookMu.Lock()
	r.mutHook = fn
	r.hookMu.Unlock()
}

func (r *AgentRegistry) mutated(m AgentMutation) {
	mRegistryMutations.Inc()
	r.hookMu.RLock()
	fn := r.mutHook
	r.hookMu.RUnlock()
	if fn != nil {
		fn(m)
	}
}

// OnChange registers a hook invoked (outside the registry lock) whenever an
// agent's identity moves: a version bump on Update, a Derive, or a
// Deregister. The memoization layer subscribes here to drop cached results
// of the changed agent.
func (r *AgentRegistry) OnChange(fn func(agentName string)) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	r.changeHooks = append(r.changeHooks, fn)
}

func (r *AgentRegistry) notifyChange(name string) {
	r.hookMu.RLock()
	hooks := make([]func(string), len(r.changeHooks))
	copy(hooks, r.changeHooks)
	r.hookMu.RUnlock()
	for _, fn := range hooks {
		fn(name)
	}
}

// NewAgentRegistry creates an empty agent registry.
func NewAgentRegistry() *AgentRegistry {
	e := vectors.NewEmbedder(vectors.DefaultDim)
	return &AgentRegistry{
		specs:    make(map[string]AgentSpec),
		usage:    make(map[string][]string),
		usageCnt: make(map[string]int),
		embedder: e,
		index:    vectors.NewIndex(e.Dim()),
	}
}

// Register adds a new agent. The name must be unused.
func (r *AgentRegistry) Register(spec AgentSpec) error {
	stored, err := r.register(spec)
	if err == nil {
		r.mutated(AgentMutation{Put: &stored})
	}
	return err
}

func (r *AgentRegistry) register(spec AgentSpec) (AgentSpec, error) {
	if spec.Name == "" {
		return AgentSpec{}, errors.New("registry: agent name required")
	}
	key := strings.ToLower(spec.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[key]; ok {
		return AgentSpec{}, fmt.Errorf("%w: %s", ErrAgentExists, spec.Name)
	}
	if spec.Version == 0 {
		spec.Version = 1
	}
	r.specs[key] = spec
	r.order = append(r.order, key)
	return spec, r.reindexLocked(key)
}

// Update replaces an existing agent's metadata, bumping its version. A
// re-registration of a deep-equal spec is a no-op: the version stays put,
// so memo keys and derived-agent chains are not invalidated spuriously
// (idempotent deploys re-register everything on every rollout).
func (r *AgentRegistry) Update(spec AgentSpec) error {
	changed, stored, err := r.update(spec)
	if err == nil && changed {
		r.mutated(AgentMutation{Put: &stored})
		r.notifyChange(spec.Name)
	}
	return err
}

func (r *AgentRegistry) update(spec AgentSpec) (changed bool, stored AgentSpec, err error) {
	key := strings.ToLower(spec.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.specs[key]
	if !ok {
		return false, AgentSpec{}, fmt.Errorf("%w: %s", ErrAgentNotFound, spec.Name)
	}
	spec.Version = old.Version
	if reflect.DeepEqual(spec, old) {
		return false, AgentSpec{}, nil
	}
	spec.Version = old.Version + 1
	r.specs[key] = spec
	return true, spec, r.reindexLocked(key)
}

// Derive registers a new agent based on an existing one with a new name and
// description override ("derive new agents from existing ones", §V-C).
func (r *AgentRegistry) Derive(base, name, description string, mutate func(*AgentSpec)) (AgentSpec, error) {
	spec, err := r.derive(base, name, description, mutate)
	if err == nil {
		r.mutated(AgentMutation{Put: &spec})
		r.notifyChange(name)
	}
	return spec, err
}

func (r *AgentRegistry) derive(base, name, description string, mutate func(*AgentSpec)) (AgentSpec, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.specs[strings.ToLower(base)]
	if !ok {
		return AgentSpec{}, fmt.Errorf("%w: %s", ErrAgentNotFound, base)
	}
	spec := b
	spec.Name = name
	if description != "" {
		spec.Description = description
	}
	spec.Version = 1
	if mutate != nil {
		mutate(&spec)
	}
	key := strings.ToLower(name)
	if _, exists := r.specs[key]; exists {
		return AgentSpec{}, fmt.Errorf("%w: %s", ErrAgentExists, name)
	}
	r.specs[key] = spec
	r.order = append(r.order, key)
	if err := r.reindexLocked(key); err != nil {
		return AgentSpec{}, err
	}
	return spec, nil
}

// Deregister removes an agent.
func (r *AgentRegistry) Deregister(name string) error {
	err := r.deregister(name)
	if err == nil {
		r.mutated(AgentMutation{Remove: name})
		r.notifyChange(name)
	}
	return err
}

func (r *AgentRegistry) deregister(name string) error {
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[key]; !ok {
		return fmt.Errorf("%w: %s", ErrAgentNotFound, name)
	}
	delete(r.specs, key)
	delete(r.usage, key)
	delete(r.usageCnt, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.index.Delete(key)
	return nil
}

// Get returns one agent's spec.
func (r *AgentRegistry) Get(name string) (AgentSpec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[strings.ToLower(name)]
	if !ok {
		return AgentSpec{}, fmt.Errorf("%w: %s", ErrAgentNotFound, name)
	}
	return s, nil
}

// List returns all specs in registration order.
func (r *AgentRegistry) List() []AgentSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]AgentSpec, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.specs[k])
	}
	return out
}

// Len reports the number of registered agents.
func (r *AgentRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.specs)
}

// RecordUsage logs that the agent served the given task text; the last 32
// texts are blended into the agent's embedding with 20% weight.
func (r *AgentRegistry) RecordUsage(name, taskText string) error {
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[key]; !ok {
		return fmt.Errorf("%w: %s", ErrAgentNotFound, name)
	}
	logs := append(r.usage[key], taskText)
	if len(logs) > 32 {
		logs = logs[len(logs)-32:]
	}
	r.usage[key] = logs
	r.usageCnt[key]++
	return r.reindexLocked(key)
}

// UsageCount reports how many times RecordUsage was called for the agent.
func (r *AgentRegistry) UsageCount(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.usageCnt[strings.ToLower(name)]
}

func (r *AgentRegistry) reindexLocked(key string) error {
	spec := r.specs[key]
	meta := spec.searchText()
	logs := r.usage[key]
	var vec []float64
	if len(logs) == 0 {
		vec = r.embedder.Embed(meta)
	} else {
		vec = r.embedder.EmbedWeighted(
			[]string{meta, strings.Join(logs, " ")},
			[]float64{0.8, 0.2},
		)
	}
	return r.index.Upsert(key, vec)
}

// SearchKeyword returns agents whose metadata contains every query token,
// ranked by number of token occurrences.
func (r *AgentRegistry) SearchKeyword(query string, k int) []AgentHit {
	toks := vectors.Tokenize(query)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var hits []AgentHit
	for _, key := range r.order {
		spec := r.specs[key]
		text := strings.ToLower(spec.searchText())
		score := 0.0
		ok := true
		for _, t := range toks {
			n := strings.Count(text, t)
			if n == 0 {
				ok = false
				break
			}
			score += float64(n)
		}
		if ok && len(toks) > 0 {
			hits = append(hits, AgentHit{Spec: spec, Score: score})
		}
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].Score > hits[j].Score })
	if k > 0 && k < len(hits) {
		hits = hits[:k]
	}
	return hits
}

// SearchVector returns the k agents nearest to the query embedding.
func (r *AgentRegistry) SearchVector(query string, k int) []AgentHit {
	vec := r.embedder.Embed(query)
	raw := r.index.Search(vec, k)
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]AgentHit, 0, len(raw))
	for _, h := range raw {
		if spec, ok := r.specs[h.ID]; ok {
			out = append(out, AgentHit{Spec: spec, Score: h.Score})
		}
	}
	return out
}

// FindForTask is the planner's entry point: vector search with a keyword
// fallback, returning at most k candidates.
func (r *AgentRegistry) FindForTask(taskText string, k int) []AgentHit {
	hits := r.SearchVector(taskText, k)
	if len(hits) > 0 {
		return hits
	}
	return r.SearchKeyword(taskText, k)
}
