package relational

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// genValue builds a Value from quick-generated primitives.
func genValue(kind uint8, i int64, f float64, s string, b bool) Value {
	switch kind % 5 {
	case 0:
		return Null
	case 1:
		return NewInt(i % 1000)
	case 2:
		// Bound floats to a sane range; NaN/Inf break total-order axioms by
		// definition and are rejected at insert time anyway.
		return NewFloat(float64(int64(f*100) % 1000))
	case 3:
		if len(s) > 8 {
			s = s[:8]
		}
		return NewString(s)
	default:
		return NewBool(b)
	}
}

// TestCompareAntisymmetry: Compare(a,b) == -Compare(b,a).
func TestCompareAntisymmetry(t *testing.T) {
	f := func(k1, k2 uint8, i1, i2 int64, f1, f2 float64, s1, s2 string, b1, b2 bool) bool {
		a := genValue(k1, i1, f1, s1, b1)
		b := genValue(k2, i2, f2, s2, b2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCompareTransitivity: a<=b && b<=c => a<=c over random triples.
func TestCompareTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]Value, 200)
	for i := range vals {
		vals[i] = genValue(uint8(rng.Intn(5)), rng.Int63(), rng.Float64()*1e3, fmt.Sprintf("s%d", rng.Intn(50)), rng.Intn(2) == 0)
	}
	for trial := 0; trial < 2000; trial++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		c := vals[rng.Intn(len(vals))]
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but %v > %v", a, b, c, a, c)
		}
	}
}

// likeRef is a regexp-based reference implementation of the LIKE matcher.
func likeRef(s, pattern string) bool {
	var re strings.Builder
	re.WriteString("(?is)^")
	for _, r := range pattern {
		switch r {
		case '%':
			re.WriteString(".*")
		case '_':
			re.WriteString(".")
		default:
			re.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	re.WriteString("$")
	ok, err := regexp.MatchString(re.String(), s)
	return err == nil && ok
}

// TestLikeMatchesReference checks likeMatch against the regexp reference on
// random ASCII inputs and patterns.
func TestLikeMatchesReference(t *testing.T) {
	alphabet := []byte("ab%_c")
	rng := rand.New(rand.NewSource(11))
	randStr := func(n int) string {
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for trial := 0; trial < 3000; trial++ {
		s := strings.ReplaceAll(strings.ReplaceAll(randStr(8), "%", "x"), "_", "y")
		p := randStr(6)
		got := likeMatch(s, p)
		want := likeRef(s, p)
		if got != want {
			t.Fatalf("likeMatch(%q, %q) = %v, reference = %v", s, p, got, want)
		}
	}
}

// TestInsertSelectRoundTripProperty: for random row batches, COUNT(*)
// equals the number of inserted rows and every value round-trips.
func TestInsertSelectRoundTripProperty(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		db := NewDB()
		if _, err := db.Exec(`CREATE TABLE t (i INT, s TEXT)`); err != nil {
			return false
		}
		for idx, v := range vals {
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, int(v), fmt.Sprintf("row%d", idx)); err != nil {
				return false
			}
		}
		res, err := db.Query(`SELECT COUNT(*) FROM t`)
		if err != nil || res.Rows[0][0].I != int64(len(vals)) {
			return false
		}
		all, err := db.Query(`SELECT i, s FROM t`)
		if err != nil || len(all.Rows) != len(vals) {
			return false
		}
		for idx, v := range vals {
			if all.Rows[idx][0].I != int64(v) || all.Rows[idx][1].S != fmt.Sprintf("row%d", idx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexedEqualsSeqScanProperty: queries served by an index return the
// same multiset of rows as the unindexed plan.
func TestIndexedEqualsSeqScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		plain := NewDB()
		indexed := NewDB()
		for _, db := range []*DB{plain, indexed} {
			if _, err := db.Exec(`CREATE TABLE t (k INT, v INT)`); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := indexed.Exec(`CREATE ORDERED INDEX ik ON t (k)`); err != nil {
			t.Fatal(err)
		}
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			k, v := rng.Intn(20), rng.Intn(1000)
			for _, db := range []*DB{plain, indexed} {
				if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, k, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, q := range []string{
			fmt.Sprintf(`SELECT v FROM t WHERE k = %d ORDER BY v`, rng.Intn(20)),
			fmt.Sprintf(`SELECT v FROM t WHERE k >= %d ORDER BY v`, rng.Intn(20)),
			fmt.Sprintf(`SELECT v FROM t WHERE k BETWEEN %d AND %d ORDER BY v`, rng.Intn(10), 10+rng.Intn(10)),
		} {
			a, err := plain.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := indexed.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Rows) != len(b.Rows) {
				t.Fatalf("row count differs for %q: %d vs %d", q, len(a.Rows), len(b.Rows))
			}
			for i := range a.Rows {
				if Compare(a.Rows[i][0], b.Rows[i][0]) != 0 {
					t.Fatalf("row %d differs for %q: %v vs %v", i, q, a.Rows[i][0], b.Rows[i][0])
				}
			}
		}
	}
}
