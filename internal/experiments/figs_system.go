package experiments

import (
	"fmt"
	"sync"
	"time"

	"blueprint"
	"blueprint/internal/budget"
	"blueprint/internal/hragents"
	"blueprint/internal/streams"
	"blueprint/internal/trace"
)

func newSys(seed int64) (*blueprint.System, error) {
	return blueprint.New(blueprint.Config{Seed: seed, ModelAccuracy: 1.0})
}

// Fig1EndToEnd measures the full blueprint loop (Fig. 1): user utterance ->
// intent -> NL2Q -> SQL -> summary -> display, at increasing session
// concurrency.
func Fig1EndToEnd(seed int64) (*Table, error) {
	t := &Table{ID: "F1", Title: "Blueprint architecture end-to-end (Fig. 1)"}
	for _, sessions := range []int{1, 2, 4} {
		sys, err := newSys(seed)
		if err != nil {
			return nil, err
		}
		const perSession = 4
		var wg sync.WaitGroup
		start := time.Now()
		errs := make(chan error, sessions)
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s, err := sys.StartSession(fmt.Sprintf("session:f1-%d", i))
				if err != nil {
					errs <- err
					return
				}
				defer s.Close()
				for j := 0; j < perSession; j++ {
					if _, err := s.Ask("How many jobs are in San Francisco?", 30*time.Second); err != nil {
						errs <- err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			sys.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		total := sessions * perSession
		stats := sys.Store.StatsSnapshot()
		sys.Close()
		t.Rows = append(t.Rows, Row{
			Series: fmt.Sprintf("sessions=%d", sessions),
			Metrics: []Metric{
				{"requests", fmt.Sprint(total)},
				{"latency/req", ms(elapsed / time.Duration(total))},
				{"throughput", fmt.Sprintf("%.1f req/s", float64(total)/elapsed.Seconds())},
				{"stream_msgs", fmt.Sprint(stats.MessagesAppended)},
			},
		})
	}
	t.Notes = append(t.Notes, "every hop flows over streams; message counts grow linearly with sessions (isolation)")
	return t, nil
}

// Fig6TaskPlan measures the Fig. 6 running example: planning latency, plan
// shape, execution cost under the coordinator.
func Fig6TaskPlan(seed int64) (*Table, error) {
	sys, err := newSys(seed)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	s, err := sys.StartSession("")
	if err != nil {
		return nil, err
	}
	defer s.Close()

	const utterance = "I am looking for a data scientist position in SF bay area."
	planStart := time.Now()
	plan, err := sys.TaskPlanner.Plan(utterance)
	if err != nil {
		return nil, err
	}
	planLatency := time.Since(planStart)

	execStart := time.Now()
	res, _, err := s.ExecuteUtterance(utterance)
	if err != nil {
		return nil, err
	}
	execLatency := time.Since(execStart)

	agents := make([]string, len(plan.Steps))
	for i, st := range plan.Steps {
		agents[i] = st.Agent
	}
	t := &Table{ID: "F6", Title: "Task plan for the running example (Fig. 6)"}
	t.Rows = []Row{
		{Series: "planning", Metrics: []Metric{
			{"latency", ms(planLatency)},
			{"steps", fmt.Sprint(len(plan.Steps))},
			{"dag", fmt.Sprint(agents)},
		}},
		{Series: "execution", Metrics: []Metric{
			{"latency", ms(execLatency)},
			{"cost", dollars(res.Budget.CostSpent)},
			{"charges", fmt.Sprint(res.Budget.Charges)},
		}},
	}
	t.Notes = append(t.Notes, "DAG matches the paper: PROFILER -> JOBMATCHER -> PRESENTER with CRITERIA <- USER.TEXT")
	return t, nil
}

// Fig8Conversation replays a Fig. 8-style multi-turn employer conversation
// and reports per-turn latency.
func Fig8Conversation(seed int64) (*Table, error) {
	sys, err := newSys(seed)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	s, err := sys.StartSession("")
	if err != nil {
		return nil, err
	}
	defer s.Close()

	t := &Table{ID: "F8", Title: "Agentic Employer conversation (Fig. 8)"}
	turns := []struct {
		label string
		run   func() (string, error)
	}{
		{"click job 12", func() (string, error) {
			return s.Click(map[string]any{"action": "select_job", "job_id": 12}, 30*time.Second)
		}},
		{"count jobs SF", func() (string, error) {
			return s.Ask("How many jobs are in San Francisco?", 30*time.Second)
		}},
		{"avg salary/city", func() (string, error) {
			return s.Ask("average salary per city", 30*time.Second)
		}},
		{"rank job 12", func() (string, error) {
			return s.Ask("Rank the top candidates for job 12", 30*time.Second)
		}},
		{"summarize job 7", func() (string, error) {
			return s.Ask("Summarize the applicants for job 7", 30*time.Second)
		}},
	}
	for _, turn := range turns {
		start := time.Now()
		out, err := turn.run()
		if err != nil {
			return nil, fmt.Errorf("turn %q: %w", turn.label, err)
		}
		t.Rows = append(t.Rows, Row{
			Series: turn.label,
			Metrics: []Metric{
				{"latency", ms(time.Since(start))},
				{"chars", fmt.Sprint(len(out))},
			},
		})
	}
	flow := s.Flow()
	t.Notes = append(t.Notes,
		fmt.Sprintf("conversation produced %d stream messages across %d components", len(flow), len(trace.Senders(flow))))
	return t, nil
}

// fig9Pattern is the exact Fig. 9 sequence.
var fig9Pattern = []trace.Matcher{
	{Sender: "user", Tag: "ui", Kind: streams.Event},
	{Sender: hragents.AgenticEmployer, Tag: "plan", Kind: streams.Data},
	{Sender: "coordinator", Op: streams.OpExecuteAgent, Agent: hragents.Summarizer, Kind: streams.Control},
	{Sender: hragents.Summarizer, Tag: hragents.TagSummary, Kind: streams.Data},
}

// Fig9UIFlow verifies and measures the UI-initiated flow (Fig. 9):
// U -> AE -> TC -> S.
func Fig9UIFlow(seed int64) (*Table, error) {
	sys, err := newSys(seed)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	s, err := sys.StartSession("")
	if err != nil {
		return nil, err
	}
	defer s.Close()

	const n = 5
	var total time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := s.Click(map[string]any{"action": "select_job", "job_id": 10 + i}, 30*time.Second); err != nil {
			return nil, err
		}
		total += time.Since(start)
	}
	_, ok := trace.MatchSequence(s.Flow(), fig9Pattern)
	t := &Table{ID: "F9", Title: "Flow initiated from UI (Fig. 9): U -> AE -> TC -> S"}
	t.Rows = []Row{{Series: "ui-flow", Metrics: []Metric{
		{"clicks", fmt.Sprint(n)},
		{"latency/click", ms(total / n)},
		{"sequence_verified", fmt.Sprint(ok)},
	}}}
	if !ok {
		t.Notes = append(t.Notes, "WARNING: expected sender sequence not found")
	}
	return t, nil
}

// fig10Pattern is the exact Fig. 10 chain.
var fig10Pattern = []trace.Matcher{
	{Sender: "user", Tag: "utterance", Kind: streams.Data},
	{Sender: hragents.IntentClassifier, Tag: hragents.TagIntent, Kind: streams.Data},
	{Sender: hragents.AgenticEmployer, Tag: hragents.TagNLQ, Kind: streams.Data},
	{Sender: hragents.NL2Q, Tag: hragents.TagSQL, Kind: streams.Data},
	{Sender: hragents.SQLExecutor, Tag: hragents.TagRows, Kind: streams.Data},
	{Sender: hragents.QuerySummarizer, Tag: hragents.TagSummary, Kind: streams.Data},
}

// Fig10ConversationFlow verifies and measures the conversation-initiated
// flow (Fig. 10): U -> IC -> AE -> NL2Q -> QE -> QS.
func Fig10ConversationFlow(seed int64) (*Table, error) {
	sys, err := newSys(seed)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	s, err := sys.StartSession("")
	if err != nil {
		return nil, err
	}
	defer s.Close()

	const n = 5
	var total time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := s.Ask("How many jobs are in San Francisco?", 30*time.Second); err != nil {
			return nil, err
		}
		total += time.Since(start)
	}
	_, ok := trace.MatchSequence(s.Flow(), fig10Pattern)
	t := &Table{ID: "F10", Title: "Flow initiated from conversation (Fig. 10): U -> IC -> AE -> NL2Q -> QE -> QS"}
	t.Rows = []Row{{Series: "conv-flow", Metrics: []Metric{
		{"queries", fmt.Sprint(n)},
		{"latency/query", ms(total / n)},
		{"sequence_verified", fmt.Sprint(ok)},
	}}}
	if !ok {
		t.Notes = append(t.Notes, "WARNING: expected sender sequence not found")
	}
	return t, nil
}

// AblationBudget (§V-H) measures coordinator behaviour across budget
// levels: generous budgets complete, tight ones abort (projection or
// mid-plan).
func AblationBudget(seed int64) (*Table, error) {
	t := &Table{ID: "A1", Title: "Budget enforcement ablation (§V-H)"}
	for _, maxCost := range []float64{1.0, 0.05, 0.01, 0.0001} {
		sys, err := blueprint.New(blueprint.Config{
			Seed: seed, ModelAccuracy: 1.0,
			Budget: budget.Limits{MaxCost: maxCost},
		})
		if err != nil {
			return nil, err
		}
		s, err := sys.StartSession("")
		if err != nil {
			sys.Close()
			return nil, err
		}
		res, _, execErr := s.ExecuteUtterance("I am looking for a data scientist position in SF bay area.")
		outcome := "completed"
		steps := 0
		spent := 0.0
		if res != nil {
			steps = len(res.Steps)
			spent = res.Budget.CostSpent
			if res.Aborted {
				outcome = "aborted"
			}
		}
		if execErr != nil && res == nil {
			outcome = "failed"
		}
		s.Close()
		sys.Close()
		t.Rows = append(t.Rows, Row{
			Series: fmt.Sprintf("budget=%s", dollars(maxCost)),
			Metrics: []Metric{
				{"outcome", outcome},
				{"steps_run", fmt.Sprint(steps)},
				{"spent", dollars(spent)},
			},
		})
	}
	t.Notes = append(t.Notes, "tight budgets abort before or during execution; the ABORT control message is observable on streams")
	return t, nil
}
