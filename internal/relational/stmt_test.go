package relational

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func stmtTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec := func(sql string, params ...any) {
		t.Helper()
		if _, err := db.Exec(sql, params...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary INT)`)
	cities := []string{"San Francisco", "Oakland", "Seattle"}
	for i := 0; i < 30; i++ {
		mustExec(`INSERT INTO jobs VALUES (?, ?, ?, ?)`,
			i, fmt.Sprintf("title%d", i%5), cities[i%len(cities)], 90000+i*1000)
	}
	return db
}

// Cached re-execution must return exactly what a fresh parse returns.
func TestStmtCacheResultsMatchFreshParse(t *testing.T) {
	queries := []string{
		`SELECT id, title FROM jobs WHERE city = 'Oakland' ORDER BY id`,
		`SELECT city, COUNT(*) AS n, AVG(salary) AS avg_salary FROM jobs GROUP BY city ORDER BY city`,
		`SELECT * FROM jobs WHERE salary BETWEEN 95000 AND 105000 ORDER BY id`,
	}
	cached := stmtTestDB(t)
	for _, q := range queries {
		// Warm the cache, then query again through the cached path.
		if _, err := cached.Query(q); err != nil {
			t.Fatalf("warm %s: %v", q, err)
		}
		got, err := cached.Query(q)
		if err != nil {
			t.Fatalf("cached %s: %v", q, err)
		}
		fresh := stmtTestDB(t) // cold cache: first execution parses freshly
		want, err := fresh.Query(q)
		if err != nil {
			t.Fatalf("fresh %s: %v", q, err)
		}
		if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s: cached result differs from fresh parse\ncached: %v\nfresh:  %v", q, got, want)
		}
	}
	stats := cached.CacheStats()
	if stats.Hits == 0 {
		t.Errorf("expected cache hits, got %+v", stats)
	}
}

func TestPrepareQueryAndExec(t *testing.T) {
	db := stmtTestDB(t)
	st, err := db.Prepare(`SELECT title FROM jobs WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if st.SQL() != `SELECT title FROM jobs WHERE id = ?` {
		t.Errorf("SQL() = %q", st.SQL())
	}
	for i := 0; i < 5; i++ {
		res, err := st.Query(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].S != fmt.Sprintf("title%d", i%5) {
			t.Fatalf("id %d: got %v", i, res.Rows)
		}
	}
	ins, err := db.Prepare(`INSERT INTO jobs VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ins.Exec(1000, "prepared", "Austin", 123456)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("affected = %d, want 1", n)
	}
	res, err := db.Query(`SELECT title FROM jobs WHERE id = 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "prepared" {
		t.Fatalf("prepared insert not visible: %v", res.Rows)
	}
}

func TestStmtCacheCounters(t *testing.T) {
	db := stmtTestDB(t)
	db.ResetCacheStats()
	const q = `SELECT id FROM jobs WHERE city = 'Seattle'`
	for i := 0; i < 4; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	stats := db.CacheStats()
	if stats.Misses != 1 || stats.Hits != 3 {
		t.Errorf("hits/misses = %d/%d, want 3/1 (%+v)", stats.Hits, stats.Misses, stats)
	}
	if got, want := stats.HitRate(), 0.75; got != want {
		t.Errorf("HitRate() = %v, want %v", got, want)
	}
}

// DDL must flush the altered table's cached statements so no stale plan
// survives a schema change: the same SQL text must observe a table recreated
// with a different shape, and a new index must show up in the chosen access
// path. (Every statement cached here touches jobs, so the jobs DDL empties
// the cache; see TestStmtCachePerTableInvalidation for selectivity.)
func TestStmtCacheDDLInvalidation(t *testing.T) {
	db := stmtTestDB(t)
	const q = `SELECT id FROM jobs WHERE id = 3`
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "SeqScan") {
		t.Fatalf("pre-index plan = %q, want SeqScan", res.Plan)
	}
	before := db.CacheStats()
	if _, err := db.Exec(`CREATE INDEX i_id ON jobs (id)`); err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Invalidations <= before.Invalidations {
		t.Errorf("CREATE INDEX did not invalidate: %+v -> %+v", before, after)
	}
	if after.Size != 0 {
		t.Errorf("cache size after DDL = %d, want 0", after.Size)
	}
	if _, err = db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "IndexScan") {
		t.Errorf("post-index plan = %q, want IndexScan", res.Plan)
	}

	// Recreate the table with a different schema under the same name: the
	// cached SELECT text must run against the new shape.
	wide, err := db.Query(`SELECT * FROM jobs WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Columns) != 4 {
		t.Fatalf("old schema width = %d, want 4", len(wide.Columns))
	}
	if _, err := db.Exec(`DROP TABLE jobs`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE jobs (id INT, note TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO jobs VALUES (3, 'fresh')`); err != nil {
		t.Fatal(err)
	}
	wide, err = db.Query(`SELECT * FROM jobs WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Columns) != 2 || wide.Rows[0][1].S != "fresh" {
		t.Errorf("recreated schema: columns=%v rows=%v", wide.Columns, wide.Rows)
	}
}

// DDL invalidation is per table: altering one table must flush only the
// statements referencing it, leaving other tables' hot statements resident.
func TestStmtCachePerTableInvalidation(t *testing.T) {
	db := stmtTestDB(t)
	if _, err := db.Exec(`CREATE TABLE users (id INT, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO users VALUES (1, 'ada')`); err != nil {
		t.Fatal(err)
	}
	const jobsQ = `SELECT id FROM jobs WHERE id = 3`
	const usersQ = `SELECT name FROM users WHERE id = 1`
	for _, q := range []string{jobsQ, usersQ} { // warm both
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}

	// DDL on jobs: the users statement must survive, the jobs one must not.
	if _, err := db.Exec(`CREATE INDEX i_jobs_id ON jobs (id)`); err != nil {
		t.Fatal(err)
	}
	db.ResetCacheStats()
	if _, err := db.Query(usersQ); err != nil {
		t.Fatal(err)
	}
	if stats := db.CacheStats(); stats.Hits != 1 || stats.Misses != 0 {
		t.Errorf("users statement flushed by jobs DDL: %+v", stats)
	}
	db.ResetCacheStats()
	if _, err := db.Query(jobsQ); err != nil {
		t.Fatal(err)
	}
	if stats := db.CacheStats(); stats.Misses != 1 {
		t.Errorf("jobs statement survived jobs DDL: %+v", stats)
	}
	res, err := db.Query("EXPLAIN " + jobsQ)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "IndexScan") {
		t.Errorf("reparsed jobs plan = %q, want IndexScan", res.Plan)
	}

	// Join statements are invalidated by DDL on either side.
	const joinQ = `SELECT jobs.title, users.name FROM jobs JOIN users ON jobs.id = users.id`
	if _, err := db.Query(joinQ); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX i_users_id ON users (id)`); err != nil {
		t.Fatal(err)
	}
	db.ResetCacheStats()
	if _, err := db.Query(joinQ); err != nil {
		t.Fatal(err)
	}
	if stats := db.CacheStats(); stats.Misses != 1 {
		t.Errorf("join statement survived users DDL: %+v", stats)
	}
}

func TestStmtCacheLRUEviction(t *testing.T) {
	db := stmtTestDB(t)
	db.SetStmtCacheCapacity(0) // drop statements cached during setup
	db.SetStmtCacheCapacity(2)
	db.ResetCacheStats()
	// Structurally distinct statements: literal-only variants would collapse
	// onto one shape key and never fill the cache.
	queries := []string{
		`SELECT id FROM jobs WHERE id = 0`,
		`SELECT title FROM jobs WHERE id = 0`,
		`SELECT city FROM jobs WHERE id = 0`,
	}
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	stats := db.CacheStats()
	if stats.Size != 2 {
		t.Errorf("size = %d, want 2", stats.Size)
	}
	if stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", stats.Evictions)
	}
	// The first query's shape was evicted (LRU); the other two are resident.
	db.ResetCacheStats()
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	stats = db.CacheStats()
	if stats.Misses == 0 {
		t.Errorf("expected a miss for the evicted entry, got %+v", stats)
	}
}

func TestStmtCacheDisabled(t *testing.T) {
	db := stmtTestDB(t)
	db.SetStmtCacheCapacity(0)
	db.ResetCacheStats()
	const q = `SELECT id FROM jobs WHERE id = 1`
	for i := 0; i < 3; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	stats := db.CacheStats()
	if stats.Hits != 0 || stats.Size != 0 {
		t.Errorf("disabled cache recorded hits/entries: %+v", stats)
	}
}

// Concurrent Query/Exec/Prepare traffic mixed with DDL invalidations must be
// race-free (run under -race) and always observe coherent results.
func TestStmtCacheConcurrency(t *testing.T) {
	db := stmtTestDB(t)
	var wg sync.WaitGroup
	const workers = 8
	errs := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 4 {
				case 0:
					if _, err := db.Query(`SELECT id, title FROM jobs WHERE city = 'Oakland'`); err != nil {
						errs <- err
						return
					}
				case 1:
					st, err := db.Prepare(`SELECT COUNT(*) AS n FROM jobs WHERE salary > ?`)
					if err != nil {
						errs <- err
						return
					}
					if _, err := st.Query(100000); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := db.Exec(`INSERT INTO jobs VALUES (?, ?, ?, ?)`,
						1000+w*100+i, "w", "Austin", 100000); err != nil {
						errs <- err
						return
					}
				case 3:
					// DDL on a private table to exercise invalidation
					// concurrently with cached reads.
					name := fmt.Sprintf("scratch_%d_%d", w, i)
					if _, err := db.Exec(`CREATE TABLE ` + name + ` (a INT)`); err != nil {
						errs <- err
						return
					}
					if _, err := db.Exec(`DROP TABLE ` + name); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestOnWriteHookFiresForMutations(t *testing.T) {
	db := NewDB()
	var writes []string
	db.OnWrite(func(table string) { writes = append(writes, table) })

	if _, err := db.Exec(`CREATE TABLE w (id INT, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO w VALUES (1, 'a')`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`UPDATE w SET v = 'b' WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// Reads never notify — including through a prepared statement.
	stmt, err := db.Prepare(`SELECT * FROM w WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DELETE FROM w WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	want := []string{"w", "w", "w", "w"} // create, insert, update, delete
	if len(writes) != len(want) {
		t.Fatalf("writes = %v", writes)
	}
	for i, w := range want {
		if writes[i] != w {
			t.Fatalf("writes = %v, want %v", writes, want)
		}
	}
	// A failing statement must not notify.
	before := len(writes)
	if _, err := db.Exec(`INSERT INTO missing VALUES (1)`); err == nil {
		t.Fatal("insert into missing table succeeded")
	}
	if len(writes) != before {
		t.Fatalf("failed statement notified: %v", writes)
	}
}
