package memo

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// collectSink is a fake WAL: appended records replay into a fresh store.
type collectSink struct{ recs [][]byte }

func (c *collectSink) append(p []byte) error {
	c.recs = append(c.recs, append([]byte(nil), p...))
	return nil
}

func TestDurableLogReplayRestoresEntries(t *testing.T) {
	sink := &collectSink{}
	s := New(16)
	s.SetDurable(DurableConfig{
		Append:       sink.append,
		AgentVersion: func(string) int { return 3 },
	})
	key, err := ComputeKey("FETCH", 3, map[string]any{"q": "x"})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key, "FETCH", []string{"catalog"}, 0, Entry{
		Outputs: map[string]any{"OUT": "rows"}, Cost: 0.01, Latency: 5 * time.Millisecond,
	})

	// Replay into a fresh store whose registry still has FETCH at v3.
	s2 := New(16)
	// Records carry the canonical (lowercased) name; real validators go
	// through the case-insensitive registry lookup.
	s2.SetDurable(DurableConfig{
		Validate: func(agent string, version int) bool {
			return strings.EqualFold(agent, "FETCH") && version == 3
		},
	})
	for _, rec := range sink.recs {
		if err := s2.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	e, ok := s2.Get(key)
	if !ok {
		t.Fatal("replayed entry not restored")
	}
	if e.Outputs["OUT"] != "rows" || e.Cost != 0.01 {
		t.Fatalf("restored entry corrupted: %+v", e)
	}
	if s2.Stats().Restored != 1 {
		t.Fatalf("Restored = %d, want 1", s2.Stats().Restored)
	}

	// A registry that moved on drops the stale entry at replay.
	s3 := New(16)
	s3.SetDurable(DurableConfig{
		Validate: func(agent string, version int) bool { return version == 4 },
	})
	for _, rec := range sink.recs {
		if err := s3.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s3.Get(key); ok {
		t.Fatal("stale entry survived version validation")
	}
}

func TestDurableInvalidationsAreLoggedAndReplayed(t *testing.T) {
	sink := &collectSink{}
	s := New(16)
	s.SetDurable(DurableConfig{Append: sink.append})
	key, _ := ComputeKey("FETCH", 1, map[string]any{"q": "x"})
	s.Put(key, "FETCH", []string{"catalog"}, 0, Entry{Outputs: map[string]any{"OUT": "v"}})
	s.InvalidateSource("catalog")

	s2 := New(16)
	for _, rec := range sink.recs {
		if err := s2.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("replayed invalidation did not drop the entry")
	}
}

func TestDurableSnapshotRoundTrip(t *testing.T) {
	s := New(16)
	keys := make([]Key, 5)
	for i := range keys {
		k, _ := ComputeKey("A", 1, map[string]any{"i": i})
		keys[i] = k
		s.Put(k, "A", []string{"src"}, 0, Entry{Outputs: map[string]any{"i": float64(i)}, Cost: 0.001})
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New(16)
	if err := s2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("restored %d entries, want 5", s2.Len())
	}
	for i, k := range keys {
		e, ok := s2.Get(k)
		if !ok || e.Outputs["i"] != float64(i) {
			t.Fatalf("entry %d missing or wrong after restore: %+v ok=%v", i, e, ok)
		}
	}
}

func TestDurableExpiredEntriesDroppedAtRestore(t *testing.T) {
	now := time.Now()
	s := New(16)
	s.now = func() time.Time { return now }
	sink := &collectSink{}
	s.SetDurable(DurableConfig{Append: sink.append})
	key, _ := ComputeKey("A", 1, map[string]any{"q": 1})
	s.Put(key, "A", nil, time.Minute, Entry{Outputs: map[string]any{"v": true}})

	// Reopen "two minutes later": the TTL has lapsed while down.
	s2 := New(16)
	s2.now = func() time.Time { return now.Add(2 * time.Minute) }
	for _, rec := range sink.recs {
		if err := s2.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("expired entry restored")
	}
	if s2.Stats().Restored != 0 {
		t.Fatalf("Restored = %d, want 0", s2.Stats().Restored)
	}
}
