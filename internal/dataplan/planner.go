package dataplan

import (
	"fmt"
	"strings"
	"time"

	"blueprint/internal/llm"
	"blueprint/internal/nlq"
	"blueprint/internal/registry"
	"blueprint/internal/relational"
)

// Planner produces data plans from natural-language requests using the data
// registry for discovery and source metadata.
type Planner struct {
	reg *registry.DataRegistry
	kb  *llm.KnowledgeBase
}

// NewPlanner creates a data planner. The knowledge base is used only to
// *detect* that a query fragment (like a region) needs an LLM source — the
// actual lookup happens at execution time through the LLM operator.
func NewPlanner(reg *registry.DataRegistry, kb *llm.KnowledgeBase) *Planner {
	if kb == nil {
		kb = llm.DefaultKnowledgeBase()
	}
	return &Planner{reg: reg, kb: kb}
}

// TableBinding tells the planner how a discovered table maps to NL2Q.
type TableBinding struct {
	Asset  registry.DataAsset
	Target nlq.Target
}

// BuildTarget derives an NL2Q target from a live relational table: columns
// and types from the catalog, value hints from the distinct values of text
// columns (capped so huge tables stay cheap).
func BuildTarget(db *relational.DB, table string) (nlq.Target, error) {
	info, err := db.Table(table)
	if err != nil {
		return nlq.Target{}, err
	}
	tgt := nlq.Target{Table: info.Name, ValueHints: map[string][]string{}}
	for _, c := range info.Schema.Columns {
		tgt.Columns = append(tgt.Columns, c.Name)
		switch c.Type {
		case relational.TInt, relational.TFloat:
			tgt.NumericColumns = append(tgt.NumericColumns, c.Name)
		case relational.TString:
			tgt.TextColumns = append(tgt.TextColumns, c.Name)
			// BuildTarget runs on every NL2Q turn with the same per-table
			// texts; the statement cache amortizes their parse.
			res, err := db.Query(fmt.Sprintf("SELECT DISTINCT %s FROM %s LIMIT 64", c.Name, info.Name))
			if err == nil {
				for _, row := range res.Rows {
					if !row[0].IsNull() {
						tgt.ValueHints[c.Name] = append(tgt.ValueHints[c.Name], row[0].S)
					}
				}
			}
		}
	}
	if tgt.DefaultTextColumn == "" && len(tgt.TextColumns) > 0 {
		tgt.DefaultTextColumn = tgt.TextColumns[0]
	}
	return tgt, nil
}

// PlanDirect produces the single-source strategy: NL2Q over the bound table,
// then SQL. It works when every query fragment grounds directly in table
// values and misses otherwise — the baseline the decomposed plan beats in
// the Fig. 7 experiment.
func (p *Planner) PlanDirect(query string, bind TableBinding) (*Plan, error) {
	c, err := nlq.Compile(query, bind.Target)
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		Query:    query,
		Strategy: "direct",
		Nodes: []Node{
			{ID: "q", Kind: OpSQL, Args: map[string]any{"sql": c.SQL}},
		},
		Output:      "q",
		Explanation: append([]string{"direct NL2Q against " + bind.Asset.Name}, c.Explanation...),
	}
	p.estimate(plan)
	// The direct strategy's accuracy estimate reflects NL2Q grounding
	// confidence — and provably misses region scoping when the location
	// fragment has no literal city value (the Fig. 7 failure mode).
	plan.Est.Accuracy *= c.Confidence
	if needs := p.Analyze(query, bind); needs.Region != "" {
		plan.Est.Accuracy *= 0.4
		plan.Explanation = append(plan.Explanation,
			fmt.Sprintf("warning: region %q does not ground in table values; expected recall loss", needs.Region))
	}
	return plan, plan.Validate()
}

// DecompositionNeeds reports which fragments of the query require non-
// relational sources: a region that is not a literal city value, and a title
// that benefits from taxonomy expansion.
type DecompositionNeeds struct {
	Region string // e.g. "sf bay area" ("" when none detected)
	Title  string // e.g. "data scientist" ("" when none detected)
}

// Analyze inspects the query for fragments that will not ground in the bound
// table's values — the decision point of §V-G ("'SF bay area' won't match
// any city in the database").
func (p *Planner) Analyze(query string, bind TableBinding) DecompositionNeeds {
	var needs DecompositionNeeds
	q := strings.ToLower(query)
	if loc := p.kb.Extract("location", q); loc != "" {
		isLiteralCity := false
		for _, vals := range bind.Target.ValueHints {
			for _, v := range vals {
				if strings.EqualFold(v, loc) {
					isLiteralCity = true
				}
			}
		}
		if !isLiteralCity {
			needs.Region = loc
		}
	}
	if title := p.kb.Extract("title", q); title != "" {
		needs.Title = title
	}
	return needs
}

// PlanDecomposed produces the Fig. 7 strategy for queries over the bound
// jobs-like table:
//
//	region  --Q2NL--> LLM source  --> cities list --+
//	title   --graph/LLM expand--> titles list ------+--> SELECT ... WHERE
//	                                                      city IN (...) AND
//	                                                      title IN (...)
//
// graphAsset optionally names a registered taxonomy graph to prefer over the
// LLM for title expansion (cheaper and exact).
func (p *Planner) PlanDecomposed(query string, bind TableBinding, needs DecompositionNeeds, graphAsset string) (*Plan, error) {
	if needs.Region == "" && needs.Title == "" {
		return nil, fmt.Errorf("dataplan: nothing to decompose for %q", query)
	}
	cityCol, titleCol := pickColumn(bind.Target, "city"), pickColumn(bind.Target, "title")
	plan := &Plan{Query: query, Strategy: "decomposed"}
	var deps []string
	args := map[string]any{"table": bind.Target.Table}

	if needs.Region != "" && cityCol != "" {
		plan.Nodes = append(plan.Nodes, Node{
			ID:   "cities",
			Kind: OpLLM,
			Args: map[string]any{
				"prompt": nlq.Q2NL("cities_in_region", needs.Region),
			},
		})
		plan.Explanation = append(plan.Explanation,
			fmt.Sprintf("region %q is not a city value; injected Q2NL -> LLM source", needs.Region))
		deps = append(deps, "cities")
		args["city_col"] = cityCol
		args["city_from"] = "cities"
	}
	if needs.Title != "" && titleCol != "" {
		if graphAsset != "" {
			plan.Nodes = append(plan.Nodes, Node{
				ID:   "titles",
				Kind: OpGraphExpand,
				Args: map[string]any{"entity": needs.Title, "asset": graphAsset},
			})
			plan.Explanation = append(plan.Explanation,
				fmt.Sprintf("title %q expanded via taxonomy graph %s", needs.Title, graphAsset))
		} else {
			plan.Nodes = append(plan.Nodes, Node{
				ID:   "titles",
				Kind: OpLLM,
				Args: map[string]any{"prompt": nlq.Q2NL("related_titles", needs.Title)},
			})
			plan.Explanation = append(plan.Explanation,
				fmt.Sprintf("title %q expanded via LLM source", needs.Title))
		}
		deps = append(deps, "titles")
		args["title_col"] = titleCol
		args["title_from"] = "titles"
	}

	plan.Nodes = append(plan.Nodes, Node{
		ID:        "select",
		Kind:      OpSelectIn,
		Args:      args,
		DependsOn: deps,
	})
	plan.Output = "select"
	p.estimate(plan)
	return plan, plan.Validate()
}

// Plan chooses a strategy: if Analyze finds non-groundable fragments it
// decomposes (preferring a graph asset registered for titles), otherwise it
// goes direct.
func (p *Planner) Plan(query string, bind TableBinding, graphAsset string) (*Plan, error) {
	needs := p.Analyze(query, bind)
	if needs.Region == "" {
		return p.PlanDirect(query, bind)
	}
	return p.PlanDecomposed(query, bind, needs, graphAsset)
}

// PlanFor is privilege-aware planning (§VII data governance): it refuses to
// plan over assets the principal agent is not authorized to use, so
// restricted data never enters a plan on behalf of an unprivileged agent.
func (p *Planner) PlanFor(principal, query string, bind TableBinding, graphAsset string) (*Plan, error) {
	if p.reg != nil {
		if err := p.reg.CheckAccess(bind.Asset.Name, principal); err != nil {
			return nil, err
		}
		if graphAsset != "" {
			if err := p.reg.CheckAccess(graphAsset, principal); err != nil {
				// Fall back to the LLM for title expansion rather than fail:
				// the graph is an optimization, not a requirement.
				graphAsset = ""
			}
		}
	}
	return p.Plan(query, bind, graphAsset)
}

// pickColumn finds a column whose name contains the concept (e.g. "city").
func pickColumn(t nlq.Target, concept string) string {
	for _, c := range t.Columns {
		if strings.Contains(strings.ToLower(c), concept) {
			return c
		}
	}
	return ""
}

// estimate fills the plan's QoS projection from registry metadata: LLM
// operators inherit the registered LLM source QoS; SQL operators scale with
// table size; graph operators are cheap and exact.
func (p *Planner) estimate(plan *Plan) {
	est := Estimate{Accuracy: 1.0}
	llmQoS := registry.QoSProfile{CostPerCall: 0.01, Latency: 100 * time.Millisecond, Accuracy: 0.9}
	if p.reg != nil {
		if srcs := p.reg.List("", registry.KindLLM); len(srcs) > 0 {
			llmQoS = srcs[0].QoS
		}
	}
	for _, n := range plan.Nodes {
		switch n.Kind {
		case OpLLM, OpExtract, OpSummarize:
			est.Cost += llmQoS.CostPerCall
			est.Latency += llmQoS.Latency
			if llmQoS.Accuracy > 0 {
				est.Accuracy *= llmQoS.Accuracy
			}
		case OpSQL, OpSelectIn, OpNL2Q:
			rows := 1000
			if p.reg != nil {
				if tbl, ok := n.Args["table"].(string); ok {
					for _, a := range p.reg.List(registry.LevelTable, "") {
						if strings.HasSuffix(strings.ToLower(a.Name), "."+strings.ToLower(tbl)) {
							rows = a.Rows
						}
					}
				}
			}
			est.Latency += time.Duration(rows) * 500 * time.Nanosecond
			est.Cost += 0.0001
		case OpGraphExpand:
			est.Latency += 2 * time.Millisecond
			est.Cost += 0.0001
		case OpDocFind:
			est.Latency += 3 * time.Millisecond
			est.Cost += 0.0001
		case OpUnion, OpConst:
			// free
		}
	}
	plan.Est = est
}
