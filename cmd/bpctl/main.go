// bpctl is the developer console for a blueprint System: it boots an
// in-process instance and inspects registries, compiles queries, plans
// utterances and replays conversations — the "web interface for developers"
// of §V-C, as a CLI.
//
// Usage:
//
//	bpctl agents                      # list the agent registry
//	bpctl data                        # list the data registry
//	bpctl search-agents <text>        # vector search over agents
//	bpctl discover <text>             # vector search over data assets
//	bpctl nl2q <question>             # compile NL -> SQL and run it
//	bpctl plan <utterance>            # show the task plan DAG
//	bpctl ask <utterance>             # full pipeline, print answer + flow
//	bpctl memo <utterance>            # run the plan twice: cold vs memo-warm + stats
//	bpctl sql <statement>             # raw SQL against the enterprise DB
//	bpctl stats                       # statement-cache counters (shape keying)
//	bpctl -data-dir D snapshot        # take a durability snapshot + print stats
//	bpctl [-addr URL] trace <session> # span tree of a session on a running daemon
//	bpctl [-addr URL] top             # live ask rate, latency quantiles, cache ratios, SLO burn
//	bpctl [-addr URL] events [level]  # structured event log (optionally filtered by min level)
//	bpctl [-addr URL] slow [id]       # slow-ask exemplars: list, or one full flight recording
//
// With -data-dir every command runs against the durable state in that
// directory (recovering it first), so e.g. `bpctl -data-dir D sql ...`
// mutates durably and `bpctl -data-dir D snapshot` compacts the log.
//
// trace, top, events and slow are the remote commands: they query a running
// blueprintd (its /trace/{session}, /stats, /slo, /events and /slow
// endpoints) at -addr instead of booting an in-process system — telemetry
// lives in the daemon's process.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"blueprint"
	"blueprint/internal/dataplan"
	"blueprint/internal/nlq"
	"blueprint/internal/obs"
	"blueprint/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 42, "deterministic seed")
	dataDir := flag.String("data-dir", "", "durability directory (recover from and persist to it)")
	addr := flag.String("addr", "http://localhost:8080", "blueprintd base URL for the remote trace/top commands")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: bpctl [-data-dir D] [-addr URL] <agents|data|search-agents|discover|nl2q|plan|ask|memo|sql|stats|trace|top|events|slow|snapshot> [args]")
	}

	cmd, rest := args[0], strings.Join(args[1:], " ")

	// Remote commands: inspect a running daemon, no in-process system.
	switch cmd {
	case "trace":
		if err := remoteTrace(os.Stdout, *addr, rest); err != nil {
			log.Fatal(err)
		}
		return
	case "top":
		if err := remoteTop(os.Stdout, *addr); err != nil {
			log.Fatal(err)
		}
		return
	case "events":
		if err := remoteEvents(os.Stdout, *addr, rest); err != nil {
			log.Fatal(err)
		}
		return
	case "slow":
		if err := remoteSlow(os.Stdout, *addr, rest); err != nil {
			log.Fatal(err)
		}
		return
	}

	sys, err := blueprint.New(blueprint.Config{Seed: *seed, ModelAccuracy: 1.0, DataDir: *dataDir})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	switch cmd {
	case "agents":
		for _, spec := range sys.AgentRegistry.List() {
			fmt.Printf("%-20s v%d  %s\n", spec.Name, spec.Version, spec.Description)
			for _, in := range spec.Inputs {
				fmt.Printf("    in:  %s (%s)\n", in.Name, in.Type)
			}
			for _, out := range spec.Outputs {
				fmt.Printf("    out: %s (%s)\n", out.Name, out.Type)
			}
		}
	case "data":
		for _, a := range sys.DataRegistry.List("", "") {
			fmt.Printf("%-20s %-10s %-10s rows=%-6d %s\n", a.Name, a.Kind, a.Level, a.Rows, a.Description)
			if len(a.Indexes) > 0 {
				fmt.Printf("    indexes: %s\n", strings.Join(a.Indexes, ", "))
			}
		}
	case "search-agents":
		for _, h := range sys.AgentRegistry.SearchVector(rest, 5) {
			fmt.Printf("%.3f  %-20s %s\n", h.Score, h.Spec.Name, h.Spec.Description)
		}
	case "discover":
		for _, h := range sys.DataRegistry.Discover(rest, 5) {
			fmt.Printf("%.3f  %-20s %s\n", h.Score, h.Asset.Name, h.Asset.Description)
		}
	case "nl2q":
		tgt, err := dataplan.BuildTarget(sys.Enterprise.DB, "jobs")
		if err != nil {
			log.Fatal(err)
		}
		c, err := nlq.Compile(rest, tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sql:        %s\nconfidence: %.2f\n", c.SQL, c.Confidence)
		for _, e := range c.Explanation {
			fmt.Printf("  %s\n", e)
		}
		res, err := sys.Enterprise.DB.Query(c.SQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	case "plan":
		p, err := sys.TaskPlanner.Plan(rest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(p)
		for _, e := range p.Explanation {
			fmt.Printf("  %s\n", e)
		}
	case "ask":
		s, err := sys.StartSession("")
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		answer, err := s.Ask(rest, 15*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("answer: %s\n\nflow:\n%s", answer, trace.Render(s.Flow()))
		if spans := obs.Spans.Session(s.ID); len(spans) > 0 {
			fmt.Printf("\nspans:\n%s", obs.RenderTree(spans))
		}
	case "memo":
		s, err := sys.StartSession("")
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		run := func(label string) {
			start := time.Now()
			res, _, err := s.ExecuteUtterance(rest)
			if err != nil {
				log.Fatal(err)
			}
			cached := 0
			for _, sr := range res.Steps {
				if sr.Cached {
					cached++
				}
			}
			fmt.Printf("%-5s wall=%-12s steps=%d cached=%d cost=$%.5f\n",
				label, time.Since(start).Round(time.Microsecond), len(res.Steps), cached, res.Budget.CostSpent)
		}
		run("cold")
		run("warm")
		st := sys.MemoStats()
		fmt.Printf("memo  hits=%d misses=%d hit_rate=%.0f%% coalesced=%d entries=%d saved=$%.5f/%s\n",
			st.Hits, st.Misses, st.HitRate()*100, st.Coalesced, st.Entries, st.SavedCost, st.SavedLatency)
	case "sql":
		res, err := sys.Enterprise.DB.Query(rest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
		if res.Plan != "" {
			fmt.Printf("plan: %s\n", res.Plan)
		}
	case "stats":
		cs := sys.Enterprise.DB.CacheStats()
		fmt.Printf("stmt cache: hits=%d (shape=%d exact=%d) misses=%d hit_rate=%.0f%%\n",
			cs.Hits, cs.ShapeHits, cs.ExactFallbacks, cs.Misses, cs.HitRate()*100)
		fmt.Printf("            compiles=%d invalidations=%d uncacheable=%d size=%d\n",
			cs.Compiles, cs.Invalidations, cs.Uncacheable, cs.Size)
	case "snapshot":
		if err := sys.Snapshot(); err != nil {
			log.Fatal(err)
		}
		st := sys.DurabilityStats()
		fmt.Printf("snapshot taken: bytes=%d segments=%d log_bytes=%d snapshots_this_run=%d\n",
			st.SnapshotBytes, st.Segments, st.LogBytes, st.Snapshots)
		rec := st.Recovery
		fmt.Printf("recovery at open: snapshot_restored=%v replayed_records=%d torn_tail_repaired=%v duration=%s\n",
			rec.SnapshotRestored, rec.ReplayedRecords, rec.TornTailTruncated, rec.Duration)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// getJSON fetches one JSON document from a running blueprintd.
func getJSON(addr, path string, out any) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(strings.TrimRight(addr, "/") + path)
	if err != nil {
		return fmt.Errorf("is blueprintd running at %s? %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error != "" {
			return fmt.Errorf("%s: %s", path, e.Error)
		}
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// remoteTrace prints the span tree GET /trace/{session} returns.
func remoteTrace(w io.Writer, addr, session string) error {
	if session == "" {
		return fmt.Errorf("usage: bpctl [-addr URL] trace <session>")
	}
	var out struct {
		Session string `json:"session"`
		Tree    string `json:"tree"`
	}
	if err := getJSON(addr, "/trace/"+url.PathEscape(strings.TrimPrefix(session, "session:")), &out); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n%s", out.Session, out.Tree)
	return nil
}

// remoteEvents prints the daemon's structured event log, oldest first. An
// optional level argument ("warn") filters below-level events out.
func remoteEvents(w io.Writer, addr, level string) error {
	path := "/events"
	if level != "" {
		path += "?level=" + url.QueryEscape(level)
	}
	var out struct {
		Head   uint64      `json:"head"`
		Level  string      `json:"level"`
		Events []obs.Event `json:"events"`
	}
	if err := getJSON(addr, path, &out); err != nil {
		return err
	}
	fmt.Fprintf(w, "event log: head=%d retained=%d min_level=%s\n", out.Head, len(out.Events), out.Level)
	for _, e := range out.Events {
		fmt.Fprintln(w, renderEvent(e))
	}
	return nil
}

// renderEvent formats one event as a log line.
func renderEvent(e obs.Event) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %-5s %-10s %-14s", e.Time.Format("15:04:05.000"), e.Level, e.Component, e.Kind)
	for _, a := range e.Attrs {
		fmt.Fprintf(&sb, " %s=%s", a.Key, a.Value)
	}
	if e.Session != "" {
		fmt.Fprintf(&sb, " session=%s", e.Session)
	}
	if e.Trace != "" {
		fmt.Fprintf(&sb, " trace=%s", e.Trace)
	}
	return sb.String()
}

// remoteSlow lists the flight recorder's exemplars, or — given a capture id
// or "latest" — renders one full recording: identity, outcome, cost
// breakdown, span tree and overlapping events.
func remoteSlow(w io.Writer, addr, arg string) error {
	if arg == "" {
		var out struct {
			ThresholdMS float64               `json:"threshold_ms"`
			Captures    uint64                `json:"captures"`
			Exemplars   []obs.ExemplarSummary `json:"exemplars"`
		}
		if err := getJSON(addr, "/slow", &out); err != nil {
			return err
		}
		fmt.Fprintf(w, "slow asks: threshold=%.0fms captures=%d retained=%d\n", out.ThresholdMS, out.Captures, len(out.Exemplars))
		for _, ex := range out.Exemplars {
			fmt.Fprintf(w, "%4d  %-8s %-12s %-10s %s  %q\n",
				ex.ID, ex.Outcome, ex.Dur.Round(time.Millisecond), ex.Tenant, ex.Trace, ex.Text)
		}
		if len(out.Exemplars) > 0 {
			fmt.Fprintf(w, "use `bpctl slow <id>` for one full flight recording\n")
		}
		return nil
	}
	var ex obs.Exemplar
	if err := getJSON(addr, "/slow/"+url.PathEscape(arg), &ex); err != nil {
		return err
	}
	fmt.Fprintf(w, "exemplar %d: %s ask %q\n", ex.ID, ex.Outcome, ex.Text)
	fmt.Fprintf(w, "  trace=%s session=%s tenant=%s dur=%s start=%s\n",
		ex.Trace, ex.Session, ex.Tenant, ex.Dur.Round(time.Microsecond), ex.Start.Format(time.RFC3339Nano))
	if ex.Err != "" {
		fmt.Fprintf(w, "  error: %s\n", ex.Err)
	}
	if b := ex.Breakdown; b != nil {
		fmt.Fprintf(w, "  cost: $%.5f steps=%d cached=%d degraded=%d retries=%d replans=%d elapsed=%s plan=%s\n",
			b.Cost, b.Steps, b.CachedSteps, b.DegradedSteps, b.Retries, b.Replans,
			b.Elapsed.Round(time.Microsecond), b.PlanID)
	}
	if len(ex.Spans) > 0 {
		fmt.Fprintf(w, "spans (%d of %d):\n%s", len(ex.Spans), ex.SpanCount, obs.RenderTree(ex.Spans))
	}
	if len(ex.Events) > 0 {
		fmt.Fprintf(w, "events (%d of %d):\n", len(ex.Events), ex.EventCount)
		for _, e := range ex.Events {
			fmt.Fprintf(w, "  %s\n", renderEvent(e))
		}
	}
	return nil
}

// remoteTop samples GET /stats twice, a second apart, and prints a one-shot
// top-style summary: ask throughput and latency quantiles, memo and
// statement-cache effectiveness, scheduler occupancy, SLO burn rates.
func remoteTop(w io.Writer, addr string) error {
	sample := func() (map[string]any, error) {
		var st map[string]any
		err := getJSON(addr, "/stats", &st)
		return st, err
	}
	num := func(st map[string]any, key string) float64 {
		v, _ := st[key].(float64)
		return v
	}

	first, err := sample()
	if err != nil {
		return err
	}
	time.Sleep(time.Second)
	second, err := sample()
	if err != nil {
		return err
	}

	asks := num(second, "blueprint_asks_total")
	rate := asks - num(first, "blueprint_asks_total")
	fmt.Fprintf(w, "asks      total=%.0f rate=%.1f/s  p50=%s p95=%s p99=%s\n",
		asks, rate,
		quantile(second, "blueprint_ask_latency_seconds_p50"),
		quantile(second, "blueprint_ask_latency_seconds_p95"),
		quantile(second, "blueprint_ask_latency_seconds_p99"))
	hits, misses := num(second, "blueprint_memo_hits_total"), num(second, "blueprint_memo_misses_total")
	fmt.Fprintf(w, "memo      hits=%.0f misses=%.0f hit_ratio=%s entries=%.0f\n",
		hits, misses, ratio(hits, hits+misses), num(second, "blueprint_memo_entries"))
	scHits, scMisses := num(second, "blueprint_stmt_cache_hits_total"), num(second, "blueprint_stmt_cache_misses_total")
	fmt.Fprintf(w, "stmt      hits=%.0f (shape=%.0f) misses=%.0f hit_ratio=%s compiles=%.0f\n",
		scHits, num(second, "blueprint_stmt_cache_shape_hits_total"), scMisses,
		ratio(scHits, scHits+scMisses), num(second, "blueprint_plan_compiles_total"))
	fmt.Fprintf(w, "sched     steps=%.0f cached=%.0f busy_workers=%.0f  step_p95=%s\n",
		num(second, "blueprint_scheduler_steps_total"), num(second, "blueprint_scheduler_steps_cached_total"),
		num(second, "blueprint_scheduler_busy_workers"), quantile(second, "blueprint_step_latency_seconds_p95"))
	fmt.Fprintf(w, "sessions  open=%.0f  durability appends=%.0f fsyncs=%.0f\n",
		num(second, "blueprint_sessions_open"),
		num(second, "blueprint_durability_appends_total"), num(second, "blueprint_durability_fsyncs_total"))
	// Resilience: admission ledger, degraded serves, breaker state. During a
	// brownout this is the line to watch — shed climbing, degraded absorbing
	// repeat asks, breakers_open isolating failing agents.
	admitted, shed := num(second, "blueprint_governor_admitted_total"), num(second, "blueprint_governor_shed_total")
	fmt.Fprintf(w, "resil     admitted=%.0f shed=%.0f (tenant=%.0f timeout=%.0f) degraded=%.0f inflight=%.0f queued=%.0f shed_ratio=%s\n",
		admitted, shed,
		num(second, "blueprint_governor_tenant_shed_total"), num(second, "blueprint_governor_queue_timeouts_total"),
		num(second, "blueprint_degraded_answers_total"),
		num(second, "blueprint_governor_inflight"), num(second, "blueprint_governor_queued"),
		ratio(shed, admitted+shed))
	fmt.Fprintf(w, "          retries=%.0f breaker trips=%.0f rejections=%.0f open_now=%.0f stale_steps=%.0f\n",
		num(second, "blueprint_scheduler_step_retries_total"),
		num(second, "blueprint_breaker_trips_total"), num(second, "blueprint_breaker_rejections_total"),
		num(second, "blueprint_breakers_open"), num(second, "blueprint_scheduler_steps_degraded_total"))
	// SLO burn: one line per tenant/agent series from GET /slo. Burn > 1
	// means the error budget is being consumed faster than sustainable —
	// fast >> slow means it started just now.
	var slo struct {
		Objective float64         `json:"objective"`
		Series    []obs.SLOStatus `json:"series"`
	}
	if err := getJSON(addr, "/slo", &slo); err == nil {
		for _, st := range slo.Series {
			fmt.Fprintf(w, "slo       %-6s %-14s burn fast=%.2f slow=%.2f good=%s n=%d (err=%d slow=%d)\n",
				st.Kind, st.Name, st.FastBurn, st.SlowBurn,
				ratio(float64(st.Total-st.Bad), float64(st.Total)), st.Total, st.Errors, st.Slow)
		}
	}
	return nil
}

func quantile(st map[string]any, key string) string {
	v, ok := st[key].(float64)
	if !ok || v <= 0 {
		return "-"
	}
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

func ratio(part, whole float64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*part/whole)
}
