package topk

import (
	"math/rand"
	"sort"
	"testing"
)

func TestKeepsKSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{0, 1, 3, 10, 100, 500} {
		n := 200
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(50) // duplicates exercise tie handling
		}
		less := func(a, b int) bool { return a < b }
		h := New(k, less)
		for _, v := range vals {
			h.Offer(v)
		}
		got := append([]int(nil), h.Items()...)
		sort.Ints(got)
		want := append([]int(nil), vals...)
		sort.Ints(want)
		if k < n {
			want = want[:max(k, 0)]
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: kept %d items, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d: kept %v, want %v", k, got, want)
			}
		}
	}
}

func TestDeterministicWithTotalOrder(t *testing.T) {
	type item struct{ key, seq int }
	less := func(a, b item) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	}
	h := New(3, less)
	for seq, key := range []int{5, 1, 5, 1, 1, 9} {
		h.Offer(item{key: key, seq: seq})
	}
	got := append([]item(nil), h.Items()...)
	sort.Slice(got, func(i, j int) bool { return less(got[i], got[j]) })
	want := []item{{1, 1}, {1, 3}, {1, 4}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kept %v, want %v", got, want)
		}
	}
}
