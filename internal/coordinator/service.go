package coordinator

import (
	"sync"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/planner"
	"blueprint/internal/streams"
)

// DefaultMaxConcurrentPlans bounds how many watched plans one Service
// executes concurrently; further plans queue behind the semaphore (the
// subscription buffers them), providing backpressure against a component
// flooding the session with PLAN directives.
const DefaultMaxConcurrentPlans = 8

// Service runs the coordinator as a long-lived session participant: it
// listens to the session control stream for PLAN directives (emitted by the
// task planner agent or any component) and executes each plan — the "TC
// listening to any stream with a plan unrolls the plan" behaviour of Fig. 9.
// Every plan executes on its own goroutine (each with a fresh budget), up to
// DefaultMaxConcurrentPlans at once, so plans within one session — and
// services across sessions — run concurrently rather than queueing behind
// one another.
type Service struct {
	c         *Coordinator
	session   string
	limits    budget.Limits
	sub       *streams.Subscription
	wg        sync.WaitGroup
	resultCh  chan *Result
	sem       chan struct{}
	closeOnce sync.Once

	mu        sync.Mutex
	results   []*Result
	extraSubs []*streams.Subscription
}

// Serve starts the coordinator service on a session. Each incoming plan is
// executed with a fresh budget under the given limits.
func (c *Coordinator) Serve(session string, limits budget.Limits) *Service {
	s := &Service{
		c: c, session: session, limits: limits,
		resultCh: make(chan *Result, 64),
		sem:      make(chan struct{}, DefaultMaxConcurrentPlans),
	}
	s.sub = c.store.Subscribe(streams.Filter{
		Session: session,
		Kinds:   []streams.Kind{streams.Control},
	}, false)
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *Service) loop() {
	defer s.wg.Done()
	for msg := range s.sub.C() {
		d := msg.Directive
		if d == nil || d.Op != streams.OpPlan {
			continue
		}
		payload, ok := d.Args["plan"]
		if !ok {
			continue
		}
		s.spawn(payload)
	}
}

// PlanTag marks data messages carrying a plan payload.
const PlanTag = "plan"

// WatchPlans additionally consumes plan-tagged *data* messages (the task
// planner agent publishes its PLAN output parameter as data tagged "plan").
func (s *Service) WatchPlans() {
	sub := s.c.store.Subscribe(streams.Filter{
		Session:     s.session,
		Kinds:       []streams.Kind{streams.Data},
		IncludeTags: []string{PlanTag},
	}, false)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for msg := range sub.C() {
			s.spawn(msg.Payload)
		}
	}()
	s.mu.Lock()
	s.extraSubs = append(s.extraSubs, sub)
	s.mu.Unlock()
}

// spawn executes one plan payload on its own goroutine, blocking the
// calling watch loop while DefaultMaxConcurrentPlans executions are already
// in flight (backpressure; the subscription queues further messages).
func (s *Service) spawn(payload any) {
	s.sem <- struct{}{}
	s.wg.Add(1)
	go func() {
		defer func() {
			<-s.sem
			s.wg.Done()
		}()
		s.execute(payload)
	}()
}

func (s *Service) execute(payload any) {
	p, err := planner.FromJSON(payload)
	if err != nil || p.Validate() != nil {
		return
	}
	b := budget.New(s.limits)
	res, err := s.c.ExecutePlan(s.session, p, b)
	if res != nil {
		s.mu.Lock()
		s.results = append(s.results, res)
		s.mu.Unlock()
	}
	if err == nil && res != nil {
		// Surface the final outputs on the display stream for the user.
		for param, v := range res.Final {
			_, _ = s.c.store.Publish(streams.Message{
				Stream: agent.DisplayStream(s.session), Session: s.session,
				Kind: streams.Data, Sender: "coordinator", Param: param,
				Tags: []string{"result"}, Payload: v,
			})
		}
	}
	if res != nil {
		// Announce completion on the event-driven result channel. The
		// channel is buffered and never blocks execution: with no consumer,
		// results beyond the buffer are dropped from the channel (Results
		// still returns everything).
		select {
		case s.resultCh <- res:
		default:
		}
	}
}

// ResultC delivers each completed plan result as it finishes — the
// event-driven alternative to polling Results — and is closed by Stop once
// every in-flight execution has drained, so ranging over it terminates.
// Consumers that fall more than the channel buffer behind miss older
// results; Results retains the complete history.
func (s *Service) ResultC() <-chan *Result { return s.resultCh }

// Results returns the plans executed so far.
func (s *Service) Results() []*Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Result(nil), s.results...)
}

// Stop cancels subscriptions, waits for in-flight executions, and closes
// the result channel. Safe to call more than once.
func (s *Service) Stop() {
	s.sub.Cancel()
	s.mu.Lock()
	extras := s.extraSubs
	s.extraSubs = nil
	s.mu.Unlock()
	for _, sub := range extras {
		sub.Cancel()
	}
	s.wg.Wait()
	s.closeOnce.Do(func() { close(s.resultCh) })
}
