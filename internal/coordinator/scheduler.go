package coordinator

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/memo"
	"blueprint/internal/obs"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/resilience"
	"blueprint/internal/streams"
)

// DefaultMaxParallel is the scheduler's worker-pool bound when Options does
// not set one: up to this many plan steps execute concurrently.
const DefaultMaxParallel = 8

// errReplanned marks a memoized-step execution whose replan retry executed
// a different agent than the one the memo key names; the result is returned
// to the leader but never cached or shared.
var errReplanned = errors.New("coordinator: step replanned to an alternative agent; result not memoizable under the original key")

// errDegraded marks a memoized-step execution that was answered from a stale
// entry (breaker open): the leader keeps its degraded success, but the stale
// value must not be re-cached as fresh (that would reset its age), so
// waiters re-execute — and typically degrade the same way.
var errDegraded = errors.New("coordinator: step served degraded from a stale entry; not re-cacheable")

// scheduler executes one plan as a dependency-driven DAG: it derives the
// step dependencies from the plan's bindings (planner.Plan.Deps), dispatches
// every step whose dependencies are satisfied onto a bounded worker pool,
// merges step outputs under a lock, and admits each step through the
// budget's atomic Reserve/Commit path so concurrently executing steps cannot
// jointly overshoot the cost limit; latency is enforced against the critical
// path of actual step latencies (each commit charges only the critical
// path's growth), matching the optimizer's projection in the same units.
// The first failure or budget abort cancels the shared context, which
// unblocks in-flight steps; queued-but-unstarted steps are skipped.
type scheduler struct {
	c       *Coordinator
	session string
	plan    *planner.Plan
	budget  *budget.Budget
	res     *Result

	ctx    context.Context
	cancel context.CancelFunc
	deps   map[string][]string // plan dependency DAG (set once in run)

	mu             sync.Mutex
	outputs        map[string]map[string]any // completed step outputs by step ID
	results        map[string]StepResult     // recorded step results by step ID
	failErr        error                     // first failure; nil while healthy
	simFinish      map[string]time.Duration  // per-step critical-path finish time
	chargedLatency time.Duration             // critical-path latency charged so far
}

// stepOutcome is one worker's report back to the scheduling loop.
type stepOutcome struct {
	stepID string
	ran    bool // false when the step was skipped (cancelled before start)
	err    error
}

func newScheduler(c *Coordinator, session string, p *planner.Plan, b *budget.Budget, res *Result, span *obs.Span) *scheduler {
	ctx, cancel := context.WithCancel(context.Background())
	// The plan span rides the scheduler context so step spans parent to it.
	ctx = obs.ContextWith(ctx, span)
	return &scheduler{
		c: c, session: session, plan: p, budget: b, res: res,
		ctx: ctx, cancel: cancel,
		outputs:   map[string]map[string]any{},
		results:   map[string]StepResult{},
		simFinish: map[string]time.Duration{},
	}
}

// run executes the plan to completion (or first failure) and assembles the
// result. It always leaves res.Steps in plan order regardless of the actual
// completion order.
func (s *scheduler) run() error {
	defer s.cancel()
	steps := s.plan.Steps
	deps := s.plan.Deps()
	s.deps = deps // published to workers via the ready-channel send
	index := make(map[string]planner.Step, len(steps))
	indeg := make(map[string]int, len(steps))
	children := map[string][]string{}
	for _, st := range steps {
		index[st.ID] = st
		indeg[st.ID] = len(deps[st.ID])
		for _, d := range deps[st.ID] {
			children[d] = append(children[d], st.ID)
		}
	}

	workers := s.c.opts.MaxParallel
	if workers <= 0 {
		workers = DefaultMaxParallel
	}
	if workers > len(steps) {
		workers = len(steps)
	}

	ready := make(chan planner.Step, len(steps))
	done := make(chan stepOutcome, len(steps))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for st := range ready {
				mBusyWorkers.Add(1)
				oc := s.runStep(st)
				mBusyWorkers.Add(-1)
				done <- oc
			}
		}()
	}

	dispatched := 0
	for _, st := range steps { // seed the initial wave, in plan order
		if indeg[st.ID] == 0 {
			ready <- st
			dispatched++
		}
	}
	stopped := false
	for finished := 0; finished < dispatched; finished++ {
		oc := <-done
		if oc.err != nil {
			stopped = true // failure already recorded; drain in-flight work
			continue
		}
		if stopped || !oc.ran {
			continue
		}
		for _, child := range children[oc.stepID] {
			indeg[child]--
			if indeg[child] == 0 {
				ready <- index[child]
				dispatched++
			}
		}
	}
	close(ready)
	wg.Wait()

	// Assemble results in plan order; Final is the last completed step's
	// outputs, matching the sequential contract.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range steps {
		sr, ok := s.results[st.ID]
		if !ok {
			continue
		}
		s.res.Steps = append(s.res.Steps, sr)
		if sr.Err == "" {
			s.res.Final = sr.Outputs
		}
	}
	return s.failErr
}

// runStep executes one plan step end to end: input resolution, then either
// the memoized path (cacheable agent, memo store configured) or the fresh
// path — budget admission (Reserve), agent execution with one optional
// replan retry, and the Commit of actuals. Policy decisions on violations
// happen inline; the scheduling loop only learns success or failure.
func (s *scheduler) runStep(step planner.Step) stepOutcome {
	if s.ctx.Err() != nil {
		return stepOutcome{stepID: step.ID, ran: false}
	}
	mSteps.Inc()
	ctx, sp := obs.StartSpan(s.ctx, "scheduler", "step:"+step.ID)
	sp.SetAttr("agent", step.Agent)
	defer sp.End()
	var started time.Time
	if obs.On() {
		started = time.Now()
	}
	defer mStepLatency.ObserveSince(started)

	inputs, err := s.c.resolveInputs(s.session, s.plan, step, s.snapshotOutputs(), s.budget)
	if err != nil {
		err = fmt.Errorf("%w: %s: %v", ErrStepFailed, step.ID, err)
		s.fail(err)
		return stepOutcome{stepID: step.ID, err: err}
	}
	if s.c.opts.Memo != nil {
		if spec, err := s.c.reg.Get(step.Agent); err == nil && spec.Cacheable {
			if key, kerr := memo.ComputeKey(spec.Name, spec.Version, inputs); kerr == nil {
				return s.runMemoized(ctx, step, spec, key, inputs)
			}
		}
	}
	return s.runFresh(ctx, step, inputs)
}

// runMemoized satisfies the step from the memoization store when possible:
// a resident entry is a hit (zero cost, zero marginal critical-path
// latency); otherwise the step executes under single-flight deduplication,
// so concurrent identical steps — including ones from other plans and
// sessions sharing this Coordinator — run once and share the result. The
// leader runs the full fresh path (admission, execution, commit) so its
// plan is charged normally; only the winners' waiters ride free.
func (s *scheduler) runMemoized(ctx context.Context, step planner.Step, spec registry.AgentSpec, key memo.Key, inputs map[string]any) stepOutcome {
	// The memo span covers the whole Do (for a leader that includes the
	// fresh execution it led); the agent execution itself is a sibling child
	// of the step span, so hit/coalesced trees show a bare memo/lookup and
	// miss trees show lookup + execution side by side.
	_, msp := obs.StartSpan(ctx, "memo", "lookup")
	msp.SetAttr("agent", spec.Name)
	var leaderOC stepOutcome
	led := false
	entry, outcome, err := s.c.opts.Memo.Do(s.ctx, key, spec.Name, spec.Reads, spec.QoS.Freshness, func() (memo.Entry, error) {
		led = true
		leaderOC = s.runFresh(ctx, step, inputs)
		if leaderOC.err != nil || !leaderOC.ran {
			e := leaderOC.err
			if e == nil {
				e = context.Canceled
			}
			return memo.Entry{}, e
		}
		s.mu.Lock()
		sr := s.results[step.ID]
		s.mu.Unlock()
		if sr.Agent != spec.Name {
			// A replan retry swapped in an alternative agent: its result
			// must not be cached under the original agent's key (wrong
			// invalidation attribution — Reads, version — and wrong QoS
			// accuracy on later hits). The leader keeps its success;
			// waiters re-execute.
			return memo.Entry{}, errReplanned
		}
		if sr.Degraded {
			return memo.Entry{}, errDegraded
		}
		return memo.Entry{Outputs: sr.Outputs, Cost: sr.Cost, Latency: sr.Latency}, nil
	})
	msp.SetAttr("outcome", outcome.String())
	msp.End()
	if outcome != memo.Miss {
		mStepsCached.Inc()
	}
	if led {
		// This goroutine executed (and already recorded) the step itself.
		return leaderOC
	}
	if err != nil {
		// Cancelled while awaiting an identical in-flight execution
		// (plan-level abort or failure elsewhere).
		s.mu.Lock()
		s.results[step.ID] = StepResult{StepID: step.ID, Agent: step.Agent, Err: "cancelled"}
		s.mu.Unlock()
		ferr := fmt.Errorf("%w: %s (%s): %v", ErrStepFailed, step.ID, step.Agent, err)
		s.mu.Lock()
		if s.failErr != nil {
			ferr = s.failErr
		}
		s.mu.Unlock()
		return stepOutcome{stepID: step.ID, ran: true, err: ferr}
	}

	// Hit or coalesced share (handled identically): the step is satisfied
	// without executing. Charge zero cost and zero marginal critical-path
	// latency (the hit finishes "instantly" after its dependencies),
	// keeping the accuracy estimate honest with the executing agent's
	// profile.
	sr := StepResult{StepID: step.ID, Agent: step.Agent, Outputs: entry.Outputs, Cached: true}
	vs := s.budget.ChargeMemoHit(step.ID+":"+step.Agent, spec.QoS.Accuracy)
	s.mu.Lock()
	startAt := time.Duration(0)
	for _, d := range s.deps[step.ID] {
		if s.simFinish[d] > startAt {
			startAt = s.simFinish[d]
		}
	}
	s.simFinish[step.ID] = startAt // a hit adds nothing to the critical path
	s.results[step.ID] = sr
	s.mu.Unlock()
	if len(vs) > 0 && !s.confirmViolations(vs) {
		err := s.abort(vs[0].String())
		return stepOutcome{stepID: step.ID, ran: true, err: err}
	}
	s.mu.Lock()
	s.outputs[step.ID] = sr.Outputs
	s.mu.Unlock()
	return stepOutcome{stepID: step.ID, ran: true}
}

// runFresh executes the step for real: circuit-breaker consult, budget
// admission, agent execution under the retry policy, with a degraded
// stale-memo serve or one replan fallback when the breaker rejects or the
// retries are exhausted, and the Commit of actuals.
func (s *scheduler) runFresh(ctx context.Context, step planner.Step, inputs map[string]any) stepOutcome {
	// Circuit breaker: an open breaker rejects the dispatch outright. The
	// step is then answered from a stale memo entry when the degradation
	// policy tolerates its age, or falls through (execErr set, nothing
	// reserved or executed) to the replan fallback below — routing around
	// the broken agent instead of hammering it.
	if !s.c.opts.Breakers.Allow(step.Agent) {
		if oc, ok := s.serveStale(step, inputs); ok {
			return oc
		}
		sr := StepResult{StepID: step.ID, Agent: step.Agent, Err: resilience.ErrBreakerOpen.Error()}
		execErr := fmt.Errorf("%s: %w", step.Agent, resilience.ErrBreakerOpen)
		return s.replanOrFail(ctx, step, inputs, nil, false, sr, execErr)
	}

	// Admission: reserve the registry's projected cost so parallel steps
	// cannot jointly overshoot the cost limit. Latency is deliberately NOT
	// reserved per step — concurrent steps overlap in time, so summing
	// their projected latencies would falsely reject parallel plans the
	// critical-path projection already admitted; latency is enforced at
	// commit time against the critical path of actual step latencies.
	// Steps of unknown agents (no QoS profile) skip the reservation and
	// fail in executeStep.
	var rsv *budget.Reservation
	confirmed := false
	spec, specErr := s.c.reg.Get(step.Agent)
	if specErr == nil {
		var vs []budget.Violation
		rsv, vs = s.budget.Reserve(step.ID+":"+step.Agent, spec.QoS.CostPerCall, 0)
		if len(vs) > 0 {
			if !s.confirmViolations(vs) {
				err := s.abort(vs[0].String())
				return stepOutcome{stepID: step.ID, err: err}
			}
			// Confirmed: execute without a reservation; actuals are charged
			// (and recorded as violations) on completion. The step is asked
			// about once — the commit-stage violations it already confirmed
			// do not prompt again.
			confirmed = true
		}
	}

	sr, execErr := s.executeAttempts(ctx, step, inputs)
	return s.replanOrFail(ctx, step, inputs, rsv, confirmed, sr, execErr)
}

// executeAttempts runs one step under the retry policy: transient failures
// retry against the same agent with exponential backoff, each backoff
// charged to the plan's latency budget (a plan pays for its own waiting and
// therefore never retries itself past its SLO). Every attempt's outcome
// feeds the agent's breaker; retries stop when the error is not transient,
// the breaker trips, the budget has no headroom for the backoff, or the
// plan is cancelled.
func (s *scheduler) executeAttempts(ctx context.Context, step planner.Step, inputs map[string]any) (StepResult, error) {
	pol := s.c.opts.Retry
	attempts := pol.Attempts()
	var sr StepResult
	var err error
	for attempt := 1; ; attempt++ {
		attemptStart := time.Now()
		sr, err = s.c.executeStep(ctx, s.session, s.plan, step, inputs, s.c.stepDeadline(s.budget), attempt)
		s.c.opts.Breakers.Record(step.Agent, err == nil)
		s.c.opts.SLO.Record(obs.SLOAgent, step.Agent, time.Since(attemptStart), err != nil)
		if err == nil || attempt >= attempts || !resilience.Retryable(err) || s.ctx.Err() != nil {
			return sr, err
		}
		// This failure may have tripped the breaker; the next attempt needs
		// its admission like any other dispatch.
		if !s.c.opts.Breakers.Allow(step.Agent) {
			return sr, err
		}
		if backoff := pol.Backoff(attempt); backoff > 0 {
			if lim := s.budget.Limits(); lim.MaxLatency > 0 {
				if _, rem := s.budget.Remaining(); backoff > rem {
					// No latency headroom left to back off in; retrying
					// would bust the SLO the budget protects.
					return sr, err
				}
			}
			s.budget.ChargeRetryBackoff(step.ID+":"+step.Agent, backoff)
			if !resilience.SleepBudgeted(s.ctx, backoff) {
				return sr, err
			}
		}
		mStepRetries.Inc()
		s.mu.Lock()
		s.res.Retries++
		s.mu.Unlock()
		if obs.Events.On(obs.LevelInfo) {
			obs.Events.Append(obs.Event{
				Level: obs.LevelInfo, Component: "scheduler", Kind: "retry",
				Session: s.session,
				Attrs: []obs.Attr{
					{Key: "step", Value: step.ID},
					{Key: "agent", Value: step.Agent},
					{Key: "attempt", Value: strconv.Itoa(attempt)},
					{Key: "backoff", Value: pol.Backoff(attempt).String()},
					{Key: "error", Value: obs.Truncate(err.Error(), 120)},
				},
			})
		}
	}
}

// serveStale answers a breaker-rejected step from a stale memo entry when
// the agent is cacheable, an entry is resident, and its age is within the
// degradation policy's bound of the agent's declared freshness. The serve
// is charged like a memo hit (zero cost, zero marginal critical-path
// latency) and marked Degraded with its staleness.
func (s *scheduler) serveStale(step planner.Step, inputs map[string]any) (stepOutcome, bool) {
	st := s.c.opts.Memo
	if st == nil {
		return stepOutcome{}, false
	}
	spec, err := s.c.reg.Get(step.Agent)
	if err != nil || !spec.Cacheable {
		return stepOutcome{}, false
	}
	key, kerr := memo.ComputeKey(spec.Name, spec.Version, inputs)
	if kerr != nil {
		return stepOutcome{}, false
	}
	entry, age, ok := st.GetStale(key)
	if !ok || !s.c.opts.Degrade.Allows(spec.QoS.Freshness, age) {
		return stepOutcome{}, false
	}
	mStepsStale.Inc()
	if obs.Events.On(obs.LevelWarn) {
		obs.Events.Append(obs.Event{
			Level: obs.LevelWarn, Component: "scheduler", Kind: "degraded-serve",
			Session: s.session,
			Attrs: []obs.Attr{
				{Key: "step", Value: step.ID},
				{Key: "agent", Value: step.Agent},
				{Key: "stale_for", Value: age.String()},
			},
		})
	}
	sr := StepResult{StepID: step.ID, Agent: step.Agent, Outputs: entry.Outputs, Cached: true, Degraded: true, StaleFor: age}
	vs := s.budget.ChargeMemoHit(step.ID+":"+step.Agent+":stale", spec.QoS.Accuracy)
	s.mu.Lock()
	startAt := time.Duration(0)
	for _, d := range s.deps[step.ID] {
		if s.simFinish[d] > startAt {
			startAt = s.simFinish[d]
		}
	}
	s.simFinish[step.ID] = startAt // a degraded serve adds nothing to the critical path
	s.results[step.ID] = sr
	s.res.Degraded = true
	s.mu.Unlock()
	if len(vs) > 0 && !s.confirmViolations(vs) {
		err := s.abort(vs[0].String())
		return stepOutcome{stepID: step.ID, ran: true, err: err}, true
	}
	s.mu.Lock()
	s.outputs[step.ID] = sr.Outputs
	s.mu.Unlock()
	return stepOutcome{stepID: step.ID, ran: true}, true
}

// replanOrFail finishes a step after its execution attempts: on failure it
// applies the one replan fallback (RetryOnError), then records the result
// and commits actuals.
func (s *scheduler) replanOrFail(ctx context.Context, step planner.Step, inputs map[string]any, rsv *budget.Reservation, confirmed bool, sr StepResult, execErr error) stepOutcome {
	if execErr != nil && s.c.opts.RetryOnError && s.c.tp != nil && s.ctx.Err() == nil {
		if np, rerr := s.c.tp.Replan(s.plan, step.ID); rerr == nil {
			s.mu.Lock()
			s.res.Replans++
			s.mu.Unlock()
			alt, _ := np.Step(step.ID)
			if obs.Events.On(obs.LevelWarn) {
				obs.Events.Append(obs.Event{
					Level: obs.LevelWarn, Component: "scheduler", Kind: "replan",
					Session: s.session,
					Attrs: []obs.Attr{
						{Key: "step", Value: step.ID},
						{Key: "from", Value: step.Agent},
						{Key: "to", Value: alt.Agent},
						{Key: "error", Value: obs.Truncate(execErr.Error(), 120)},
					},
				})
			}
			// Re-admit the retry: the alternative agent's projected cost
			// may differ from the reservation held for the failed one, and
			// executing it unreserved would reopen the joint-overshoot
			// window Reserve exists to close.
			rsv.Release()
			rsv = nil
			if altSpec, err := s.c.reg.Get(alt.Agent); err == nil {
				var vs []budget.Violation
				rsv, vs = s.budget.Reserve(step.ID+":"+alt.Agent, altSpec.QoS.CostPerCall, 0)
				if len(vs) > 0 {
					if !s.confirmViolations(vs) {
						err := s.abort(vs[0].String())
						s.mu.Lock()
						s.results[step.ID] = sr // the original failure
						s.mu.Unlock()
						return stepOutcome{stepID: step.ID, ran: true, err: err}
					}
					confirmed = true
				}
			}
			replanStart := time.Now()
			sr, execErr = s.c.executeStep(ctx, s.session, np, alt, inputs, s.c.stepDeadline(s.budget), 1)
			s.c.opts.Breakers.Record(alt.Agent, execErr == nil)
			s.c.opts.SLO.Record(obs.SLOAgent, alt.Agent, time.Since(replanStart), execErr != nil)
			if execErr == nil {
				step = alt
			}
		}
	}
	s.mu.Lock()
	s.results[step.ID] = sr
	s.mu.Unlock()
	if execErr != nil {
		rsv.Release()
		err := fmt.Errorf("%w: %s (%s): %w", ErrStepFailed, step.ID, step.Agent, execErr)
		if s.ctx.Err() != nil {
			// Cancelled by another step's failure: keep that failure as the
			// plan error, report this step as collateral.
			s.mu.Lock()
			if s.failErr != nil {
				err = s.failErr
			}
			s.mu.Unlock()
		} else {
			s.fail(err)
		}
		return stepOutcome{stepID: step.ID, ran: true, err: err}
	}

	// Commit actuals (the executed agent may differ from the reserved one
	// after a replan; the accuracy signal follows the executed agent).
	// Latency is charged as the step's marginal contribution to the plan's
	// *critical path over actual step latencies*: the step finishes at
	// max(finish of its deps) + its own reported latency, and only growth
	// of the overall critical path is charged. Parallel steps overlap
	// instead of summing, sequential chains accumulate exactly as before,
	// and the units stay the agents' reported latencies — the same units
	// the optimizer's critical-path projection uses (essential for the
	// simulated LLM, whose reported latency is not slept wall time).
	acc := 0.0
	if exSpec, err := s.c.reg.Get(step.Agent); err == nil {
		acc = exSpec.QoS.Accuracy
	}
	s.mu.Lock()
	startAt := time.Duration(0)
	for _, d := range s.deps[step.ID] {
		if s.simFinish[d] > startAt {
			startAt = s.simFinish[d]
		}
	}
	finish := startAt + sr.Latency
	s.simFinish[step.ID] = finish
	marginal := finish - s.chargedLatency
	if marginal < 0 {
		marginal = 0
	}
	s.chargedLatency += marginal
	s.mu.Unlock()
	var vs []budget.Violation
	if rsv != nil {
		vs = rsv.Commit(sr.Cost, marginal, acc)
	} else {
		vs = s.budget.Charge(step.ID+":"+step.Agent, sr.Cost, marginal, acc)
	}
	if len(vs) > 0 && !confirmed && !s.confirmViolations(vs) {
		err := s.abort(vs[0].String())
		return stepOutcome{stepID: step.ID, ran: true, err: err}
	}

	s.mu.Lock()
	s.outputs[step.ID] = sr.Outputs
	s.mu.Unlock()
	return stepOutcome{stepID: step.ID, ran: true}
}

// snapshotOutputs copies the completed-outputs map so resolveInputs can read
// it without holding the scheduler lock (per-step maps are written once and
// never mutated after completion).
func (s *scheduler) snapshotOutputs() map[string]map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[string]any, len(s.outputs))
	for k, v := range s.outputs {
		out[k] = v
	}
	return out
}

// confirmViolations applies the violation policy for an in-flight step:
// only the Confirm policy can wave execution on, and confirmations are
// serialized (Coordinator.confirm) so a human (or test) sees one prompt at
// a time. Abort and Replan fall through to abort — replanning for budget
// reasons happens only at the whole-plan projection stage.
func (s *scheduler) confirmViolations(vs []budget.Violation) bool {
	if s.c.opts.OnViolation != Confirm {
		return false
	}
	return s.c.confirm(vs)
}

// fail records the first plan-level failure and cancels outstanding work.
func (s *scheduler) fail(err error) {
	s.mu.Lock()
	if s.failErr == nil {
		s.failErr = err
	}
	s.mu.Unlock()
	s.cancel()
}

// abort records a budget abort, emits the ABORT control message, and cancels
// outstanding work. Only the first abort/failure wins; later calls return
// the recorded error.
func (s *scheduler) abort(reason string) error {
	s.mu.Lock()
	if s.failErr != nil {
		err := s.failErr
		s.mu.Unlock()
		s.cancel()
		return err
	}
	mPlanAborts.Inc()
	s.res.Aborted = true
	s.res.AbortReason = reason
	err := fmt.Errorf("%w: %s", ErrAborted, reason)
	s.failErr = err
	s.mu.Unlock()
	s.cancel()
	_, _ = s.c.store.Append(streams.Message{
		Stream: agent.ControlStream(s.session), Kind: streams.Control, Sender: "coordinator",
		Directive: &streams.Directive{Op: streams.OpAbort, Args: map[string]any{"reason": reason}},
	})
	return err
}
