package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderTree renders recorded spans as an indented tree with durations —
// the `bpctl trace` / GET /trace output. Spans whose parent is absent from
// the slice (evicted from the ring, or still in flight) render as roots.
func RenderTree(spans []SpanData) string {
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	present := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		present[s.ID] = true
	}
	children := map[uint64][]SpanData{}
	var roots []SpanData
	for _, s := range spans {
		if s.Parent != 0 && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(list []SpanData) {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Start.Equal(list[j].Start) {
				return list[i].ID < list[j].ID
			}
			return list[i].Start.Before(list[j].Start)
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	var b strings.Builder
	var walk func(s SpanData, prefix string, last bool, top bool)
	walk = func(s SpanData, prefix string, last bool, top bool) {
		branch, next := "├─ ", "│  "
		if last {
			branch, next = "└─ ", "   "
		}
		if top {
			branch, next = "", ""
		}
		fmt.Fprintf(&b, "%s%s%s/%s %s", prefix, branch, s.Component, s.Name, renderDur(s.Dur))
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%q", a.Key, a.Value)
		}
		b.WriteByte('\n')
		kids := children[s.ID]
		for i, c := range kids {
			walk(c, prefix+next, i == len(kids)-1, false)
		}
	}
	for _, r := range roots {
		walk(r, "", true, true)
	}
	return b.String()
}

func renderDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}
