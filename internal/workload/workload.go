// Package workload generates the synthetic YourJourney enterprise (§II):
// relational jobs/companies/applications data, document-store job-seeker
// profiles, the job-title taxonomy graph, and natural-language query
// workloads. Everything is seeded and deterministic so every experiment in
// EXPERIMENTS.md is reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"blueprint/internal/docstore"
	"blueprint/internal/graphstore"
	"blueprint/internal/llm"
	"blueprint/internal/relational"
)

// Scale sizes a generated enterprise.
type Scale struct {
	Companies    int
	Jobs         int
	Profiles     int
	Applications int
}

// SmallScale is the default test scale.
func SmallScale() Scale {
	return Scale{Companies: 20, Jobs: 200, Profiles: 100, Applications: 500}
}

// MediumScale exercises planner/index behaviour.
func MediumScale() Scale {
	return Scale{Companies: 100, Jobs: 5000, Profiles: 2000, Applications: 20000}
}

var (
	titles = []string{
		"Data Scientist", "Senior Data Scientist", "Staff Data Scientist",
		"Machine Learning Engineer", "Applied Scientist", "Data Analyst",
		"Software Engineer", "Senior Software Engineer", "Backend Engineer",
		"Research Scientist", "Data Engineer", "Product Manager",
	}
	// dsTitles are the ground-truth titles related to "data scientist",
	// used by the Fig. 7 recall measurement.
	dsTitles = map[string]bool{
		"Data Scientist": true, "Senior Data Scientist": true, "Staff Data Scientist": true,
		"Machine Learning Engineer": true, "Applied Scientist": true,
	}
	cities = []string{
		// SF bay area (mirrors the knowledge base).
		"San Francisco", "Oakland", "San Jose", "Berkeley", "Palo Alto",
		"Mountain View", "Sunnyvale", "Fremont", "Redwood City", "Santa Clara",
		// Elsewhere.
		"Seattle", "Bellevue", "New York", "Brooklyn", "Los Angeles",
		"San Diego", "Austin", "Denver", "Chicago", "Boston",
	}
	bayAreaCities = map[string]bool{
		"San Francisco": true, "Oakland": true, "San Jose": true, "Berkeley": true,
		"Palo Alto": true, "Mountain View": true, "Sunnyvale": true, "Fremont": true,
		"Redwood City": true, "Santa Clara": true,
	}
	companyPrefixes = []string{"Acme", "Data", "Cloud", "Quant", "Hyper", "Meta", "Nimbus", "Vertex", "Apex", "Blue"}
	companySuffixes = []string{"AI", "Works", "Labs", "Systems", "Soft", "Dynamics", "Forge", "Scale", "Logic", "Core"}
	firstNames      = []string{"Ada", "Alan", "Grace", "Edsger", "Barbara", "Donald", "John", "Leslie", "Tim", "Margaret", "Ken", "Dennis", "Radia", "Frances", "Guido", "Rob"}
	lastNames       = []string{"Lovelace", "Turing", "Hopper", "Dijkstra", "Liskov", "Knuth", "McCarthy", "Lamport", "Berners-Lee", "Hamilton", "Thompson", "Ritchie", "Perlman", "Allen", "Rossum", "Pike"}
	skillPool       = []string{"python", "sql", "go", "statistics", "machine learning", "deep learning", "mlops", "spark", "excel", "dashboards", "apis", "distributed systems", "experimentation", "java", "kubernetes"}
	statuses        = []string{"applied", "screened", "interview", "offer", "rejected"}
)

// Enterprise is a fully generated YourJourney instance.
type Enterprise struct {
	DB    *relational.DB
	Docs  *docstore.Store
	Graph *graphstore.Graph
	KB    *llm.KnowledgeBase
	Scale Scale
	// BayAreaDSJobIDs is the Fig. 7 ground truth: ids of jobs with a
	// data-scientist-related title in an SF-bay-area city.
	BayAreaDSJobIDs map[int64]bool
}

// Build generates a deterministic enterprise at the given scale.
func Build(seed int64, sc Scale) (*Enterprise, error) {
	rng := rand.New(rand.NewSource(seed))
	ent := &Enterprise{
		DB:              relational.NewDB(),
		Docs:            docstore.NewStore(),
		Graph:           graphstore.NewGraph(),
		KB:              llm.DefaultKnowledgeBase(),
		Scale:           sc,
		BayAreaDSJobIDs: map[int64]bool{},
	}
	if err := ent.buildRelational(rng, sc); err != nil {
		return nil, err
	}
	if err := ent.buildProfiles(rng, sc); err != nil {
		return nil, err
	}
	if err := ent.buildTaxonomy(); err != nil {
		return nil, err
	}
	return ent, nil
}

func (e *Enterprise) buildRelational(rng *rand.Rand, sc Scale) error {
	stmts := []string{
		`CREATE TABLE companies (id INT, name TEXT, size TEXT, hq_city TEXT)`,
		`CREATE TABLE jobs (id INT, title TEXT, city TEXT, company_id INT, salary INT, remote BOOL)`,
		`CREATE TABLE applications (id INT, job_id INT, profile_id TEXT, status TEXT, score FLOAT, years INT)`,
		`CREATE INDEX idx_jobs_city ON jobs (city)`,
		`CREATE INDEX idx_jobs_title ON jobs (title)`,
		`CREATE ORDERED INDEX idx_jobs_salary ON jobs (salary)`,
		`CREATE INDEX idx_apps_job ON applications (job_id)`,
		`CREATE INDEX idx_apps_status ON applications (status)`,
	}
	for _, s := range stmts {
		if _, err := e.DB.Exec(s); err != nil {
			return err
		}
	}
	sizes := []string{"small", "mid", "large"}
	for i := 1; i <= sc.Companies; i++ {
		name := companyPrefixes[rng.Intn(len(companyPrefixes))] + companySuffixes[rng.Intn(len(companySuffixes))]
		name = fmt.Sprintf("%s %d", name, i)
		if _, err := e.DB.Exec(`INSERT INTO companies VALUES (?, ?, ?, ?)`,
			i, name, sizes[rng.Intn(len(sizes))], cities[rng.Intn(len(cities))]); err != nil {
			return err
		}
	}
	for i := 1; i <= sc.Jobs; i++ {
		title := titles[rng.Intn(len(titles))]
		city := cities[rng.Intn(len(cities))]
		salary := 90000 + rng.Intn(160)*1000
		if _, err := e.DB.Exec(`INSERT INTO jobs VALUES (?, ?, ?, ?, ?, ?)`,
			i, title, city, 1+rng.Intn(sc.Companies), salary, rng.Intn(4) == 0); err != nil {
			return err
		}
		if dsTitles[title] && bayAreaCities[city] {
			e.BayAreaDSJobIDs[int64(i)] = true
		}
	}
	for i := 1; i <= sc.Applications; i++ {
		if _, err := e.DB.Exec(`INSERT INTO applications VALUES (?, ?, ?, ?, ?, ?)`,
			i, 1+rng.Intn(sc.Jobs), fmt.Sprintf("p%04d", 1+rng.Intn(max(sc.Profiles, 1))),
			statuses[rng.Intn(len(statuses))], 0.3+rng.Float64()*0.7, rng.Intn(20)); err != nil {
			return err
		}
	}
	return nil
}

func (e *Enterprise) buildProfiles(rng *rand.Rand, sc Scale) error {
	e.Docs.EnsureCollection("profiles")
	for i := 1; i <= sc.Profiles; i++ {
		nSkills := 2 + rng.Intn(4)
		skills := make([]any, 0, nSkills)
		seen := map[string]bool{}
		for len(skills) < nSkills {
			s := skillPool[rng.Intn(len(skillPool))]
			if !seen[s] {
				seen[s] = true
				skills = append(skills, s)
			}
		}
		doc := docstore.Doc{
			"name":   firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))],
			"title":  titles[rng.Intn(len(titles))],
			"city":   cities[rng.Intn(len(cities))],
			"years":  rng.Intn(20),
			"skills": skills,
		}
		if err := e.Docs.Insert("profiles", fmt.Sprintf("p%04d", i), doc); err != nil {
			return err
		}
	}
	return e.Docs.CreateIndex("profiles", "title")
}

// buildTaxonomy constructs the title taxonomy graph: categories with child
// titles, plus "related" edges within the data-science family.
func (e *Enterprise) buildTaxonomy() error {
	cats := map[string][]string{
		"data":     {"Data Scientist", "Senior Data Scientist", "Staff Data Scientist", "Data Analyst", "Data Engineer"},
		"ml":       {"Machine Learning Engineer", "Applied Scientist", "Research Scientist"},
		"software": {"Software Engineer", "Senior Software Engineer", "Backend Engineer"},
		"product":  {"Product Manager"},
	}
	if err := e.Graph.AddNode("root", "category", map[string]any{"name": "Engineering"}); err != nil {
		return err
	}
	for cat, ts := range cats {
		if err := e.Graph.AddNode(cat, "category", map[string]any{"name": cat}); err != nil {
			return err
		}
		if err := e.Graph.AddEdge("root", cat, "child", nil); err != nil {
			return err
		}
		for _, t := range ts {
			id := "t:" + strings.ToLower(strings.ReplaceAll(t, " ", "_"))
			if err := e.Graph.AddNode(id, "title", map[string]any{"name": t}); err != nil {
				return err
			}
			if err := e.Graph.AddEdge(cat, id, "child", nil); err != nil {
				return err
			}
		}
	}
	// Related edges: the DS family (ground truth for Fig. 7 expansion).
	related := [][2]string{
		{"t:data_scientist", "t:senior_data_scientist"},
		{"t:data_scientist", "t:staff_data_scientist"},
		{"t:data_scientist", "t:machine_learning_engineer"},
		{"t:data_scientist", "t:applied_scientist"},
	}
	for _, r := range related {
		if err := e.Graph.AddEdge(r[0], r[1], "related", nil); err != nil {
			return err
		}
	}
	return nil
}

// QueryKind labels generated utterances.
type QueryKind string

// Query kinds.
const (
	KindJobSearch QueryKind = "job_search"
	KindOpenQuery QueryKind = "open_query"
	KindSummarize QueryKind = "summarize"
	KindRank      QueryKind = "rank"
)

// Query is one generated utterance.
type Query struct {
	Kind QueryKind
	Text string
}

// Queries generates a deterministic mixed workload of n utterances.
func Queries(seed int64, n int) []Query {
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"SF bay area", "seattle area", "new york metro"}
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			out = append(out, Query{KindJobSearch, fmt.Sprintf(
				"I am looking for a %s position in %s.",
				strings.ToLower(titles[rng.Intn(len(titles))]), regions[rng.Intn(len(regions))])})
		case 1:
			out = append(out, Query{KindOpenQuery, fmt.Sprintf(
				"How many jobs are in %s?", cities[rng.Intn(len(cities))])})
		case 2:
			out = append(out, Query{KindOpenQuery, fmt.Sprintf(
				"average salary per city for salary over %d", 100000+rng.Intn(80)*1000)})
		default:
			out = append(out, Query{KindSummarize, fmt.Sprintf(
				"Summarize the applicants for job %d", 1+rng.Intn(100))})
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
