package registry

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnauthorized is returned when an agent accesses a data asset outside
// its privileges (§VII: "agents with different privileges").
var ErrUnauthorized = errors.New("registry: agent not authorized for asset")

// Grant restricts the asset to the listed agents. An asset with no grants
// is public. Granting on a missing asset fails.
func (r *DataRegistry) Grant(assetName string, agents ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(assetName)
	a, ok := r.assets[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrAssetNotFound, assetName)
	}
	if r.grants == nil {
		r.grants = make(map[string]map[string]bool)
	}
	g := r.grants[key]
	if g == nil {
		g = make(map[string]bool)
		r.grants[key] = g
	}
	for _, agent := range agents {
		g[strings.ToLower(agent)] = true
	}
	_ = a
	return nil
}

// Revoke removes an agent's grant. Revoking the last grant makes the asset
// restricted-to-nobody, not public; use ClearGrants to re-open it.
func (r *DataRegistry) Revoke(assetName, agent string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.grants[strings.ToLower(assetName)]; ok {
		delete(g, strings.ToLower(agent))
	}
}

// ClearGrants makes the asset public again.
func (r *DataRegistry) ClearGrants(assetName string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.grants, strings.ToLower(assetName))
}

// Authorized reports whether the agent may use the asset. Ungoverned assets
// are public. Authorization is hierarchical: a grant on a parent asset
// (e.g. the database) covers its children (tables), mirroring the registry's
// lakehouse-to-table hierarchy (§V-D).
func (r *DataRegistry) Authorized(assetName, agent string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.authorizedLocked(strings.ToLower(assetName), strings.ToLower(agent))
}

func (r *DataRegistry) authorizedLocked(assetKey, agent string) bool {
	a, ok := r.assets[assetKey]
	if !ok {
		return false
	}
	if g, governed := r.grants[assetKey]; governed {
		return g[agent]
	}
	if a.Parent != "" {
		parentKey := strings.ToLower(a.Parent)
		if _, governed := r.grants[parentKey]; governed {
			return r.authorizedLocked(parentKey, agent)
		}
	}
	return true
}

// CheckAccess returns ErrUnauthorized when the agent may not use the asset.
func (r *DataRegistry) CheckAccess(assetName, agent string) error {
	if !r.Authorized(assetName, agent) {
		return fmt.Errorf("%w: %s -> %s", ErrUnauthorized, agent, assetName)
	}
	return nil
}

// DiscoverFor is privilege-aware discovery: results the agent may not use
// are filtered out before ranking truncation, so restricted assets never
// leak into plans (§VII data governance).
func (r *DataRegistry) DiscoverFor(agent, query string, k int) []AssetHit {
	hits := r.Discover(query, k*4)
	out := make([]AssetHit, 0, k)
	for _, h := range hits {
		if r.Authorized(h.Asset.Name, agent) {
			out = append(out, h)
			if len(out) == k {
				break
			}
		}
	}
	return out
}
