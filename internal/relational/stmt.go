package relational

import (
	"container/list"
	"strings"
	"sync"
)

// DefaultStmtCacheCapacity is the statement-cache size a new DB starts with.
// 256 distinct statement shapes comfortably cover the templated hot paths of
// the blueprint (NL2Q output, data-plan operators, agent queries) while
// bounding memory for adversarial workloads.
const DefaultStmtCacheCapacity = 256

// Stmt is a prepared statement: a parsed, reusable form of one SQL text
// plus a slot holding its compiled plan. Preparing once and executing many
// times amortizes lexing, parsing and plan compilation, the dominant fixed
// costs of short queries. A Stmt is immutable after Prepare and safe for
// concurrent use by multiple goroutines; the compiled plan is revalidated
// against per-table schema versions at execution time, so a Stmt held
// across DDL keeps working (it recompiles against the new schema, or fails
// if its table is gone).
type Stmt struct {
	db     *DB
	sql    string
	st     Statement
	slot   *planSlot
	binder *paramBinder
}

// Prepare parses sql once and returns a reusable statement. The parse (and
// the plan slot, so compilations are shared too) is served from and
// populates the DB's statement cache, so repeated Prepare calls for the
// same text — or for any text sharing its literal-stripped shape — are
// cheap.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, slot, binder, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, sql: sql, st: st, slot: slot, binder: binder}, nil
}

// SQL returns the statement's original text.
func (s *Stmt) SQL() string { return s.sql }

// Query executes the prepared statement with optional positional parameters
// bound to '?' placeholders.
func (s *Stmt) Query(params ...any) (*Result, error) {
	return s.db.runLogged(s.sql, s.st, s.slot, s.binder, params...)
}

// Exec executes the prepared statement and reports the number of affected
// rows, mirroring DB.Exec.
func (s *Stmt) Exec(params ...any) (int, error) {
	res, err := s.db.runLogged(s.sql, s.st, s.slot, s.binder, params...)
	if err != nil {
		return 0, err
	}
	return affectedCount(res), nil
}

// missingParamType marks an unsupplied explicit parameter slot in a merged
// parameter vector (paramBinder.bind). It is outside the public Type range,
// so no real value can carry it; evaluation surfaces the same "missing
// parameter" error the raw path produces, numbered by the user-visible '?'
// ordinal.
const missingParamType Type = -1

var missingParam = Value{T: missingParamType}

// paramSrc returns the user-visible ordinal of a parameter for error
// messages: the explicit '?' ordinal when recorded, else the unified slot.
func paramSrc(p *Param) int {
	if p.Src > 0 {
		return p.Src
	}
	return p.Ordinal
}

// paramBinder merges auto-extracted literal values with caller-supplied
// explicit parameters into the unified slot vector a shape-shared plan
// expects. slots holds, per unified ordinal, 0 for an auto literal or the
// 1-based explicit '?' ordinal; lits holds the extracted literals in slot
// order. A nil binder is the exact-keyed identity: the caller's values pass
// through untouched.
type paramBinder struct {
	slots []int
	lits  []Value
}

// newBinder builds a binder over the (immutable, cache-resident) slot layout
// and this execution's extracted literals. lits is copied: the caller's
// buffer is pooled scratch.
func newBinder(slots []int, lits []Value) *paramBinder {
	b := &paramBinder{slots: slots}
	if len(lits) > 0 {
		b.lits = append(make([]Value, 0, len(lits)), lits...)
	}
	return b
}

// bind produces the merged parameter vector for one execution. Explicit
// slots the caller did not supply are filled with the missingParam sentinel
// (not truncated) so interleaved auto literals after them still bind, and
// the missing-parameter error reports the explicit ordinal, exactly as the
// exact-keyed path would.
func (b *paramBinder) bind(vals []Value) []Value {
	if b == nil {
		return vals
	}
	if len(vals) == 0 && len(b.lits) == len(b.slots) {
		// Every unified slot is an auto-extracted literal (the common case
		// for literal-inlined text): the private lits copy already is the
		// merged vector.
		return b.lits
	}
	merged := make([]Value, len(b.slots))
	li := 0
	for i, s := range b.slots {
		switch {
		case s == 0:
			merged[i] = b.lits[li]
			li++
		case s-1 < len(vals):
			merged[i] = vals[s-1]
		default:
			merged[i] = missingParam
		}
	}
	return merged
}

// CacheStats reports statement-cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups served from the cache (parse skipped), shape-keyed
	// and exact-keyed alike.
	Hits uint64
	// Misses counts lookups that had to parse a cacheable statement.
	Misses uint64
	// ShapeHits counts the subset of Hits served by fingerprint shape keys:
	// the texts differed from what populated the entry (or matched it), but
	// the literal-stripped shapes agreed, so parse and compile were skipped.
	ShapeHits uint64
	// ExactFallbacks counts cacheable statements served under exact-text
	// keys — texts the fingerprint pass bailed on (DDL-free but lexically
	// odd, oversized literal lists) or that ran with shape keying disabled.
	ExactFallbacks uint64
	// Uncacheable counts executions of statements that are never cached
	// (DDL): they are not misses — no steady state of repetition could turn
	// them into hits — so they no longer skew HitRate.
	Uncacheable uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Invalidations counts DDL-triggered flush events that dropped at least
	// one entry. Invalidation is per-table: each DDL statement flushes only
	// the cached statements referencing the altered table, so hot statements
	// over other tables keep their parsed form.
	Invalidations uint64
	// Compiles counts plan compilations (compile.go). A steady workload of
	// repeated statements should show Compiles plateauing while Hits grows:
	// prepared and cached statements skip parse and compile alike. DDL on a
	// referenced table (CREATE/DROP) forces a recompile.
	Compiles uint64
	// Size is the current number of cached statements.
	Size int
	// Capacity is the configured bound (0 = caching disabled).
	Capacity int
}

// HitRate returns Hits/(Hits+Misses), or 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats returns a snapshot of the DB's statement-cache counters.
func (db *DB) CacheStats() CacheStats {
	s := db.stmts.snapshot()
	s.Compiles = db.compiles.Load()
	return s
}

// ResetCacheStats zeroes the cache counters without dropping cached
// statements, so callers can meter one workload phase.
func (db *DB) ResetCacheStats() {
	db.stmts.resetStats()
	db.compiles.Store(0)
}

// SetStmtCacheCapacity rebounds the statement cache. Shrinking evicts
// least-recently-used entries; 0 disables caching entirely (every Query,
// Exec and Prepare re-parses).
func (db *DB) SetStmtCacheCapacity(n int) { db.stmts.setCapacity(n) }

// SetShapeCacheEnabled toggles fingerprint shape keying. When disabled the
// cache falls back to exact-text keys for every statement (the pre-shape
// behavior) — used by benchmarks to meter the shape cache's contribution,
// and as an operational escape hatch.
func (db *DB) SetShapeCacheEnabled(on bool) { db.noShape.Store(!on) }

// parseCached returns the parsed form of sql, its plan slot and a parameter
// binder, consulting the statement cache first.
//
// The fast path fingerprints the text in one zero-allocation tokenizer
// sweep and looks up the literal-stripped shape: texts differing only in
// WHERE/SET/VALUES literals share one AST and one compiled plan, with the
// extracted literals bound per-execution through the returned binder.
// Statements the fingerprint pass bails on fall back to exact-text keys
// (binder nil). Only DML/query statements are cached: DDL is rare, and
// executing it invalidates the touched table's statements anyway.
func (db *DB) parseCached(sql string) (Statement, *planSlot, *paramBinder, error) {
	if !db.noShape.Load() {
		fp := fpScratch.Get().(*fingerprint)
		if fingerprintStmt(fp, sql) {
			if st, slot, slots, nAuto, ok := db.stmts.lookupShape(fp.key); ok && nAuto == len(fp.lits) {
				b := newBinder(slots, fp.lits)
				fpScratch.Put(fp)
				return st, slot, b, nil
			}
			st, slots, err := parseNormalized(sql)
			if err != nil {
				// Auto-extraction does not change parse control flow, so the
				// error matches what Parse(sql) would report.
				fpScratch.Put(fp)
				return nil, nil, nil, err
			}
			nAuto := 0
			for _, s := range slots {
				if s == 0 {
					nAuto++
				}
			}
			if nAuto == len(fp.lits) && cacheableStmt(st) {
				db.stmts.noteMiss()
				slot, slots := db.stmts.insertShape(string(fp.key), st, stmtTables(st), &planSlot{}, slots, nAuto)
				b := newBinder(slots, fp.lits)
				fpScratch.Put(fp)
				return st, slot, b, nil
			}
			// Extraction layouts disagree (defensive) or the statement is not
			// cacheable under a shape: re-run through the exact path below.
			fpScratch.Put(fp)
		} else {
			fpScratch.Put(fp)
		}
	}
	if st, slot, ok := db.stmts.lookupExact(sql); ok {
		return st, slot, nil, nil
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	slot := &planSlot{}
	if cacheableStmt(st) {
		db.stmts.noteMiss()
		slot = db.stmts.insertExact(sql, st, stmtTables(st), slot)
	} else {
		db.stmts.noteUncacheable()
	}
	return st, slot, nil, nil
}

// cacheableStmt reports whether a statement kind is worth caching.
func cacheableStmt(st Statement) bool {
	switch st.(type) {
	case *SelectStmt, *InsertStmt, *UpdateStmt, *DeleteStmt:
		return true
	default:
		return false
	}
}

// stmtTables returns the lowercased base-table names a cacheable statement
// references (the FROM table plus joined tables for SELECT; the target table
// for DML) — the invalidation key set for per-table DDL flushes.
func stmtTables(st Statement) []string {
	switch s := st.(type) {
	case *SelectStmt:
		out := []string{strings.ToLower(s.From.Table)}
		for _, j := range s.Joins {
			t := strings.ToLower(j.Table.Table)
			dup := false
			for _, have := range out {
				if have == t {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, t)
			}
		}
		return out
	case *InsertStmt:
		return []string{strings.ToLower(s.Table)}
	case *UpdateStmt:
		return []string{strings.ToLower(s.Table)}
	case *DeleteStmt:
		return []string{strings.ToLower(s.Table)}
	default:
		return nil
	}
}

// stmtCache is a concurrency-safe bounded LRU of parsed statements. Entries
// are keyed either by fingerprint shape ('S'-prefixed binary keys — one
// entry serves every text sharing the literal-stripped shape) or by exact
// text ("E"+sql, for statements the fingerprint pass bails on); the two key
// spaces share one LRU so the bound covers both. DDL (CREATE/DROP TABLE,
// CREATE INDEX) invalidates per table: only the cached statements
// referencing the altered table are flushed, so the hot paths of untouched
// tables keep their parsed plans across schema churn elsewhere (e.g.
// scratch tables created and dropped by agents).
type stmtCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits           uint64
	misses         uint64
	shapeHits      uint64
	exactFallbacks uint64
	uncacheable    uint64
	evictions      uint64
	invalidations  uint64
}

type stmtEntry struct {
	key    string
	st     Statement
	tables []string // lowercased tables the statement touches
	slot   *planSlot
	slots  []int // unified slot layout (shape entries; nil for exact)
	nAuto  int   // count of auto-literal slots in slots
}

func newStmtCache(capacity int) *stmtCache {
	return &stmtCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// lookupShape looks up a fingerprint shape key. The key is passed as the
// fingerprint's scratch bytes; the map probe does not retain (or copy) it.
func (c *stmtCache) lookupShape(key []byte) (Statement, *planSlot, []int, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[string(key)]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.shapeHits++
		e := el.Value.(*stmtEntry)
		return e.st, e.slot, e.slots, e.nAuto, true
	}
	return nil, nil, nil, 0, false
}

func (c *stmtCache) lookupExact(sql string) (Statement, *planSlot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries["E"+sql]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.exactFallbacks++
		e := el.Value.(*stmtEntry)
		return e.st, e.slot, true
	}
	return nil, nil, false
}

func (c *stmtCache) noteMiss()        { c.mu.Lock(); c.misses++; c.mu.Unlock() }
func (c *stmtCache) noteUncacheable() { c.mu.Lock(); c.uncacheable++; c.mu.Unlock() }

// insertShape caches the parsed statement under its shape key and returns
// the resident plan slot and slot layout — the caller's own when it won,
// the earlier entry's when it lost a parse race (so the compiled plan stays
// shared).
func (c *stmtCache) insertShape(key string, st Statement, tables []string, slot *planSlot, slots []int, nAuto int) (*planSlot, []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return slot, slots
	}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*stmtEntry)
		return e.slot, e.slots
	}
	el := c.ll.PushFront(&stmtEntry{key: key, st: st, tables: tables, slot: slot, slots: slots, nAuto: nAuto})
	c.entries[key] = el
	for c.ll.Len() > c.cap {
		c.evictOldestLocked()
	}
	return slot, slots
}

// insertExact caches the parsed statement under its exact text and returns
// the resident slot (see insertShape). Exact-keyed cacheable statements
// count as fallbacks from shape keying.
func (c *stmtCache) insertExact(sql string, st Statement, tables []string, slot *planSlot) *planSlot {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.exactFallbacks++
	if c.cap <= 0 {
		return slot
	}
	key := "E" + sql
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*stmtEntry).slot
	}
	el := c.ll.PushFront(&stmtEntry{key: key, st: st, tables: tables, slot: slot})
	c.entries[key] = el
	for c.ll.Len() > c.cap {
		c.evictOldestLocked()
	}
	return slot
}

func (c *stmtCache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.ll.Remove(el)
	delete(c.entries, el.Value.(*stmtEntry).key)
	c.evictions++
}

// invalidateTable flushes the cached statements referencing the given table
// (called after successful DDL on it). Statements over other tables stay
// resident: a scratch-table CREATE/DROP no longer evicts the enterprise hot
// path. DDL is rare, so the linear sweep over at most cap entries is cheap.
// Sweeps that flush nothing are not counted as invalidation events.
func (c *stmtCache) invalidateTable(table string) {
	key := strings.ToLower(table)
	c.mu.Lock()
	defer c.mu.Unlock()
	flushed := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*stmtEntry)
		for _, t := range e.tables {
			if t == key {
				c.ll.Remove(el)
				delete(c.entries, e.key)
				flushed++
				break
			}
		}
	}
	if flushed > 0 {
		c.invalidations++
	}
}

// flushAll drops every cached statement (a durability Restore replaced the
// whole catalog, so no parsed form or compiled plan can be trusted).
func (c *stmtCache) flushAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ll.Len() > 0 {
		c.invalidations++
	}
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
}

func (c *stmtCache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.cap = n
	if n == 0 {
		c.ll.Init()
		c.entries = make(map[string]*list.Element)
		return
	}
	for c.ll.Len() > n {
		c.evictOldestLocked()
	}
}

func (c *stmtCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		ShapeHits:      c.shapeHits,
		ExactFallbacks: c.exactFallbacks,
		Uncacheable:    c.uncacheable,
		Evictions:      c.evictions,
		Invalidations:  c.invalidations,
		Size:           c.ll.Len(),
		Capacity:       c.cap,
	}
}

func (c *stmtCache) resetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions, c.invalidations = 0, 0, 0, 0
	c.shapeHits, c.exactFallbacks, c.uncacheable = 0, 0, 0
}
