// Package graphstore implements an embedded labeled property graph.
//
// In the blueprint architecture it plays the role of the enterprise's graph
// databases — most prominently the job-title taxonomy the data planner
// consults to expand "data scientist" into related titles (§V-G, Fig. 7).
package graphstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Common errors.
var (
	ErrNodeExists   = errors.New("graphstore: node already exists")
	ErrNodeNotFound = errors.New("graphstore: node not found")
)

// Node is a vertex with a label and properties.
type Node struct {
	ID    string
	Label string
	Props map[string]any
}

// Edge is a directed, labeled edge.
type Edge struct {
	From  string
	To    string
	Label string
	Props map[string]any
}

// Direction selects edge orientation for traversals.
type Direction int

const (
	// Out follows edges from the node.
	Out Direction = iota
	// In follows edges into the node.
	In
	// Both follows edges in either direction.
	Both
)

// Graph is a thread-safe directed property graph.
type Graph struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	out   map[string][]*Edge
	in    map[string][]*Edge
	edges int
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[string]*Node),
		out:   make(map[string][]*Edge),
		in:    make(map[string][]*Edge),
	}
}

// AddNode inserts a node.
func (g *Graph) AddNode(id, label string, props map[string]any) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[id]; ok {
		return fmt.Errorf("%w: %s", ErrNodeExists, id)
	}
	g.nodes[id] = &Node{ID: id, Label: label, Props: props}
	return nil
}

// AddEdge inserts a directed edge; both endpoints must exist.
func (g *Graph) AddEdge(from, to, label string, props map[string]any) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, to)
	}
	e := &Edge{From: from, To: to, Label: label, Props: props}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.edges++
	return nil
}

// Node returns a node by id.
func (g *Graph) Node(id string) (Node, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, fmt.Errorf("%w: %s", ErrNodeNotFound, id)
	}
	return *n, nil
}

// Stats reports node and edge counts.
func (g *Graph) Stats() (nodes, edges int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes), g.edges
}

// NodesByLabel returns all nodes carrying the label, sorted by id.
func (g *Graph) NodesByLabel(label string) []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Node
	for _, n := range g.nodes {
		if n.Label == label {
			out = append(out, *n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FindNodes returns nodes whose string property prop contains substr
// (case-insensitive), sorted by id.
func (g *Graph) FindNodes(prop, substr string) []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	needle := strings.ToLower(substr)
	var out []Node
	for _, n := range g.nodes {
		if v, ok := n.Props[prop]; ok {
			if s, ok := v.(string); ok && strings.Contains(strings.ToLower(s), needle) {
				out = append(out, *n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Neighbors returns ids adjacent to id via edges with the given label
// (empty label = any), in the given direction, sorted.
func (g *Graph) Neighbors(id, label string, dir Direction) ([]string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeNotFound, id)
	}
	seen := map[string]bool{}
	var out []string
	add := func(nid string) {
		if !seen[nid] {
			seen[nid] = true
			out = append(out, nid)
		}
	}
	if dir == Out || dir == Both {
		for _, e := range g.out[id] {
			if label == "" || e.Label == label {
				add(e.To)
			}
		}
	}
	if dir == In || dir == Both {
		for _, e := range g.in[id] {
			if label == "" || e.Label == label {
				add(e.From)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// Traverse performs a BFS from id following edges with the given label in
// the given direction, up to maxDepth hops (0 = only the start node).
// The start node is included. Results are in BFS order with ties sorted.
func (g *Graph) Traverse(id, label string, dir Direction, maxDepth int) ([]string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeNotFound, id)
	}
	visited := map[string]bool{id: true}
	out := []string{id}
	frontier := []string{id}
	for depth := 0; depth < maxDepth && len(frontier) > 0; depth++ {
		var next []string
		for _, cur := range frontier {
			var adj []string
			if dir == Out || dir == Both {
				for _, e := range g.out[cur] {
					if label == "" || e.Label == label {
						adj = append(adj, e.To)
					}
				}
			}
			if dir == In || dir == Both {
				for _, e := range g.in[cur] {
					if label == "" || e.Label == label {
						adj = append(adj, e.From)
					}
				}
			}
			sort.Strings(adj)
			for _, n := range adj {
				if !visited[n] {
					visited[n] = true
					out = append(out, n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return out, nil
}

// ShortestPath returns one shortest undirected path between two nodes
// following edges with the given label (empty = any), or nil if none.
func (g *Graph) ShortestPath(from, to, label string) ([]string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[from]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeNotFound, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeNotFound, to)
	}
	if from == to {
		return []string{from}, nil
	}
	prev := map[string]string{from: from}
	frontier := []string{from}
	for len(frontier) > 0 {
		var next []string
		for _, cur := range frontier {
			var adj []string
			for _, e := range g.out[cur] {
				if label == "" || e.Label == label {
					adj = append(adj, e.To)
				}
			}
			for _, e := range g.in[cur] {
				if label == "" || e.Label == label {
					adj = append(adj, e.From)
				}
			}
			sort.Strings(adj)
			for _, n := range adj {
				if _, ok := prev[n]; ok {
					continue
				}
				prev[n] = cur
				if n == to {
					var path []string
					for at := to; ; at = prev[at] {
						path = append([]string{at}, path...)
						if at == from {
							return path, nil
						}
					}
				}
				next = append(next, n)
			}
		}
		frontier = next
	}
	return nil, nil
}
