package streams

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"blueprint/internal/durability"
)

const testSubID = 4

func openDurableStore(t testing.TB, dir string) (*Store, *durability.Engine) {
	t.Helper()
	s := NewStore()
	eng, err := durability.Open(dir, durability.Options{DisableFsync: true, FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(testSubID, "streams", s); err != nil {
		t.Fatal(err)
	}
	s.SetDurable(eng.Logger(testSubID).Append)
	if err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func publishN(t testing.TB, s *Store, stream string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Publish(Message{
			Stream: stream, Sender: "tester", Payload: map[string]any{"i": i},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// payloadI extracts the "i" counter a publishN message carries, tolerating
// the JSON round trip (numbers decode as float64).
func payloadI(m Message) string {
	p, ok := m.Payload.(map[string]any)
	if !ok {
		return fmt.Sprintf("bad payload %T", m.Payload)
	}
	return fmt.Sprint(p["i"])
}

func TestEngineReplayRecoversStreams(t *testing.T) {
	dir := t.TempDir()
	s, eng := openDurableStore(t, dir)
	publishN(t, s, "chat", 20)
	if err := s.CloseStream("done-stream", "tester"); err == nil {
		t.Fatal("closing a missing stream should fail") // sanity
	}
	if _, err := s.Publish(Message{Stream: "done-stream", Sender: "tester", Payload: map[string]any{"x": 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseStream("done-stream", "tester"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, eng2 := openDurableStore(t, dir)
	defer eng2.Close()
	defer s2.Close()
	msgs, err := s2.ReadAll("chat")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 20 {
		t.Fatalf("recovered %d messages, want 20", len(msgs))
	}
	for i, m := range msgs {
		if payloadI(m) != fmt.Sprint(i) {
			t.Fatalf("message %d payload = %v", i, payloadI(m))
		}
	}
	info, err := s2.Info("done-stream")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Closed {
		t.Fatal("EOS state lost across recovery")
	}
	// The logical clock and message ids must continue past the recovered
	// history — no reused ids.
	m, err := s2.Publish(Message{Stream: "chat", Sender: "tester", Payload: map[string]any{"i": 20}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 20 {
		t.Fatalf("post-recovery Seq = %d, want 20", m.Seq)
	}
}

func TestEngineSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	s, eng := openDurableStore(t, dir)
	publishN(t, s, "chat", 10)
	if err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	publishN(t, s, "chat", 5) // the post-snapshot tail
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, eng2 := openDurableStore(t, dir)
	defer eng2.Close()
	defer s2.Close()
	msgs, err := s2.ReadAll("chat")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 15 {
		t.Fatalf("recovered %d messages (snapshot 10 + tail 5), want 15", len(msgs))
	}
	for i, m := range msgs {
		if m.Seq != int64(i) {
			t.Fatalf("message %d has Seq %d after snapshot+replay (duplicate or gap)", i, m.Seq)
		}
	}
}

// TestLegacyWALTornTailTruncated is the regression test for the legacy
// JSON WAL crash-safety fix: garbage after the last valid record must be
// truncated at recovery, so records appended by the next run stay
// reachable to every later recovery. Without the truncation, run 3 would
// lose everything run 2 wrote.
func TestLegacyWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")

	// Run 1: write two messages, then crash mid-record.
	s, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	publishN(t, s, "chat", 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"append","msg":{"stream":"chat","pa`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Run 2: recovers the two messages, truncates the torn tail, appends
	// a third.
	s2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if msgs, _ := s2.ReadAll("chat"); len(msgs) != 2 {
		t.Fatalf("run 2 recovered %d messages, want 2", len(msgs))
	}
	if _, err := s2.Publish(Message{Stream: "chat", Sender: "tester", Payload: map[string]any{"i": 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Run 3: all three messages must be there — the third must not be
	// hidden behind leftover garbage.
	s3, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	msgs, err := s3.ReadAll("chat")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("run 3 recovered %d messages, want 3 (torn tail not truncated?)", len(msgs))
	}
}

func TestSnapshotRestoreRoundTripDirect(t *testing.T) {
	s := NewStore()
	defer s.Close()
	publishN(t, s, "a", 3)
	publishN(t, s, "b", 2)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	defer s2.Close()
	if err := s2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for stream, want := range map[string]int{"a": 3, "b": 2} {
		msgs, err := s2.ReadAll(stream)
		if err != nil || len(msgs) != want {
			t.Fatalf("stream %s: %d messages (err %v), want %d", stream, len(msgs), err, want)
		}
	}
	if got := s2.StatsSnapshot(); got.MessagesAppended != 5 {
		t.Fatalf("restored stats count %d appends, want 5", got.MessagesAppended)
	}
}

func TestEngineTornTailPrefixForStreams(t *testing.T) {
	dir := t.TempDir()
	s, eng := openDurableStore(t, dir)
	publishN(t, s, "chat", 30)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	seg := filepath.Join(dir, "wal-00000001.log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()*2/3); err != nil {
		t.Fatal(err)
	}
	s2, eng2 := openDurableStore(t, dir)
	defer eng2.Close()
	defer s2.Close()
	msgs, err := s2.ReadAll("chat")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 0 || len(msgs) >= 30 {
		t.Fatalf("recovered %d messages from a 2/3 log, want a proper prefix", len(msgs))
	}
	for i, m := range msgs {
		if payloadI(m) != fmt.Sprint(i) {
			t.Fatalf("message %d is not the committed prefix: %v", i, payloadI(m))
		}
	}
}
