package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Span tracing. A Span is one timed unit of work — an ask, a plan, a
// scheduler step, a memo lookup, an agent invocation, a SQL statement —
// with a parent link, a component label and key/value attributes. Spans
// propagate two ways:
//
//   - In-process, via context.Context: StartSpan derives a child of the
//     span carried by ctx (ContextWith/FromContext).
//   - Across stream boundaries, via tokens: the coordinator embeds
//     Span.Token() in the EXECUTE_AGENT directive args and the agent
//     runtime resumes the trace with Tracer.Resume — orchestration crosses
//     goroutines over streams, so the trace context must ride the message,
//     not the call stack.
//
// Completed spans are recorded into a bounded per-session ring
// (Tracer.Session reads it; GET /trace/{session} and bpctl trace render
// it). Components that fire outside any ask (decentralized activations on
// an idle session) produce no spans: StartUnder anchors to the session's
// active root and returns a no-op span when there is none, so rings hold
// coherent ask trees rather than unanchored noise.

// Spans is the process-global tracer, the spans counterpart of Default.
var Spans = NewTracer()

const (
	// maxSessions bounds how many per-session rings the tracer retains;
	// beyond it the oldest session's trace is evicted.
	maxSessions = 128
	// ringCapacity bounds each session's span ring; older spans are
	// overwritten (an ask on the hragents suite is ~20-40 spans, so the
	// ring holds the last ~50-100 asks of a session).
	ringCapacity = 2048
)

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is a completed span as recorded in a session ring.
type SpanData struct {
	// ID is unique within the tracer; Parent is 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Component names the producing layer: "session", "coordinator",
	// "scheduler", "memo", "agent", "relational".
	Component string `json:"component"`
	// Name describes the unit of work within the component.
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"duration_ns"`
	Attrs []Attr        `json:"attrs,omitempty"`
}

// Span is an in-flight span. All methods are safe on a nil receiver — a
// disabled tracer (or an unanchored StartUnder) hands out nil spans and
// instrumentation sites need no conditionals.
type Span struct {
	t         *Tracer
	session   string
	id        uint64
	parent    uint64
	component string
	name      string
	start     time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// SetAttr attaches a key/value attribute (no-op after End).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// End completes the span and records it into its session's ring. Ending
// twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.t.record(s.session, SpanData{
		ID: s.id, Parent: s.parent, Component: s.component, Name: s.name,
		Start: s.start, Dur: time.Since(s.start), Attrs: attrs,
	}, s.parent == 0, s.id)
}

// ID returns the span id (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Token serializes the span identity for propagation across a stream
// boundary ("" for nil); Tracer.Resume parses it back.
func (s *Span) Token() string {
	if s == nil {
		return ""
	}
	return strconv.FormatUint(s.id, 36)
}

// Tracer records spans into bounded per-session rings.
type Tracer struct {
	nextID atomic.Uint64

	mu       sync.Mutex
	sessions map[string]*sessionTrace
	order    []string // FIFO for session eviction
}

type sessionTrace struct {
	mu         sync.Mutex
	ring       []SpanData
	next       int // ring write cursor
	full       bool
	activeRoot uint64
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{sessions: map[string]*sessionTrace{}}
}

func (t *Tracer) session(id string, create bool) *sessionTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.sessions[id]
	if !ok && create {
		st = &sessionTrace{ring: make([]SpanData, 0, 64)}
		t.sessions[id] = st
		t.order = append(t.order, id)
		if len(t.order) > maxSessions {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.sessions, evict)
		}
	}
	return st
}

func (t *Tracer) newSpan(session string, parent uint64, component, name string) *Span {
	return &Span{
		t: t, session: session, id: t.nextID.Add(1), parent: parent,
		component: component, name: name, start: time.Now(),
	}
}

// StartRoot opens a root span and marks it the session's active root:
// until it ends, StartUnder anchors unparented work (stream-triggered
// agents, watched plans) beneath it. Returns nil while the plane is
// disabled.
func (t *Tracer) StartRoot(session, component, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	sp := t.newSpan(session, 0, component, name)
	st := t.session(session, true)
	st.mu.Lock()
	st.activeRoot = sp.id
	st.mu.Unlock()
	return sp
}

// StartUnder opens a span parented to the session's active root. Without an
// active root (no ask in flight, or the plane disabled) it returns nil and
// nothing is recorded.
func (t *Tracer) StartUnder(session, component, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	st := t.session(session, false)
	if st == nil {
		return nil
	}
	st.mu.Lock()
	root := st.activeRoot
	st.mu.Unlock()
	if root == 0 {
		return nil
	}
	return t.newSpan(session, root, component, name)
}

// Resume continues a trace across a stream boundary: token is a parent
// Span.Token() carried in a message. An empty or malformed token falls back
// to StartUnder.
func (t *Tracer) Resume(session, token, component, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	parent, err := strconv.ParseUint(token, 36, 64)
	if err != nil || parent == 0 {
		return t.StartUnder(session, component, name)
	}
	if t.session(session, false) == nil {
		return nil
	}
	return t.newSpan(session, parent, component, name)
}

// record appends a completed span to the session ring; a completed root
// releases the active-root anchor.
func (t *Tracer) record(session string, d SpanData, isRoot bool, id uint64) {
	st := t.session(session, true)
	st.mu.Lock()
	if len(st.ring) < ringCapacity && !st.full {
		st.ring = append(st.ring, d)
		if len(st.ring) == ringCapacity {
			st.full = true
		}
	} else {
		st.ring[st.next] = d
		st.next = (st.next + 1) % ringCapacity
	}
	if isRoot && st.activeRoot == id {
		st.activeRoot = 0
	}
	st.mu.Unlock()
}

// Session returns the session's recorded spans, oldest first.
func (t *Tracer) Session(session string) []SpanData {
	st := t.session(session, false)
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.full {
		return append([]SpanData(nil), st.ring...)
	}
	out := make([]SpanData, 0, ringCapacity)
	out = append(out, st.ring[st.next:]...)
	out = append(out, st.ring[:st.next]...)
	return out
}

// Sessions lists the sessions with recorded traces, oldest first.
func (t *Tracer) Sessions() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// Reset drops all recorded traces (test hook).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.sessions = map[string]*sessionTrace{}
	t.order = nil
	t.mu.Unlock()
}

// ---- context propagation ----

type ctxKey struct{}

// ContextWith returns ctx carrying the span (ctx unchanged for nil spans).
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan derives a child span of the span carried by ctx, returning the
// child-carrying context. Without a parent in ctx (or with the plane
// disabled) it returns (ctx, nil): instrumentation is free outside a traced
// request.
func StartSpan(ctx context.Context, component, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil || !enabled.Load() {
		return ctx, nil
	}
	sp := parent.t.newSpan(parent.session, parent.id, component, name)
	return ContextWith(ctx, sp), sp
}

// Truncate shortens s to at most n bytes without splitting a multi-byte
// UTF-8 rune, appending "..." when anything was cut.
func Truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	cut := n
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "..."
}
