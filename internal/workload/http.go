package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTPDriver replays workload against a live blueprintd over actual HTTP —
// TCP, JSON bodies, X-Tenant headers — instead of in-process method calls,
// so experiments measure the deployed surface (connection handling,
// serialization, the admission governor behind the ask endpoint) and can
// scrape /metrics as their dashboard. It is a plain client: the package
// stays below blueprint in the dependency order.
type HTTPDriver struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Client is the HTTP client (default: 30s timeout).
	Client *http.Client
}

// NewHTTPDriver creates a driver for a daemon at base.
func NewHTTPDriver(base string) *HTTPDriver {
	return &HTTPDriver{
		Base:   strings.TrimRight(base, "/"),
		Client: &http.Client{Timeout: 30 * time.Second},
	}
}

// AskResult is one HTTP ask's outcome as seen on the wire.
type AskResult struct {
	// Status is the HTTP status code (200 OK, 429 shed, ...).
	Status int
	// TraceID is the X-Trace-Id response header (set on every ask
	// response, sheds included).
	TraceID string
	Answer  string
	// Degraded marks a stale memoized answer served during overload.
	Degraded bool
	StaleFor time.Duration
	// RetryAfter is the advisory backoff on a 429.
	RetryAfter time.Duration
	// Err is the error string from a non-200 body.
	Err string
}

// Shed reports whether the ask was load-shed (HTTP 429).
func (r AskResult) Shed() bool { return r.Status == http.StatusTooManyRequests }

// OK reports a fresh, successful answer.
func (r AskResult) OK() bool { return r.Status == http.StatusOK && !r.Degraded }

// CreateSession opens a session on the daemon and returns its id.
func (d *HTTPDriver) CreateSession() (string, error) {
	resp, err := d.Client.Post(d.Base+"/sessions", "application/json", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("POST /sessions: HTTP %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Ask posts one ask to a session under a tenant and folds the wire-level
// outcome. A shed (429) is a valid result, not an error; err is reserved
// for transport and protocol failures.
func (d *HTTPDriver) Ask(sessionID, tenant, text string, timeout time.Duration) (AskResult, error) {
	body, _ := json.Marshal(map[string]any{
		"text": text, "timeout_ms": int(timeout / time.Millisecond),
	})
	sid := strings.TrimPrefix(sessionID, "session:")
	req, err := http.NewRequest("POST", d.Base+"/sessions/"+sid+"/ask", bytes.NewReader(body))
	if err != nil {
		return AskResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := d.Client.Do(req)
	if err != nil {
		return AskResult{}, err
	}
	defer resp.Body.Close()
	res := AskResult{Status: resp.StatusCode, TraceID: resp.Header.Get("X-Trace-Id")}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		res.RetryAfter = time.Duration(secs) * time.Second
	}
	var payload struct {
		Answer     string  `json:"answer"`
		Degraded   bool    `json:"degraded"`
		StaleForMS int64   `json:"stale_for_ms"`
		RetryMS    float64 `json:"retry_after_ms"`
		Error      string  `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return res, fmt.Errorf("ask response body: %w", err)
	}
	res.Answer = payload.Answer
	res.Degraded = payload.Degraded
	res.StaleFor = time.Duration(payload.StaleForMS) * time.Millisecond
	res.Err = payload.Error
	return res, nil
}

// ScrapeMetrics fetches GET /metrics and parses the Prometheus text
// exposition into a flat series->value map keyed by the full sample name,
// labels included (`blueprint_slo_burn_rate{kind="tenant",...}`) — the
// experiment's dashboard view of the daemon.
func (d *HTTPDriver) ScrapeMetrics() (map[string]float64, error) {
	resp, err := d.Client.Get(d.Base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return ParsePrometheus(string(raw))
}

// ParsePrometheus parses text exposition format 0.0.4 into series->value.
// Comment lines are skipped; sample lines are `name[{labels}] value` with
// an optional timestamp (dropped).
func ParsePrometheus(text string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The series name may contain spaces inside label values; the value
		// starts after the last space not inside braces — scan from the end.
		sp := -1
		depth := 0
		for i := len(line) - 1; i >= 0; i-- {
			switch line[i] {
			case '}':
				depth++
			case '{':
				depth--
			case ' ':
				if depth == 0 {
					sp = i
				}
			}
			if depth < 0 {
				break
			}
		}
		if sp <= 0 {
			return nil, fmt.Errorf("unparseable sample line %q", line)
		}
		fields := strings.Fields(line[sp+1:])
		if len(fields) < 1 {
			return nil, fmt.Errorf("sample line %q has no value", line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("sample line %q: %w", line, err)
		}
		out[line[:sp]] = v
	}
	return out, nil
}
