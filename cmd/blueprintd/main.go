// blueprintd serves a blueprint System over HTTP — the "deployed in a
// distributed system" face of the architecture, exposing sessions, the
// conversational surface, both registries, stream observability, the
// structured event log, the slow-ask flight recorder and SLO burn rates.
// The handler surface itself lives in internal/httpapi (see its Server doc
// for the endpoint list); this binary binds it to flags, a listener and a
// graceful-shutdown lifecycle.
//
// Deploy-time tuning: -parallel bounds how many plan steps the coordinator
// executes concurrently per plan, -memo bounds the step-result memoization
// cache (entries; -memo 0 uses the default, -no-memo disables reuse), and
// -data-dir points the shared durability engine at its WAL + snapshot
// directory — a restarted daemon then recovers tables, registries, warm
// memo entries and stream history instead of coming back cold. SIGINT and
// SIGTERM shut down gracefully: in-flight requests drain, a final snapshot
// is flushed and the log closes cleanly.
//
// Overload control: -max-concurrent bounds in-flight asks globally (0 =
// ungoverned); beyond it asks queue (bounded by -max-queue, waiting at most
// -queue-timeout) and then shed with HTTP 429 + Retry-After. Tenants are
// identified by the X-Tenant header ("default" when absent) and capped to a
// -tenant-share fraction of the slots under contention. A shed repeat ask
// within the staleness budget is answered from the memoized previous answer,
// marked "degraded": true. -read-timeout, -write-timeout and -idle-timeout
// bound the HTTP connection itself (slowloris defense).
//
// Flight-recorder tuning: -slow-threshold sets the latency past which an
// ask is captured with its span tree, events and cost breakdown (negative
// disables), -event-level the event log's minimum recorded level, and
// -slo-target / -slo-objective the SLO burn-rate accounting served at /slo.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"blueprint"
	"blueprint/internal/httpapi"
	"blueprint/internal/obs"
	"blueprint/internal/resilience"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 42, "deterministic seed")
	walPath := flag.String("wal", "", "optional stand-alone stream WAL path (superseded by -data-dir)")
	dataDir := flag.String("data-dir", "", "durability directory: shared WAL + snapshots for warm restarts")
	snapEvery := flag.Duration("snapshot-every", time.Minute, "background snapshot interval when -data-dir is set (0 = only on shutdown)")
	parallel := flag.Int("parallel", 0, "max concurrently executing steps per plan (0 = default)")
	memoCap := flag.Int("memo", 0, "step-result memoization cache capacity in entries (0 = default)")
	noMemo := flag.Bool("no-memo", false, "disable step-result memoization")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof handlers under /debug/pprof/")
	maxConc := flag.Int("max-concurrent", 0, "max in-flight asks before queueing/shedding (0 = ungoverned)")
	maxQueue := flag.Int("max-queue", 0, "max asks waiting for a slot before immediate shed (0 = 2x max-concurrent)")
	queueTO := flag.Duration("queue-timeout", time.Second, "max time a queued ask waits before it is shed")
	tenantShare := flag.Float64("tenant-share", 0.5, "fraction of slots one tenant may hold under contention")
	readTO := flag.Duration("read-timeout", 30*time.Second, "max time to read a request, headers included (slowloris bound)")
	writeTO := flag.Duration("write-timeout", 60*time.Second, "max time to write a response")
	idleTO := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
	slowThresh := flag.Duration("slow-threshold", 0, "flight-recorder capture threshold for slow asks (0 = default 800ms, negative = disable)")
	eventLevel := flag.String("event-level", "", "event log minimum level: debug, info, warn, error, off (empty = info)")
	sloTarget := flag.Duration("slo-target", 0, "SLO latency target classifying an ask as slow (0 = default 1s)")
	sloObjective := flag.Float64("slo-objective", 0, "SLO good-fraction objective, e.g. 0.99 (0 = default)")
	flag.Parse()

	sys, err := blueprint.New(blueprint.Config{
		Seed: *seed, ModelAccuracy: 1.0, WALPath: *walPath,
		DataDir: *dataDir, SnapshotEvery: *snapEvery,
		MaxParallel: *parallel, MemoCapacity: *memoCap, DisableMemo: *noMemo,
		Governor: resilience.GovernorConfig{
			MaxConcurrent: *maxConc, MaxQueue: *maxQueue,
			QueueTimeout: *queueTO, TenantShare: *tenantShare,
			RetryAfter: *queueTO,
		},
		SlowAskThreshold: *slowThresh,
		EventLevel:       *eventLevel,
		SLO:              obs.SLOConfig{LatencyTarget: *sloTarget, Objective: *sloObjective},
	})
	if err != nil {
		log.Fatal(err)
	}

	handler := httpapi.New(sys, httpapi.Options{Pprof: *pprofOn})
	if *pprofOn {
		log.Printf("pprof on at /debug/pprof/")
	}

	if *dataDir != "" {
		rec := sys.DurabilityStats().Recovery
		log.Printf("durability on at %s: snapshot_restored=%v replayed_records=%d torn_tail=%v recovery=%s",
			*dataDir, rec.SnapshotRestored, rec.ReplayedRecords, rec.TornTailTruncated, rec.Duration)
	}
	log.Printf("blueprintd %s listening on %s (agents=%d, data assets=%d)",
		blueprint.Version, *addr, sys.AgentRegistry.Len(), sys.DataRegistry.Len())

	if *maxConc > 0 {
		log.Printf("overload governor on: max_concurrent=%d max_queue=%d queue_timeout=%s tenant_share=%.2f",
			*maxConc, *maxQueue, *queueTO, *tenantShare)
	}
	// Connection-level timeouts: a client trickling bytes (slowloris) is cut
	// off instead of pinning a goroutine and an admission slot forever.
	srv := &http.Server{
		Addr: *addr, Handler: handler,
		ReadTimeout:       *readTO,
		ReadHeaderTimeout: *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		sys.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful shutdown: drain in-flight requests, then flush a final
	// snapshot and close the log cleanly (System.Close).
	log.Printf("shutting down: draining requests, flushing final snapshot")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	sys.Close()
	if *dataDir != "" {
		st := sys.DurabilityStats()
		log.Printf("durability closed: snapshots=%d appends=%d log_bytes=%d", st.Snapshots, st.Appends, st.LogBytes)
	}
}
