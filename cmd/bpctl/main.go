// bpctl is the developer console for a blueprint System: it boots an
// in-process instance and inspects registries, compiles queries, plans
// utterances and replays conversations — the "web interface for developers"
// of §V-C, as a CLI.
//
// Usage:
//
//	bpctl agents                      # list the agent registry
//	bpctl data                        # list the data registry
//	bpctl search-agents <text>        # vector search over agents
//	bpctl discover <text>             # vector search over data assets
//	bpctl nl2q <question>             # compile NL -> SQL and run it
//	bpctl plan <utterance>            # show the task plan DAG
//	bpctl ask <utterance>             # full pipeline, print answer + flow
//	bpctl memo <utterance>            # run the plan twice: cold vs memo-warm + stats
//	bpctl sql <statement>             # raw SQL against the enterprise DB
//	bpctl stats                       # statement-cache counters (shape keying)
//	bpctl -data-dir D snapshot        # take a durability snapshot + print stats
//
// With -data-dir every command runs against the durable state in that
// directory (recovering it first), so e.g. `bpctl -data-dir D sql ...`
// mutates durably and `bpctl -data-dir D snapshot` compacts the log.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"blueprint"
	"blueprint/internal/dataplan"
	"blueprint/internal/nlq"
	"blueprint/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 42, "deterministic seed")
	dataDir := flag.String("data-dir", "", "durability directory (recover from and persist to it)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: bpctl [-data-dir D] <agents|data|search-agents|discover|nl2q|plan|ask|memo|sql|stats|snapshot> [args]")
	}

	sys, err := blueprint.New(blueprint.Config{Seed: *seed, ModelAccuracy: 1.0, DataDir: *dataDir})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	cmd, rest := args[0], strings.Join(args[1:], " ")
	switch cmd {
	case "agents":
		for _, spec := range sys.AgentRegistry.List() {
			fmt.Printf("%-20s v%d  %s\n", spec.Name, spec.Version, spec.Description)
			for _, in := range spec.Inputs {
				fmt.Printf("    in:  %s (%s)\n", in.Name, in.Type)
			}
			for _, out := range spec.Outputs {
				fmt.Printf("    out: %s (%s)\n", out.Name, out.Type)
			}
		}
	case "data":
		for _, a := range sys.DataRegistry.List("", "") {
			fmt.Printf("%-20s %-10s %-10s rows=%-6d %s\n", a.Name, a.Kind, a.Level, a.Rows, a.Description)
			if len(a.Indexes) > 0 {
				fmt.Printf("    indexes: %s\n", strings.Join(a.Indexes, ", "))
			}
		}
	case "search-agents":
		for _, h := range sys.AgentRegistry.SearchVector(rest, 5) {
			fmt.Printf("%.3f  %-20s %s\n", h.Score, h.Spec.Name, h.Spec.Description)
		}
	case "discover":
		for _, h := range sys.DataRegistry.Discover(rest, 5) {
			fmt.Printf("%.3f  %-20s %s\n", h.Score, h.Asset.Name, h.Asset.Description)
		}
	case "nl2q":
		tgt, err := dataplan.BuildTarget(sys.Enterprise.DB, "jobs")
		if err != nil {
			log.Fatal(err)
		}
		c, err := nlq.Compile(rest, tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sql:        %s\nconfidence: %.2f\n", c.SQL, c.Confidence)
		for _, e := range c.Explanation {
			fmt.Printf("  %s\n", e)
		}
		res, err := sys.Enterprise.DB.Query(c.SQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	case "plan":
		p, err := sys.TaskPlanner.Plan(rest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(p)
		for _, e := range p.Explanation {
			fmt.Printf("  %s\n", e)
		}
	case "ask":
		s, err := sys.StartSession("")
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		answer, err := s.Ask(rest, 15*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("answer: %s\n\nflow:\n%s", answer, trace.Render(s.Flow()))
	case "memo":
		s, err := sys.StartSession("")
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		run := func(label string) {
			start := time.Now()
			res, _, err := s.ExecuteUtterance(rest)
			if err != nil {
				log.Fatal(err)
			}
			cached := 0
			for _, sr := range res.Steps {
				if sr.Cached {
					cached++
				}
			}
			fmt.Printf("%-5s wall=%-12s steps=%d cached=%d cost=$%.5f\n",
				label, time.Since(start).Round(time.Microsecond), len(res.Steps), cached, res.Budget.CostSpent)
		}
		run("cold")
		run("warm")
		st := sys.MemoStats()
		fmt.Printf("memo  hits=%d misses=%d hit_rate=%.0f%% coalesced=%d entries=%d saved=$%.5f/%s\n",
			st.Hits, st.Misses, st.HitRate()*100, st.Coalesced, st.Entries, st.SavedCost, st.SavedLatency)
	case "sql":
		res, err := sys.Enterprise.DB.Query(rest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
		if res.Plan != "" {
			fmt.Printf("plan: %s\n", res.Plan)
		}
	case "stats":
		cs := sys.Enterprise.DB.CacheStats()
		fmt.Printf("stmt cache: hits=%d (shape=%d exact=%d) misses=%d hit_rate=%.0f%%\n",
			cs.Hits, cs.ShapeHits, cs.ExactFallbacks, cs.Misses, cs.HitRate()*100)
		fmt.Printf("            compiles=%d invalidations=%d uncacheable=%d size=%d\n",
			cs.Compiles, cs.Invalidations, cs.Uncacheable, cs.Size)
	case "snapshot":
		if err := sys.Snapshot(); err != nil {
			log.Fatal(err)
		}
		st := sys.DurabilityStats()
		fmt.Printf("snapshot taken: bytes=%d segments=%d log_bytes=%d snapshots_this_run=%d\n",
			st.SnapshotBytes, st.Segments, st.LogBytes, st.Snapshots)
		rec := st.Recovery
		fmt.Printf("recovery at open: snapshot_restored=%v replayed_records=%d torn_tail_repaired=%v duration=%s\n",
			rec.SnapshotRestored, rec.ReplayedRecords, rec.TornTailTruncated, rec.Duration)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
