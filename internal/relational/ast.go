package relational

import "strings"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []ColumnRef
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
	Offset   int
	Explain  bool
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// CreateTableStmt is CREATE TABLE t (col TYPE, ...).
type CreateTableStmt struct {
	Table   string
	Columns []Column
}

// CreateIndexStmt is CREATE [ORDERED] INDEX name ON t (col).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Column  string
	Ordered bool
}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct{ Table string }

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the effective name (alias if present).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is INNER/LEFT JOIN t ON a = b (equijoin only).
type JoinClause struct {
	Left  bool // LEFT OUTER join if true, else inner
	Table TableRef
	LCol  ColumnRef
	RCol  ColumnRef
}

// SelectItem is one projection: expression (possibly aggregate) with alias,
// or the star.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is any scalar or aggregate expression.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val Value }

// Param is a positional ? parameter (1-based ordinal assigned by parser).
type Param struct{ Ordinal int }

// ColumnRef references table.column or column.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference.
func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// BinaryExpr applies Op to L and R. Ops: = != < <= > >= AND OR LIKE.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies NOT.
type UnaryExpr struct {
	Op string // "NOT"
	E  Expr
}

// InExpr is "E IN (list)" or "E NOT IN (list)".
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// BetweenExpr is "E BETWEEN lo AND hi".
type BetweenExpr struct {
	E      Expr
	Lo, Hi Expr
	Not    bool
}

// IsNullExpr is "E IS [NOT] NULL".
type IsNullExpr struct {
	E   Expr
	Not bool
}

// AggExpr is an aggregate call: COUNT(*), COUNT(col), SUM/AVG/MIN/MAX(col).
type AggExpr struct {
	Fn       string // upper case
	Star     bool
	Arg      Expr
	Distinct bool
}

func (*Literal) expr()     {}
func (*Param) expr()       {}
func (*ColumnRef) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*IsNullExpr) expr()  {}
func (*AggExpr) expr()     {}

// exprString renders an expression for EXPLAIN output and error messages.
func exprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Literal:
		if x.Val.T == TString {
			return "'" + x.Val.S + "'"
		}
		return x.Val.String()
	case *Param:
		return "?"
	case *ColumnRef:
		return x.String()
	case *BinaryExpr:
		return "(" + exprString(x.L) + " " + x.Op + " " + exprString(x.R) + ")"
	case *UnaryExpr:
		return "(NOT " + exprString(x.E) + ")"
	case *InExpr:
		parts := make([]string, len(x.List))
		for i, it := range x.List {
			parts[i] = exprString(it)
		}
		op := " IN ("
		if x.Not {
			op = " NOT IN ("
		}
		return exprString(x.E) + op + strings.Join(parts, ", ") + ")"
	case *BetweenExpr:
		op := " BETWEEN "
		if x.Not {
			op = " NOT BETWEEN "
		}
		return exprString(x.E) + op + exprString(x.Lo) + " AND " + exprString(x.Hi)
	case *IsNullExpr:
		if x.Not {
			return exprString(x.E) + " IS NOT NULL"
		}
		return exprString(x.E) + " IS NULL"
	case *AggExpr:
		if x.Star {
			return x.Fn + "(*)"
		}
		d := ""
		if x.Distinct {
			d = "DISTINCT "
		}
		return x.Fn + "(" + d + exprString(x.Arg) + ")"
	default:
		return "?expr?"
	}
}

// hasAggregate reports whether the expression tree contains an aggregate.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *UnaryExpr:
		return hasAggregate(x.E)
	case *InExpr:
		if hasAggregate(x.E) {
			return true
		}
		for _, it := range x.List {
			if hasAggregate(it) {
				return true
			}
		}
	case *BetweenExpr:
		return hasAggregate(x.E) || hasAggregate(x.Lo) || hasAggregate(x.Hi)
	case *IsNullExpr:
		return hasAggregate(x.E)
	}
	return false
}
