// Package relational implements an embedded mini relational database engine:
// a SQL dialect (lexer, parser), a catalog, row storage with hash and ordered
// secondary indexes, a heuristic planner that exploits indexes, and a
// volcano-style iterator executor.
//
// In the blueprint architecture this engine plays the role of the
// enterprise's relational databases (the JOBS table of §II and Fig. 7): the
// NL2Q agent compiles natural-language queries to this SQL dialect and the
// SQLExecutor agent runs them. The data planner reads its catalog and index
// inventory through the data registry to produce optimized data plans.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates column types.
type Type int

const (
	// TNull is the type of the NULL literal.
	TNull Type = iota
	// TInt is a 64-bit signed integer.
	TInt
	// TFloat is a 64-bit float.
	TFloat
	// TString is a UTF-8 string.
	TString
	// TBool is a boolean.
	TBool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "TEXT"
	case TBool:
		return "BOOL"
	case TNull:
		return "NULL"
	default:
		return fmt.Sprintf("TYPE(%d)", int(t))
	}
}

// Value is a single typed cell. The zero Value is NULL.
type Value struct {
	T Type
	I int64
	F float64
	S string
	B bool
}

// Null is the NULL value.
var Null = Value{T: TNull}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{T: TInt, I: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{T: TFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{T: TString, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{T: TBool, B: b} }

// FromGo converts a Go value (as produced by JSON decoding or user code)
// into a Value. Unsupported types become their string rendering.
func FromGo(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null
	case Value:
		return x
	case int:
		return NewInt(int64(x))
	case int64:
		return NewInt(x)
	case float64:
		return NewFloat(x)
	case float32:
		return NewFloat(float64(x))
	case string:
		return NewString(x)
	case bool:
		return NewBool(x)
	default:
		return NewString(fmt.Sprintf("%v", x))
	}
}

// Go converts the value to its natural Go representation.
func (v Value) Go() any {
	switch v.T {
	case TInt:
		return v.I
	case TFloat:
		return v.F
	case TString:
		return v.S
	case TBool:
		return v.B
	default:
		return nil
	}
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.T == TNull }

// String renders the value for display.
func (v Value) String() string {
	switch v.T {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	case TBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "NULL"
	}
}

// numeric returns the value as float64 and whether it is numeric.
func (v Value) numeric() (float64, bool) {
	switch v.T {
	case TInt:
		return float64(v.I), true
	case TFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// Compare orders two values: -1, 0, +1. NULL sorts before everything;
// numeric types compare numerically across int/float; mixed non-numeric
// types compare by their string rendering (a pragmatic total order so
// ORDER BY never fails).
func Compare(a, b Value) int {
	// Same-type fast paths first: filters compare a typed column against a
	// literal of the same type on every candidate row.
	if a.T == b.T {
		switch a.T {
		case TInt:
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		case TString:
			return strings.Compare(a.S, b.S)
		}
	}
	if a.IsNull() && b.IsNull() {
		return 0
	}
	if a.IsNull() {
		return -1
	}
	if b.IsNull() {
		return 1
	}
	if af, ok := a.numeric(); ok {
		if bf, ok2 := b.numeric(); ok2 {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	if a.T == TString && b.T == TString {
		return strings.Compare(a.S, b.S)
	}
	if a.T == TBool && b.T == TBool {
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Equal reports whether two values compare equal (NULL != NULL, per SQL;
// use Compare for ordering semantics where NULLs group together).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Key returns a string usable as a hash-index key. NULLs share a key but are
// never matched by equality lookups (the index skips them).
func (v Value) Key() string {
	switch v.T {
	case TInt:
		return "i:" + strconv.FormatInt(v.I, 10)
	case TFloat:
		// Integral floats share keys with ints so 3 = 3.0 lookups work.
		if v.F == float64(int64(v.F)) {
			return "i:" + strconv.FormatInt(int64(v.F), 10)
		}
		return "f:" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return "s:" + v.S
	case TBool:
		if v.B {
			return "b:1"
		}
		return "b:0"
	default:
		return "null"
	}
}

// Row is a tuple of values.
type Row []Value

// CloneRow returns a copy of the row.
func CloneRow(r Row) Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
