// Package obs is the blueprint's telemetry plane: structured span tracing
// propagated through context.Context and across stream boundaries (span.go),
// a process-global metrics registry of lock-free counters, gauges and
// fixed-boundary histograms (this file), and Prometheus text exposition
// (expo.go). The paper argues that making orchestration explicit on streams
// "enhances observability" (§V-A); internal/trace reconstructs *what*
// happened from stream history, and this package adds *how long* — where a
// slow ask spent its time and what p95/p99 look like under load, the
// measurement substrate for overload control and scale-out routing.
//
// Design constraints, in order: the hot path (Histogram.Observe, Counter
// Add) must be lock-free and allocation-free; everything must be safe for
// concurrent use; a disabled plane (SetEnabled(false)) must cost one atomic
// load per instrumentation point. See ARCHITECTURE.md for the overhead
// budget and bucket-ladder rationale.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global kill switch: span recording and histogram
// observation check it (one atomic load). Counters and gauges stay live
// regardless — they are plain atomic adds and several subsystems rely on
// them operationally. The A10 experiment toggles this to measure the
// instrumented-vs-uninstrumented overhead.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// On reports whether the telemetry plane is recording spans and histogram
// observations.
func On() bool { return enabled.Load() }

// SetEnabled turns span recording and histogram observation on or off.
func SetEnabled(v bool) { enabled.Store(v) }

// Default is the process-global registry. Package-level instruments across
// the codebase register here; blueprintd serves it at GET /metrics.
var Default = NewRegistry()

// metric is the exposition contract every instrument implements.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string // "counter", "gauge", "histogram"
	// sample appends (suffix, value) exposition samples; histograms append
	// their full bucket/sum/count series.
	sample(emit func(suffix string, v float64))
}

// Registry holds named instruments. Registration is mutex-protected (cold
// path); the instruments themselves are lock-free. Registering a name twice
// returns the existing instrument — func-backed instruments instead replace
// their callback, so a fresh System re-registering its stat bridges wins.
type Registry struct {
	mu    sync.Mutex
	items map[string]metric
	order []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: map[string]metric{}}
}

func (r *Registry) register(name string, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.items[name]; ok {
		return m
	}
	m := make()
	r.items[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named monotonic counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{name: name, help: help} })
	c, ok := m.(*Counter)
	if !ok {
		return &Counter{name: name, help: help} // name collision: orphan
	}
	return c
}

// Gauge returns the named settable gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{name: name, help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		return &Gauge{name: name, help: help}
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending; +Inf is implicit) on first use. Later calls
// return the existing instrument regardless of bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, func() metric { return newHistogram(name, help, bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		return newHistogram(name, help, bounds)
	}
	return h
}

// CounterFunc registers (or re-points) a callback-backed counter — the
// bridge for pre-existing subsystem counters (memo hits, stmt-cache hits,
// durability fsyncs) so /metrics and /stats read one registry instead of
// ad-hoc struct assembly. The callback must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.funcMetric(name, help, "counter", fn)
}

// GaugeFunc registers (or re-points) a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.funcMetric(name, help, "gauge", fn)
}

func (r *Registry) funcMetric(name, help, typ string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.items[name]; ok {
		if f, ok := m.(*funcMetric); ok {
			f.mu.Lock()
			f.fn = fn
			f.mu.Unlock()
		}
		return
	}
	r.items[name] = &funcMetric{name: name, help: help, typ: typ, fn: fn}
	r.order = append(r.order, name)
}

// Names returns the registered instrument names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// ---- Counter ----

// Counter is a monotonically increasing counter (atomic, lock-free).
type Counter struct {
	v    atomic.Uint64
	name string
	help string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) sample(emit func(string, float64)) {
	emit("", float64(c.v.Load()))
}

// ---- Gauge ----

// Gauge is a settable instantaneous value (atomic int64, lock-free). Worker
// occupancy, queue depths and resident sizes use it.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) sample(emit func(string, float64)) {
	emit("", float64(g.v.Load()))
}

// ---- func-backed bridge ----

type funcMetric struct {
	name string
	help string
	typ  string
	mu   sync.Mutex
	fn   func() float64
}

func (f *funcMetric) metricName() string { return f.name }
func (f *funcMetric) metricHelp() string { return f.help }
func (f *funcMetric) metricType() string { return f.typ }
func (f *funcMetric) value() float64 {
	f.mu.Lock()
	fn := f.fn
	f.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}
func (f *funcMetric) sample(emit func(string, float64)) {
	emit("", f.value())
}

// ---- Histogram ----

// Histogram is a fixed-boundary latency/size histogram built for the hot
// path: bucket counts are atomic.Uint64 incremented lock-free, the running
// sum is a CAS loop over float64 bits, and Observe performs zero heap
// allocations (enforced by TestHistogramObserveZeroAllocs and
// BenchmarkHistogramObserve). Quantiles are estimated by linear
// interpolation within the bucket that crosses the requested rank.
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // ascending upper bounds (le); +Inf bucket implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		name: name, help: help, bounds: b,
		buckets: make([]atomic.Uint64, len(b)+1),
	}
}

// ExpBuckets builds n upper bounds starting at start, each factor× the
// previous — the power-of-two-ish ladder (factor 2) trades bucket count for
// a bounded ~±50% quantile error anywhere in the range, which is plenty for
// SLO work (p99 "about 8ms" vs "about 16ms" is the actionable distinction).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default ladder for latency-in-seconds histograms:
// 1µs doubling up to ~134s (28 buckets), covering everything from a cached
// statement execution to a stuck multi-agent plan.
var LatencyBuckets = ExpBuckets(1e-6, 2, 28)

// Observe records v. Lock-free, zero allocations; a no-op while the plane
// is disabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. A zero start (the
// caller skipped the clock read while disabled) is ignored.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// snapshotBuckets copies the bucket counts once; all quantiles of one call
// derive from this single snapshot, which is what guarantees monotonicity
// even while writers are racing.
func (h *Histogram) snapshotBuckets() ([]uint64, uint64) {
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return counts, total
}

// Quantiles estimates the requested quantiles (each in [0,1]) from one
// consistent bucket snapshot: for a sorted input, the output is
// non-decreasing even under concurrent Observe calls. With no observations
// it returns zeros. Values in the +Inf bucket clamp to the top finite bound.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	counts, total := h.snapshotBuckets()
	out := make([]float64, len(qs))
	if total == 0 {
		return out
	}
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		rank := q * float64(total)
		var cum float64
		for bi, c := range counts {
			prev := cum
			cum += float64(c)
			if cum < rank || c == 0 {
				continue
			}
			if bi >= len(h.bounds) { // +Inf bucket
				out[i] = h.bounds[len(h.bounds)-1]
				break
			}
			lower := 0.0
			if bi > 0 {
				lower = h.bounds[bi-1]
			}
			upper := h.bounds[bi]
			out[i] = lower + (upper-lower)*((rank-prev)/float64(c))
			break
		}
	}
	return out
}

// Quantile estimates a single quantile; see Quantiles.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Quantiles(q)[0]
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) sample(emit func(string, float64)) {
	counts, total := h.snapshotBuckets()
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		emit(bucketSuffix(b), float64(cum))
	}
	cum += counts[len(counts)-1]
	emit(`_bucket{le="+Inf"}`, float64(cum))
	emit("_sum", h.Sum())
	emit("_count", float64(total))
}
