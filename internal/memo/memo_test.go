package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustKey(t *testing.T, agent string, version int, inputs map[string]any) Key {
	t.Helper()
	k, err := ComputeKey(agent, version, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestComputeKeyCanonicalization(t *testing.T) {
	a := mustKey(t, "A", 1, map[string]any{"x": 1, "y": map[string]any{"b": 2, "a": 3}})
	b := mustKey(t, "A", 1, map[string]any{"y": map[string]any{"a": 3, "b": 2}, "x": 1})
	if a != b {
		t.Fatalf("binding order changed the key: %s vs %s", a, b)
	}
	if c := mustKey(t, "A", 2, map[string]any{"x": 1, "y": map[string]any{"b": 2, "a": 3}}); c == a {
		t.Fatal("version bump did not change the key")
	}
	if c := mustKey(t, "B", 1, map[string]any{"x": 1, "y": map[string]any{"b": 2, "a": 3}}); c == a {
		t.Fatal("agent name did not change the key")
	}
	if c := mustKey(t, "A", 1, map[string]any{"x": 2, "y": map[string]any{"b": 2, "a": 3}}); c == a {
		t.Fatal("input value did not change the key")
	}
	if _, err := ComputeKey("A", 1, map[string]any{"ch": make(chan int)}); err == nil {
		t.Fatal("unmarshalable input should be uncacheable")
	}
}

func TestGetPutAndStats(t *testing.T) {
	s := New(8)
	k := mustKey(t, "A", 1, map[string]any{"q": "x"})
	if _, ok := s.Get(k); ok {
		t.Fatal("unexpected hit on empty store")
	}
	s.Put(k, "A", []string{"src"}, 0, Entry{Outputs: map[string]any{"OUT": "v"}, Cost: 0.25, Latency: 10 * time.Millisecond})
	e, ok := s.Get(k)
	if !ok || e.Outputs["OUT"] != "v" {
		t.Fatalf("get = %v %v", e, ok)
	}
	// Mutating the returned map must not corrupt the cache.
	e.Outputs["OUT"] = "mutated"
	if e2, _ := s.Get(k); e2.Outputs["OUT"] != "v" {
		t.Fatal("cache entry was mutated through a Get copy")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v", got)
	}
	if st.SavedCost != 0.5 || st.SavedLatency != 20*time.Millisecond {
		t.Fatalf("saved = %v %v", st.SavedCost, st.SavedLatency)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(2)
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = mustKey(t, "A", 1, map[string]any{"i": i})
		s.Put(keys[i], "A", nil, 0, Entry{Outputs: map[string]any{"i": i}})
	}
	if _, ok := s.Peek(keys[0]); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if _, ok := s.Peek(keys[1]); !ok {
		t.Fatal("recent entry evicted")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Touching keys[1] makes keys[2] the eviction victim.
	if _, ok := s.Get(keys[1]); !ok {
		t.Fatal("expected hit")
	}
	k3 := mustKey(t, "A", 1, map[string]any{"i": 3})
	s.Put(k3, "A", nil, 0, Entry{})
	if _, ok := s.Peek(keys[2]); ok {
		t.Fatal("LRU order ignored recency")
	}
	if _, ok := s.Peek(keys[1]); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestTTLExpiry(t *testing.T) {
	s := New(8)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	k := mustKey(t, "A", 1, map[string]any{"q": 1})
	s.Put(k, "A", nil, time.Minute, Entry{Outputs: map[string]any{"OUT": 1}})
	if _, ok := s.Get(k); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := s.Get(k); ok {
		t.Fatal("expired entry served")
	}
	if _, ok := s.Peek(k); ok {
		t.Fatal("expired entry visible to Peek")
	}
}

func TestGetStaleServesExpiredEntries(t *testing.T) {
	s := New(8)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	k := mustKey(t, "A", 1, map[string]any{"q": 1})
	s.Put(k, "A", []string{"hr"}, time.Minute, Entry{Outputs: map[string]any{"OUT": 1}})

	// Fresh: GetStale reports near-zero age.
	e, age, ok := s.GetStale(k)
	if !ok || age != 0 || e.Outputs["OUT"] != 1 {
		t.Fatalf("fresh GetStale = (%v, %s, %v)", e, age, ok)
	}

	// Past TTL: invisible to Get/Peek, but GetStale still serves it with the
	// true age so the degradation policy can judge it.
	now = now.Add(5 * time.Minute)
	if _, ok := s.Get(k); ok {
		t.Fatal("expired entry served by Get")
	}
	e, age, ok = s.GetStale(k)
	if !ok || e.Outputs["OUT"] != 1 {
		t.Fatal("expired entry not servable via GetStale")
	}
	if age != 5*time.Minute {
		t.Fatalf("GetStale age = %s, want 5m", age)
	}
	if st := s.Stats(); st.StaleServes != 2 {
		t.Fatalf("StaleServes = %d, want 2", st.StaleServes)
	}

	// Version invalidation removes the entry entirely — stale-in-time only,
	// never stale-in-version.
	s.InvalidateSource("hr")
	if _, _, ok := s.GetStale(k); ok {
		t.Fatal("invalidated entry servable via GetStale")
	}
}

func TestExpiredEntryReplacedInPlace(t *testing.T) {
	s := New(8)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	k := mustKey(t, "A", 1, map[string]any{"q": 1})
	s.Put(k, "A", nil, time.Minute, Entry{Outputs: map[string]any{"OUT": "old"}})
	now = now.Add(2 * time.Minute)
	// Re-execution via Do must replace the retained expired entry.
	_, out, err := s.Do(context.Background(), k, "A", nil, time.Minute, func() (Entry, error) {
		return Entry{Outputs: map[string]any{"OUT": "new"}}, nil
	})
	if err != nil || out != Miss {
		t.Fatalf("Do = (%v, %v)", out, err)
	}
	if e, _, ok := s.GetStale(k); !ok || e.Outputs["OUT"] != "new" {
		t.Fatalf("retained expired entry not replaced: %v %v", e, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestInvalidateAgentAndSource(t *testing.T) {
	s := New(16)
	ka := mustKey(t, "A", 1, map[string]any{"q": 1})
	kb := mustKey(t, "B", 1, map[string]any{"q": 1})
	kc := mustKey(t, "C", 1, map[string]any{"q": 1})
	s.Put(ka, "A", []string{"hr"}, 0, Entry{})
	s.Put(kb, "B", []string{"hr", "docs"}, 0, Entry{})
	s.Put(kc, "C", nil, 0, Entry{})
	if n := s.InvalidateAgent("A"); n != 1 {
		t.Fatalf("InvalidateAgent = %d", n)
	}
	if _, ok := s.Peek(ka); ok {
		t.Fatal("agent-invalidated entry survived")
	}
	if n := s.InvalidateSource("hr"); n != 1 {
		t.Fatalf("InvalidateSource = %d", n)
	}
	if _, ok := s.Peek(kb); ok {
		t.Fatal("source-invalidated entry survived")
	}
	if _, ok := s.Peek(kc); !ok {
		t.Fatal("unrelated entry dropped")
	}
	if st := s.Stats(); st.Invalidations != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if n := s.InvalidateSource("unknown"); n != 0 {
		t.Fatalf("unknown source dropped %d entries", n)
	}
}

func TestDoHitMissAndError(t *testing.T) {
	s := New(8)
	k := mustKey(t, "A", 1, map[string]any{"q": 1})
	execs := 0
	run := func() (Entry, Outcome, error) {
		return s.Do(context.Background(), k, "A", nil, 0, func() (Entry, error) {
			execs++
			return Entry{Outputs: map[string]any{"OUT": "v"}}, nil
		})
	}
	if _, oc, err := run(); err != nil || oc != Miss {
		t.Fatalf("first Do = %v %v", oc, err)
	}
	if e, oc, err := run(); err != nil || oc != Hit || e.Outputs["OUT"] != "v" {
		t.Fatalf("second Do = %v %v %v", e, oc, err)
	}
	if execs != 1 {
		t.Fatalf("execs = %d", execs)
	}

	// Errors are not cached.
	ke := mustKey(t, "A", 1, map[string]any{"q": "err"})
	boom := errors.New("boom")
	if _, oc, err := s.Do(context.Background(), ke, "A", nil, 0, func() (Entry, error) { return Entry{}, boom }); !errors.Is(err, boom) || oc != Miss {
		t.Fatalf("error Do = %v %v", oc, err)
	}
	if _, ok := s.Peek(ke); ok {
		t.Fatal("failed execution was cached")
	}
}

// TestSingleFlightCoalesces is the satellite race test: N identical
// in-flight steps must execute exactly once, with the rest coalescing onto
// the winner (run under -race).
func TestSingleFlightCoalesces(t *testing.T) {
	s := New(8)
	k := mustKey(t, "A", 1, map[string]any{"q": 1})
	const n = 16
	var execs atomic.Int32
	started := make(chan struct{}) // leader is executing
	release := make(chan struct{}) // let the leader finish
	results := make(chan Entry, n)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		e, _, err := s.Do(context.Background(), k, "A", nil, 0, func() (Entry, error) {
			execs.Add(1)
			close(started)
			<-release
			return Entry{Outputs: map[string]any{"OUT": "winner"}}, nil
		})
		if err != nil {
			t.Error(err)
		}
		results <- e
	}()
	<-started
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, _, err := s.Do(context.Background(), k, "A", nil, 0, func() (Entry, error) {
				execs.Add(1)
				return Entry{Outputs: map[string]any{"OUT": "loser"}}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results <- e
		}()
	}
	// Give the followers a moment to park on the flight, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	close(results)

	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	for e := range results {
		if e.Outputs["OUT"] != "winner" {
			t.Fatalf("a caller saw %v", e.Outputs)
		}
	}
	st := s.Stats()
	if st.Coalesced != n-1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInvalidationDuringFlightNeverServesStale is the satellite race test
// for staleness: an invalidation landing while an execution is in flight
// poisons the flight — the result is not cached, and coalesced waiters
// re-execute against the new version instead of consuming the stale value.
func TestInvalidationDuringFlightNeverServesStale(t *testing.T) {
	s := New(8)
	k := mustKey(t, "A", 1, map[string]any{"q": 1})

	var version atomic.Int32
	version.Store(1)
	read := func() (Entry, error) {
		return Entry{Outputs: map[string]any{"V": version.Load()}}, nil
	}

	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan Entry, 1)
	go func() {
		e, _, _ := s.Do(context.Background(), k, "A", []string{"src"}, 0, func() (Entry, error) {
			close(started)
			e, err := read() // reads version 1
			<-release
			return e, err
		})
		leaderDone <- e
	}()
	<-started

	const followers = 8
	results := make(chan Entry, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, _, err := s.Do(context.Background(), k, "A", []string{"src"}, 0, read)
			if err != nil {
				t.Error(err)
			}
			results <- e
		}()
	}
	time.Sleep(20 * time.Millisecond)

	// The underlying data changes and the source is invalidated while the
	// leader is still executing.
	version.Store(2)
	s.InvalidateSource("src")
	close(release)

	if e := <-leaderDone; e.Outputs["V"] != int32(1) {
		t.Fatalf("leader saw %v, expected its own (pre-invalidation) execution", e.Outputs)
	}
	wg.Wait()
	close(results)
	for e := range results {
		if e.Outputs["V"] != int32(2) {
			t.Fatalf("a waiter was served the stale pre-invalidation value: %v", e.Outputs)
		}
	}
	// The stale result must not be resident; whatever is cached is fresh.
	if e, ok := s.Peek(k); ok && e.Outputs["V"] != int32(2) {
		t.Fatalf("stale value cached: %v", e.Outputs)
	}
}

// TestConcurrentMixedOperations hammers every mutating path under -race.
func TestConcurrentMixedOperations(t *testing.T) {
	s := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				agent := fmt.Sprintf("A%d", i%4)
				k, _ := ComputeKey(agent, 1, map[string]any{"i": i % 16})
				switch i % 5 {
				case 0:
					s.Put(k, agent, []string{"src"}, 0, Entry{Outputs: map[string]any{"i": i}})
				case 1:
					s.Get(k)
				case 2:
					_, _, _ = s.Do(context.Background(), k, agent, []string{"src"}, 0, func() (Entry, error) {
						return Entry{Outputs: map[string]any{"i": i}}, nil
					})
				case 3:
					s.InvalidateAgent(agent)
				default:
					s.InvalidateSource("src")
				}
			}
		}(g)
	}
	wg.Wait()
	_ = s.Stats()
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	ran := false
	if _, oc, err := s.Do(context.Background(), "k", "A", nil, 0, func() (Entry, error) {
		ran = true
		return Entry{}, nil
	}); err != nil || oc != Miss || !ran {
		t.Fatalf("nil Do = %v %v ran=%v", oc, err, ran)
	}
	if n := s.InvalidateAgent("A"); n != 0 {
		t.Fatal("nil invalidate")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

func TestInvalidationIsCaseInsensitive(t *testing.T) {
	s := New(8)
	k := mustKey(t, "FETCH", 1, map[string]any{"q": 1})
	// Reads declared with non-canonical casing must still be reachable by
	// the registries' canonical (lower-cased) notifications, and vice
	// versa — both registries are case-insensitive.
	s.Put(k, "FETCH", []string{"HR.Jobs"}, 0, Entry{})
	if n := s.InvalidateSource("hr.jobs"); n != 1 {
		t.Fatalf("case-mismatched source invalidation dropped %d entries", n)
	}
	s.Put(k, "Fetch", []string{"hr"}, 0, Entry{})
	if n := s.InvalidateAgent("FETCH"); n != 1 {
		t.Fatalf("case-mismatched agent invalidation dropped %d entries", n)
	}
}
