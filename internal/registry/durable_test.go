package registry

import (
	"bytes"
	"testing"
)

func TestDurableSnapshotRestorePreservesVersions(t *testing.T) {
	agents := NewAgentRegistry()
	data := NewDataRegistry()
	spec := AgentSpec{Name: "NL2Q", Description: "compile NL to SQL", Cacheable: true, Reads: []string{"hr"}}
	if err := agents.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Two real updates bump NL2Q to version 3.
	for _, desc := range []string{"v2 desc", "v3 desc"} {
		spec.Description = desc
		if err := agents.Update(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := data.Register(DataAsset{Name: "hr", Kind: KindRelational, Level: LevelDatabase, Description: "hr db"}); err != nil {
		t.Fatal(err)
	}
	if err := data.Register(DataAsset{Name: "hr.jobs", Kind: KindRelational, Level: LevelTable, Parent: "hr", Description: "jobs"}); err != nil {
		t.Fatal(err)
	}
	if err := data.Touch("hr.jobs"); err != nil { // hr.jobs v2, hr v2 (hierarchy)
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := (Durable{Agents: agents, Data: data}.Snapshot(&buf)); err != nil {
		t.Fatal(err)
	}

	// A fresh boot re-registers the base set at version 1, then restores.
	agents2 := NewAgentRegistry()
	data2 := NewDataRegistry()
	if err := agents2.Register(AgentSpec{Name: "NL2Q", Description: "compile NL to SQL"}); err != nil {
		t.Fatal(err)
	}
	notified := 0
	agents2.OnChange(func(string) { notified++ })
	if err := (Durable{Agents: agents2, Data: data2}.Restore(&buf)); err != nil {
		t.Fatal(err)
	}
	got, err := agents2.Get("nl2q")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 || got.Description != "v3 desc" {
		t.Fatalf("restored spec = v%d %q, want v3 \"v3 desc\"", got.Version, got.Description)
	}
	if notified != 0 {
		t.Fatalf("restore fired %d change notifications, want 0", notified)
	}
	jobs, err := data2.Get("hr.jobs")
	if err != nil {
		t.Fatal(err)
	}
	if jobs.Version != 2 {
		t.Fatalf("restored hr.jobs version = %d, want 2", jobs.Version)
	}
	if hits := data2.Discover("jobs table", 3); len(hits) == 0 {
		t.Fatal("restored assets are not searchable")
	}
}

func TestDurableApplyRejectsEmptyRecords(t *testing.T) {
	d := Durable{Agents: NewAgentRegistry(), Data: NewDataRegistry()}
	if err := d.Apply([]byte("{}")); err == nil {
		t.Fatal("Apply must reject a record carrying no mutation")
	}
	if err := d.Apply([]byte("not json")); err == nil {
		t.Fatal("Apply must reject undecodable records")
	}
}

// TestDurableMutationLogRoundTrip drives the full WAL path in-memory:
// AttachLog captures mutation records, Apply replays them into fresh
// registries, and the result matches the mutated originals — versions
// included, with no change notifications during replay.
func TestDurableMutationLogRoundTrip(t *testing.T) {
	agents := NewAgentRegistry()
	data := NewDataRegistry()
	var wal [][]byte
	Durable{Agents: agents, Data: data}.AttachLog(func(p []byte) error {
		wal = append(wal, append([]byte(nil), p...))
		return nil
	})

	spec := AgentSpec{Name: "NL2Q", Description: "compile NL to SQL", Cacheable: true}
	if err := agents.Register(spec); err != nil {
		t.Fatal(err)
	}
	spec.Description = "v2 desc"
	if err := agents.Update(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := agents.Derive("NL2Q", "NL2Q_FAST", "derived", nil); err != nil {
		t.Fatal(err)
	}
	if err := agents.Register(AgentSpec{Name: "DOOMED", Description: "to be removed"}); err != nil {
		t.Fatal(err)
	}
	if err := agents.Deregister("DOOMED"); err != nil {
		t.Fatal(err)
	}
	if err := data.Register(DataAsset{Name: "hr.jobs", Kind: KindRelational, Level: LevelTable, Description: "jobs"}); err != nil {
		t.Fatal(err)
	}
	if err := data.Touch("hr.jobs"); err != nil { // version bumps are NOT logged
		t.Fatal(err)
	}
	// register + update + derive + register + deregister + asset register = 6.
	if len(wal) != 6 {
		t.Fatalf("wal records = %d, want 6 (Touch must not log)", len(wal))
	}

	agents2 := NewAgentRegistry()
	data2 := NewDataRegistry()
	notified := 0
	agents2.OnChange(func(string) { notified++ })
	replay := Durable{Agents: agents2, Data: data2}
	for _, rec := range wal {
		if err := replay.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	if notified != 0 {
		t.Fatalf("replay fired %d change notifications, want 0", notified)
	}
	got, err := agents2.Get("NL2Q")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || got.Description != "v2 desc" {
		t.Fatalf("replayed NL2Q = v%d %q, want v2 \"v2 desc\"", got.Version, got.Description)
	}
	if _, err := agents2.Get("NL2Q_FAST"); err != nil {
		t.Fatal("derived agent missing after replay")
	}
	if _, err := agents2.Get("DOOMED"); err == nil {
		t.Fatal("deregistered agent survived replay")
	}
	if _, err := data2.Get("hr.jobs"); err != nil {
		t.Fatal("asset missing after replay")
	}
	// Replaying the removal again must stay a no-op (records can straddle
	// snapshot boundaries).
	if err := replay.Apply(wal[4]); err != nil {
		t.Fatalf("re-applied removal errored: %v", err)
	}
}
