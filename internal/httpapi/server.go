// Package httpapi is blueprintd's HTTP surface as an embeddable handler:
// sessions and the conversational surface, both registries, metrics,
// traces, the event log, the slow-ask flight recorder and SLO burn rates.
// cmd/blueprintd wires it to flags and a listener; tests and the real-HTTP
// workload driver mount it on httptest servers.
package httpapi

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"blueprint"
	"blueprint/internal/obs"
	"blueprint/internal/resilience"
)

// Options tunes the handler surface.
type Options struct {
	// Pprof additionally serves net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints are a debugging surface, not a
	// production one).
	Pprof bool
}

// Server serves a blueprint System over HTTP.
//
// Endpoints:
//
//	POST /sessions                         -> {"id": "session:1"}
//	POST /sessions/{id}/ask    {"text":..} -> {"answer": ...} (X-Trace-Id on every response, 429s included)
//	POST /sessions/{id}/click  {event}     -> {"answer": ...}
//	GET  /sessions/{id}/flow               -> per-message flow trace
//	GET  /agents                           -> agent registry contents
//	GET  /data                             -> data registry contents
//	GET  /stats                            -> flat registry snapshot (all counters + quantiles)
//	GET  /memo                             -> step-result memoization stats
//	GET  /metrics                          -> Prometheus text exposition (0.0.4)
//	GET  /trace/{id}                       -> span tree for a session's recent asks
//	GET  /events                           -> structured event log (?since=SEQ&level=L&limit=N)
//	GET  /slow                             -> slow-ask exemplar summaries
//	GET  /slow/{id}                        -> one exemplar: span tree, events, cost breakdown
//	GET  /slo                              -> per-tenant/per-agent SLO burn rates
//	POST /snapshot                         -> take a durability snapshot now
type Server struct {
	sys *blueprint.System
	mux *http.ServeMux

	mu       sync.RWMutex
	sessions map[string]*blueprint.Session
}

// New builds the handler for sys.
func New(sys *blueprint.System, opts Options) *Server {
	s := &Server{sys: sys, sessions: map[string]*blueprint.Session{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.createSession)
	mux.HandleFunc("POST /sessions/{id}/ask", s.ask)
	mux.HandleFunc("POST /sessions/{id}/click", s.click)
	mux.HandleFunc("GET /sessions/{id}/flow", s.flow)
	mux.HandleFunc("GET /agents", s.agents)
	mux.HandleFunc("GET /data", s.data)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /memo", s.memo)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /trace/{id}", s.trace)
	mux.HandleFunc("GET /events", s.events)
	mux.HandleFunc("GET /slow", s.slowList)
	mux.HandleFunc("GET /slow/{id}", s.slowGet)
	mux.HandleFunc("GET /slo", s.slo)
	mux.HandleFunc("POST /snapshot", s.snapshot)
	if opts.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SessionCount reports the live session handles (the /stats "sessions"
// field; blueprintd logs it at shutdown).
func (s *Server) SessionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sys.StartSession("")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.mu.Lock()
	s.sessions[sess.ID] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": sess.ID})
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) *blueprint.Session {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "session:") {
		id = "session:" + id
	}
	s.mu.RLock()
	sess, ok := s.sessions[id]
	s.mu.RUnlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session " + id})
		return nil
	}
	return sess
}

func (s *Server) ask(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var body struct {
		Text    string `json:"text"`
		Timeout int    `json:"timeout_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Text == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be {\"text\": ...}"})
		return
	}
	timeout := 15 * time.Second
	if body.Timeout > 0 {
		timeout = time.Duration(body.Timeout) * time.Millisecond
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	// Mint the trace id here so the response header is set on every path —
	// sheds included, which is exactly when an operator wants to grep the
	// event log for the rejected ask.
	tid := obs.NewTraceID(sess.ID)
	w.Header().Set("X-Trace-Id", tid)
	ctx := obs.WithTraceID(r.Context(), tid)
	ans, err := sess.GovernedAsk(ctx, tenant, body.Text, timeout)
	if err != nil {
		var ov *resilience.OverloadError
		if errors.As(err, &ov) {
			// Shed: 429 with the governor's advisory backoff. Retry-After
			// is whole seconds (RFC 9110), rounded up so "1s" never
			// becomes "0".
			secs := int(math.Ceil(ov.RetryAfter.Seconds()))
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error": err.Error(), "retry_after_ms": ov.RetryAfter.Milliseconds(),
				"trace": tid,
			})
			return
		}
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error(), "trace": tid})
		return
	}
	out := map[string]any{"answer": ans.Text, "trace": ans.TraceID}
	if ans.Degraded {
		out["degraded"] = true
		out["stale_for_ms"] = ans.StaleFor.Milliseconds()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) click(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var event map[string]any
	if err := json.NewDecoder(r.Body).Decode(&event); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be a UI event object"})
		return
	}
	answer, err := sess.Click(event, 15*time.Second)
	if err != nil {
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"answer": answer})
}

func (s *Server) flow(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	steps := sess.Flow()
	out := make([]map[string]any, len(steps))
	for i, st := range steps {
		out[i] = map[string]any{
			"ts": st.TS, "sender": st.Sender, "stream": st.Stream,
			"kind": st.Kind.String(), "op": st.Op, "tags": st.Tags, "payload": st.Payload,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) agents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.AgentRegistry.List())
}

func (s *Server) data(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.DataRegistry.List("", ""))
}

// stats serves a thin view over the metrics registry: every registered
// instrument flattened to name->value (histograms as _count/_sum/_p50/_p95/
// _p99), plus the few non-numeric or derived fields a registry cannot carry
// (version string, hit-rate ratios, recovery summary).
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	ms := s.sys.MemoStats()
	cs := s.sys.Enterprise.DB.CacheStats()
	ds := s.sys.DurabilityStats()
	breakers := map[string]string{}
	for name, st := range s.sys.BreakerStates() {
		breakers[name] = st.String()
	}
	out := map[string]any{
		"version": blueprint.Version, "sessions": s.SessionCount(),
		"memo_hit_rate":                 ms.HitRate(),
		"stmt_cache_hit_rate":           cs.HitRate(),
		"governor_enabled":              s.sys.Governor != nil,
		"breakers":                      breakers,
		"durability_enabled":            s.sys.Durability != nil,
		"durability_segments":           ds.Segments,
		"durability_last_recovery":      ds.Recovery.Duration.String(),
		"durability_snapshot_restored":  ds.Recovery.SnapshotRestored,
		"durability_replayed_records":   ds.Recovery.ReplayedRecords,
		"durability_torn_tail_repaired": ds.Recovery.TornTailTruncated,
	}
	for name, v := range obs.Default.Snapshot() {
		out[name] = v
	}
	writeJSON(w, http.StatusOK, out)
}

// metrics serves the registry in Prometheus text exposition format.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}

// trace serves a session's recorded span tree: the raw spans plus a
// rendered tree (what bpctl trace prints).
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "session:") {
		id = "session:" + id
	}
	spans := obs.Spans.Session(id)
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no trace recorded for " + id})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session": id,
		"spans":   spans,
		"tree":    obs.RenderTree(spans),
	})
}

// events serves the structured event log, oldest first. ?since=SEQ returns
// only events newer than the cursor (poll with the returned "head"),
// ?level=warn filters below-level events out, ?limit=N keeps the newest N.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	var after uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "since must be a sequence number"})
			return
		}
		after = n
	}
	min := obs.LevelDebug
	if v := r.URL.Query().Get("level"); v != "" {
		lv, err := obs.ParseLevel(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		min = lv
	}
	evs := obs.Events.Since(after)
	if min > obs.LevelDebug {
		kept := evs[:0]
		for _, e := range evs {
			if e.Level >= min {
				kept = append(kept, e)
			}
		}
		evs = kept
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "limit must be a non-negative integer"})
			return
		}
		if n < len(evs) {
			evs = evs[len(evs)-n:]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"head":   obs.Events.Seq(),
		"level":  obs.Events.Level().String(),
		"events": evs,
	})
}

// slowList serves the flight recorder's exemplar summaries, newest first.
func (s *Server) slowList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ms": float64(obs.SlowAsks.Threshold()) / float64(time.Millisecond),
		"captures":     obs.SlowAsks.Captures(),
		"exemplars":    obs.SlowAsks.Summaries(),
	})
}

// slowGet serves one exemplar with its full evidence ("latest" or an ID).
func (s *Server) slowGet(w http.ResponseWriter, r *http.Request) {
	var (
		ex *obs.Exemplar
		ok bool
	)
	if id := r.PathValue("id"); id == "latest" {
		ex, ok = obs.SlowAsks.Latest()
	} else {
		n, err := strconv.ParseUint(id, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "id must be a capture number or \"latest\""})
			return
		}
		ex, ok = obs.SlowAsks.Get(n)
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such exemplar (evicted or never captured)"})
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

// slo serves the per-tenant/per-agent burn-rate view.
func (s *Server) slo(w http.ResponseWriter, r *http.Request) {
	cfg := s.sys.SLO.Config()
	writeJSON(w, http.StatusOK, map[string]any{
		"objective":         cfg.Objective,
		"latency_target_ms": float64(cfg.LatencyTarget) / float64(time.Millisecond),
		"fast_window_ms":    float64(cfg.FastWindow) / float64(time.Millisecond),
		"slow_window_ms":    float64(cfg.SlowWindow) / float64(time.Millisecond),
		"series":            s.sys.SLO.Status(),
	})
}

// snapshot triggers a durability snapshot on demand (POST /snapshot).
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	if err := s.sys.Snapshot(); err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	st := s.sys.DurabilityStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshots":      st.Snapshots,
		"snapshot_bytes": st.SnapshotBytes,
		"log_bytes":      st.LogBytes,
		"segments":       st.Segments,
	})
}

func (s *Server) memo(w http.ResponseWriter, r *http.Request) {
	ms := s.sys.MemoStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":       s.sys.Memo != nil,
		"hits":          ms.Hits,
		"misses":        ms.Misses,
		"hit_rate":      ms.HitRate(),
		"coalesced":     ms.Coalesced,
		"evictions":     ms.Evictions,
		"invalidations": ms.Invalidations,
		"entries":       ms.Entries,
		"saved_cost":    ms.SavedCost,
		"saved_latency": ms.SavedLatency.String(),
	})
}
