// Career Assistant (Scenario I, §II-A): the paper's running example
// "I am looking for a data scientist position in SF bay area." executed
// through the declarative task-planning path — the task planner produces
// the Fig. 6 DAG (Profiler -> JobMatcher -> Presenter), the optimizer
// projects its cost, and the coordinator executes it under a QoS budget,
// with the data planner expanding the region via the LLM source and the
// title via the taxonomy graph (Fig. 7).
package main

import (
	"fmt"
	"log"
	"time"

	"blueprint"
)

func main() {
	sys, err := blueprint.New(blueprint.Config{ModelAccuracy: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sess, err := sys.StartSession("")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	utterance := "I am looking for a data scientist position in SF bay area."
	fmt.Printf("user> %s\n\n", utterance)

	res, plan, err := sess.ExecuteUtterance(utterance)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("task plan (Fig. 6):")
	fmt.Println(plan)

	fmt.Println("matched jobs:")
	fmt.Println(res.Final["RENDERED"])

	fmt.Printf("budget: $%.5f spent across %d charges (limit $%.2f)\n",
		res.Budget.CostSpent, res.Budget.Charges, res.Budget.CostLimit)

	// Career advice (a second Scenario-I inquiry) through the streams path.
	advice, err := sess.Ask("I want advice: what skills do I need to become a data scientist?", 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuser> what skills do I need?\nsystem> %s\n", advice)
}
