package durability

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// logSub is a test Loggable: an append-only sequence of integer records.
// Apply is idempotent (a replayed value <= the high-water mark is skipped),
// matching the contract of subsystems that log outside Engine.Log.
type logSub struct {
	mu   sync.Mutex
	vals []uint64
}

func (s *logSub) record(v uint64) []byte {
	return binary.AppendUvarint(nil, v)
}

func (s *logSub) Apply(rec []byte) error {
	v, n := binary.Uvarint(rec)
	if n <= 0 {
		return fmt.Errorf("bad record")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) > 0 && v <= s.vals[len(s.vals)-1] {
		return nil // already present (snapshot covered it)
	}
	s.vals = append(s.vals, v)
	return nil
}

func (s *logSub) Snapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := binary.AppendUvarint(nil, uint64(len(s.vals)))
	for _, v := range s.vals {
		b = binary.AppendUvarint(b, v)
	}
	_, err := w.Write(b)
	return err
}

func (s *logSub) Restore(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := NewDec(b)
	n := d.Uvarint()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals = s.vals[:0]
	for i := uint64(0); i < n; i++ {
		s.vals = append(s.vals, d.Uvarint())
	}
	return d.Err()
}

func (s *logSub) snapshotVals() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.vals...)
}

func openEngine(t testing.TB, dir string, sub *logSub) *Engine {
	t.Helper()
	e, err := Open(dir, Options{DisableFsync: true, FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(1, "test", sub); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := &logSub{}
	e := openEngine(t, dir, s)
	for i := uint64(1); i <= 100; i++ {
		s.Apply(s.record(i))
		if err := e.Append(1, s.record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := &logSub{}
	e2 := openEngine(t, dir, s2)
	defer e2.Close()
	got := s2.snapshotVals()
	if len(got) != 100 || got[0] != 1 || got[99] != 100 {
		t.Fatalf("recovered %d records (first/last %v/%v), want 1..100",
			len(got), got[:1], got[len(got)-1:])
	}
	if st := e2.Stats(); st.Recovery.ReplayedRecords != 100 {
		t.Fatalf("replayed %d records, want 100", st.Recovery.ReplayedRecords)
	}
}

func TestSnapshotTruncatesAndRestores(t *testing.T) {
	dir := t.TempDir()
	s := &logSub{}
	e := openEngine(t, dir, s)
	for i := uint64(1); i <= 50; i++ {
		s.Apply(s.record(i))
		if err := e.Append(1, s.record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(51); i <= 80; i++ {
		s.Apply(s.record(i))
		if err := e.Append(1, s.record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := &logSub{}
	e2 := openEngine(t, dir, s2)
	defer e2.Close()
	st := e2.Stats()
	if !st.Recovery.SnapshotRestored {
		t.Fatal("snapshot was not restored")
	}
	if st.Recovery.ReplayedRecords != 30 {
		t.Fatalf("replayed %d records past the snapshot, want 30", st.Recovery.ReplayedRecords)
	}
	got := s2.snapshotVals()
	if len(got) != 80 || got[79] != 80 {
		t.Fatalf("recovered %d records, want 80", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := &logSub{}
	e, err := Open(dir, Options{DisableFsync: true, FlushEvery: -1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(1, "test", s); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 200; i++ {
		s.Apply(s.record(i))
		if err := e.Append(1, s.record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Rotations == 0 {
		t.Fatal("expected segment rotations with a 256-byte segment bound")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := &logSub{}
	e2 := openEngine(t, dir, s2)
	defer e2.Close()
	if got := s2.snapshotVals(); len(got) != 200 {
		t.Fatalf("recovered %d records across segments, want 200", len(got))
	}
}

// TestTornTailPrefixProperty is the crash-safety property test: a log cut
// at an arbitrary byte offset must recover to an exact prefix of the
// committed history, and recovery must never fail.
func TestTornTailPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const records = 120
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		s := &logSub{}
		e := openEngine(t, dir, s)
		for i := uint64(1); i <= records; i++ {
			s.Apply(s.record(i))
			if err := e.Append(1, s.record(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}

		// Kill the write at a random byte offset of the segment.
		path := filepath.Join(dir, segName(1))
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Int63n(fi.Size() + 1)
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}

		s2 := &logSub{}
		e2 := openEngine(t, dir, s2)
		got := s2.snapshotVals()
		for i, v := range got {
			if v != uint64(i+1) {
				t.Fatalf("trial %d (cut %d): recovered sequence has a gap at %d: %v", trial, cut, i, v)
			}
		}
		if len(got) > records {
			t.Fatalf("trial %d: recovered more records than committed", trial)
		}

		// The truncated log must accept and recover new appends.
		next := uint64(len(got) + 1)
		s2.Apply(s2.record(next))
		if err := e2.Append(1, s2.record(next)); err != nil {
			t.Fatal(err)
		}
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
		s3 := &logSub{}
		e3 := openEngine(t, dir, s3)
		if got3 := s3.snapshotVals(); len(got3) != len(got)+1 || got3[len(got3)-1] != next {
			t.Fatalf("trial %d: post-truncation append lost (%d records, want %d)", trial, len(got3), len(got)+1)
		}
		e3.Close()
	}
}

// TestConcurrentAppendsDuringSnapshot races appenders against background
// snapshots; every record appended before Close must survive recovery.
func TestConcurrentAppendsDuringSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := &logSub{}
	e, err := Open(dir, Options{DisableFsync: true, FlushEvery: time.Millisecond, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(1, "test", s); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}

	const (
		writers    = 4
		perWriter  = 300
		totalCount = writers * perWriter
	)
	// The sub's idempotence check needs monotone values, so a shared
	// counter hands out the sequence; each writer applies+logs its draw
	// under the sub lock to keep state and log consistent.
	var seq struct {
		sync.Mutex
		n uint64
	}
	var wg sync.WaitGroup
	errc := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq.Lock()
				seq.n++
				v := seq.n
				s.Apply(s.record(v))
				err := e.Append(1, s.record(v))
				seq.Unlock()
				if err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	stopSnaps := make(chan struct{})
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() {
		defer snapWg.Done()
		for {
			select {
			case <-stopSnaps:
				return
			default:
				if err := e.Snapshot(); err != nil {
					errc <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stopSnaps)
	snapWg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := &logSub{}
	e2 := openEngine(t, dir, s2)
	defer e2.Close()
	got := s2.snapshotVals()
	if len(got) != totalCount {
		t.Fatalf("recovered %d records, want %d", len(got), totalCount)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("recovered records out of order")
	}
}

func TestGroupCommitAppendSync(t *testing.T) {
	dir := t.TempDir()
	s := &logSub{}
	e, err := Open(dir, Options{FlushEvery: -1}) // real fsyncs: count batching
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(1, "test", s); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 20
	var seq struct {
		sync.Mutex
		n uint64
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq.Lock()
				seq.n++
				v := seq.n
				s.Apply(s.record(v))
				seq.Unlock()
				if err := e.AppendSync(1, s.record(v)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	if st.Appends != writers*per {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*per)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d synchronous appends", st.Fsyncs, st.Appends)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUnregisteredSubsystemRecordsAreSkipped(t *testing.T) {
	dir := t.TempDir()
	s := &logSub{}
	e := openEngine(t, dir, s)
	s.Apply(s.record(1))
	if err := e.Append(1, s.record(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Append(9, []byte("from a subsystem disabled on reopen")); err != nil {
		t.Fatal(err)
	}
	s.Apply(s.record(2))
	if err := e.Append(1, s.record(2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := &logSub{}
	e2 := openEngine(t, dir, s2)
	defer e2.Close()
	if got := s2.snapshotVals(); len(got) != 2 {
		t.Fatalf("recovered %d records, want 2", len(got))
	}
	if st := e2.Stats(); st.Recovery.SkippedRecords != 1 {
		t.Fatalf("skipped %d unknown records, want 1", st.Recovery.SkippedRecords)
	}
}

func TestCorruptSnapshotFallsBackToLog(t *testing.T) {
	dir := t.TempDir()
	s := &logSub{}
	e := openEngine(t, dir, s)
	for i := uint64(1); i <= 10; i++ {
		s.Apply(s.record(i))
		if err := e.Append(1, s.record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot body; the log before it was truncated, so only
	// post-snapshot records are recoverable — but recovery must not fail.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want one snapshot, got %v (%v)", snaps, err)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := &logSub{}
	e2 := openEngine(t, dir, s2)
	defer e2.Close()
	if st := e2.Stats(); st.Recovery.SnapshotRestored {
		t.Fatal("corrupt snapshot must not restore")
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 12345)
	b = AppendVarint(b, -987)
	b = AppendString(b, "hello world")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendFloat(b, 3.25)
	d := NewDec(b)
	if v := d.Uvarint(); v != 12345 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Varint(); v != -987 {
		t.Fatalf("varint = %d", v)
	}
	if v := d.String(); v != "hello world" {
		t.Fatalf("string = %q", v)
	}
	if v := d.Bytes(); len(v) != 3 || v[2] != 3 {
		t.Fatalf("bytes = %v", v)
	}
	if v := d.Float(); v != 3.25 {
		t.Fatalf("float = %v", v)
	}
	if d.Err() != nil || d.Len() != 0 {
		t.Fatalf("err=%v len=%d", d.Err(), d.Len())
	}
	// Truncated input latches the error instead of panicking.
	d2 := NewDec(b[:3])
	_ = d2.Uvarint()
	_ = d2.String()
	if d2.Err() == nil {
		t.Fatal("truncated decode must error")
	}
}
