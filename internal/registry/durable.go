package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Durable adapts the two registries to the durability engine's Loggable
// interface. Snapshots capture the full catalog; between snapshots, every
// identity-changing mutation (Register, Update, Derive, Deregister) is
// logged as a WAL record once AttachLog installs the mutation hooks — so a
// crash no longer loses post-snapshot registry changes. Touch-style data
// version bumps are deliberately NOT logged: they are a deterministic echo
// of relational DML, which replays from its own subsystem log and re-fires
// the OnWrite -> Touch path; logging them here would double the WAL write
// rate for no recovery value.
//
// Ordering contract: AttachLog must run after Engine.Recover. Boot-time
// registrations happen before durability wiring and are deterministic
// (every start re-registers the same base set), so they need no records;
// replayed records must not re-log themselves.
type Durable struct {
	Agents *AgentRegistry
	Data   *DataRegistry
}

// durableImage is the snapshot payload.
type durableImage struct {
	Agents []AgentSpec `json:"agents"`
	Assets []DataAsset `json:"assets"`
}

// mutationRecord is the WAL payload: exactly one of the two mutation kinds.
type mutationRecord struct {
	Agent *AgentMutation `json:"agent,omitempty"`
	Asset *AssetMutation `json:"asset,omitempty"`
}

// AttachLog installs mutation hooks on both registries that append every
// identity-changing mutation to the WAL through append (an Engine.Logger
// Append). Call after recovery; see the ordering contract above.
func (d Durable) AttachLog(append func([]byte) error) {
	d.Agents.SetMutationHook(func(m AgentMutation) {
		if buf, err := json.Marshal(mutationRecord{Agent: &m}); err == nil {
			_ = append(buf)
		}
	})
	d.Data.SetMutationHook(func(m AssetMutation) {
		if buf, err := json.Marshal(mutationRecord{Asset: &m}); err == nil {
			_ = append(buf)
		}
	})
}

// Apply replays one logged mutation: upserts reuse the restore path
// (versions preserved exactly as recorded, no change notifications — the
// memo subsystem revalidates restored entries itself), removals delete
// quietly. A removal of an already-absent agent is a no-op, keeping replay
// tolerant of records that straddle snapshot boundaries.
func (d Durable) Apply(p []byte) error {
	var rec mutationRecord
	if err := json.Unmarshal(p, &rec); err != nil {
		return fmt.Errorf("registry: decode WAL record: %w", err)
	}
	switch {
	case rec.Agent != nil && rec.Agent.Put != nil:
		d.Agents.restoreSpecs([]AgentSpec{*rec.Agent.Put})
	case rec.Agent != nil && rec.Agent.Remove != "":
		if err := d.Agents.deregister(rec.Agent.Remove); err != nil && !errors.Is(err, ErrAgentNotFound) {
			return err
		}
	case rec.Asset != nil && rec.Asset.Put != nil:
		d.Data.restoreAssets([]DataAsset{*rec.Asset.Put})
	default:
		return errors.New("registry: empty WAL record")
	}
	return nil
}

// Snapshot serializes both registries. It implements durability.Loggable.
func (d Durable) Snapshot(w io.Writer) error {
	img := durableImage{Agents: d.Agents.List(), Assets: d.Data.List("", "")}
	return json.NewEncoder(w).Encode(img)
}

// Restore upserts the snapshot's specs and assets, preserving versions and
// registration order for pre-existing names. No change hooks fire: the
// memo layer revalidates against the restored versions itself, and firing
// invalidations here would wrongly drop entries about to be restored.
func (d Durable) Restore(r io.Reader) error {
	var img durableImage
	if err := json.NewDecoder(r).Decode(&img); err != nil {
		return fmt.Errorf("registry: decode snapshot: %w", err)
	}
	d.Agents.restoreSpecs(img.Agents)
	d.Data.restoreAssets(img.Assets)
	return nil
}

// restoreSpecs replaces/installs specs exactly as snapshotted (versions
// included), without version bumps or change notifications.
func (r *AgentRegistry) restoreSpecs(specs []AgentSpec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, spec := range specs {
		key := strings.ToLower(spec.Name)
		if _, ok := r.specs[key]; !ok {
			r.order = append(r.order, key)
		}
		r.specs[key] = spec
		_ = r.reindexLocked(key)
	}
}

// restoreAssets mirrors restoreSpecs for the data registry.
func (r *DataRegistry) restoreAssets(assets []DataAsset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range assets {
		key := strings.ToLower(a.Name)
		if _, ok := r.assets[key]; !ok {
			r.order = append(r.order, key)
		}
		r.assets[key] = a
		_ = r.index.Upsert(key, r.embedder.Embed(a.searchText()))
	}
}
