// Package budget implements the blueprint's QoS budget (§IV, §V-H):
// "records of the current and projected QoS stats to guide execution and
// planning". The task coordinator charges every agent invocation against the
// session budget and checks projections before dispatching further steps;
// violations trigger aborts, replanning or user confirmation.
package budget

import (
	"fmt"
	"sync"
	"time"
)

// Limits are the QoS constraints of one task execution.
type Limits struct {
	// MaxCost in dollars (0 = unlimited).
	MaxCost float64
	// MaxLatency caps accumulated execution latency (0 = unlimited).
	MaxLatency time.Duration
	// MinAccuracy is the lowest acceptable running accuracy estimate
	// (0 = don't care).
	MinAccuracy float64
}

// Dimension names a QoS axis.
type Dimension string

// QoS dimensions.
const (
	DimCost     Dimension = "cost"
	DimLatency  Dimension = "latency"
	DimAccuracy Dimension = "accuracy"
)

// Violation records one exceeded constraint.
type Violation struct {
	Dimension Dimension
	// Actual and Limit are rendered per-dimension (dollars, duration,
	// probability).
	Actual string
	Limit  string
	// Step names the plan step that tripped the limit.
	Step string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("budget violation on %s at step %q: %s exceeds limit %s", v.Dimension, v.Step, v.Actual, v.Limit)
}

// Budget tracks actuals against limits. All methods are safe for concurrent
// use.
type Budget struct {
	mu         sync.Mutex
	limits     Limits
	cost       float64
	latency    time.Duration
	accSum     float64
	accWeight  float64
	charges    int
	violations []Violation
}

// New creates a budget with the given limits.
func New(limits Limits) *Budget {
	return &Budget{limits: limits}
}

// Limits returns the configured limits.
func (b *Budget) Limits() Limits {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.limits
}

// Charge records the actuals of one step and returns the violations it
// caused (nil when within budget). Accuracy contributes to a cost-weighted
// running estimate: expensive steps influence the estimate more.
func (b *Budget) Charge(step string, cost float64, latency time.Duration, accuracy float64) []Violation {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cost += cost
	b.latency += latency
	b.charges++
	if accuracy > 0 {
		w := cost
		if w <= 0 {
			w = 1e-6
		}
		b.accSum += accuracy * w
		b.accWeight += w
	}
	var out []Violation
	if b.limits.MaxCost > 0 && b.cost > b.limits.MaxCost {
		out = append(out, Violation{
			Dimension: DimCost, Step: step,
			Actual: fmt.Sprintf("$%.4f", b.cost),
			Limit:  fmt.Sprintf("$%.4f", b.limits.MaxCost),
		})
	}
	if b.limits.MaxLatency > 0 && b.latency > b.limits.MaxLatency {
		out = append(out, Violation{
			Dimension: DimLatency, Step: step,
			Actual: b.latency.String(),
			Limit:  b.limits.MaxLatency.String(),
		})
	}
	if acc, ok := b.accuracyLocked(); ok && b.limits.MinAccuracy > 0 && acc < b.limits.MinAccuracy {
		out = append(out, Violation{
			Dimension: DimAccuracy, Step: step,
			Actual: fmt.Sprintf("%.3f", acc),
			Limit:  fmt.Sprintf("%.3f", b.limits.MinAccuracy),
		})
	}
	b.violations = append(b.violations, out...)
	return out
}

// WouldExceed reports whether adding the projected cost/latency would break
// the limits — the coordinator's pre-dispatch projection check.
func (b *Budget) WouldExceed(projCost float64, projLatency time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limits.MaxCost > 0 && b.cost+projCost > b.limits.MaxCost {
		return true
	}
	if b.limits.MaxLatency > 0 && b.latency+projLatency > b.limits.MaxLatency {
		return true
	}
	return false
}

// Remaining reports how much cost and latency headroom is left (zero values
// when the dimension is unlimited).
func (b *Budget) Remaining() (cost float64, latency time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limits.MaxCost > 0 {
		cost = b.limits.MaxCost - b.cost
		if cost < 0 {
			cost = 0
		}
	}
	if b.limits.MaxLatency > 0 {
		latency = b.limits.MaxLatency - b.latency
		if latency < 0 {
			latency = 0
		}
	}
	return cost, latency
}

func (b *Budget) accuracyLocked() (float64, bool) {
	if b.accWeight == 0 {
		return 0, false
	}
	return b.accSum / b.accWeight, true
}

// Report is a budget snapshot.
type Report struct {
	CostSpent    float64
	Latency      time.Duration
	Accuracy     float64 // running estimate; 0 when unknown
	Charges      int
	Violations   []Violation
	CostLimit    float64
	LatencyLimit time.Duration
}

// Snapshot returns the current report.
func (b *Budget) Snapshot() Report {
	b.mu.Lock()
	defer b.mu.Unlock()
	acc, _ := b.accuracyLocked()
	return Report{
		CostSpent:    b.cost,
		Latency:      b.latency,
		Accuracy:     acc,
		Charges:      b.charges,
		Violations:   append([]Violation(nil), b.violations...),
		CostLimit:    b.limits.MaxCost,
		LatencyLimit: b.limits.MaxLatency,
	}
}

// Violated reports whether any violation has occurred.
func (b *Budget) Violated() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.violations) > 0
}
