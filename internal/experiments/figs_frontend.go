package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"blueprint/internal/relational"
)

// FrontendShapeCache (A9) measures the shape-keyed plan cache fed by the
// zero-allocation tokenizer (internal/relational/lexer.go, fingerprint.go)
// on the workload it was built for: NLQ-style SQL with literals inlined in
// the text, as NL2Q translation emits. Thousands of distinct texts collapse
// onto a handful of literal-stripped shapes, so the cache serves parsed
// statements and compiled plans where exact-text keying re-parsed and
// re-compiled every variant.
//
// The same pre-generated statement sequence runs twice over identical data:
// once with shape keying disabled (exact-text keys, the pre-shape behavior)
// and once enabled, both from a cold statement cache. In full mode the >= 90%
// hit-rate floor and the >= 3x throughput floor are enforced as errors (CI
// smoke runs report only).
func FrontendShapeCache(seed int64) (*Table, error) {
	const rows = 500
	statements := 1000
	if Short {
		statements = 300
	}

	db := relational.NewDB()
	if _, err := db.Exec(`CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary INT, level INT)`); err != nil {
		return nil, err
	}
	for _, ddl := range []string{
		`CREATE INDEX i_id ON jobs (id)`,
		`CREATE INDEX i_city ON jobs (city)`,
		`CREATE ORDERED INDEX i_salary ON jobs (salary)`,
	} {
		if _, err := db.Exec(ddl); err != nil {
			return nil, err
		}
	}
	cities := make([]string, 50)
	for i := range cities {
		cities[i] = fmt.Sprintf("city%02d", i)
	}
	titles := []string{"Data Scientist", "ML Engineer", "Analyst", "Platform Engineer"}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(`INSERT INTO jobs VALUES (?, ?, ?, ?, ?)`,
			i, titles[i%len(titles)], cities[i%len(cities)], 90000+(i%160)*500, i%7); err != nil {
			return nil, err
		}
	}

	// NLQ-style templates: literal-inlined texts, wordy the way generated SQL
	// is. Ten templates => at most ten shapes.
	// The texts are wordy the way generated SQL is — NL2Q output spells out
	// projection lists and stacks redundant guards — so the parse cost exact
	// keying pays per text is the realistic one. Predicates stay selective
	// (indexed point lookups, narrow ranges) as NLQ answers are.
	rng := rand.New(rand.NewSource(seed))
	templates := []func() string{
		func() string {
			return fmt.Sprintf(`SELECT id AS job_id, title AS job_title, city AS job_city, salary AS annual_salary_usd, level AS seniority_level FROM jobs WHERE id = %d AND level BETWEEN 0 AND 6 AND salary BETWEEN 80000 AND 999999 AND title != 'nobody' AND city != 'unknown' LIMIT 1`, rng.Intn(rows))
		},
		func() string {
			return fmt.Sprintf(`SELECT id AS job_id, title AS job_title, salary AS annual_salary_usd, level AS seniority_level FROM jobs WHERE city = '%s' AND salary > %d AND salary < 999999 AND level != 99 AND title != 'retired' AND id >= 0 ORDER BY id ASC LIMIT 5`, cities[rng.Intn(len(cities))], 150000+rng.Intn(30)*500)
		},
		func() string {
			lo := 90000 + rng.Intn(150)*500
			return fmt.Sprintf(`SELECT id AS job_id, city AS job_city, salary AS annual_salary_usd FROM jobs WHERE salary BETWEEN %d AND %d AND city != 'nowhere' AND city != 'atlantis' AND level BETWEEN 0 AND 6 AND title != 'unknown role' LIMIT 10`, lo, lo+800)
		},
		func() string {
			return fmt.Sprintf(`SELECT COUNT(*) AS total_openings, MIN(salary) AS lowest_salary_usd, MAX(salary) AS highest_salary_usd, AVG(salary) AS average_salary_usd FROM jobs WHERE city = '%s' AND salary >= %d AND salary <= 999999 AND level >= 0 AND level <= 6 AND title != 'intern'`, cities[rng.Intn(len(cities))], 90000+rng.Intn(80)*1000)
		},
		func() string {
			return fmt.Sprintf(`SELECT id AS job_id, title AS job_title, level AS seniority_level FROM jobs WHERE id IN (%d, %d, %d, %d, %d) AND level < 100 AND salary > 0 AND city != 'nowhere' ORDER BY id ASC LIMIT 5`, rng.Intn(rows), rng.Intn(rows), rng.Intn(rows), rng.Intn(rows), rng.Intn(rows))
		},
		func() string {
			return fmt.Sprintf(`SELECT id AS job_id, salary AS annual_salary_usd, title AS job_title, city AS job_city FROM jobs WHERE salary >= %d AND city = '%s' AND level >= 0 AND level <= 6 AND title != 'contractor' ORDER BY salary DESC, id ASC LIMIT 5`, 160000+rng.Intn(18)*500, cities[rng.Intn(len(cities))])
		},
		func() string {
			return fmt.Sprintf(`EXPLAIN SELECT id AS job_id, title AS job_title, salary AS annual_salary_usd FROM jobs WHERE city = '%s' AND salary > %d AND level = %d AND title != 'temp' LIMIT 5`, cities[rng.Intn(len(cities))], 155000+rng.Intn(25)*500, rng.Intn(7))
		},
		func() string {
			return fmt.Sprintf(`SELECT id AS job_id, title AS job_title, city AS job_city FROM jobs WHERE title = '%s' AND salary < %d AND level = %d AND city != 'atlantis' ORDER BY id DESC LIMIT 3`, titles[rng.Intn(len(titles))], 91000+rng.Intn(4)*500, rng.Intn(7))
		},
		func() string {
			return fmt.Sprintf(`UPDATE jobs SET level = %d, title = '%s' WHERE id = %d AND level >= 0 AND level <= 6 AND salary > 0 AND city != 'nowhere'`, rng.Intn(7), titles[rng.Intn(len(titles))], rng.Intn(rows))
		},
		func() string {
			// Always-miss DELETE: exercises the DML path without shrinking
			// the table between phases.
			return fmt.Sprintf(`DELETE FROM jobs WHERE id = %d AND level = 1000 AND city = 'nowhere' AND salary < 0 AND title = 'ghost role'`, rows+rng.Intn(rows))
		},
	}
	stmts := make([]string, statements)
	for i := range stmts {
		stmts[i] = templates[i%len(templates)]()
	}

	// run executes the sequence from a cold statement cache and returns the
	// wall clock plus the cache stats it accumulated. The sequence is timed
	// three times (best-of) with a GC between reps so allocator and collector
	// state left by the other mode cannot skew the comparison; the reported
	// stats come from the winning rep, and every rep starts from a flushed
	// cache so each one pays the same cold misses.
	run := func(shape bool) (time.Duration, relational.CacheStats, error) {
		db.SetShapeCacheEnabled(shape)
		reps := 3
		if Short {
			reps = 2
		}
		best := time.Duration(-1)
		var stats relational.CacheStats
		for r := 0; r < reps; r++ {
			db.SetStmtCacheCapacity(0) // flush
			db.SetStmtCacheCapacity(relational.DefaultStmtCacheCapacity)
			db.ResetCacheStats()
			runtime.GC()
			start := time.Now()
			for _, sql := range stmts {
				if _, err := db.Query(sql); err != nil {
					return 0, relational.CacheStats{}, fmt.Errorf("%s: %w", sql, err)
				}
			}
			if wall := time.Since(start); best < 0 || wall < best {
				best, stats = wall, db.CacheStats()
			}
		}
		return best, stats, nil
	}

	exactWall, exactStats, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("A9 exact-keyed: %w", err)
	}
	shapeWall, shapeStats, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("A9 shape-keyed: %w", err)
	}
	speedup := exactWall.Seconds() / shapeWall.Seconds()

	t := &Table{ID: "A9", Title: "Front end: shape-keyed plan cache vs exact-text keying on literal-inlined NLQ statements"}
	t.Rows = append(t.Rows,
		Row{Series: "exact-keyed", Metrics: []Metric{
			{Name: "stmts", Value: fmt.Sprint(statements)},
			{Name: "wall", Value: ms(exactWall)},
			{Name: "per_stmt", Value: us(exactWall / time.Duration(statements))},
			{Name: "hit_rate", Value: pct(exactStats.HitRate())},
			{Name: "misses", Value: fmt.Sprint(exactStats.Misses)},
		}},
		Row{Series: "shape-keyed", Metrics: []Metric{
			{Name: "stmts", Value: fmt.Sprint(statements)},
			{Name: "wall", Value: ms(shapeWall)},
			{Name: "per_stmt", Value: us(shapeWall / time.Duration(statements))},
			{Name: "hit_rate", Value: pct(shapeStats.HitRate())},
			{Name: "shape_hits", Value: fmt.Sprint(shapeStats.ShapeHits)},
			{Name: "shapes", Value: fmt.Sprint(shapeStats.Size)},
			{Name: "speedup", Value: fmt.Sprintf("%.1fx", speedup)},
		}},
	)

	// The race detector's instrumentation slows execution far more than
	// parsing, compressing the measured ratio; floors are meaningful only
	// on uninstrumented full-mode runs.
	if !Short && !raceEnabled {
		if hr := shapeStats.HitRate(); hr < 0.90 {
			return nil, fmt.Errorf("A9: shape-keyed hit rate %.1f%%, want >= 90%%", hr*100)
		}
		if speedup < 3 {
			return nil, fmt.Errorf("A9: shape-keyed speedup %.2fx over exact keying (exact %s, shape %s per stmt), want >= 3x",
				speedup, us(exactWall/time.Duration(statements)), us(shapeWall/time.Duration(statements)))
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d literal-inlined statements over %d templates: exact keys treat every text as new; fingerprint shape keys collapse them onto %d cached plans", statements, len(templates), shapeStats.Size),
		"the fingerprint pass is one zero-allocation tokenizer sweep; extracted literals bind per-execution through auto parameter slots, so cached plans are shared verbatim",
		"floors (full mode): hit rate >= 90% and >= 3x throughput over exact-text keying on the same sequence")
	return t, nil
}
