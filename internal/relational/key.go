package relational

import (
	"encoding/binary"
	"math"
)

// Binary hash-key encoding for rows and values.
//
// The executor's hash operators (hash join build/probe, GROUP BY bucketing,
// DISTINCT, COUNT(DISTINCT)) need a map key that identifies a value's
// equality class. The original implementation rendered every value to a fresh
// string ("i:42", "s:Oakland", ...) and concatenated multi-column keys
// through a strings.Builder — one or more heap allocations per row per
// operator. appendValueKey instead encodes the value into a caller-owned
// scratch []byte that is truncated and reused across rows, so the steady
// state of a hash probe allocates nothing: Go map lookups with a
// `m[string(scratch)]` expression do not copy the byte slice, and the key
// string is only materialized once per distinct value on first insertion.
//
// Encoding (one tagged record per value, self-delimiting so multi-column
// keys need no separator and cannot collide across column boundaries):
//
//	null   -> 0x00
//	bool   -> 0x01, 0x00|0x01
//	int    -> 0x02, 8-byte big-endian two's complement
//	float  -> integral floats encode as int (so 3 = 3.0 joins/groups with 3,
//	          matching Value.Key and Compare); otherwise 0x03, 8-byte IEEE bits
//	string -> 0x04, uvarint byte length, raw bytes
//
// Two values encode to the same bytes iff Value.Key treats them as the same
// equality class (see TestAppendValueKeyMatchesKeyEquivalence).
const (
	keyTagNull   = 0x00
	keyTagBool   = 0x01
	keyTagInt    = 0x02
	keyTagFloat  = 0x03
	keyTagString = 0x04
)

// appendValueKey appends the binary equality key of v to dst and returns the
// extended slice. Callers reuse dst across rows (dst = appendValueKey(dst[:0], v)).
func appendValueKey(dst []byte, v Value) []byte {
	switch v.T {
	case TInt:
		dst = append(dst, keyTagInt)
		return binary.BigEndian.AppendUint64(dst, uint64(v.I))
	case TFloat:
		// Integral floats share keys with ints so 3 = 3.0 lookups work,
		// mirroring Value.Key.
		if v.F == float64(int64(v.F)) {
			dst = append(dst, keyTagInt)
			return binary.BigEndian.AppendUint64(dst, uint64(int64(v.F)))
		}
		dst = append(dst, keyTagFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.F))
	case TString:
		dst = append(dst, keyTagString)
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		return append(dst, v.S...)
	case TBool:
		if v.B {
			return append(dst, keyTagBool, 1)
		}
		return append(dst, keyTagBool, 0)
	default:
		return append(dst, keyTagNull)
	}
}

// appendRowKey appends the concatenated keys of every value in the row.
func appendRowKey(dst []byte, r Row) []byte {
	for _, v := range r {
		dst = appendValueKey(dst, v)
	}
	return dst
}

// rowBucket groups build-side join rows sharing one key. Buckets are held
// by pointer so appending a row never re-assigns the map key: the key
// string is materialized once per distinct value and probes with a
// `m[string(scratch)]` expression allocate nothing.
type rowBucket struct{ rows []Row }

// buildJoinHash indexes the build side of a hash join by the binary key of
// column idx, skipping NULLs (an equijoin never matches them). Shared by
// the compiled and interpreted join executors.
func buildJoinHash(jRows []Row, idx int) map[string]*rowBucket {
	var scratch []byte
	build := make(map[string]*rowBucket, len(jRows))
	for _, r := range jRows {
		v := r[idx]
		if v.IsNull() {
			continue
		}
		scratch = appendValueKey(scratch[:0], v)
		b := build[string(scratch)]
		if b == nil {
			b = &rowBucket{}
			build[string(scratch)] = b
		}
		b.rows = append(b.rows, r)
	}
	return build
}
