package resilience

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"blueprint/internal/obs"
)

// Process-wide breaker instruments (per-Set state gauges are func-backed and
// registered by the System wiring).
var (
	mBreakerTrips      = obs.Default.Counter("blueprint_breaker_trips_total", "circuit-breaker transitions to open")
	mBreakerRejections = obs.Default.Counter("blueprint_breaker_rejections_total", "dispatches rejected by an open breaker")
	mBreakerProbes     = obs.Default.Counter("blueprint_breaker_probes_total", "half-open probe dispatches")
	mBreakerCloses     = obs.Default.Counter("blueprint_breaker_closes_total", "circuit-breaker recoveries to closed")
)

// ErrBreakerOpen reports a dispatch rejected because the target agent's
// circuit breaker is open. Never retried against the same agent; the
// scheduler's replan fallback may still route to an alternative.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// State is a breaker's position in the closed/open/half-open machine.
type State int

// Breaker states.
const (
	// Closed passes traffic, recording outcomes in the failure window.
	Closed State = iota
	// Open rejects traffic until OpenFor elapses.
	Open
	// HalfOpen admits up to HalfOpenProbes trial dispatches; all-success
	// closes the breaker, any failure re-opens it.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes the per-agent breakers of one Set.
type BreakerConfig struct {
	// Window is the sliding outcome window (last Window dispatches; default
	// 20).
	Window int
	// MinSamples is the fewest recorded outcomes before the failure rate is
	// trusted (default 5) — a single early failure must not trip a breaker.
	MinSamples int
	// FailureThreshold opens the breaker when the windowed failure rate
	// reaches it (default 0.5).
	FailureThreshold float64
	// OpenFor is how long an open breaker rejects before probing (default
	// 2s).
	OpenFor time.Duration
	// HalfOpenProbes is how many trial dispatches half-open admits
	// (default 1).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is one closed/open/half-open circuit over a sliding outcome
// window. Safe for concurrent use.
type Breaker struct {
	mu      sync.Mutex
	cfg     BreakerConfig
	name    string // owning agent, for state-transition events ("" standalone)
	now     func() time.Time
	state   State
	window  []bool // ring of outcomes, true = failure
	next    int
	filled  int
	openAt  time.Time
	probes  int // in-flight + spent half-open probes since entering HalfOpen
	probeOK int
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, now: time.Now, window: make([]bool, cfg.Window)}
}

// stateEvent records one state transition in the event log. Transitions
// are rare by construction (trips gate on a windowed failure rate, closes
// on successful probes), so no sampling is needed.
func (b *Breaker) stateEvent(lv obs.Level, kind string, extra ...obs.Attr) {
	if !obs.Events.On(lv) {
		return
	}
	attrs := append([]obs.Attr{{Key: "agent", Value: b.name}}, extra...)
	obs.Events.Append(obs.Event{
		Level: lv, Component: "breaker", Kind: kind, Attrs: attrs,
	})
}

// Allow reports whether a dispatch may proceed, advancing open -> half-open
// when the open period elapsed and accounting half-open probe admissions.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openAt) < b.cfg.OpenFor {
			mBreakerRejections.Inc()
			return false
		}
		b.state = HalfOpen
		b.probes, b.probeOK = 0, 0
		b.stateEvent(obs.LevelInfo, "half-open")
		fallthrough
	default: // HalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			mBreakerRejections.Inc()
			return false
		}
		b.probes++
		mBreakerProbes.Inc()
		return true
	}
}

// Record folds one dispatch outcome into the window and runs the state
// machine: a half-open failure re-opens immediately, all probes succeeding
// closes, and a closed breaker trips when the windowed failure rate crosses
// the threshold.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.window[b.next] = !success
	b.next = (b.next + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
	switch b.state {
	case HalfOpen:
		if !success {
			b.tripLocked()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.state = Closed
			b.resetWindowLocked()
			mBreakerCloses.Inc()
			b.stateEvent(obs.LevelInfo, "close")
		}
	case Closed:
		if b.filled >= b.cfg.MinSamples && b.failureRateLocked() >= b.cfg.FailureThreshold {
			b.tripLocked()
		}
	}
}

// State returns the current state (advancing open -> half-open is left to
// Allow; State is a pure read).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) tripLocked() {
	b.state = Open
	b.openAt = b.now()
	mBreakerTrips.Inc()
	b.stateEvent(obs.LevelWarn, "open",
		obs.Attr{Key: "failure_rate", Value: strconv.FormatFloat(b.failureRateLocked(), 'f', 2, 64)})
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.next, b.filled = 0, 0
}

func (b *Breaker) failureRateLocked() float64 {
	if b.filled == 0 {
		return 0
	}
	fails := 0
	n := b.filled
	for i := 0; i < n; i++ {
		if b.window[i] {
			fails++
		}
	}
	return float64(fails) / float64(n)
}

// Set holds one breaker per agent, created lazily on first use.
type Set struct {
	mu  sync.Mutex
	cfg BreakerConfig
	m   map[string]*Breaker
}

// NewSet creates an empty breaker set.
func NewSet(cfg BreakerConfig) *Set {
	return &Set{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// For returns the named agent's breaker, creating it closed. Safe on a nil
// set (returns nil; nil breakers always allow).
func (s *Set) For(name string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = NewBreaker(s.cfg)
		b.name = name
		s.m[name] = b
	}
	return b
}

// Allow reports whether a dispatch to the named agent may proceed. A nil set
// always allows.
func (s *Set) Allow(name string) bool {
	if s == nil {
		return true
	}
	return s.For(name).Allow()
}

// Record folds one dispatch outcome for the named agent. No-op on nil.
func (s *Set) Record(name string, success bool) {
	if s == nil {
		return
	}
	s.For(name).Record(success)
}

// States snapshots every breaker's state by agent name.
func (s *Set) States() map[string]State {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]State, len(s.m))
	for name, b := range s.m {
		out[name] = b.State()
	}
	return out
}

// OpenCount counts breakers currently not closed (open or half-open) — the
// value the blueprint_breaker_open gauge exports.
func (s *Set) OpenCount() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, st := range s.States() {
		if st != Closed {
			n++
		}
	}
	return n
}
