package relational

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // symbols: = != < <= > >= ( ) , * . ;
	tokParam // ? positional parameter
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "LIKE": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true, "GROUP": true,
	"HAVING": true, "AS": true, "JOIN": true, "INNER": true, "LEFT": true,
	"ON": true, "INSERT": true, "INTO": true, "VALUES": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "ORDERED": true, "UNIQUE": true, "DROP": true,
	"UPDATE": true, "SET": true, "DELETE": true, "NULL": true, "TRUE": true,
	"FALSE": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "DISTINCT": true, "INT": true, "FLOAT": true, "TEXT": true,
	"BOOL": true, "BETWEEN": true, "IS": true, "EXPLAIN": true,
}

// lex splits SQL text into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("relational: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i
			seenDot := false
			for j < n && (unicode.IsDigit(rune(input[j])) || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		case c == '?':
			toks = append(toks, token{kind: tokParam, text: "?", pos: i})
			i++
		case strings.ContainsRune("=<>!(),*.;", c):
			// multi-char operators
			if (c == '<' || c == '>' || c == '!') && i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: input[i : i+2], pos: i})
				i += 2
			} else if c == '<' && i+1 < n && input[i+1] == '>' {
				toks = append(toks, token{kind: tokOp, text: "!=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
				i++
			}
		default:
			return nil, fmt.Errorf("relational: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
