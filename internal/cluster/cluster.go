// Package cluster simulates the blueprint's production deployment (Fig. 2):
// components distributed across cluster nodes with differing compute classes
// (CPU/GPU), agents running inside containers spawned by per-container
// AgentFactory servers, "configured to scale and restart on failure" (§I).
//
// The simulator places containers on nodes by resource class and capacity,
// runs a real agent instance inside each container (attached to the shared
// stream store), injects failures, and applies a restart policy — so the
// Fig. 2 benchmarks measure actual recovery behaviour of the runtime, not a
// mock.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"blueprint/internal/agent"
	"blueprint/internal/streams"
)

// Cluster errors.
var (
	ErrNoCapacity        = errors.New("cluster: no node with free capacity for resource class")
	ErrContainerNotFound = errors.New("cluster: container not found")
	ErrNodeExists        = errors.New("cluster: node already exists")
)

// State is a container lifecycle state.
type State string

// Container states.
const (
	Running State = "running"
	Failed  State = "failed"
	Stopped State = "stopped"
)

// Node is one cluster machine.
type Node struct {
	// Name identifies the node.
	Name string
	// Resource is the compute class offered: "cpu" or "gpu".
	Resource string
	// Capacity is the maximum number of containers.
	Capacity int
}

// Container is one scheduled agent instance.
type Container struct {
	// ID is the container identifier ("c1", "c2", ...).
	ID string
	// AgentName is the registry agent running inside.
	AgentName string
	// Node is the hosting node name.
	Node string
	// State is the lifecycle state.
	State State
	// Restarts counts restart-policy recoveries.
	Restarts int

	inst *agent.Instance
}

// Cluster simulates a deployment over a shared stream store.
type Cluster struct {
	mu         sync.Mutex
	store      *streams.Store
	factory    *agent.Factory
	session    string
	nodes      map[string]*Node
	nodeOrder  []string
	containers map[string]*Container
	ctrOrder   []string
	nextCtr    int
	restarts   int
}

// New creates a cluster scheduling agents from factory into session.
func New(store *streams.Store, factory *agent.Factory, session string) *Cluster {
	return &Cluster{
		store:      store,
		factory:    factory,
		session:    session,
		nodes:      make(map[string]*Node),
		containers: make(map[string]*Container),
	}
}

// AddNode registers a machine.
func (c *Cluster) AddNode(name, resource string, capacity int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[name]; ok {
		return fmt.Errorf("%w: %s", ErrNodeExists, name)
	}
	c.nodes[name] = &Node{Name: name, Resource: resource, Capacity: capacity}
	c.nodeOrder = append(c.nodeOrder, name)
	return nil
}

// load counts running containers per node (mu held).
func (c *Cluster) loadLocked() map[string]int {
	load := make(map[string]int, len(c.nodes))
	for _, ctr := range c.containers {
		if ctr.State == Running {
			load[ctr.Node]++
		}
	}
	return load
}

// Deploy places and starts one container for the named agent, honoring its
// registered deployment resource class. The least-loaded node with matching
// resource and free capacity wins (ties by name, deterministically).
func (c *Cluster) Deploy(agentName string) (*Container, error) {
	a, err := c.factory.Build(agentName)
	if err != nil {
		return nil, err
	}
	resource := a.Spec.Deployment.Resource
	if resource == "" {
		resource = "cpu"
	}
	c.mu.Lock()
	load := c.loadLocked()
	var target *Node
	for _, name := range c.nodeOrder {
		n := c.nodes[name]
		if n.Resource != resource || load[n.Name] >= n.Capacity {
			continue
		}
		if target == nil || load[n.Name] < load[target.Name] ||
			(load[n.Name] == load[target.Name] && n.Name < target.Name) {
			target = n
		}
	}
	if target == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s for agent %s", ErrNoCapacity, resource, agentName)
	}
	c.nextCtr++
	ctr := &Container{
		ID:        fmt.Sprintf("c%d", c.nextCtr),
		AgentName: agentName,
		Node:      target.Name,
		State:     Running,
	}
	c.containers[ctr.ID] = ctr
	c.ctrOrder = append(c.ctrOrder, ctr.ID)
	c.mu.Unlock()

	inst, err := agent.Attach(c.store, c.session, a, agent.Options{Workers: a.Spec.Deployment.Workers})
	if err != nil {
		c.mu.Lock()
		ctr.State = Failed
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Lock()
	ctr.inst = inst
	c.mu.Unlock()
	return ctr, nil
}

// Scale ensures exactly n running containers exist for the agent, deploying
// or stopping as needed. It returns the delta applied.
func (c *Cluster) Scale(agentName string, n int) (int, error) {
	running := c.Containers(agentName, Running)
	delta := 0
	for len(running)+delta < n {
		if _, err := c.Deploy(agentName); err != nil {
			return delta, err
		}
		delta++
	}
	for i := len(running) - 1; i >= 0 && len(running)+delta > n; i-- {
		if err := c.stop(running[i].ID); err != nil {
			return delta, err
		}
		delta--
	}
	return delta, nil
}

// Kill simulates a container crash: the agent instance dies and the
// container enters Failed state until Reconcile restarts it.
func (c *Cluster) Kill(containerID string) error {
	c.mu.Lock()
	ctr, ok := c.containers[containerID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrContainerNotFound, containerID)
	}
	inst := ctr.inst
	ctr.inst = nil
	ctr.State = Failed
	c.mu.Unlock()
	if inst != nil {
		inst.Stop()
	}
	return nil
}

// stop gracefully stops a container (no restart).
func (c *Cluster) stop(containerID string) error {
	c.mu.Lock()
	ctr, ok := c.containers[containerID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrContainerNotFound, containerID)
	}
	inst := ctr.inst
	ctr.inst = nil
	ctr.State = Stopped
	c.mu.Unlock()
	if inst != nil {
		inst.Stop()
	}
	return nil
}

// Reconcile applies the restart policy: every Failed container is restarted
// in place (same node). It returns the number of restarts performed — one
// reconcile pass models one control-loop tick.
func (c *Cluster) Reconcile() (int, error) {
	c.mu.Lock()
	var failed []*Container
	for _, id := range c.ctrOrder {
		if ctr := c.containers[id]; ctr.State == Failed {
			failed = append(failed, ctr)
		}
	}
	c.mu.Unlock()

	restarted := 0
	for _, ctr := range failed {
		a, err := c.factory.Build(ctr.AgentName)
		if err != nil {
			return restarted, err
		}
		inst, err := agent.Attach(c.store, c.session, a, agent.Options{Workers: a.Spec.Deployment.Workers})
		if err != nil {
			return restarted, err
		}
		c.mu.Lock()
		ctr.inst = inst
		ctr.State = Running
		ctr.Restarts++
		c.restarts++
		c.mu.Unlock()
		restarted++
	}
	return restarted, nil
}

// Containers lists containers for an agent (empty = all) in a state
// (empty = any), in deployment order.
func (c *Cluster) Containers(agentName string, state State) []*Container {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Container
	for _, id := range c.ctrOrder {
		ctr := c.containers[id]
		if agentName != "" && ctr.AgentName != agentName {
			continue
		}
		if state != "" && ctr.State != state {
			continue
		}
		cp := *ctr
		cp.inst = ctr.inst
		out = append(out, &cp)
	}
	return out
}

// Placement reports node -> running container count, for placement
// assertions.
func (c *Cluster) Placement() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loadLocked()
}

// TotalRestarts reports cumulative restarts across the cluster.
func (c *Cluster) TotalRestarts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restarts
}

// Nodes lists registered nodes sorted by name.
func (c *Cluster) Nodes() []Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Shutdown stops every running container.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	var insts []*agent.Instance
	for _, ctr := range c.containers {
		if ctr.inst != nil {
			insts = append(insts, ctr.inst)
			ctr.inst = nil
			ctr.State = Stopped
		}
	}
	c.mu.Unlock()
	for _, inst := range insts {
		inst.Stop()
	}
}
