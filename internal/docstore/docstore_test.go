package docstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newProfiles(t testing.TB) *Store {
	t.Helper()
	s := NewStore()
	if err := s.CreateCollection("profiles"); err != nil {
		t.Fatal(err)
	}
	docs := []struct {
		id  string
		doc Doc
	}{
		{"p1", Doc{"name": "Ada", "title": "Data Scientist", "years": 5, "skills": []any{"python", "sql", "ml"}, "city": "San Francisco"}},
		{"p2", Doc{"name": "Grace", "title": "ML Engineer", "years": 8, "skills": []any{"go", "ml"}, "city": "Oakland"}},
		{"p3", Doc{"name": "Alan", "title": "Data Analyst", "years": 2, "skills": []any{"sql", "excel"}, "city": "San Jose"}},
		{"p4", Doc{"name": "Edsger", "title": "Data Scientist", "years": 11, "skills": []any{"python", "stats"}, "city": "Berkeley", "address": map[string]any{"zip": "94720"}}},
	}
	for _, d := range docs {
		if err := s.Insert("profiles", d.id, d.doc); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestInsertGetDelete(t *testing.T) {
	s := newProfiles(t)
	d, err := s.Get("profiles", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if d["name"] != "Ada" {
		t.Fatalf("doc = %v", d)
	}
	// Returned doc is a copy.
	d["name"] = "mutated"
	d2, _ := s.Get("profiles", "p1")
	if d2["name"] != "Ada" {
		t.Fatal("Get leaked internal state")
	}
	if err := s.Delete("profiles", "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("profiles", "p1"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Delete("profiles", "p1"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	s := newProfiles(t)
	if err := s.Insert("profiles", "p1", Doc{}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectionErrors(t *testing.T) {
	s := NewStore()
	if err := s.CreateCollection("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateCollection("a"); !errors.Is(err, ErrCollectionExists) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Get("missing", "x"); !errors.Is(err, ErrCollectionNotFound) {
		t.Fatalf("err = %v", err)
	}
	s.EnsureCollection("a") // no panic on existing
	s.EnsureCollection("b")
	if len(s.Collections()) != 2 {
		t.Fatalf("collections = %v", s.Collections())
	}
}

func TestUpsert(t *testing.T) {
	s := newProfiles(t)
	if err := s.Upsert("profiles", "p1", Doc{"name": "Ada2", "title": "Manager"}); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Get("profiles", "p1")
	if d["name"] != "Ada2" {
		t.Fatalf("upsert = %v", d)
	}
	if err := s.Upsert("profiles", "p9", Doc{"name": "New"}); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count("profiles"); n != 5 {
		t.Fatalf("count = %d", n)
	}
}

func TestFindFilters(t *testing.T) {
	s := newProfiles(t)
	cases := []struct {
		name    string
		filters []Filter
		want    int
	}{
		{"eq", []Filter{{Field: "title", Op: Eq, Value: "Data Scientist"}}, 2},
		{"ne", []Filter{{Field: "title", Op: Ne, Value: "Data Scientist"}}, 2},
		{"gt", []Filter{{Field: "years", Op: Gt, Value: 5}}, 2},
		{"gte", []Filter{{Field: "years", Op: Gte, Value: 5}}, 3},
		{"lt", []Filter{{Field: "years", Op: Lt, Value: 5}}, 1},
		{"lte", []Filter{{Field: "years", Op: Lte, Value: 5}}, 2},
		{"contains-string", []Filter{{Field: "title", Op: Contains, Value: "data"}}, 3},
		{"contains-array", []Filter{{Field: "skills", Op: Contains, Value: "ml"}}, 2},
		{"exists", []Filter{{Field: "address", Op: Exists}}, 1},
		{"in", []Filter{{Field: "city", Op: In, Value: []string{"Oakland", "Berkeley"}}}, 2},
		{"and", []Filter{{Field: "title", Op: Eq, Value: "Data Scientist"}, {Field: "years", Op: Gt, Value: 6}}, 1},
		{"missing-field", []Filter{{Field: "nope", Op: Eq, Value: 1}}, 0},
	}
	for _, c := range cases {
		hits, err := s.Find("profiles", Query{Filters: c.filters})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(hits) != c.want {
			t.Errorf("%s: hits = %d, want %d", c.name, len(hits), c.want)
		}
	}
}

func TestFindSortLimitOffset(t *testing.T) {
	s := newProfiles(t)
	hits, err := s.Find("profiles", Query{SortBy: "years", Desc: true, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].ID != "p4" || hits[1].ID != "p2" {
		t.Fatalf("sorted = %v", hits)
	}
	hits, _ = s.Find("profiles", Query{SortBy: "years", Offset: 3})
	if len(hits) != 1 || hits[0].ID != "p4" {
		t.Fatalf("offset = %v", hits)
	}
	hits, _ = s.Find("profiles", Query{SortBy: "years", Offset: 99})
	if len(hits) != 0 {
		t.Fatalf("offset beyond = %v", hits)
	}
}

func TestFindProjection(t *testing.T) {
	s := newProfiles(t)
	hits, err := s.Find("profiles", Query{
		Filters: []Filter{{Field: "name", Op: Eq, Value: "Edsger"}},
		Fields:  []string{"name", "address.zip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	d := hits[0].Doc
	if d["name"] != "Edsger" || d["address.zip"] != "94720" {
		t.Fatalf("projection = %v", d)
	}
	if _, ok := d["title"]; ok {
		t.Fatal("projection leaked unrequested field")
	}
}

func TestIndexedFind(t *testing.T) {
	s := newProfiles(t)
	if err := s.CreateIndex("profiles", "title"); err != nil {
		t.Fatal(err)
	}
	// Same results through the index.
	hits, err := s.Find("profiles", Query{Filters: []Filter{{Field: "title", Op: Eq, Value: "Data Scientist"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("indexed eq = %v", hits)
	}
	hits, _ = s.Find("profiles", Query{Filters: []Filter{{Field: "title", Op: In, Value: []string{"Data Analyst", "ML Engineer"}}}})
	if len(hits) != 2 {
		t.Fatalf("indexed in = %v", hits)
	}
	// Index maintained across upsert and delete.
	if err := s.Upsert("profiles", "p3", Doc{"title": "Data Scientist"}); err != nil {
		t.Fatal(err)
	}
	hits, _ = s.Find("profiles", Query{Filters: []Filter{{Field: "title", Op: Eq, Value: "Data Scientist"}}})
	if len(hits) != 3 {
		t.Fatalf("after upsert = %d", len(hits))
	}
	if err := s.Delete("profiles", "p1"); err != nil {
		t.Fatal(err)
	}
	hits, _ = s.Find("profiles", Query{Filters: []Filter{{Field: "title", Op: Eq, Value: "Data Scientist"}}})
	if len(hits) != 2 {
		t.Fatalf("after delete = %d", len(hits))
	}
	// Creating the same index twice is a no-op.
	if err := s.CreateIndex("profiles", "title"); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionsInfo(t *testing.T) {
	s := newProfiles(t)
	if err := s.CreateIndex("profiles", "city"); err != nil {
		t.Fatal(err)
	}
	infos := s.Collections()
	if len(infos) != 1 {
		t.Fatalf("infos = %v", infos)
	}
	ci := infos[0]
	if ci.Name != "profiles" || ci.Docs != 4 {
		t.Fatalf("info = %+v", ci)
	}
	if len(ci.Indexed) != 1 || ci.Indexed[0] != "city" {
		t.Fatalf("indexed = %v", ci.Indexed)
	}
	found := false
	for _, f := range ci.Fields {
		if f == "skills" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fields = %v", ci.Fields)
	}
}

func TestDottedGet(t *testing.T) {
	d := Doc{"a": map[string]any{"b": []any{map[string]any{"c": 42}}}}
	v, ok := d.Get("a.b.0.c")
	if !ok || v != 42 {
		t.Fatalf("dotted get = %v %v", v, ok)
	}
	if _, ok := d.Get("a.b.5.c"); ok {
		t.Fatal("out-of-range index matched")
	}
	if _, ok := d.Get("a.x"); ok {
		t.Fatal("missing key matched")
	}
	if _, ok := d.Get("a.b.0.c.d"); ok {
		t.Fatal("descend into scalar matched")
	}
}

func TestCompareAnyNumericUnification(t *testing.T) {
	if compareAny(3, 3.0) != 0 || compareAny(int64(3), 3) != 0 {
		t.Fatal("numeric unification broken")
	}
	if compareAny(2, 3.5) >= 0 {
		t.Fatal("2 < 3.5 expected")
	}
	if compareAny("a", "b") >= 0 {
		t.Fatal("string compare broken")
	}
	if compareAny(nil, 1) >= 0 || compareAny(1, nil) <= 0 {
		t.Fatal("nil ordering broken")
	}
	if compareAny(false, true) >= 0 {
		t.Fatal("bool ordering broken")
	}
}

func TestCompareAnyTotalOrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		x := compareAny(a, b)
		y := compareAny(b, a)
		return x == -y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertClonesInput(t *testing.T) {
	s := NewStore()
	s.EnsureCollection("c")
	doc := Doc{"list": []any{1, 2}}
	if err := s.Insert("c", "x", doc); err != nil {
		t.Fatal(err)
	}
	doc["list"].([]any)[0] = 99
	got, _ := s.Get("c", "x")
	if got["list"].([]any)[0] != 1 {
		t.Fatal("Insert did not clone input")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	s.EnsureCollection("c")
	done := make(chan error, 2)
	go func() {
		for i := 0; i < 300; i++ {
			if err := s.Upsert("c", fmt.Sprintf("d%d", i%50), Doc{"i": i}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 300; i++ {
			if _, err := s.Find("c", Query{Filters: []Filter{{Field: "i", Op: Gte, Value: 0}}}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s.Count("c"); n != 50 {
		t.Fatalf("count = %d", n)
	}
}
