package relational

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"blueprint/internal/durability"
)

// Durability: the engine logs committed mutations (DML and DDL) as logical
// SQL records and snapshots full table data plus schema versions, so a
// restarted process recovers exactly the state the last run committed.
//
//   - Logging rides the statement execution path: every attempted
//     mutation through Query, Exec or a prepared Stmt appends one record
//     (the original SQL text plus bound parameter values) through the
//     sink's LogMutation, which makes the state change and the log append
//     atomic with respect to snapshots (see durability.Engine.Log) —
//     logical SQL replay is not idempotent, so a record must never
//     straddle a snapshot boundary (register the DB with
//     durability.WithSnapshotBarrier). Failing statements are logged too:
//     a multi-row INSERT or an UPDATE can error midway with earlier rows
//     already applied, and deterministic replay reproduces exactly that
//     partial effect. Statements executed through DB.Run or the direct
//     catalog APIs (CreateTable, Insert, ...) bypass logging; durable
//     deployments use the SQL surface.
//   - Appends are asynchronous: a successful Exec is durable after the
//     engine's next group commit/background flush (Options.FlushEvery
//     window), not at return. Callers needing a hard barrier use
//     Engine.Sync.
//   - Apply replays one record by re-executing its statement (without
//     re-logging); replay is deterministic because the dialect has no
//     nondeterministic functions.
//   - Snapshot/Restore serialize the catalog (schemas, indexes), all live
//     rows, and the per-table schema versions — restoring the versions
//     keeps compiled-plan invalidation monotonic across restarts.
type DurabilitySink interface {
	// LogMutation atomically applies a mutation and appends the WAL
	// record it returns (nil payload = nothing to log).
	LogMutation(apply func() (payload []byte, err error)) error
}

// durableBox fixes the concrete type stored in DB.durable (atomic.Value
// requires it).
type durableBox struct{ sink DurabilitySink }

// SetDurable attaches the write-ahead-log sink. Attach before serving
// traffic; mutations executed earlier (e.g. the generated base enterprise)
// are the implicit common base recovery replays on top of.
func (db *DB) SetDurable(sink DurabilitySink) {
	db.durable.Store(durableBox{sink: sink})
}

func (db *DB) durableSink() DurabilitySink {
	if v := db.durable.Load(); v != nil {
		return v.(durableBox).sink
	}
	return nil
}

// isMutationStmt reports whether the statement changes database state.
func isMutationStmt(st Statement) bool {
	switch st.(type) {
	case *InsertStmt, *UpdateStmt, *DeleteStmt, *CreateTableStmt, *CreateIndexStmt, *DropTableStmt:
		return true
	default:
		return false
	}
}

// walBufPool recycles record-encode buffers across mutations so durable
// writes do not allocate per statement.
var walBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

const walRecordVersion = 1

// appendWALRecord encodes (sql, params) into buf.
func appendWALRecord(buf []byte, sql string, params []Value) []byte {
	buf = append(buf, walRecordVersion)
	buf = durability.AppendString(buf, sql)
	buf = durability.AppendUvarint(buf, uint64(len(params)))
	for _, v := range params {
		buf = appendValue(buf, v)
	}
	return buf
}

func decodeWALRecord(rec []byte) (string, []Value, error) {
	d := durability.NewDec(rec)
	if v := d.Byte(); v != walRecordVersion {
		return "", nil, fmt.Errorf("relational: unknown wal record version %d", v)
	}
	sql := d.String()
	n := d.Uvarint()
	params := make([]Value, 0, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		params = append(params, decodeValue(d))
	}
	if err := d.Err(); err != nil {
		return "", nil, err
	}
	return sql, params, nil
}

// appendValue encodes one typed cell.
func appendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.T))
	switch v.T {
	case TInt:
		b = durability.AppendVarint(b, v.I)
	case TFloat:
		b = durability.AppendFloat(b, v.F)
	case TString:
		b = durability.AppendString(b, v.S)
	case TBool:
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func decodeValue(d *durability.Dec) Value {
	switch Type(d.Byte()) {
	case TInt:
		return NewInt(d.Varint())
	case TFloat:
		return NewFloat(d.Float())
	case TString:
		return NewString(d.String())
	case TBool:
		return NewBool(d.Byte() != 0)
	default:
		return Null
	}
}

// Apply replays one logged mutation: parse (statement-cache backed) and
// execute without re-logging. Statement execution errors are swallowed:
// the log records attempted mutations, including ones that failed midway
// with partial effects, and deterministic execution re-fails (and
// re-applies the same partial effect) identically on replay. It
// implements durability.Loggable.
func (db *DB) Apply(rec []byte) error {
	sql, params, err := decodeWALRecord(rec)
	if err != nil {
		return err
	}
	st, slot, binder, err := db.parseCached(sql)
	if err != nil {
		return fmt.Errorf("relational: replay parse %q: %w", sql, err)
	}
	// WAL records hold the original SQL text and the caller's explicit
	// params; the binder re-merges fingerprint-extracted literals exactly as
	// the live execution did (fingerprinting is deterministic over the text).
	_, _ = db.runVals(st, slot, binder.bind(params))
	return nil
}

const snapshotVersion = 1

// Snapshot serializes the catalog, all live rows and the schema versions.
// It implements durability.Loggable.
func (db *DB) Snapshot(w io.Writer) error {
	db.mu.RLock()
	keys := append([]string(nil), db.order...)
	tables := make([]*table, 0, len(keys))
	for _, k := range keys {
		tables = append(tables, db.tables[k])
	}
	schemaSeq := db.schemaSeq
	vers := make(map[string]uint64, len(db.vers))
	for k, v := range db.vers {
		vers[k] = v
	}
	db.mu.RUnlock()

	b := []byte{snapshotVersion}
	b = durability.AppendUvarint(b, schemaSeq)
	b = durability.AppendUvarint(b, uint64(len(vers)))
	for _, k := range sortedStrings(vers) {
		b = durability.AppendString(b, k)
		b = durability.AppendUvarint(b, vers[k])
	}
	b = durability.AppendUvarint(b, uint64(len(tables)))
	for _, t := range tables {
		t.mu.RLock()
		b = durability.AppendString(b, t.name)
		b = durability.AppendUvarint(b, uint64(len(t.schema.Columns)))
		for _, c := range t.schema.Columns {
			b = durability.AppendString(b, c.Name)
			b = append(b, byte(c.Type))
		}
		b = durability.AppendUvarint(b, uint64(len(t.indexes)))
		for _, col := range sortedIndexCols(t.indexes) {
			ix := t.indexes[col]
			b = durability.AppendString(b, ix.name)
			b = durability.AppendString(b, ix.column)
			b = append(b, byte(ix.kind))
		}
		b = durability.AppendUvarint(b, uint64(t.liveCnt))
		for id, row := range t.rows {
			if !t.live[id] {
				continue
			}
			for _, v := range row {
				b = appendValue(b, v)
			}
		}
		t.mu.RUnlock()
		if _, err := w.Write(b); err != nil {
			return err
		}
		b = b[:0]
	}
	_, err := w.Write(b)
	return err
}

// Restore replaces the whole database with a Snapshot's contents and
// flushes the statement cache (cached plans refer to dropped catalogs).
// It implements durability.Loggable.
func (db *DB) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := durability.NewDec(data)
	if v := d.Byte(); v != snapshotVersion {
		return fmt.Errorf("relational: unknown snapshot version %d", v)
	}
	schemaSeq := d.Uvarint()
	nvers := d.Uvarint()
	vers := make(map[string]uint64, nvers)
	for i := uint64(0); i < nvers && d.Err() == nil; i++ {
		k := d.String()
		vers[k] = d.Uvarint()
	}
	ntables := d.Uvarint()
	tables := make(map[string]*table, ntables)
	var order []string
	for ti := uint64(0); ti < ntables && d.Err() == nil; ti++ {
		name := d.String()
		ncols := d.Uvarint()
		schema := Schema{Columns: make([]Column, 0, ncols)}
		for i := uint64(0); i < ncols && d.Err() == nil; i++ {
			cn := d.String()
			schema.Columns = append(schema.Columns, Column{Name: cn, Type: Type(d.Byte())})
		}
		type idxMeta struct {
			name, column string
			kind         IndexKind
		}
		nidx := d.Uvarint()
		idxs := make([]idxMeta, 0, nidx)
		for i := uint64(0); i < nidx && d.Err() == nil; i++ {
			in := d.String()
			ic := d.String()
			idxs = append(idxs, idxMeta{name: in, column: ic, kind: IndexKind(d.Byte())})
		}
		nrows := d.Uvarint()
		t := &table{name: name, schema: schema, indexes: make(map[string]*indexDef)}
		t.rows = make([]Row, 0, nrows)
		for ri := uint64(0); ri < nrows && d.Err() == nil; ri++ {
			row := make(Row, len(schema.Columns))
			for ci := range row {
				row[ci] = decodeValue(d)
			}
			t.rows = append(t.rows, row)
			t.live = append(t.live, true)
		}
		t.liveCnt = len(t.rows)
		for _, im := range idxs {
			col := schema.ColIndex(im.column)
			if col < 0 {
				return fmt.Errorf("relational: snapshot index %s on unknown column %s.%s", im.name, name, im.column)
			}
			ix := &indexDef{name: im.name, column: im.column, col: col, kind: im.kind}
			if im.kind == HashIndex {
				ix.hash = make(map[string][]int)
			} else {
				ix.order = newOrderedIndex()
			}
			for id, row := range t.rows {
				ix.add(id, row[ix.col])
			}
			t.indexes[strings.ToLower(im.column)] = ix
		}
		key := strings.ToLower(name)
		if _, dup := tables[key]; dup {
			return fmt.Errorf("relational: snapshot has duplicate table %s", name)
		}
		tables[key] = t
		order = append(order, key)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Len() != 0 {
		return errors.New("relational: trailing bytes in snapshot")
	}

	db.mu.Lock()
	db.tables = tables
	db.order = order
	db.vers = vers
	db.schemaSeq = schemaSeq
	db.mu.Unlock()
	db.stmts.flushAll()
	return nil
}

func sortedStrings(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIndexCols(m map[string]*indexDef) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
