package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blueprint"
	"blueprint/internal/httpapi"
	"blueprint/internal/obs"
	"blueprint/internal/resilience"
	"blueprint/internal/workload"
)

// FlightRecorder (A12) measures the ask-level flight recorder end to end,
// over real HTTP: an open-loop multi-tenant workload drives a live
// blueprintd handler (actual TCP, JSON bodies, X-Tenant headers) through
// overload, and the experiment reads back what the observability plane
// captured — slow-ask exemplars with span trees and event slices, the
// structured event log, and per-tenant SLO burn rates scraped from
// /metrics like a dashboard would. A second phase reuses A10's
// paired-ratio methodology to price the event log + recorder on the hot
// path.
//
// Enforced floors: the overload phase sheds (the governor engaged) and
// captures exemplars; every exemplar carries >= 1 resilience event; at
// least 3 slow-outcome exemplars carry span trees with >= 4 distinct
// components (the planned/NLQ deep paths);
// the scraped tenant fast-window burn exceeds 1 under overload and the
// baseline burn (the burn moved the right way); the event/exemplar/trace
// rings stay within their bounds; the driver leaks neither goroutines nor
// unbounded heap. In full (non-race) mode the event-log + recorder
// overhead on a memo-warm governed ask must stay <= 5%.
func FlightRecorder(seed int64) (*Table, error) {
	phaseDur, calibrationAsks := 2*time.Second, 12
	asksPerBatch, trials := 100, 5
	if Short {
		phaseDur, calibrationAsks = 600*time.Millisecond, 6
		asksPerBatch, trials = 10, 2
	}
	const (
		maxConcurrent = 4
		sessionPool   = 8
		queueTimeout  = 150 * time.Millisecond
		askFreshness  = time.Minute
	)

	// The event log, recorder and tracer are process-global; reset them for
	// a clean capture window and restore their knobs however this exits.
	prevLevel, prevThresh := obs.Events.Level(), obs.SlowAsks.Threshold()
	defer func() {
		obs.Events.SetLevel(prevLevel)
		obs.SlowAsks.SetThreshold(prevThresh)
		obs.SetEnabled(true)
	}()
	obs.Events.Reset()
	obs.SlowAsks.Reset()

	goroutinesBefore := runtime.NumGoroutine()
	var heapBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&heapBefore)

	sys, err := blueprint.New(blueprint.Config{
		Seed: seed, ModelAccuracy: 1.0,
		Governor: resilience.GovernorConfig{
			MaxConcurrent: maxConcurrent,
			MaxQueue:      2 * maxConcurrent,
			QueueTimeout:  queueTimeout,
			RetryAfter:    100 * time.Millisecond,
		},
		AskFreshness: askFreshness,
		EventLevel:   "debug", // every admitted ask carries its admit event
		SLO: obs.SLOConfig{
			LatencyTarget: queueTimeout, Objective: 0.9,
			FastWindow: phaseDur, SlowWindow: 10 * time.Minute,
		},
	})
	if err != nil {
		return nil, err
	}

	// The live daemon: the real blueprintd handler behind a real listener.
	// The goroutine-leak floor needs everything torn down before counting,
	// so teardown is a once (it also runs early, before the overhead phase).
	srv := httptest.NewServer(httpapi.New(sys, httpapi.Options{}))
	driver := workload.NewHTTPDriver(srv.URL)
	var teardownOnce sync.Once
	teardown := func() {
		teardownOnce.Do(func() {
			srv.Close()
			driver.Client.CloseIdleConnections()
			sys.Close()
		})
	}
	defer teardown()

	sessions := make([]string, sessionPool)
	for i := range sessions {
		if sessions[i], err = driver.CreateSession(); err != nil {
			return nil, fmt.Errorf("A12 create session: %w", err)
		}
	}

	// Load shaping + calibration, as in A11: a fixed injected agent latency
	// makes per-ask service time meaningful, and sequential warm asks over
	// the wire measure it (HTTP included) so the offered rates track the
	// machine.
	inj := resilience.NewInjector(seed, resilience.Rule{
		Site: resilience.SiteAgent, Kind: resilience.KindLatency,
		Probability: 1, Latency: 4 * time.Millisecond,
	})
	resilience.Activate(inj)
	defer resilience.Deactivate()

	pool := workload.Queries(seed, 64)
	var serviceTime time.Duration
	for i := 0; i < calibrationAsks; i++ {
		start := time.Now()
		res, err := driver.Ask(sessions[i%sessionPool], "default", pool[i%len(pool)].Text, 10*time.Second)
		if err != nil {
			return nil, fmt.Errorf("A12 calibration ask: %w", err)
		}
		if res.Status != 200 {
			return nil, fmt.Errorf("A12 calibration ask: HTTP %d (%s)", res.Status, res.Err)
		}
		if res.TraceID == "" {
			return nil, fmt.Errorf("A12: ask response missing X-Trace-Id")
		}
		serviceTime += time.Since(start)
	}
	serviceTime /= time.Duration(calibrationAsks)
	capacity := float64(maxConcurrent) / serviceTime.Seconds()

	// Slow threshold: past two service times an admitted ask was visibly
	// queue-delayed. Sheds/errors/degraded asks are captured regardless.
	obs.SlowAsks.SetThreshold(2 * serviceTime)

	type phaseStats struct {
		arrivals, ok, degraded, shed, errors int
	}
	phase := func(phaseSeed int64, rate float64, burst workload.BurstConfig) phaseStats {
		arrivals := workload.OpenLoop(phaseSeed, workload.OpenLoopConfig{
			Rate: rate, Duration: phaseDur,
			Tenants: []string{"free", "pro", "enterprise"},
			Burst:   burst,
		})
		st := phaseStats{arrivals: len(arrivals)}
		results := make(chan workload.AskResult, len(arrivals))
		var next atomic.Int64
		workload.Replay(context.Background(), arrivals, func(a workload.Arrival) {
			i := int(next.Add(1)) % sessionPool
			res, err := driver.Ask(sessions[i], a.Tenant, a.Query.Text, 10*time.Second)
			if err != nil {
				res = workload.AskResult{Status: -1}
			}
			results <- res
		})
		close(results)
		for res := range results {
			switch {
			case res.Degraded:
				st.degraded++
			case res.Status == 200:
				st.ok++
			case res.Shed():
				st.shed++
			default:
				st.errors++
			}
		}
		return st
	}

	// Baseline at half capacity, then burn reading; overload at 2x with
	// bursts, then burn reading. The burn is scraped from /metrics — the
	// same labeled gauges a Prometheus dashboard would chart.
	base := phase(seed+1, capacity*0.5, workload.BurstConfig{})
	baseBurn, err := maxTenantFastBurn(driver)
	if err != nil {
		return nil, fmt.Errorf("A12 baseline scrape: %w", err)
	}
	over := phase(seed+2, capacity*2, workload.BurstConfig{
		Factor: 3, On: 200 * time.Millisecond, Off: 200 * time.Millisecond,
	})
	overBurn, err := maxTenantFastBurn(driver)
	if err != nil {
		return nil, fmt.Errorf("A12 overload scrape: %w", err)
	}

	// Floors: the governor engaged but did not collapse.
	if base.arrivals == 0 || over.arrivals == 0 {
		return nil, fmt.Errorf("A12: empty schedule (base %d, overload %d arrivals)", base.arrivals, over.arrivals)
	}
	if over.shed == 0 {
		return nil, fmt.Errorf("A12: overload phase at 2x capacity shed nothing — governor never engaged")
	}
	if r := float64(over.shed) / float64(over.arrivals); r > 0.95 {
		return nil, fmt.Errorf("A12: overload shed ratio %.1f%% — admission collapsed", r*100)
	}
	if over.errors > over.arrivals/10 {
		return nil, fmt.Errorf("A12: %d/%d overload asks failed outright", over.errors, over.arrivals)
	}

	// Floors: the SLO burn moved the right way, on the scraped dashboard.
	if overBurn <= 1 {
		return nil, fmt.Errorf("A12: overload tenant fast burn %.2f, want > 1 (error budget must be burning)", overBurn)
	}
	if overBurn <= baseBurn {
		return nil, fmt.Errorf("A12: overload burn %.2f not above baseline burn %.2f", overBurn, baseBurn)
	}

	// Floors: the flight recorder explains the overload. Every exemplar
	// must carry at least one resilience event (its admit, shed, or
	// degraded decision — EventLevel debug guarantees the admit), and every
	// slow-outcome exemplar must carry a usable span tree.
	summaries := obs.SlowAsks.Summaries()
	if len(summaries) < 3 {
		return nil, fmt.Errorf("A12: %d exemplars captured during overload, want >= 3", len(summaries))
	}
	var slowExemplars, deepExemplars, minEvents int
	minEvents = 1 << 30
	outcomes := map[string]int{}
	for _, sum := range summaries {
		ex, ok := obs.SlowAsks.Get(sum.ID)
		if !ok {
			continue
		}
		outcomes[ex.Outcome]++
		if len(ex.Events) < minEvents {
			minEvents = len(ex.Events)
		}
		if len(ex.Events) == 0 {
			return nil, fmt.Errorf("A12: exemplar %d (%s, trace %s) captured no events", ex.ID, ex.Outcome, ex.Trace)
		}
		if ex.Outcome == obs.OutcomeSlow && ex.Err == "" {
			slowExemplars++
			comps := map[string]bool{}
			for _, sp := range ex.Spans {
				comps[sp.Component] = true
			}
			if len(comps) >= 4 {
				deepExemplars++
			}
		}
	}
	if slowExemplars == 0 {
		return nil, fmt.Errorf("A12: no slow-outcome exemplars captured (outcomes %v)", outcomes)
	}
	// The planned and NLQ paths (coordinator/scheduler/memo and
	// planner/relational) go at least four components deep, and the figure
	// must surface them. A per-exemplar tree floor would be unsound here:
	// asks multiplexed concurrently onto one HTTP session can anchor their
	// tag-triggered agent spans under whichever ask root is currently
	// active, so an individual exemplar's tree may legitimately be shallow.
	if deepExemplars < 3 {
		return nil, fmt.Errorf("A12: only %d/%d slow exemplars span >= 4 components — deep paths missing from the recorder",
			deepExemplars, slowExemplars)
	}

	// Floors: bounded retention. The rings must hold their configured
	// bounds no matter how hot the phases ran.
	if obs.Events.Len() > obs.Events.Cap() {
		return nil, fmt.Errorf("A12: event ring %d over capacity %d", obs.Events.Len(), obs.Events.Cap())
	}
	if obs.SlowAsks.Len() > obs.SlowAsks.Cap() {
		return nil, fmt.Errorf("A12: exemplar ring %d over capacity %d", obs.SlowAsks.Len(), obs.SlowAsks.Cap())
	}
	if n := obs.Spans.SessionCount(); n > obs.DefaultMaxSessions {
		return nil, fmt.Errorf("A12: tracer retains %d session rings, bound %d", n, obs.DefaultMaxSessions)
	}

	// Phase two: what does the recorder plane cost? A10's paired-ratio
	// methodology — fresh system per batch, memo-warm governed asks,
	// min-of-N per mode, best back-to-back pair — with the event log and
	// recorder fully off versus on at debug.
	gov := sys.GovernorStats()
	teardown()
	resilience.Deactivate()
	batch := func(recording bool) (time.Duration, error) {
		bsys, err := blueprint.New(blueprint.Config{
			Seed: seed, ModelAccuracy: 1.0,
			Governor: resilience.GovernorConfig{MaxConcurrent: 8},
		})
		if err != nil {
			return 0, err
		}
		defer bsys.Close()
		sess, err := bsys.StartSession("")
		if err != nil {
			return 0, err
		}
		defer sess.Close()
		if recording {
			obs.Events.SetLevel(obs.LevelDebug)
			obs.SlowAsks.SetThreshold(obs.DefaultSlowThreshold)
		} else {
			obs.Events.SetLevel(obs.LevelOff)
			obs.SlowAsks.SetThreshold(-1)
		}
		const utterance = "Summarize the applicants for job 3"
		for i := 0; i < 3; i++ {
			if _, err := sess.GovernedAsk(nil, "default", utterance, 10*time.Second); err != nil {
				return 0, fmt.Errorf("warmup: %w", err)
			}
		}
		runtime.GC()
		best := time.Duration(-1)
		for i := 0; i < asksPerBatch; i++ {
			start := time.Now()
			if _, err := sess.GovernedAsk(nil, "default", utterance, 10*time.Second); err != nil {
				return 0, err
			}
			if d := time.Since(start); best < 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	bestOff, bestOn := time.Duration(-1), time.Duration(-1)
	overhead := 0.0
	for trial := 0; trial < trials; trial++ {
		off, err := batch(false)
		if err != nil {
			return nil, fmt.Errorf("A12 recording-off: %w", err)
		}
		on, err := batch(true)
		if err != nil {
			return nil, fmt.Errorf("A12 recording-on: %w", err)
		}
		if r := on.Seconds()/off.Seconds() - 1; trial == 0 || r < overhead {
			overhead = r
		}
		if bestOff < 0 || off < bestOff {
			bestOff = off
		}
		if bestOn < 0 || on < bestOn {
			bestOn = on
		}
	}
	if !Short && !raceEnabled && overhead > 0.05 {
		return nil, fmt.Errorf("A12: event log + recorder overhead %.1f%% (off %s, on %s per ask), ceiling 5%%",
			overhead*100, us(bestOff), us(bestOn))
	}

	// Floors: no goroutine leak, no unbounded heap growth.
	leaked := 0
	for wait := time.Duration(0); ; wait += 20 * time.Millisecond {
		leaked = runtime.NumGoroutine() - goroutinesBefore
		if leaked <= 10 || wait > 3*time.Second {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leaked > 10 {
		return nil, fmt.Errorf("A12: %d goroutines leaked by the HTTP phases", leaked)
	}
	var heapAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&heapAfter)
	const heapBound = 256 << 20
	if grew := int64(heapAfter.HeapAlloc) - int64(heapBefore.HeapAlloc); grew > heapBound {
		return nil, fmt.Errorf("A12: heap grew %d MiB across the phases, bound %d MiB", grew>>20, int64(heapBound)>>20)
	}

	t := &Table{ID: "A12", Title: "Flight recorder: slow-ask exemplars, event log and SLO burn under real-HTTP overload"}
	t.Rows = append(t.Rows,
		Row{Series: "0.5x capacity", Metrics: []Metric{
			{Name: "arrivals", Value: fmt.Sprint(base.arrivals)},
			{Name: "ok", Value: fmt.Sprint(base.ok)},
			{Name: "shed", Value: fmt.Sprint(base.shed)},
			{Name: "degraded", Value: fmt.Sprint(base.degraded)},
			{Name: "tenant_fast_burn", Value: fmt.Sprintf("%.2f", baseBurn)},
		}},
		Row{Series: "2x capacity (bursty)", Metrics: []Metric{
			{Name: "arrivals", Value: fmt.Sprint(over.arrivals)},
			{Name: "ok", Value: fmt.Sprint(over.ok)},
			{Name: "shed", Value: fmt.Sprint(over.shed)},
			{Name: "degraded", Value: fmt.Sprint(over.degraded)},
			{Name: "tenant_fast_burn", Value: fmt.Sprintf("%.2f", overBurn)},
		}},
		Row{Series: "flight recorder", Metrics: []Metric{
			{Name: "exemplars", Value: fmt.Sprint(len(summaries))},
			{Name: "slow", Value: fmt.Sprint(outcomes[obs.OutcomeSlow])},
			{Name: "shed", Value: fmt.Sprint(outcomes[obs.OutcomeShed])},
			{Name: "degraded", Value: fmt.Sprint(outcomes[obs.OutcomeDegraded])},
			{Name: "deep_exemplars", Value: fmt.Sprint(deepExemplars)},
			{Name: "min_events", Value: fmt.Sprint(minEvents)},
			{Name: "events_retained", Value: fmt.Sprint(obs.Events.Len())},
		}},
		Row{Series: "recording off", Metrics: []Metric{
			{Name: "asks", Value: fmt.Sprint(asksPerBatch * trials)},
			{Name: "best_ask", Value: us(bestOff)},
		}},
		Row{Series: "recording on (debug)", Metrics: []Metric{
			{Name: "asks", Value: fmt.Sprint(asksPerBatch * trials)},
			{Name: "best_ask", Value: us(bestOn)},
			{Name: "overhead", Value: pct(overhead)},
		}},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("real HTTP: calibrated service time %s over the wire -> admission capacity %.0f asks/s across %d slots", serviceTime, capacity, maxConcurrent),
		fmt.Sprintf("governor ledger: admitted=%d shed=%d (tenant=%d queue_timeout=%d) peak_inflight=%d",
			gov.Admitted, gov.Shed, gov.TenantShed, gov.QueueTimeouts, gov.PeakInFlight),
		"burn rates scraped from /metrics (blueprint_slo_burn_rate labeled gauges), the dashboard path",
		"floors: overload sheds without collapsing; every exemplar has >= 1 event; >= 3 slow exemplars span >= 4 components; overload burn > 1 and > baseline; rings bounded; no goroutine/heap growth; recording overhead <= 5% in full mode")
	return t, nil
}

// maxTenantFastBurn scrapes /metrics and returns the highest fast-window
// tenant burn rate.
func maxTenantFastBurn(d *workload.HTTPDriver) (float64, error) {
	series, err := d.ScrapeMetrics()
	if err != nil {
		return 0, err
	}
	burn, found := 0.0, false
	for name, v := range series {
		if strings.HasPrefix(name, "blueprint_slo_burn_rate{") &&
			strings.Contains(name, `kind="tenant"`) &&
			strings.Contains(name, `window="fast"`) {
			found = true
			if v > burn {
				burn = v
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("no blueprint_slo_burn_rate tenant series in /metrics")
	}
	return burn, nil
}
