package session

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

func newEnv(t testing.TB) (*streams.Store, *Manager) {
	t.Helper()
	store := streams.NewStore()
	t.Cleanup(func() { store.Close() })
	reg := registry.NewAgentRegistry()
	if err := reg.Register(registry.AgentSpec{
		Name:    "GREETER",
		Inputs:  []registry.ParamSpec{{Name: "TEXT"}},
		Outputs: []registry.ParamSpec{{Name: "GREETING"}},
		Listen:  registry.ListenRule{IncludeTags: []string{"utterance"}},
	}); err != nil {
		t.Fatal(err)
	}
	f := agent.NewFactory(reg)
	f.RegisterConstructor("GREETER", func(spec registry.AgentSpec) agent.Processor {
		return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			text, _ := inv.Inputs["TEXT"].(string)
			return agent.Outputs{
				Values:  map[string]any{"GREETING": "hi, " + text},
				Display: "hi, " + text,
			}, nil
		}
	})
	return store, NewManager(store, f)
}

func TestCreateAndList(t *testing.T) {
	_, m := newEnv(t)
	s1, err := m.Create("")
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID != "session:1" {
		t.Fatalf("id = %s", s1.ID)
	}
	s2, err := m.Create("session:custom")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("session:custom"); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("err = %v", err)
	}
	ids := m.List()
	if len(ids) != 2 || ids[0] != "session:1" || ids[1] != "session:custom" {
		t.Fatalf("list = %v", ids)
	}
	got, err := m.Get("session:custom")
	if err != nil || got != s2 {
		t.Fatalf("get = %v, %v", got, err)
	}
	if _, err := m.Get("missing"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpawnAgentAndConversation(t *testing.T) {
	store, m := newEnv(t)
	s, err := m.Create("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.SpawnAgent("GREETER", agent.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Agents(); len(got) != 1 || got[0] != "GREETER" {
		t.Fatalf("agents = %v", got)
	}
	if _, err := s.Agent("GREETER"); err != nil {
		t.Fatal(err)
	}

	disp := store.Subscribe(streams.Filter{Streams: []string{agent.DisplayStream(s.ID)}}, true)
	defer disp.Cancel()

	if _, err := s.PostUserText("alice"); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-disp.C():
		if msg.Payload != "hi, alice" {
			t.Fatalf("display = %v", msg.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no display output")
	}
	if got := s.Display(); len(got) != 1 || got[0] != "hi, alice" {
		t.Fatalf("Display() = %v", got)
	}
}

func TestMembersFromSessionStream(t *testing.T) {
	_, m := newEnv(t)
	s, _ := m.Create("")
	defer s.Close()
	if _, err := s.SpawnAgent("GREETER", agent.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Members(); len(got) != 1 || got[0] != "GREETER" {
		t.Fatalf("members = %v", got)
	}
	if err := s.RemoveAgent("GREETER"); err != nil {
		t.Fatal(err)
	}
	if got := s.Members(); len(got) != 0 {
		t.Fatalf("members after exit = %v", got)
	}
	if err := s.RemoveAgent("GREETER"); !errors.Is(err, ErrAgentInactive) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateAgentRejected(t *testing.T) {
	_, m := newEnv(t)
	s, _ := m.Create("")
	defer s.Close()
	if _, err := s.SpawnAgent("GREETER", agent.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SpawnAgent("GREETER", agent.Options{}); !errors.Is(err, ErrAgentActive) {
		t.Fatalf("err = %v", err)
	}
}

func TestExtendScoping(t *testing.T) {
	store, m := newEnv(t)
	s, _ := m.Create("session:9")
	child, err := s.Extend("profile")
	if err != nil {
		t.Fatal(err)
	}
	if child.ID != "session:9:profile" {
		t.Fatalf("child id = %s", child.ID)
	}
	// Messages in the child scope appear in the parent's history.
	if _, err := child.PostUserText("nested text"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, msg := range s.History() {
		if msg.PayloadString() == "nested text" {
			found = true
		}
	}
	if !found {
		t.Fatal("child message not in parent history")
	}
	// Parent close cascades.
	s.Close()
	if got := m.List(); len(got) != 0 {
		t.Fatalf("sessions after close = %v", got)
	}
	_ = store
}

func TestUserEvent(t *testing.T) {
	store, m := newEnv(t)
	s, _ := m.Create("")
	defer s.Close()
	sub := store.Subscribe(streams.Filter{Kinds: []streams.Kind{streams.Event}}, false)
	defer sub.Cancel()
	if _, err := s.PostUserEvent(map[string]any{"action": "select", "job_id": 12}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-sub.C():
		if !msg.HasTag("ui") || msg.Kind != streams.Event {
			t.Fatalf("event = %+v", msg)
		}
		if !strings.Contains(msg.PayloadString(), "job_id") {
			t.Fatalf("payload = %s", msg.PayloadString())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event delivered")
	}
}

func TestCloseIdempotentAndAddAfterClose(t *testing.T) {
	_, m := newEnv(t)
	s, _ := m.Create("")
	s.Close()
	s.Close()
	if _, err := s.SpawnAgent("GREETER", agent.Options{}); err == nil {
		t.Fatal("spawn on closed session succeeded")
	}
}

// AwaitDisplay must wake on the display append itself (event-driven), find
// messages that raced ahead of the call, respect the `from` index, and time
// out with ErrNoDisplay.
func TestAwaitDisplayEventDriven(t *testing.T) {
	store, m := newEnv(t)
	s, _ := m.Create("")
	defer s.Close()
	display := agent.DisplayStream(s.ID)
	post := func(text string) {
		t.Helper()
		if _, err := store.Append(streams.Message{
			Stream: display, Session: s.ID, Kind: streams.Data,
			Sender: "tester", Payload: text,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Future append wakes a waiting call.
	done := make(chan struct{})
	go func() {
		defer close(done)
		out, err := s.AwaitDisplay(0, "hello", 5*time.Second)
		if err != nil || out != "hello world" {
			t.Errorf("await = %q, %v", out, err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter subscribe
	post("hello world")
	<-done

	// Replay: a message already on the stream is found without new traffic.
	out, err := s.AwaitDisplay(0, "", time.Second)
	if err != nil || out != "hello world" {
		t.Fatalf("replay await = %q, %v", out, err)
	}

	// from skips already-consumed outputs.
	post("second")
	out, err = s.AwaitDisplay(1, "", time.Second)
	if err != nil || out != "second" {
		t.Fatalf("from-indexed await = %q, %v", out, err)
	}

	// Timeout yields ErrNoDisplay.
	if _, err := s.AwaitDisplay(len(s.Display()), "", 30*time.Millisecond); !errors.Is(err, ErrNoDisplay) {
		t.Fatalf("timeout err = %v", err)
	}
}
