package relational

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"blueprint/internal/durability"
)

const testSubID = 2

// openDurable builds a DB attached to a durability engine over dir and
// recovers prior state.
func openDurable(t testing.TB, dir string) (*DB, *durability.Engine) {
	t.Helper()
	db := NewDB()
	eng, err := durability.Open(dir, durability.Options{DisableFsync: true, FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(testSubID, "relational", db, durability.WithSnapshotBarrier()); err != nil {
		t.Fatal(err)
	}
	db.SetDurable(eng.Logger(testSubID))
	if err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	return db, eng
}

func seedDurable(t testing.TB, db *DB, rows int) {
	t.Helper()
	mustExec := func(sql string, params ...any) {
		if _, err := db.Exec(sql, params...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE items (id INT, name TEXT, price FLOAT, active BOOL)`)
	mustExec(`CREATE INDEX idx_items_id ON items (id)`)
	mustExec(`CREATE ORDERED INDEX idx_items_price ON items (price)`)
	stmt, err := db.Prepare(`INSERT INTO items VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= rows; i++ {
		if _, err := stmt.Exec(i, fmt.Sprintf("item-%d", i), float64(i)*1.5, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`UPDATE items SET price = 99.5, active = FALSE WHERE id <= 10`)
	mustExec(`DELETE FROM items WHERE id > ?`, rows-5)
}

// tableDump renders every live row of a table for equality checks.
func tableDump(t testing.TB, db *DB, table string) string {
	t.Helper()
	res, err := db.Query(`SELECT * FROM ` + table + ` ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	return res.String()
}

func TestDurableReplayRecoversDMLAndDDL(t *testing.T) {
	dir := t.TempDir()
	db, eng := openDurable(t, dir)
	seedDurable(t, db, 50)
	want := tableDump(t, db, "items")
	if err := eng.Close(); err != nil { // crash-style stop: no snapshot
		t.Fatal(err)
	}

	db2, eng2 := openDurable(t, dir)
	defer eng2.Close()
	if got := tableDump(t, db2, "items"); got != want {
		t.Fatalf("replayed state differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	ti, err := db2.Table("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(ti.Indexes) != 2 {
		t.Fatalf("replayed %d indexes, want 2", len(ti.Indexes))
	}
}

func TestDurableSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	db, eng := openDurable(t, dir)
	seedDurable(t, db, 50)
	if err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations must replay on top of the restored image.
	if _, err := db.Exec(`INSERT INTO items VALUES (999, 'late', 9.5, TRUE)`); err != nil {
		t.Fatal(err)
	}
	want := tableDump(t, db, "items")
	wantVers := func(d *DB) map[string]uint64 {
		d.mu.RLock()
		defer d.mu.RUnlock()
		out := make(map[string]uint64, len(d.vers))
		for k, v := range d.vers {
			out[k] = v
		}
		return out
	}(db)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	db2, eng2 := openDurable(t, dir)
	defer eng2.Close()
	if !eng2.Stats().Recovery.SnapshotRestored {
		t.Fatal("snapshot was not restored")
	}
	if got := tableDump(t, db2, "items"); got != want {
		t.Fatalf("restored state differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	gotVers := func(d *DB) map[string]uint64 {
		d.mu.RLock()
		defer d.mu.RUnlock()
		out := make(map[string]uint64, len(d.vers))
		for k, v := range d.vers {
			out[k] = v
		}
		return out
	}(db2)
	for k, v := range wantVers {
		if gotVers[k] != v {
			t.Fatalf("schema version %s = %d after restore, want %d", k, gotVers[k], v)
		}
	}
	// Indexes must be live after restore: an indexed point query plans
	// through them and returns the right row.
	res, err := db2.Query(`SELECT name FROM items WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "item-7" {
		t.Fatalf("indexed lookup after restore returned %v", res.Rows)
	}
}

func TestDurableDropTableReplay(t *testing.T) {
	dir := t.TempDir()
	db, eng := openDurable(t, dir)
	mustExec := func(sql string) {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE scratch (id INT)`)
	mustExec(`INSERT INTO scratch VALUES (1)`)
	mustExec(`DROP TABLE scratch`)
	mustExec(`CREATE TABLE keep (id INT)`)
	mustExec(`INSERT INTO keep VALUES (42)`)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	db2, eng2 := openDurable(t, dir)
	defer eng2.Close()
	if _, err := db2.Table("scratch"); err == nil {
		t.Fatal("dropped table resurrected by replay")
	}
	res, err := db2.Query(`SELECT id FROM keep`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 42 {
		t.Fatalf("keep table not recovered: %v %v", res, err)
	}
}

// TestDurablePartialFailureReplays: a multi-row INSERT that errors midway
// keeps its earlier rows in the live store; the statement is logged anyway
// and deterministic replay reproduces exactly that partial effect, so
// recovery matches the state every later statement executed against.
func TestDurablePartialFailureReplays(t *testing.T) {
	dir := t.TempDir()
	db, eng := openDurable(t, dir)
	if _, err := db.Exec(`CREATE TABLE p (id INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO p VALUES (1), ('not-an-int')`); err == nil {
		t.Fatal("mixed-type multi-row insert should fail")
	}
	if _, err := db.Exec(`INSERT INTO p VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	want := tableDump(t, db, "p")
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	db2, eng2 := openDurable(t, dir)
	defer eng2.Close()
	if got := tableDump(t, db2, "p"); got != want {
		t.Fatalf("partial-failure state diverged after replay:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestDurableTornWALPrefix cuts the relational WAL at random offsets and
// asserts the recovered rows are always an exact prefix of the committed
// insert history.
func TestDurableTornWALPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const inserts = 60
	for trial := 0; trial < 10; trial++ {
		dir := t.TempDir()
		db, eng := openDurable(t, dir)
		if _, err := db.Exec(`CREATE TABLE seqd (id INT)`); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= inserts; i++ {
			if _, err := db.Exec(`INSERT INTO seqd VALUES (?)`, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		seg := filepath.Join(dir, "wal-00000001.log")
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, rng.Int63n(fi.Size()+1)); err != nil {
			t.Fatal(err)
		}

		db2, eng2 := openDurable(t, dir)
		res, err := db2.Query(`SELECT id FROM seqd ORDER BY id`)
		if err != nil {
			// The CREATE TABLE itself may have been cut off; then the
			// table must be entirely absent.
			if _, terr := db2.Table("seqd"); terr == nil {
				t.Fatalf("trial %d: query failed (%v) but table exists", trial, err)
			}
			eng2.Close()
			continue
		}
		for i, row := range res.Rows {
			if row[0].I != int64(i+1) {
				t.Fatalf("trial %d: recovered ids are not a prefix at %d: %v", trial, i, row[0].I)
			}
		}
		if len(res.Rows) > inserts {
			t.Fatalf("trial %d: recovered more rows than committed", trial)
		}
		eng2.Close()
	}
}

// BenchmarkDurableWrite tracks the durable-write overhead: with the scratch
// encode buffer and group-committed background flush, durable-mode insert
// throughput must stay within ~2x of the in-memory path.
func BenchmarkDurableWrite(b *testing.B) {
	run := func(b *testing.B, db *DB) {
		stmt, err := db.Prepare(`INSERT INTO bench VALUES (?, ?, ?)`)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Exec(i, "row-payload", float64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("InMemory", func(b *testing.B) {
		db := NewDB()
		if _, err := db.Exec(`CREATE TABLE bench (id INT, name TEXT, score FLOAT)`); err != nil {
			b.Fatal(err)
		}
		run(b, db)
	})
	b.Run("Durable", func(b *testing.B) {
		// Production configuration: background flush loop with real
		// fsyncs, so the number includes the full durable-mode overhead.
		db := NewDB()
		eng, err := durability.Open(b.TempDir(), durability.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		if err := eng.Register(testSubID, "relational", db, durability.WithSnapshotBarrier()); err != nil {
			b.Fatal(err)
		}
		db.SetDurable(eng.Logger(testSubID))
		if err := eng.Recover(); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE bench (id INT, name TEXT, score FLOAT)`); err != nil {
			b.Fatal(err)
		}
		run(b, db)
	})
}
