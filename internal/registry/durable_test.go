package registry

import (
	"bytes"
	"testing"
)

func TestDurableSnapshotRestorePreservesVersions(t *testing.T) {
	agents := NewAgentRegistry()
	data := NewDataRegistry()
	spec := AgentSpec{Name: "NL2Q", Description: "compile NL to SQL", Cacheable: true, Reads: []string{"hr"}}
	if err := agents.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Two real updates bump NL2Q to version 3.
	for _, desc := range []string{"v2 desc", "v3 desc"} {
		spec.Description = desc
		if err := agents.Update(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := data.Register(DataAsset{Name: "hr", Kind: KindRelational, Level: LevelDatabase, Description: "hr db"}); err != nil {
		t.Fatal(err)
	}
	if err := data.Register(DataAsset{Name: "hr.jobs", Kind: KindRelational, Level: LevelTable, Parent: "hr", Description: "jobs"}); err != nil {
		t.Fatal(err)
	}
	if err := data.Touch("hr.jobs"); err != nil { // hr.jobs v2, hr v2 (hierarchy)
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := (Durable{Agents: agents, Data: data}.Snapshot(&buf)); err != nil {
		t.Fatal(err)
	}

	// A fresh boot re-registers the base set at version 1, then restores.
	agents2 := NewAgentRegistry()
	data2 := NewDataRegistry()
	if err := agents2.Register(AgentSpec{Name: "NL2Q", Description: "compile NL to SQL"}); err != nil {
		t.Fatal(err)
	}
	notified := 0
	agents2.OnChange(func(string) { notified++ })
	if err := (Durable{Agents: agents2, Data: data2}.Restore(&buf)); err != nil {
		t.Fatal(err)
	}
	got, err := agents2.Get("nl2q")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 || got.Description != "v3 desc" {
		t.Fatalf("restored spec = v%d %q, want v3 \"v3 desc\"", got.Version, got.Description)
	}
	if notified != 0 {
		t.Fatalf("restore fired %d change notifications, want 0", notified)
	}
	jobs, err := data2.Get("hr.jobs")
	if err != nil {
		t.Fatal(err)
	}
	if jobs.Version != 2 {
		t.Fatalf("restored hr.jobs version = %d, want 2", jobs.Version)
	}
	if hits := data2.Discover("jobs table", 3); len(hits) == 0 {
		t.Fatal("restored assets are not searchable")
	}
}

func TestDurableApplyRejectsLogRecords(t *testing.T) {
	d := Durable{Agents: NewAgentRegistry(), Data: NewDataRegistry()}
	if err := d.Apply([]byte("{}")); err == nil {
		t.Fatal("Apply must reject log records for a snapshot-only subsystem")
	}
}
