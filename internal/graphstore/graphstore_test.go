package graphstore

import (
	"errors"
	"testing"
)

// newTaxonomy builds a small job-title taxonomy:
//
//	engineering
//	├── data (data scientist, senior data scientist, data analyst)
//	└── software (software engineer, ml engineer)
//
// plus a "related" edge between data scientist and ml engineer.
func newTaxonomy(t testing.TB) *Graph {
	t.Helper()
	g := NewGraph()
	nodes := []struct {
		id, label, name string
	}{
		{"engineering", "category", "Engineering"},
		{"data", "category", "Data"},
		{"software", "category", "Software"},
		{"ds", "title", "Data Scientist"},
		{"sds", "title", "Senior Data Scientist"},
		{"da", "title", "Data Analyst"},
		{"swe", "title", "Software Engineer"},
		{"mle", "title", "ML Engineer"},
	}
	for _, n := range nodes {
		if err := g.AddNode(n.id, n.label, map[string]any{"name": n.name}); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][2]string{
		{"engineering", "data"}, {"engineering", "software"},
		{"data", "ds"}, {"data", "sds"}, {"data", "da"},
		{"software", "swe"}, {"software", "mle"},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1], "child", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("ds", "mle", "related", nil); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddAndGet(t *testing.T) {
	g := newTaxonomy(t)
	n, err := g.Node("ds")
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "title" || n.Props["name"] != "Data Scientist" {
		t.Fatalf("node = %+v", n)
	}
	nodes, edges := g.Stats()
	if nodes != 8 || edges != 8 {
		t.Fatalf("stats = %d nodes %d edges", nodes, edges)
	}
}

func TestAddErrors(t *testing.T) {
	g := newTaxonomy(t)
	if err := g.AddNode("ds", "title", nil); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("err = %v", err)
	}
	if err := g.AddEdge("ds", "missing", "x", nil); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := g.AddEdge("missing", "ds", "x", nil); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Node("missing"); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestNeighbors(t *testing.T) {
	g := newTaxonomy(t)
	out, err := g.Neighbors("data", "child", Out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != "da" || out[1] != "ds" || out[2] != "sds" {
		t.Fatalf("children = %v", out)
	}
	in, err := g.Neighbors("ds", "child", In)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 1 || in[0] != "data" {
		t.Fatalf("parents = %v", in)
	}
	both, err := g.Neighbors("ds", "", Both)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 2 { // data (in), mle (out related)
		t.Fatalf("both = %v", both)
	}
	if _, err := g.Neighbors("missing", "", Out); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestTraverseSubtree(t *testing.T) {
	g := newTaxonomy(t)
	all, err := g.Traverse("engineering", "child", Out, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("subtree = %v", all)
	}
	if all[0] != "engineering" {
		t.Fatalf("start not first: %v", all)
	}
	depth1, err := g.Traverse("engineering", "child", Out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(depth1) != 3 { // engineering, data, software
		t.Fatalf("depth1 = %v", depth1)
	}
	depth0, err := g.Traverse("engineering", "child", Out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(depth0) != 1 {
		t.Fatalf("depth0 = %v", depth0)
	}
	if _, err := g.Traverse("missing", "", Out, 1); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestTraverseHandlesCycles(t *testing.T) {
	g := NewGraph()
	for _, id := range []string{"a", "b", "c"} {
		if err := g.AddNode(id, "n", nil); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.AddEdge("a", "b", "e", nil)
	_ = g.AddEdge("b", "c", "e", nil)
	_ = g.AddEdge("c", "a", "e", nil)
	out, err := g.Traverse("a", "e", Out, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("cycle traverse = %v", out)
	}
}

func TestFindNodes(t *testing.T) {
	g := newTaxonomy(t)
	hits := g.FindNodes("name", "data")
	if len(hits) != 4 { // Data category, Data Scientist, Senior DS, Data Analyst
		t.Fatalf("find = %v", hits)
	}
	hits = g.FindNodes("name", "SCIENTIST")
	if len(hits) != 2 {
		t.Fatalf("case-insensitive find = %v", hits)
	}
	if got := g.FindNodes("name", "zzz"); len(got) != 0 {
		t.Fatalf("no-match = %v", got)
	}
}

func TestNodesByLabel(t *testing.T) {
	g := newTaxonomy(t)
	titles := g.NodesByLabel("title")
	if len(titles) != 5 {
		t.Fatalf("titles = %v", titles)
	}
	for i := 1; i < len(titles); i++ {
		if titles[i-1].ID > titles[i].ID {
			t.Fatal("not sorted")
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := newTaxonomy(t)
	p, err := g.ShortestPath("da", "swe", "child")
	if err != nil {
		t.Fatal(err)
	}
	// da -> data -> engineering -> software -> swe
	if len(p) != 5 || p[0] != "da" || p[4] != "swe" {
		t.Fatalf("path = %v", p)
	}
	// The related edge shortens ds -> mle to direct.
	p, err = g.ShortestPath("ds", "mle", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("related path = %v", p)
	}
	// Self path.
	p, _ = g.ShortestPath("ds", "ds", "")
	if len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
	// Unreachable via a non-existent label.
	p, err = g.ShortestPath("ds", "swe", "nope")
	if err != nil || p != nil {
		t.Fatalf("unreachable = %v, %v", p, err)
	}
	if _, err := g.ShortestPath("missing", "ds", ""); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("err = %v", err)
	}
}
