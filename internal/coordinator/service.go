package coordinator

import (
	"sync"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/planner"
	"blueprint/internal/streams"
)

// Service runs the coordinator as a long-lived session participant: it
// listens to the session control stream for PLAN directives (emitted by the
// task planner agent or any component) and executes each plan — the "TC
// listening to any stream with a plan unrolls the plan" behaviour of Fig. 9.
type Service struct {
	c       *Coordinator
	session string
	limits  budget.Limits
	sub     *streams.Subscription
	wg      sync.WaitGroup

	mu        sync.Mutex
	results   []*Result
	extraSubs []*streams.Subscription
}

// Serve starts the coordinator service on a session. Each incoming plan is
// executed with a fresh budget under the given limits.
func (c *Coordinator) Serve(session string, limits budget.Limits) *Service {
	s := &Service{c: c, session: session, limits: limits}
	s.sub = c.store.Subscribe(streams.Filter{
		Session: session,
		Kinds:   []streams.Kind{streams.Control},
	}, false)
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *Service) loop() {
	defer s.wg.Done()
	for msg := range s.sub.C() {
		d := msg.Directive
		if d == nil || d.Op != streams.OpPlan {
			continue
		}
		payload, ok := d.Args["plan"]
		if !ok {
			continue
		}
		s.execute(payload)
	}
}

// PlanTag marks data messages carrying a plan payload.
const PlanTag = "plan"

// WatchPlans additionally consumes plan-tagged *data* messages (the task
// planner agent publishes its PLAN output parameter as data tagged "plan").
func (s *Service) WatchPlans() {
	sub := s.c.store.Subscribe(streams.Filter{
		Session:     s.session,
		Kinds:       []streams.Kind{streams.Data},
		IncludeTags: []string{PlanTag},
	}, false)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for msg := range sub.C() {
			s.execute(msg.Payload)
		}
	}()
	s.mu.Lock()
	s.extraSubs = append(s.extraSubs, sub)
	s.mu.Unlock()
}

func (s *Service) execute(payload any) {
	p, err := planner.FromJSON(payload)
	if err != nil || p.Validate() != nil {
		return
	}
	b := budget.New(s.limits)
	res, err := s.c.ExecutePlan(s.session, p, b)
	if res != nil {
		s.mu.Lock()
		s.results = append(s.results, res)
		s.mu.Unlock()
	}
	if err == nil && res != nil {
		// Surface the final outputs on the display stream for the user.
		for param, v := range res.Final {
			_, _ = s.c.store.Publish(streams.Message{
				Stream: agent.DisplayStream(s.session), Session: s.session,
				Kind: streams.Data, Sender: "coordinator", Param: param,
				Tags: []string{"result"}, Payload: v,
			})
		}
	}
}

// Results returns the plans executed so far.
func (s *Service) Results() []*Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Result(nil), s.results...)
}

// Stop cancels subscriptions and waits for in-flight executions.
func (s *Service) Stop() {
	s.sub.Cancel()
	s.mu.Lock()
	extras := s.extraSubs
	s.extraSubs = nil
	s.mu.Unlock()
	for _, sub := range extras {
		sub.Cancel()
	}
	s.wg.Wait()
}
