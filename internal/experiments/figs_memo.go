package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/coordinator"
	"blueprint/internal/memo"
	"blueprint/internal/optimizer"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
	"context"
)

// AblationMemo (A6) measures cross-session step-result memoization on a
// three-step chain of cacheable agents (FETCH -> DERIVE -> PRESENT, FETCH
// reading the "catalog" data source):
//
//   - repeated-ask: the same plan executed cold and then warm — the warm
//     run must be served entirely from memo (>=5x wall-clock in full mode).
//   - concurrent-identical-session: N sessions execute the identical plan
//     concurrently through one shared Coordinator on a fresh store —
//     single-flight dedup must coalesce them to exactly one execution per
//     step (dedup-coalesced > 0).
//   - invalidation: bumping the catalog source re-executes only FETCH;
//     DERIVE and PRESENT still hit because FETCH recomputes the same rows.
//
// The deterministic guarantees (full warm hit, dedup to one execution,
// selective re-execution) are enforced as errors so CI's smoke run fails
// fast on hit-rate collapse or dedup loss; the speedups are reported as
// measured.
func AblationMemo(seed int64) (*Table, error) {
	fetchLat, deriveLat, presentLat, sessions := 40*time.Millisecond, 25*time.Millisecond, 10*time.Millisecond, 5
	if Short {
		fetchLat, deriveLat, presentLat, sessions = 10*time.Millisecond, 6*time.Millisecond, 4*time.Millisecond, 3
	}

	store := streams.NewStore()
	defer store.Close()
	reg := registry.NewAgentRegistry()
	var execs [3]atomic.Int32
	specs := []registry.AgentSpec{
		{
			Name: "FETCH", Description: "fetch catalog rows for a query",
			Cacheable: true, Reads: []string{"catalog"},
			Inputs:  []registry.ParamSpec{{Name: "Q", Type: "text"}},
			Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:     registry.QoSProfile{CostPerCall: 0.01, Latency: fetchLat, Accuracy: 1.0},
		},
		{
			Name: "DERIVE", Description: "derive an answer from fetched rows",
			Cacheable: true,
			Inputs:    []registry.ParamSpec{{Name: "IN", Type: "text"}},
			Outputs:   []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:       registry.QoSProfile{CostPerCall: 0.005, Latency: deriveLat, Accuracy: 1.0},
		},
		{
			Name: "PRESENT", Description: "present the derived answer",
			Cacheable: true,
			Inputs:    []registry.ParamSpec{{Name: "IN", Type: "text"}},
			Outputs:   []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:       registry.QoSProfile{CostPerCall: 0.001, Latency: presentLat, Accuracy: 1.0},
		},
	}
	for _, spec := range specs {
		if err := reg.Register(spec); err != nil {
			return nil, err
		}
	}
	latencies := []time.Duration{fetchLat, deriveLat, presentLat}

	// attach starts the three chain agents in one session.
	attach := func(session string) ([]*agent.Instance, error) {
		var insts []*agent.Instance
		for i, spec := range specs {
			i := i
			name := spec.Name
			lat := latencies[i]
			inst, err := agent.Attach(store, session, agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
				execs[i].Add(1)
				select {
				case <-time.After(lat):
				case <-ctx.Done():
					return agent.Outputs{}, ctx.Err()
				}
				in, _ := inv.Inputs["Q"].(string)
				if in == "" {
					in, _ = inv.Inputs["IN"].(string)
				}
				return agent.Outputs{Values: map[string]any{"OUT": fmt.Sprintf("%s>%s", name, in)}}, nil
			}), agent.Options{DisableListen: true})
			if err != nil {
				return insts, err
			}
			insts = append(insts, inst)
		}
		return insts, nil
	}
	stopAll := func(insts []*agent.Instance) {
		for _, in := range insts {
			in.Stop()
		}
	}
	totalExecs := func() int32 { return execs[0].Load() + execs[1].Load() + execs[2].Load() }

	plan := &planner.Plan{
		ID: "a6-chain", Utterance: "the repeated enterprise ask", Intent: "open_query",
		Steps: []planner.Step{
			{ID: "s1", Agent: "FETCH", Task: "fetch",
				Bindings: map[string]planner.Binding{"Q": {FromUserText: true}}},
			{ID: "s2", Agent: "DERIVE", Task: "derive",
				Bindings: map[string]planner.Binding{"IN": {FromStep: "s1", FromParam: "OUT"}}},
			{ID: "s3", Agent: "PRESENT", Task: "present",
				Bindings: map[string]planner.Binding{"IN": {FromStep: "s2", FromParam: "OUT"}}},
		},
	}

	t := &Table{ID: "A6", Title: "Step-result memoization: repeated-ask speedup, cross-session dedup, invalidation"}

	// ---- Workload 1: repeated ask (cold, then warm) ----
	m := memo.New(64)
	c := coordinator.New(store, reg, nil, nil, coordinator.Options{Memo: m})
	insts, err := attach("session:a6-repeat")
	if err != nil {
		stopAll(insts)
		return nil, err
	}
	projColdCost, projColdLat, _, _ := optimizer.EstimatePlanWithMemo(plan, reg, m)

	start := time.Now()
	if _, err := c.ExecutePlan("session:a6-repeat", plan, nil); err != nil {
		stopAll(insts)
		return nil, err
	}
	cold := time.Since(start)

	start = time.Now()
	res, err := c.ExecutePlan("session:a6-repeat", plan, nil)
	warm := time.Since(start)
	stopAll(insts)
	if err != nil {
		return nil, err
	}
	for _, sr := range res.Steps {
		if !sr.Cached {
			return nil, fmt.Errorf("A6: hit-rate collapse — warm step %s executed instead of hitting memo", sr.StepID)
		}
	}
	if got := totalExecs(); got != 3 {
		return nil, fmt.Errorf("A6: warm run re-executed agents (%d executions, want 3)", got)
	}
	projWarmCost, projWarmLat, _, projHits := optimizer.EstimatePlanWithMemo(plan, reg, m)
	if projHits != 3 || projWarmCost != 0 {
		return nil, fmt.Errorf("A6: cache-aware projection expected 3 hits at $0, got %d at $%.4f", projHits, projWarmCost)
	}
	speedup := cold.Seconds() / warm.Seconds()
	if !Short && speedup < 5 {
		return nil, fmt.Errorf("A6: warm repeated ask only %.1fx faster than cold (want >=5x)", speedup)
	}
	t.Rows = append(t.Rows,
		Row{Series: "repeated-ask cold", Metrics: []Metric{
			{Name: "wall", Value: ms(cold)},
			{Name: "proj_cost", Value: dollars(projColdCost)},
			{Name: "proj_latency", Value: ms(projColdLat)},
		}},
		Row{Series: "repeated-ask warm", Metrics: []Metric{
			{Name: "wall", Value: ms(warm)},
			{Name: "proj_cost", Value: dollars(projWarmCost)},
			{Name: "proj_latency", Value: ms(projWarmLat)},
			{Name: "speedup", Value: fmt.Sprintf("%.1fx", speedup)},
			{Name: "hit_rate", Value: pct(m.Stats().HitRate())},
		}},
	)

	// ---- Workload 2: N concurrent identical sessions on a fresh store ----
	for i := range execs {
		execs[i].Store(0)
	}
	m2 := memo.New(64)
	c2 := coordinator.New(store, reg, nil, nil, coordinator.Options{Memo: m2})
	var all []*agent.Instance
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("session:a6-con-%d", i)
		in, err := attach(ids[i])
		all = append(all, in...)
		if err != nil {
			stopAll(all)
			return nil, err
		}
	}
	start = time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for _, id := range ids {
		wg.Add(1)
		go func(session string) {
			defer wg.Done()
			if _, err := c2.ExecutePlan(session, plan, nil); err != nil {
				errc <- err
			}
		}(id)
	}
	wg.Wait()
	conWall := time.Since(start)
	stopAll(all)
	close(errc)
	for err := range errc {
		return nil, err
	}
	st2 := m2.Stats()
	if got := totalExecs(); got != 3 {
		return nil, fmt.Errorf("A6: dedup loss — %d executions across %d identical sessions (want 3)", got, sessions)
	}
	if st2.Coalesced == 0 {
		return nil, fmt.Errorf("A6: dedup loss — no coalesced requests across %d identical sessions", sessions)
	}
	t.Rows = append(t.Rows, Row{Series: "concurrent identical sessions", Metrics: []Metric{
		{Name: "sessions", Value: fmt.Sprint(sessions)},
		{Name: "wall", Value: ms(conWall)},
		{Name: "executions", Value: fmt.Sprint(totalExecs())},
		{Name: "dedup_coalesced", Value: fmt.Sprint(st2.Coalesced)},
		{Name: "saved", Value: dollars(st2.SavedCost)},
	}})

	// ---- Workload 3: data-source invalidation re-executes only readers ----
	for i := range execs {
		execs[i].Store(0)
	}
	m2.InvalidateSource("catalog")
	insts, err = attach("session:a6-inv")
	if err != nil {
		stopAll(insts)
		return nil, err
	}
	start = time.Now()
	_, err = c2.ExecutePlan("session:a6-inv", plan, nil)
	invWall := time.Since(start)
	stopAll(insts)
	if err != nil {
		return nil, err
	}
	if f, rest := execs[0].Load(), execs[1].Load()+execs[2].Load(); f != 1 || rest != 0 {
		return nil, fmt.Errorf("A6: invalidation re-executed fetch=%d downstream=%d (want 1 and 0)", f, rest)
	}
	t.Rows = append(t.Rows, Row{Series: "after source invalidation", Metrics: []Metric{
		{Name: "wall", Value: ms(invWall)},
		{Name: "reexecuted", Value: "1/3"},
		{Name: "invalidations", Value: fmt.Sprint(m2.Stats().Invalidations)},
	}})

	t.Notes = append(t.Notes,
		"warm repeated ask served entirely from memo: zero cost charged, zero marginal critical-path latency, plan admitted at residual projection",
		fmt.Sprintf("single-flight dedup: %d identical concurrent sessions -> 1 execution per step, the rest coalesce onto the winner", sessions),
		"invalidating the catalog source re-executes only the FETCH step; DERIVE/PRESENT still hit because the recomputed rows are unchanged")
	return t, nil
}
