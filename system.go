package blueprint

import (
	"context"
	"errors"
	"fmt"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/coordinator"
	"blueprint/internal/dataplan"
	"blueprint/internal/durability"
	"blueprint/internal/hragents"
	"blueprint/internal/llm"
	"blueprint/internal/memo"
	"blueprint/internal/obs"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/resilience"
	"blueprint/internal/session"
	"blueprint/internal/streams"
	"blueprint/internal/trace"
	"blueprint/internal/workload"
)

// Durability subsystem ids: the first byte of every WAL record names the
// owning subsystem. Stable across releases — they are on disk.
const (
	subRegistries uint8 = 1
	subRelational uint8 = 2
	subMemo       uint8 = 3
	subStreams    uint8 = 4
)

// ErrNoResponse is returned when a session request produces no display
// output within the deadline.
var ErrNoResponse = errors.New("blueprint: no response before deadline")

// System is a fully wired blueprint instance: the streams database, both
// registries, the planners, the optimizer-backed coordinator, the simulated
// LLM, and the generated enterprise substrate.
type System struct {
	cfg Config

	// Store is the streams database (§V-A).
	Store *streams.Store
	// AgentRegistry maps models/APIs to agents (§V-C).
	AgentRegistry *registry.AgentRegistry
	// DataRegistry maps enterprise data (§V-D).
	DataRegistry *registry.DataRegistry
	// Factory spawns agent instances from registry specs (§V-B).
	Factory *agent.Factory
	// Sessions manages collaborative contexts (§V-E).
	Sessions *session.Manager
	// TaskPlanner produces task plans (§V-F).
	TaskPlanner *planner.TaskPlanner
	// DataPlanner produces data plans (§V-G).
	DataPlanner *dataplan.Planner
	// Coordinator executes plans under budgets (§V-H).
	Coordinator *coordinator.Coordinator
	// Memo is the coordinator's cross-session step-result memoization
	// cache (nil when Config.DisableMemo is set). Registry changes and
	// data-asset version bumps invalidate it automatically.
	Memo *memo.Store
	// Durability is the shared WAL + snapshot engine (nil unless
	// Config.DataDir is set). Close takes a final snapshot through it;
	// Snapshot and DurabilityStats expose it for operations.
	Durability *durability.Engine
	// Breakers holds the per-agent circuit breakers the scheduler
	// consults before dispatch (nil when Config.DisableBreakers is set;
	// nil is fully functional — everything is allowed).
	Breakers *resilience.Set
	// Governor is the overload-control admission governor used by
	// GovernedAsk and blueprintd (nil unless Config.Governor.MaxConcurrent
	// is set; a nil governor admits everything).
	Governor *resilience.Governor
	// SLO tracks per-tenant and per-agent SLO burn rates (Config.SLO):
	// governed asks record per tenant, the scheduler records per agent.
	// blueprintd serves it at GET /slo and exports it in /metrics.
	SLO *obs.SLOTracker
	// Model is the simulated LLM shared by LLM-backed agents.
	Model *llm.Model
	// Enterprise is the generated YourJourney substrate (§II).
	Enterprise *workload.Enterprise
	// Suite holds the case-study agents (§VI).
	Suite *hragents.Suite
}

// New builds a System from the configuration.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	ent, err := workload.Build(cfg.Seed, cfg.Scale)
	if err != nil {
		return nil, err
	}
	model := llm.New(cfg.modelConfig(), ent.KB)

	walPath := cfg.WALPath
	if cfg.DataDir != "" {
		walPath = "" // the shared durability engine persists streams
	}
	store, err := streams.Open(streams.Options{WALPath: walPath})
	if err != nil {
		return nil, err
	}
	dataReg := registry.NewDataRegistry()
	suite, err := hragents.NewSuite(ent, model, dataReg)
	if err != nil {
		store.Close()
		return nil, err
	}
	agentReg := registry.NewAgentRegistry()
	if err := suite.RegisterAll(agentReg); err != nil {
		store.Close()
		return nil, err
	}
	factory := agent.NewFactory(agentReg)
	suite.InstallConstructors(factory)

	tp := planner.New(agentReg, model, nil)
	if err := agentReg.Register(planner.Spec()); err != nil {
		store.Close()
		return nil, err
	}
	factory.RegisterConstructor(planner.AgentName, func(registry.AgentSpec) agent.Processor {
		return planner.AsAgent(tp).Process
	})

	// Cross-session step-result memoization (§IV QoS / optimizer): results
	// of Cacheable agents are reused across plans and sessions, and the
	// registries invalidate them — agent version bumps by name, data-asset
	// version bumps by the sources agents declare in Reads.
	var memoStore *memo.Store
	if !cfg.DisableMemo {
		memoStore = memo.New(cfg.MemoCapacity)
		agentReg.OnChange(func(name string) { memoStore.InvalidateAgent(name) })
		dataReg.OnChange(func(name string) { memoStore.InvalidateSource(name) })
		// Data-change seam: every write through the relational engine (DML
		// or DDL, including prepared statements) bumps the table's asset —
		// and, via the registry's hierarchy propagation, the "hr" database
		// asset — so memoized results of agents reading them are dropped
		// the moment the data changes. Writes to tables not in the
		// registry (scratch tables) are no-ops.
		ent.DB.OnWrite(func(table string) {
			_ = dataReg.Touch("hr." + table)
		})
	}

	// Durability (§I "configured to scale and restart on failure"): one
	// shared WAL + snapshot engine makes every stateful layer recoverable,
	// so a restarted blueprintd comes back warm — tables, registry
	// versions, memoized step results and stream history included. The
	// registries restore first (ascending subsystem id) so the memo
	// restore can version-check its entries against them; relational DML
	// replay re-fires OnWrite -> Touch, dropping restored memo entries
	// whose source data changed after they were logged.
	var eng *durability.Engine
	if cfg.DataDir != "" {
		eng, err = durability.Open(cfg.DataDir, durability.Options{})
		if err != nil {
			store.Close()
			return nil, err
		}
		durableReg := registry.Durable{Agents: agentReg, Data: dataReg}
		regErr := eng.Register(subRegistries, "registries", durableReg)
		if regErr == nil {
			// Logical SQL replay is not idempotent: the relational engine
			// logs through Engine.Log and snapshots under the barrier.
			regErr = eng.Register(subRelational, "relational", ent.DB, durability.WithSnapshotBarrier())
		}
		if regErr == nil && memoStore != nil {
			regErr = eng.Register(subMemo, "memo", memoStore)
		}
		if regErr == nil {
			regErr = eng.Register(subStreams, "streams", store)
		}
		if regErr != nil {
			store.Close()
			return nil, regErr
		}
		ent.DB.SetDurable(eng.Logger(subRelational))
		if memoStore != nil {
			memoStore.SetDurable(memo.DurableConfig{
				Append: eng.Logger(subMemo).Append,
				AgentVersion: func(name string) int {
					if spec, err := agentReg.Get(name); err == nil {
						return spec.Version
					}
					return 0
				},
				Validate: func(name string, version int) bool {
					spec, err := agentReg.Get(name)
					return err == nil && spec.Cacheable && spec.Version == version
				},
			})
		}
		store.SetDurable(eng.Logger(subStreams).Append)
		if err := eng.Recover(); err != nil {
			store.Close()
			_ = eng.Close()
			return nil, err
		}
		// Registry mutations made from here on are WAL-logged, so a crash no
		// longer loses post-snapshot registry changes. Attached strictly
		// after Recover: boot-time registrations are deterministic (every
		// start re-registers the same base set) and replayed records must
		// not re-log themselves.
		durableReg.AttachLog(eng.Logger(subRegistries).Append)
		if cfg.SnapshotEvery > 0 {
			eng.StartAutoSnapshot(cfg.SnapshotEvery)
		}
	}

	// Resilience (§I "configured to scale and restart on failure"): failed
	// steps retry under the latency budget, per-agent breakers stop
	// dispatching to failing agents (serving freshness-valid stale memo
	// entries instead when the policy allows), and the governor bounds
	// concurrent governed asks with fair-share load shedding.
	var breakers *resilience.Set
	if !cfg.DisableBreakers {
		breakers = resilience.NewSet(cfg.Breaker)
	}
	slo := obs.NewSLOTracker(cfg.SLO)
	coord := coordinator.New(store, agentReg, tp, model, coordinator.Options{
		RetryOnError: true,
		MaxParallel:  cfg.MaxParallel,
		Memo:         memoStore,
		Retry:        cfg.Retry,
		Breakers:     breakers,
		Degrade:      cfg.Degrade,
		SLO:          slo,
	})
	sys := &System{
		cfg:           cfg,
		Store:         store,
		AgentRegistry: agentReg,
		DataRegistry:  dataReg,
		Memo:          memoStore,
		Durability:    eng,
		Breakers:      breakers,
		Governor:      resilience.NewGovernor(cfg.Governor),
		SLO:           slo,
		Factory:       factory,
		Sessions:      session.NewManager(store, factory),
		TaskPlanner:   tp,
		DataPlanner:   suite.DataPlanner,
		Coordinator:   coord,
		Model:         model,
		Enterprise:    ent,
		Suite:         suite,
	}
	// Observability-plane knobs act on the process globals (last System
	// wins, like the func-backed instrument bridges); zero values leave the
	// globals untouched so embedding tests don't clobber each other.
	if cfg.TraceSessions > 0 {
		obs.Spans.SetMaxSessions(cfg.TraceSessions)
	}
	if cfg.SlowAskThreshold != 0 {
		obs.SlowAsks.SetThreshold(cfg.SlowAskThreshold)
	}
	if cfg.EventLevel != "" {
		if lv, err := obs.ParseLevel(cfg.EventLevel); err == nil {
			obs.Events.SetLevel(lv)
		}
	}
	sys.registerInstruments()
	return sys, nil
}

// MemoStats reports the step-result memoization counters: hits, misses,
// evictions, invalidations, dedup-coalesced requests, resident entries and
// the saved cost/latency. Zero when memoization is disabled. blueprintd
// serves it at GET /memo and folds the hit rate into /stats.
func (s *System) MemoStats() memo.Stats {
	return s.Memo.Stats()
}

// Close shuts the system down gracefully: all sessions, then — when
// durability is on — a final snapshot and a clean log close, so the next
// open restores instead of replaying. Then the stream store.
func (s *System) Close() {
	for _, id := range s.Sessions.List() {
		if sess, err := s.Sessions.Get(id); err == nil {
			sess.Close()
		}
	}
	if s.Durability != nil {
		_ = s.Durability.Snapshot()
		_ = s.Durability.Close()
	}
	_ = s.Store.Close()
}

// SimulateCrash stops the system without the final snapshot, as if the
// process died: the WAL is flushed (so tests and experiments are
// deterministic) but no snapshot boundary is written, forcing the next
// open onto the full replay path. Test/benchmark seam for the recovery
// scenarios (benchharness -fig A8, the crash-recovery property tests).
func (s *System) SimulateCrash() {
	for _, id := range s.Sessions.List() {
		if sess, err := s.Sessions.Get(id); err == nil {
			sess.Close()
		}
	}
	if s.Durability != nil {
		_ = s.Durability.Close()
	}
	_ = s.Store.Close()
}

// Snapshot takes a durability snapshot now: all subsystems serialize, the
// superseded log segments are deleted, and the next open restores from it.
// blueprintd exposes it as POST /snapshot; bpctl as the snapshot command.
func (s *System) Snapshot() error {
	if s.Durability == nil {
		return errors.New("blueprint: durability disabled (set Config.DataDir)")
	}
	return s.Durability.Snapshot()
}

// DurabilityStats reports the engine's counters (zero when durability is
// disabled): appends, group-commit fsyncs, snapshots, resident log bytes
// and the recovery profile of this process's start.
func (s *System) DurabilityStats() durability.Stats {
	if s.Durability == nil {
		return durability.Stats{}
	}
	return s.Durability.Stats()
}

// GovernorStats reports the overload governor's admission ledger (zeros
// when admission control is disabled): admitted, shed (with the tenant and
// queue-timeout breakdowns), in-flight, queued and the in-flight peak.
// blueprintd folds it into /stats; bpctl top renders it as the resilience
// line.
func (s *System) GovernorStats() resilience.GovernorStats {
	return s.Governor.Stats()
}

// BreakerStates snapshots every per-agent circuit breaker's state (nil when
// breakers are disabled or no agent has been dispatched yet).
func (s *System) BreakerStates() map[string]resilience.State {
	return s.Breakers.States()
}

// StandardAgents is the agent set spawned into every new session.
var StandardAgents = []string{
	hragents.AgenticEmployer, hragents.IntentClassifier, hragents.NL2Q,
	hragents.SQLExecutor, hragents.QuerySummarizer, hragents.Summarizer,
	hragents.Ranker, hragents.Profiler, hragents.JobMatcher,
	hragents.Presenter, hragents.Advisor,
}

// Session is a live conversational session: the case-study agents listening
// on its streams plus a coordinator service executing emitted plans.
type Session struct {
	*session.Session
	sys *System
	svc *coordinator.Service
}

// StartSession opens a session (auto-named when id is empty), spawns the
// standard agents and starts the coordinator service.
func (s *System) StartSession(id string) (*Session, error) {
	base, err := s.Sessions.Create(id)
	if err != nil {
		return nil, err
	}
	if !s.cfg.DisableStandardAgents {
		for _, name := range StandardAgents {
			if _, err := base.SpawnAgent(name, agent.Options{}); err != nil {
				base.Close()
				return nil, fmt.Errorf("blueprint: spawning %s: %w", name, err)
			}
		}
	}
	svc := s.Coordinator.Serve(base.ID, s.cfg.Budget)
	svc.WatchPlans()
	return &Session{Session: base, sys: s, svc: svc}, nil
}

// Close stops the coordinator service and the underlying session.
func (sess *Session) Close() {
	sess.svc.Stop()
	sess.Session.Close()
}

// Ask posts a user utterance and waits for the next display output,
// returning it. The architecture is fully asynchronous; Ask is the
// convenience wrapper for request/response usage.
//
// Ask opens the session's root span: until the answer arrives, every
// component the ask flows through — tag-triggered agents, the coordinator's
// plan execution, scheduler steps, memo lookups, relational statements —
// anchors its spans beneath it, so GET /trace/{session} (and bpctl trace)
// shows the full timed tree of the ask.
func (sess *Session) Ask(text string, timeout time.Duration) (string, error) {
	return sess.AskCtx(context.Background(), text, timeout)
}

// AskCtx is Ask with a context carrying the ask's trace id (obs.WithTraceID;
// one is minted when absent). Asks that exceed the flight recorder's
// threshold or error are captured as exemplars — span tree, overlapping
// events, cost breakdown — addressable by the trace id.
func (sess *Session) AskCtx(ctx context.Context, text string, timeout time.Duration) (string, error) {
	tid := obs.TraceIDFrom(ctx)
	if tid == "" {
		tid = obs.NewTraceID(sess.ID)
	}
	start := time.Now()
	evStart := obs.Events.Seq()
	out, root, err := sess.askCore(tid, text, timeout)
	sess.recordAsk(askRecord{
		trace: tid, text: text, start: start, dur: time.Since(start),
		evStart: evStart, root: root, err: err,
	})
	return out, err
}

// quiesceWait bounds how long an exemplar capture waits for the ask's
// laggard spans (agents end theirs a hair after the answer displays).
const quiesceWait = 50 * time.Millisecond

// askCore runs the ask under its root span and the ask-level instruments,
// returning the answer and the root span (nil when tracing is off).
func (sess *Session) askCore(tid, text string, timeout time.Duration) (string, *obs.Span, error) {
	sp := obs.Spans.StartRoot(sess.ID, "session", "ask")
	sp.SetAttr("text", obs.Truncate(text, 80))
	sp.SetAttr("trace", tid)
	defer sp.End()
	mAsks.Inc()
	var started time.Time
	if obs.On() {
		started = time.Now()
	}
	defer mAskLatency.ObserveSince(started)

	before := len(sess.Display())
	if _, err := sess.PostUserText(text); err != nil {
		return "", sp, err
	}
	out, err := sess.awaitDisplay(before, "", timeout)
	return out, sp, err
}

// askRecord carries one finished ask's identity and outcome to recordAsk.
type askRecord struct {
	trace   string
	tenant  string // "" outside the governed path (no tenant SLO series)
	text    string
	start   time.Time
	dur     time.Duration
	evStart uint64    // event-log cursor at ask start (the exemplar's window)
	root    *obs.Span // root span (nil = no span tree, e.g. shed before execution)
	outcome string    // "" = classify: error when err != nil, else slow-by-threshold
	err     error
}

// shedSampler thins shed-ask exemplar captures: under sustained overload
// every arrival sheds, and unsampled capture would wash the slow/degraded
// exemplars (the ones with span evidence) out of the recorder ring.
var shedSampler = obs.NewSampler(4)

// recordAsk is the per-ask observability funnel shared by AskCtx and
// GovernedAsk: it feeds the tenant's SLO series and captures a flight
// recorder exemplar when the ask was slow, failed, degraded or shed.
func (sess *Session) recordAsk(rec askRecord) {
	if rec.tenant != "" {
		// Sheds and degraded (stale) serves burn the tenant's error budget
		// alongside outright errors: the SLO promises a fresh answer in
		// time, and none of the three delivered one.
		bad := rec.err != nil ||
			rec.outcome == obs.OutcomeShed || rec.outcome == obs.OutcomeDegraded
		sess.sys.SLO.Record(obs.SLOTenant, rec.tenant, rec.dur, bad)
	}
	outcome := rec.outcome
	if outcome == "" && rec.err != nil {
		outcome = obs.OutcomeError
	}
	rcd := obs.SlowAsks
	if !rcd.ShouldCapture(rec.dur, outcome) {
		return
	}
	if outcome == "" {
		outcome = obs.OutcomeSlow
	}
	if outcome == obs.OutcomeShed && !shedSampler.Allow() {
		return
	}
	ex := obs.Exemplar{
		Trace: rec.trace, Session: sess.ID, Tenant: rec.tenant,
		Text: obs.Truncate(rec.text, 120), Start: rec.start, Dur: rec.dur,
		Outcome: outcome,
	}
	if rec.err != nil {
		ex.Err = rec.err.Error()
	}
	if rec.root != nil {
		ex.Spans = quiescedTree(sess.ID, rec.root)
	}
	ex.Events = filterAskEvents(obs.Events.Since(rec.evStart), sess.ID, rec.trace)
	// The cost breakdown comes from the plan the ask executed — the most
	// recent result of the session's coordinator service (asks serialize
	// per session, so "last completed" is this ask's plan whenever one ran).
	if rec.root != nil {
		if results := sess.svc.Results(); len(results) > 0 {
			ex.Breakdown = breakdownOf(results[len(results)-1])
		}
	}
	rcd.Capture(ex)
}

// quiescedTree snapshots an ask's span tree for an exemplar, waiting
// (bounded by quiesceWait) for the tree to finish landing first. The answer
// displays the moment the last agent posts it — a hair before that agent's
// span, and its coordinator ancestors, End into the ring. Two signals
// compose: the root's open-span counter covers spans already started, and a
// stability settle (two consecutive identical-size reads) covers the
// cross-stream handoff gap where one stage's span has ended but the next
// stage's has not started yet, so the counter transiently reads zero. This
// path only runs for asks that were already slow, degraded or failed, so
// the short wait is free.
func quiescedTree(session string, root *obs.Span) []obs.SpanData {
	deadline := time.Now().Add(quiesceWait)
	tree := obs.Spans.Tree(session, root.ID())
	for stable := 0; stable < 2 && time.Now().Before(deadline); {
		time.Sleep(200 * time.Microsecond)
		if root.OpenInTree() > 0 {
			stable = 0
			continue
		}
		next := obs.Spans.Tree(session, root.ID())
		if len(next) != len(tree) {
			stable = 0
		} else {
			stable++
		}
		tree = next
	}
	return tree
}

// breakdownOf summarizes a coordinator result for an exemplar.
func breakdownOf(res *coordinator.Result) *obs.CostBreakdown {
	bd := &obs.CostBreakdown{
		PlanID:  res.PlanID,
		Cost:    res.Budget.CostSpent,
		Steps:   len(res.Steps),
		Retries: res.Retries,
		Replans: res.Replans,
		Elapsed: res.Budget.Latency,
	}
	for _, st := range res.Steps {
		if st.Cached {
			bd.CachedSteps++
		}
		if st.Degraded {
			bd.DegradedSteps++
		}
	}
	return bd
}

// filterAskEvents keeps the events belonging to one ask's window: events
// tagged with the ask's trace id or session, plus untagged process-global
// events (breaker transitions, WAL group commits) that overlapped it.
// Events tagged with a *different* trace or session are concurrent
// neighbors' and are dropped.
func filterAskEvents(events []obs.Event, session, trace string) []obs.Event {
	out := events[:0]
	for _, e := range events {
		switch {
		case trace != "" && e.Trace == trace:
		case e.Session == session && e.Session != "":
		case e.Trace == "" && e.Session == "":
		default:
			continue
		}
		out = append(out, e)
	}
	return out
}

// askAgent is the synthetic memo namespace for whole-ask answers: governed
// asks memoize their display answer under it so that, during overload, a
// shed repeat ask can be answered from the stale entry instead of a bare
// 429. Entries read the whole "hr" database, so any relational write
// invalidates them (stale answers are stale only in time, never in version).
const askAgent = "__ask__"

// Answer is the result of a governed ask.
type Answer struct {
	// Text is the display answer.
	Text string
	// Degraded reports the answer was served from a stale memoized entry
	// during overload instead of being executed.
	Degraded bool
	// StaleFor is the served entry's age when Degraded.
	StaleFor time.Duration
	// TraceID correlates the answer with its span tree, events and any
	// flight-recorder exemplar (blueprintd returns it as X-Trace-Id).
	TraceID string
}

// GovernedAsk is Ask behind the overload governor: the ask first claims an
// admission slot for its tenant (waiting, bounded, when the daemon is at
// capacity). A shed ask is answered from a freshness-valid stale memoized
// answer when graceful degradation allows it — marked Degraded — and
// otherwise fails with a *resilience.OverloadError carrying the advisory
// Retry-After (blueprintd maps it to HTTP 429). Admitted asks execute
// normally and memoize their answer for future degraded serves. A nil
// governor (Config.Governor unset) admits everything immediately.
func (sess *Session) GovernedAsk(ctx context.Context, tenant, text string, timeout time.Duration) (Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tid := obs.TraceIDFrom(ctx)
	if tid == "" {
		tid = obs.NewTraceID(sess.ID)
		ctx = obs.WithTraceID(ctx, tid)
	}
	start := time.Now()
	evStart := obs.Events.Seq()
	rec := askRecord{trace: tid, tenant: tenant, text: text, start: start, evStart: evStart}

	release, err := sess.sys.Governor.Admit(ctx, tenant)
	if err != nil {
		if ans, ok := sess.staleAnswer(text); ok {
			ans.TraceID = tid
			if obs.Events.On(obs.LevelWarn) {
				obs.Events.Append(obs.Event{
					Level: obs.LevelWarn, Component: "session", Kind: "degraded-ask",
					Session: sess.ID, Trace: tid,
					Attrs: []obs.Attr{
						{Key: "tenant", Value: tenant},
						{Key: "stale_for", Value: ans.StaleFor.String()},
					},
				})
			}
			rec.dur, rec.outcome = time.Since(start), obs.OutcomeDegraded
			sess.recordAsk(rec)
			return ans, nil
		}
		rec.dur, rec.outcome, rec.err = time.Since(start), obs.OutcomeShed, err
		sess.recordAsk(rec)
		return Answer{TraceID: tid}, err
	}
	defer release()
	out, root, askErr := sess.askCore(tid, text, timeout)
	rec.dur, rec.root, rec.err = time.Since(start), root, askErr
	if askErr != nil {
		sess.recordAsk(rec)
		return Answer{TraceID: tid}, askErr
	}
	sess.rememberAnswer(text, out)
	sess.recordAsk(rec)
	return Answer{Text: out, TraceID: tid}, nil
}

// askKey derives the memo key of an utterance's whole-ask answer.
func askKey(text string) (memo.Key, bool) {
	key, err := memo.ComputeKey(askAgent, 1, map[string]any{"text": text})
	return key, err == nil
}

// rememberAnswer memoizes a completed ask's answer for degraded serving.
func (sess *Session) rememberAnswer(text, out string) {
	sys := sess.sys
	if sys.Memo == nil || sys.cfg.Degrade.Disabled {
		return
	}
	if key, ok := askKey(text); ok {
		sys.Memo.Put(key, askAgent, []string{"hr"}, sys.cfg.AskFreshness, memo.Entry{
			Outputs: map[string]any{"text": out},
		})
	}
}

// staleAnswer attempts the graceful-degradation path for a shed ask: a
// resident memoized answer for the same utterance, within the staleness
// bound Config.Degrade derives from Config.AskFreshness.
func (sess *Session) staleAnswer(text string) (Answer, bool) {
	sys := sess.sys
	if sys.Memo == nil || sys.cfg.Degrade.Disabled {
		return Answer{}, false
	}
	key, ok := askKey(text)
	if !ok {
		return Answer{}, false
	}
	ent, age, ok := sys.Memo.GetStale(key)
	if !ok || !sys.cfg.Degrade.Allows(sys.cfg.AskFreshness, age) {
		return Answer{}, false
	}
	out, _ := ent.Outputs["text"].(string)
	if out == "" {
		return Answer{}, false
	}
	sys.Governor.CountDegraded()
	return Answer{Text: out, Degraded: true, StaleFor: age}, true
}

// Click posts a UI event (e.g. selecting a job) and waits for the resulting
// display output (Fig. 9). Like Ask, it roots a span tree for the duration.
func (sess *Session) Click(event map[string]any, timeout time.Duration) (string, error) {
	sp := obs.Spans.StartRoot(sess.ID, "session", "click")
	defer sp.End()
	before := len(sess.Display())
	if _, err := sess.PostUserEvent(event); err != nil {
		return "", err
	}
	return sess.awaitDisplay(before, "", timeout)
}

// awaitDisplay waits, event-driven (no polling — see session.AwaitDisplay),
// for a display message beyond index `from` containing substr (empty matches
// anything).
func (sess *Session) awaitDisplay(from int, substr string, timeout time.Duration) (string, error) {
	out, err := sess.Session.AwaitDisplay(from, substr, timeout)
	if err != nil {
		return "", fmt.Errorf("%w (%s)", ErrNoResponse, timeout)
	}
	return out, nil
}

// ExecuteUtterance runs the full §V pipeline synchronously: plan the
// utterance with the task planner, then execute the plan with the
// coordinator under a fresh budget. It returns the coordinator result (and
// the plan used).
func (sess *Session) ExecuteUtterance(text string) (*coordinator.Result, *planner.Plan, error) {
	sp := obs.Spans.StartRoot(sess.ID, "session", "utterance")
	sp.SetAttr("text", obs.Truncate(text, 80))
	defer sp.End()
	p, err := sess.sys.TaskPlanner.Plan(text)
	if err != nil {
		return nil, nil, err
	}
	b := budget.New(sess.sys.cfg.Budget)
	res, err := sess.sys.Coordinator.ExecutePlan(sess.ID, p, b)
	return res, p, err
}

// Flow returns the session's observed message flow (for debugging and the
// Fig. 9/10 verifications).
func (sess *Session) Flow() []trace.Step {
	return trace.Flow(sess.Store(), sess.ID)
}

// PlanResults returns the results of plans executed by the session's
// coordinator service.
func (sess *Session) PlanResults() []*coordinator.Result {
	return sess.svc.Results()
}
