// Package agent implements the blueprint's agent runtime (§V-B, Figs. 3-4):
// agents as compute entities with declared input/output parameters and a
// processor() function, activated either centrally (EXECUTE_AGENT control
// messages from the task coordinator) or in a decentralized way (monitoring
// stream tags under inclusion/exclusion rules). Multi-parameter agents are
// triggered through a PetriNet-inspired mechanism: every input parameter is
// a place fed by stream messages; when all places hold a token, a transition
// fires and the processor receives the full input tuple. Each agent instance
// owns a worker pool so a triggered agent keeps listening while workers
// execute (§V-B).
package agent

import (
	"context"
	"errors"
	"fmt"
	"time"

	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

// Control operations specific to the agent runtime.
const (
	// OpAgentDone reports a completed invocation with its QoS actuals.
	OpAgentDone = "AGENT_DONE"
	// OpAgentError reports a failed invocation.
	OpAgentError = "AGENT_ERROR"
)

// Invocation is the prepared input tuple for one processor call.
type Invocation struct {
	// Session is the session scope of the triggering work.
	Session string
	// Inputs binds each input parameter name to its value.
	Inputs map[string]any
	// Trigger is the message that fired the transition (the control message
	// for centralized activation, the last token for decentralized).
	Trigger streams.Message
	// ReplyStream, when set, is where outputs must be published (set by the
	// coordinator); otherwise the agent's default output streams are used.
	ReplyStream string
	// InvocationID correlates DONE/ERROR reports with requests.
	InvocationID string
	// TraceParent is the caller's span token (obs.Span.Token), carried in
	// the EXECUTE_AGENT directive so the trace survives the stream boundary:
	// the runtime resumes the span tree under it. Empty for decentralized
	// (tag-triggered) activations, which anchor to the session's active root.
	TraceParent string
	// Deadline is the caller's absolute completion deadline (zero = none),
	// carried in the EXECUTE_AGENT directive as "deadline_ms". The runtime
	// bounds the processor context at min(Options.Timeout, time until
	// Deadline), so a plan with little latency budget left cannot have one
	// step run for the full default timeout.
	Deadline time.Time
}

// Usage reports the QoS actuals of one invocation, folded into the session
// budget by the coordinator.
type Usage struct {
	// Cost in dollars.
	Cost float64 `json:"cost"`
	// Latency of the invocation (simulated or measured).
	Latency time.Duration `json:"latency"`
	// Accuracy estimate in [0,1] (0 = unknown).
	Accuracy float64 `json:"accuracy,omitempty"`
}

// Outputs is the result of one processor call.
type Outputs struct {
	// Values binds output parameter names to values.
	Values map[string]any
	// Tags are appended to every output message (in addition to the
	// parameter name tag).
	Tags []string
	// Usage carries QoS actuals; if zero, the spec's QoS profile is used.
	Usage Usage
	// Display, when set, is a user-facing rendering published to the
	// session's display stream.
	Display string
}

// Processor is the agent's logic (§V-B "agents utilize a processor()
// function to handle incoming data and instructions").
type Processor func(ctx context.Context, inv Invocation) (Outputs, error)

// Agent binds a registry spec to its processor.
type Agent struct {
	Spec    registry.AgentSpec
	Process Processor
}

// New creates an agent from a spec and processor.
func New(spec registry.AgentSpec, p Processor) *Agent {
	return &Agent{Spec: spec, Process: p}
}

// Validate checks that the agent is well-formed.
func (a *Agent) Validate() error {
	if a.Spec.Name == "" {
		return errors.New("agent: spec name required")
	}
	if a.Process == nil {
		return fmt.Errorf("agent %s: processor required", a.Spec.Name)
	}
	seen := map[string]bool{}
	for _, p := range a.Spec.Inputs {
		if p.Name == "" {
			return fmt.Errorf("agent %s: unnamed input", a.Spec.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("agent %s: duplicate input %s", a.Spec.Name, p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// TriggerPolicy selects how tokens from multiple places are paired into
// input tuples (Fig. 4: "agent properties can define various configurations
// for triggering, such as pairing tokens from multiple streams").
type TriggerPolicy string

const (
	// PairZip consumes one token per place in FIFO order: the i-th token of
	// every place forms the i-th tuple.
	PairZip TriggerPolicy = "zip"
	// PairLatest keeps only the newest token per place and fires on every
	// arrival once all places are occupied; tokens are not consumed, so a
	// slow stream's last value is reused (sticky joins).
	PairLatest TriggerPolicy = "latest"
)

// PolicyFromSpec reads the trigger policy from spec properties
// ("trigger_policy"), defaulting to PairZip.
func PolicyFromSpec(spec registry.AgentSpec) TriggerPolicy {
	if spec.Properties != nil {
		if v, ok := spec.Properties["trigger_policy"].(string); ok {
			switch TriggerPolicy(v) {
			case PairLatest:
				return PairLatest
			case PairZip:
				return PairZip
			}
		}
	}
	return PairZip
}
