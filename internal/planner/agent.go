package planner

import (
	"context"

	"blueprint/internal/agent"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

// AgentName is the task planner's registry name.
const AgentName = "TASKPLANNER"

// Spec returns the planner's registry spec: it listens to user utterances
// and emits plans ("we model the task planner as an agent itself", §V-F).
func Spec() registry.AgentSpec {
	return registry.AgentSpec{
		Name:        AgentName,
		Description: "task planner: interprets user requests and devises a task plan DAG over available agents",
		Inputs:      []registry.ParamSpec{{Name: "UTTERANCE", Type: "text", Description: "user request"}},
		Outputs:     []registry.ParamSpec{{Name: "PLAN", Type: "plan", Description: "task plan DAG"}},
		Listen:      registry.ListenRule{IncludeTags: []string{"utterance"}, ExcludeTags: []string{"planned"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.002, Accuracy: 0.9},
	}
}

// AsAgent wraps the planner as a stream-attached agent. Each utterance
// produces a PLAN output message tagged "plan", which the task coordinator
// listens for, plus a PLAN control directive for components that prefer the
// control channel.
func AsAgent(tp *TaskPlanner) *agent.Agent {
	return agent.New(Spec(), func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		utterance, _ := inv.Inputs["UTTERANCE"].(string)
		plan, err := tp.Plan(utterance)
		if err != nil {
			return agent.Outputs{}, err
		}
		return agent.Outputs{
			Values: map[string]any{"PLAN": plan.ToJSON()},
			Tags:   []string{"plan"},
		}, nil
	})
}

// EmitPlan publishes a plan as a PLAN control directive on the session's
// control stream (the §V-F contract: "the task planner outputs the plan to
// a stream to be executed").
func EmitPlan(store *streams.Store, session string, p *Plan) error {
	_, err := store.Append(streams.Message{
		Stream: agent.ControlStream(session),
		Kind:   streams.Control,
		Sender: AgentName,
		Directive: &streams.Directive{
			Op:   streams.OpPlan,
			Args: map[string]any{"plan": p.ToJSON()},
		},
	})
	return err
}
