package relational

import (
	"errors"
	"strings"
	"testing"
)

// newJobsDB builds the canonical JOBS/COMPANIES fixture used across tests,
// mirroring the paper's HR scenario.
func newJobsDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE jobs (id INT, title TEXT, city TEXT, company_id INT, salary INT, remote BOOL)`)
	mustExec(t, db, `CREATE TABLE companies (id INT, name TEXT, size TEXT)`)
	rows := []string{
		`(1, 'Data Scientist', 'San Francisco', 1, 180000, FALSE)`,
		`(2, 'Senior Data Scientist', 'Oakland', 1, 210000, TRUE)`,
		`(3, 'ML Engineer', 'San Jose', 2, 190000, FALSE)`,
		`(4, 'Data Analyst', 'New York', 3, 120000, FALSE)`,
		`(5, 'Data Scientist', 'Palo Alto', 2, 185000, TRUE)`,
		`(6, 'Software Engineer', 'San Francisco', 3, 175000, FALSE)`,
		`(7, 'Research Scientist', 'Berkeley', 2, 200000, FALSE)`,
		`(8, 'Data Scientist', 'Seattle', 3, 170000, TRUE)`,
	}
	mustExec(t, db, `INSERT INTO jobs VALUES `+strings.Join(rows, ", "))
	mustExec(t, db, `INSERT INTO companies VALUES (1, 'Acme AI', 'large'), (2, 'DataWorks', 'mid'), (3, 'BigCorp', 'large')`)
	return db
}

func mustExec(t testing.TB, db *DB, sql string, params ...any) int {
	t.Helper()
	n, err := db.Exec(sql, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t testing.TB, db *DB, sql string, params ...any) *Result {
	t.Helper()
	res, err := db.Query(sql, params...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT title, city FROM jobs WHERE id = 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "Data Scientist" || res.Rows[0][1].S != "San Francisco" {
		t.Fatalf("row = %v", res.Rows[0])
	}
	if res.Columns[0] != "title" || res.Columns[1] != "city" {
		t.Fatalf("cols = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT * FROM companies`)
	if len(res.Columns) != 3 || len(res.Rows) != 3 {
		t.Fatalf("star = %v rows=%d", res.Columns, len(res.Rows))
	}
}

func TestWhereOperators(t *testing.T) {
	db := newJobsDB(t)
	cases := []struct {
		sql  string
		want int
	}{
		{`SELECT id FROM jobs WHERE salary > 180000`, 4},
		{`SELECT id FROM jobs WHERE salary >= 180000`, 5},
		{`SELECT id FROM jobs WHERE salary < 150000`, 1},
		{`SELECT id FROM jobs WHERE salary != 120000`, 7},
		{`SELECT id FROM jobs WHERE remote = TRUE`, 3},
		{`SELECT id FROM jobs WHERE title = 'Data Scientist' AND city = 'Seattle'`, 1},
		{`SELECT id FROM jobs WHERE city = 'Oakland' OR city = 'Berkeley'`, 2},
		{`SELECT id FROM jobs WHERE NOT remote = TRUE`, 5},
		{`SELECT id FROM jobs WHERE salary BETWEEN 170000 AND 190000`, 5},
		{`SELECT id FROM jobs WHERE salary NOT BETWEEN 170000 AND 190000`, 3},
		{`SELECT id FROM jobs WHERE city IN ('San Francisco', 'Oakland', 'Palo Alto')`, 4},
		{`SELECT id FROM jobs WHERE city NOT IN ('San Francisco', 'Oakland', 'Palo Alto')`, 4},
		{`SELECT id FROM jobs WHERE title LIKE '%data%'`, 5},
		{`SELECT id FROM jobs WHERE title LIKE 'data sc%'`, 3},
		{`SELECT id FROM jobs WHERE title NOT LIKE '%data%'`, 3},
		{`SELECT id FROM jobs WHERE title LIKE '_L Engineer'`, 1},
	}
	for _, c := range cases {
		res := mustQuery(t, db, c.sql)
		if len(res.Rows) != c.want {
			t.Errorf("%s: rows = %d, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestIsNull(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'x'), (2, NULL)`)
	res := mustQuery(t, db, `SELECT a FROM t WHERE b IS NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("IS NULL = %v", res.Rows)
	}
	res = mustQuery(t, db, `SELECT a FROM t WHERE b IS NOT NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("IS NOT NULL = %v", res.Rows)
	}
	// Comparisons with NULL are never true.
	res = mustQuery(t, db, `SELECT a FROM t WHERE b = NULL`)
	if len(res.Rows) != 0 {
		t.Fatalf("= NULL matched %v", res.Rows)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT id, salary FROM jobs ORDER BY salary DESC LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("limit rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].I != 210000 || res.Rows[2][1].I != 190000 {
		t.Fatalf("order = %v", res.Rows)
	}
	res = mustQuery(t, db, `SELECT id FROM jobs ORDER BY id ASC LIMIT 2 OFFSET 3`)
	if len(res.Rows) != 2 || res.Rows[0][0].I != 4 || res.Rows[1][0].I != 5 {
		t.Fatalf("offset = %v", res.Rows)
	}
	// Multi-key ordering with ties.
	res = mustQuery(t, db, `SELECT title, id FROM jobs ORDER BY title ASC, id DESC`)
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a[0].S == b[0].S && a[1].I < b[1].I {
			t.Fatalf("tie-break wrong at %d: %v", i, res.Rows)
		}
	}
	// OFFSET beyond result set.
	res = mustQuery(t, db, `SELECT id FROM jobs OFFSET 100`)
	if len(res.Rows) != 0 {
		t.Fatalf("offset beyond end = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT DISTINCT title FROM jobs WHERE title LIKE '%data scientist%'`)
	if len(res.Rows) != 2 {
		t.Fatalf("distinct = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT COUNT(*) AS n, MIN(salary), MAX(salary), AVG(salary) FROM jobs`)
	if res.Rows[0][0].I != 8 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].I != 120000 || res.Rows[0][2].I != 210000 {
		t.Fatalf("min/max = %v", res.Rows[0])
	}
	if res.Columns[0] != "n" {
		t.Fatalf("alias = %v", res.Columns)
	}
	res = mustQuery(t, db, `SELECT SUM(salary) FROM jobs WHERE city = 'San Francisco'`)
	if res.Rows[0][0].I != 355000 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}
	res = mustQuery(t, db, `SELECT COUNT(DISTINCT title) FROM jobs`)
	if res.Rows[0][0].I != 6 {
		t.Fatalf("count distinct = %v", res.Rows[0][0])
	}
	// Aggregate over empty input yields one row with NULL/0.
	res = mustQuery(t, db, `SELECT COUNT(*), SUM(salary) FROM jobs WHERE id = 999`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("empty agg = %v", res.Rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT company_id, COUNT(*) AS n, AVG(salary) AS avg_sal FROM jobs GROUP BY company_id ORDER BY company_id`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].I != 1 || res.Rows[0][1].I != 2 {
		t.Fatalf("group 1 = %v", res.Rows[0])
	}
	res = mustQuery(t, db, `SELECT company_id, COUNT(*) AS n FROM jobs GROUP BY company_id HAVING COUNT(*) >= 3 ORDER BY company_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("having = %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT jobs.title, companies.name FROM jobs JOIN companies ON jobs.company_id = companies.id WHERE jobs.city = 'San Francisco' ORDER BY jobs.title`)
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	if res.Rows[0][1].S != "Acme AI" || res.Rows[1][1].S != "BigCorp" {
		t.Fatalf("join = %v", res.Rows)
	}
}

func TestJoinWithAliases(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT j.title, c.name FROM jobs j INNER JOIN companies c ON j.company_id = c.id WHERE c.size = 'mid' ORDER BY j.title`)
	if len(res.Rows) != 3 {
		t.Fatalf("aliased join = %v", res.Rows)
	}
	// ON written in either order works.
	res2 := mustQuery(t, db, `SELECT j.title FROM jobs j JOIN companies c ON c.id = j.company_id WHERE c.size = 'mid'`)
	if len(res2.Rows) != 3 {
		t.Fatalf("flipped ON = %v", res2.Rows)
	}
}

func TestLeftJoin(t *testing.T) {
	db := newJobsDB(t)
	mustExec(t, db, `INSERT INTO jobs VALUES (9, 'Orphan Role', 'Nowhere', 99, 100000, FALSE)`)
	res := mustQuery(t, db, `SELECT j.id, c.name FROM jobs j LEFT JOIN companies c ON j.company_id = c.id WHERE j.id = 9`)
	if len(res.Rows) != 1 {
		t.Fatalf("left join rows = %v", res.Rows)
	}
	if !res.Rows[0][1].IsNull() {
		t.Fatalf("left join should null-pad: %v", res.Rows[0])
	}
}

func TestGroupByJoin(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT c.name, COUNT(*) AS openings FROM jobs j JOIN companies c ON j.company_id = c.id GROUP BY c.name ORDER BY openings DESC, name ASC`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].I != 3 {
		t.Fatalf("top group = %v", res.Rows[0])
	}
}

func TestParams(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT id FROM jobs WHERE title = ? AND salary > ?`, "Data Scientist", 175000)
	if len(res.Rows) != 2 {
		t.Fatalf("param rows = %v", res.Rows)
	}
	if _, err := db.Query(`SELECT id FROM jobs WHERE title = ?`); err == nil {
		t.Fatal("expected missing-parameter error")
	}
}

func TestIndexUseEquality(t *testing.T) {
	db := newJobsDB(t)
	mustExec(t, db, `CREATE INDEX idx_city ON jobs (city)`)
	res := mustQuery(t, db, `EXPLAIN SELECT id FROM jobs WHERE city = 'San Francisco'`)
	plan := res.Rows[0][0].S
	if !strings.Contains(plan, "IndexScan(jobs.city") {
		t.Fatalf("plan = %q, want IndexScan", plan)
	}
	// Same rows with and without the index.
	r1 := mustQuery(t, db, `SELECT id FROM jobs WHERE city = 'San Francisco' ORDER BY id`)
	if len(r1.Rows) != 2 || r1.Rows[0][0].I != 1 || r1.Rows[1][0].I != 6 {
		t.Fatalf("indexed result = %v", r1.Rows)
	}
}

func TestIndexUseIn(t *testing.T) {
	db := newJobsDB(t)
	mustExec(t, db, `CREATE INDEX idx_city ON jobs (city)`)
	res := mustQuery(t, db, `EXPLAIN SELECT id FROM jobs WHERE city IN ('Oakland', 'Berkeley')`)
	if !strings.Contains(res.Rows[0][0].S, "IN [2 values]") {
		t.Fatalf("plan = %q", res.Rows[0][0].S)
	}
	r := mustQuery(t, db, `SELECT id FROM jobs WHERE city IN ('Oakland', 'Berkeley') ORDER BY id`)
	if len(r.Rows) != 2 || r.Rows[0][0].I != 2 || r.Rows[1][0].I != 7 {
		t.Fatalf("IN via index = %v", r.Rows)
	}
}

func TestOrderedIndexRange(t *testing.T) {
	db := newJobsDB(t)
	mustExec(t, db, `CREATE ORDERED INDEX idx_salary ON jobs (salary)`)
	res := mustQuery(t, db, `EXPLAIN SELECT id FROM jobs WHERE salary >= 190000`)
	if !strings.Contains(res.Rows[0][0].S, "IndexRange(jobs.salary >=") {
		t.Fatalf("plan = %q", res.Rows[0][0].S)
	}
	r := mustQuery(t, db, `SELECT id FROM jobs WHERE salary >= 190000 ORDER BY id`)
	if len(r.Rows) != 3 {
		t.Fatalf("range = %v", r.Rows)
	}
	res = mustQuery(t, db, `EXPLAIN SELECT id FROM jobs WHERE salary BETWEEN 170000 AND 190000`)
	if !strings.Contains(res.Rows[0][0].S, "BETWEEN") {
		t.Fatalf("plan = %q", res.Rows[0][0].S)
	}
	r = mustQuery(t, db, `SELECT id FROM jobs WHERE salary BETWEEN 170000 AND 190000`)
	if len(r.Rows) != 5 {
		t.Fatalf("between via index = %v", r.Rows)
	}
}

func TestHashIndexNoRange(t *testing.T) {
	db := newJobsDB(t)
	mustExec(t, db, `CREATE INDEX idx_salary ON jobs (salary)`)
	res := mustQuery(t, db, `EXPLAIN SELECT id FROM jobs WHERE salary > 150000`)
	if !strings.Contains(res.Rows[0][0].S, "SeqScan") {
		t.Fatalf("hash index must not serve ranges: %q", res.Rows[0][0].S)
	}
}

func TestIndexMaintainedByUpdateDelete(t *testing.T) {
	db := newJobsDB(t)
	mustExec(t, db, `CREATE INDEX idx_city ON jobs (city)`)
	if n := mustExec(t, db, `UPDATE jobs SET city = 'Fremont' WHERE id = 1`); n != 1 {
		t.Fatalf("update affected %d", n)
	}
	r := mustQuery(t, db, `SELECT id FROM jobs WHERE city = 'San Francisco'`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 6 {
		t.Fatalf("after update = %v", r.Rows)
	}
	r = mustQuery(t, db, `SELECT id FROM jobs WHERE city = 'Fremont'`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 1 {
		t.Fatalf("moved row = %v", r.Rows)
	}
	if n := mustExec(t, db, `DELETE FROM jobs WHERE city = 'Fremont'`); n != 1 {
		t.Fatalf("delete affected %d", n)
	}
	r = mustQuery(t, db, `SELECT id FROM jobs WHERE city = 'Fremont'`)
	if len(r.Rows) != 0 {
		t.Fatalf("after delete = %v", r.Rows)
	}
	info, err := db.Table("jobs")
	if err != nil || info.Rows != 7 {
		t.Fatalf("row count = %+v err=%v", info, err)
	}
}

func TestUpdateAllAndDeleteAll(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2), (3)`)
	if n := mustExec(t, db, `UPDATE t SET a = 9`); n != 3 {
		t.Fatalf("update all = %d", n)
	}
	if n := mustExec(t, db, `DELETE FROM t`); n != 3 {
		t.Fatalf("delete all = %d", n)
	}
	r := mustQuery(t, db, `SELECT COUNT(*) FROM t`)
	if r.Rows[0][0].I != 0 {
		t.Fatalf("count = %v", r.Rows)
	}
}

func TestInsertColumnList(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b TEXT, c BOOL)`)
	mustExec(t, db, `INSERT INTO t (b, a) VALUES ('x', 1)`)
	r := mustQuery(t, db, `SELECT a, b, c FROM t`)
	if r.Rows[0][0].I != 1 || r.Rows[0][1].S != "x" || !r.Rows[0][2].IsNull() {
		t.Fatalf("insert with column list = %v", r.Rows[0])
	}
}

func TestTypeCoercion(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b FLOAT)`)
	mustExec(t, db, `INSERT INTO t VALUES (3.0, 4)`) // int<->float lossless
	r := mustQuery(t, db, `SELECT a, b FROM t`)
	if r.Rows[0][0].T != TInt || r.Rows[0][0].I != 3 {
		t.Fatalf("a = %+v", r.Rows[0][0])
	}
	if r.Rows[0][1].T != TFloat || r.Rows[0][1].F != 4 {
		t.Fatalf("b = %+v", r.Rows[0][1])
	}
	if _, err := db.Exec(`INSERT INTO t VALUES ('nope', 1)`); err == nil {
		t.Fatal("expected type mismatch")
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (3.5, 1)`); err == nil {
		t.Fatal("expected lossy float->int rejection")
	}
}

func TestErrors(t *testing.T) {
	db := newJobsDB(t)
	if _, err := db.Query(`SELECT id FROM missing`); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Query(`SELECT nope FROM jobs`); !errors.Is(err, ErrColumnUnknown) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE jobs (a INT)`); !errors.Is(err, ErrTableExists) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Exec(`INSERT INTO jobs VALUES (1)`); !errors.Is(err, ErrArity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE bad (a INT, A TEXT)`); err == nil {
		t.Fatal("expected duplicate column error")
	}
	if _, err := db.Query(`SELECT * FROM jobs WHERE`); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := db.Query(`SELECT id FRM jobs`); err == nil {
		t.Fatal("expected parse error for FRM")
	}
	if _, err := db.Query(`EXPLAIN DELETE FROM jobs`); err == nil {
		t.Fatal("EXPLAIN non-select must fail")
	}
	mustExec(t, db, `CREATE INDEX i1 ON jobs (city)`)
	if _, err := db.Exec(`CREATE INDEX i2 ON jobs (city)`); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Exec(`CREATE INDEX i3 ON jobs (nope)`); !errors.Is(err, ErrColumnUnknown) {
		t.Fatalf("err = %v", err)
	}
	if err := db.DropTable("missing"); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDropTable(t *testing.T) {
	db := newJobsDB(t)
	mustExec(t, db, `DROP TABLE companies`)
	if _, err := db.Query(`SELECT * FROM companies`); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("err = %v", err)
	}
	if len(db.Tables()) != 1 {
		t.Fatalf("tables = %v", db.Tables())
	}
}

func TestTablesInfo(t *testing.T) {
	db := newJobsDB(t)
	mustExec(t, db, `CREATE ORDERED INDEX idx_salary ON jobs (salary)`)
	infos := db.Tables()
	if len(infos) != 2 || infos[0].Name != "jobs" {
		t.Fatalf("infos = %+v", infos)
	}
	if infos[0].Rows != 8 {
		t.Fatalf("rows = %d", infos[0].Rows)
	}
	if len(infos[0].Indexes) != 1 || infos[0].Indexes[0].Kind != OrderedIndex {
		t.Fatalf("indexes = %+v", infos[0].Indexes)
	}
	if got := infos[0].Schema.String(); !strings.Contains(got, "title TEXT") {
		t.Fatalf("schema = %q", got)
	}
}

func TestResultStringAndMaps(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT id, title FROM jobs WHERE id = 1`)
	s := res.String()
	if !strings.Contains(s, "Data Scientist") || !strings.Contains(s, "id") {
		t.Fatalf("render = %q", s)
	}
	maps := res.Maps()
	if len(maps) != 1 || maps[0]["title"] != "Data Scientist" || maps[0]["id"] != int64(1) {
		t.Fatalf("maps = %v", maps)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{Null, NewInt(0), -1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if Equal(Null, Null) {
		t.Fatal("NULL must not equal NULL")
	}
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Fatal("3 must equal 3.0")
	}
}

func TestValueKeyIntFloatUnified(t *testing.T) {
	if NewInt(3).Key() != NewFloat(3.0).Key() {
		t.Fatal("integral float and int must share hash keys")
	}
	if NewFloat(3.5).Key() == NewInt(3).Key() {
		t.Fatal("3.5 must not collide with 3")
	}
}

func TestFromGo(t *testing.T) {
	if FromGo(nil).T != TNull {
		t.Fatal("nil")
	}
	if v := FromGo(42); v.T != TInt || v.I != 42 {
		t.Fatal("int")
	}
	if v := FromGo(4.5); v.T != TFloat {
		t.Fatal("float")
	}
	if v := FromGo("x"); v.T != TString {
		t.Fatal("string")
	}
	if v := FromGo(true); v.T != TBool {
		t.Fatal("bool")
	}
	if v := FromGo([]int{1}); v.T != TString {
		t.Fatal("fallback")
	}
	if v := FromGo(NewInt(7)); v.I != 7 {
		t.Fatal("passthrough")
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"Data Scientist", "%scientist%", true},
		{"Data Scientist", "data%", true},
		{"Data Scientist", "%data", false},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "abc", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('it''s fine')`)
	r := mustQuery(t, db, `SELECT a FROM t WHERE a = 'it''s fine'`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "it's fine" {
		t.Fatalf("escape = %v", r.Rows)
	}
}

func TestComments(t *testing.T) {
	db := newJobsDB(t)
	r := mustQuery(t, db, "SELECT id FROM jobs -- trailing comment\nWHERE id = 1")
	if len(r.Rows) != 1 {
		t.Fatalf("comment handling = %v", r.Rows)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := newJobsDB(t)
	if _, err := db.Query(`SELECT id FROM jobs j JOIN companies c ON j.company_id = c.id`); err == nil {
		t.Fatal("expected ambiguous column error for bare id")
	}
}

func TestOrderByInputColumnNotProjected(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT title FROM jobs ORDER BY salary DESC LIMIT 1`)
	if res.Rows[0][0].S != "Senior Data Scientist" {
		t.Fatalf("order by unprojected = %v", res.Rows)
	}
}

func TestAggregateExpressionInHaving(t *testing.T) {
	db := newJobsDB(t)
	res := mustQuery(t, db, `SELECT company_id FROM jobs GROUP BY company_id HAVING AVG(salary) > 190000`)
	if len(res.Rows) != 2 {
		t.Fatalf("having avg = %v", res.Rows)
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	db := newJobsDB(t)
	done := make(chan error, 2)
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := db.Exec(`INSERT INTO jobs VALUES (?, 'Bulk Role', 'Remote', 1, 100000, TRUE)`, 1000+i); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := db.Query(`SELECT COUNT(*) FROM jobs WHERE title = 'Bulk Role'`); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	r := mustQuery(t, db, `SELECT COUNT(*) FROM jobs WHERE title = 'Bulk Role'`)
	if r.Rows[0][0].I != 200 {
		t.Fatalf("final count = %v", r.Rows[0][0])
	}
}
