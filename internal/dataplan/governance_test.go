package dataplan

import (
	"errors"
	"testing"

	"blueprint/internal/registry"
)

func TestPlanForEnforcesGovernance(t *testing.T) {
	f := newFixture(t, 1.0)
	// Restrict the jobs table to a payroll agent.
	if err := f.reg.Grant("hr.jobs", "PAYROLL_AGENT"); err != nil {
		t.Fatal(err)
	}
	_, err := f.planner.PlanFor("JOBMATCHER", runningExample, f.bind, "taxonomy")
	if !errors.Is(err, registry.ErrUnauthorized) {
		t.Fatalf("err = %v, want ErrUnauthorized", err)
	}
	// The granted agent plans normally.
	plan, err := f.planner.PlanFor("PAYROLL_AGENT", runningExample, f.bind, "taxonomy")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != "decomposed" {
		t.Fatalf("strategy = %s", plan.Strategy)
	}
}

func TestPlanForGraphFallback(t *testing.T) {
	f := newFixture(t, 1.0)
	// Restrict only the taxonomy graph: planning succeeds but falls back to
	// the LLM for title expansion.
	if err := f.reg.Grant("taxonomy", "SOMEONE_ELSE"); err != nil {
		t.Fatal(err)
	}
	plan, err := f.planner.PlanFor("JOBMATCHER", runningExample, f.bind, "taxonomy")
	if err != nil {
		t.Fatal(err)
	}
	titles, ok := plan.Node("titles")
	if !ok || titles.Kind != OpLLM {
		t.Fatalf("expected LLM title expansion fallback, got %+v", titles)
	}
	res, err := f.exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("fallback plan returned nothing")
	}
}
