// Package resilience is the blueprint's fault-tolerance and overload-control
// layer: a deterministic fault injector every execution layer consults behind
// a build-free runtime hook (this file), retry with exponential backoff +
// jitter charged against plan deadline budgets (retry.go), per-agent circuit
// breakers (breaker.go), a global concurrency governor with per-tenant fair
// admission and load shedding (governor.go), and the graceful-degradation
// policy that decides when a stale memoized answer may stand in for real
// execution (degrade.go).
//
// The production-deployment study (arXiv 2604.25724, PAPERS.md) makes
// SLO-driven overload control and graceful degradation the defining property
// of a production compound-AI serving tier; the multi-agent orchestration
// survey (arXiv 2601.13671) catalogs retry/circuit-breaker patterns as table
// stakes. This package supplies both, plus the chaos seam — deterministic,
// seedable fault injection — that lets the test suite and benchharness -fig
// A11 prove the claims instead of asserting them. See ARCHITECTURE.md.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"blueprint/internal/obs"
)

// Process-wide injection instruments: how often each fault kind fired.
var (
	mInjectedErrors   = obs.Default.Counter("blueprint_faults_injected_errors_total", "injected agent/relational/durability errors")
	mInjectedLatency  = obs.Default.Counter("blueprint_faults_injected_latency_total", "injected latency spikes")
	mInjectedHangs    = obs.Default.Counter("blueprint_faults_injected_hangs_total", "injected hangs (block until cancel or hang bound)")
	mInjectedCrashes  = obs.Default.Counter("blueprint_faults_injected_crashes_total", "injected crashes (SimulateCrash hook)")
	mInjectionChecked = obs.Default.Counter("blueprint_faults_checked_total", "injection-site consultations while an injector is active")
)

// ErrInjected marks an injector-produced failure. Transient by definition:
// the retry classifier treats it as retryable.
var ErrInjected = errors.New("resilience: injected fault")

// Site names one injection point. Subsystems consult Check with their site;
// rules match by site (empty rule site matches every site).
type Site string

// The wired injection sites.
const (
	// SiteAgent fires inside the agent runtime, immediately before the
	// processor call — an injected error surfaces exactly like a failing
	// agent (AGENT_ERROR report, retry/breaker/replan machinery engages).
	SiteAgent Site = "agent.process"
	// SiteRelational fires at the top of DB.QueryContext/ExecContext.
	SiteRelational Site = "relational.exec"
	// SiteDurability fires in the WAL append path.
	SiteDurability Site = "durability.append"
)

// Kind is the fault class a rule injects.
type Kind int

// Fault kinds.
const (
	// KindError returns ErrInjected from the site.
	KindError Kind = iota
	// KindLatency sleeps the rule's Latency before continuing healthy.
	KindLatency
	// KindHang blocks until the caller's context is cancelled, bounded by
	// the rule's Latency (default DefaultHangBound) so a hang against an
	// uncancellable context cannot wedge the process forever.
	KindHang
	// KindCrash invokes the injector's crash hook (System.SimulateCrash in
	// the full stack) and then returns ErrInjected to the caller.
	KindCrash
)

// DefaultHangBound caps KindHang faults whose rule sets no Latency.
const DefaultHangBound = 5 * time.Second

func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindHang:
		return "hang"
	case KindCrash:
		return "crash"
	default:
		return "error"
	}
}

// Rule arms one fault at one site.
type Rule struct {
	// Site selects the injection point ("" matches all sites).
	Site Site
	// Kind is the fault class.
	Kind Kind
	// Probability in [0,1] that a consultation fires the fault.
	Probability float64
	// Latency is the injected delay for KindLatency and the hang bound for
	// KindHang (DefaultHangBound when zero).
	Latency time.Duration
	// After skips the first After consultations of the site before the rule
	// becomes eligible (deterministic "brownout starts later" scheduling).
	After int
	// Limit bounds how many times the rule fires (0 = unlimited).
	Limit int
}

// InjectStats counts what an injector did.
type InjectStats struct {
	Checked   int
	Errors    int
	Latencies int
	Hangs     int
	Crashes   int
}

// Injector is a deterministic, seedable fault source. All decisions come
// from one seeded PRNG consulted under a lock in consultation order, so a
// single-goroutine workload replays bit-for-bit; concurrent workloads stay
// deterministic in aggregate (same fault counts for the same consultation
// counts).
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   []Rule
	seen    map[Site]int // consultations per site
	fired   []int        // fires per rule
	stats   InjectStats
	crashFn func()
}

// NewInjector creates an injector from a seed and rule set.
func NewInjector(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: append([]Rule(nil), rules...),
		seen:  make(map[Site]int),
		fired: make([]int, len(rules)),
	}
}

// OnCrash installs the crash hook KindCrash rules invoke (the full stack
// wires System.SimulateCrash). Safe to leave unset: a crash fault then
// degrades to KindError.
func (in *Injector) OnCrash(fn func()) {
	in.mu.Lock()
	in.crashFn = fn
	in.mu.Unlock()
}

// Stats snapshots the fire counters.
func (in *Injector) Stats() InjectStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// decision is one resolved consultation.
type decision struct {
	kind    Kind
	latency time.Duration
	crash   func()
	fire    bool
}

// eval resolves one consultation of site. First matching eligible rule wins.
func (in *Injector) eval(site Site) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Checked++
	n := in.seen[site]
	in.seen[site] = n + 1
	for i, r := range in.rules {
		if r.Site != "" && r.Site != site {
			continue
		}
		if n < r.After {
			continue
		}
		if r.Limit > 0 && in.fired[i] >= r.Limit {
			continue
		}
		if r.Probability < 1 && in.rng.Float64() >= r.Probability {
			continue
		}
		in.fired[i]++
		d := decision{kind: r.Kind, latency: r.Latency, fire: true}
		switch r.Kind {
		case KindError:
			in.stats.Errors++
		case KindLatency:
			in.stats.Latencies++
		case KindHang:
			in.stats.Hangs++
			if d.latency <= 0 {
				d.latency = DefaultHangBound
			}
		case KindCrash:
			in.stats.Crashes++
			d.crash = in.crashFn
		}
		return d
	}
	return decision{}
}

// active is the process-global injector hook. Nil (the production state)
// costs one atomic load per site consultation; tests and the chaos suite
// arm it with Activate.
var active atomic.Pointer[Injector]

// Activate arms the injector process-wide. Passing nil disarms (same as
// Deactivate).
func Activate(in *Injector) { active.Store(in) }

// Deactivate disarms fault injection.
func Deactivate() { active.Store(nil) }

// Check is the runtime hook subsystems call at their injection site. With no
// active injector it is a single atomic load. Otherwise it resolves one
// consultation: KindError returns ErrInjected; KindLatency sleeps (cut short
// by ctx); KindHang blocks until ctx is cancelled or the hang bound elapses,
// then returns ErrInjected; KindCrash invokes the crash hook and returns
// ErrInjected.
func Check(ctx context.Context, site Site) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	mInjectionChecked.Inc()
	d := in.eval(site)
	if !d.fire {
		return nil
	}
	switch d.kind {
	case KindLatency:
		mInjectedLatency.Inc()
		sleepCtx(ctx, d.latency)
		return nil
	case KindHang:
		mInjectedHangs.Inc()
		sleepCtx(ctx, d.latency)
		return fmt.Errorf("%w: hang at %s", ErrInjected, site)
	case KindCrash:
		mInjectedCrashes.Inc()
		if d.crash != nil {
			d.crash()
		}
		return fmt.Errorf("%w: crash at %s", ErrInjected, site)
	default:
		mInjectedErrors.Inc()
		return fmt.Errorf("%w: error at %s", ErrInjected, site)
	}
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
