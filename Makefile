# Build, verify and bench targets. `make ci` is what the GitHub Actions
# workflow runs on every push: formatting, vet, build, and the full test
# suite under the race detector.

GO ?= go

.PHONY: all build test race vet fmt-check bench bench-smoke chaos fuzz ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Relational-engine benchmarks, including the statement-cache comparison
# (BenchmarkPointQueryUncached vs Cached/Prepared), the zero-allocation
# tokenizer/fingerprint sweeps, and the shape-vs-exact keyed cache pair.
bench:
	$(GO) test ./internal/relational/ -run XXX -bench . -benchmem
	$(GO) run ./cmd/benchharness -fig A9

# Fuzz the tokenizer against the old slice-building lexer for a short burst
# (seeds under internal/relational/testdata/fuzz are always replayed by
# plain `go test`).
fuzz:
	$(GO) test ./internal/relational/ -run FuzzTokenize -fuzz FuzzTokenize -fuzztime 30s

# Smoke run for the concurrency/reuse/durability layers: regenerates the A5
# table (concurrent DAG scheduler fan-out speedup + multi-session
# throughput), the A6 table (step-result memoization: repeated-ask speedup,
# cross-session single-flight dedup, invalidation), the A7 table (relational
# plan compiler: compiled-vs-interpreted scan/join/group-by) and the A8
# table (durability: crash replay vs snapshot restore, warm memo across
# restart) in short mode. A6 and A8 enforce their own invariants — a warm
# run that re-executes (hit-rate collapse), a concurrent identical workload
# that does not coalesce (dedup loss), a crash restart that loses rows, or a
# restarted process whose repeated ask misses memo (warm-memo loss) makes
# the run fail; A7's >= 2x speedup/allocs floors and A8's >= 5x
# snapshot-vs-replay floor are enforced in full mode and reported here, as
# are A9's shape-cache floors (>= 90% hit rate, >= 3x over exact keying on
# literal-inlined statements) and A10's telemetry overhead ceiling
# (instrumented asks within 5% of uninstrumented, full mode; the >= 4
# span-component floor is enforced in every mode). A11 drives governed asks
# with an open-loop multi-tenant workload at 0.5x and 2x admission capacity
# and enforces its own floors in every mode: baseline sheds <= 20%, overload
# sheds some-but-not-everything, degraded answers are marked and
# freshness-valid, and no goroutines leak. A12 drives the same open-loop
# workload over real HTTP against the live blueprintd handler and checks
# the flight recorder explains the overload: exemplars carry events and
# deep span trees, the scraped per-tenant SLO burn exceeds 1 under overload
# and the baseline, rings stay bounded, and the event log + recorder cost
# <= 5% on a governed ask (full mode). Each table is also written as
# machine-readable bench/BENCH_<ID>.json (archived by CI). CI runs this on
# every push so regressions surface immediately.
bench-smoke:
	$(GO) run ./cmd/benchharness -fig A5 -short -json bench
	$(GO) run ./cmd/benchharness -fig A6 -short -json bench
	$(GO) run ./cmd/benchharness -fig A7 -short -json bench
	$(GO) run ./cmd/benchharness -fig A8 -short -json bench
	$(GO) run ./cmd/benchharness -fig A9 -short -json bench
	$(GO) run ./cmd/benchharness -fig A10 -short -json bench
	$(GO) run ./cmd/benchharness -fig A11 -short -json bench
	$(GO) run ./cmd/benchharness -fig A12 -short -json bench

# Chaos suite: every Chaos* test activates the deterministic fault injector
# (injected errors, latency, hangs or crashes at the agent, relational and
# durability sites) and asserts the system degrades instead of wedging —
# retries absorb transient faults, breakers isolate persistent ones, asks
# still answer or fail cleanly. Run under the race detector: fault paths are
# where concurrency bugs hide.
chaos:
	$(GO) test -race -run Chaos ./...

ci: fmt-check vet build race chaos bench-smoke
