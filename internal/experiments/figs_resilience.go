package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blueprint"
	"blueprint/internal/resilience"
	"blueprint/internal/workload"
)

// AblationResilience (A11) measures overload control end to end: an
// open-loop, multi-tenant Poisson workload (bursty in the overload phase)
// drives governed asks against a System whose admission governor has a
// deliberately small slot pool. The offered load is calibrated against the
// measured per-ask service time, so the same experiment saturates fast and
// slow machines alike. Two phases run: baseline at half the admission
// capacity (sheds should be rare) and overload at twice capacity with 3x
// bursts (the governor must shed, degraded answers must absorb repeat asks,
// and the asks that are admitted must still finish quickly — overload
// control exists precisely so accepted work is not dragged down by rejected
// work).
//
// Enforced floors: the baseline phase sheds at most 20%; the overload phase
// sheds at least one ask (the governor engaged) but at most 95% (it did not
// collapse into rejecting everything); every degraded answer is marked and
// freshness-valid (age within the configured staleness budget); the driver
// leaks no goroutines. In full (non-race) mode the accepted-ask p99 at 2x
// load must stay under the queue timeout plus a generous multiple of the
// calibrated service time.
func AblationResilience(seed int64) (*Table, error) {
	phaseDur, calibrationAsks := 2*time.Second, 12
	if Short {
		phaseDur, calibrationAsks = 600*time.Millisecond, 6
	}
	const (
		maxConcurrent = 4
		sessionPool   = 8
		queueTimeout  = 150 * time.Millisecond
		askFreshness  = time.Minute
	)

	sys, err := blueprint.New(blueprint.Config{
		Seed: seed, ModelAccuracy: 1.0,
		Governor: resilience.GovernorConfig{
			MaxConcurrent: maxConcurrent,
			MaxQueue:      2 * maxConcurrent,
			QueueTimeout:  queueTimeout,
			RetryAfter:    100 * time.Millisecond,
		},
		AskFreshness: askFreshness,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	goroutinesBefore := runtime.NumGoroutine()
	sessions := make([]*blueprint.Session, sessionPool)
	for i := range sessions {
		if sessions[i], err = sys.StartSession(""); err != nil {
			return nil, err
		}
		defer sessions[i].Close()
	}

	// Load shaping: inject a fixed latency into every agent invocation so
	// one ask costs a few tens of milliseconds. Without it the simulated
	// in-process asks are so fast that saturating four slots needs
	// thousands of arrivals per second; with it the admission capacity is
	// a few hundred per second and the phases stay small.
	inj := resilience.NewInjector(seed, resilience.Rule{
		Site: resilience.SiteAgent, Kind: resilience.KindLatency,
		Probability: 1, Latency: 4 * time.Millisecond,
	})
	resilience.Activate(inj)
	defer resilience.Deactivate()

	// Calibration: sequential warm asks measure the per-ask service time
	// the offered rates are derived from (it also pre-fills the plan
	// caches so phase one is not measuring cold starts).
	pool := workload.Queries(seed, 64)
	var serviceTime time.Duration
	for i := 0; i < calibrationAsks; i++ {
		start := time.Now()
		if _, err := sessions[i%sessionPool].Ask(pool[i%len(pool)].Text, 10*time.Second); err != nil {
			return nil, fmt.Errorf("A11 calibration ask: %w", err)
		}
		serviceTime += time.Since(start)
	}
	serviceTime /= time.Duration(calibrationAsks)
	capacity := float64(maxConcurrent) / serviceTime.Seconds()

	// phase replays an open-loop schedule through GovernedAsk and folds
	// the outcomes. Arrivals pick pool sessions round-robin; the governor,
	// not the session pool, is the intended bottleneck.
	type phaseStats struct {
		arrivals, accepted, degraded, shed, errors int
		acceptedLat                                []time.Duration
		perTenant                                  map[string]int
		maxStale                                   time.Duration
		unmarkedStale                              bool
	}
	phase := func(phaseSeed int64, rate float64, burst workload.BurstConfig) phaseStats {
		arrivals := workload.OpenLoop(phaseSeed, workload.OpenLoopConfig{
			Rate: rate, Duration: phaseDur,
			Tenants: []string{"free", "pro", "enterprise"},
			Burst:   burst,
		})
		st := phaseStats{arrivals: len(arrivals), perTenant: map[string]int{}}
		var mu sync.Mutex
		var next atomic.Int64
		workload.Replay(context.Background(), arrivals, func(a workload.Arrival) {
			sess := sessions[int(next.Add(1))%sessionPool]
			start := time.Now()
			ans, err := sess.GovernedAsk(context.Background(), a.Tenant, a.Query.Text, 10*time.Second)
			lat := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && ans.Degraded:
				st.degraded++
				if ans.StaleFor > st.maxStale {
					st.maxStale = ans.StaleFor
				}
				if ans.Text == "" {
					st.unmarkedStale = true
				}
			case err == nil:
				st.accepted++
				st.acceptedLat = append(st.acceptedLat, lat)
				st.perTenant[a.Tenant]++
			case errors.Is(err, resilience.ErrOverloaded):
				st.shed++
			default:
				st.errors++
			}
		})
		return st
	}

	base := phase(seed+1, capacity*0.5, workload.BurstConfig{})
	over := phase(seed+2, capacity*2, workload.BurstConfig{
		Factor: 3, On: 200 * time.Millisecond, Off: 200 * time.Millisecond,
	})

	// Floors. Baseline must mostly admit; overload must engage the
	// governor without collapsing; degraded answers must be marked and
	// within the staleness budget.
	shedRatio := func(st phaseStats) float64 {
		if st.arrivals == 0 {
			return 0
		}
		return float64(st.shed) / float64(st.arrivals)
	}
	if base.arrivals == 0 || over.arrivals == 0 {
		return nil, fmt.Errorf("A11: empty schedule (base %d, overload %d arrivals)", base.arrivals, over.arrivals)
	}
	if r := shedRatio(base); r > 0.20 {
		return nil, fmt.Errorf("A11: baseline shed ratio %.1f%% at half capacity, ceiling 20%%", r*100)
	}
	if over.shed == 0 {
		return nil, fmt.Errorf("A11: overload phase at 2x capacity shed nothing — governor never engaged")
	}
	if r := shedRatio(over); r > 0.95 {
		return nil, fmt.Errorf("A11: overload shed ratio %.1f%% — admission collapsed", r*100)
	}
	maxStaleBudget := blueprint.Config{}.Degrade.MaxStale(askFreshness)
	if over.maxStale > maxStaleBudget || base.maxStale > maxStaleBudget {
		return nil, fmt.Errorf("A11: degraded answer served at age %s, staleness budget %s",
			over.maxStale, maxStaleBudget)
	}
	if over.unmarkedStale || base.unmarkedStale {
		return nil, fmt.Errorf("A11: degraded answer served with empty text")
	}
	acceptedP99 := workload.Percentile(over.acceptedLat, 99)
	p99Ceiling := queueTimeout + 50*serviceTime
	if p99Ceiling < time.Second {
		p99Ceiling = time.Second
	}
	if !Short && !raceEnabled && over.accepted > 0 && acceptedP99 > p99Ceiling {
		return nil, fmt.Errorf("A11: accepted-ask p99 %s at 2x load, ceiling %s (service time %s)",
			acceptedP99, p99Ceiling, serviceTime)
	}

	// Goroutine-leak floor: after the sessions close and the injector
	// deactivates, the count must settle back near where it started.
	for _, s := range sessions {
		s.Close()
	}
	resilience.Deactivate()
	leaked := 0
	for wait := time.Duration(0); ; wait += 20 * time.Millisecond {
		leaked = runtime.NumGoroutine() - goroutinesBefore
		if leaked <= 10 || wait > 3*time.Second {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leaked > 10 {
		return nil, fmt.Errorf("A11: %d goroutines leaked by the open-loop phases", leaked)
	}

	gov := sys.GovernorStats()
	t := &Table{ID: "A11", Title: "Resilience: overload control under open-loop multi-tenant load (governed asks)"}
	row := func(series string, st phaseStats, rate float64) Row {
		return Row{Series: series, Metrics: []Metric{
			{Name: "offered", Value: fmt.Sprintf("%.0f/s", rate)},
			{Name: "arrivals", Value: fmt.Sprint(st.arrivals)},
			{Name: "accepted", Value: fmt.Sprint(st.accepted)},
			{Name: "shed", Value: fmt.Sprint(st.shed)},
			{Name: "degraded", Value: fmt.Sprint(st.degraded)},
			{Name: "errors", Value: fmt.Sprint(st.errors)},
			{Name: "accepted_p50", Value: ms(workload.Percentile(st.acceptedLat, 50))},
			{Name: "accepted_p99", Value: ms(workload.Percentile(st.acceptedLat, 99))},
		}}
	}
	t.Rows = append(t.Rows,
		row("0.5x capacity", base, capacity*0.5),
		row("2x capacity (bursty)", over, capacity*2),
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("calibrated service time %s -> admission capacity %.0f asks/s across %d slots", serviceTime, capacity, maxConcurrent),
		fmt.Sprintf("governor ledger: admitted=%d shed=%d (tenant=%d queue_timeout=%d) peak_inflight=%d",
			gov.Admitted, gov.Shed, gov.TenantShed, gov.QueueTimeouts, gov.PeakInFlight),
		fmt.Sprintf("degraded answers served stale memoized results, max age %s within the %s budget", over.maxStale, maxStaleBudget),
		"open loop: arrivals are scheduled independently of completions, so overload cannot self-throttle",
		"floors: baseline shed <= 20%, overload shed in (0, 95%], degraded answers marked + freshness-valid, no goroutine leaks; accepted p99 ceiling enforced in full mode")
	return t, nil
}
