package relational

import "sync"

// Shape-key markers. Token texts in the key are letters, digits, '_' and
// ASCII punctuation, and every token is terminated by fpSep, so the control
// bytes below cannot collide with content; inline strings are encoded with
// appendValueKey (tag + length prefix, key.go), which is unambiguous against
// everything else.
const (
	fpSep      = 0x00 // token terminator
	fpAutoLit  = 0x01 // auto-extracted literal slot
	fpExplicit = 0x02 // explicit '?' placeholder
)

// maxAutoParams bounds literal extraction per statement. A statement with
// more inline literals than this (e.g. a giant IN list) bails to exact-text
// keying: such texts are almost certainly machine-generated one-offs whose
// shape would pollute the cache, and the merged parameter vector stays small.
const maxAutoParams = 64

// fingerprint is the reusable scratch state of one fingerprint pass: the
// binary shape key plus the literal values extracted from the text, in
// token order.
type fingerprint struct {
	key  []byte
	lits []Value
}

var fpScratch = sync.Pool{New: func() any {
	return &fingerprint{key: make([]byte, 0, 256), lits: make([]Value, 0, 8)}
}}

// fpRegion tracks which lexical region of the statement the sweep is in.
// Literals in the SELECT projection list, ORDER BY keys and LIMIT/OFFSET
// stay inline in the key (bail-to-inline): those constants shape the result
// set — projection arity/typing, sort keys and top-k heap sizing — so two
// texts differing there must not share a plan. Everywhere else (WHERE, SET,
// VALUES, HAVING, join-free predicates) literal identity only changes bound
// values, and literals become ordinal slots.
type fpRegion int

const (
	regStart  fpRegion = iota // before the statement keyword
	regItems                  // SELECT projection list
	regNormal                 // literal-extracting regions
	regOrder                  // ORDER BY keys
	regLimit                  // LIMIT/OFFSET counts
)

// fingerprintStmt sweeps sql once with the zero-allocation tokenizer,
// filling fp with a canonical shape key ('S'-prefixed: keywords uppercased,
// whitespace and comments erased, extractable literals reduced to ordinal
// slots) and the extracted literal values in order. It reports false when
// the statement should bail to exact-text keying: lexical errors,
// non-fingerprintable statement kinds (DDL), unparseable numbers, or too
// many literals. It never allocates beyond fp's own growth (amortized O(1)
// per statement).
func fingerprintStmt(fp *fingerprint, sql string) bool {
	fp.key = append(fp.key[:0], 'S')
	fp.lits = fp.lits[:0]
	tz := newTokenizer(sql)
	reg := regStart
	start := true
	for {
		t, err := tz.next()
		if err != nil {
			return false
		}
		if t.kind == tokEOF {
			break
		}
		if start {
			if t.kind != tokKeyword {
				return false
			}
			switch t.text {
			case "EXPLAIN":
				// keep scanning for the statement keyword
			case "SELECT":
				reg = regItems
				start = false
			case "INSERT", "UPDATE", "DELETE":
				reg = regNormal
				start = false
			default:
				return false
			}
			fp.key = append(fp.key, t.text...)
			fp.key = append(fp.key, fpSep)
			continue
		}
		switch t.kind {
		case tokKeyword:
			switch t.text {
			case "FROM", "WHERE", "GROUP", "HAVING":
				reg = regNormal
			case "ORDER":
				reg = regOrder
			case "LIMIT", "OFFSET":
				reg = regLimit
			}
			fp.key = append(fp.key, t.text...)
		case tokIdent, tokOp:
			fp.key = append(fp.key, t.text...)
		case tokParam:
			fp.key = append(fp.key, fpExplicit)
		case tokNumber:
			if reg == regNormal {
				v, err := numberValue(t.text)
				if err != nil {
					return false
				}
				if len(fp.lits) >= maxAutoParams {
					return false
				}
				fp.lits = append(fp.lits, v)
				fp.key = append(fp.key, fpAutoLit)
			} else {
				fp.key = append(fp.key, t.text...)
			}
		case tokString:
			if reg == regNormal {
				if len(fp.lits) >= maxAutoParams {
					return false
				}
				fp.lits = append(fp.lits, NewString(t.stringVal()))
				fp.key = append(fp.key, fpAutoLit)
			} else {
				fp.key = appendValueKey(fp.key, NewString(t.stringVal()))
			}
		}
		fp.key = append(fp.key, fpSep)
	}
	return !start
}
