package dataplan

import (
	"fmt"
	"strings"
	"time"

	"blueprint/internal/docstore"
	"blueprint/internal/graphstore"
	"blueprint/internal/llm"
	"blueprint/internal/nlq"
	"blueprint/internal/relational"
)

// Sources binds the executor to live data sources. Any field may be nil if
// the plan does not use the corresponding operator kind.
type Sources struct {
	Relational *relational.DB
	Docs       *docstore.Store
	Graphs     map[string]*graphstore.Graph // keyed by registered asset name
	Model      *llm.Model
}

// Result is the outcome of executing a plan.
type Result struct {
	// Rows is set when the output operator is row-valued.
	Rows []map[string]any
	// List is set when the output is a string list.
	List []string
	// Text is set when the output is free text.
	Text string
	// Usage aggregates actuals across all operators.
	Usage Estimate
	// Trace records one line per executed node.
	Trace []string
}

// Executor runs data plans against bound sources.
type Executor struct {
	src Sources
}

// NewExecutor creates an executor. Data-plan SQL is highly repetitive per
// session (the same templated point and IN-list queries fire on every
// turn); DB.Query serves repeats from the engine's statement cache, so the
// parse cost is paid once per text.
func NewExecutor(src Sources) *Executor {
	return &Executor{src: src}
}

// Execute runs the plan's nodes in order (insertion order is topological by
// Validate) and returns the output node's result.
func (e *Executor) Execute(plan *Plan) (*Result, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Usage: Estimate{Accuracy: 1.0}}
	values := map[string]any{}
	for _, n := range plan.Nodes {
		start := time.Now()
		v, usage, err := e.run(n, values)
		if err != nil {
			return nil, fmt.Errorf("dataplan: node %s (%s): %w", n.ID, n.Kind, err)
		}
		if usage.Latency == 0 {
			usage.Latency = time.Since(start)
		}
		res.Usage.Cost += usage.Cost
		res.Usage.Latency += usage.Latency
		if usage.Accuracy > 0 {
			res.Usage.Accuracy *= usage.Accuracy
		}
		values[n.ID] = v
		res.Trace = append(res.Trace, fmt.Sprintf("%s(%s): %s", n.ID, n.Kind, describe(v)))
	}
	switch out := values[plan.Output].(type) {
	case []map[string]any:
		res.Rows = out
	case []string:
		res.List = out
	case string:
		res.Text = out
	default:
		res.Text = fmt.Sprintf("%v", out)
	}
	return res, nil
}

func describe(v any) string {
	switch x := v.(type) {
	case []map[string]any:
		return fmt.Sprintf("%d rows", len(x))
	case []string:
		return fmt.Sprintf("%d items", len(x))
	case string:
		if len(x) > 40 {
			return x[:40] + "..."
		}
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

func (e *Executor) run(n Node, values map[string]any) (any, Estimate, error) {
	switch n.Kind {
	case OpConst:
		return n.Args["value"], Estimate{Accuracy: 1}, nil

	case OpSQL:
		if e.src.Relational == nil {
			return nil, Estimate{}, fmt.Errorf("no relational source bound")
		}
		sql, _ := n.Args["sql"].(string)
		if sql == "" {
			return nil, Estimate{}, fmt.Errorf("missing sql arg")
		}
		res, err := e.src.Relational.Query(sql)
		if err != nil {
			return nil, Estimate{}, err
		}
		return res.Maps(), Estimate{Cost: 0.0001, Accuracy: 1}, nil

	case OpNL2Q:
		// Compiles then executes: args carry the query and a prebuilt target
		// table name.
		if e.src.Relational == nil {
			return nil, Estimate{}, fmt.Errorf("no relational source bound")
		}
		q, _ := n.Args["query"].(string)
		table, _ := n.Args["table"].(string)
		tgt, err := BuildTarget(e.src.Relational, table)
		if err != nil {
			return nil, Estimate{}, err
		}
		c, err := nlq.Compile(q, tgt)
		if err != nil {
			return nil, Estimate{}, err
		}
		res, err := e.src.Relational.Query(c.SQL)
		if err != nil {
			return nil, Estimate{}, err
		}
		return res.Maps(), Estimate{Cost: 0.0002, Accuracy: c.Confidence}, nil

	case OpLLM:
		if e.src.Model == nil {
			return nil, Estimate{}, fmt.Errorf("no LLM source bound")
		}
		prompt, _ := n.Args["prompt"].(string)
		list, usage := e.src.Model.KnowledgeList(prompt)
		acc := 1.0
		if usage.Degraded {
			acc = 0.5
		}
		return list, Estimate{Cost: usage.Cost, Latency: usage.Latency, Accuracy: acc}, nil

	case OpExtract:
		if e.src.Model == nil {
			return nil, Estimate{}, fmt.Errorf("no LLM source bound")
		}
		instruction, _ := n.Args["instruction"].(string)
		text, _ := n.Args["text"].(string)
		if from, ok := n.Args["text_from"].(string); ok {
			if s, ok2 := values[from].(string); ok2 {
				text = s
			}
		}
		out, usage := e.src.Model.Extract(instruction, text)
		acc := 1.0
		if usage.Degraded {
			acc = 0.5
		}
		return out, Estimate{Cost: usage.Cost, Latency: usage.Latency, Accuracy: acc}, nil

	case OpGraphExpand:
		assetName, _ := n.Args["asset"].(string)
		g := e.src.Graphs[assetName]
		if g == nil {
			return nil, Estimate{}, fmt.Errorf("graph asset %q not bound", assetName)
		}
		entity, _ := n.Args["entity"].(string)
		// Find the node by name property, then collect its related/child
		// neighborhood names.
		hits := g.FindNodes("name", entity)
		if len(hits) == 0 {
			return []string{}, Estimate{Cost: 0.0001, Accuracy: 1}, nil
		}
		seen := map[string]bool{}
		var out []string
		add := func(id string) {
			node, err := g.Node(id)
			if err != nil {
				return
			}
			if name, ok := node.Props["name"].(string); ok && !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
		for _, h := range hits {
			add(h.ID)
			ids, err := g.Traverse(h.ID, "", graphstore.Both, 1)
			if err != nil {
				continue
			}
			for _, id := range ids {
				node, err := g.Node(id)
				if err == nil && node.Label == "title" {
					add(id)
				}
			}
		}
		return out, Estimate{Cost: 0.0001, Accuracy: 1}, nil

	case OpDocFind:
		if e.src.Docs == nil {
			return nil, Estimate{}, fmt.Errorf("no document source bound")
		}
		coll, _ := n.Args["collection"].(string)
		field, _ := n.Args["field"].(string)
		value := n.Args["value"]
		var q docstore.Query
		if field != "" {
			q.Filters = append(q.Filters, docstore.Filter{Field: field, Op: docstore.Eq, Value: value})
		}
		hits, err := e.src.Docs.Find(coll, q)
		if err != nil {
			return nil, Estimate{}, err
		}
		rows := make([]map[string]any, len(hits))
		for i, h := range hits {
			m := map[string]any(h.Doc)
			m["_id"] = h.ID
			rows[i] = m
		}
		return rows, Estimate{Cost: 0.0001, Accuracy: 1}, nil

	case OpSelectIn:
		if e.src.Relational == nil {
			return nil, Estimate{}, fmt.Errorf("no relational source bound")
		}
		table, _ := n.Args["table"].(string)
		var conds []string
		for _, pair := range []struct{ colKey, fromKey string }{
			{"city_col", "city_from"}, {"title_col", "title_from"},
		} {
			col, _ := n.Args[pair.colKey].(string)
			from, _ := n.Args[pair.fromKey].(string)
			if col == "" || from == "" {
				continue
			}
			list, _ := values[from].([]string)
			if len(list) == 0 {
				// An empty expansion matches nothing; honor that rather than
				// silently dropping the condition.
				conds = append(conds, "1 = 0")
				continue
			}
			quoted := make([]string, len(list))
			for i, v := range list {
				quoted[i] = "'" + strings.ReplaceAll(v, "'", "''") + "'"
			}
			conds = append(conds, fmt.Sprintf("%s IN (%s)", col, strings.Join(quoted, ", ")))
		}
		sql := "SELECT * FROM " + table
		if len(conds) > 0 {
			sql += " WHERE " + strings.Join(conds, " AND ")
		}
		res, err := e.src.Relational.Query(sql)
		if err != nil {
			return nil, Estimate{}, err
		}
		return res.Maps(), Estimate{Cost: 0.0001, Accuracy: 1}, nil

	case OpUnion:
		seen := map[string]bool{}
		var out []string
		for _, dep := range n.DependsOn {
			list, _ := values[dep].([]string)
			for _, v := range list {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return out, Estimate{Accuracy: 1}, nil

	case OpSummarize:
		if e.src.Model == nil {
			return nil, Estimate{}, fmt.Errorf("no LLM source bound")
		}
		var text string
		if t, ok := n.Args["text"].(string); ok {
			text = t
		}
		for _, dep := range n.DependsOn {
			switch v := values[dep].(type) {
			case string:
				text += " " + v
			case []string:
				text += " " + strings.Join(v, ", ")
			case []map[string]any:
				for _, row := range v {
					text += " " + nlq.FormatRow(row)
				}
			}
		}
		maxWords := 60
		if mw, ok := n.Args["max_words"].(int); ok {
			maxWords = mw
		}
		out, usage := e.src.Model.Summarize(strings.TrimSpace(text), maxWords)
		acc := 1.0
		if usage.Degraded {
			acc = 0.6
		}
		return out, Estimate{Cost: usage.Cost, Latency: usage.Latency, Accuracy: acc}, nil

	default:
		return nil, Estimate{}, fmt.Errorf("unknown operator %q", n.Kind)
	}
}
