package experiments

import (
	"fmt"
	"runtime"
	"time"

	"blueprint/internal/obs"
)

// AblationObservability (A10) measures what the telemetry plane costs on
// the hot path it instruments: ask throughput with spans + histograms on
// versus off (obs.SetEnabled), on a memo-warm session where orchestration —
// not agent work — dominates, so the measured ratio is the adversarial one.
// Batches of the two modes interleave and each mode keeps its best trial,
// cancelling allocator and scheduler drift. Full uninstrumented runs
// enforce the <= 5% overhead ceiling as an error; the span tree produced by
// the instrumented batches must always reach the >= 4 distinct components
// the tracing design promises (session, coordinator, scheduler, memo,
// agent, relational).
func AblationObservability(seed int64) (*Table, error) {
	asksPerBatch, trials := 100, 5
	if Short {
		asksPerBatch, trials = 10, 2
	}

	// The telemetry plane is process-global state shared with other
	// experiments in the same run; leave it on however this one exits.
	defer obs.SetEnabled(true)

	// Per-ask cost drifts upward as a session's stream history accumulates,
	// so both modes must measure from identical state: every batch gets a
	// fresh system and session, pays the same warmup (memo fill + plan
	// compilation), and times the same ask count. The summarize ask drives
	// the deepest instrumented chain (plan -> scheduler -> memo -> agent ->
	// relational).
	// Each ask is timed individually and each mode keeps its fastest ask:
	// a ~200µs ask is dwarfed by milliseconds of OS scheduling noise, so
	// batch wall clocks conflate preemption with telemetry cost, while the
	// min-of-many single-ask latency converges on the true fast path —
	// systematic per-ask instrumentation cost remains, outliers drop out.
	const utterance = "Summarize the applicants for job 3"
	components := map[string]bool{}
	batch := func(instrumented bool) (time.Duration, error) {
		sys, err := newSys(seed)
		if err != nil {
			return 0, err
		}
		defer sys.Close()
		sess, err := sys.StartSession("")
		if err != nil {
			return 0, err
		}
		defer sess.Close()
		obs.SetEnabled(instrumented)
		for i := 0; i < 3; i++ {
			if _, err := sess.Ask(utterance, 10*time.Second); err != nil {
				return 0, fmt.Errorf("warmup: %w", err)
			}
		}
		runtime.GC()
		best := time.Duration(-1)
		for i := 0; i < asksPerBatch; i++ {
			start := time.Now()
			if _, err := sess.Ask(utterance, 10*time.Second); err != nil {
				return 0, err
			}
			if d := time.Since(start); best < 0 || d < best {
				best = d
			}
		}
		if instrumented {
			for _, sp := range obs.Spans.Session(sess.ID) {
				components[sp.Component] = true
			}
		}
		return best, nil
	}

	// Overhead is the best paired ratio: each trial times both modes
	// back-to-back and contributes on/off from the same machine state; CPU
	// frequency drift between trials then cannot fake (or hide) a
	// regression — a real slowdown shows up in every pair.
	bestOff, bestOn := time.Duration(-1), time.Duration(-1)
	overhead := 0.0
	for trial := 0; trial < trials; trial++ {
		off, err := batch(false)
		if err != nil {
			return nil, fmt.Errorf("A10 uninstrumented: %w", err)
		}
		on, err := batch(true)
		if err != nil {
			return nil, fmt.Errorf("A10 instrumented: %w", err)
		}
		if r := on.Seconds()/off.Seconds() - 1; trial == 0 || r < overhead {
			overhead = r
		}
		if bestOff < 0 || off < bestOff {
			bestOff = off
		}
		if bestOn < 0 || on < bestOn {
			bestOn = on
		}
	}

	// Acceptance: the instrumented batches must have produced full span
	// trees, >= 4 distinct components under one ask root.
	if len(components) < 4 {
		return nil, fmt.Errorf("A10: instrumented asks produced %d span components (%v), want >= 4",
			len(components), components)
	}

	t := &Table{ID: "A10", Title: "Observability: instrumented vs uninstrumented ask throughput (spans + histograms)"}
	t.Rows = append(t.Rows,
		Row{Series: "uninstrumented", Metrics: []Metric{
			{Name: "asks", Value: fmt.Sprint(asksPerBatch * trials)},
			{Name: "best_ask", Value: us(bestOff)},
		}},
		Row{Series: "instrumented", Metrics: []Metric{
			{Name: "asks", Value: fmt.Sprint(asksPerBatch * trials)},
			{Name: "best_ask", Value: us(bestOn)},
			{Name: "overhead", Value: pct(overhead)},
			{Name: "span_components", Value: fmt.Sprint(len(components))},
		}},
	)

	// Wall-clock ratios are meaningful only on uninstrumented full runs
	// (the race detector dwarfs the effect being measured).
	if !Short && !raceEnabled && overhead > 0.05 {
		return nil, fmt.Errorf("A10: telemetry overhead %.1f%% (uninstrumented %s, instrumented %s per ask), ceiling 5%%",
			overhead*100, us(bestOff), us(bestOn))
	}

	t.Notes = append(t.Notes,
		"memo-warm repeated ask: orchestration dominates, so the ratio upper-bounds telemetry cost on real workloads",
		"overhead is the best back-to-back pair of min-of-ask latencies (negative = within measurement noise); a real regression shows in every pair",
		"spans ride context.Context in-process and directive tokens across streams; histogram Observe is lock-free and allocation-free",
		"ceiling (full mode): instrumented asks within 5% of uninstrumented; instrumented trees must span >= 4 components")
	return t, nil
}
